// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs the corresponding experiment and
// reports the reproduced quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the full reproduction next to the paper's numbers recorded in
// EXPERIMENTS.md. DESIGN.md's per-experiment index maps each benchmark to
// the modules it exercises.
package diogenes_test

import (
	"errors"
	"io"
	"testing"
	"time"

	"diogenes"
	"diogenes/internal/apps"
	"diogenes/internal/autofix"
	"diogenes/internal/cuda"
	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/ffm/graph"
	"diogenes/internal/hashstore"
	"diogenes/internal/interpose"
	"diogenes/internal/ledger"
	"diogenes/internal/obs"
	"diogenes/internal/profiler"
	"diogenes/internal/serve"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// benchScale keeps each benchmark iteration around a second of real time
// while preserving every shape assertion; the recorded EXPERIMENTS.md runs
// use scale 1.0.
const benchScale = 0.1

// --- Table 1: per-application estimated vs actual benefit -----------------

func benchTable1(b *testing.B, app string) {
	var row *experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.Table1For(app, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.EstimatedPct, "est-%")
	b.ReportMetric(row.ActualPct, "actual-%")
	b.ReportMetric(row.Accuracy, "accuracy-%")
	b.ReportMetric(row.PaperEstPct, "paper-est-%")
	b.ReportMetric(row.PaperActPct, "paper-actual-%")
}

func BenchmarkTable1CumfALS(b *testing.B) { benchTable1(b, "cumf_als") }
func BenchmarkTable1CuIBM(b *testing.B)   { benchTable1(b, "cuibm") }
func BenchmarkTable1AMG(b *testing.B)     { benchTable1(b, "amg") }
func BenchmarkTable1Rodinia(b *testing.B) { benchTable1(b, "rodinia_gaussian") }

// BenchmarkTable1Accuracy reports the §5.1 combined estimate accuracy
// (paper: "around 77% combined accuracy across all applications").
func BenchmarkTable1Accuracy(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		sum = 0
		for _, app := range []string{"cumf_als", "cuibm", "amg", "rodinia_gaussian"} {
			row, err := experiments.Table1For(app, benchScale)
			if err != nil {
				b.Fatal(err)
			}
			sum += row.Accuracy
		}
	}
	b.ReportMetric(sum/4, "combined-accuracy-%")
}

// --- Table 2: NVProf vs HPCToolkit vs Diogenes per CUDA function ----------

func benchTable2(b *testing.B, app, fn string) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2For(app, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Func != fn {
			continue
		}
		if !r.NVProfCrashed {
			b.ReportMetric(r.NVProfPct, "nvprof-%")
			b.ReportMetric(float64(r.NVProfPos), "nvprof-pos")
		}
		b.ReportMetric(r.HPCPct, "hpctoolkit-%")
		b.ReportMetric(r.DiogenesPct, "diogenes-%")
		b.ReportMetric(float64(r.DiogenesPos), "diogenes-pos")
		return
	}
	b.Fatalf("function %s missing from %s rows", fn, app)
}

// The headline rows of Table 2.
func BenchmarkTable2CumfALSDeviceSync(b *testing.B) {
	benchTable2(b, "cumf_als", "cudaDeviceSynchronize")
}
func BenchmarkTable2CumfALSFree(b *testing.B) { benchTable2(b, "cumf_als", "cudaFree") }
func BenchmarkTable2AMGMemset(b *testing.B)   { benchTable2(b, "amg", "cudaMemset") }
func BenchmarkTable2RodiniaThreadSync(b *testing.B) {
	benchTable2(b, "rodinia_gaussian", "cudaThreadSynchronize")
}

// BenchmarkTable2CuIBMCrash reproduces the §5.2 NVProf crash on cuIBM.
func BenchmarkTable2CuIBMCrash(b *testing.B) {
	crashes := 0
	for i := 0; i < b.N; i++ {
		spec, err := apps.ByName("cuibm")
		if err != nil {
			b.Fatal(err)
		}
		_, err = profiler.NVProf(spec.New(benchScale, apps.Original),
			spec.Factory(), experiments.NVProfConfigForScale(benchScale))
		if !errors.Is(err, profiler.ErrProfilerCrash) {
			b.Fatalf("NVProf survived cuibm: %v", err)
		}
		crashes++
	}
	b.ReportMetric(float64(crashes)/float64(b.N), "crash-rate")
}

// --- Figure 4: identical wait, different benefit ---------------------------

func figure4Graph(largeBenefit bool) *graph.Graph {
	const ms = simtime.Millisecond
	g := graph.New(0)
	add := func(t graph.NodeType, d simtime.Duration, p graph.Problem) {
		g.AddCPU(&graph.Node{Type: t, OutCPU: d, Problem: p})
	}
	add(graph.CWork, 8*ms, graph.ProblemNone)
	add(graph.CLaunch, 1*ms, graph.ProblemNone)
	add(graph.CWait, 10*ms, graph.UnnecessarySync) // the removed CWait0
	if largeBenefit {
		add(graph.CWork, 5*ms, graph.ProblemNone)
		add(graph.CLaunch, 1*ms, graph.ProblemNone)
		add(graph.CWork, 5*ms, graph.ProblemNone)
		add(graph.CWait, 4*ms, graph.ProblemNone)
		add(graph.CWork, 4*ms, graph.ProblemNone)
	} else {
		add(graph.CWork, 3*ms, graph.ProblemNone)
		add(graph.CWait, 9*ms, graph.ProblemNone)
		add(graph.CWork, 5*ms, graph.ProblemNone)
	}
	return g
}

// BenchmarkFigure4 evaluates both sides of Figure 4: the same 10ms wait
// yields its full duration on the large-benefit side and only the 3ms of
// interleaved CPU work on the small-benefit side.
func BenchmarkFigure4(b *testing.B) {
	large, small := figure4Graph(true), figure4Graph(false)
	var lb, sb simtime.Duration
	for i := 0; i < b.N; i++ {
		lb = graph.ExpectedBenefit(large, graph.Options{}).Total
		sb = graph.ExpectedBenefit(small, graph.Options{}).Total
	}
	b.ReportMetric(lb.Seconds()*1e3, "large-benefit-ms")
	b.ReportMetric(sb.Seconds()*1e3, "small-benefit-ms")
}

// --- Figure 5: the expected-benefit algorithm itself -----------------------

// BenchmarkFigure5Algorithm measures the algorithm on a large execution
// graph (the per-analysis hot path).
func BenchmarkFigure5Algorithm(b *testing.B) {
	g := graph.New(0)
	rng := simtime.NewRNG(1)
	for i := 0; i < 20000; i++ {
		t := graph.CWork
		p := graph.ProblemNone
		switch i % 4 {
		case 1:
			t = graph.CLaunch
		case 2:
			t = graph.CWait
			if rng.Intn(3) == 0 {
				p = graph.UnnecessarySync
			}
		}
		g.AddCPU(&graph.Node{Type: t, OutCPU: simtime.Duration(rng.Intn(1000)) * simtime.Microsecond, Problem: p})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.ExpectedBenefit(g, graph.Options{})
	}
}

// --- Figures 6-8: the tool displays ----------------------------------------

func cumfAnalysis(b *testing.B) *ffm.Analysis {
	b.Helper()
	rep, err := experiments.RunApp("cumf_als", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return rep.Analysis
}

// BenchmarkFigure6 regenerates the cumf_als sequence listing and reports
// its header quantities (paper: 155.785s, 11.45%, 23 entries).
func BenchmarkFigure6(b *testing.B) {
	a := cumfAnalysis(b)
	b.ResetTimer()
	var top ffm.StaticSequence
	for i := 0; i < b.N; i++ {
		seqs := a.StaticSequences()
		if len(seqs) == 0 {
			b.Fatal("no sequences")
		}
		top = seqs[0]
		if err := diogenes.WriteSequence(io.Discard, a, top); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(top.Entries)), "entries")
	b.ReportMetric(float64(top.Syncs), "sync-issues")
	b.ReportMetric(float64(top.Transfers), "transfer-issues")
	b.ReportMetric(a.Percent(top.Benefit), "recoverable-%")
}

// BenchmarkFigure7 regenerates the cuIBM overview and cudaFree fold
// expansion (paper: fold on cudaFree 22.52%, contiguous_storage 10.84%).
func BenchmarkFigure7(b *testing.B) {
	rep, err := experiments.RunApp("cuibm", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	a := rep.Analysis
	b.ResetTimer()
	var freePct, storagePct float64
	for i := 0; i < b.N; i++ {
		if err := diogenes.WriteOverview(io.Discard, a); err != nil {
			b.Fatal(err)
		}
		for _, fold := range a.APIFolds() {
			if fold.Func != "cudaFree" {
				continue
			}
			freePct = fold.Percent
			for _, c := range fold.Children {
				if c.Base == "thrust::detail::contiguous_storage::allocate" {
					storagePct = c.Percent
				}
			}
		}
	}
	b.ReportMetric(freePct, "free-fold-%")
	b.ReportMetric(storagePct, "contiguous-storage-%")
}

// BenchmarkFigure8 regenerates the subsequence refinement (paper: entries
// 10..23 recover 137.136s, 10.08%, vs 11.45% for the whole sequence).
func BenchmarkFigure8(b *testing.B) {
	a := cumfAnalysis(b)
	seqs := a.StaticSequences()
	if len(seqs) == 0 {
		b.Fatal("no sequences")
	}
	top := seqs[0]
	b.ResetTimer()
	var sub ffm.StaticSequence
	for i := 0; i < b.N; i++ {
		var err error
		sub, err = a.SubsequenceBenefit(top, 10, len(top.Entries))
		if err != nil {
			b.Fatal(err)
		}
		if err := diogenes.WriteSubsequence(io.Discard, a, sub); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.Percent(sub.Benefit), "subsequence-%")
	b.ReportMetric(a.Percent(top.Benefit), "full-sequence-%")
}

// --- §5.3: data-collection overhead ----------------------------------------

func benchOverhead(b *testing.B, app string) {
	var rep *ffm.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.RunApp(app, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.OverheadMultiple(), "collection-x")
	b.ReportMetric(rep.Stage3Time.Seconds()/rep.UninstrumentedTime.Seconds(), "stage3-x")
}

func BenchmarkOverheadCumfALS(b *testing.B) { benchOverhead(b, "cumf_als") } // paper: 8x
func BenchmarkOverheadCuIBM(b *testing.B)   { benchOverhead(b, "cuibm") }    // paper: 20x

// --- §3.1: synchronization-function discovery -------------------------------

func BenchmarkSyncDiscovery(b *testing.B) {
	factory := diogenes.DefaultFactory()
	for i := 0; i < b.N; i++ {
		base, err := ffm.RunBaseline(apps.Must("rodinia_gaussian").New(0.02, apps.Original), factory, ffm.DefaultOverheads())
		if err != nil {
			b.Fatal(err)
		}
		if base.SyncFunnel == "" {
			b.Fatal("discovery failed")
		}
	}
}

// --- Micro-benchmarks on the core data structures ---------------------------

func BenchmarkHashStoreInsert(b *testing.B) {
	payload := make([]byte, 64<<10)
	simtime.NewRNG(1).Bytes(payload)
	s := hashstore.New()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload[0] = byte(i) // vary content
		s.Insert(payload, int64(i))
	}
}

func BenchmarkGraphBuild(b *testing.B) {
	run := &trace.Run{App: "bench", ExecTime: simtime.Duration(1) * simtime.Second}
	var at simtime.Time
	for i := 0; i < 10000; i++ {
		at = at.Add(50 * simtime.Microsecond)
		run.Records = append(run.Records, trace.Record{
			Seq: int64(i), Func: "cudaFree", Class: trace.ClassSync,
			Entry: at, Exit: at.Add(30 * simtime.Microsecond), SyncWait: 20 * simtime.Microsecond,
		})
		at = at.Add(30 * simtime.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ffm.BuildGraph(run, ffm.DefaultAnalysisOptions())
	}
}

func BenchmarkFullPipelineRodinia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunApp("rodinia_gaussian", 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Provenance ledger: append overhead by mode ------------------------------

// benchLedgerAppend measures DiskStore.Put with a given provenance mode:
// batch 0 attaches no ledger (the baseline store write), batch 1 is the
// direct mode (every append seals its own batch and syncs the file),
// batch 64 is the default Merkle batching (the sync amortizes across the
// batch). The difference against baseline is the per-report provenance
// cost EXPERIMENTS.md tabulates.
func benchLedgerAppend(b *testing.B, batch int) {
	dir := b.TempDir()
	st, err := serve.OpenDiskStore(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	if batch > 0 {
		l, err := ledger.Open(ledger.Config{
			Path: dir + "/ledger.log", BatchSize: batch, FlushInterval: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		st.AttachLedger(l)
	}
	payload := make([]byte, 32<<10)
	simtime.NewRNG(7).Bytes(payload)
	const storeKey = "a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1a3f1"
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload[0], payload[1] = byte(i), byte(i>>8) // vary content, vary digest
		if err := st.Put(storeKey, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLedgerAppendBaseline(b *testing.B) { benchLedgerAppend(b, 0) }
func BenchmarkLedgerAppendDirect(b *testing.B)   { benchLedgerAppend(b, 1) }
func BenchmarkLedgerAppendMerkle64(b *testing.B) { benchLedgerAppend(b, 64) }

// --- Ablations: the design choices DESIGN.md calls out ----------------------

// BenchmarkAblationMisplacedClamp compares the paper-faithful unclamped
// misplaced-synchronization estimate (Figure 5 returns FirstUseTime
// unbounded) against the physically-bounded variant.
func BenchmarkAblationMisplacedClamp(b *testing.B) {
	g := graph.New(0)
	g.AddCPU(&graph.Node{Type: graph.CWork, OutCPU: 5 * simtime.Millisecond})
	n := g.AddCPU(&graph.Node{Type: graph.CWait, OutCPU: 2 * simtime.Millisecond, Problem: graph.MisplacedSync})
	n.FirstUseTime = 8 * simtime.Millisecond
	g.AddCPU(&graph.Node{Type: graph.CWork, OutCPU: 20 * simtime.Millisecond})

	var plain, clamped simtime.Duration
	for i := 0; i < b.N; i++ {
		plain = graph.ExpectedBenefit(g, graph.Options{}).Total
		clamped = graph.ExpectedBenefit(g, graph.Options{ClampMisplacedBenefit: true}).Total
	}
	b.ReportMetric(plain.Seconds()*1e3, "paper-ms")
	b.ReportMetric(clamped.Seconds()*1e3, "clamped-ms")
}

// BenchmarkAblationSequenceCarry compares the §3.5.2 carry-forward sequence
// evaluation against plain per-node evaluation on a chain where carried
// savings must pass over a misplaced synchronization to reach later idle
// windows — the case the modification exists for.
func BenchmarkAblationSequenceCarry(b *testing.B) {
	const ms = simtime.Millisecond
	g := graph.New(0)
	add := func(t graph.NodeType, d simtime.Duration, p graph.Problem) *graph.Node {
		return g.AddCPU(&graph.Node{Type: t, OutCPU: d, Problem: p})
	}
	m0 := add(graph.CWait, 10*ms, graph.UnnecessarySync)
	add(graph.CWork, 1*ms, graph.ProblemNone)
	m1 := add(graph.CWait, 2*ms, graph.MisplacedSync)
	m1.FirstUseTime = 1 * ms
	add(graph.CWork, 8*ms, graph.ProblemNone)
	m2 := add(graph.CWait, 2*ms, graph.UnnecessarySync)
	add(graph.CWork, 4*ms, graph.ProblemNone)
	add(graph.CWait, 5*ms, graph.ProblemNone)
	members := []*graph.Node{m0, m1, m2}

	var carry, plain simtime.Duration
	for i := 0; i < b.N; i++ {
		carry = graph.SequenceBenefit(g, members, graph.Options{}).Total
		plain = graph.ExpectedBenefit(g, graph.Options{}).Total
	}
	b.ReportMetric(carry.Seconds()*1e3, "carry-forward-ms")
	b.ReportMetric(plain.Seconds()*1e3, "plain-ms")
}

// BenchmarkAblationStage2Timing compares estimates computed from the
// lightweight stage-2 timings (the shipped behaviour) against estimates
// computed from the heavyweight stage-3 run directly — quantifying why the
// pipeline bothers matching timings across runs.
func BenchmarkAblationStage2Timing(b *testing.B) {
	spec, err := apps.ByName("rodinia_gaussian")
	if err != nil {
		b.Fatal(err)
	}
	app := spec.New(benchScale, apps.Original)
	factory := spec.Factory()
	ov := ffm.DefaultOverheads()
	var matchedPct, rawPct float64
	for i := 0; i < b.N; i++ {
		base, err := ffm.RunBaseline(app, factory, ov)
		if err != nil {
			b.Fatal(err)
		}
		s2, err := ffm.RunDetailedTracing(app, factory, base, ov)
		if err != nil {
			b.Fatal(err)
		}
		s3, err := ffm.RunMemoryTracing(app, factory, base, ov)
		if err != nil {
			b.Fatal(err)
		}
		s4, _, err := ffm.RunSyncUse(app, factory, base, s3, ov)
		if err != nil {
			b.Fatal(err)
		}
		raw := ffm.Analyze(s4, ffm.DefaultAnalysisOptions())
		rawPct = raw.Percent(raw.TotalBenefit())
		ffm.MatchStage2Timing(s4, s2)
		matched := ffm.Analyze(s4, ffm.DefaultAnalysisOptions())
		matchedPct = matched.Percent(matched.TotalBenefit())
	}
	b.ReportMetric(matchedPct, "stage2-timed-%")
	b.ReportMetric(rawPct, "stage3-timed-%")
}

// BenchmarkAutofix measures the §6 automatic-correction loop end to end:
// plan from an analysis, apply by call elision, validate with the §5.1
// mprotect guard.
func BenchmarkAutofix(b *testing.B) {
	rep, err := experiments.RunApp("cumf_als", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	spec, _ := apps.ByName("cumf_als")
	b.ResetTimer()
	var v *autofix.Validation
	for i := 0; i < b.N; i++ {
		plan := autofix.BuildPlan(rep.Analysis, autofix.DefaultOptions())
		v, err = autofix.Apply(spec.New(benchScale, apps.Original), spec.Factory(), plan, autofix.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if !v.Valid {
			b.Fatalf("fix rejected: %s", v.GuardViolation)
		}
	}
	b.ReportMetric(v.RealizedPct, "realized-%")
	b.ReportMetric(v.EstimatedPct, "estimated-%")
	b.ReportMetric(float64(v.SuppressedCalls), "calls-elided")
}

// BenchmarkAblationSingleRun quantifies §2.1's motivation for the multi-run
// model: a Paradyn-style single-run tool, attaching detail instrumentation
// as synchronizing functions are discovered mid-run, permanently loses the
// occurrences before each discovery.
func BenchmarkAblationSingleRun(b *testing.B) {
	spec, err := apps.ByName("rodinia_gaussian")
	if err != nil {
		b.Fatal(err)
	}
	factory := spec.Factory()
	funnel, err := interpose.Discover(func() *cuda.Context { return factory.New().Ctx })
	if err != nil {
		b.Fatal(err)
	}
	var single *ffm.SingleRunResult
	var multi *trace.Run
	for i := 0; i < b.N; i++ {
		app := spec.New(0.05, apps.Original)
		single, err = ffm.RunSingleRun(app, factory, funnel, ffm.DefaultOverheads())
		if err != nil {
			b.Fatal(err)
		}
		base, err := ffm.RunBaseline(app, factory, ffm.DefaultOverheads())
		if err != nil {
			b.Fatal(err)
		}
		multi, err = ffm.RunDetailedTracing(app, factory, base, ffm.DefaultOverheads())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(single.MissedFraction()*100, "single-run-missed-%")
	b.ReportMetric(float64(len(single.Run.Records)), "single-run-records")
	b.ReportMetric(float64(len(multi.Records)), "multi-run-records")
}

// --- Parallel execution engine ----------------------------------------------

// benchTable1Engine regenerates the whole of Table 1 through a fresh engine
// per iteration, so the report cache cannot carry results across iterations
// and the measured time is a full four-app suite execution.
func benchTable1Engine(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		eng := experiments.NewEngine(workers)
		rows, err := eng.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable1Serial is the historical one-app-at-a-time suite.
func BenchmarkTable1Serial(b *testing.B) { benchTable1Engine(b, 1) }

// BenchmarkTable1Parallel4 runs the same suite with four app workers plus
// intra-pipeline stage overlap; compare ns/op against BenchmarkTable1Serial
// for the wall-clock speedup (the outputs are byte-identical — the
// experiments package's determinism tests prove it).
func BenchmarkTable1Parallel4(b *testing.B) { benchTable1Engine(b, 4) }

// BenchmarkTable1ThenTable2Cached measures the cross-suite cache: table1
// followed by a full table2 on one engine, where every Diogenes pipeline
// table2 needs is already memoized.
func BenchmarkTable1ThenTable2Cached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := experiments.NewEngine(4)
		if _, err := eng.Table1(benchScale); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Table2(benchScale, nil); err != nil {
			b.Fatal(err)
		}
		hits, _, _ := eng.Cache.Stats()
		if hits == 0 {
			b.Fatal("cache produced no hits")
		}
	}
}

// BenchmarkFleetAMG4 runs the all-ranks fleet analysis on AMG's 4-rank
// world through a fresh engine per iteration (no cache carry-over), and
// reports the cross-rank aggregation as metrics. The aggregation is a
// virtual-time model output, identical on any host — the CI regression
// gate pins the metric values while ns/op tracks the fan-out cost.
func BenchmarkFleetAMG4(b *testing.B) {
	var fr *ffm.FleetReport
	for i := 0; i < b.N; i++ {
		eng := experiments.NewEngine(4)
		var err error
		fr, err = eng.Fleet("amg", 0.05, 4)
		if err != nil {
			b.Fatal(err)
		}
		if fr.Partial {
			b.Fatal("fleet run degraded")
		}
	}
	b.ReportMetric(float64(len(fr.Duplicates)), "cross-rank-dups")
	b.ReportMetric(float64(fr.CrossRankDupBytes), "dup-bytes")
	b.ReportMetric(float64(len(fr.Problems)), "fleet-problems")
	b.ReportMetric(float64(fr.Analyzed), "ranks-analyzed")
}

// --- Fleet at scale: the streaming reduction's memory profile -----------------

// fleetBenchOutcome fabricates one rank's pipeline outcome directly, so the
// at-scale benchmarks measure the reduction — fold, adjacent merges, assembly —
// rather than 1024 whole-world simulations. The shape mirrors a real fleet:
// a handful of digests shared by every rank (the cross-rank duplicates the
// report exists to find), two digests unique to the rank (carried to assembly,
// then dropped), and a small per-rank problem overview.
func fleetBenchOutcome(rank int) ffm.RankOutcome {
	run := &trace.Run{App: "fleet-bench", ExecTime: simtime.Duration(1) * simtime.Second}
	var seq int64
	add := func(rec trace.Record) {
		seq++
		rec.Seq = seq
		run.Records = append(run.Records, rec)
	}
	for i := 0; i < 6; i++ {
		add(trace.Record{
			Func: "cudaMemcpy", Class: trace.ClassTransfer,
			Bytes: 32768 + 4096*i, Duplicate: true,
			Hash: fleetDigest(0, uint64(i+1)),
		})
	}
	for i := 0; i < 2; i++ {
		add(trace.Record{
			Func: "cudaMemcpyAsync", Class: trace.ClassTransfer,
			Bytes: 4096, Hash: fleetDigest(uint64(rank+1), uint64(i)),
		})
	}
	g := graph.New(0)
	g.AddCPU(&graph.Node{Type: graph.CWait, OutCPU: simtime.Duration(1+rank%3) * simtime.Millisecond, Problem: graph.UnnecessarySync})
	an := &ffm.Analysis{
		App: "fleet-bench", ExecTime: run.ExecTime, Graph: g,
		Overview: []graph.Group{
			{Kind: graph.SinglePoint, Label: "cudaFree", Benefit: simtime.Duration(1+rank%5) * simtime.Millisecond},
			{Kind: graph.SinglePoint, Label: []string{"sync0", "sync1", "sync2", "sync3"}[rank%4], Benefit: simtime.Duration(100+rank%7) * simtime.Microsecond},
		},
	}
	return ffm.RankOutcome{
		Rank: rank, Attempts: 1,
		Report: &ffm.Report{
			App:                "fleet-bench",
			UninstrumentedTime: simtime.Duration(10+rank%16) * simtime.Millisecond,
			Trace:              run,
			Analysis:           an,
		},
	}
}

// fleetDigest builds a 16-hex-char digest: owner 0 for fleet-wide shared
// content, owner rank+1 for content unique to a rank.
func fleetDigest(owner, i uint64) string {
	const hex = "0123456789abcdef"
	var buf [16]byte
	v := owner<<16 | i
	for j := len(buf) - 1; j >= 0; j-- {
		buf[j] = hex[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}

// benchFleet measures the streaming fleet reduction at a given world width.
// Run with -benchmem and compare B/op across widths: the reduction's claim is
// O(aggregate-state) memory, so allocated bytes per rank must stay flat as the
// world grows (the CI gate pins 1024-rank bytes/rank within 1.5x of 64-rank).
func benchFleet(b *testing.B, ranks int) {
	b.ReportAllocs()
	var fr *ffm.FleetReport
	for i := 0; i < b.N; i++ {
		eng := experiments.NewEngine(8)
		var err error
		fr, err = eng.FleetReduce("fleet-bench", ranks, fleetBenchOutcome)
		if err != nil {
			b.Fatal(err)
		}
		if fr.Analyzed != ranks || len(fr.Duplicates) != 6 {
			b.Fatalf("reduction lost data: analyzed=%d dups=%d", fr.Analyzed, len(fr.Duplicates))
		}
	}
	b.ReportMetric(float64(len(fr.Duplicates)), "cross-rank-dups")
	b.ReportMetric(float64(fr.Analyzed), "ranks-analyzed")
}

func BenchmarkFleet64(b *testing.B)   { benchFleet(b, 64) }
func BenchmarkFleet256(b *testing.B)  { benchFleet(b, 256) }
func BenchmarkFleet1024(b *testing.B) { benchFleet(b, 1024) }

// --- Self-measurement layer ---------------------------------------------------

// BenchmarkObsOverhead quantifies what the observability layer itself costs:
// the same pipeline runs with and without an attached observer, interleaved
// so machine drift cancels, and the wall-clock difference is reported as
// overhead-%. The layer's budget is <5% — span creation is a handful of
// small allocations per stage and every hot-path event is a cached-pointer
// atomic. (The tool that measures other tools' overhead should know its own.)
func BenchmarkObsOverhead(b *testing.B) {
	run := func(o *obs.Observer) time.Duration {
		eng := &experiments.Engine{Workers: 1} // no cache: every run is a real run
		eng.SetObserver(o)
		start := time.Now()
		if _, err := eng.RunApp("rodinia_gaussian", 0.05); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm up both paths once so neither pays first-run costs.
	run(nil)
	run(obs.New("diogenes"))
	var plain, observed time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain += run(nil)
		observed += run(obs.New("diogenes"))
	}
	b.StopTimer()
	if plain > 0 {
		b.ReportMetric(100*(float64(observed)-float64(plain))/float64(plain), "overhead-%")
	}
}
