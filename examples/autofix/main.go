// autofix: the paper's §6 future work, working end to end — derive a patch
// plan from an FFM analysis, apply it by call-site elision, validate the
// realized benefit, and demonstrate the §5.1 const/mprotect correctness
// guard rejecting an unsafe deduplication when the input changes.
//
//	go run ./examples/autofix
package main

import (
	"fmt"
	"log"

	"diogenes"
	"diogenes/internal/autofix"
	"diogenes/internal/cuda"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// solverApp uploads an unchanged stencil every step and frees a scratch
// buffer while its kernel runs. With mutate=true the "unchanged" stencil is
// updated halfway — the case the guard must catch.
type solverApp struct {
	steps  int
	mutate bool
}

func (solverApp) Name() string { return "solver" }

func (a solverApp) Run(p *diogenes.Process) error {
	const stencilBytes = 24 << 10
	stencil := p.Host.Alloc(stencilBytes, "stencil")
	out := p.Host.Alloc(4096, "out")
	fill := make([]byte, stencilBytes)
	simtime.NewRNG(11).Bytes(fill)
	if err := p.Host.Poke(stencil.Base(), fill); err != nil {
		return err
	}
	devStencil, err := p.Ctx.Malloc(stencilBytes, "dev stencil")
	if err != nil {
		return err
	}
	devOut, err := p.Ctx.Malloc(4096, "dev out")
	if err != nil {
		return err
	}

	var runErr error
	for s := 0; s < a.steps && runErr == nil; s++ {
		s := s
		p.In("advance", "solver.cpp", 60, func() {
			if a.mutate && s == a.steps/2 {
				p.At(61)
				if runErr = p.Write(stencil.Base(), []byte{0xFF}, 61); runErr != nil {
					return
				}
			}
			p.At(63)
			if runErr = p.Ctx.MemcpyH2D(devStencil.Base(), stencil.Base(), stencilBytes); runErr != nil {
				return
			}
			scratch, err := p.Ctx.Malloc(8<<10, "scratch")
			if err != nil {
				runErr = err
				return
			}
			p.At(66)
			if _, err := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "stencil_sweep", Duration: 1500 * simtime.Microsecond, Stream: gpu.LegacyStream,
				Writes: []cuda.KernelWrite{{Ptr: devOut.Base(), Size: 256, Seed: uint64(s)}},
			}); err != nil {
				runErr = err
				return
			}
			p.CPUWork(250 * simtime.Microsecond)
			p.At(70)
			if runErr = p.Ctx.Free(scratch); runErr != nil {
				return
			}
			p.CPUWork(350 * simtime.Microsecond)
			p.At(74)
			if runErr = p.Ctx.MemcpyD2H(out.Base(), devOut.Base(), 256); runErr != nil {
				return
			}
			if _, err := p.Read(out.Base(), 16, 75); err != nil {
				runErr = err
			}
		})
	}
	return runErr
}

func main() {
	factory := diogenes.DefaultFactory()

	fmt.Println("1. Measure: run the five FFM stages.")
	rep, err := ffm.Run(solverApp{steps: 40}, diogenes.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2. Plan: derive call-site corrections from the analysis.")
	plan := autofix.BuildPlan(rep.Analysis, autofix.DefaultOptions())
	for i, a := range plan.Actions {
		fmt.Printf("   %d. [%s] %s — est %.3fs over %d occurrences\n",
			i+1, a.Kind, a.Label, a.Estimated.Seconds(), a.Count)
	}
	for _, s := range plan.Skipped {
		fmt.Printf("   skipped: %s\n", s)
	}

	fmt.Println("3. Apply & validate: elide the calls, guard transfer sources.")
	v, err := autofix.Apply(solverApp{steps: 40}, factory, plan, autofix.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   original %.3fs -> patched %.3fs: realized %.3fs (%.1f%%; estimated %.1f%%)\n",
		v.OriginalTime.Seconds(), v.PatchedTime.Seconds(),
		v.Realized.Seconds(), v.RealizedPct, v.EstimatedPct)
	fmt.Printf("   %d calls elided, %d transfer sources write-protected\n",
		v.SuppressedCalls, v.GuardedRanges)

	fmt.Println("4. Safety: the same plan on an input that mutates the stencil.")
	v2, err := autofix.Apply(solverApp{steps: 40, mutate: true}, factory, plan, autofix.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if v2.Valid {
		log.Fatal("expected the correctness guard to reject the fix")
	}
	fmt.Printf("   FIX REJECTED, as it must be:\n   %s\n", v2.GuardViolation)
	fmt.Println("\nThis is §5.1's const/mprotect validation automated: a removed")
	fmt.Println("transfer's source pages are write-protected, so an input that")
	fmt.Println("invalidates the deduplication faults instead of corrupting results.")
}
