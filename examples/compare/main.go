// compare: reproduces Table 2 — side-by-side per-CUDA-function results from
// NVProf-sim, HPCToolkit-sim, and Diogenes — for every modelled application,
// showing how expected-benefit output differs from resource-consumption
// profiles "in both output order and magnitude ... as much as 99%".
//
//	go run ./examples/compare [-scale 0.25] [-app name]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"diogenes"
	"diogenes/internal/experiments"
	"diogenes/internal/report"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale (1.0 = full modelled size)")
	app := flag.String("app", "", "restrict to one application")
	flag.Parse()

	names := []string{}
	if *app != "" {
		names = append(names, *app)
	} else {
		for _, w := range diogenes.Workloads() {
			names = append(names, w.Name)
		}
	}

	for i, name := range names {
		rows, err := experiments.Table2For(name, *scale)
		if err != nil {
			log.Fatal(err)
		}
		if i > 0 {
			fmt.Println()
		}
		if err := report.Table2(os.Stdout, name, rows); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - NVProf and HPCToolkit report time *consumed* per call; for")
	fmt.Println("    synchronizing calls that silently includes wait time CUPTI never")
	fmt.Println("    itemizes (implicit and conditional synchronizations).")
	fmt.Println("  - Diogenes reports the time *recoverable* by fixing the call's")
	fmt.Println("    problematic operations — which reorders the columns entirely")
	fmt.Println("    (cumf_als: cudaDeviceSynchronize drops from #1 to ≈0).")
	fmt.Println("  - '-' means Diogenes collects no data on the call: it neither")
	fmt.Println("    synchronizes nor transfers (cudaMalloc, cudaLaunchKernel).")
	fmt.Println("  - cuIBM crashes NVProf at full scale, as in the paper.")
}
