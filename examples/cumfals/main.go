// cumf_als walkthrough: reproduces the paper's §5.1 case study end to end —
// the Figure 6 sequence listing, the Figure 8 subsequence refinement, and
// the Table 1 estimated-vs-actual comparison for the ALS matrix
// factorization workload.
//
//	go run ./examples/cumfals [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"diogenes"
	"diogenes/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale (1.0 = full modelled size)")
	flag.Parse()

	fmt.Println("Running the five FFM stages on cumf_als ...")
	rep, err := diogenes.RunWorkload("cumf_als", *scale)
	if err != nil {
		log.Fatal(err)
	}
	a := rep.Analysis

	// Figure 6: the per-iteration problem sequence.
	seqs := a.StaticSequences()
	if len(seqs) == 0 {
		log.Fatal("no problem sequences found")
	}
	top := seqs[0]
	fmt.Println("\n== Figure 6: the problem sequence ==")
	if err := diogenes.WriteSequence(os.Stdout, a, top); err != nil {
		log.Fatal(err)
	}

	// Figure 8: refine to the fixable core (entries 10..23), exactly as
	// the paper did — "the evaluation of the benefit of fixing this subset
	// of operations does not require additional data collection".
	from, to := 10, len(top.Entries)
	sub, err := a.SubsequenceBenefit(top, from, to)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 8: subsequence refinement ==")
	if err := diogenes.WriteSubsequence(os.Stdout, a, sub); err != nil {
		log.Fatal(err)
	}

	// Table 1: apply the fix and compare.
	fmt.Println("\n== Table 1: estimate vs reality ==")
	orig, fixed, err := experiments.ActualReduction("cumf_als", *scale)
	if err != nil {
		log.Fatal(err)
	}
	actual := orig - fixed
	fmt.Printf("estimated benefit (subsequence %d..%d): %8.3fs (%5.2f%% of execution)\n",
		from, to, sub.Benefit.Seconds(), 100*float64(sub.Benefit)/float64(orig))
	fmt.Printf("actual reduction after the fix:         %8.3fs (%5.2f%% of execution)\n",
		actual.Seconds(), 100*float64(actual)/float64(orig))
	fmt.Printf("paper: estimated 137s (10.0%%), actual 106s (8.3%%), 77%% accurate\n")

	// The §5.2 headline: NVProf blames cudaDeviceSynchronize; Diogenes
	// shows removing it is worthless.
	fmt.Println("\n== Why resource profiles mislead here ==")
	for _, s := range a.SavingsByFunc() {
		fmt.Printf("  Diogenes: %-24s %8.3fs (%5.2f%%)\n", s.Func, s.Savings.Seconds(), s.Percent)
	}
	fmt.Println("  (NVProf attributes ~52% of execution to cudaDeviceSynchronize;")
	fmt.Println("   the paper verified removing those calls changed nothing.)")
}
