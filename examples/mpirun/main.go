// mpirun: instrument one rank of a multi-rank (MPI-style) job, the way
// Diogenes attaches to a single process of AMG's parallel launch. The
// program is a bulk-synchronous stencil solver with a deliberately slow
// straggler rank; the observed rank's findings include its own problematic
// cudaFree calls, while the collective skew appears as plain CPU gaps.
//
//	go run ./examples/mpirun [-ranks 4] [-observe 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"diogenes"
	"diogenes/internal/cuda"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// stencil is the per-rank program: each superstep exchanges halos
// (modelled as CPU work), runs a sweep kernel, and frees a scratch buffer
// while the kernel is still in flight.
type stencil struct{ supersteps int }

type rankState struct{ field *gpu.DevBuf }

func (s *stencil) Name() string { return "mpi-stencil" }
func (s *stencil) Steps() int   { return s.supersteps }

func (s *stencil) Setup(p *proc.Process, rank int) (mpi.RankState, error) {
	field, err := p.Ctx.Malloc(1<<20, "field partition")
	if err != nil {
		return nil, err
	}
	return &rankState{field: field}, nil
}

func (s *stencil) Step(p *proc.Process, rank int, st mpi.RankState, step int) error {
	state := st.(*rankState)
	var err error
	p.In("sweep", "stencil.c", 90, func() {
		// Rank 2 is the straggler: 50% more work per superstep.
		dur := 2 * simtime.Millisecond
		if rank == 2 {
			dur = 3 * simtime.Millisecond
		}
		scratch, e := p.Ctx.Malloc(32<<10, "halo scratch")
		if e != nil {
			err = e
			return
		}
		p.At(94)
		if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
			Name: "stencil_sweep", Duration: dur, Stream: gpu.LegacyStream,
			Writes: []cuda.KernelWrite{{Ptr: state.field.Base(), Size: 256, Seed: uint64(rank*10000 + step)}},
		}); e != nil {
			err = e
			return
		}
		p.CPUWork(400 * simtime.Microsecond) // pack halos
		p.At(98)
		if e := p.Ctx.Free(scratch); e != nil {
			err = e
			return
		}
		p.CPUWork(300 * simtime.Microsecond) // unpack halos
	})
	return err
}

func main() {
	ranks := flag.Int("ranks", 4, "world size")
	observe := flag.Int("observe", 0, "rank to instrument")
	flag.Parse()

	cfg := mpi.Config{
		Ranks:          *ranks,
		BarrierLatency: 30 * simtime.Microsecond,
		Factory:        diogenes.DefaultFactory(),
	}
	app := mpi.App(&stencil{supersteps: 40}, cfg, *observe)

	fmt.Printf("Instrumenting %s (world of %d ranks, rank 2 is a straggler)\n",
		app.Name(), *ranks)
	rep, err := ffm.Run(app, diogenes.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	if err := diogenes.WriteSavings(os.Stdout, rep.Analysis); err != nil {
		log.Fatal(err)
	}
	st := rep.Overlap()
	fmt.Printf("\nObserved rank's GPU utilization: %.1f%% — the straggler's\n", 100*st.GPUUtilization)
	fmt.Println("collective skew shows up as idle CPU gaps, not as driver calls;")
	fmt.Println("the rank's own cudaFree churn is what Diogenes flags as fixable.")
}
