// cuIBM walkthrough: reproduces the Figure 7 displays — the overview sorted
// by recoverable time and the expansion of the cudaFree fold into the
// Thrust/Cusp template functions responsible — plus the §5.2 NVProf crash
// on this call-heavy workload.
//
//	go run ./examples/cuibm [-scale 0.25]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"diogenes"
	"diogenes/internal/apps"
	"diogenes/internal/experiments"
	"diogenes/internal/profiler"
	"diogenes/internal/report"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale (1.0 = full modelled size)")
	flag.Parse()

	// First, what the vendor-framework tools manage on this workload.
	fmt.Println("== NVProf on cuIBM ==")
	spec, err := apps.ByName("cuibm")
	if err != nil {
		log.Fatal(err)
	}
	_, nvErr := profiler.NVProf(spec.New(*scale, apps.Original),
		spec.Factory(), experiments.NVProfConfigForScale(*scale))
	switch {
	case errors.Is(nvErr, profiler.ErrProfilerCrash):
		fmt.Printf("  %v\n", nvErr)
		fmt.Println("  (the paper hit the same crash: >75M driver calls; §5.2)")
	case nvErr != nil:
		log.Fatal(nvErr)
	default:
		fmt.Println("  completed — raise -scale to reproduce the crash")
	}

	// Diogenes, by contrast, collects through direct instrumentation.
	fmt.Println("\nRunning the five FFM stages on cuIBM ...")
	rep, err := diogenes.RunWorkload("cuibm", *scale)
	if err != nil {
		log.Fatal(err)
	}
	a := rep.Analysis

	fmt.Println("\n== Figure 7 (left): overview ==")
	if err := diogenes.WriteOverview(os.Stdout, a); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Figure 7 (right): expansion of the cudaFree fold ==")
	for _, fold := range a.APIFolds() {
		if fold.Func == "cudaFree" {
			if err := report.ExpandFold(os.Stdout, a, fold); err != nil {
				log.Fatal(err)
			}
			break
		}
	}
	fmt.Println("\nThe repeated allocation/deallocation of temporary GPU storage by")
	fmt.Println("these template functions is the issue the paper fixed with a simple")
	fmt.Println("memory manager, eliminating over 2 million cudaFree/cudaMalloc calls.")

	fmt.Println("\n== §5.3: what this data collection cost ==")
	if err := report.OverheadSummary(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}
}
