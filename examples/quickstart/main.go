// Quickstart: write a small GPU application against the simulated CUDA
// driver, run the five-stage FFM pipeline on it, and read the findings.
//
// The application makes two classic mistakes: it calls cudaFree inside its
// loop while kernels are still running (an implicit synchronization per
// iteration), and it re-uploads the same configuration block every
// iteration (duplicate transfers). Diogenes finds both and estimates what
// fixing them is worth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"diogenes"
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

type simulationApp struct {
	steps int
}

func (simulationApp) Name() string { return "quickstart-sim" }

func (a simulationApp) Run(p *diogenes.Process) error {
	const configBytes = 16 << 10

	// Host-side state: a config block whose content never changes, and a
	// results buffer the CPU consumes each step.
	config := p.Host.Alloc(configBytes, "config block")
	results := p.Host.Alloc(4096, "results")
	payload := make([]byte, configBytes)
	simtime.NewRNG(7).Bytes(payload)
	if err := p.Host.Poke(config.Base(), payload); err != nil {
		return err
	}

	devConfig, err := p.Ctx.Malloc(configBytes, "dev config")
	if err != nil {
		return err
	}
	devResults, err := p.Ctx.Malloc(4096, "dev results")
	if err != nil {
		return err
	}

	var runErr error
	for step := 0; step < a.steps && runErr == nil; step++ {
		step := step
		p.In("simulate", "sim.cpp", 40, func() {
			// Mistake 1: the config never changes, yet it is re-uploaded
			// every step — a duplicate transfer after the first.
			p.At(44)
			if runErr = p.Ctx.MemcpyH2D(devConfig.Base(), config.Base(), configBytes); runErr != nil {
				return
			}

			// A scratch buffer allocated and freed per step; the free
			// synchronizes with the still-running kernel (mistake 2).
			scratch, err := p.Ctx.Malloc(64<<10, "scratch")
			if err != nil {
				runErr = err
				return
			}
			p.At(49)
			if _, err := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name:     "advance",
				Duration: 2 * simtime.Millisecond,
				Stream:   gpu.LegacyStream,
				Writes:   []cuda.KernelWrite{{Ptr: devResults.Base(), Size: 512, Seed: uint64(step)}},
			}); err != nil {
				runErr = err
				return
			}
			p.CPUWork(400 * simtime.Microsecond) // assemble next step
			p.At(53)
			if runErr = p.Ctx.Free(scratch); runErr != nil {
				return
			}
			p.CPUWork(600 * simtime.Microsecond)

			// Pull results down and use them right away: this
			// synchronization is necessary and well placed.
			p.At(58)
			if runErr = p.Ctx.MemcpyD2H(results.Base(), devResults.Base(), 512); runErr != nil {
				return
			}
			if _, err := p.Read(results.Base(), 64, 59); err != nil {
				runErr = err
				return
			}
		})
	}
	return runErr
}

func main() {
	report, err := diogenes.Run(simulationApp{steps: 50})
	if err != nil {
		log.Fatal(err)
	}
	a := report.Analysis

	fmt.Println("== Findings (sorted by expected benefit) ==")
	if err := diogenes.WriteSavings(os.Stdout, a); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Overview ==")
	if err := diogenes.WriteOverview(os.Stdout, a); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nTotal expected benefit: %.3fs of %.3fs (%.1f%% of execution)\n",
		a.TotalBenefit().Seconds(),
		a.ExecTime.Seconds(),
		a.Percent(a.TotalBenefit()))
	fmt.Printf("Data collection cost: %.1fx the uninstrumented run\n", report.OverheadMultiple())
}
