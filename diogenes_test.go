package diogenes_test

import (
	"bytes"
	"strings"
	"testing"

	"diogenes"
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// leakyApp is the quickstart-style custom application: it frees a device
// buffer every iteration while kernels are in flight.
type leakyApp struct{ iters int }

func (leakyApp) Name() string { return "leaky-app" }

func (a leakyApp) Run(p *diogenes.Process) error {
	out := p.Host.Alloc(4096, "result")
	dev, err := p.Ctx.Malloc(4096, "dev result")
	if err != nil {
		return err
	}
	for i := 0; i < a.iters; i++ {
		var tmp *gpu.DevBuf
		p.In("step", "app.cpp", 10, func() {
			tmp, err = p.Ctx.Malloc(1<<16, "scratch")
			if err != nil {
				return
			}
			_, err = p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "work", Duration: simtime.Millisecond, Stream: gpu.LegacyStream,
				Writes: []cuda.KernelWrite{{Ptr: dev.Base(), Size: 256, Seed: uint64(i)}},
			})
			if err != nil {
				return
			}
			p.CPUWork(300 * simtime.Microsecond)
			p.At(15)
			err = p.Ctx.Free(tmp) // implicit sync on in-flight kernel
			if err != nil {
				return
			}
			p.CPUWork(500 * simtime.Microsecond)
			p.At(18)
			err = p.Ctx.MemcpyD2H(out.Base(), dev.Base(), 256)
			if err != nil {
				return
			}
			_, err = p.Read(out.Base(), 16, 19)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func TestFacadeRunFindsLeak(t *testing.T) {
	rep, err := diogenes.Run(leakyApp{iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	savings := rep.Analysis.SavingsByFunc()
	if len(savings) == 0 {
		t.Fatal("no findings")
	}
	if savings[0].Func != "cudaFree" {
		t.Fatalf("top finding = %s, want cudaFree", savings[0].Func)
	}
	if rep.OverheadMultiple() <= 1 {
		t.Fatal("collection cost not accounted")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	ws := diogenes.Workloads()
	if len(ws) != 4 {
		t.Fatalf("workloads = %d", len(ws))
	}
	if _, err := diogenes.WorkloadByName("cumf_als"); err != nil {
		t.Fatal(err)
	}
	if _, err := diogenes.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFacadeRunWorkloadAndRender(t *testing.T) {
	rep, err := diogenes.RunWorkload("rodinia_gaussian", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := diogenes.WriteOverview(&buf, rep.Analysis); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fold on cudaThreadSynchronize") {
		t.Fatalf("overview missing threadSync fold:\n%s", buf.String())
	}
	buf.Reset()
	if err := diogenes.WriteSavings(&buf, rep.Analysis); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cudaThreadSynchronize") {
		t.Fatal("savings missing threadSync row")
	}
	buf.Reset()
	if err := diogenes.WriteJSON(&buf, rep.Analysis); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rodinia_gaussian"`) {
		t.Fatal("JSON export missing app name")
	}
}

func TestFacadeSequenceDisplays(t *testing.T) {
	rep, err := diogenes.RunWorkload("cumf_als", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	seqs := rep.Analysis.StaticSequences()
	if len(seqs) == 0 {
		t.Fatal("no sequences")
	}
	top := seqs[0]
	var buf bytes.Buffer
	if err := diogenes.WriteSequence(&buf, rep.Analysis, top); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Time Recoverable:") {
		t.Fatalf("sequence display malformed:\n%s", out)
	}
	if !strings.Contains(out, "cudaMemcpy in als.cpp at line 738") {
		t.Fatalf("sequence missing entry 1:\n%s", out)
	}

	sub, err := rep.Analysis.SubsequenceBenefit(top, 10, len(top.Entries))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := diogenes.WriteSubsequence(&buf, rep.Analysis, sub); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Time Recoverable In Subsequence:") {
		t.Fatal("subsequence display malformed")
	}
}
