module diogenes

go 1.22
