// Package diogenes is the public API of the Diogenes / feed-forward
// measurement (FFM) reproduction: a performance tool that finds problematic
// CPU/GPU synchronizations and memory transfers and estimates the benefit of
// fixing them (Welton & Miller, "Diogenes: Looking For An Honest CPU/GPU
// Performance Measurement Tool", SC '19).
//
// The tool runs an application five times — baseline measurement, detailed
// tracing, memory tracing + data hashing, sync-use analysis, and analysis —
// adjusting instrumentation between runs based on what earlier runs
// observed. The result is a set of problems (unnecessary synchronizations,
// misplaced synchronizations, duplicate transfers), grouped so one source
// fix maps to one finding, each with an expected benefit.
//
// Applications are deterministic programs against the simulated CUDA driver
// (see internal/cuda); the four workloads of the paper's evaluation ship in
// internal/apps and are accessible through Workloads. A minimal custom
// application:
//
//	type myApp struct{}
//
//	func (myApp) Name() string { return "my-app" }
//	func (myApp) Run(p *diogenes.Process) error {
//	    buf, err := p.Ctx.Malloc(1<<20, "data")
//	    if err != nil {
//	        return err
//	    }
//	    ...
//	    return p.Ctx.Free(buf)
//	}
//
//	report, err := diogenes.Run(myApp{})
package diogenes

import (
	"io"

	"diogenes/internal/apps"
	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/proc"
	"diogenes/internal/report"
)

// App is a deterministic application the tool can execute repeatedly.
type App = proc.App

// Process is one simulated execution environment (clock, GPU, host memory,
// call stack, CUDA context).
type Process = proc.Process

// Factory builds fresh processes with a fixed machine configuration.
type Factory = proc.Factory

// Config configures a full FFM run.
type Config = ffm.Config

// Report is the complete output of the pipeline for one application.
type Report = ffm.Report

// Analysis is stage 5's output: the execution graph, problem
// classifications, and benefit groupings.
type Analysis = ffm.Analysis

// StaticSequence is a problem sequence folded over the application's loop
// structure (the Figure 6 display unit).
type StaticSequence = ffm.StaticSequence

// APIFold is all problematic operations of one CUDA API function folded
// together (the Figure 7 display unit).
type APIFold = ffm.APIFold

// Workload describes one of the modelled evaluation applications.
type Workload = apps.Spec

// Variant selects the original or fixed build of a workload.
type Variant = apps.Variant

// Workload variants.
const (
	Original = apps.Original
	Fixed    = apps.Fixed
)

// DefaultConfig returns the standard tool configuration: default machine
// model, calibrated instrumentation overheads, default analysis thresholds.
func DefaultConfig() Config { return ffm.DefaultConfig() }

// DefaultFactory returns a process factory with the default device and
// driver configuration.
func DefaultFactory() Factory { return proc.DefaultFactory() }

// Run executes the full five-stage pipeline on app with the default
// configuration.
func Run(app App) (*Report, error) { return ffm.Run(app, DefaultConfig()) }

// RunWithConfig executes the pipeline with an explicit configuration (use
// it to supply the machine model an application was built for).
func RunWithConfig(app App, cfg Config) (*Report, error) { return ffm.Run(app, cfg) }

// Workloads returns the four modelled applications of the paper's
// evaluation (cumf_als, cuIBM, AMG, Rodinia gaussian) in Table 1 order.
func Workloads() []Workload { return apps.Registry() }

// WorkloadByName looks up one modelled application.
func WorkloadByName(name string) (Workload, error) { return apps.ByName(name) }

// RunWorkload runs the pipeline on a named workload at the given scale
// (1.0 = full modelled size) using that workload's machine configuration.
func RunWorkload(name string, scale float64) (*Report, error) {
	return experiments.RunApp(name, scale)
}

// WriteOverview renders the Figure 7 overview display for an analysis.
func WriteOverview(w io.Writer, a *Analysis) error { return report.Overview(w, a) }

// WriteSequence renders the Figure 6 sequence listing.
func WriteSequence(w io.Writer, a *Analysis, s StaticSequence) error {
	return report.Sequence(w, a, s)
}

// WriteSubsequence renders the Figure 8 refined estimate.
func WriteSubsequence(w io.Writer, a *Analysis, s StaticSequence) error {
	return report.Subsequence(w, a, s)
}

// WriteSavings renders the per-API-function expected savings summary.
func WriteSavings(w io.Writer, a *Analysis) error { return report.Savings(w, a) }

// WriteJSON exports an analysis in the tool's JSON interchange format.
func WriteJSON(w io.Writer, a *Analysis) error { return a.WriteJSON(w) }
