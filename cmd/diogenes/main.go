// Command diogenes runs the feed-forward measurement pipeline on the
// modelled applications and renders the tool's displays and the paper's
// evaluation tables. See internal/cli for the implementation and
// `diogenes help` for usage.
package main

import (
	"os"

	"diogenes/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
