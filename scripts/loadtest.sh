#!/usr/bin/env bash
# loadtest.sh — boot a 3-node local shard group, drive it with the
# built-in load generator, and verify the SSE progress stream end to end.
#
# Usage:
#   scripts/loadtest.sh                       # default: 5 cohorts x 2s
#   LOAD_COHORTS=8 LOAD_DURATION=1s scripts/loadtest.sh
#   LOAD_BASE_PORT=19000 scripts/loadtest.sh  # move the port range
#
# Exit nonzero when the group fails to come up, the loadgen validity
# gates fail (fewer than 5 valid cohorts), or the SSE stream does not
# end with its terminal frame.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${LOAD_BASE_PORT:-18471}"
COHORTS="${LOAD_COHORTS:-5}"
DURATION="${LOAD_DURATION:-2s}"
CLIENTS="${LOAD_CLIENTS:-4}"

BIN="$(mktemp -d)/diogenes"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$(dirname "$BIN")" "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/diogenes

P0="127.0.0.1:${BASE_PORT}"
P1="127.0.0.1:$((BASE_PORT + 1))"
P2="127.0.0.1:$((BASE_PORT + 2))"
PEERS="${P0},${P1},${P2}"

for addr in "$P0" "$P1" "$P2"; do
  "$BIN" serve -addr "$addr" -peers "$PEERS" -store "$WORK/store-$addr" \
    -queue 32 -workers 2 >"$WORK/serve-$addr.log" 2>&1 &
  PIDS+=($!)
done

# Wait for every node's health endpoint.
for addr in "$P0" "$P1" "$P2"; do
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  curl -fsS "http://$addr/healthz" >/dev/null || {
    echo "node $addr never became healthy:" >&2
    cat "$WORK/serve-$addr.log" >&2
    exit 1
  }
done
echo "3-node group healthy on $PEERS"

# The latency/throughput matrix, gated: >= 5 valid cohorts or nonzero exit.
"$BIN" loadgen -targets "$PEERS" -clients "$CLIENTS" \
  -cohorts "$COHORTS" -duration "$DURATION" -gate \
  -json "$WORK/load.json"

# SSE check: submit one job and stream its events to the terminal frame.
JOB_ID="$(curl -fsS -X POST "http://$P0/jobs" -H 'Content-Type: application/json' \
  -d '{"kind":"fleet","app":"amg","ranks":4,"scale":0.05,"fresh":true}' |
  python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
echo "streaming events for $JOB_ID"
# Stream via a node that may or may not hold the job — proxying is part
# of what this exercises.
EVENTS="$(curl -fsSN --max-time 60 "http://$P1/jobs/$JOB_ID/events")"
if ! grep -q '^event: done' <<<"$EVENTS"; then
  echo "SSE stream for $JOB_ID never reached the terminal frame:" >&2
  tail -20 <<<"$EVENTS" >&2
  exit 1
fi
echo "SSE stream ended with the terminal frame"
echo "loadtest passed"
