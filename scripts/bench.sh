#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite and record the results as
# BENCH_<date>.json at the repository root.
#
# Usage:
#   scripts/bench.sh                 # default benchmark set, 3 repetitions
#   scripts/bench.sh 'Figure5'       # custom -bench pattern
#   BENCH_COUNT=5 scripts/bench.sh   # more repetitions
#   BENCH_DATE=2026-08-06 scripts/bench.sh   # pin the output filename
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op,
# metrics{...}} where metrics holds the custom b.ReportMetric values (the §5
# figures: recoverable-%, entries, …). For each benchmark the fastest of the
# repetitions is kept — custom metrics are deterministic model outputs and
# identical across repetitions, so only the timing varies.
set -euo pipefail

cd "$(dirname "$0")/.."

PATTERN="${1:-Figure5Algorithm|Figure6$|Figure8|GraphBuild|FullPipelineRodinia|HashStoreInsert|FleetAMG4|Fleet64$|Fleet256$|Fleet1024$|LedgerAppend}"
COUNT="${BENCH_COUNT:-3}"
DATE="${BENCH_DATE:-$(date +%F)}"
OUT="BENCH_${DATE}.json"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" . | tee "$RAW"

python3 - "$RAW" "$OUT" <<'PY'
import json, re, sys

raw, out = sys.argv[1], sys.argv[2]
best = {}
line_re = re.compile(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$')
for line in open(raw):
    m = line_re.match(line.strip())
    if not m:
        continue
    name, _, rest = m.groups()
    entry = {"metrics": {}}
    for value, unit in re.findall(r'([0-9.eE+]+)\s+([^\s]+)', rest):
        v = float(value)
        if unit == "ns/op":
            entry["ns_per_op"] = v
        elif unit == "B/op":
            entry["bytes_per_op"] = v
        elif unit == "allocs/op":
            entry["allocs_per_op"] = v
        elif unit == "MB/s":
            entry["mb_per_s"] = v
        else:
            entry["metrics"][unit] = v
    if "ns_per_op" not in entry:
        continue
    prev = best.get(name)
    if prev is None or entry["ns_per_op"] < prev["ns_per_op"]:
        best[name] = entry

if not best:
    sys.exit("bench.sh: no benchmark results parsed")
with open(out, "w") as f:
    json.dump(dict(sorted(best.items())), f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} ({len(best)} benchmarks)")
PY
