package diogenes_test

import (
	"fmt"
	"os"

	"diogenes"
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// exampleApp frees a scratch buffer every step while its kernel is still
// running — the classic problematic implicit synchronization.
type exampleApp struct{}

func (exampleApp) Name() string { return "example" }

func (exampleApp) Run(p *diogenes.Process) error {
	out := p.Host.Alloc(4096, "out")
	devOut, err := p.Ctx.Malloc(4096, "dev out")
	if err != nil {
		return err
	}
	for i := 0; i < 20; i++ {
		var runErr error
		p.In("step", "app.cpp", 10, func() {
			scratch, err := p.Ctx.Malloc(4096, "scratch")
			if err != nil {
				runErr = err
				return
			}
			if _, err := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "work", Duration: simtime.Millisecond, Stream: gpu.LegacyStream,
				Writes: []cuda.KernelWrite{{Ptr: devOut.Base(), Size: 64, Seed: uint64(i)}},
			}); err != nil {
				runErr = err
				return
			}
			p.CPUWork(200 * simtime.Microsecond)
			p.At(14)
			if err := p.Ctx.Free(scratch); err != nil {
				runErr = err
				return
			}
			p.CPUWork(400 * simtime.Microsecond)
			p.At(17)
			if err := p.Ctx.MemcpyD2H(out.Base(), devOut.Base(), 64); err != nil {
				runErr = err
				return
			}
			if _, err := p.Read(out.Base(), 16, 18); err != nil {
				runErr = err
			}
		})
		if runErr != nil {
			return runErr
		}
	}
	return nil
}

// ExampleRun runs the five FFM stages on a small application and inspects
// the top finding.
func ExampleRun() {
	report, err := diogenes.Run(exampleApp{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	savings := report.Analysis.SavingsByFunc()
	fmt.Printf("top finding: %s at %d call sites\n", savings[0].Func, savings[0].Count)
	counts := report.Analysis.ProblemCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Printf("problems found: %d\n", total)
	// Output:
	// top finding: cudaFree at 20 call sites
	// problems found: 20
}

// ExampleWorkloads lists the modelled evaluation applications.
func ExampleWorkloads() {
	for _, w := range diogenes.Workloads() {
		fmt.Println(w.Name)
	}
	// Output:
	// cumf_als
	// cuibm
	// amg
	// rodinia_gaussian
}
