package proc

import (
	"testing"

	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

func TestNewProcessWiring(t *testing.T) {
	p := DefaultFactory().New()
	if p.Clock == nil || p.Dev == nil || p.Host == nil || p.Stack == nil || p.Ctx == nil {
		t.Fatal("process components missing")
	}
	if p.Clock.Now() != 0 {
		t.Fatal("clock not at process start")
	}
	if p.Ctx.Clock() != p.Clock || p.Ctx.Device() != p.Dev || p.Ctx.Host() != p.Host {
		t.Fatal("context not wired to process components")
	}
}

func TestCPUWorkAndExecTime(t *testing.T) {
	p := DefaultFactory().New()
	p.CPUWork(3 * simtime.Millisecond)
	if p.ExecTime() != 3*simtime.Millisecond {
		t.Fatalf("ExecTime = %v", p.ExecTime())
	}
}

func TestInManagesFrames(t *testing.T) {
	p := DefaultFactory().New()
	p.In("solve", "solver.cpp", 10, func() {
		if p.Stack.Depth() != 1 {
			t.Fatalf("depth = %d inside In", p.Stack.Depth())
		}
		p.At(42)
		if p.Stack.Current().Line != 42 {
			t.Fatal("At did not update line")
		}
		p.In("inner", "solver.cpp", 50, func() {
			if p.Stack.Depth() != 2 {
				t.Fatal("nested depth wrong")
			}
		})
	})
	if p.Stack.Depth() != 0 {
		t.Fatal("frames leaked")
	}
}

func TestReadWriteAttribution(t *testing.T) {
	p := DefaultFactory().New()
	r := p.Host.Alloc(64, "buf")
	p.In("consume", "app.cpp", 5, func() {
		if err := p.Write(r.Base(), []byte{1, 2, 3}, 7); err != nil {
			t.Fatal(err)
		}
		got, err := p.Read(r.Base(), 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		if got[2] != 3 {
			t.Fatalf("Read = %v", got)
		}
		if p.Stack.Current().Line != 9 {
			t.Fatal("Read did not move the program counter")
		}
	})
}

func TestFreshProcessesAreIndependent(t *testing.T) {
	f := Factory{GPU: gpu.DefaultConfig(), CUDA: cuda.DefaultConfig()}
	a, b := f.New(), f.New()
	a.CPUWork(simtime.Second)
	if b.Clock.Now() != 0 {
		t.Fatal("processes share a clock")
	}
	if _, err := a.Ctx.Malloc(1024, "x"); err != nil {
		t.Fatal(err)
	}
	if b.Dev.MemStats().LiveBytes != 0 {
		t.Fatal("processes share a device")
	}
}

type hangApp struct{}

func (hangApp) Name() string { return "hang" }
func (hangApp) Run(p *Process) error {
	_, _ = p.Ctx.LaunchKernel(cuda.KernelSpec{
		Name: "spin", Duration: simtime.Duration(simtime.Infinity), Stream: gpu.LegacyStream,
	})
	p.Ctx.DeviceSynchronize()
	return nil
}

type panicApp struct{}

func (panicApp) Name() string       { return "panic" }
func (panicApp) Run(*Process) error { panic("application bug") }

func TestSafeRunConvertsHang(t *testing.T) {
	p := DefaultFactory().New()
	err := SafeRun(hangApp{}, p)
	if err == nil {
		t.Fatal("hang not reported")
	}
}

func TestSafeRunPropagatesOtherPanics(t *testing.T) {
	p := DefaultFactory().New()
	defer func() {
		if recover() == nil {
			t.Fatal("application panic swallowed")
		}
	}()
	_ = SafeRun(panicApp{}, p)
}

func TestFactoryPrepareHook(t *testing.T) {
	f := DefaultFactory()
	prepared := 0
	f.Prepare = func(p *Process) {
		prepared++
		if p.Ctx == nil {
			t.Error("Prepare ran before context wiring")
		}
	}
	_ = f.New()
	_ = f.New()
	if prepared != 2 {
		t.Fatalf("Prepare ran %d times, want 2", prepared)
	}
}
