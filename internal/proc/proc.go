// Package proc assembles one simulated process: virtual clock, GPU device,
// host address space, application call stack and CUDA context. FFM's
// multi-run model executes the target application in a *fresh* process per
// stage, so Process creation is cheap and fully deterministic.
package proc

import (
	"fmt"

	"diogenes/internal/callstack"
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/simtime"
)

// Process is one simulated execution environment.
type Process struct {
	Clock *simtime.Clock
	// Dev is device 0; Devs holds every device on the simulated node.
	Dev   *gpu.Device
	Devs  []*gpu.Device
	Host  *memory.Space
	Stack *callstack.Stack
	Ctx   *cuda.Context
}

// New creates a fresh single-GPU process with the given device and driver
// configurations.
func New(gcfg gpu.Config, ccfg cuda.Config) *Process {
	return NewMulti(gcfg, ccfg, 1)
}

// NewMulti creates a process with n identical devices, like the four-GPU
// nodes of the paper's testbed.
func NewMulti(gcfg gpu.Config, ccfg cuda.Config, n int) *Process {
	clock := simtime.NewClock()
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.New(clock, gcfg)
	}
	host := memory.NewSpace()
	stack := callstack.New()
	return &Process{
		Clock: clock,
		Dev:   devs[0],
		Devs:  devs,
		Host:  host,
		Stack: stack,
		Ctx:   cuda.NewMultiContext(clock, devs, host, stack, ccfg),
	}
}

// App is a deterministic application that FFM can execute repeatedly.
// Run must perform identical sequences of driver calls and memory accesses
// given identical Process configurations; FFM's multi-run instrumentation
// depends on it (§5.3 discusses this limitation of the real tool).
type App interface {
	Name() string
	Run(p *Process) error
}

// SafeRun executes the application, converting a deadlock on the device (a
// cuda.HangError panic: the CPU blocked on work that never completes) into
// an ordinary error. Tools run applications they do not control; a broken
// application must be reported, not crash the tool.
func SafeRun(app App, p *Process) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if h, ok := v.(cuda.HangError); ok {
				err = fmt.Errorf("proc: application %s deadlocked: %w", app.Name(), h)
				return
			}
			panic(v)
		}
	}()
	return app.Run(p)
}

// CPUWork advances the clock by d, modelling application computation.
func (p *Process) CPUWork(d simtime.Duration) { p.Clock.Advance(d) }

// In runs body inside a stack frame for the named source function.
func (p *Process) In(function, file string, line int, body func()) {
	p.Stack.Push(function, file, line)
	defer p.Stack.Pop()
	body()
}

// At updates the current source line (the program counter moving within the
// innermost function).
func (p *Process) At(line int) { p.Stack.SetLine(line) }

// site builds the memory access site for the current stack position with an
// explicit line.
func (p *Process) site(line int) memory.Site {
	f := p.Stack.Current()
	return memory.Site{Function: f.Function, File: f.File, Line: line}
}

// Read performs an instrumented load of n bytes at addr, attributed to the
// given line of the current function. Applications use it for the CPU-side
// consumption of GPU results — the accesses stage 3's load/store analysis
// looks for.
func (p *Process) Read(addr memory.Addr, n int, line int) ([]byte, error) {
	p.At(line)
	return p.Host.Load(p.site(line), addr, n)
}

// Write performs an instrumented store at addr, attributed to the given
// line of the current function.
func (p *Process) Write(addr memory.Addr, data []byte, line int) error {
	p.At(line)
	return p.Host.Store(p.site(line), addr, data)
}

// ExecTime returns virtual time elapsed since process start.
func (p *Process) ExecTime() simtime.Duration {
	return simtime.Duration(p.Clock.Now())
}

// Factory builds fresh processes for a fixed configuration.
type Factory struct {
	GPU  gpu.Config
	CUDA cuda.Config
	// Devices is the GPU count per process; zero means one.
	Devices int
	// Prepare, if set, runs on every process the factory creates — the
	// hook tools use to install instrumentation or patches into *all*
	// processes of a launch (every rank of an MPI job), not just the one
	// they hold directly.
	Prepare func(*Process)
}

// New creates a process from the factory's configuration.
func (f Factory) New() *Process {
	n := f.Devices
	if n < 1 {
		n = 1
	}
	p := NewMulti(f.GPU, f.CUDA, n)
	if f.Prepare != nil {
		f.Prepare(p)
	}
	return p
}

// DefaultFactory returns a factory with default device and driver
// configurations.
func DefaultFactory() Factory {
	return Factory{GPU: gpu.DefaultConfig(), CUDA: cuda.DefaultConfig()}
}
