package trace

import (
	"sync"
	"unsafe"
)

// slabLen is the number of Records per slab. Slabs are recycled through a
// process-wide pool, so steady-state tracing allocates no record memory at
// all: a run borrows slabs, flattens them into its final Records slice, and
// returns them.
const slabLen = 512

var slabPool = sync.Pool{New: func() any {
	s := make([]Record, slabLen)
	return &s
}}

// RecordSize is the in-memory size of one Record, used by the arena-bytes
// self-measurement gauge.
const RecordSize = int64(unsafe.Sizeof(Record{}))

// Arena hands out trace.Records from pooled fixed-size slabs. Pointers
// returned by Alloc remain valid — and addressable for later annotation —
// until Finish is called; appending never relocates live records, unlike a
// grown slice. An Arena is single-goroutine (each pipeline run owns one);
// only the slab pool underneath is shared.
type Arena struct {
	slabs []*[]Record
	n     int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Alloc returns a pointer to a zeroed Record that stays valid until Finish.
func (a *Arena) Alloc() *Record {
	i := a.n % slabLen
	if i == 0 {
		a.slabs = append(a.slabs, slabPool.Get().(*[]Record))
	}
	a.n++
	return &(*a.slabs[len(a.slabs)-1])[i]
}

// Len returns the number of records allocated.
func (a *Arena) Len() int { return a.n }

// Bytes returns the memory currently borrowed from the slab pool.
func (a *Arena) Bytes() int64 { return int64(len(a.slabs)) * slabLen * RecordSize }

// Finish copies the records into one exact-size slice, clears and returns
// every slab to the pool, and resets the arena. The returned slice shares
// nothing with the pool, so a finished Run can never alias a slab recycled
// into a concurrent run.
func (a *Arena) Finish() []Record {
	if a.n == 0 {
		a.slabs = nil
		return nil
	}
	out := make([]Record, a.n)
	remaining := a.n
	for _, slab := range a.slabs {
		s := *slab
		k := copy(out[a.n-remaining:], s[:min(remaining, slabLen)])
		remaining -= k
		// Clear before pooling so recycled slabs hold no stale pointers
		// (stacks, strings) and the next run starts from zeroed slots.
		clear(s)
		slabPool.Put(slab)
	}
	a.slabs = nil
	a.n = 0
	return out
}
