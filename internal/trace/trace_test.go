package trace

import (
	"bytes"
	"strings"
	"testing"

	"diogenes/internal/callstack"
	"diogenes/internal/simtime"
)

func sampleRun() *Run {
	return &Run{
		App:        "cumf_als",
		Stage:      2,
		ExecTime:   90 * simtime.Second,
		TotalCalls: 12345,
		SyncFuncs:  []string{"cudaFree", "cudaMemcpy"},
		Records: []Record{
			{
				Seq: 1, Func: "cudaFree", Class: ClassSync,
				Entry: 100, Exit: 500, SyncWait: 300, Scope: "implicit",
				Stack: callstack.Trace{{Function: "solve", File: "als.cpp", Line: 856}},
			},
			{
				Seq: 2, Func: "cudaMemcpy", Class: ClassTransfer,
				Entry: 600, Exit: 900, SyncWait: 200, Scope: "implicit",
				Dir: "HtoD", Bytes: 4096, HostAddr: 0x10000, HostSize: 4096,
				Duplicate: true, FirstSeq: 1, Hash: "deadbeef01020304",
			},
			{
				Seq: 3, Func: "cudaDeviceSynchronize", Class: ClassSync,
				Entry: 1000, Exit: 1100, SyncWait: 80, Scope: "explicit",
				ProtectedAccess: true,
				AccessSite:      Site{Function: "updateX", File: "als.cpp", Line: 877},
				FirstUse:        50 * simtime.Microsecond,
			},
		},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	run := sampleRun()
	var buf bytes.Buffer
	if err := run.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != run.App || got.Stage != run.Stage || got.ExecTime != run.ExecTime {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Records) != 3 {
		t.Fatalf("records = %d", len(got.Records))
	}
	if got.Records[1].Hash != "deadbeef01020304" || !got.Records[1].Duplicate {
		t.Fatalf("dup record = %+v", got.Records[1])
	}
	if got.Records[2].AccessSite.Line != 877 || got.Records[2].FirstUse != 50*simtime.Microsecond {
		t.Fatalf("annotated record = %+v", got.Records[2])
	}
	if got.Records[0].Stack[0].Function != "solve" {
		t.Fatalf("stack lost: %+v", got.Records[0].Stack)
	}
	if got.SyncFuncs[0] != "cudaFree" {
		t.Fatalf("SyncFuncs = %v", got.SyncFuncs)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestJSONIsHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRun().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"app": "cumf_als"`, `"func": "cudaFree"`, "\n  "} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestOfClass(t *testing.T) {
	run := sampleRun()
	syncs := run.OfClass(ClassSync)
	transfers := run.OfClass(ClassTransfer)
	if len(syncs) != 2 || len(transfers) != 1 {
		t.Fatalf("syncs=%d transfers=%d", len(syncs), len(transfers))
	}
	if syncs[0].Seq != 1 || syncs[1].Seq != 3 {
		t.Fatal("order not preserved")
	}
}

func TestTotalSyncWait(t *testing.T) {
	if got := sampleRun().TotalSyncWait(); got != 580 {
		t.Fatalf("TotalSyncWait = %v, want 580ns", got)
	}
}

func TestByFunc(t *testing.T) {
	m := sampleRun().ByFunc()
	if len(m["cudaFree"]) != 1 || m["cudaFree"][0] != 0 {
		t.Fatalf("ByFunc = %v", m)
	}
	if len(m) != 3 {
		t.Fatalf("got %d funcs", len(m))
	}
}

func TestRecordDuration(t *testing.T) {
	r := Record{Entry: 100, Exit: 350}
	if r.Duration() != 250 {
		t.Fatalf("Duration = %v", r.Duration())
	}
}

func TestSiteHelpers(t *testing.T) {
	if !(Site{}).IsZero() {
		t.Fatal("zero site not IsZero")
	}
	s := Site{Function: "f", File: "x.cpp", Line: 3}
	if s.IsZero() {
		t.Fatal("set site IsZero")
	}
	if s.String() != "f (x.cpp:3)" {
		t.Fatalf("String = %q", s.String())
	}
	if (Site{}).String() != "<unknown>" {
		t.Fatal("zero site string wrong")
	}
	f := callstack.Frame{Function: "g", File: "y.cpp", Line: 9}
	if SiteOf(f) != (Site{Function: "g", File: "y.cpp", Line: 9}) {
		t.Fatal("SiteOf wrong")
	}
}

func TestFormatVersionStampedAndChecked(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRun().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != FormatVersion {
		t.Fatalf("format = %d, want %d", got.Format, FormatVersion)
	}
	// A future-version file is rejected.
	newer := strings.Replace(buf.String(), `"format": 1`, `"format": 99`, 1)
	if !strings.Contains(newer, `"format": 99`) {
		t.Fatal("test setup: format field not found")
	}
	if _, err := ReadJSON(strings.NewReader(newer)); err == nil {
		t.Fatal("future format accepted")
	}
	// Legacy files without a format field still parse.
	legacy := strings.Replace(buf.String(), `"format": 1,`, ``, 1)
	if _, err := ReadJSON(strings.NewReader(legacy)); err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
}
