package trace

import (
	"errors"
	"strings"
	"testing"
)

// TestReadJSONValidation drives every rejection path of the strict reader:
// malformed documents must come back as typed *ValidationError values (so
// callers can report the offending record and field) instead of flowing into
// replay and panicking there.
func TestReadJSONValidation(t *testing.T) {
	cases := []struct {
		name   string
		doc    string
		seq    int64
		field  string
		reason string
	}{
		{
			name:  "negative execTime",
			doc:   `{"app":"x","execTime":-1}`,
			field: "execTime", reason: "negative",
		},
		{
			name:  "negative rawExecTime",
			doc:   `{"app":"x","rawExecTime":-5}`,
			field: "rawExecTime", reason: "negative",
		},
		{
			name:  "negative totalCalls",
			doc:   `{"app":"x","totalCalls":-2}`,
			field: "totalCalls", reason: "negative",
		},
		{
			name: "zero seq",
			doc:  `{"app":"x","records":[{"seq":0,"class":"sync"}]}`,
			seq:  0, field: "seq", reason: "positive",
		},
		{
			name: "negative seq",
			doc:  `{"app":"x","records":[{"seq":-3,"class":"sync"}]}`,
			seq:  -3, field: "seq", reason: "positive",
		},
		{
			name: "duplicate seq",
			doc: `{"app":"x","records":[
				{"seq":1,"class":"sync"},
				{"seq":1,"class":"sync"}]}`,
			seq: 1, field: "seq", reason: "duplicated",
		},
		{
			name: "unknown record kind",
			doc:  `{"app":"x","records":[{"seq":1,"class":"kernel"}]}`,
			seq:  1, field: "class", reason: "not a known record kind",
		},
		{
			name: "missing record kind",
			doc:  `{"app":"x","records":[{"seq":1}]}`,
			seq:  1, field: "class", reason: "not a known record kind",
		},
		{
			name: "negative entry",
			doc:  `{"app":"x","records":[{"seq":1,"class":"sync","entry":-7}]}`,
			seq:  1, field: "entry", reason: "negative",
		},
		{
			name: "negative exit",
			doc:  `{"app":"x","records":[{"seq":1,"class":"sync","entry":0,"exit":-7}]}`,
			seq:  1, field: "exit", reason: "negative",
		},
		{
			name: "exit before entry",
			doc:  `{"app":"x","records":[{"seq":1,"class":"sync","entry":100,"exit":50}]}`,
			seq:  1, field: "exit", reason: "precedes entry",
		},
		{
			name: "negative syncWait",
			doc:  `{"app":"x","records":[{"seq":1,"class":"sync","syncWait":-1}]}`,
			seq:  1, field: "syncWait", reason: "negative",
		},
		{
			name: "negative firstUse",
			doc:  `{"app":"x","records":[{"seq":1,"class":"sync","firstUse":-9}]}`,
			seq:  1, field: "firstUse", reason: "negative",
		},
		{
			name: "negative bytes",
			doc:  `{"app":"x","records":[{"seq":1,"class":"transfer","bytes":-4}]}`,
			seq:  1, field: "bytes", reason: "negative",
		},
		{
			name: "negative hostSize",
			doc:  `{"app":"x","records":[{"seq":1,"class":"transfer","hostSize":-4}]}`,
			seq:  1, field: "hostSize", reason: "negative",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("document accepted: %s", tc.doc)
			}
			var verr *ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("error is not a *ValidationError: %v", err)
			}
			if verr.Seq != tc.seq || verr.Field != tc.field {
				t.Fatalf("wrong error location: got seq=%d field=%q, want seq=%d field=%q (%v)",
					verr.Seq, verr.Field, tc.seq, tc.field, err)
			}
			if !strings.Contains(verr.Reason, tc.reason) {
				t.Fatalf("reason %q does not mention %q", verr.Reason, tc.reason)
			}
		})
	}
}

// TestReadJSONValidAccepted pins the accept side: an empty run and a
// well-formed record pass untouched.
func TestReadJSONValidAccepted(t *testing.T) {
	for _, doc := range []string{
		`{}`,
		`{"app":"x","records":[{"seq":1,"class":"sync","entry":10,"exit":20,"syncWait":5}]}`,
		`{"app":"x","records":[{"seq":2,"class":"transfer","dir":"HtoD","bytes":4096}]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(doc)); err != nil {
			t.Fatalf("valid document rejected: %v\n%s", err, doc)
		}
	}
}
