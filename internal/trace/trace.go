// Package trace defines the performance-data records FFM's collection
// stages produce and the JSON container Diogenes stores them in.
//
// The paper (§1, §4): "Diogenes collected performance data is stored in a
// standard format (JSON) that can be read by other tools." Each stage's
// output is a Run; stage 5 consumes Runs and produces analysis results
// (package ffm).
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"diogenes/internal/callstack"
	"diogenes/internal/simtime"
)

// OpClass separates the two operation families FFM collects.
type OpClass string

// Operation classes.
const (
	ClassSync     OpClass = "sync"
	ClassTransfer OpClass = "transfer"
)

// Site is a source position, the serialized form of memory.Site.
type Site struct {
	Function string `json:"function,omitempty"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
}

// IsZero reports whether the site is unset.
func (s Site) IsZero() bool { return s == Site{} }

// String renders the site as function (file:line).
func (s Site) String() string {
	if s.IsZero() {
		return "<unknown>"
	}
	return fmt.Sprintf("%s (%s:%d)", s.Function, s.File, s.Line)
}

// Record is one traced operation. The collection stages populate
// progressively more of it: stage 2 fills the timing and stack fields,
// stage 3 the duplicate/access fields, stage 4 FirstUse.
type Record struct {
	Seq   int64   `json:"seq"`
	Func  string  `json:"func"`
	Class OpClass `json:"class"`

	Entry    simtime.Time     `json:"entry"`
	Exit     simtime.Time     `json:"exit"`
	SyncWait simtime.Duration `json:"syncWait,omitempty"`
	Scope    string           `json:"scope,omitempty"`

	Dir      string `json:"dir,omitempty"`
	Bytes    int    `json:"bytes,omitempty"`
	HostAddr uint64 `json:"hostAddr,omitempty"`
	HostSize int    `json:"hostSize,omitempty"`

	Stack callstack.Trace `json:"stack,omitempty"`

	// Stage 3 annotations.
	Duplicate       bool   `json:"duplicate,omitempty"`
	FirstSeq        int64  `json:"firstSeq,omitempty"`
	Hash            string `json:"hash,omitempty"`
	ProtectedAccess bool   `json:"protectedAccess,omitempty"`
	AccessSite      Site   `json:"accessSite,omitempty"`

	// Stage 4 annotation: time from synchronization end to first use of
	// protected data.
	FirstUse simtime.Duration `json:"firstUse,omitempty"`
}

// Duration returns the record's total call time.
func (r *Record) Duration() simtime.Duration { return r.Exit.Sub(r.Entry) }

// Run is the output of one instrumented execution of the application.
// FormatVersion is the trace interchange schema version, bumped on
// incompatible changes so consuming tools can reject newer files cleanly.
const FormatVersion = 1

type Run struct {
	App   string `json:"app"`
	Stage int    `json:"stage"`
	// Format is the schema version; WriteJSON stamps FormatVersion and
	// ReadJSON rejects files from a newer schema.
	Format int `json:"format,omitempty"`
	// ExecTime is the overhead-compensated execution time: wall virtual
	// time minus the known instrumentation cost, i.e. the application's
	// own timeline that records are stamped on.
	ExecTime simtime.Duration `json:"execTime"`
	// RawExecTime is the actual instrumented run duration — what the data
	// collection cost (§5.3's overhead accounting uses it).
	RawExecTime simtime.Duration `json:"rawExecTime"`
	TotalCalls  int64            `json:"totalCalls"`
	// SyncFuncs is stage 1's product: the driver API functions observed to
	// synchronize, in first-seen order.
	SyncFuncs []string `json:"syncFuncs,omitempty"`
	Records   []Record `json:"records,omitempty"`

	// hashResolve, when set, lazily fills the Records' Hash fields the
	// first time they are rendered (WriteJSON or ResolveHashes). Stage 3
	// installs it so content hashes are computed only for runs whose
	// records are actually exported; it must be idempotent. Unexported, so
	// it survives struct copies but never serializes.
	hashResolve func(*Run)
}

// SetHashResolver installs fn as the run's lazy hash resolver.
func (r *Run) SetHashResolver(fn func(*Run)) { r.hashResolve = fn }

// ResolveHashes materializes any lazily computed record fields (today the
// stage-3 content hashes). Safe to call repeatedly; a run without a
// resolver is returned untouched.
func (r *Run) ResolveHashes() {
	if r.hashResolve != nil {
		r.hashResolve(r)
	}
}

// WriteJSON serializes the run with indentation (the on-disk tool format).
func (r *Run) WriteJSON(w io.Writer) error {
	r.ResolveHashes()
	stamped := *r
	stamped.Format = FormatVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&stamped)
}

// ReadJSON parses a run written by WriteJSON. Files stamped with a newer
// schema version are rejected rather than misread, and structurally invalid
// documents (negative sizes or timestamps, unknown record kinds, duplicate
// sequence numbers) are rejected with a *ValidationError instead of being
// handed to consumers that would panic on them.
func ReadJSON(rd io.Reader) (*Run, error) {
	var run Run
	if err := json.NewDecoder(rd).Decode(&run); err != nil {
		return nil, fmt.Errorf("trace: decoding run: %w", err)
	}
	if run.Format > FormatVersion {
		return nil, fmt.Errorf("trace: file format %d newer than supported %d", run.Format, FormatVersion)
	}
	if err := run.Validate(); err != nil {
		return nil, err
	}
	return &run, nil
}

// ValidationError describes why a trace document was rejected: the offending
// record's sequence number (0 for run-level fields), the field, and the
// reason.
type ValidationError struct {
	Seq    int64
	Field  string
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e.Seq != 0 {
		return fmt.Sprintf("trace: record %d: %s %s", e.Seq, e.Field, e.Reason)
	}
	return fmt.Sprintf("trace: %s %s", e.Field, e.Reason)
}

// Validate checks the structural invariants every Run written by the
// collection stages satisfies: non-negative durations and timestamps,
// exits not preceding entries, known record classes, and positive, unique
// sequence numbers. Consumers that re-drive the simulator from a trace
// (replay) depend on these holding.
func (r *Run) Validate() error {
	if r.ExecTime < 0 {
		return &ValidationError{Field: "execTime", Reason: "is negative"}
	}
	if r.RawExecTime < 0 {
		return &ValidationError{Field: "rawExecTime", Reason: "is negative"}
	}
	if r.TotalCalls < 0 {
		return &ValidationError{Field: "totalCalls", Reason: "is negative"}
	}
	seen := make(map[int64]bool, len(r.Records))
	for i := range r.Records {
		rec := &r.Records[i]
		if rec.Seq <= 0 {
			return &ValidationError{Seq: rec.Seq, Field: "seq", Reason: "must be positive"}
		}
		if seen[rec.Seq] {
			return &ValidationError{Seq: rec.Seq, Field: "seq", Reason: "is duplicated"}
		}
		seen[rec.Seq] = true
		if rec.Class != ClassSync && rec.Class != ClassTransfer {
			return &ValidationError{Seq: rec.Seq, Field: "class", Reason: fmt.Sprintf("%q is not a known record kind", rec.Class)}
		}
		if rec.Entry < 0 {
			return &ValidationError{Seq: rec.Seq, Field: "entry", Reason: "is negative"}
		}
		if rec.Exit < 0 {
			return &ValidationError{Seq: rec.Seq, Field: "exit", Reason: "is negative"}
		}
		if rec.Exit < rec.Entry {
			return &ValidationError{Seq: rec.Seq, Field: "exit", Reason: "precedes entry"}
		}
		if rec.SyncWait < 0 {
			return &ValidationError{Seq: rec.Seq, Field: "syncWait", Reason: "is negative"}
		}
		if rec.FirstUse < 0 {
			return &ValidationError{Seq: rec.Seq, Field: "firstUse", Reason: "is negative"}
		}
		if rec.Bytes < 0 {
			return &ValidationError{Seq: rec.Seq, Field: "bytes", Reason: "is negative"}
		}
		if rec.HostSize < 0 {
			return &ValidationError{Seq: rec.Seq, Field: "hostSize", Reason: "is negative"}
		}
	}
	return nil
}

// OfClass returns the records of one class, preserving order.
func (r *Run) OfClass(c OpClass) []Record {
	var out []Record
	for _, rec := range r.Records {
		if rec.Class == c {
			out = append(out, rec)
		}
	}
	return out
}

// TotalSyncWait sums the synchronization wait across all records.
func (r *Run) TotalSyncWait() simtime.Duration {
	var total simtime.Duration
	for _, rec := range r.Records {
		total += rec.SyncWait
	}
	return total
}

// ByFunc groups record indexes by API function.
func (r *Run) ByFunc() map[string][]int {
	out := make(map[string][]int)
	for i, rec := range r.Records {
		out[rec.Func] = append(out[rec.Func], i)
	}
	return out
}

// SiteOf converts a callstack frame to a trace Site.
func SiteOf(f callstack.Frame) Site {
	return Site{Function: f.Function, File: f.File, Line: f.Line}
}
