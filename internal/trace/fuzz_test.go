package trace

import (
	"bytes"
	"strings"
	"testing"

	"diogenes/internal/simtime"
)

// FuzzReadJSON feeds arbitrary bytes to the trace reader: it must never
// panic, and anything it accepts must re-serialize and re-parse to the same
// structural shape.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	_ = sampleRun().WriteJSON(&seed)
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"app":"x","records":[{"seq":1}]}`)
	f.Add(`{"format": 99}`)
	f.Add(`[1,2,3]`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, input string) {
		run, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := run.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted run failed to serialize: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if len(again.Records) != len(run.Records) || again.App != run.App {
			t.Fatalf("round trip changed shape: %d/%q vs %d/%q",
				len(again.Records), again.App, len(run.Records), run.App)
		}
	})
}

// FuzzRunRoundTrip builds a Run from fuzzed fields and asserts the JSON
// export/import cycle is lossless and stable: serialize → parse → serialize
// must yield byte-identical output, and the parsed run must preserve every
// fuzzed field. This is the interchange guarantee the paper leans on ("data
// is stored in a standard format that can be read by other tools").
func FuzzRunRoundTrip(f *testing.F) {
	f.Add("cumf_als", 2, int64(100), int64(7), "cudaMemcpy", int64(3), int64(9), true, "deadbeef")
	f.Add("", 0, int64(0), int64(0), "", int64(0), int64(0), false, "")
	f.Add("app\x00\xff", -5, int64(-1), int64(1<<40), "cudaFree", int64(-7), int64(42), true, "  ")
	f.Fuzz(func(t *testing.T, app string, stage int, execTime, calls int64,
		fn string, entry, exit int64, dup bool, hash string) {
		// JSON interchange is defined over valid UTF-8; the encoder maps
		// anything else to U+FFFD, which is lossy by design.
		app = strings.ToValidUTF8(app, "\uFFFD")
		fn = strings.ToValidUTF8(fn, "\uFFFD")
		hash = strings.ToValidUTF8(hash, "\uFFFD")
		// The strict reader rejects structurally invalid runs, so clamp the
		// fuzzed fields into the domain the collection stages actually emit:
		// non-negative counters and timestamps, exit not before entry. (The
		// bitwise complement maps negatives \u2014 including MinInt64, which
		// ordinary negation overflows on \u2014 to non-negative values.)
		clamp := func(v int64) int64 {
			if v < 0 {
				return ^v
			}
			return v
		}
		stage = int(clamp(int64(stage)) % 6)
		execTime, calls = clamp(execTime), clamp(calls)
		entry, exit = clamp(entry), clamp(exit)
		if exit < entry {
			entry, exit = exit, entry
		}
		run := &Run{
			App:        app,
			Stage:      stage,
			ExecTime:   simtime.Duration(execTime),
			TotalCalls: calls,
			SyncFuncs:  []string{fn},
			Records: []Record{{
				Seq:       1,
				Func:      fn,
				Class:     ClassSync,
				Entry:     simtime.Time(entry),
				Exit:      simtime.Time(exit),
				Duplicate: dup,
				Hash:      hash,
			}},
		}
		var first bytes.Buffer
		if err := run.WriteJSON(&first); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		parsed, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if parsed.App != app || parsed.Stage != stage ||
			parsed.ExecTime != simtime.Duration(execTime) || parsed.TotalCalls != calls {
			t.Fatalf("header fields changed in round trip: %+v", parsed)
		}
		if len(parsed.Records) != 1 {
			t.Fatalf("record count changed: %d", len(parsed.Records))
		}
		rec := parsed.Records[0]
		if rec.Func != fn || rec.Entry != simtime.Time(entry) ||
			rec.Exit != simtime.Time(exit) || rec.Duplicate != dup || rec.Hash != hash {
			t.Fatalf("record changed in round trip: %+v", rec)
		}
		var second bytes.Buffer
		if err := parsed.WriteJSON(&second); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip not byte-stable:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}
