package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON feeds arbitrary bytes to the trace reader: it must never
// panic, and anything it accepts must re-serialize and re-parse to the same
// structural shape.
func FuzzReadJSON(f *testing.F) {
	var seed bytes.Buffer
	_ = sampleRun().WriteJSON(&seed)
	f.Add(seed.String())
	f.Add(`{}`)
	f.Add(`{"app":"x","records":[{"seq":1}]}`)
	f.Add(`{"format": 99}`)
	f.Add(`[1,2,3]`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, input string) {
		run, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := run.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted run failed to serialize: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if len(again.Records) != len(run.Records) || again.App != run.App {
			t.Fatalf("round trip changed shape: %d/%q vs %d/%q",
				len(again.Records), again.App, len(run.Records), run.App)
		}
	})
}
