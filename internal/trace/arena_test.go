package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestArenaPointersStableAcrossGrowth(t *testing.T) {
	a := NewArena()
	var ptrs []*Record
	for i := 0; i < 3*slabLen+7; i++ {
		r := a.Alloc()
		r.Seq = int64(i)
		ptrs = append(ptrs, r)
	}
	// Every pointer handed out must still address its record: annotations
	// written late must land in the stored record (the grown-slice design
	// could relocate earlier records on append).
	for i, p := range ptrs {
		if p.Seq != int64(i) {
			t.Fatalf("record %d relocated: Seq=%d", i, p.Seq)
		}
	}
	if a.Len() != len(ptrs) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(ptrs))
	}
}

func TestArenaFinishFlattensInOrder(t *testing.T) {
	a := NewArena()
	const n = slabLen + 13
	for i := 0; i < n; i++ {
		a.Alloc().Seq = int64(i)
	}
	if a.Bytes() != 2*slabLen*RecordSize {
		t.Fatalf("Bytes = %d, want %d", a.Bytes(), 2*slabLen*RecordSize)
	}
	out := a.Finish()
	if len(out) != n || cap(out) != n {
		t.Fatalf("Finish: len=%d cap=%d, want exactly %d", len(out), cap(out), n)
	}
	for i := range out {
		if out[i].Seq != int64(i) {
			t.Fatalf("out[%d].Seq = %d", i, out[i].Seq)
		}
	}
	if a.Len() != 0 || a.Bytes() != 0 {
		t.Fatalf("arena not reset after Finish: len=%d bytes=%d", a.Len(), a.Bytes())
	}
}

func TestArenaFinishEmpty(t *testing.T) {
	a := NewArena()
	if out := a.Finish(); out != nil {
		t.Fatalf("empty Finish returned %v", out)
	}
}

func TestArenaRecycledSlabsAreZeroed(t *testing.T) {
	a := NewArena()
	r := a.Alloc()
	r.Func = "cuMemcpyDtoH_v2"
	r.Hash = "deadbeef"
	a.Finish()
	// The next run that borrows this slab must see zeroed slots, not the
	// previous run's data.
	b := NewArena()
	for i := 0; i < 4*slabLen; i++ {
		got := b.Alloc()
		if got.Func != "" || got.Hash != "" || got.Stack != nil || got.Seq != 0 {
			t.Fatalf("recycled slot %d not zeroed: %+v", i, got)
		}
	}
}

func TestArenaConcurrentRunsShareNothing(t *testing.T) {
	// Two goroutines each drive their own arena through the shared pool;
	// the flattened outputs must be entirely their own records. Run with
	// -race this also proves the pool handoff is clean.
	var wg sync.WaitGroup
	outs := make([][]Record, 8)
	for g := range outs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a := NewArena()
			n := slabLen*2 + g*17
			for i := 0; i < n; i++ {
				r := a.Alloc()
				r.Seq = int64(i)
				r.Func = fmt.Sprintf("g%d", g)
			}
			outs[g] = a.Finish()
		}(g)
	}
	wg.Wait()
	for g, out := range outs {
		want := fmt.Sprintf("g%d", g)
		for i, r := range out {
			if r.Func != want || r.Seq != int64(i) {
				t.Fatalf("goroutine %d record %d: %+v", g, i, r)
			}
		}
	}
}

func TestRunResolveHashesIdempotent(t *testing.T) {
	calls := 0
	r := &Run{Records: []Record{{Seq: 1}}}
	r.SetHashResolver(func(run *Run) {
		calls++
		for i := range run.Records {
			if run.Records[i].Hash == "" {
				run.Records[i].Hash = "abcd"
			}
		}
	})
	r.ResolveHashes()
	r.ResolveHashes()
	if r.Records[0].Hash != "abcd" {
		t.Fatalf("hash not resolved: %+v", r.Records[0])
	}
	if calls != 2 {
		t.Fatalf("resolver calls = %d", calls)
	}
	// A struct copy (stage 4 copies stage 3's run) carries the resolver.
	cp := *r
	cp.ResolveHashes()
	if calls != 3 {
		t.Fatal("copied run lost the resolver")
	}
}
