// Package hashstore implements the content-based data-deduplication store
// used by stage 3 (§3.3.2): every transfer payload is hashed; a hash that
// was seen before marks the transfer as a duplicate, and the store remembers
// where the data was first transferred.
//
// Hashing is tiered so the simulated model cost (charged in virtual time by
// stage 3) does not also become a real host-time cost per payload:
//
//  1. a fixed-seed 64-bit prefilter hash routes the payload to a bucket;
//  2. first-seen payloads short-circuit — no sha256 is computed, the bytes
//     are retained (in pooled buffers) as the identity witness;
//  3. duplicates are confirmed by byte comparison against the witness, which
//     classifies exactly like comparing sha256 digests would;
//  4. the sha256 digest itself is computed lazily, only when a record's Hash
//     string is actually rendered (Ref.String/Ref.Key) or the digest is
//     needed to compare against an already-promoted entry. The short hex
//     form is interned per distinct payload, never per record.
//
// The store is safe for concurrent use, so stage 3 can hash under the
// parallel engine's sched workers.
package hashstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math/bits"
	"sync"

	"diogenes/internal/obs"
)

// Key is a content hash of a transfer payload.
type Key [sha256.Size]byte

// Hash computes the content key of a payload.
func Hash(p []byte) Key { return sha256.Sum256(p) }

// String returns the abbreviated hex form used in reports.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// Hex returns the full hex digest.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// ValidDigest reports whether s looks like a payload digest as trace
// records render them: the abbreviated form (Key.String, 16 lowercase hex
// characters) or the full form (Key.Hex, 64). Fleet aggregation keys
// cross-rank duplicate findings on these strings and must skip records
// whose digest was never resolved.
func ValidDigest(s string) bool {
	if len(s) != 16 && len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Entry records the first sighting of a payload.
type Entry struct {
	FirstSeq int64 // sequence number of the first transfer of this content
	Bytes    int   // payload size
	Count    int   // total transfers with this content, including the first
}

// entry is the store's internal record of one distinct payload. Until
// promoted it holds a retained copy of the bytes; promotion computes the
// sha256 digest, interns the short hex form and releases the buffer.
type entry struct {
	next     *entry // bucket chain (prefilter collisions and distinct sizes)
	firstSeq int64
	bytes    int
	count    int
	payload  []byte // retained witness bytes; nil once promoted
	sum      Key    // sha256 digest, valid once promoted
	hex8     string // interned short hex, computed at most once
	promoted bool
}

// Ref is a handle to a distinct payload in a Store. Rendering the hash
// through a Ref is what triggers the lazy sha256 computation; records whose
// hash is never rendered never pay for it. The zero Ref is invalid.
type Ref struct {
	e *entry
	s *Store
}

// Valid reports whether the ref points at a store entry.
func (r Ref) Valid() bool { return r.e != nil }

// String returns the abbreviated hex form of the payload's sha256 digest,
// identical to Key.String() of Hash(payload). The digest is computed on
// first use and the string is interned: duplicate records of the same
// content share one allocation.
func (r Ref) String() string {
	if r.e == nil {
		return ""
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	r.s.promote(r.e)
	if r.e.hex8 == "" {
		r.e.hex8 = hex.EncodeToString(r.e.sum[:8])
	}
	return r.e.hex8
}

// Key returns the payload's full sha256 digest, computing it on first use.
func (r Ref) Key() Key {
	if r.e == nil {
		return Key{}
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	r.s.promote(r.e)
	return r.e.sum
}

// Store maps payload contents to their first transfer. The zero value is
// not usable; call New. All methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	buckets  map[uint64]*entry
	distinct int
	// stats
	inserts    int64
	duplicates int64
	dupBytes   int64
	retained   int64 // bytes currently held as identity witnesses

	// Instrument pointers resolved by SetMetrics (nil-safe no-ops until
	// then).
	mPrefilterHits *obs.Counter
	mSha256Avoided *obs.Counter
	mSha256        *obs.Counter
	mRetained      *obs.Gauge
}

// New returns an empty store.
func New() *Store { return &Store{buckets: make(map[uint64]*entry)} }

// SetMetrics attaches self-measurement instruments: inserts whose prefilter
// bucket already held a candidate (hashstore/prefilter_hits), inserts
// classified without computing any sha256 (hashstore/sha256_avoided),
// sha256 digests actually computed (hashstore/sha256_computed), and the
// bytes currently retained as identity witnesses (hashstore/retained_bytes).
// A nil registry detaches.
func (s *Store) SetMetrics(m *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mPrefilterHits = m.Counter("hashstore/prefilter_hits")
	s.mSha256Avoided = m.Counter("hashstore/sha256_avoided")
	s.mSha256 = m.Counter("hashstore/sha256_computed")
	s.mRetained = m.Gauge("hashstore/retained_bytes")
}

// bufPool recycles witness buffers across entries and stores.
var bufPool = sync.Pool{New: func() any { b := []byte(nil); return &b }}

// Insert records a transfer of payload p occurring at sequence seq. It
// returns whether the content is a duplicate, the sequence of the first
// transfer that carried it, and a Ref through which the content hash can be
// rendered lazily. The duplicate classification is exactly the one plain
// sha256 hashing would produce (FuzzHashTiers proves it): payloads compare
// equal iff their digests would.
func (s *Store) Insert(p []byte, seq int64) (dup bool, firstSeq int64, ref Ref) {
	h := prefilter64(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inserts++
	var sum Key
	haveSum := false
	if s.buckets[h] != nil {
		s.mPrefilterHits.Inc()
	}
	for e := s.buckets[h]; e != nil; e = e.next {
		if e.bytes != len(p) {
			continue
		}
		var match bool
		if !e.promoted {
			match = bytes.Equal(e.payload, p)
		} else {
			// The witness bytes are gone; fall back to digest equality.
			if !haveSum {
				sum = sha256.Sum256(p)
				haveSum = true
				s.mSha256.Inc()
			}
			match = sum == e.sum
		}
		if match {
			e.count++
			s.duplicates++
			s.dupBytes += int64(len(p))
			if !haveSum {
				s.mSha256Avoided.Inc()
			}
			return true, e.firstSeq, Ref{e: e, s: s}
		}
	}
	e := &entry{firstSeq: seq, bytes: len(p), count: 1, payload: s.retain(p)}
	e.next = s.buckets[h]
	s.buckets[h] = e
	s.distinct++
	if !haveSum {
		s.mSha256Avoided.Inc()
	}
	return false, seq, Ref{e: e, s: s}
}

// retain copies p into a pooled buffer and accounts for it. Callers hold mu.
func (s *Store) retain(p []byte) []byte {
	if len(p) == 0 {
		return []byte{}
	}
	buf := *bufPool.Get().(*[]byte)
	if cap(buf) < len(p) {
		buf = make([]byte, len(p))
	}
	buf = buf[:len(p)]
	copy(buf, p)
	s.retained += int64(len(p))
	s.mRetained.Set(float64(s.retained))
	return buf
}

// promote computes the entry's sha256 digest from its witness bytes and
// releases the buffer back to the pool. Callers hold mu. Idempotent.
func (s *Store) promote(e *entry) {
	if e.promoted {
		return
	}
	e.sum = sha256.Sum256(e.payload)
	e.promoted = true
	s.mSha256.Inc()
	s.retained -= int64(len(e.payload))
	s.mRetained.Set(float64(s.retained))
	if cap(e.payload) > 0 {
		buf := e.payload[:0]
		bufPool.Put(&buf)
	}
	e.payload = nil
}

// Lookup returns the entry for a content key, if any. It forces promotion
// of every stored payload (each needs its digest to compare), so it is
// intended for tests and post-run inspection, not the hot path.
func (s *Store) Lookup(k Key) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, chain := range s.buckets {
		for e := chain; e != nil; e = e.next {
			s.promote(e)
			if e.sum == k {
				return Entry{FirstSeq: e.firstSeq, Bytes: e.bytes, Count: e.count}, true
			}
		}
	}
	return Entry{}, false
}

// Len returns the number of distinct payloads seen.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.distinct
}

// Inserts returns the total number of Insert calls.
func (s *Store) Inserts() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inserts
}

// Duplicates returns the number of duplicate transfers detected.
func (s *Store) Duplicates() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duplicates
}

// DuplicateBytes returns the total bytes carried by duplicate transfers.
func (s *Store) DuplicateBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dupBytes
}

// RetainedBytes returns the bytes currently held as identity witnesses
// (first-seen payloads whose digest has not been needed yet).
func (s *Store) RetainedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retained
}

// prefilter64 is the fixed-seed 64-bit prefilter hash (the XXH64 layout).
// It only routes payloads to buckets — classification never trusts it, so a
// collision costs one extra byte comparison, never a wrong answer.
const prefilterSeed uint64 = 0x9e3779b97f4a7c15

const (
	prime1 uint64 = 11400714785074694791
	prime2 uint64 = 14029467366897019727
	prime3 uint64 = 1609587929392839161
	prime4 uint64 = 9650029242287828579
	prime5 uint64 = 2870177450012600261
)

func prefilter64(p []byte) uint64 {
	n := uint64(len(p))
	var h uint64
	seed := prefilterSeed
	if len(p) >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(p) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(p[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(p[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(p[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(p[24:32]))
			p = p[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}
	h += n
	for len(p) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(p[:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		p = p[8:]
	}
	if len(p) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(p[:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		p = p[4:]
	}
	for _, b := range p {
		h ^= uint64(b) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, in uint64) uint64 {
	acc += in * prime2
	return bits.RotateLeft64(acc, 31) * prime1
}

func mergeRound(h, v uint64) uint64 {
	h ^= round(0, v)
	return h*prime1 + prime4
}
