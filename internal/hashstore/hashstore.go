// Package hashstore implements the content-based data-deduplication store
// used by stage 3 (§3.3.2): every transfer payload is hashed; a hash that
// was seen before marks the transfer as a duplicate, and the store remembers
// where the data was first transferred.
package hashstore

import (
	"crypto/sha256"
	"encoding/hex"
)

// Key is a content hash of a transfer payload.
type Key [sha256.Size]byte

// Hash computes the content key of a payload.
func Hash(p []byte) Key { return sha256.Sum256(p) }

// String returns the abbreviated hex form used in reports.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// Hex returns the full hex digest.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Entry records the first sighting of a payload.
type Entry struct {
	FirstSeq int64 // sequence number of the first transfer of this content
	Bytes    int   // payload size
	Count    int   // total transfers with this content, including the first
}

// Store maps content hashes to their first transfer. The zero value is not
// usable; call New.
type Store struct {
	entries map[Key]*Entry
	// stats
	inserts    int64
	duplicates int64
	dupBytes   int64
}

// New returns an empty store.
func New() *Store { return &Store{entries: make(map[Key]*Entry)} }

// Insert records a transfer of payload p occurring at sequence seq. It
// returns whether the content is a duplicate and, if so, the sequence of the
// first transfer that carried it.
func (s *Store) Insert(p []byte, seq int64) (dup bool, firstSeq int64, key Key) {
	key = Hash(p)
	s.inserts++
	if e, ok := s.entries[key]; ok {
		e.Count++
		s.duplicates++
		s.dupBytes += int64(len(p))
		return true, e.FirstSeq, key
	}
	s.entries[key] = &Entry{FirstSeq: seq, Bytes: len(p), Count: 1}
	return false, seq, key
}

// Lookup returns the entry for a content key, if any.
func (s *Store) Lookup(k Key) (Entry, bool) {
	e, ok := s.entries[k]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Len returns the number of distinct payloads seen.
func (s *Store) Len() int { return len(s.entries) }

// Inserts returns the total number of Insert calls.
func (s *Store) Inserts() int64 { return s.inserts }

// Duplicates returns the number of duplicate transfers detected.
func (s *Store) Duplicates() int64 { return s.duplicates }

// DuplicateBytes returns the total bytes carried by duplicate transfers.
func (s *Store) DuplicateBytes() int64 { return s.dupBytes }
