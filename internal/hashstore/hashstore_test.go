package hashstore

import (
	"testing"
	"testing/quick"
)

func TestFirstInsertNotDuplicate(t *testing.T) {
	s := New()
	dup, first, _ := s.Insert([]byte("payload"), 10)
	if dup {
		t.Fatal("first insert reported duplicate")
	}
	if first != 10 {
		t.Fatalf("firstSeq = %d, want 10", first)
	}
	if s.Len() != 1 || s.Inserts() != 1 || s.Duplicates() != 0 {
		t.Fatalf("stats: len=%d inserts=%d dups=%d", s.Len(), s.Inserts(), s.Duplicates())
	}
}

func TestDuplicateDetection(t *testing.T) {
	s := New()
	s.Insert([]byte("same bytes"), 1)
	dup, first, key := s.Insert([]byte("same bytes"), 5)
	if !dup {
		t.Fatal("identical payload not flagged")
	}
	if first != 1 {
		t.Fatalf("firstSeq = %d, want 1", first)
	}
	e, ok := s.Lookup(key)
	if !ok || e.Count != 2 || e.FirstSeq != 1 || e.Bytes != len("same bytes") {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	if s.Duplicates() != 1 || s.DuplicateBytes() != int64(len("same bytes")) {
		t.Fatalf("dup stats: %d / %d", s.Duplicates(), s.DuplicateBytes())
	}
}

func TestDistinctPayloadsDistinctKeys(t *testing.T) {
	s := New()
	_, _, k1 := s.Insert([]byte("aaaa"), 1)
	dup, _, k2 := s.Insert([]byte("aaab"), 2)
	if dup {
		t.Fatal("different payload flagged duplicate")
	}
	if k1 == k2 {
		t.Fatal("hash collision on trivially different inputs")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLookupMissing(t *testing.T) {
	s := New()
	if _, ok := s.Lookup(Hash([]byte("never inserted"))); ok {
		t.Fatal("Lookup found phantom entry")
	}
}

func TestKeyStrings(t *testing.T) {
	k := Hash([]byte("x"))
	if len(k.String()) != 16 {
		t.Fatalf("short form %q not 16 hex chars", k.String())
	}
	if len(k.Hex()) != 64 {
		t.Fatalf("full form %q not 64 hex chars", k.Hex())
	}
}

func TestEmptyPayload(t *testing.T) {
	s := New()
	dup1, _, _ := s.Insert(nil, 1)
	dup2, first, _ := s.Insert([]byte{}, 2)
	if dup1 {
		t.Fatal("first empty payload flagged duplicate")
	}
	if !dup2 || first != 1 {
		t.Fatal("empty payloads should hash identically")
	}
}

func TestQuickHashDeterministic(t *testing.T) {
	f := func(p []byte) bool { return Hash(p) == Hash(append([]byte(nil), p...)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDuplicateCountConsistent(t *testing.T) {
	f := func(payloads [][]byte) bool {
		s := New()
		for i, p := range payloads {
			s.Insert(p, int64(i))
		}
		return s.Inserts() == int64(len(payloads)) &&
			s.Duplicates() == s.Inserts()-int64(s.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
