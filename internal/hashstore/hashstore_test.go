package hashstore

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"unsafe"

	"diogenes/internal/obs"
)

func TestFirstInsertNotDuplicate(t *testing.T) {
	s := New()
	dup, first, _ := s.Insert([]byte("payload"), 10)
	if dup {
		t.Fatal("first insert reported duplicate")
	}
	if first != 10 {
		t.Fatalf("firstSeq = %d, want 10", first)
	}
	if s.Len() != 1 || s.Inserts() != 1 || s.Duplicates() != 0 {
		t.Fatalf("stats: len=%d inserts=%d dups=%d", s.Len(), s.Inserts(), s.Duplicates())
	}
}

func TestDuplicateDetection(t *testing.T) {
	s := New()
	s.Insert([]byte("same bytes"), 1)
	dup, first, ref := s.Insert([]byte("same bytes"), 5)
	if !dup {
		t.Fatal("identical payload not flagged")
	}
	if first != 1 {
		t.Fatalf("firstSeq = %d, want 1", first)
	}
	e, ok := s.Lookup(ref.Key())
	if !ok || e.Count != 2 || e.FirstSeq != 1 || e.Bytes != len("same bytes") {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	if s.Duplicates() != 1 || s.DuplicateBytes() != int64(len("same bytes")) {
		t.Fatalf("dup stats: %d / %d", s.Duplicates(), s.DuplicateBytes())
	}
}

func TestDistinctPayloadsDistinctKeys(t *testing.T) {
	s := New()
	_, _, r1 := s.Insert([]byte("aaaa"), 1)
	dup, _, r2 := s.Insert([]byte("aaab"), 2)
	if dup {
		t.Fatal("different payload flagged duplicate")
	}
	if r1.Key() == r2.Key() {
		t.Fatal("hash collision on trivially different inputs")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestLookupMissing(t *testing.T) {
	s := New()
	if _, ok := s.Lookup(Hash([]byte("never inserted"))); ok {
		t.Fatal("Lookup found phantom entry")
	}
}

func TestKeyStrings(t *testing.T) {
	k := Hash([]byte("x"))
	if len(k.String()) != 16 {
		t.Fatalf("short form %q not 16 hex chars", k.String())
	}
	if len(k.Hex()) != 64 {
		t.Fatalf("full form %q not 64 hex chars", k.Hex())
	}
}

func TestEmptyPayload(t *testing.T) {
	s := New()
	dup1, _, _ := s.Insert(nil, 1)
	dup2, first, ref := s.Insert([]byte{}, 2)
	if dup1 {
		t.Fatal("first empty payload flagged duplicate")
	}
	if !dup2 || first != 1 {
		t.Fatal("empty payloads should hash identically")
	}
	if ref.Key() != sha256.Sum256(nil) {
		t.Fatal("empty payload digest differs from sha256.Sum256(nil)")
	}
}

func TestRefMatchesEagerHash(t *testing.T) {
	payloads := [][]byte{nil, []byte("a"), []byte("hello world"), make([]byte, 4096)}
	s := New()
	for i, p := range payloads {
		_, _, ref := s.Insert(p, int64(i))
		want := Hash(p)
		if ref.Key() != want {
			t.Fatalf("payload %d: lazy digest differs from sha256.Sum256", i)
		}
		if ref.String() != want.String() {
			t.Fatalf("payload %d: short hex %q != %q", i, ref.String(), want.String())
		}
	}
}

func TestRefStringInterned(t *testing.T) {
	s := New()
	_, _, r1 := s.Insert([]byte("interned"), 1)
	_, _, r2 := s.Insert([]byte("interned"), 2)
	a, b := r1.String(), r2.String()
	if a != b {
		t.Fatalf("duplicate refs render different hashes: %q vs %q", a, b)
	}
	// Same backing allocation: interning means duplicate records share one
	// string, not just equal ones.
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Fatal("duplicate refs did not intern the hex string")
	}
}

func TestLazyPromotionReleasesWitness(t *testing.T) {
	s := New()
	_, _, ref := s.Insert(make([]byte, 1024), 1)
	if got := s.RetainedBytes(); got != 1024 {
		t.Fatalf("retained = %d, want 1024 before promotion", got)
	}
	_ = ref.String()
	if got := s.RetainedBytes(); got != 0 {
		t.Fatalf("retained = %d, want 0 after promotion", got)
	}
	// Rendering again must not recompute or re-release.
	_ = ref.String()
	if got := s.RetainedBytes(); got != 0 {
		t.Fatalf("retained = %d after second render", got)
	}
}

func TestInsertAfterPromotionStillClassifies(t *testing.T) {
	s := New()
	_, _, ref := s.Insert([]byte("promote me"), 1)
	_ = ref.Key() // promotion drops the witness bytes
	dup, first, _ := s.Insert([]byte("promote me"), 2)
	if !dup || first != 1 {
		t.Fatalf("dup=%v first=%d after promotion, want true/1", dup, first)
	}
	dup, _, _ = s.Insert([]byte("promote m3"), 3)
	if dup {
		t.Fatal("distinct payload flagged duplicate after promotion")
	}
}

func TestZeroRef(t *testing.T) {
	var r Ref
	if r.Valid() {
		t.Fatal("zero Ref claims valid")
	}
	if r.String() != "" {
		t.Fatalf("zero Ref renders %q", r.String())
	}
	if r.Key() != (Key{}) {
		t.Fatal("zero Ref has non-zero key")
	}
}

func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.SetMetrics(reg)
	s.Insert([]byte("one"), 1)
	s.Insert([]byte("one"), 2)
	s.Insert([]byte("two"), 3)
	if got := reg.Counter("hashstore/sha256_avoided").Value(); got != 3 {
		t.Fatalf("sha256_avoided = %d, want 3 (no digest needed yet)", got)
	}
	if got := reg.Counter("hashstore/prefilter_hits").Value(); got != 1 {
		t.Fatalf("prefilter_hits = %d, want 1 (the duplicate insert)", got)
	}
	_, _, ref := s.Insert([]byte("one"), 4)
	_ = ref.String()
	if got := reg.Counter("hashstore/sha256_computed").Value(); got != 1 {
		t.Fatalf("sha256_computed = %d, want exactly 1 after one render", got)
	}
}

func TestConcurrentInsert(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				payload := []byte(fmt.Sprintf("payload-%d", i%17))
				_, _, ref := s.Insert(payload, int64(g*1000+i))
				if i%50 == 0 {
					_ = ref.String()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 17 {
		t.Fatalf("Len = %d, want 17 distinct payloads", s.Len())
	}
	if s.Inserts() != 8*200 {
		t.Fatalf("Inserts = %d, want %d", s.Inserts(), 8*200)
	}
	if s.Duplicates() != s.Inserts()-int64(s.Len()) {
		t.Fatalf("Duplicates = %d inconsistent with %d inserts / %d distinct",
			s.Duplicates(), s.Inserts(), s.Len())
	}
}

func TestQuickHashDeterministic(t *testing.T) {
	f := func(p []byte) bool { return Hash(p) == Hash(append([]byte(nil), p...)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrefilterDeterministic(t *testing.T) {
	f := func(p []byte) bool { return prefilter64(p) == prefilter64(append([]byte(nil), p...)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDuplicateCountConsistent(t *testing.T) {
	f := func(payloads [][]byte) bool {
		s := New()
		for i, p := range payloads {
			s.Insert(p, int64(i))
		}
		return s.Inserts() == int64(len(payloads)) &&
			s.Duplicates() == s.Inserts()-int64(s.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidDigest(t *testing.T) {
	cases := []struct {
		s  string
		ok bool
	}{
		{"", false},
		{"0123456789abcdef", true},               // abbreviated Key.String form
		{Hash([]byte("payload")).String(), true}, // real abbreviated digest
		{Hash([]byte("payload")).Hex(), true},    // full Key.Hex form
		{"0123456789ABCDEF", false},              // uppercase is never rendered
		{"0123456789abcde", false},               // wrong length
		{"0123456789abcdefg", false},             // wrong length + non-hex
		{"zzzz456789abcdef", false},              // non-hex at valid length
		{"payload-16-bytes", false},              // valid length, not hex
	}
	for _, c := range cases {
		if got := ValidDigest(c.s); got != c.ok {
			t.Errorf("ValidDigest(%q) = %v, want %v", c.s, got, c.ok)
		}
	}
}
