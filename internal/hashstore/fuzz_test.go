package hashstore

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// FuzzHashTiers proves the tiered prefilter+witness+lazy-sha256 path
// classifies duplicate/unique exactly like plain sha256.Sum256 over a
// sequence of arbitrary payloads, including empty ones, and that the lazily
// rendered digests match the eager ones — with promotions interleaved at
// arbitrary points so both the witness-compare and the digest-compare
// branches are exercised.
func FuzzHashTiers(f *testing.F) {
	f.Add([]byte(""), []byte("a"), []byte("a"), byte(0))
	f.Add([]byte("x"), []byte("x"), []byte("y"), byte(1))
	f.Add([]byte{0, 0, 0, 0}, []byte{0, 0, 0}, []byte{0, 0, 0, 0}, byte(2))
	f.Add(bytes.Repeat([]byte("ab"), 64), bytes.Repeat([]byte("ab"), 64), []byte("ab"), byte(3))
	f.Fuzz(func(t *testing.T, a, b, c []byte, promoteMask byte) {
		payloads := [][]byte{a, b, c, a, c, nil}
		tiered := New()
		eager := map[[sha256.Size]byte]int64{} // digest -> first seq
		for i, p := range payloads {
			seq := int64(i + 1)
			dup, first, ref := tiered.Insert(p, seq)

			sum := sha256.Sum256(p)
			wantFirst, wantDup := eager[sum]
			if !wantDup {
				eager[sum] = seq
				wantFirst = seq
			}

			if dup != wantDup {
				t.Fatalf("payload %d (%q): tiered dup=%v, sha256 says %v", i, p, dup, wantDup)
			}
			if first != wantFirst {
				t.Fatalf("payload %d: tiered firstSeq=%d, sha256 says %d", i, first, wantFirst)
			}
			// Promote at arbitrary interleavings so later inserts hit the
			// digest-compare branch for some entries and the byte-compare
			// branch for others.
			if promoteMask&(1<<(i%8)) != 0 {
				if got := ref.Key(); got != sum {
					t.Fatalf("payload %d: lazy digest != sha256.Sum256", i)
				}
			}
		}
		// Every ref must render the same digest sha256 computes eagerly.
		for i, p := range payloads {
			_, _, ref := tiered.Insert(p, int64(100+i))
			if got, want := ref.Key(), sha256.Sum256(p); got != want {
				t.Fatalf("payload %d: final digest mismatch", i)
			}
			if got, want := ref.String(), Key(sha256.Sum256(p)).String(); got != want {
				t.Fatalf("payload %d: short hex %q != %q", i, got, want)
			}
		}
		if tiered.Len() != len(eager) {
			t.Fatalf("tiered distinct=%d, sha256 distinct=%d", tiered.Len(), len(eager))
		}
	})
}
