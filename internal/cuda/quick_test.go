package cuda

import (
	"testing"
	"testing/quick"

	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// TestQuickRandomOpSequences drives the driver with arbitrary operation
// sequences and checks global invariants: the clock never goes backwards,
// every recorded synchronization wait fits inside its call, every device
// operation has a consistent (enqueue ≤ start ≤ end) timeline, and the
// context's call accounting matches what was issued.
func TestQuickRandomOpSequences(t *testing.T) {
	f := func(ops []uint8) bool {
		e := newEnv()
		var issued int64
		var lastNow simtime.Time

		var waits []simtime.Duration
		e.ctx.AttachProbe(FuncInternalSync, Probe{Exit: func(c *Call) {
			waits = append(waits, c.SyncWait())
		}})

		buf, err := e.ctx.Malloc(64<<10, "buf")
		if err != nil {
			return false
		}
		issued++
		host := e.host.Alloc(64<<10, "host")
		stream := e.ctx.StreamCreate()
		issued++

		for i, op := range ops {
			if i > 40 {
				break
			}
			switch op % 7 {
			case 0:
				if _, err := e.ctx.LaunchKernel(KernelSpec{
					Name: "k", Duration: simtime.Duration(op) * 37 * simtime.Microsecond,
					Stream: gpu.LegacyStream,
				}); err != nil {
					return false
				}
				issued++
			case 1:
				if _, err := e.ctx.LaunchKernel(KernelSpec{
					Name: "k2", Duration: simtime.Duration(op%13) * 100 * simtime.Microsecond,
					Stream: stream,
				}); err != nil {
					return false
				}
				issued++
			case 2:
				if err := e.ctx.MemcpyH2D(buf.Base(), host.Base(), 1024); err != nil {
					return false
				}
				issued++
			case 3:
				if err := e.ctx.MemcpyD2H(host.Base(), buf.Base(), 1024); err != nil {
					return false
				}
				issued++
			case 4:
				e.ctx.DeviceSynchronize()
				issued++
			case 5:
				e.ctx.StreamSynchronize(stream)
				issued++
			case 6:
				e.clock.Advance(simtime.Duration(op) * simtime.Microsecond)
			}
			if e.clock.Now() < lastNow {
				return false // clock moved backwards
			}
			lastNow = e.clock.Now()
		}

		for _, w := range waits {
			if w < 0 {
				return false
			}
		}
		for _, op := range e.dev.Ops() {
			if op.Start < op.Enqueue {
				return false
			}
			if op.End != simtime.Infinity && op.End < op.Start {
				return false
			}
		}
		return e.ctx.TotalCalls() == issued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSyncDrainsDevice checks that after DeviceSynchronize the device
// reports no pending work, for arbitrary preceding op mixes.
func TestQuickSyncDrainsDevice(t *testing.T) {
	f := func(durs []uint8) bool {
		e := newEnv()
		s := e.ctx.StreamCreate()
		for i, d := range durs {
			if i > 15 {
				break
			}
			target := gpu.LegacyStream
			if d%2 == 1 {
				target = s
			}
			if _, err := e.ctx.LaunchKernel(KernelSpec{
				Name: "k", Duration: simtime.Duration(d) * 53 * simtime.Microsecond, Stream: target,
			}); err != nil {
				return false
			}
		}
		e.ctx.DeviceSynchronize()
		return e.dev.BusyUntil() <= e.clock.Now()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
