package cuda

import (
	"fmt"

	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// Event API. cudaEventSynchronize is one more explicit blocking entry point
// funnelling through the internal wait function; cudaEventQuery is the
// polling variant applications use to avoid blocking (and a common fix for
// misplaced synchronizations). Event records additionally let applications
// time device work, which several of the modelled workloads' originals do.

// Event function names.
const (
	FuncEventCreate      Func = "cudaEventCreate"
	FuncEventRecord      Func = "cudaEventRecord"
	FuncEventSynchronize Func = "cudaEventSynchronize"
	FuncEventQuery       Func = "cudaEventQuery"
	FuncEventElapsedTime Func = "cudaEventElapsedTime"
)

func init() {
	PublicFuncs = append(PublicFuncs,
		FuncEventCreate, FuncEventRecord, FuncEventSynchronize,
		FuncEventQuery, FuncEventElapsedTime)
}

// Event marks a position in a stream's work queue.
type Event struct {
	id       int
	recorded bool
	// completeAt is the device time at which all work preceding the
	// record point finishes.
	completeAt simtime.Time
	stream     gpu.StreamID
}

// Recorded reports whether the event has been recorded at least once.
func (e *Event) Recorded() bool { return e.recorded }

// EventCreate allocates an event.
func (c *Context) EventCreate() *Event {
	call := c.beginCall(FuncEventCreate, KindOther)
	defer c.endCall(call)
	c.nextEvent++
	return &Event{id: c.nextEvent}
}

// EventRecord snapshots the stream's current queue position: the event
// completes when all work enqueued so far on the stream has finished.
func (c *Context) EventRecord(e *Event, stream gpu.StreamID) error {
	call := c.beginCall(FuncEventRecord, KindOther)
	defer c.endCall(call)
	if !c.devs[c.cur].StreamExists(stream) {
		return fmt.Errorf("cuda: EventRecord on unknown stream %d", stream)
	}
	e.recorded = true
	e.stream = stream
	e.completeAt = c.devs[c.cur].StreamBusyUntil(stream)
	c.touchInternal(FuncInternalEnqueue)
	return nil
}

// EventSynchronize blocks until the event's work completes — an explicit
// synchronization through the shared internal wait function.
func (c *Context) EventSynchronize(e *Event) error {
	if c.elided(FuncEventSynchronize) {
		return nil
	}
	call := c.beginCall(FuncEventSynchronize, KindSync)
	defer c.endCall(call)
	if !e.recorded {
		return fmt.Errorf("cuda: EventSynchronize on unrecorded event %d", e.id)
	}
	c.internalSync(e.completeAt, SyncExplicit, call)
	return nil
}

// EventQuery reports, without blocking, whether the event's work has
// completed. The non-blocking alternative to EventSynchronize.
func (c *Context) EventQuery(e *Event) (bool, error) {
	call := c.beginCall(FuncEventQuery, KindOther)
	defer c.endCall(call)
	if !e.recorded {
		return false, fmt.Errorf("cuda: EventQuery on unrecorded event %d", e.id)
	}
	return !c.clock.Now().Before(e.completeAt), nil
}

// EventElapsedTime returns the device-time span between two completed
// events. Both must have completed; like the real API it errors otherwise.
func (c *Context) EventElapsedTime(start, end *Event) (simtime.Duration, error) {
	call := c.beginCall(FuncEventElapsedTime, KindOther)
	defer c.endCall(call)
	if !start.recorded || !end.recorded {
		return 0, fmt.Errorf("cuda: EventElapsedTime on unrecorded event")
	}
	now := c.clock.Now()
	if now.Before(start.completeAt) || now.Before(end.completeAt) {
		return 0, fmt.Errorf("cuda: EventElapsedTime before completion (cudaErrorNotReady)")
	}
	return end.completeAt.Sub(start.completeAt), nil
}
