// Package cuda models the user-space GPU driver (the simulated libcuda.so).
//
// It exposes a CUDA-runtime-flavoured API over the gpu device simulator and
// reproduces the synchronization behaviours Diogenes depends on (§2.2,
// Figure 3 of the paper):
//
//   - every blocking path — explicit (cudaDeviceSynchronize,
//     cudaStreamSynchronize), implicit (cudaMemcpy, cudaFree), conditional
//     (cudaMemcpyAsync to pageable host memory, cudaMemset on managed
//     memory), and private vendor-library entry points — funnels through a
//     single shared internal synchronization function;
//   - the vendor activity interface (package cupti) is notified only of the
//     events the real CUPTI reports: public driver calls, device activities,
//     and *explicit* synchronizations. Implicit, conditional and private
//     synchronizations are invisible to it;
//   - instrumentation (package interpose) can wrap any driver function,
//     including the internal ones, through the probe table, which is the
//     binary-patching analog.
package cuda

import (
	"fmt"

	"diogenes/internal/callstack"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/simtime"
)

// Func names a driver entry point. Public names match the CUDA runtime API;
// internal names (prefixed "__nv_") model the undocumented functions
// Diogenes discovers and instruments; private names model the proprietary
// entry points used by vendor libraries such as cuBLAS.
type Func string

// Public runtime API entry points.
const (
	FuncMemcpy            Func = "cudaMemcpy"
	FuncMemcpyAsync       Func = "cudaMemcpyAsync"
	FuncMalloc            Func = "cudaMalloc"
	FuncFree              Func = "cudaFree"
	FuncMallocHost        Func = "cudaMallocHost"
	FuncMallocManaged     Func = "cudaMallocManaged"
	FuncMemset            Func = "cudaMemset"
	FuncLaunchKernel      Func = "cudaLaunchKernel"
	FuncDeviceSync        Func = "cudaDeviceSynchronize"
	FuncStreamSync        Func = "cudaStreamSynchronize"
	FuncThreadSync        Func = "cudaThreadSynchronize"
	FuncFuncGetAttributes Func = "cudaFuncGetAttributes"
	FuncStreamCreate      Func = "cudaStreamCreate"
	FuncSetDevice         Func = "cudaSetDevice"
	FuncMemcpyPeer        Func = "cudaMemcpyPeer"
)

// Internal driver functions. FuncInternalSync is the wait function of
// Figure 3 that all synchronizing operations share; the other two are decoy
// internals exercised on every enqueue/allocation so that the discovery test
// (§3.1) actually has to discriminate the blocking function from its
// neighbours.
const (
	FuncInternalSync    Func = "__nv_sync_wait_internal"
	FuncInternalEnqueue Func = "__nv_enqueue_internal"
	FuncInternalAlloc   Func = "__nv_alloc_track_internal"
)

// Private (non-public driver API) entry points used by the simulated vendor
// math library. CUPTI does not report calls through these (§2.2), but they
// still synchronize through FuncInternalSync, which is how Diogenes sees
// them.
const (
	FuncPrivateGemm   Func = "nvblas::gemm_private"
	FuncPrivateMemcpy Func = "nvblas::memcpy_private"
)

// PublicFuncs lists the public runtime API in a stable order (used by
// profiler summaries).
var PublicFuncs = []Func{
	FuncMemcpy, FuncMemcpyAsync, FuncMalloc, FuncFree, FuncMallocHost,
	FuncMallocManaged, FuncMemset, FuncLaunchKernel, FuncDeviceSync,
	FuncStreamSync, FuncThreadSync, FuncFuncGetAttributes, FuncStreamCreate,
	FuncSetDevice, FuncMemcpyPeer,
}

// InternalFuncs lists candidate internal functions the discovery test
// inspects.
var InternalFuncs = []Func{FuncInternalSync, FuncInternalEnqueue, FuncInternalAlloc}

// IsPublic reports whether fn is part of the public runtime API.
func (f Func) IsPublic() bool {
	for _, p := range PublicFuncs {
		if p == f {
			return true
		}
	}
	return false
}

// IsInternal reports whether fn is an internal driver function.
func (f Func) IsInternal() bool {
	for _, p := range InternalFuncs {
		if p == f {
			return true
		}
	}
	return false
}

// IsPrivate reports whether fn is a private vendor-library entry point.
func (f Func) IsPrivate() bool {
	return f == FuncPrivateGemm || f == FuncPrivateMemcpy
}

// SyncScope classifies how a synchronization was requested (§2.2).
type SyncScope uint8

// Synchronization scopes.
const (
	SyncNone        SyncScope = iota // the call did not synchronize
	SyncExplicit                     // cudaDeviceSynchronize and friends
	SyncImplicit                     // side effect, e.g. cudaMemcpy, cudaFree
	SyncConditional                  // argument-dependent, e.g. pageable-D2H cudaMemcpyAsync
	SyncPrivate                      // reached through the proprietary API
)

// String names the scope.
func (s SyncScope) String() string {
	switch s {
	case SyncNone:
		return "none"
	case SyncExplicit:
		return "explicit"
	case SyncImplicit:
		return "implicit"
	case SyncConditional:
		return "conditional"
	case SyncPrivate:
		return "private"
	default:
		return fmt.Sprintf("SyncScope(%d)", uint8(s))
	}
}

// CUPTIVisible reports whether the vendor activity interface generates a
// synchronization record for this scope. Per §2.2, only explicit
// synchronizations are reported.
func (s SyncScope) CUPTIVisible() bool { return s == SyncExplicit }

// CallKind classifies a driver call for the analysis stages.
type CallKind uint8

// Call kinds.
const (
	KindOther CallKind = iota
	KindSync
	KindTransfer
	KindAlloc
	KindFree
	KindLaunch
)

// String names the kind.
func (k CallKind) String() string {
	switch k {
	case KindSync:
		return "sync"
	case KindTransfer:
		return "transfer"
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	case KindLaunch:
		return "launch"
	default:
		return "other"
	}
}

// TransferDir is the direction of a memory transfer.
type TransferDir uint8

// Transfer directions.
const (
	DirNone TransferDir = iota
	DirH2D
	DirD2H
	DirD2D
)

// String uses CUDA's HtoD/DtoH vocabulary.
func (d TransferDir) String() string {
	switch d {
	case DirH2D:
		return "HtoD"
	case DirD2H:
		return "DtoH"
	case DirD2D:
		return "DtoD"
	default:
		return "none"
	}
}

// Call describes one driver call as seen by attached probes. A single Call
// value is passed to entry probes, filled in during execution, and passed to
// exit probes; probes must not retain it past the exit callback unless they
// copy it.
type Call struct {
	Func  Func
	Kind  CallKind
	Entry simtime.Time
	Exit  simtime.Time

	// Caller is set on internal-function calls to the public or private
	// driver entry point that invoked them — what a native stack walk from
	// inside the internal function would show one frame up. Stage 1 uses it
	// to build the list of synchronizing API functions.
	Caller Func

	// Synchronization detail, valid when Scope != SyncNone.
	Scope     SyncScope
	SyncStart simtime.Time
	SyncEnd   simtime.Time

	// Transfer detail, valid when Kind == KindTransfer (and for
	// MallocManaged, which publishes a GPU-writable host range).
	Dir      TransferDir
	Bytes    int
	HostAddr memory.Addr
	HostSize int
	DevPtr   gpu.DevPtr
	Stream   gpu.StreamID

	// Payload holds the transferred bytes when payload capture is enabled
	// (stage 3 data hashing). Nil otherwise. It is a read-only view that
	// may alias live simulated memory: probes must consume it inside the
	// exit callback — copying if they need the bytes afterwards — and must
	// never write through it.
	Payload []byte

	// Stack is the application call stack at entry, captured only when
	// stack capture is enabled (it is expensive, like a real unwind).
	Stack callstack.Trace
}

// Duration returns the total CPU time spent in the call.
func (c *Call) Duration() simtime.Duration { return c.Exit.Sub(c.Entry) }

// SyncWait returns the portion of the call spent blocked in the internal
// synchronization function.
func (c *Call) SyncWait() simtime.Duration {
	if c.Scope == SyncNone {
		return 0
	}
	return c.SyncEnd.Sub(c.SyncStart)
}
