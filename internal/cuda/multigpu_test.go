package cuda

import (
	"testing"

	"diogenes/internal/callstack"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/simtime"
)

func newMultiEnv(n int) *env {
	clock := simtime.NewClock()
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.New(clock, gpu.DefaultConfig())
	}
	host := memory.NewSpace()
	stack := callstack.New()
	stack.Push("main", "main.cpp", 1)
	return &env{
		clock: clock, dev: devs[0], host: host, stack: stack,
		ctx: NewMultiContext(clock, devs, host, stack, DefaultConfig()),
	}
}

func TestSetDeviceSwitches(t *testing.T) {
	e := newMultiEnv(4)
	if e.ctx.DeviceCount() != 4 || e.ctx.CurrentDevice() != 0 {
		t.Fatalf("count=%d cur=%d", e.ctx.DeviceCount(), e.ctx.CurrentDevice())
	}
	if err := e.ctx.SetDevice(2); err != nil {
		t.Fatal(err)
	}
	if e.ctx.CurrentDevice() != 2 {
		t.Fatal("SetDevice did not switch")
	}
	if err := e.ctx.SetDevice(7); err == nil {
		t.Fatal("out-of-range device accepted")
	}
	if err := e.ctx.SetDevice(-1); err == nil {
		t.Fatal("negative device accepted")
	}
}

func TestDevicesAreIndependent(t *testing.T) {
	e := newMultiEnv(2)
	// Work on device 0.
	op0, _ := e.ctx.LaunchKernel(KernelSpec{Name: "k0", Duration: 10 * simtime.Millisecond, Stream: gpu.LegacyStream})
	// Switch to device 1: synchronize there finds no pending work.
	_ = e.ctx.SetDevice(1)
	before := e.clock.Now()
	e.ctx.DeviceSynchronize()
	if waited := e.clock.Now().Sub(before); waited > e.ctx.Config().CallOverhead*4 {
		t.Fatalf("device 1 sync waited %v for device 0's kernel", waited)
	}
	// Back on device 0, the kernel still must be waited out.
	_ = e.ctx.SetDevice(0)
	e.ctx.DeviceSynchronize()
	if e.clock.Now() < op0.End {
		t.Fatal("device 0 sync returned early")
	}
}

func TestPerDeviceAllocation(t *testing.T) {
	e := newMultiEnv(2)
	b0, err := e.ctx.Malloc(1<<20, "on dev0")
	if err != nil {
		t.Fatal(err)
	}
	_ = e.ctx.SetDevice(1)
	b1, err := e.ctx.Malloc(1<<20, "on dev1")
	if err != nil {
		t.Fatal(err)
	}
	if e.ctx.Device().MemStats().LiveBytes != 1<<20 {
		t.Fatal("device 1 allocation not on device 1")
	}
	// Freeing device 1's buffer from device 1 works; device 0's does not
	// live here.
	if err := e.ctx.Free(b1); err != nil {
		t.Fatal(err)
	}
	_ = e.ctx.SetDevice(0)
	if err := e.ctx.Free(b0); err != nil {
		t.Fatal(err)
	}
}

func TestMemcpyPeer(t *testing.T) {
	e := newMultiEnv(2)
	src, _ := e.ctx.Malloc(4096, "src on 0")
	_ = e.dev.DevWrite(src.Base(), []byte("peer payload"))
	_ = e.ctx.SetDevice(1)
	dst, err := e.ctx.Malloc(4096, "dst on 1")
	if err != nil {
		t.Fatal(err)
	}
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	if err := e.ctx.MemcpyPeer(1, dst.Base(), 0, src.Base(), 12); err != nil {
		t.Fatal(err)
	}
	got, _ := e.ctx.Device().DevRead(dst.Base(), 12)
	if string(got) != "peer payload" {
		t.Fatalf("peer copy = %q", got)
	}
	if len(rec.scopes) != 1 || rec.scopes[0] != SyncImplicit {
		t.Fatalf("peer copy sync = %v", rec.scopes)
	}
	if err := e.ctx.MemcpyPeer(5, dst.Base(), 0, src.Base(), 12); err == nil {
		t.Fatal("bad peer device accepted")
	}
}

func TestMemcpyPeerWaitsBothQueues(t *testing.T) {
	e := newMultiEnv(2)
	src, _ := e.ctx.Malloc(4096, "src")
	opA, _ := e.ctx.LaunchKernel(KernelSpec{Name: "busy0", Duration: 5 * simtime.Millisecond, Stream: gpu.LegacyStream})
	_ = e.ctx.SetDevice(1)
	dst, _ := e.ctx.Malloc(4096, "dst")
	opB, _ := e.ctx.LaunchKernel(KernelSpec{Name: "busy1", Duration: 9 * simtime.Millisecond, Stream: gpu.LegacyStream})
	if err := e.ctx.MemcpyPeer(1, dst.Base(), 0, src.Base(), 64); err != nil {
		t.Fatal(err)
	}
	if e.clock.Now() < opA.End || e.clock.Now() < opB.End {
		t.Fatal("peer copy returned before both queues drained")
	}
}

func TestNewMultiContextEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty device list accepted")
		}
	}()
	NewMultiContext(simtime.NewClock(), nil, memory.NewSpace(), callstack.New(), DefaultConfig())
}
