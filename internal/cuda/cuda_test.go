package cuda

import (
	"errors"
	"testing"

	"diogenes/internal/callstack"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/simtime"
)

type env struct {
	clock *simtime.Clock
	dev   *gpu.Device
	host  *memory.Space
	stack *callstack.Stack
	ctx   *Context
}

func newEnv() *env {
	clock := simtime.NewClock()
	dev := gpu.New(clock, gpu.DefaultConfig())
	host := memory.NewSpace()
	stack := callstack.New()
	stack.Push("main", "main.cpp", 1)
	return &env{
		clock: clock, dev: dev, host: host, stack: stack,
		ctx: NewContext(clock, dev, host, stack, DefaultConfig()),
	}
}

// syncRecorder records every internal-sync observation, the way Diogenes'
// stage probes do.
type syncRecorder struct {
	scopes []SyncScope
	waits  []simtime.Duration
}

func (r *syncRecorder) attach(c *Context) {
	c.AttachProbe(FuncInternalSync, Probe{Exit: func(call *Call) {
		r.scopes = append(r.scopes, call.Scope)
		r.waits = append(r.waits, call.SyncWait())
	}})
}

func TestMemcpySynchronizesImplicitly(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	src := e.host.Alloc(1<<20, "src")
	dst, err := e.ctx.Malloc(1<<20, "dst")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ctx.MemcpyH2D(dst.Base(), src.Base(), 1<<20); err != nil {
		t.Fatal(err)
	}
	if len(rec.scopes) != 1 || rec.scopes[0] != SyncImplicit {
		t.Fatalf("scopes = %v, want [implicit]", rec.scopes)
	}
	if rec.waits[0] <= 0 {
		t.Fatal("memcpy sync wait should be positive")
	}
}

func TestMemcpyMovesData(t *testing.T) {
	e := newEnv()
	src := e.host.Alloc(64, "src")
	dst := e.host.Alloc(64, "dst")
	buf, _ := e.ctx.Malloc(64, "dev")
	want := []byte("round trip through the device")
	if err := e.host.Poke(src.Base(), want); err != nil {
		t.Fatal(err)
	}
	if err := e.ctx.MemcpyH2D(buf.Base(), src.Base(), len(want)); err != nil {
		t.Fatal(err)
	}
	if err := e.ctx.MemcpyD2H(dst.Base(), buf.Base(), len(want)); err != nil {
		t.Fatal(err)
	}
	got, _ := e.host.Peek(dst.Base(), len(want))
	if string(got) != string(want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestFreeImplicitlySynchronizes(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	buf, _ := e.ctx.Malloc(1024, "tmp")
	// Queue long-running work, then free: the free must wait it out.
	op, err := e.ctx.LaunchKernel(KernelSpec{Name: "long", Duration: 10 * simtime.Millisecond, Stream: gpu.LegacyStream})
	if err != nil {
		t.Fatal(err)
	}
	before := e.clock.Now()
	if err := e.ctx.Free(buf); err != nil {
		t.Fatal(err)
	}
	if e.clock.Now() < op.End {
		t.Fatalf("Free returned at %v, before kernel end %v", e.clock.Now(), op.End)
	}
	if len(rec.scopes) != 1 || rec.scopes[0] != SyncImplicit {
		t.Fatalf("scopes = %v", rec.scopes)
	}
	if rec.waits[0] < op.End.Sub(before)-e.ctx.Config().CallOverhead*4 {
		t.Fatalf("wait %v did not cover queued work", rec.waits[0])
	}
}

func TestMemcpyAsyncH2DDoesNotSync(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	src := e.host.Alloc(1<<20, "src")
	buf, _ := e.ctx.Malloc(1<<20, "dev")
	s := e.ctx.StreamCreate()
	if err := e.ctx.MemcpyAsyncH2D(buf.Base(), src.Base(), 1<<20, s); err != nil {
		t.Fatal(err)
	}
	if len(rec.scopes) != 0 {
		t.Fatalf("async H2D synchronized: %v", rec.scopes)
	}
	if e.dev.StreamBusyUntil(s) <= e.clock.Now() {
		t.Fatal("async copy left no pending device work")
	}
}

func TestMemcpyAsyncD2HPinnedIsAsync(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	pinned := e.ctx.MallocHost(1<<20, "pinned dst")
	buf, _ := e.ctx.Malloc(1<<20, "dev")
	s := e.ctx.StreamCreate()
	if err := e.ctx.MemcpyAsyncD2H(pinned.Base(), buf.Base(), 1<<20, s); err != nil {
		t.Fatal(err)
	}
	if len(rec.scopes) != 0 {
		t.Fatalf("pinned async D2H synchronized: %v", rec.scopes)
	}
}

func TestMemcpyAsyncD2HPageableConditionallySyncs(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	pageable := e.host.Alloc(1<<20, "pageable dst")
	buf, _ := e.ctx.Malloc(1<<20, "dev")
	s := e.ctx.StreamCreate()
	if err := e.ctx.MemcpyAsyncD2H(pageable.Base(), buf.Base(), 1<<20, s); err != nil {
		t.Fatal(err)
	}
	if len(rec.scopes) != 1 || rec.scopes[0] != SyncConditional {
		t.Fatalf("scopes = %v, want [conditional]", rec.scopes)
	}
}

func TestMemsetManagedConditionallySyncs(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	r, err := e.ctx.MallocManaged(4096, "unified")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ctx.MemsetManaged(r.Base(), 0, 4096); err != nil {
		t.Fatal(err)
	}
	if len(rec.scopes) != 1 || rec.scopes[0] != SyncConditional {
		t.Fatalf("scopes = %v, want [conditional]", rec.scopes)
	}
	got, _ := e.host.Peek(r.Base(), 4)
	for _, b := range got {
		if b != 0 {
			t.Fatal("memset did not fill host side")
		}
	}
}

func TestMemsetManagedRejectsPageable(t *testing.T) {
	e := newEnv()
	r := e.host.Alloc(64, "plain")
	if err := e.ctx.MemsetManaged(r.Base(), 0, 64); err == nil {
		t.Fatal("MemsetManaged accepted pageable memory")
	}
}

func TestMemsetDevIsAsync(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	buf, _ := e.ctx.Malloc(4096, "dev")
	if err := e.ctx.MemsetDev(buf.Base(), 0xFF, 4096); err != nil {
		t.Fatal(err)
	}
	if len(rec.scopes) != 0 {
		t.Fatalf("device memset synchronized: %v", rec.scopes)
	}
	got, _ := e.dev.DevRead(buf.Base(), 1)
	if got[0] != 0xFF {
		t.Fatal("memset did not fill device memory")
	}
}

func TestExplicitSyncs(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	s := e.ctx.StreamCreate()
	_, _ = e.ctx.LaunchKernel(KernelSpec{Name: "k", Duration: simtime.Millisecond, Stream: s})
	e.ctx.StreamSynchronize(s)
	_, _ = e.ctx.LaunchKernel(KernelSpec{Name: "k2", Duration: simtime.Millisecond, Stream: gpu.LegacyStream})
	e.ctx.DeviceSynchronize()
	e.ctx.ThreadSynchronize()
	if len(rec.scopes) != 3 {
		t.Fatalf("got %d syncs, want 3", len(rec.scopes))
	}
	for i, s := range rec.scopes {
		if s != SyncExplicit {
			t.Fatalf("scope %d = %v", i, s)
		}
	}
	// Third sync found no pending work: zero wait.
	if rec.waits[2] != 0 {
		t.Fatalf("idle sync waited %v", rec.waits[2])
	}
}

func TestPrivateAPISynchronizesThroughFunnel(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	e.ctx.PrivateGemm("gemm", simtime.Millisecond, gpu.LegacyStream, true)
	dst := e.host.Alloc(4096, "result")
	buf, _ := e.ctx.Malloc(4096, "dev")
	if err := e.ctx.PrivateMemcpyD2H(dst.Base(), buf.Base(), 4096); err != nil {
		t.Fatal(err)
	}
	if len(rec.scopes) != 2 {
		t.Fatalf("got %d syncs, want 2", len(rec.scopes))
	}
	for _, s := range rec.scopes {
		if s != SyncPrivate {
			t.Fatalf("scope = %v, want private", s)
		}
	}
}

func TestHangOnNeverCompletingKernel(t *testing.T) {
	e := newEnv()
	_, _ = e.ctx.LaunchKernel(KernelSpec{Name: "spin", Duration: simtime.Duration(simtime.Infinity), Stream: gpu.LegacyStream})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("DeviceSynchronize on infinite kernel did not hang")
		}
		h, ok := v.(HangError)
		if !ok {
			t.Fatalf("panic value %T, want HangError", v)
		}
		if h.Func != FuncDeviceSync {
			t.Fatalf("hang func = %v", h.Func)
		}
		if h.Error() == "" {
			t.Fatal("empty error text")
		}
	}()
	e.ctx.DeviceSynchronize()
}

func TestProbeEntryExitOrderAndDetach(t *testing.T) {
	e := newEnv()
	var events []string
	id := e.ctx.AttachProbe(FuncMalloc, Probe{
		Entry: func(c *Call) { events = append(events, "entry") },
		Exit:  func(c *Call) { events = append(events, "exit") },
	})
	if _, err := e.ctx.Malloc(64, "x"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "entry" || events[1] != "exit" {
		t.Fatalf("events = %v", events)
	}
	e.ctx.DetachProbe(id)
	if _, err := e.ctx.Malloc(64, "y"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatal("probe fired after detach")
	}
	if e.ctx.ProbeCount() != 0 {
		t.Fatalf("ProbeCount = %d", e.ctx.ProbeCount())
	}
}

func TestProbeOverheadAdvancesClock(t *testing.T) {
	e := newEnv()
	e.ctx.AttachProbe(FuncMalloc, Probe{Overhead: 50 * simtime.Microsecond})
	before := e.clock.Now()
	_, _ = e.ctx.Malloc(64, "x")
	instrumented := e.clock.Now().Sub(before)

	e2 := newEnv()
	before2 := e2.clock.Now()
	_, _ = e2.ctx.Malloc(64, "x")
	plain := e2.clock.Now().Sub(before2)

	if instrumented != plain+100*simtime.Microsecond { // entry + exit
		t.Fatalf("instrumented %v, plain %v", instrumented, plain)
	}
}

func TestStackCaptureOnlyWhenEnabled(t *testing.T) {
	e := newEnv()
	var got callstack.Trace
	e.ctx.AttachProbe(FuncMalloc, Probe{Entry: func(c *Call) { got = c.Stack }})
	_, _ = e.ctx.Malloc(64, "x")
	if got != nil {
		t.Fatal("stack captured with capture disabled")
	}
	e.ctx.SetStackCapture(true)
	e.stack.Push("allocTemp", "solver.cpp", 42)
	_, _ = e.ctx.Malloc(64, "y")
	e.stack.Pop()
	if len(got) != 2 || got[0].Function != "allocTemp" {
		t.Fatalf("stack = %v", got)
	}
}

func TestPayloadCapture(t *testing.T) {
	e := newEnv()
	var payload []byte
	e.ctx.AttachProbe(FuncMemcpy, Probe{Exit: func(c *Call) { payload = c.Payload }})
	src := e.host.Alloc(16, "src")
	_ = e.host.Poke(src.Base(), []byte("abcdefgh"))
	buf, _ := e.ctx.Malloc(16, "dev")
	if err := e.ctx.MemcpyH2D(buf.Base(), src.Base(), 8); err != nil {
		t.Fatal(err)
	}
	if payload != nil {
		t.Fatal("payload captured with capture disabled")
	}
	e.ctx.SetPayloadCapture(true)
	if err := e.ctx.MemcpyH2D(buf.Base(), src.Base(), 8); err != nil {
		t.Fatal(err)
	}
	if string(payload) != "abcdefgh" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestTransferCallMetadata(t *testing.T) {
	e := newEnv()
	var call Call
	e.ctx.AttachProbe(FuncMemcpy, Probe{Exit: func(c *Call) { call = *c }})
	dst := e.host.Alloc(4096, "host dst")
	buf, _ := e.ctx.Malloc(4096, "dev")
	if err := e.ctx.MemcpyD2H(dst.Base(), buf.Base(), 4096); err != nil {
		t.Fatal(err)
	}
	if call.Kind != KindTransfer || call.Dir != DirD2H || call.Bytes != 4096 {
		t.Fatalf("call = %+v", call)
	}
	if call.HostAddr != dst.Base() || call.HostSize != 4096 || call.DevPtr != buf.Base() {
		t.Fatalf("addresses wrong: %+v", call)
	}
	if call.Duration() <= 0 || call.SyncWait() <= 0 {
		t.Fatalf("durations: total=%v sync=%v", call.Duration(), call.SyncWait())
	}
	if call.SyncWait() > call.Duration() {
		t.Fatal("sync wait exceeds call duration")
	}
}

func TestCallCountsAndTime(t *testing.T) {
	e := newEnv()
	_, _ = e.ctx.Malloc(64, "a")
	_, _ = e.ctx.Malloc(64, "b")
	e.ctx.DeviceSynchronize()
	counts := e.ctx.CallCounts()
	if counts[FuncMalloc] != 2 || counts[FuncDeviceSync] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if e.ctx.TotalCalls() != 3 {
		t.Fatalf("TotalCalls = %d", e.ctx.TotalCalls())
	}
	if e.ctx.CallTime()[FuncMalloc] <= 0 {
		t.Fatal("no time attributed to cudaMalloc")
	}
}

func TestManagedLifecycle(t *testing.T) {
	e := newEnv()
	r, err := e.ctx.MallocManaged(4096, "unified")
	if err != nil {
		t.Fatal(err)
	}
	if e.ctx.HostAttrOf(r.Base()) != HostManaged {
		t.Fatalf("attr = %v", e.ctx.HostAttrOf(r.Base()))
	}
	if e.ctx.ManagedBufFor(r) == nil {
		t.Fatal("no device mirror")
	}
	if err := e.ctx.FreeManaged(r); err != nil {
		t.Fatal(err)
	}
	if !r.Freed() {
		t.Fatal("host region not freed")
	}
	if err := e.ctx.FreeManaged(r); err == nil {
		t.Fatal("double FreeManaged succeeded")
	}
}

func TestMallocManagedOOMRollsBack(t *testing.T) {
	clock := simtime.NewClock()
	cfg := gpu.DefaultConfig()
	cfg.MemoryBytes = 1024
	dev := gpu.New(clock, cfg)
	host := memory.NewSpace()
	ctx := NewContext(clock, dev, host, callstack.New(), DefaultConfig())
	if _, err := ctx.MallocManaged(1<<20, "big"); !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestHostAttrDefaults(t *testing.T) {
	e := newEnv()
	r := e.host.Alloc(64, "plain")
	if e.ctx.HostAttrOf(r.Base()) != HostPageable {
		t.Fatal("plain region not pageable")
	}
	if e.ctx.HostAttrOf(memory.Addr(1)) != HostPageable {
		t.Fatal("unmapped addr not pageable")
	}
	p := e.ctx.MallocHost(64, "pin")
	if e.ctx.HostAttrOf(p.Base()) != HostPinned {
		t.Fatal("pinned region not pinned")
	}
	e.ctx.FreeHost(p)
	if !p.Freed() {
		t.Fatal("FreeHost did not free")
	}
}

func TestFuncClassification(t *testing.T) {
	if !FuncMemcpy.IsPublic() || FuncInternalSync.IsPublic() || FuncPrivateGemm.IsPublic() {
		t.Fatal("IsPublic wrong")
	}
	if !FuncInternalSync.IsInternal() || FuncMemcpy.IsInternal() {
		t.Fatal("IsInternal wrong")
	}
	if !FuncPrivateGemm.IsPrivate() || !FuncPrivateMemcpy.IsPrivate() || FuncMemcpy.IsPrivate() {
		t.Fatal("IsPrivate wrong")
	}
}

func TestScopeStringsAndVisibility(t *testing.T) {
	if SyncExplicit.String() != "explicit" || SyncImplicit.String() != "implicit" ||
		SyncConditional.String() != "conditional" || SyncPrivate.String() != "private" ||
		SyncNone.String() != "none" {
		t.Fatal("scope strings wrong")
	}
	if !SyncExplicit.CUPTIVisible() {
		t.Fatal("explicit syncs must be CUPTI visible")
	}
	for _, s := range []SyncScope{SyncNone, SyncImplicit, SyncConditional, SyncPrivate} {
		if s.CUPTIVisible() {
			t.Fatalf("%v must be CUPTI invisible", s)
		}
	}
}

func TestKindAndDirStrings(t *testing.T) {
	if KindSync.String() != "sync" || KindTransfer.String() != "transfer" ||
		KindAlloc.String() != "alloc" || KindFree.String() != "free" ||
		KindLaunch.String() != "launch" || KindOther.String() != "other" {
		t.Fatal("kind strings wrong")
	}
	if DirH2D.String() != "HtoD" || DirD2H.String() != "DtoH" || DirD2D.String() != "DtoD" || DirNone.String() != "none" {
		t.Fatal("dir strings wrong")
	}
}

func TestKernelWritesProduceContent(t *testing.T) {
	e := newEnv()
	buf, _ := e.ctx.Malloc(256, "out")
	_, err := e.ctx.LaunchKernel(KernelSpec{
		Name: "fill", Duration: simtime.Microsecond, Stream: gpu.LegacyStream,
		Writes: []KernelWrite{{Ptr: buf.Base(), Size: 256, Seed: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := e.dev.DevRead(buf.Base(), 256)
	want := make([]byte, 256)
	simtime.NewRNG(7).Bytes(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kernel output byte %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestInternalDecoysFireWhenProbed(t *testing.T) {
	e := newEnv()
	hits := map[Func]int{}
	for _, fn := range InternalFuncs {
		fn := fn
		e.ctx.AttachProbe(fn, Probe{Entry: func(*Call) { hits[fn]++ }})
	}
	buf, _ := e.ctx.Malloc(1024, "x")
	_, _ = e.ctx.LaunchKernel(KernelSpec{Name: "k", Duration: simtime.Microsecond, Stream: gpu.LegacyStream})
	e.ctx.DeviceSynchronize()
	_ = e.ctx.Free(buf)
	if hits[FuncInternalAlloc] == 0 {
		t.Fatal("alloc-track internal never fired")
	}
	if hits[FuncInternalEnqueue] == 0 {
		t.Fatal("enqueue internal never fired")
	}
	if hits[FuncInternalSync] != 2 { // DeviceSynchronize + Free
		t.Fatalf("sync internal fired %d times, want 2", hits[FuncInternalSync])
	}
}

func TestDetachAllProbes(t *testing.T) {
	e := newEnv()
	fired := 0
	e.ctx.AttachProbe(FuncMalloc, Probe{Entry: func(*Call) { fired++ }})
	e.ctx.AttachProbe(FuncFree, Probe{Entry: func(*Call) { fired++ }})
	e.ctx.DetachAllProbes()
	buf, _ := e.ctx.Malloc(64, "x")
	_ = e.ctx.Free(buf)
	if fired != 0 {
		t.Fatal("probes fired after DetachAllProbes")
	}
}

func TestD2DCopy(t *testing.T) {
	e := newEnv()
	a, _ := e.ctx.Malloc(64, "a")
	b, _ := e.ctx.Malloc(64, "b")
	_ = e.dev.DevWrite(a.Base(), []byte("payload"))
	if err := e.ctx.MemcpyD2D(b.Base(), a.Base(), 7); err != nil {
		t.Fatal(err)
	}
	got, _ := e.dev.DevRead(b.Base(), 7)
	if string(got) != "payload" {
		t.Fatalf("D2D copy = %q", got)
	}
}

func TestFuncGetAttributesIsPureCPU(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	before := e.clock.Now()
	e.ctx.FuncGetAttributes("kern")
	if e.clock.Now() == before {
		t.Fatal("FuncGetAttributes had no CPU cost")
	}
	if len(rec.scopes) != 0 {
		t.Fatal("FuncGetAttributes synchronized")
	}
}

func TestInternalSyncSeesCaller(t *testing.T) {
	e := newEnv()
	var callers []Func
	e.ctx.AttachProbe(FuncInternalSync, Probe{Exit: func(c *Call) { callers = append(callers, c.Caller) }})
	buf, _ := e.ctx.Malloc(64, "x")
	e.ctx.DeviceSynchronize()
	_ = e.ctx.Free(buf)
	if len(callers) != 2 || callers[0] != FuncDeviceSync || callers[1] != FuncFree {
		t.Fatalf("callers = %v", callers)
	}
}
