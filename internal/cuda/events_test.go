package cuda

import (
	"testing"

	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

func TestEventRecordSynchronize(t *testing.T) {
	e := newEnv()
	rec := &syncRecorder{}
	rec.attach(e.ctx)
	ev := e.ctx.EventCreate()
	if ev.Recorded() {
		t.Fatal("fresh event claims recorded")
	}
	op, _ := e.ctx.LaunchKernel(KernelSpec{Name: "k", Duration: 5 * simtime.Millisecond, Stream: gpu.LegacyStream})
	if err := e.ctx.EventRecord(ev, gpu.LegacyStream); err != nil {
		t.Fatal(err)
	}
	if err := e.ctx.EventSynchronize(ev); err != nil {
		t.Fatal(err)
	}
	if e.clock.Now() < op.End {
		t.Fatal("EventSynchronize returned before kernel completion")
	}
	if len(rec.scopes) != 1 || rec.scopes[0] != SyncExplicit {
		t.Fatalf("event sync scopes = %v", rec.scopes)
	}
}

func TestEventRecordSnapshotsQueuePosition(t *testing.T) {
	e := newEnv()
	op1, _ := e.ctx.LaunchKernel(KernelSpec{Name: "k1", Duration: simtime.Millisecond, Stream: gpu.LegacyStream})
	ev := e.ctx.EventCreate()
	if err := e.ctx.EventRecord(ev, gpu.LegacyStream); err != nil {
		t.Fatal(err)
	}
	// Work enqueued after the record does not delay the event.
	op2, _ := e.ctx.LaunchKernel(KernelSpec{Name: "k2", Duration: 50 * simtime.Millisecond, Stream: gpu.LegacyStream})
	if err := e.ctx.EventSynchronize(ev); err != nil {
		t.Fatal(err)
	}
	if e.clock.Now() < op1.End {
		t.Fatal("event completed before its preceding work")
	}
	if e.clock.Now() >= op2.End {
		t.Fatal("event waited for work enqueued after the record")
	}
}

func TestEventQuery(t *testing.T) {
	e := newEnv()
	_, _ = e.ctx.LaunchKernel(KernelSpec{Name: "k", Duration: 10 * simtime.Millisecond, Stream: gpu.LegacyStream})
	ev := e.ctx.EventCreate()
	if err := e.ctx.EventRecord(ev, gpu.LegacyStream); err != nil {
		t.Fatal(err)
	}
	done, err := e.ctx.EventQuery(ev)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("query reported completion while kernel runs")
	}
	e.clock.Advance(20 * simtime.Millisecond)
	done, err = e.ctx.EventQuery(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("query missed completion")
	}
}

func TestEventElapsedTime(t *testing.T) {
	e := newEnv()
	start := e.ctx.EventCreate()
	_ = e.ctx.EventRecord(start, gpu.LegacyStream)
	op, _ := e.ctx.LaunchKernel(KernelSpec{Name: "k", Duration: 7 * simtime.Millisecond, Stream: gpu.LegacyStream})
	end := e.ctx.EventCreate()
	_ = e.ctx.EventRecord(end, gpu.LegacyStream)

	if _, err := e.ctx.EventElapsedTime(start, end); err == nil {
		t.Fatal("elapsed before completion should error (cudaErrorNotReady)")
	}
	e.ctx.DeviceSynchronize()
	d, err := e.ctx.EventElapsedTime(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d < op.Duration() {
		t.Fatalf("elapsed = %v, want >= kernel duration %v", d, op.Duration())
	}
}

func TestEventErrors(t *testing.T) {
	e := newEnv()
	ev := e.ctx.EventCreate()
	if err := e.ctx.EventSynchronize(ev); err == nil {
		t.Fatal("sync on unrecorded event accepted")
	}
	if _, err := e.ctx.EventQuery(ev); err == nil {
		t.Fatal("query on unrecorded event accepted")
	}
	if _, err := e.ctx.EventElapsedTime(ev, ev); err == nil {
		t.Fatal("elapsed on unrecorded events accepted")
	}
	if err := e.ctx.EventRecord(ev, gpu.StreamID(99)); err == nil {
		t.Fatal("record on unknown stream accepted")
	}
}

func TestEventSyncVisibleToCUPTIAndDiogenes(t *testing.T) {
	e := newEnv()
	var syncs []SyncScope
	e.ctx.AttachProbe(FuncInternalSync, Probe{Exit: func(c *Call) { syncs = append(syncs, c.Scope) }})
	_, _ = e.ctx.LaunchKernel(KernelSpec{Name: "k", Duration: simtime.Millisecond, Stream: gpu.LegacyStream})
	ev := e.ctx.EventCreate()
	_ = e.ctx.EventRecord(ev, gpu.LegacyStream)
	_ = e.ctx.EventSynchronize(ev)
	if len(syncs) != 1 || syncs[0] != SyncExplicit {
		t.Fatalf("funnel observations = %v", syncs)
	}
	if e.ctx.CallCounts()[FuncEventSynchronize] != 1 {
		t.Fatal("event sync not counted")
	}
}
