package cuda

import (
	"fmt"

	"diogenes/internal/callstack"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/obs"
	"diogenes/internal/simtime"
)

// Config sets the CPU-side cost of driver calls. These costs are what
// resource-consumption profilers (NVProf, HPCToolkit) attribute to each API
// function; they are tuned so the per-function profile shapes of Table 2
// emerge from call counts.
type Config struct {
	CallOverhead     simtime.Duration // base CPU cost of entering the driver
	MallocCost       simtime.Duration
	FreeCost         simtime.Duration // CPU-side cost, excluding the implicit sync
	PinnedAllocCost  simtime.Duration
	ManagedAllocCost simtime.Duration
	LaunchCost       simtime.Duration
	MemcpySetupCost  simtime.Duration
	MemsetSetupCost  simtime.Duration
	AttrCost         simtime.Duration
}

// DefaultConfig returns driver costs representative of CUDA 9 on POWER8.
func DefaultConfig() Config {
	return Config{
		CallOverhead:     1 * simtime.Microsecond,
		MallocCost:       38 * simtime.Microsecond,
		FreeCost:         9 * simtime.Microsecond,
		PinnedAllocCost:  220 * simtime.Microsecond,
		ManagedAllocCost: 60 * simtime.Microsecond,
		LaunchCost:       7 * simtime.Microsecond,
		MemcpySetupCost:  4 * simtime.Microsecond,
		MemsetSetupCost:  3 * simtime.Microsecond,
		AttrCost:         2 * simtime.Microsecond,
	}
}

// HostAttr describes how a host region was allocated, which decides the
// conditional-synchronization behaviour of cudaMemcpyAsync.
type HostAttr uint8

// Host allocation attributes.
const (
	HostPageable HostAttr = iota // ordinary malloc'd memory
	HostPinned                   // cudaMallocHost
	HostManaged                  // cudaMallocManaged (unified)
)

// String names the attribute.
func (a HostAttr) String() string {
	switch a {
	case HostPinned:
		return "pinned"
	case HostManaged:
		return "managed"
	default:
		return "pageable"
	}
}

// Probe observes one driver function. Entry fires before the call body,
// Exit after it completes; either may be nil. Overhead is virtual CPU time
// added per fired callback, modelling the trampoline plus snippet cost of
// binary instrumentation — this is what makes FFM's heavyweight stages slow
// the application down (§5.3).
type Probe struct {
	Entry    func(*Call)
	Exit     func(*Call)
	Overhead simtime.Duration
}

// ProbeID identifies an attached probe.
type ProbeID int

type attachedProbe struct {
	id ProbeID
	fn Func
	p  Probe
}

// ActivityListener receives the events the vendor's CUPTI framework would
// publish. The cupti package implements it; registering nothing is the
// uninstrumented case.
type ActivityListener interface {
	// DriverCall reports entry/exit of a public driver API call. Calls made
	// through private entry points are never reported (§2.2).
	DriverCall(fn Func, entry, exit simtime.Time)
	// DeviceOp reports a device activity record (kernel, memcpy, memset).
	DeviceOp(op *gpu.Op)
	// SyncRecord reports a synchronization activity. Only explicit
	// synchronizations generate these (§2.2).
	SyncRecord(fn Func, start, end simtime.Time)
}

// CallDecision is a CallFilter's verdict for one driver call.
type CallDecision uint8

// Call decisions.
const (
	Proceed  CallDecision = iota // execute the call normally
	Suppress                     // elide the call entirely (binary patch analog)
)

// CallFilter decides, per call site, whether a driver call executes. It is
// the analog of the automatic-correction binary patching the paper's §6
// proposes: a suppressed call never enters the driver — no CPU cost, no
// device operation, no synchronization, no record. Filters are only
// consulted for calls that are semantically elidable (synchronizations,
// transfers, frees); allocation and launch calls always proceed.
type CallFilter func(fn Func, stack callstack.Trace) CallDecision

// HangError is the panic value raised when the CPU blocks on an operation
// that will never complete (waiting on the never-completing kernel of the
// §3.1 discovery test). The discovery harness recovers it; anything else
// propagating a HangError is a genuinely hung simulated program.
type HangError struct {
	Func  Func // the API call that blocked
	Since simtime.Time
}

// Error describes the hang.
func (h HangError) Error() string {
	return fmt.Sprintf("cuda: %s blocked forever at %v", h.Func, h.Since)
}

// Context is a CUDA context: one device, one host address space, one
// application thread.
type Context struct {
	clock *simtime.Clock
	devs  []*gpu.Device
	cur   int
	host  *memory.Space
	stack *callstack.Stack
	cfg   Config

	hostAttrs map[*memory.Region]HostAttr
	managed   map[*memory.Region]*gpu.DevBuf // unified host region -> device mirror

	probes          []attachedProbe
	nextProbe       ProbeID
	nextEvent       int
	filter          CallFilter
	suppressed      map[Func]int64
	byFunc          map[Func][]*attachedProbe
	listener        ActivityListener
	capturePayloads bool
	captureStacks   bool

	calls      map[Func]int64
	callTime   map[Func]simtime.Duration
	totalCalls int64

	// overheadLedger accumulates all virtual time charged by
	// instrumentation (probe trampolines, hashing, load/store snippets).
	// Collectors subtract it to report timings on the application's own
	// timeline, the way production tools compensate for known probe cost.
	overheadLedger simtime.Duration

	// Self-measurement instruments (nil when the process is unobserved).
	// They record virtual durations without ever advancing the clock, so
	// attaching them cannot perturb the simulation.
	mSyncs       *obs.Counter
	mSyncWait    *obs.Histogram
	mProbeCharge *obs.Counter
}

// NewContext creates a context over the given clock, device, host space and
// application stack.
func NewContext(clock *simtime.Clock, dev *gpu.Device, host *memory.Space, stack *callstack.Stack, cfg Config) *Context {
	return NewMultiContext(clock, []*gpu.Device{dev}, host, stack, cfg)
}

// NewMultiContext creates a context over several devices, matching the
// multi-GPU nodes of the paper's testbed (each Ray node carried four
// Pascal-class GPUs). Device 0 is current initially; SetDevice switches.
func NewMultiContext(clock *simtime.Clock, devs []*gpu.Device, host *memory.Space, stack *callstack.Stack, cfg Config) *Context {
	if len(devs) == 0 {
		panic("cuda: NewMultiContext with no devices")
	}
	return &Context{
		clock:     clock,
		devs:      devs,
		host:      host,
		stack:     stack,
		cfg:       cfg,
		hostAttrs: make(map[*memory.Region]HostAttr),
		managed:   make(map[*memory.Region]*gpu.DevBuf),
		byFunc:    make(map[Func][]*attachedProbe),
		calls:     make(map[Func]int64),
		callTime:  make(map[Func]simtime.Duration),
	}
}

// Clock returns the shared virtual clock.
func (c *Context) Clock() *simtime.Clock { return c.clock }

// Device returns the currently selected device.
func (c *Context) Device() *gpu.Device { return c.devs[c.cur] }

// DeviceCount returns the number of devices in the context.
func (c *Context) DeviceCount() int { return len(c.devs) }

// CurrentDevice returns the index of the selected device.
func (c *Context) CurrentDevice() int { return c.cur }

// Host returns the host address space.
func (c *Context) Host() *memory.Space { return c.host }

// Stack returns the application call stack.
func (c *Context) Stack() *callstack.Stack { return c.stack }

// Config returns the driver cost configuration.
func (c *Context) Config() Config { return c.cfg }

// SetListener installs the vendor activity listener (nil to remove).
func (c *Context) SetListener(l ActivityListener) { c.listener = l }

// SetMetrics attaches a self-measurement registry: every synchronization's
// wait duration lands in cuda/sync_wait_ns (with cuda/syncs counting
// events), and every instrumentation charge is mirrored to
// cuda/probe_overhead_ns. Instrument pointers are resolved once here so
// the driver's hot path pays atomics, not map lookups. A nil registry
// detaches.
func (c *Context) SetMetrics(m *obs.Registry) {
	c.mSyncs = m.Counter("cuda/syncs")
	c.mSyncWait = m.Histogram("cuda/sync_wait_ns")
	c.mProbeCharge = m.Counter("cuda/probe_overhead_ns")
}

// SetPayloadCapture enables copying transfer payloads into Call.Payload for
// hashing probes (stage 3). Expensive — off by default.
func (c *Context) SetPayloadCapture(on bool) { c.capturePayloads = on }

// SetStackCapture enables stack snapshots on every probed call.
func (c *Context) SetStackCapture(on bool) { c.captureStacks = on }

// SetCallFilter installs the patch filter (nil removes it).
func (c *Context) SetCallFilter(f CallFilter) {
	c.filter = f
	if c.suppressed == nil {
		c.suppressed = make(map[Func]int64)
	}
}

// SuppressedCalls returns per-function counts of filtered-out calls.
func (c *Context) SuppressedCalls() map[Func]int64 {
	out := make(map[Func]int64, len(c.suppressed))
	for k, v := range c.suppressed {
		out[k] = v
	}
	return out
}

// elided consults the call filter for an elidable call. When it returns
// true the API method must return immediately without side effects.
func (c *Context) elided(fn Func) bool {
	if c.filter == nil {
		return false
	}
	if c.filter(fn, c.stack.SharedSnapshot()) != Suppress {
		return false
	}
	c.suppressed[fn]++
	return true
}

// AttachProbe wraps driver function fn with p, returning an id for
// DetachProbe. Multiple probes on one function fire in attach order.
func (c *Context) AttachProbe(fn Func, p Probe) ProbeID {
	c.nextProbe++
	ap := attachedProbe{id: c.nextProbe, fn: fn, p: p}
	c.probes = append(c.probes, ap)
	c.rebuildProbeIndex()
	return ap.id
}

// DetachProbe removes a probe. Unknown ids are ignored.
func (c *Context) DetachProbe(id ProbeID) {
	for i := range c.probes {
		if c.probes[i].id == id {
			c.probes = append(c.probes[:i], c.probes[i+1:]...)
			c.rebuildProbeIndex()
			return
		}
	}
}

// DetachAllProbes removes every probe (end of an FFM stage).
func (c *Context) DetachAllProbes() {
	c.probes = nil
	c.rebuildProbeIndex()
}

// ProbeCount returns the number of attached probes.
func (c *Context) ProbeCount() int { return len(c.probes) }

// ProbeOverheadOf returns the summed per-event overhead of the probes
// attached to fn — the virtual time one entry (or exit) firing of fn's
// probes charges. Trace replay uses it to place synchronization waits on
// the application's own timeline regardless of which collection stage is
// currently instrumenting the process.
func (c *Context) ProbeOverheadOf(fn Func) simtime.Duration {
	var total simtime.Duration
	for _, ap := range c.byFunc[fn] {
		total += ap.p.Overhead
	}
	return total
}

func (c *Context) rebuildProbeIndex() {
	c.byFunc = make(map[Func][]*attachedProbe)
	for i := range c.probes {
		ap := &c.probes[i]
		c.byFunc[ap.fn] = append(c.byFunc[ap.fn], ap)
	}
}

// CallCounts returns per-function call counts.
func (c *Context) CallCounts() map[Func]int64 {
	out := make(map[Func]int64, len(c.calls))
	for k, v := range c.calls {
		out[k] = v
	}
	return out
}

// CallTime returns per-function cumulative CPU time.
func (c *Context) CallTime() map[Func]simtime.Duration {
	out := make(map[Func]simtime.Duration, len(c.callTime))
	for k, v := range c.callTime {
		out[k] = v
	}
	return out
}

// TotalCalls returns the number of driver calls issued (public + private).
func (c *Context) TotalCalls() int64 { return c.totalCalls }

// HostAttrOf returns the allocation attribute of the host region containing
// addr, defaulting to pageable.
func (c *Context) HostAttrOf(addr memory.Addr) HostAttr {
	r := c.host.RegionAt(addr)
	if r == nil {
		return HostPageable
	}
	return c.hostAttrs[r]
}

// ManagedBufFor returns the device mirror of a managed host region, or nil.
func (c *Context) ManagedBufFor(r *memory.Region) *gpu.DevBuf { return c.managed[r] }

// InstrumentationOverhead returns the total virtual time charged by
// instrumentation so far.
func (c *Context) InstrumentationOverhead() simtime.Duration { return c.overheadLedger }

// ChargeOverhead advances the clock by d and books it on the
// instrumentation ledger. External instrumentation (payload hashing,
// load/store snippets) uses it instead of advancing the clock directly.
func (c *Context) ChargeOverhead(d simtime.Duration) {
	if d <= 0 {
		return
	}
	c.clock.Advance(d)
	c.overheadLedger += d
	c.mProbeCharge.Add(int64(d))
}

// fireEntry runs entry probes for fn.
func (c *Context) fireEntry(fn Func, call *Call) {
	for _, ap := range c.byFunc[fn] {
		c.ChargeOverhead(ap.p.Overhead)
		if ap.p.Entry != nil {
			ap.p.Entry(call)
		}
	}
}

// fireExit runs exit probes for fn.
func (c *Context) fireExit(fn Func, call *Call) {
	for _, ap := range c.byFunc[fn] {
		c.ChargeOverhead(ap.p.Overhead)
		if ap.p.Exit != nil {
			ap.p.Exit(call)
		}
	}
}

func (c *Context) probed(fn Func) bool { return len(c.byFunc[fn]) > 0 }

// beginCall opens a driver call frame: counts it, stamps entry, snapshots
// the stack if requested, and fires entry probes.
func (c *Context) beginCall(fn Func, kind CallKind) *Call {
	call := &Call{Func: fn, Kind: kind, Entry: c.clock.Now()}
	c.calls[fn]++
	c.totalCalls++
	if c.captureStacks && c.probed(fn) {
		call.Stack = c.stack.SharedSnapshot()
	}
	c.fireEntry(fn, call)
	c.clock.Advance(c.cfg.CallOverhead)
	return call
}

// endCall closes the frame, fires exit probes, and reports to the vendor
// listener for public API calls.
func (c *Context) endCall(call *Call) {
	call.Exit = c.clock.Now()
	c.callTime[call.Func] += call.Duration()
	c.fireExit(call.Func, call)
	if c.listener != nil && call.Func.IsPublic() {
		c.listener.DriverCall(call.Func, call.Entry, call.Exit)
	}
}

// touchInternal exercises a non-blocking internal driver function so probes
// attached to it fire (and the discovery test sees it enter and exit).
func (c *Context) touchInternal(fn Func) {
	if !c.probed(fn) {
		return
	}
	call := &Call{Func: fn, Kind: KindOther, Entry: c.clock.Now()}
	c.fireEntry(fn, call)
	call.Exit = c.clock.Now()
	c.fireExit(fn, call)
}

// internalSync is the shared wait function of Figure 3. Every blocking
// driver path calls it; probes attached to FuncInternalSync observe every
// synchronization regardless of how it was requested. If the wait target is
// infinite (the never-completing kernel), entry probes fire and the call
// panics with HangError — the analog of a watchdog finding the thread
// parked inside the funnel.
func (c *Context) internalSync(until simtime.Time, scope SyncScope, outer *Call) {
	syncCall := &Call{Func: FuncInternalSync, Kind: KindSync, Entry: c.clock.Now(), Scope: scope, Caller: outer.Func}
	if c.captureStacks && c.probed(FuncInternalSync) {
		syncCall.Stack = c.stack.SharedSnapshot()
	}
	syncCall.SyncStart = c.clock.Now()
	c.fireEntry(FuncInternalSync, syncCall)
	if until == simtime.Infinity {
		panic(HangError{Func: outer.Func, Since: c.clock.Now()})
	}
	if until > c.clock.Now() {
		c.clock.AdvanceTo(until)
	}
	syncCall.SyncEnd = c.clock.Now()
	syncCall.Exit = syncCall.SyncEnd
	c.fireExit(FuncInternalSync, syncCall)
	c.mSyncs.Inc()
	c.mSyncWait.Observe(int64(syncCall.SyncEnd - syncCall.SyncStart))

	outer.Scope = scope
	outer.SyncStart = syncCall.SyncStart
	outer.SyncEnd = syncCall.SyncEnd
	if c.listener != nil && scope.CUPTIVisible() {
		c.listener.SyncRecord(outer.Func, syncCall.SyncStart, syncCall.SyncEnd)
	}
}

// reportOp publishes a device activity record.
func (c *Context) reportOp(op *gpu.Op) {
	if c.listener != nil {
		c.listener.DeviceOp(op)
	}
}
