package cuda

import (
	"fmt"

	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/simtime"
)

// StreamCreate creates a new asynchronous stream.
func (c *Context) StreamCreate() gpu.StreamID {
	call := c.beginCall(FuncStreamCreate, KindOther)
	id := c.devs[c.cur].CreateStream()
	c.endCall(call)
	return id
}

// Malloc allocates device memory. It does not synchronize, so Diogenes
// collects no data on it (§5.2) — but it still has CPU cost, which is why
// NVProf and HPCToolkit rank it highly in call-time profiles.
func (c *Context) Malloc(n int, label string) (*gpu.DevBuf, error) {
	call := c.beginCall(FuncMalloc, KindAlloc)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MallocCost)
	c.touchInternal(FuncInternalAlloc)
	return c.devs[c.cur].Malloc(n, label)
}

// Free releases device memory. cudaFree performs an *implicit* full-device
// synchronization before the release — the behaviour behind the cuIBM and
// cumf_als findings (§5.1) — which CUPTI does not report as a
// synchronization record.
func (c *Context) Free(buf *gpu.DevBuf) error {
	if c.elided(FuncFree) {
		return nil // patched out: the buffer is left for reuse (pooling semantics)
	}
	call := c.beginCall(FuncFree, KindFree)
	defer c.endCall(call)
	c.internalSync(c.devs[c.cur].BusyUntil(), SyncImplicit, call)
	c.clock.Advance(c.cfg.FreeCost)
	c.touchInternal(FuncInternalAlloc)
	return c.devs[c.cur].FreeBuf(buf)
}

// MallocHost allocates pinned host memory. Device-to-host async copies into
// pinned memory are truly asynchronous.
func (c *Context) MallocHost(n int, label string) *memory.Region {
	call := c.beginCall(FuncMallocHost, KindAlloc)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.PinnedAllocCost)
	r := c.host.Alloc(n, label)
	c.hostAttrs[r] = HostPinned
	return r
}

// FreeHost releases pinned host memory.
func (c *Context) FreeHost(r *memory.Region) {
	delete(c.hostAttrs, r)
	c.host.Free(r)
}

// MallocManaged allocates unified memory: a host region whose pages migrate
// to a device mirror on demand. The region is GPU-writable, so stage 3
// treats it like a device-to-host transfer target; the Call carries the host
// range for that purpose.
func (c *Context) MallocManaged(n int, label string) (*memory.Region, error) {
	call := c.beginCall(FuncMallocManaged, KindAlloc)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.ManagedAllocCost)
	r := c.host.Alloc(n, label)
	c.hostAttrs[r] = HostManaged
	mirror, err := c.devs[c.cur].Malloc(n, label+" (managed mirror)")
	if err != nil {
		c.host.Free(r)
		delete(c.hostAttrs, r)
		return nil, err
	}
	c.managed[r] = mirror
	call.HostAddr = r.Base()
	call.HostSize = n
	c.touchInternal(FuncInternalAlloc)
	return r, nil
}

// FreeManaged releases a managed allocation (host region and device mirror).
// Like Free, it synchronizes implicitly.
func (c *Context) FreeManaged(r *memory.Region) error {
	mirror, ok := c.managed[r]
	if !ok {
		return fmt.Errorf("cuda: FreeManaged of non-managed region %q", r.Label())
	}
	call := c.beginCall(FuncFree, KindFree)
	defer c.endCall(call)
	c.internalSync(c.devs[c.cur].BusyUntil(), SyncImplicit, call)
	c.clock.Advance(c.cfg.FreeCost)
	delete(c.managed, r)
	delete(c.hostAttrs, r)
	c.host.Free(r)
	return c.devs[c.cur].FreeBuf(mirror)
}

func (c *Context) fillTransfer(call *Call, dir TransferDir, n int, hostAddr memory.Addr, hostSize int, dev gpu.DevPtr, stream gpu.StreamID) {
	call.Dir = dir
	call.Bytes = n
	call.HostAddr = hostAddr
	call.HostSize = hostSize
	call.DevPtr = dev
	call.Stream = stream
}

// MemcpyH2D is a synchronous host-to-device copy. Synchronous transfers
// perform an implicit synchronization that CUPTI does not report (§2.2).
func (c *Context) MemcpyH2D(dst gpu.DevPtr, src memory.Addr, n int) error {
	if c.elided(FuncMemcpy) {
		return nil
	}
	call := c.beginCall(FuncMemcpy, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemcpySetupCost)
	data, err := c.host.PeekView(src, n)
	if err != nil {
		return err
	}
	if err := c.devs[c.cur].DevWrite(dst, data); err != nil {
		return err
	}
	c.fillTransfer(call, DirH2D, n, src, n, dst, gpu.LegacyStream)
	if c.capturePayloads {
		call.Payload = data
	}
	op := c.devs[c.cur].EnqueueCopy(gpu.LegacyStream, gpu.OpCopyH2D, "memcpy HtoD", n)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	c.internalSync(op.End, SyncImplicit, call)
	return nil
}

// MemcpyD2H is a synchronous device-to-host copy. The destination host
// range becomes GPU-writable for stage 3's purposes.
func (c *Context) MemcpyD2H(dst memory.Addr, src gpu.DevPtr, n int) error {
	if c.elided(FuncMemcpy) {
		return nil
	}
	call := c.beginCall(FuncMemcpy, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemcpySetupCost)
	data, err := c.devs[c.cur].DevReadView(src, n)
	if err != nil {
		return err
	}
	c.fillTransfer(call, DirD2H, n, dst, n, src, gpu.LegacyStream)
	if c.capturePayloads {
		call.Payload = data
	}
	op := c.devs[c.cur].EnqueueCopy(gpu.LegacyStream, gpu.OpCopyD2H, "memcpy DtoH", n)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	c.internalSync(op.End, SyncImplicit, call)
	return c.host.Poke(dst, data)
}

// MemcpyD2D is a synchronous device-to-device copy.
func (c *Context) MemcpyD2D(dst, src gpu.DevPtr, n int) error {
	if c.elided(FuncMemcpy) {
		return nil
	}
	call := c.beginCall(FuncMemcpy, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemcpySetupCost)
	data, err := c.devs[c.cur].DevReadView(src, n)
	if err != nil {
		return err
	}
	if err := c.devs[c.cur].DevWrite(dst, data); err != nil {
		return err
	}
	call.Dir = DirD2D
	call.Bytes = n
	call.DevPtr = dst
	op := c.devs[c.cur].EnqueueCopy(gpu.LegacyStream, gpu.OpCopyD2D, "memcpy DtoD", n)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	c.internalSync(op.End, SyncImplicit, call)
	return nil
}

// MemcpyAsyncH2D is an asynchronous host-to-device copy. The source is
// staged at call time, so the call returns after CPU setup cost only.
func (c *Context) MemcpyAsyncH2D(dst gpu.DevPtr, src memory.Addr, n int, stream gpu.StreamID) error {
	if c.elided(FuncMemcpyAsync) {
		return nil
	}
	call := c.beginCall(FuncMemcpyAsync, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemcpySetupCost)
	data, err := c.host.PeekView(src, n)
	if err != nil {
		return err
	}
	if err := c.devs[c.cur].DevWrite(dst, data); err != nil {
		return err
	}
	c.fillTransfer(call, DirH2D, n, src, n, dst, stream)
	if c.capturePayloads {
		call.Payload = data
	}
	op := c.devs[c.cur].EnqueueCopy(stream, gpu.OpCopyH2D, "memcpy HtoD async", n)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	return nil
}

// MemcpyAsyncD2H is an asynchronous device-to-host copy — *conditionally*.
// When the destination was not allocated with cudaMallocHost, the driver
// silently performs a full synchronous transfer (§2.2: "cudaMemcpyAsync
// performs an unreported synchronization when a device-to-host transfer is
// performed to a CPU memory address not allocated via cudaMallocHost").
func (c *Context) MemcpyAsyncD2H(dst memory.Addr, src gpu.DevPtr, n int, stream gpu.StreamID) error {
	if c.elided(FuncMemcpyAsync) {
		return nil
	}
	call := c.beginCall(FuncMemcpyAsync, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemcpySetupCost)
	data, err := c.devs[c.cur].DevReadView(src, n)
	if err != nil {
		return err
	}
	c.fillTransfer(call, DirD2H, n, dst, n, src, stream)
	if c.capturePayloads {
		call.Payload = data
	}
	op := c.devs[c.cur].EnqueueCopy(stream, gpu.OpCopyD2H, "memcpy DtoH async", n)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	if c.HostAttrOf(dst) != HostPinned {
		c.internalSync(op.End, SyncConditional, call)
	}
	return c.host.Poke(dst, data)
}

// MemsetDev fills device memory asynchronously on the legacy stream.
func (c *Context) MemsetDev(ptr gpu.DevPtr, v byte, n int) error {
	if c.elided(FuncMemset) {
		return nil
	}
	call := c.beginCall(FuncMemset, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemsetSetupCost)
	if err := c.devs[c.cur].DevFill(ptr, v, n); err != nil {
		return err
	}
	call.DevPtr = ptr
	call.Bytes = n
	op := c.devs[c.cur].EnqueueMemset(gpu.LegacyStream, "memset", n)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	return nil
}

// MemsetManaged fills unified memory addressed on the host side. cudaMemset
// on a unified address synchronizes with the device (§5.1, the AMG finding),
// another conditional synchronization invisible to CUPTI.
func (c *Context) MemsetManaged(addr memory.Addr, v byte, n int) error {
	if c.elided(FuncMemset) {
		return nil
	}
	call := c.beginCall(FuncMemset, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemsetSetupCost)
	r := c.host.RegionAt(addr)
	if r == nil || c.hostAttrs[r] != HostManaged {
		return fmt.Errorf("cuda: MemsetManaged on non-managed address %#x", addr)
	}
	fill := make([]byte, n)
	for i := range fill {
		fill[i] = v
	}
	if err := c.host.Poke(addr, fill); err != nil {
		return err
	}
	mirror := c.managed[r]
	if err := c.devs[c.cur].DevFill(mirror.Base()+gpu.DevPtr(addr-r.Base()), v, n); err != nil {
		return err
	}
	call.HostAddr = addr
	call.HostSize = n
	call.Bytes = n
	op := c.devs[c.cur].EnqueueMemset(gpu.LegacyStream, "memset managed", n)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	c.internalSync(op.End, SyncConditional, call)
	return nil
}

// KernelWrite declares a device range a kernel overwrites; the simulator
// fills it with seed-derived bytes so later transfers carry real content.
type KernelWrite struct {
	Ptr  gpu.DevPtr
	Size int
	Seed uint64
}

// KernelSpec describes a kernel launch.
type KernelSpec struct {
	Name     string
	Duration simtime.Duration
	Stream   gpu.StreamID
	Writes   []KernelWrite
}

// LaunchKernel enqueues a kernel asynchronously. Launches never synchronize,
// so Diogenes collects no data on them (§5.2).
func (c *Context) LaunchKernel(spec KernelSpec) (*gpu.Op, error) {
	call := c.beginCall(FuncLaunchKernel, KindLaunch)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.LaunchCost)
	call.Stream = spec.Stream
	for _, w := range spec.Writes {
		buf := make([]byte, w.Size)
		simtime.NewRNG(w.Seed).Bytes(buf)
		if err := c.devs[c.cur].DevWrite(w.Ptr, buf); err != nil {
			return nil, err
		}
	}
	op := c.devs[c.cur].EnqueueKernel(spec.Stream, spec.Name, spec.Duration)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	return op, nil
}

// DeviceSynchronize blocks until all device work completes. Explicit — the
// one scope CUPTI does report.
func (c *Context) DeviceSynchronize() {
	if c.elided(FuncDeviceSync) {
		return
	}
	call := c.beginCall(FuncDeviceSync, KindSync)
	defer c.endCall(call)
	c.internalSync(c.devs[c.cur].BusyUntil(), SyncExplicit, call)
}

// ThreadSynchronize is the deprecated spelling of DeviceSynchronize still
// used by Rodinia's gaussian benchmark (§5.1).
func (c *Context) ThreadSynchronize() {
	if c.elided(FuncThreadSync) {
		return
	}
	call := c.beginCall(FuncThreadSync, KindSync)
	defer c.endCall(call)
	c.internalSync(c.devs[c.cur].BusyUntil(), SyncExplicit, call)
}

// StreamSynchronize blocks until the stream's queued work completes.
func (c *Context) StreamSynchronize(s gpu.StreamID) {
	if c.elided(FuncStreamSync) {
		return
	}
	call := c.beginCall(FuncStreamSync, KindSync)
	defer c.endCall(call)
	c.internalSync(c.devs[c.cur].StreamBusyUntil(s), SyncExplicit, call)
}

// FuncGetAttributes models the metadata query cuIBM's libraries issue
// millions of times (it appears in Table 2's HPCToolkit column). Pure CPU
// cost; no synchronization, no transfer.
func (c *Context) FuncGetAttributes(kernel string) {
	call := c.beginCall(FuncFuncGetAttributes, KindOther)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.AttrCost)
	_ = kernel
}

// SetDevice selects the current device, like cudaSetDevice. Streams,
// allocations and synchronizations issued afterwards target it. Each
// device keeps its own stream namespace; the legacy stream exists on all.
func (c *Context) SetDevice(i int) error {
	call := c.beginCall(FuncSetDevice, KindOther)
	defer c.endCall(call)
	if i < 0 || i >= len(c.devs) {
		return fmt.Errorf("cuda: SetDevice(%d) with %d devices", i, len(c.devs))
	}
	c.cur = i
	return nil
}

// MemcpyPeer copies between two devices' memories (cudaMemcpyPeer): a
// device-to-device transfer that synchronizes the calling thread with both
// queues, implicitly.
func (c *Context) MemcpyPeer(dstDev int, dst gpu.DevPtr, srcDev int, src gpu.DevPtr, n int) error {
	if c.elided(FuncMemcpyPeer) {
		return nil
	}
	call := c.beginCall(FuncMemcpyPeer, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemcpySetupCost)
	if dstDev < 0 || dstDev >= len(c.devs) || srcDev < 0 || srcDev >= len(c.devs) {
		return fmt.Errorf("cuda: MemcpyPeer devices %d->%d with %d devices", srcDev, dstDev, len(c.devs))
	}
	data, err := c.devs[srcDev].DevReadView(src, n)
	if err != nil {
		return err
	}
	if err := c.devs[dstDev].DevWrite(dst, data); err != nil {
		return err
	}
	call.Dir = DirD2D
	call.Bytes = n
	call.DevPtr = dst
	// The transfer occupies both devices' legacy queues; completion is the
	// later of the two.
	srcOp := c.devs[srcDev].EnqueueCopy(gpu.LegacyStream, gpu.OpCopyD2D, "memcpy peer (src)", n)
	dstOp := c.devs[dstDev].EnqueueCopy(gpu.LegacyStream, gpu.OpCopyD2D, "memcpy peer (dst)", n)
	c.reportOp(srcOp)
	c.reportOp(dstOp)
	c.touchInternal(FuncInternalEnqueue)
	c.internalSync(simtime.Max(srcOp.End, dstOp.End), SyncImplicit, call)
	return nil
}
