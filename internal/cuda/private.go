package cuda

import (
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/simtime"
)

// This file models the proprietary, non-public part of the driver used by
// vendor-created libraries (§2.2): "If an operation is performed via the
// proprietary non-public part of Nvidia's driver, the call and the operation
// it performs are not reported [by CUPTI]." The simulated nvblas library
// launches kernels and synchronizes through these entry points. The
// activity listener is never told about the calls; the only way a tool can
// observe the synchronization is by instrumenting the internal wait
// function — which is exactly what FFM does.

// PrivateGemm models a vendor-library matrix multiply: a kernel launched
// through the private API, optionally followed by a private blocking wait.
// CUPTI receives the device activity record for the kernel (the hardware
// counters see it) but no driver-call or synchronization record.
func (c *Context) PrivateGemm(name string, dur simtime.Duration, stream gpu.StreamID, syncAfter bool) *gpu.Op {
	call := c.beginCall(FuncPrivateGemm, KindLaunch)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.LaunchCost)
	call.Stream = stream
	op := c.devs[c.cur].EnqueueKernel(stream, name, dur)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	if syncAfter {
		c.internalSync(op.End, SyncPrivate, call)
	}
	return op
}

// PrivateMemcpyD2H models a vendor-library result readback through the
// private API: synchronous, unreported by CUPTI.
func (c *Context) PrivateMemcpyD2H(dst memory.Addr, src gpu.DevPtr, n int) error {
	call := c.beginCall(FuncPrivateMemcpy, KindTransfer)
	defer c.endCall(call)
	c.clock.Advance(c.cfg.MemcpySetupCost)
	data, err := c.devs[c.cur].DevReadView(src, n)
	if err != nil {
		return err
	}
	c.fillTransfer(call, DirD2H, n, dst, n, src, gpu.LegacyStream)
	if c.capturePayloads {
		call.Payload = data
	}
	op := c.devs[c.cur].EnqueueCopy(gpu.LegacyStream, gpu.OpCopyD2H, "private memcpy DtoH", n)
	c.reportOp(op)
	c.touchInternal(FuncInternalEnqueue)
	c.internalSync(op.End, SyncPrivate, call)
	return c.host.Poke(dst, data)
}
