package autofix

import (
	"strings"
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/cuda"
	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// test helpers wiring the FFM pipeline to a given machine factory.
func experimentsConfig(f proc.Factory) ffm.Config {
	cfg := ffm.DefaultConfig()
	cfg.Factory = f
	return cfg
}

func runFFM(app proc.App, cfg ffm.Config) (*ffm.Report, error) { return ffm.Run(app, cfg) }

func experimentsSpec(name string) (apps.Spec, error) { return apps.ByName(name) }

// churnApp re-uploads an unchanged block and frees a scratch buffer while a
// kernel runs, every iteration. mutate makes the app overwrite the uploaded
// block mid-run, which must trip the correctness guard.
type churnApp struct {
	iters  int
	mutate bool
}

func (a *churnApp) Name() string { return "churn" }

func (a *churnApp) Run(p *proc.Process) error {
	block := p.Host.Alloc(32<<10, "config")
	out := p.Host.Alloc(4096, "out")
	dev, err := p.Ctx.Malloc(32<<10, "dev config")
	if err != nil {
		return err
	}
	devOut, err := p.Ctx.Malloc(4096, "dev out")
	if err != nil {
		return err
	}
	fill := make([]byte, 32<<10)
	simtime.NewRNG(3).Bytes(fill)
	if err := p.Host.Poke(block.Base(), fill); err != nil {
		return err
	}

	var runErr error
	for i := 0; i < a.iters && runErr == nil; i++ {
		i := i
		p.In("step", "churn.cpp", 30, func() {
			if a.mutate && i == a.iters/2 {
				// The app updates its "constant" block mid-run: the
				// deduplication assumption is wrong for this input.
				p.At(31)
				if runErr = p.Write(block.Base(), []byte{byte(i)}, 31); runErr != nil {
					return
				}
			}
			p.At(33)
			if runErr = p.Ctx.MemcpyH2D(dev.Base(), block.Base(), 32<<10); runErr != nil {
				return
			}
			scratch, err := p.Ctx.Malloc(8<<10, "scratch")
			if err != nil {
				runErr = err
				return
			}
			p.At(36)
			if _, err := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "k", Duration: simtime.Millisecond, Stream: gpu.LegacyStream,
				Writes: []cuda.KernelWrite{{Ptr: devOut.Base(), Size: 256, Seed: uint64(i)}},
			}); err != nil {
				runErr = err
				return
			}
			p.CPUWork(200 * simtime.Microsecond)
			p.At(40)
			if runErr = p.Ctx.Free(scratch); runErr != nil {
				return
			}
			p.CPUWork(300 * simtime.Microsecond)
			p.At(44)
			if runErr = p.Ctx.MemcpyD2H(out.Base(), devOut.Base(), 256); runErr != nil {
				return
			}
			if _, err := p.Read(out.Base(), 16, 45); err != nil {
				runErr = err
				return
			}
		})
	}
	return runErr
}

func planFor(t *testing.T, app proc.App) (*Plan, proc.Factory) {
	t.Helper()
	factory := proc.DefaultFactory()
	cfg := experimentsConfig(factory)
	rep, err := runFFM(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return BuildPlan(rep.Analysis, DefaultOptions()), factory
}

func TestBuildPlanFindsRemedies(t *testing.T) {
	plan, _ := planFor(t, &churnApp{iters: 8})
	if len(plan.Actions) == 0 {
		t.Fatal("empty plan")
	}
	kinds := map[ActionKind]int{}
	for _, a := range plan.Actions {
		kinds[a.Kind]++
		if a.Estimated < 0 || a.Count == 0 || a.Label == "" {
			t.Fatalf("malformed action %+v", a)
		}
	}
	if kinds[DedupTransfer] == 0 {
		t.Error("no dedup-transfer action for the repeated upload")
	}
	if kinds[PoolFree] == 0 {
		t.Error("no pool-free action for the scratch churn")
	}
	// Sorted by estimate.
	for i := 1; i < len(plan.Actions); i++ {
		if plan.Actions[i].Estimated > plan.Actions[i-1].Estimated {
			t.Fatal("plan not sorted by estimate")
		}
	}
}

func TestApplyRealizesBenefit(t *testing.T) {
	app := &churnApp{iters: 8}
	plan, factory := planFor(t, app)
	v, err := Apply(app, factory, plan, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid {
		t.Fatalf("fix rejected: %s", v.GuardViolation)
	}
	if v.Realized <= 0 {
		t.Fatalf("no realized benefit: %+v", v)
	}
	if v.PatchedTime >= v.OriginalTime {
		t.Fatal("patched run not faster")
	}
	if v.SuppressedCalls == 0 {
		t.Fatal("nothing was suppressed")
	}
	if v.GuardedRanges == 0 {
		t.Fatal("no transfer source was guarded")
	}
	// Realized should be in the ballpark of the estimate (same order).
	ratio := float64(v.Realized) / float64(plan.Estimated)
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("realized/estimated ratio %.2f implausible", ratio)
	}
}

func TestGuardRejectsUnsafeDedup(t *testing.T) {
	// Plan against the non-mutating run (what the tool observed)...
	observed := &churnApp{iters: 8}
	plan, factory := planFor(t, observed)
	// ...but the production input mutates the block: the guard must trip
	// and the fix must be rejected, not silently produce wrong results.
	production := &churnApp{iters: 8, mutate: true}
	v, err := Apply(production, factory, plan, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v.Valid {
		t.Fatal("unsafe deduplication accepted")
	}
	if !strings.Contains(v.GuardViolation, "write-protected") {
		t.Fatalf("violation text = %q", v.GuardViolation)
	}
}

func TestApplyWithoutGuard(t *testing.T) {
	app := &churnApp{iters: 6}
	plan, factory := planFor(t, app)
	opts := DefaultOptions()
	opts.Guard = false
	v, err := Apply(app, factory, plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v.GuardedRanges != 0 {
		t.Fatal("guard ran while disabled")
	}
	if !v.Valid || v.Realized <= 0 {
		t.Fatalf("unguarded apply failed: %+v", v)
	}
}

func TestMinBenefitThresholdSkips(t *testing.T) {
	app := &churnApp{iters: 8}
	factory := proc.DefaultFactory()
	rep, err := runFFM(app, experimentsConfig(factory))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MinBenefit = simtime.Duration(simtime.Infinity) / 2
	plan := BuildPlan(rep.Analysis, opts)
	if len(plan.Actions) != 0 {
		t.Fatalf("threshold did not skip: %d actions", len(plan.Actions))
	}
	if len(plan.Skipped) == 0 {
		t.Fatal("skips not reported")
	}
}

func TestAutofixOnModelledApps(t *testing.T) {
	// End-to-end: plan and apply on the paper's workloads; all plans must
	// validate and realize positive benefit.
	for _, name := range []string{"cumf_als", "rodinia_gaussian"} {
		rep, err := experiments.RunApp(name, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		plan := BuildPlan(rep.Analysis, DefaultOptions())
		if len(plan.Actions) == 0 {
			t.Fatalf("%s: empty plan", name)
		}
		spec, _ := experimentsSpec(name)
		v, err := Apply(spec.New(0.02, apps.Original), spec.Factory(), plan, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.Valid {
			t.Fatalf("%s: rejected: %s", name, v.GuardViolation)
		}
		if v.Realized <= 0 {
			t.Fatalf("%s: no realized benefit", name)
		}
	}
}

func TestActionKindStrings(t *testing.T) {
	if RemoveSync.String() == "" || PoolFree.String() == "" || DedupTransfer.String() == "" {
		t.Fatal("empty kind strings")
	}
}

func TestPropertyAutofixOnRandomApps(t *testing.T) {
	// For any generated workload: the plan applies cleanly (no guard trip
	// — random apps never mutate uploaded content after the fact), the
	// patched run is never slower, and realized benefit is nonnegative.
	for seed := uint64(100); seed <= 110; seed++ {
		app := apps.NewRandomApp(seed, 50)
		factory := proc.DefaultFactory()
		rep, err := runFFM(app, experimentsConfig(factory))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		plan := BuildPlan(rep.Analysis, DefaultOptions())
		if len(plan.Actions) == 0 {
			continue // a benign workload is possible; nothing to fix
		}
		v, err := Apply(app, factory, plan, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.Valid {
			t.Fatalf("seed %d: guard tripped on non-mutating app: %s", seed, v.GuardViolation)
		}
		if v.PatchedTime > v.OriginalTime {
			t.Fatalf("seed %d: patched run slower: %v > %v", seed, v.PatchedTime, v.OriginalTime)
		}
		if v.Realized < 0 {
			t.Fatalf("seed %d: negative realized benefit", seed)
		}
	}
}

// TestAutofixVersusManualFix compares the automatic correction against the
// paper's manual fixes on all four applications: every plan must validate,
// and the automatic correction must realize at least as much as a third of
// the manual fix (it cannot hoist allocations or restructure code, only
// elide calls).
func TestAutofixVersusManualFix(t *testing.T) {
	rows, err := Table(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Valid {
			t.Errorf("%s: auto fix rejected: %s", r.App, r.GuardViolation)
			continue
		}
		if r.AutoRealized <= 0 {
			t.Errorf("%s: no automatic benefit", r.App)
		}
		if r.CallsElided == 0 {
			t.Errorf("%s: nothing elided", r.App)
		}
		if float64(r.AutoRealized) < 0.33*float64(r.ManualActual) {
			t.Errorf("%s: auto %.3fs far below manual %.3fs",
				r.App, r.AutoRealized.Seconds(), r.ManualActual.Seconds())
		}
	}
}
