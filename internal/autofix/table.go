package autofix

import (
	"diogenes/internal/apps"
	"diogenes/internal/experiments"
	"diogenes/internal/proc"
)

// EvaluateApp plans and applies the automatic correction for one modelled
// application, producing the comparison row AutofixTable consumes.
func EvaluateApp(name string, scale float64) (*experiments.AutofixRow, error) {
	return EvaluateAppWith(nil, name, scale)
}

// EvaluateAppWith is EvaluateApp sourcing the pipeline report from an
// engine (cached and stage-parallel when the engine is); a nil engine runs
// the serial uncached pipeline.
func EvaluateAppWith(e *experiments.Engine, name string, scale float64) (*experiments.AutofixRow, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	runApp := experiments.RunApp
	if e != nil {
		runApp = e.RunApp
	}
	rep, err := runApp(name, scale)
	if err != nil {
		return nil, err
	}
	plan := BuildPlan(rep.Analysis, DefaultOptions())
	v, err := ApplyWith(func(f proc.Factory) proc.App {
		return spec.Build(scale, apps.Original, f)
	}, spec.Factory(), plan, DefaultOptions())
	if err != nil {
		return nil, err
	}
	row := &experiments.AutofixRow{
		App:            name,
		AutoRealized:   v.Realized,
		AutoEstimated:  plan.Estimated,
		CallsElided:    v.SuppressedCalls,
		GuardViolation: v.GuardViolation,
		Valid:          v.Valid,
	}
	if v.OriginalTime > 0 {
		row.AutoRealizedPct = v.RealizedPct
	}
	return row, nil
}

// Table runs EvaluateApp over the four modelled applications.
func Table(scale float64) ([]experiments.AutofixRow, error) {
	return experiments.AutofixTable(scale, EvaluateApp)
}

// TableWith is Table on an engine: one worker per application, pipeline
// reports shared with any table1/table2 runs through the same cache.
func TableWith(e *experiments.Engine, scale float64) ([]experiments.AutofixRow, error) {
	return e.AutofixTable(scale, func(name string, scale float64) (*experiments.AutofixRow, error) {
		return EvaluateAppWith(e, name, scale)
	})
}
