package autofix

import (
	"diogenes/internal/apps"
	"diogenes/internal/experiments"
	"diogenes/internal/proc"
)

// EvaluateApp plans and applies the automatic correction for one modelled
// application, producing the comparison row AutofixTable consumes.
func EvaluateApp(name string, scale float64) (*experiments.AutofixRow, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	rep, err := experiments.RunApp(name, scale)
	if err != nil {
		return nil, err
	}
	plan := BuildPlan(rep.Analysis, DefaultOptions())
	v, err := ApplyWith(func(f proc.Factory) proc.App {
		return spec.Build(scale, apps.Original, f)
	}, spec.Factory(), plan, DefaultOptions())
	if err != nil {
		return nil, err
	}
	row := &experiments.AutofixRow{
		App:            name,
		AutoRealized:   v.Realized,
		AutoEstimated:  plan.Estimated,
		CallsElided:    v.SuppressedCalls,
		GuardViolation: v.GuardViolation,
		Valid:          v.Valid,
	}
	if v.OriginalTime > 0 {
		row.AutoRealizedPct = v.RealizedPct
	}
	return row, nil
}

// Table runs EvaluateApp over the four modelled applications.
func Table(scale float64) ([]experiments.AutofixRow, error) {
	return experiments.AutofixTable(scale, EvaluateApp)
}
