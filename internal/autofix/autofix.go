// Package autofix implements the automatic correction the paper's
// conclusion proposes (§6): "The existence of a common underlying cause
// along with a common remedy ... signals that they may be automatically
// correctable." It turns an FFM analysis into a patch plan, applies the
// plan by eliding the problematic driver calls (the analog of binary
// patching the call sites), re-runs the application to measure the realized
// benefit, and guards correctness the way §5.1's manual fixes did — the
// const-qualifier/mprotect technique, here implemented by write-protecting
// the source pages of every removed transfer so any later mutation faults.
package autofix

import (
	"fmt"
	"sort"
	"strings"

	"diogenes/internal/callstack"
	"diogenes/internal/cuda"
	"diogenes/internal/ffm"
	"diogenes/internal/ffm/graph"
	"diogenes/internal/memory"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// ActionKind classifies a correction.
type ActionKind uint8

// Action kinds.
const (
	// RemoveSync elides a synchronization call whose protected data is
	// never read (safe to delete outright).
	RemoveSync ActionKind = iota
	// PoolFree elides a cudaFree, leaving the buffer for reuse — the
	// memory-manager remedy applied to cuIBM and cumf_als.
	PoolFree
	// DedupTransfer elides a duplicate transfer after its first
	// occurrence, write-protecting the source so the elision is provably
	// safe for this input.
	DedupTransfer
)

// String names the kind.
func (k ActionKind) String() string {
	switch k {
	case RemoveSync:
		return "remove synchronization"
	case PoolFree:
		return "pool allocation (elide cudaFree)"
	case DedupTransfer:
		return "deduplicate transfer"
	default:
		return fmt.Sprintf("ActionKind(%d)", uint8(k))
	}
}

// Action is one planned correction at one program point.
type Action struct {
	Kind      ActionKind
	Func      string
	PointKey  string // func + exact stack identity, as in the analysis
	Label     string // "cudaFree in als.cpp at line 856"
	Estimated simtime.Duration
	Count     int // dynamic occurrences at this point
	// Guard ranges: host source regions of deduplicated transfers,
	// write-protected during the patched run.
	GuardLo, GuardHi memory.Addr
}

// Plan is the set of corrections derived from one analysis.
type Plan struct {
	App       string
	Actions   []Action
	Estimated simtime.Duration // summed point estimates
	// Skipped lists problems the planner declined with reasons (misplaced
	// synchronizations need a *move*, which elision cannot express).
	Skipped []string
}

// Options tunes the planner.
type Options struct {
	// MinBenefit drops corrections whose estimate is below this.
	MinBenefit simtime.Duration
	// Guard enables the mprotect correctness guard on deduplicated
	// transfer sources (on by default via DefaultOptions).
	Guard bool
}

// DefaultOptions returns the standard planner configuration.
func DefaultOptions() Options {
	return Options{MinBenefit: 0, Guard: true}
}

func pointKey(n *graph.Node) string { return n.Func + "|" + n.Stack.Key() }

// BuildPlan derives a patch plan from an analysis. Problems are grouped by
// single point (one patch per call site); each point's remedy follows from
// its problem class.
func BuildPlan(a *ffm.Analysis, opts Options) *Plan {
	plan := &Plan{App: a.App}
	res := graph.ExpectedBenefit(a.Graph, a.Opts.Graph)

	type acc struct {
		action   Action
		problems map[graph.Problem]int
	}
	points := make(map[string]*acc)
	var order []string

	for _, nb := range res.PerNode {
		n := nb.Node
		key := pointKey(n)
		p, seen := points[key]
		if !seen {
			p = &acc{
				action:   Action{Func: n.Func, PointKey: key, Label: pointLabel(n)},
				problems: make(map[graph.Problem]int),
			}
			points[key] = p
			order = append(order, key)
		}
		p.problems[n.Problem]++
		p.action.Count++
		p.action.Estimated += nb.Benefit
	}

	for _, key := range order {
		p := points[key]
		// The remedy follows from the point's aggregate problem mix: a
		// single dynamic occurrence may be flagged differently (the first
		// upload of eventually-duplicated content is an unnecessary sync,
		// the rest are duplicates), but the patch is per call site.
		switch {
		case p.problems[graph.UnnecessaryTransfer] > 0:
			p.action.Kind = DedupTransfer
		case p.problems[graph.UnnecessarySync] == 0:
			plan.Skipped = append(plan.Skipped,
				fmt.Sprintf("%s: misplaced synchronization: needs a move, not an elision", p.action.Label))
			continue
		case p.action.Func == string(cuda.FuncFree):
			p.action.Kind = PoolFree
		default:
			p.action.Kind = RemoveSync
		}
		if p.action.Estimated < opts.MinBenefit {
			plan.Skipped = append(plan.Skipped,
				fmt.Sprintf("%s: estimate %v below threshold", p.action.Label, p.action.Estimated))
			continue
		}
		plan.Actions = append(plan.Actions, p.action)
		plan.Estimated += p.action.Estimated
	}
	sort.SliceStable(plan.Actions, func(i, j int) bool {
		return plan.Actions[i].Estimated > plan.Actions[j].Estimated
	})
	return plan
}

func pointLabel(n *graph.Node) string {
	leaf := n.Stack.Leaf()
	if leaf.File == "" {
		return n.Func
	}
	return fmt.Sprintf("%s in %s at line %d", n.Func, leaf.File, leaf.Line)
}

// Validation is the outcome of applying a plan and re-running.
type Validation struct {
	Plan *Plan

	OriginalTime simtime.Duration
	PatchedTime  simtime.Duration
	Realized     simtime.Duration
	RealizedPct  float64
	EstimatedPct float64

	SuppressedCalls int64
	GuardedRanges   int
	// GuardViolation is non-empty when the patched run mutated a
	// write-protected transfer source: the fix is unsafe for this input
	// and must be rejected.
	GuardViolation string
	Valid          bool
}

// Apply runs the application twice — unpatched, then with the plan's
// elisions and correctness guards installed — and reports the realized
// benefit. The application must be deterministic (the same property FFM's
// multi-run collection depends on). For multi-process applications use
// ApplyWith so every process of the launch is patched.
func Apply(app proc.App, factory proc.Factory, plan *Plan, opts Options) (*Validation, error) {
	return ApplyWith(func(proc.Factory) proc.App { return app }, factory, plan, opts)
}

// ApplyWith is Apply for applications that spawn further processes from a
// factory (the MPI launches): build receives the factory the application
// must use, and the patched run's factory carries a Prepare hook installing
// the plan into *every* process it creates — one rank left unpatched would
// drag the collective and erase the benefit.
func ApplyWith(build func(proc.Factory) proc.App, factory proc.Factory, plan *Plan, opts Options) (*Validation, error) {
	v := &Validation{Plan: plan}

	p0 := factory.New()
	if err := proc.SafeRun(build(factory), p0); err != nil {
		return nil, fmt.Errorf("autofix: unpatched run: %w", err)
	}
	v.OriginalTime = p0.ExecTime()

	var patchers []*patcher
	patchedFactory := factory
	patchedFactory.Prepare = func(p *proc.Process) {
		patchers = append(patchers, newPatcher(p, plan, opts))
	}
	p1 := patchedFactory.New()
	err := proc.SafeRun(build(patchedFactory), p1)
	if err != nil {
		if strings.Contains(err.Error(), "write-protected") {
			// The guard tripped: the elided transfer's source was later
			// mutated, so the deduplication would change results.
			v.GuardViolation = err.Error()
			v.Valid = false
			return v, nil
		}
		return nil, fmt.Errorf("autofix: patched run: %w", err)
	}
	v.PatchedTime = p1.ExecTime()
	v.Realized = v.OriginalTime - v.PatchedTime
	if v.OriginalTime > 0 {
		v.RealizedPct = 100 * float64(v.Realized) / float64(v.OriginalTime)
		v.EstimatedPct = 100 * float64(plan.Estimated) / float64(v.OriginalTime)
	}
	for _, n := range p1.Ctx.SuppressedCalls() {
		v.SuppressedCalls += n
	}
	for _, pt := range patchers {
		v.GuardedRanges += pt.guarded
	}
	v.Valid = true
	return v, nil
}

// patcher installs the plan as a call filter plus guard probes.
type patcher struct {
	p    *proc.Process
	opts Options
	// byPoint maps point keys to their action; dedup points track whether
	// the first occurrence has happened.
	byPoint map[string]*patchPoint
	guarded int
}

type patchPoint struct {
	action Action
	seen   int
}

func newPatcher(p *proc.Process, plan *Plan, opts Options) *patcher {
	pt := &patcher{p: p, opts: opts, byPoint: make(map[string]*patchPoint)}
	for _, a := range plan.Actions {
		a := a
		pt.byPoint[a.PointKey] = &patchPoint{action: a}
	}

	// Guard probe: when the first (kept) occurrence of a deduplicated
	// transfer executes, write-protect its host source region — the §5.1
	// const/mprotect technique.
	if opts.Guard {
		guard := func(call *cuda.Call) {
			if call.Kind != cuda.KindTransfer || call.Dir != cuda.DirH2D || call.HostSize == 0 {
				return
			}
			key := string(call.Func) + "|" + call.Stack.Key()
			pp, ok := pt.byPoint[key]
			if !ok || pp.action.Kind != DedupTransfer {
				return
			}
			if r := p.Host.RegionAt(memory.Addr(call.HostAddr)); r != nil && !r.Protected() {
				p.Host.Protect(r)
				pt.guarded++
			}
		}
		p.Ctx.SetStackCapture(true)
		p.Ctx.AttachProbe(cuda.FuncMemcpy, cuda.Probe{Exit: guard})
		p.Ctx.AttachProbe(cuda.FuncMemcpyAsync, cuda.Probe{Exit: guard})
	}

	p.Ctx.SetCallFilter(func(fn cuda.Func, stack callstack.Trace) cuda.CallDecision {
		key := string(fn) + "|" + stack.Key()
		pp, ok := pt.byPoint[key]
		if !ok {
			return cuda.Proceed
		}
		switch pp.action.Kind {
		case DedupTransfer:
			pp.seen++
			if pp.seen == 1 {
				return cuda.Proceed // first transfer carries the data
			}
			return cuda.Suppress
		case PoolFree, RemoveSync:
			pp.seen++
			return cuda.Suppress
		default:
			return cuda.Proceed
		}
	})
	return pt
}
