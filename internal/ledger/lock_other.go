//go:build !unix

package ledger

import "os"

// Non-unix platforms get no advisory lock: the ledger still works, but
// single-writer discipline is the deployment's responsibility there. The
// supported (CI) platform is linux, where lock_unix.go applies.
func lockFile(*os.File) error { return nil }

func unlockFile(*os.File) {}
