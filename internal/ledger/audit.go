package ledger

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// Line operations of the on-disk format. Every line is one JSON object;
// leaves record appends, seals commit batches.
const (
	opLeaf = "leaf"
	opSeal = "seal"
)

// lineRec is the wire form of one ledger line.
type lineRec struct {
	V  int    `json:"v"`
	Op string `json:"op"`
	// Seq: for a leaf, its sequence number; for a seal, the last
	// sequence it covers.
	Seq uint64 `json:"seq"`
	// Leaf fields.
	Key    string `json:"key,omitempty"`
	Digest string `json:"digest,omitempty"`
	// Seal fields.
	Batch uint64 `json:"batch,omitempty"`
	Count int    `json:"count,omitempty"`
	Root  string `json:"root,omitempty"`
	Chain string `json:"chain,omitempty"`
}

// replayState is the in-memory ledger state a valid file prefix replays
// to — the same shape Ledger carries live.
type replayState struct {
	seq       uint64
	sealedSeq uint64
	chain     [32]byte
	roots     [][32]byte
	chains    [][32]byte
	starts    []uint64
	leaves    []leafRec
	latest    map[string]uint64
	open      []leafRec
}

// replay walks the file contents line by line, re-verifying everything a
// reader can: sequence continuity, batch counts, recomputed Merkle roots,
// and the hash chain. It returns the state of the longest valid prefix,
// the byte length of that prefix, whether the file ends in a partial line
// (crash truncation), and a description of the first structural violation
// ("" when the prefix covers the whole file). A violation and a partial
// tail are distinct conditions: the first is evidence of tampering, the
// second of an interrupted append.
func replay(data []byte) (st *replayState, goodLen int, truncated bool, problem string) {
	st = &replayState{chain: genesis(), latest: make(map[string]uint64)}
	offset := 0
	lineNo := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			// No terminating newline: an interrupted append. Everything
			// before this line already replayed.
			return st, offset, true, ""
		}
		line := data[offset : offset+nl]
		lineNo++
		if msg := st.apply(line); msg != "" {
			return st, offset, false, fmt.Sprintf("line %d: %s", lineNo, msg)
		}
		offset += nl + 1
	}
	return st, offset, false, ""
}

// apply replays one complete line into the state, returning a problem
// description or "".
func (st *replayState) apply(line []byte) string {
	var rec lineRec
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Sprintf("unparseable entry: %v", err)
	}
	if rec.V != 1 {
		return fmt.Sprintf("unknown format version %d", rec.V)
	}
	switch rec.Op {
	case opLeaf:
		if rec.Seq != st.seq+1 {
			return fmt.Sprintf("leaf sequence %d breaks continuity (want %d)", rec.Seq, st.seq+1)
		}
		digest, err := parseHash(rec.Digest)
		if err != nil {
			return fmt.Sprintf("leaf %d digest: %v", rec.Seq, err)
		}
		if rec.Key == "" {
			return fmt.Sprintf("leaf %d has no key", rec.Seq)
		}
		leaf := leafRec{seq: rec.Seq, key: rec.Key, digest: digest}
		st.seq = rec.Seq
		st.leaves = append(st.leaves, leaf)
		st.latest[rec.Key] = rec.Seq
		st.open = append(st.open, leaf)
		return ""
	case opSeal:
		if len(st.open) == 0 {
			return "seal over an empty batch"
		}
		if rec.Batch != uint64(len(st.roots))+1 {
			return fmt.Sprintf("seal batch %d breaks continuity (want %d)", rec.Batch, len(st.roots)+1)
		}
		if rec.Seq != st.seq {
			return fmt.Sprintf("seal covers through %d but the last leaf is %d", rec.Seq, st.seq)
		}
		if rec.Count != len(st.open) {
			return fmt.Sprintf("seal count %d but %d entries are unsealed", rec.Count, len(st.open))
		}
		hs := make([][32]byte, len(st.open))
		for i, leaf := range st.open {
			hs[i] = leafHash(leaf.seq, leaf.key, leaf.digest)
		}
		root := merkleRoot(hs)
		if hex.EncodeToString(root[:]) != rec.Root {
			return fmt.Sprintf("batch %d root does not match its entries", rec.Batch)
		}
		chain := chainStep(st.chain, root)
		if hex.EncodeToString(chain[:]) != rec.Chain {
			return fmt.Sprintf("batch %d breaks the hash chain", rec.Batch)
		}
		st.starts = append(st.starts, st.open[0].seq)
		st.roots = append(st.roots, root)
		st.chains = append(st.chains, chain)
		st.chain = chain
		st.sealedSeq = st.seq
		st.open = nil
		return ""
	default:
		return fmt.Sprintf("unknown operation %q", rec.Op)
	}
}

// Outcome classifies a ledger audit. The three values map to the
// distinct verify-ledger exit codes: a clean chain, an interrupted append
// (recoverable; the daemon repairs it on reopen), and evidence of
// alteration (not recoverable; someone must look).
type Outcome int

const (
	Clean Outcome = iota
	Truncated
	Tampered
)

// String renders the outcome for reports and error messages.
func (o Outcome) String() string {
	switch o {
	case Clean:
		return "clean"
	case Truncated:
		return "truncated"
	case Tampered:
		return "tampered"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Audit is the result of verifying a ledger file.
type Audit struct {
	// Outcome classifies the file as a whole.
	Outcome Outcome
	// Detail describes the first problem found ("" when clean).
	Detail string
	// Entries, Batches and Unsealed describe the valid prefix.
	Entries  int
	Batches  int
	Unsealed int
	// Head is the valid prefix's head commitment.
	Head Head
	// Latest maps each store key to the hex digest its most recent entry
	// committed — what the key's resident report bytes must hash to.
	Latest map[string]string
}

// VerifyFile replays and fully re-verifies the ledger at path: sequence
// continuity, every batch root recomputed from its entries, and the hash
// chain linking the roots. It never modifies the file. The returned
// error is reserved for I/O failures; structural problems are reported
// through the Audit.
func VerifyFile(path string) (*Audit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: verify: %w", err)
	}
	st, _, truncated, problem := replay(data)
	a := &Audit{
		Entries:  len(st.leaves),
		Batches:  len(st.roots),
		Unsealed: len(st.open),
		Latest:   make(map[string]string, len(st.latest)),
	}
	for key, seq := range st.latest {
		d := st.leaves[seq-1].digest
		a.Latest[key] = hex.EncodeToString(d[:])
	}
	a.Head = Head{
		Seq:      st.seq,
		Batches:  uint64(len(st.roots)),
		Chain:    hex.EncodeToString(st.chain[:]),
		Unsealed: len(st.open),
	}
	if n := len(st.roots); n > 0 {
		a.Head.Root = hex.EncodeToString(st.roots[n-1][:])
	}
	switch {
	case problem != "":
		a.Outcome = Tampered
		a.Detail = problem
	case truncated:
		a.Outcome = Truncated
		a.Detail = "file ends mid-entry (interrupted append; reopening the ledger repairs it)"
	default:
		a.Outcome = Clean
	}
	return a, nil
}
