// Package ledger is the provenance layer behind the report store: an
// append-only, tamper-evident log of report digests with Merkle batching
// and stateless inclusion proofs.
//
// Diogenes' thesis is honesty in measurement — and a cached answer served
// months after it was produced is only as honest as the store it slept
// in. The content-addressed store says *what* a report claims; the ledger
// lets anyone check *that it was never altered after production*. Every
// persisted report appends one entry (its store key — the content address
// of the pipeline inputs that produced it — plus the sha256 of the
// persisted bytes). Entries seal into batches, each batch committing a
// Merkle root, and each root chains over the previous one, so the head
// commitment pins the entire history. A served report can then carry an
// inclusion proof that verifies against the head with no access to the
// ledger at all, and `diogenes verify-ledger` re-hashes every resident
// report against the chain.
//
// The on-disk format is line-oriented JSON, one entry per line, append
// only. A crash mid-append leaves a partial final line, which is
// detectable as *truncation* (and repaired on reopen) — distinct from a
// flipped byte anywhere in the interior, which breaks the hash chain and
// is reported as *tampering*. What the chain cannot detect is silent
// removal of whole sealed batches from the tail; guarding against that
// requires pinning a previously observed head externally, which is what
// publishing GET /ledger/root is for.
package ledger

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"diogenes/internal/obs"
)

// Defaults for the batching knobs.
const (
	// DefaultBatchSize seals a batch every 64 appends; 1 is the "direct"
	// mode that seals (and syncs) every append.
	DefaultBatchSize = 64
	// DefaultFlushInterval bounds how long an appended entry may wait
	// unsealed when traffic is slow.
	DefaultFlushInterval = 2 * time.Second
)

// Sentinel errors.
var (
	// ErrLocked reports that another live process (or another Ledger in
	// this one) holds the ledger file. The ledger is single-writer; a
	// second opener should degrade to running without one.
	ErrLocked = errors.New("ledger: file is locked by another instance")
	// ErrClosed reports an operation on a closed ledger.
	ErrClosed = errors.New("ledger: closed")
	// ErrCorrupt reports a structurally broken ledger file: the hash
	// chain, a batch root, or the entry sequence does not replay. Open
	// refuses a corrupt ledger — honesty demands the operator look.
	ErrCorrupt = errors.New("ledger: corrupt")
)

// Config configures Open.
type Config struct {
	// Path is the ledger file; created if absent.
	Path string
	// BatchSize is the number of appends per sealed batch. 1 seals every
	// append (direct mode); 0 selects DefaultBatchSize.
	BatchSize int
	// FlushInterval bounds how long an entry may wait in the open batch
	// before a timer seals it. 0 selects DefaultFlushInterval; negative
	// disables the timer (batches seal only by size or on Close).
	FlushInterval time.Duration
	// Metrics, when non-nil, receives the ledger's self-measurement:
	// ledger/appends, ledger/seals, ledger/proofs counters and the
	// ledger/seal_ns flush-latency histogram.
	Metrics *obs.Registry
}

// leafRec is one appended entry.
type leafRec struct {
	seq    uint64
	key    string
	digest [32]byte
}

// Ledger is an open, exclusively held ledger file. All methods are safe
// for concurrent use. The full entry set is kept in memory (36 bytes plus
// key per entry) so proofs need no file reads; at millions of entries
// that is tens of megabytes, the price of instant proof generation.
type Ledger struct {
	mu         sync.Mutex
	f          *os.File
	size       int64 // current file length, for append rollback
	batchSize  int
	flushEvery time.Duration

	seq       uint64      // last assigned sequence number
	sealedSeq uint64      // last sequence covered by a sealed batch
	chain     [32]byte    // head commitment over sealed roots
	roots     [][32]byte  // sealed batch roots, in order
	chains    [][32]byte  // chain value after each sealed batch
	starts    []uint64    // first sequence of each sealed batch
	leaves    []leafRec   // every entry, index seq-1
	latest    map[string]uint64
	open      []leafRec // entries awaiting seal

	timer  *time.Timer
	closed bool

	mAppends *obs.Counter
	mSeals   *obs.Counter
	mProofs  *obs.Counter
	hSealNs  *obs.Histogram
	gUnseal  *obs.Gauge
}

// Open opens (creating if needed) the ledger at cfg.Path, takes the
// single-writer lock, and replays the file. A partial final line — the
// signature of a crash mid-append — is discarded and the file truncated
// back to the last complete entry, so the daemon reopens cleanly after a
// crash. Any interior inconsistency returns ErrCorrupt: a ledger that
// does not replay must not silently keep growing.
func Open(cfg Config) (*Ledger, error) {
	if cfg.Path == "" {
		return nil, fmt.Errorf("ledger: path must be non-empty")
	}
	batch := cfg.BatchSize
	if batch == 0 {
		batch = DefaultBatchSize
	}
	if batch < 1 {
		return nil, fmt.Errorf("ledger: batch size %d, need at least 1", cfg.BatchSize)
	}
	flush := cfg.FlushInterval
	if flush == 0 {
		flush = DefaultFlushInterval
	}
	f, err := os.OpenFile(cfg.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, err
	}
	data, err := io.ReadAll(bufio.NewReader(f))
	if err != nil {
		unlockFile(f)
		f.Close()
		return nil, fmt.Errorf("ledger: read: %w", err)
	}
	st, goodLen, _, problem := replay(data)
	if problem != "" {
		unlockFile(f)
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, problem)
	}
	if goodLen < len(data) {
		// Crash leftover: drop the partial tail so new appends start at
		// an entry boundary.
		if err := f.Truncate(int64(goodLen)); err != nil {
			unlockFile(f)
			f.Close()
			return nil, fmt.Errorf("ledger: repair truncated tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(goodLen), io.SeekStart); err != nil {
		unlockFile(f)
		f.Close()
		return nil, fmt.Errorf("ledger: seek: %w", err)
	}
	l := &Ledger{
		f:          f,
		size:       int64(goodLen),
		batchSize:  batch,
		flushEvery: flush,
		seq:        st.seq,
		sealedSeq:  st.sealedSeq,
		chain:      st.chain,
		roots:      st.roots,
		chains:     st.chains,
		starts:     st.starts,
		leaves:     st.leaves,
		latest:     st.latest,
		open:       st.open,
	}
	if m := cfg.Metrics; m != nil {
		l.mAppends = m.Counter("ledger/appends")
		l.mSeals = m.Counter("ledger/seals")
		l.mProofs = m.Counter("ledger/proofs")
		l.hSealNs = m.Histogram("ledger/seal_ns")
		l.gUnseal = m.Gauge("ledger/unsealed")
	}
	l.gUnseal.Set(float64(len(l.open)))
	if len(l.open) > 0 {
		l.armTimerLocked()
	}
	return l, nil
}

// Append records one persisted report: key is its content-addressed store
// key, val the exact bytes written to the store. It returns the entry's
// sequence number. The entry is on disk (though possibly unsealed) when
// Append returns; the batch seals — committing a root, chaining it over
// the previous one, and syncing the file — once BatchSize entries
// accumulate, the flush timer fires, or Close is called.
func (l *Ledger) Append(key string, val []byte) (uint64, error) {
	digest := sha256.Sum256(val)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec := leafRec{seq: l.seq + 1, key: key, digest: digest}
	line, err := json.Marshal(lineRec{
		V: 1, Op: opLeaf, Seq: rec.seq, Key: key,
		Digest: hex.EncodeToString(digest[:]),
	})
	if err != nil {
		return 0, err
	}
	if err := l.writeLineLocked(line); err != nil {
		return 0, err
	}
	l.seq = rec.seq
	l.leaves = append(l.leaves, rec)
	l.latest[key] = rec.seq
	l.open = append(l.open, rec)
	l.mAppends.Inc()
	l.gUnseal.Set(float64(len(l.open)))
	if len(l.open) >= l.batchSize {
		if err := l.sealLocked(); err != nil {
			return 0, err
		}
	} else {
		l.armTimerLocked()
	}
	return rec.seq, nil
}

// writeLineLocked appends one entry line in a single write, rolling the
// file back to the previous entry boundary if the write fails partway.
func (l *Ledger) writeLineLocked(line []byte) error {
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	n, err := l.f.Write(buf)
	if err != nil {
		if n > 0 {
			_ = l.f.Truncate(l.size)
			_, _ = l.f.Seek(l.size, io.SeekStart)
		}
		return fmt.Errorf("ledger: append: %w", err)
	}
	l.size += int64(n)
	return nil
}

// Seal seals the open batch, if any: computes its Merkle root, chains it
// over the previous head, writes the seal entry, and syncs the file.
func (l *Ledger) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.sealLocked()
}

func (l *Ledger) sealLocked() error {
	if len(l.open) == 0 {
		return nil
	}
	started := time.Now()
	hs := make([][32]byte, len(l.open))
	for i, rec := range l.open {
		hs[i] = leafHash(rec.seq, rec.key, rec.digest)
	}
	root := merkleRoot(hs)
	chain := chainStep(l.chain, root)
	line, err := json.Marshal(lineRec{
		V: 1, Op: opSeal, Seq: l.seq, Batch: uint64(len(l.roots)) + 1,
		Count: len(l.open), Root: hex.EncodeToString(root[:]),
		Chain: hex.EncodeToString(chain[:]),
	})
	if err != nil {
		return err
	}
	if err := l.writeLineLocked(line); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ledger: sync: %w", err)
	}
	l.starts = append(l.starts, l.open[0].seq)
	l.roots = append(l.roots, root)
	l.chains = append(l.chains, chain)
	l.chain = chain
	l.sealedSeq = l.seq
	l.open = nil
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	l.mSeals.Inc()
	l.hSealNs.Observe(time.Since(started).Nanoseconds())
	l.gUnseal.Set(0)
	return nil
}

// armTimerLocked starts the flush timer for the open batch if one is
// configured and not already pending.
func (l *Ledger) armTimerLocked() {
	if l.flushEvery <= 0 || l.timer != nil {
		return
	}
	l.timer = time.AfterFunc(l.flushEvery, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.timer = nil
		if !l.closed {
			_ = l.sealLocked()
		}
	})
}

// Head is the ledger's publishable state: the chained commitment over
// every sealed batch plus how much is still unsealed. Chain is what
// stateless proof verification anchors to.
type Head struct {
	// Seq is the last appended entry's sequence number.
	Seq uint64 `json:"seq"`
	// Batches counts sealed batches.
	Batches uint64 `json:"batches"`
	// Root is the most recently sealed batch's Merkle root ("" before
	// the first seal).
	Root string `json:"root,omitempty"`
	// Chain is the head commitment: genesis hashed over every sealed
	// root in order.
	Chain string `json:"chain"`
	// Unsealed counts entries appended but not yet sealed — the open
	// batch depth an operator alerts on when appends stall.
	Unsealed int `json:"unsealed"`
}

// Head snapshots the current head.
func (l *Ledger) Head() Head {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.headLocked()
}

func (l *Ledger) headLocked() Head {
	h := Head{
		Seq:      l.seq,
		Batches:  uint64(len(l.roots)),
		Chain:    hex.EncodeToString(l.chain[:]),
		Unsealed: len(l.open),
	}
	if n := len(l.roots); n > 0 {
		h.Root = hex.EncodeToString(l.roots[n-1][:])
	}
	return h
}

// SeqFor returns the sequence number of the latest entry appended for
// key, if any.
func (l *Ledger) SeqFor(key string) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, ok := l.latest[key]
	return seq, ok
}

// Prove generates the inclusion proof for entry seq together with the
// head it verifies against, atomically — the proof's chain walk ends
// exactly at the returned head. Proving an entry still in the open batch
// seals the batch first (a proof needs a committed root), so proof
// generation trades one early seal for statelessness.
func (l *Ledger) Prove(seq uint64) (*Proof, Head, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, Head{}, ErrClosed
	}
	if seq == 0 || seq > l.seq {
		return nil, Head{}, fmt.Errorf("ledger: no entry %d (head is %d)", seq, l.seq)
	}
	if seq > l.sealedSeq {
		if err := l.sealLocked(); err != nil {
			return nil, Head{}, err
		}
	}
	// Locate the batch: the last start not exceeding seq.
	b := sort.Search(len(l.starts), func(i int) bool { return l.starts[i] > seq }) - 1
	start := l.starts[b]
	var end uint64 = l.seq
	if b+1 < len(l.starts) {
		end = l.starts[b+1] - 1
	} else {
		end = l.sealedSeq
	}
	count := int(end - start + 1)
	hs := make([][32]byte, count)
	for i := 0; i < count; i++ {
		rec := l.leaves[int(start)-1+i]
		hs[i] = leafHash(rec.seq, rec.key, rec.digest)
	}
	idx := int(seq - start)
	rec := l.leaves[seq-1]
	prev := genesis()
	if b > 0 {
		prev = l.chains[b-1]
	}
	p := &Proof{
		Seq:       seq,
		Key:       rec.key,
		Digest:    hex.EncodeToString(rec.digest[:]),
		Batch:     uint64(b) + 1,
		Index:     idx,
		Count:     count,
		Root:      hex.EncodeToString(l.roots[b][:]),
		PrevChain: hex.EncodeToString(prev[:]),
	}
	for _, s := range merklePath(hs, idx) {
		p.Siblings = append(p.Siblings, hex.EncodeToString(s[:]))
	}
	for _, r := range l.roots[b+1:] {
		p.LaterRoots = append(p.LaterRoots, hex.EncodeToString(r[:]))
	}
	l.mProofs.Inc()
	return p, l.headLocked(), nil
}

// Close seals the open batch, syncs, releases the single-writer lock and
// closes the file. Further operations return ErrClosed.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	err := l.sealLocked()
	unlockFile(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
