package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diogenes/internal/obs"
)

// testLedger opens a timer-free ledger in a temp dir.
func testLedger(t *testing.T, batch int) (*Ledger, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path, BatchSize: batch, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

// payload produces a distinct deterministic report body per index.
func payload(i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("report-%d|", i)), 64)
}

// keyOf produces a store-key-shaped (hex) name per index.
func keyOf(i int) string {
	d := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(d[:])
}

func TestAppendProveVerifyAcrossBatchShapes(t *testing.T) {
	// Batch sizes that exercise direct mode, odd promotion, and the
	// default; entry counts that leave partial open batches behind.
	for _, batch := range []int{1, 2, 3, 5, 64} {
		for _, n := range []int{1, 2, 7, 13} {
			t.Run(fmt.Sprintf("batch%d_n%d", batch, n), func(t *testing.T) {
				l, _ := testLedger(t, batch)
				for i := 0; i < n; i++ {
					seq, err := l.Append(keyOf(i), payload(i))
					if err != nil {
						t.Fatal(err)
					}
					if seq != uint64(i)+1 {
						t.Fatalf("append %d got seq %d", i, seq)
					}
				}
				// Every entry must prove against the head its proof was
				// generated with.
				for i := 0; i < n; i++ {
					p, head, err := l.Prove(uint64(i) + 1)
					if err != nil {
						t.Fatal(err)
					}
					if err := Verify(p, head.Chain); err != nil {
						t.Fatalf("entry %d: %v", i+1, err)
					}
					want := sha256.Sum256(payload(i))
					if p.Digest != hex.EncodeToString(want[:]) {
						t.Fatalf("entry %d digest mismatch", i+1)
					}
				}
			})
		}
	}
}

func TestProofFailsAgainstWrongHead(t *testing.T) {
	l, _ := testLedger(t, 4)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, head, err := l.Prove(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, head.Chain); err != nil {
		t.Fatal(err)
	}
	other := sha256.Sum256([]byte("not the head"))
	if err := Verify(p, hex.EncodeToString(other[:])); err == nil {
		t.Fatal("proof verified against a fabricated head")
	}
	// A proof generated before later batches seal must fail against the
	// newer head (its LaterRoots no longer reach it) — staleness is
	// detectable, not silent.
	for i := 6; i < 12; i++ {
		if _, err := l.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, l.Head().Chain); err == nil {
		t.Fatal("stale proof verified against an advanced head")
	}
}

func TestProveSealsOpenBatchOnDemand(t *testing.T) {
	l, _ := testLedger(t, 64)
	if _, err := l.Append(keyOf(0), payload(0)); err != nil {
		t.Fatal(err)
	}
	if h := l.Head(); h.Unsealed != 1 || h.Batches != 0 {
		t.Fatalf("head before prove: %+v", h)
	}
	p, head, err := l.Prove(1)
	if err != nil {
		t.Fatal(err)
	}
	if head.Unsealed != 0 || head.Batches != 1 {
		t.Fatalf("prove did not seal: %+v", head)
	}
	if err := Verify(p, head.Chain); err != nil {
		t.Fatal(err)
	}
}

func TestHeadDeterministicAcrossLedgers(t *testing.T) {
	a, _ := testLedger(t, 3)
	b, _ := testLedger(t, 3)
	for i := 0; i < 9; i++ {
		if _, err := a.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Head() != b.Head() {
		t.Fatalf("identical appends, different heads:\n%+v\n%+v", a.Head(), b.Head())
	}
}

func TestReopenReplaysAndContinuesChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path, BatchSize: 3, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ { // two sealed batches + one unsealed entry
		if _, err := l.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Head()
	if err := l.Close(); err != nil { // Close seals the open entry
		t.Fatal(err)
	}

	r, err := Open(Config{Path: path, BatchSize: 3, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	after := r.Head()
	if after.Seq != before.Seq || after.Batches != 3 {
		t.Fatalf("reopen head %+v (before close: %+v)", after, before)
	}
	// The replayed instance can prove pre-restart entries...
	p, head, err := r.Prove(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, head.Chain); err != nil {
		t.Fatal(err)
	}
	// ...and appends continue the same chain another fresh replay agrees
	// with.
	if _, err := r.Append(keyOf(7), payload(7)); err != nil {
		t.Fatal(err)
	}
	if seq, ok := r.SeqFor(keyOf(7)); !ok || seq != 8 {
		t.Fatalf("SeqFor after reopen = %d, %v", seq, ok)
	}
}

func TestOpenRepairsCrashTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path, BatchSize: 2, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-entry: drop the trailing newline and half the last line.
	cut := data[:len(data)-40]
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	if a, err := VerifyFile(path); err != nil || a.Outcome != Truncated {
		t.Fatalf("pre-repair audit: %v, %+v", err, a)
	}

	r, err := Open(Config{Path: path, BatchSize: 2, FlushInterval: -1})
	if err != nil {
		t.Fatalf("reopen after crash truncation: %v", err)
	}
	defer r.Close()
	// The partial entry is gone; the survivor state is a valid prefix and
	// new appends work.
	if _, err := r.Append(keyOf(9), payload(9)); err != nil {
		t.Fatal(err)
	}
	if err := r.Seal(); err != nil {
		t.Fatal(err)
	}
	if a, err := VerifyFile(path); err != nil || a.Outcome != Clean {
		t.Fatalf("post-repair audit: %v, %+v", err, a)
	}
}

func TestOpenRefusesTamperedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path, BatchSize: 2, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := l.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one hex digit inside the first line's digest.
	i := bytes.Index(data, []byte(`"digest":"`)) + len(`"digest":"`)
	if data[i] == 'f' {
		data[i] = '0'
	} else {
		data[i] = 'f'
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Path: path, BatchSize: 2, FlushInterval: -1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open on tampered file: %v, want ErrCorrupt", err)
	}
	if a, aerr := VerifyFile(path); aerr != nil || a.Outcome != Tampered {
		t.Fatalf("audit of tampered file: %v, %+v", aerr, a)
	}
}

func TestVerifyFileDetectsEveryInteriorByteFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path, BatchSize: 2, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every single byte in turn: the audit must never come back
	// clean. (A flip may read as tampering or — when it hits the final
	// newline — truncation; both are detections.)
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		a, err := VerifyFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if a.Outcome == Clean {
			t.Fatalf("flip at byte %d (%q) went undetected", i, orig[i])
		}
	}
}

func TestSingleWriterLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Path: path}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open: %v, want ErrLocked", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Config{Path: path})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	r.Close()
}

func TestClosedLedgerRefusesOperations(t *testing.T) {
	l, _ := testLedger(t, 2)
	if _, err := l.Append(keyOf(0), payload(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(keyOf(1), payload(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, _, err := l.Prove(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("prove after close: %v", err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	path := filepath.Join(t.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path, BatchSize: 2, FlushInterval: -1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append(keyOf(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := l.Prove(5); err != nil { // seals the open fifth entry
		t.Fatal(err)
	}
	if got := reg.Counter("ledger/appends").Value(); got != 5 {
		t.Fatalf("appends counter = %d", got)
	}
	if got := reg.Counter("ledger/seals").Value(); got != 3 {
		t.Fatalf("seals counter = %d", got)
	}
	if got := reg.Counter("ledger/proofs").Value(); got != 1 {
		t.Fatalf("proofs counter = %d", got)
	}
	if got := reg.Histogram("ledger/seal_ns").Count(); got != 3 {
		t.Fatalf("seal latency observations = %d", got)
	}
}

func TestAuditLatestDigests(t *testing.T) {
	l, path := testLedger(t, 2)
	if _, err := l.Append(keyOf(0), payload(0)); err != nil {
		t.Fatal(err)
	}
	// Re-put of the same key: the audit must track the latest digest.
	if _, err := l.Append(keyOf(0), payload(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	a, err := VerifyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(payload(1))
	if a.Latest[keyOf(0)] != hex.EncodeToString(want[:]) {
		t.Fatalf("latest digest for re-put key = %s", a.Latest[keyOf(0)])
	}
	if a.Entries != 2 || a.Batches != 1 {
		t.Fatalf("audit counts: %+v", a)
	}
	if !strings.Contains(a.Outcome.String(), "clean") {
		t.Fatalf("outcome %v", a.Outcome)
	}
}
