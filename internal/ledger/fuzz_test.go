package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzFixture builds one sealed ledger and a canonical proof per entry.
// The fixture is rebuilt per fuzz-process lifetime, not per input.
type fuzzFixture struct {
	headChain string
	proofs    map[uint64]*Proof
}

func buildFuzzFixture(tb testing.TB) *fuzzFixture {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path, BatchSize: 3, FlushInterval: -1})
	if err != nil {
		tb.Fatal(err)
	}
	defer l.Close()
	const n = 10 // four batches: 3+3+3+1 (the last sealed by Prove)
	for i := 0; i < n; i++ {
		d := sha256.Sum256([]byte(fmt.Sprintf("fuzz-key-%d", i)))
		if _, err := l.Append(hex.EncodeToString(d[:]), []byte(fmt.Sprintf("fuzz-report-%d", i))); err != nil {
			tb.Fatal(err)
		}
	}
	fx := &fuzzFixture{proofs: make(map[uint64]*Proof)}
	for seq := uint64(1); seq <= n; seq++ {
		p, head, err := l.Prove(seq)
		if err != nil {
			tb.Fatal(err)
		}
		fx.proofs[seq] = p
		fx.headChain = head.Chain // identical for every seq once all sealed
	}
	return fx
}

// FuzzProof is the forgery gate: any mutation of a proof's JSON — seq,
// key, digest, batch coordinates, siblings, roots, chain links — must
// fail verification. Only a mutation that round-trips to a proof
// structurally identical to a canonical one may verify.
func FuzzProof(f *testing.F) {
	fx := buildFuzzFixture(f)
	for _, p := range fx.proofs {
		b, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b, fx.headChain)
	}
	// Hand-written corners: empty, truncated, wrong-typed fields.
	f.Add([]byte(`{}`), fx.headChain)
	f.Add([]byte(`{"seq":1,"count":-1}`), fx.headChain)
	f.Add([]byte(`{"seq":1,"index":0,"count":1,"digest":"zz"}`), fx.headChain)

	f.Fuzz(func(t *testing.T, raw []byte, headChain string) {
		var p Proof
		if err := json.Unmarshal(raw, &p); err != nil {
			return // not a proof at all; Verify is unreachable via JSON
		}
		err := Verify(&p, headChain)
		if err == nil {
			// It verified: it must BE one of the canonical proofs against
			// the canonical head — byte mutations must never mint a new
			// valid (proof, head) pair.
			if headChain != fx.headChain {
				t.Fatalf("proof verified against a non-canonical head %q:\n%s", headChain, raw)
			}
			canon, ok := fx.proofs[p.Seq]
			if !ok || !reflect.DeepEqual(&p, canon) {
				t.Fatalf("mutated proof verified:\n%s", raw)
			}
		}
	})
}

// FuzzReplayLine feeds arbitrary bytes through the ledger file parser:
// it must classify, never panic, and never call a mutated sealed region
// clean.
func FuzzReplayLine(f *testing.F) {
	// Seed with a real ledger file.
	path := filepath.Join(f.TempDir(), "ledger.log")
	l, err := Open(Config{Path: path, BatchSize: 2, FlushInterval: -1})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d := sha256.Sum256([]byte{byte(i)})
		if _, err := l.Append(hex.EncodeToString(d[:]), []byte{byte(i)}); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	if data, err := os.ReadFile(path); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte(`{"v":1,"op":"leaf","seq":1}`))
	f.Add([]byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, goodLen, truncated, problem := replay(data)
		if st == nil {
			t.Fatal("replay returned nil state")
		}
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("goodLen %d out of range", goodLen)
		}
		if problem == "" && !truncated && goodLen != len(data) {
			t.Fatalf("clean verdict covers only %d of %d bytes", goodLen, len(data))
		}
	})
}
