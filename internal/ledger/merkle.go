package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Hash sizes and domain-separation tags. Leaf and interior hashes use
// distinct prefixes so an interior node can never be replayed as a leaf
// (the classic second-preimage trick against naive Merkle trees).
const (
	tagLeaf = 0x00
	tagNode = 0x01
)

// genesisSeed fixes the chain's starting commitment: the first sealed
// batch chains over sha256 of this string, so an empty ledger has a
// well-known head and two independent ledgers with identical appends
// commit to identical heads.
const genesisSeed = "diogenes-ledger-genesis-v1"

// genesis returns the chain value before any batch has been sealed.
func genesis() [32]byte { return sha256.Sum256([]byte(genesisSeed)) }

// leafHash commits one ledger entry: the sequence number, the
// content-addressed store key (the SuiteKey/FleetSuiteKey fingerprint of
// the pipeline inputs that produced the report), and the sha256 digest of
// the persisted report bytes.
func leafHash(seq uint64, key string, digest [32]byte) [32]byte {
	h := sha256.New()
	var buf [9]byte
	buf[0] = tagLeaf
	binary.BigEndian.PutUint64(buf[1:], seq)
	h.Write(buf[:])
	h.Write([]byte(key))
	h.Write(digest[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// nodeHash commits one interior node over its two children.
func nodeHash(left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{tagNode})
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// chainStep advances the batch chain: chain' = H(chain || root). The
// head commitment therefore pins every sealed root in order.
func chainStep(chain, root [32]byte) [32]byte {
	h := sha256.New()
	h.Write(chain[:])
	h.Write(root[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// merkleRoot folds the leaf hashes into the batch root. An odd node at
// any level promotes unchanged (no Bitcoin-style duplication, whose
// repeated-leaf malleability we do not want). hs must be non-empty.
func merkleRoot(hs [][32]byte) [32]byte {
	level := append([][32]byte(nil), hs...)
	for len(level) > 1 {
		next := level[:0:0]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, nodeHash(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// merklePath collects the sibling hashes proving membership of hs[idx],
// bottom to top. Levels where the node promotes without a sibling
// contribute nothing.
func merklePath(hs [][32]byte, idx int) [][32]byte {
	var sibs [][32]byte
	level := append([][32]byte(nil), hs...)
	for len(level) > 1 {
		if s := idx ^ 1; s < len(level) {
			sibs = append(sibs, level[s])
		}
		next := level[:0:0]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, nodeHash(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		idx /= 2
	}
	return sibs
}

// Proof is a self-contained inclusion proof: everything needed to verify
// that one report digest is committed by a ledger head, with no access to
// the ledger itself. The Merkle path ties the leaf to its batch root; the
// chain fields tie that root to the head commitment.
type Proof struct {
	// Seq is the entry's 1-based append sequence number.
	Seq uint64 `json:"seq"`
	// Key is the content-addressed store key the report persisted under.
	Key string `json:"key"`
	// Digest is the hex sha256 of the persisted report bytes.
	Digest string `json:"digest"`
	// Batch is the 1-based sealed batch the entry belongs to.
	Batch uint64 `json:"batch"`
	// Index and Count locate the leaf inside its batch.
	Index int `json:"index"`
	Count int `json:"count"`
	// Siblings is the Merkle path, bottom to top, hex encoded.
	Siblings []string `json:"siblings"`
	// Root is the batch's sealed Merkle root.
	Root string `json:"root"`
	// PrevChain is the chain commitment before this batch sealed.
	PrevChain string `json:"prevChain"`
	// LaterRoots are the roots of every batch sealed after this one, in
	// order, so the verifier can walk the chain up to the head.
	LaterRoots []string `json:"laterRoots"`
}

// Verify checks p statelessly against a head commitment (the "chain"
// value from the ledger head, e.g. GET /ledger/root). It recomputes the
// leaf hash from seq/key/digest, folds the Merkle path to the batch root,
// and replays the chain from PrevChain through LaterRoots; any mutation
// of any field fails. A nil error means the digest is committed by that
// head.
func Verify(p *Proof, headChain string) error {
	if p == nil {
		return fmt.Errorf("ledger: nil proof")
	}
	if p.Count < 1 || p.Index < 0 || p.Index >= p.Count {
		return fmt.Errorf("ledger: proof index %d out of batch of %d", p.Index, p.Count)
	}
	digest, err := parseHash(p.Digest)
	if err != nil {
		return fmt.Errorf("ledger: proof digest: %w", err)
	}
	root, err := parseHash(p.Root)
	if err != nil {
		return fmt.Errorf("ledger: proof root: %w", err)
	}
	prev, err := parseHash(p.PrevChain)
	if err != nil {
		return fmt.Errorf("ledger: proof prevChain: %w", err)
	}
	h := leafHash(p.Seq, p.Key, digest)
	idx, width, si := p.Index, p.Count, 0
	for width > 1 {
		if idx^1 < width {
			if si >= len(p.Siblings) {
				return fmt.Errorf("ledger: proof path too short for batch of %d", p.Count)
			}
			sib, err := parseHash(p.Siblings[si])
			if err != nil {
				return fmt.Errorf("ledger: proof sibling %d: %w", si, err)
			}
			si++
			if idx%2 == 0 {
				h = nodeHash(h, sib)
			} else {
				h = nodeHash(sib, h)
			}
		}
		idx /= 2
		width = (width + 1) / 2
	}
	if si != len(p.Siblings) {
		return fmt.Errorf("ledger: proof path has %d surplus siblings", len(p.Siblings)-si)
	}
	if !bytes.Equal(h[:], root[:]) {
		return fmt.Errorf("ledger: recomputed root does not match the proof's batch root")
	}
	chain := chainStep(prev, root)
	for i, r := range p.LaterRoots {
		lr, err := parseHash(r)
		if err != nil {
			return fmt.Errorf("ledger: proof laterRoots[%d]: %w", i, err)
		}
		chain = chainStep(chain, lr)
	}
	if hex.EncodeToString(chain[:]) != headChain {
		return fmt.Errorf("ledger: proof chain does not reach the head commitment")
	}
	return nil
}

// parseHash decodes one hex sha256 value.
func parseHash(s string) ([32]byte, error) {
	var out [32]byte
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, err
	}
	if len(b) != 32 {
		return out, fmt.Errorf("hash is %d bytes, want 32", len(b))
	}
	copy(out[:], b)
	return out, nil
}
