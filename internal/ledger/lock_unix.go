//go:build unix

package ledger

import (
	"errors"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on the ledger
// file. The lock belongs to the open file description, so it conflicts
// with any other opener — another process or another Ledger in this one —
// and the kernel releases it automatically when the process dies, which
// is what makes crash recovery lock-file-free.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) {
		return ErrLocked
	}
	if err != nil {
		return err
	}
	return nil
}

// unlockFile releases the advisory lock (also implicit in closing f).
func unlockFile(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
