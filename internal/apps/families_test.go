package apps_test

import (
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/proc"
)

// TestFamiliesDeterministic runs every generative family twice with the
// same seed on a bare process and asserts the call streams are identical —
// the contract the property harness and all FFM stages depend on.
func TestFamiliesDeterministic(t *testing.T) {
	for _, fam := range apps.Families() {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			run := func() (string, int64, int) {
				f := proc.DefaultFactory()
				p := f.New()
				app := fam.New(7, 12, f)
				if err := proc.SafeRun(app, p); err != nil {
					t.Fatalf("family run: %v", err)
				}
				return app.Name(), int64(p.ExecTime()), int(p.Ctx.TotalCalls())
			}
			name1, t1, n1 := run()
			name2, t2, n2 := run()
			if name1 != name2 || t1 != t2 || n1 != n2 {
				t.Fatalf("family not deterministic: (%s %d %d) vs (%s %d %d)",
					name1, t1, n1, name2, t2, n2)
			}
			if n1 == 0 {
				t.Fatalf("family produced no driver calls")
			}
		})
	}
}

// TestFamilyByName covers the registry lookup and its error path.
func TestFamilyByName(t *testing.T) {
	for _, fam := range apps.Families() {
		got, err := apps.FamilyByName(fam.Name)
		if err != nil || got.Name != fam.Name {
			t.Fatalf("FamilyByName(%q) = %v, %v", fam.Name, got.Name, err)
		}
	}
	if _, err := apps.FamilyByName("no-such-family"); err == nil {
		t.Fatal("expected error for unknown family")
	}
}
