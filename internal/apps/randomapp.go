package apps

import (
	"fmt"

	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// RandomApp is a seeded, deterministic workload generator: given the same
// seed it always issues the identical sequence of driver calls, CPU work
// and memory accesses, so it satisfies proc.App's determinism contract
// while exploring call patterns no hand-written model covers. The pipeline
// property tests run the full five stages over many seeds and check
// invariants (estimates bounded, determinism, patched runs no slower).
//
// The generated program is a loop of randomly chosen operations drawn from
// the same vocabulary as the modelled applications: uploads (sometimes of
// repeated content), kernel launches on random streams, scratch alloc/free
// churn, explicit synchronizations, readbacks with or without prompt use,
// and plain CPU work.
type RandomApp struct {
	Seed  uint64
	Steps int
	// MaxDevices > 1 lets the generator issue SetDevice calls.
	MaxDevices int
}

// NewRandomApp builds a generator with the given seed and length.
func NewRandomApp(seed uint64, steps int) *RandomApp {
	return &RandomApp{Seed: seed, Steps: steps, MaxDevices: 1}
}

// Name implements proc.App.
func (a *RandomApp) Name() string { return fmt.Sprintf("random-%d", a.Seed) }

// Run implements proc.App.
func (a *RandomApp) Run(p *proc.Process) error {
	rng := simtime.NewRNG(a.Seed)

	const bufBytes = 16 << 10
	nHost := 3
	hosts := make([]*memory.Region, nHost)
	payloads := make([][]byte, nHost)
	for i := range hosts {
		hosts[i] = p.Host.Alloc(bufBytes, fmt.Sprintf("host %d", i))
		payloads[i] = make([]byte, bufBytes)
		simtime.NewRNG(a.Seed*31 + uint64(i)).Bytes(payloads[i])
		if err := p.Host.Poke(hosts[i].Base(), payloads[i]); err != nil {
			return err
		}
	}
	result := p.Host.Alloc(bufBytes, "result")

	// Device-side state is per device: pointers are only valid on the
	// device that allocated them, so each device gets its own buffer set
	// and side stream.
	nDev := p.Ctx.DeviceCount()
	if a.MaxDevices < nDev {
		nDev = a.MaxDevices
	}
	if nDev < 1 {
		nDev = 1
	}
	devBufs := make([][]*gpu.DevBuf, nDev)
	sideStream := make([]gpu.StreamID, nDev)
	for d := 0; d < nDev; d++ {
		if err := p.Ctx.SetDevice(d); err != nil {
			return err
		}
		devBufs[d] = make([]*gpu.DevBuf, nHost+1)
		for i := range devBufs[d] {
			var err error
			if devBufs[d][i], err = p.Ctx.Malloc(bufBytes, fmt.Sprintf("dev%d buf %d", d, i)); err != nil {
				return err
			}
		}
		sideStream[d] = p.Ctx.StreamCreate()
	}
	if err := p.Ctx.SetDevice(0); err != nil {
		return err
	}
	pinned := p.Ctx.MallocHost(bufBytes, "pinned")

	var runErr error
	for s := 0; s < a.Steps && runErr == nil; s++ {
		s := s
		p.In("randomStep", "random.cpp", 100, func() {
			cur := p.Ctx.CurrentDevice()
			bufs := devBufs[cur]
			streams := []gpu.StreamID{gpu.LegacyStream, sideStream[cur]}
			switch op := rng.Intn(10); op {
			case 0, 1: // upload, possibly repeated content
				src := rng.Intn(nHost)
				p.At(110 + src)
				runErr = p.Ctx.MemcpyH2D(bufs[src].Base(), hosts[src].Base(), bufBytes)
			case 2: // kernel on a random stream
				p.At(120)
				_, runErr = p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name:     "rand_kernel",
					Duration: simtime.Duration(200+rng.Intn(1800)) * simtime.Microsecond,
					Stream:   streams[rng.Intn(len(streams))],
					Writes:   []cuda.KernelWrite{{Ptr: bufs[nHost].Base(), Size: 256, Seed: uint64(s)}},
				})
			case 3: // scratch churn
				var buf *gpu.DevBuf
				if buf, runErr = p.Ctx.Malloc(4<<10, "scratch"); runErr != nil {
					return
				}
				p.CPUWork(simtime.Duration(rng.Intn(400)) * simtime.Microsecond)
				p.At(131)
				runErr = p.Ctx.Free(buf)
			case 4: // explicit sync
				p.At(140)
				p.Ctx.DeviceSynchronize()
			case 5: // readback with prompt use: a necessary sync
				p.At(150)
				if runErr = p.Ctx.MemcpyD2H(result.Base(), bufs[nHost].Base(), 256); runErr != nil {
					return
				}
				_, runErr = p.Read(result.Base(), 16, 151)
			case 6: // readback never used: problematic
				p.At(160)
				runErr = p.Ctx.MemcpyD2H(result.Base(), bufs[nHost].Base(), 256)
			case 7: // async D2H into pinned memory: truly async
				p.At(170)
				runErr = p.Ctx.MemcpyAsyncD2H(pinned.Base(), bufs[nHost].Base(), 4096, streams[1])
			case 8: // stream sync
				p.At(180)
				p.Ctx.StreamSynchronize(streams[rng.Intn(len(streams))])
			case 9: // CPU phase
				p.CPUWork(simtime.Duration(100+rng.Intn(1200)) * simtime.Microsecond)
			}
			if runErr == nil && nDev > 1 && rng.Intn(6) == 0 {
				runErr = p.Ctx.SetDevice(rng.Intn(nDev))
			}
		})
	}
	// Drain the device so the run ends quiescent.
	p.In("shutdown", "random.cpp", 300, func() {
		p.Ctx.DeviceSynchronize()
	})
	return runErr
}
