// Trace replay: re-driving the simulator from a captured trace.Run.
//
// A Diogenes trace records every synchronizing or transferring driver call
// with overhead-compensated timestamps, measured sync waits, transfer
// payload digests, and call stacks. ReplayApp turns such a document back
// into a proc.App: it paces the CPU to each record's entry time, re-issues
// the recorded driver call under the reconstructed call stack, and — since
// kernel launches are never recorded (they do not synchronize, §5.2) —
// re-creates the device-side occupancy behind each recorded wait with
// synthetic pacing kernels sized so the replayed synchronization waits
// exactly as long as the original did.
//
// Payloads are re-synthesized from the recorded content digests through a
// deterministic digest→bytes expander: equal digests expand to equal bytes,
// so stage 3's duplicate-transfer detection fires on the same records as in
// the original run (the bytes themselves differ — digests are not
// invertible — but the duplicate structure is preserved).
//
// The driving invariant is that every pacing decision (whether to launch a
// kernel, on which stream) depends only on the trace and the simulator
// configuration, never on the instrumentation ledger; only kernel durations
// and CPU pads adapt to the per-stage overhead. That is what lets one
// ReplayApp reproduce the original timeline under every FFM collection
// stage, and hence reproduce the original analysis byte for byte.
package apps

import (
	"fmt"
	"hash/fnv"
	"sort"

	"diogenes/internal/callstack"
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// MaxReplayBytes caps the size of any single replayed transfer. Traces are
// validated against it before any simulator state is touched, so a
// hostile document cannot force multi-gigabyte staging allocations.
const MaxReplayBytes = 64 << 20

// ReplayError reports why a trace cannot be replayed. Seq is the offending
// record's sequence number, or 0 for trace-level problems.
type ReplayError struct {
	Seq    int64
	Reason string
}

// Error implements error.
func (e *ReplayError) Error() string {
	if e.Seq != 0 {
		return fmt.Sprintf("replay: record %d: %s", e.Seq, e.Reason)
	}
	return fmt.Sprintf("replay: %s", e.Reason)
}

// ReplayApp re-drives the simulator from a captured trace. The Run method
// is safe to invoke concurrently on distinct processes, which is how
// ffm.Run's parallel collection stages use it.
type ReplayApp struct {
	Trace *trace.Run
}

// NewReplayApp wraps a trace for replay. Lazily computed record fields are
// materialized here, once, so concurrent stage runs see a frozen document.
func NewReplayApp(run *trace.Run) *ReplayApp {
	if run != nil {
		run.ResolveHashes()
	}
	return &ReplayApp{Trace: run}
}

// Name reports the replayed application's own name: the analysis of a
// faithful replay is byte-identical to the original's, headline included.
func (a *ReplayApp) Name() string {
	if a.Trace != nil && a.Trace.App != "" {
		return a.Trace.App
	}
	return "replay"
}

// replayOp is the dispatch class of one record.
type replayOp uint8

const (
	opMemcpyH2D replayOp = iota
	opMemcpyD2H
	opMemcpyD2D
	opAsyncH2D
	opAsyncD2HPinned
	opAsyncD2HPageable
	opMemsetDev
	opMemsetManaged
	opMemcpyPeer
	opFree
	opDeviceSync
	opThreadSync
	opStreamSync
	opGemm
	opPrivateD2H
)

// classify maps a record to its dispatch class from the function name,
// transfer direction, and sync scope — the trace has no opcode field.
func classify(rec *trace.Record) (replayOp, error) {
	switch rec.Func {
	case string(cuda.FuncMemcpy):
		switch rec.Dir {
		case "HtoD":
			return opMemcpyH2D, nil
		case "DtoH":
			return opMemcpyD2H, nil
		case "DtoD":
			return opMemcpyD2D, nil
		}
		return 0, &ReplayError{Seq: rec.Seq, Reason: fmt.Sprintf("cudaMemcpy with direction %q", rec.Dir)}
	case string(cuda.FuncMemcpyAsync):
		switch {
		case rec.Dir == "HtoD":
			return opAsyncH2D, nil
		case rec.Dir == "DtoH" && rec.Scope == "conditional":
			return opAsyncD2HPageable, nil
		case rec.Dir == "DtoH":
			return opAsyncD2HPinned, nil
		}
		return 0, &ReplayError{Seq: rec.Seq, Reason: fmt.Sprintf("cudaMemcpyAsync with direction %q", rec.Dir)}
	case string(cuda.FuncMemset):
		if rec.Scope == "conditional" {
			return opMemsetManaged, nil
		}
		return opMemsetDev, nil
	case string(cuda.FuncMemcpyPeer):
		return opMemcpyPeer, nil
	case string(cuda.FuncFree):
		return opFree, nil
	case string(cuda.FuncDeviceSync):
		return opDeviceSync, nil
	case string(cuda.FuncThreadSync):
		return opThreadSync, nil
	case string(cuda.FuncStreamSync):
		return opStreamSync, nil
	case string(cuda.FuncPrivateGemm):
		return opGemm, nil
	case string(cuda.FuncPrivateMemcpy):
		return opPrivateD2H, nil
	}
	return 0, &ReplayError{Seq: rec.Seq, Reason: fmt.Sprintf("%q is not a replayable function", rec.Func)}
}

// expandPayload deterministically re-synthesizes a transfer payload from
// its recorded digest: equal digests yield equal bytes. Records without a
// digest (pre-stage-3 traces) expand from their sequence number instead, so
// they never alias each other into spurious duplicates.
func expandPayload(hash string, seq int64, n int) []byte {
	if n <= 0 {
		return nil
	}
	var seed uint64
	if hash == "" {
		seed = 0x9e3779b97f4a7c15 ^ uint64(seq)
	} else {
		h := fnv.New64a()
		h.Write([]byte(hash))
		seed = h.Sum64()
	}
	p := make([]byte, n)
	simtime.NewRNG(seed).Bytes(p)
	return p
}

// replayEvent is one scheduled action: a record issue at its entry time, or
// a first-use memory access at exit+firstUse. Times are compensated.
type replayEvent struct {
	at     simtime.Time
	access bool
	idx    int
}

// replayState is the per-run working set: the reusable buffers the recorded
// transfers are re-driven through, and the streams that carry pacing
// kernels. All of it is allocated before the first record and reused, so
// replay cost stays flat in trace length.
type replayState struct {
	p   *proc.Process
	run *trace.Run
	ops []replayOp

	gcfg gpu.Config
	ccfg cuda.Config

	staging  *memory.Region // pageable source of H2D uploads
	pageable *memory.Region // pageable destination of synchronizing readbacks
	pinned   *memory.Region // pinned destination of truly-async readbacks
	managed  *memory.Region // unified-memory target of managed memsets

	devSrc *gpu.DevBuf // device source of readbacks and D2D copies
	devDst *gpu.DevBuf // device destination of uploads, D2D copies, memsets
	peer   *gpu.DevBuf // destination on device 1 for peer copies

	freeBufs []*gpu.DevBuf // one scratch allocation per recorded cudaFree
	nextFree int

	// Pacing kernels for legacy-queue and device-wide waits can ride any
	// stream (the legacy queue fences against all of them); conditional
	// async readbacks are delayed only by their own stream, so their pacing
	// kernels must share it.
	kernelStream gpu.StreamID
	condStream   gpu.StreamID
	gemmStream   gpu.StreamID
	asyncStreams []gpu.StreamID
	nextAsync    int

	lastWatched *memory.Region // most recent GPU-writable host region
}

// maxAsyncStreams bounds the round-robin pool truly-async copies are spread
// over: enough that realistic replays never serialize copies the original
// overlapped, without paying per-record stream-creation cost.
const maxAsyncStreams = 8

// Run implements proc.App.
func (a *ReplayApp) Run(p *proc.Process) error {
	run := a.Trace
	if run == nil {
		return &ReplayError{Reason: "no trace attached"}
	}
	if err := run.Validate(); err != nil {
		return err
	}
	st, err := newReplayState(p, run)
	if err != nil {
		return err
	}

	events := make([]replayEvent, 0, len(run.Records))
	for i := range run.Records {
		rec := &run.Records[i]
		events = append(events, replayEvent{at: rec.Entry, idx: i})
		if rec.ProtectedAccess {
			events = append(events, replayEvent{at: rec.Exit.Add(rec.FirstUse), access: true, idx: i})
		}
	}
	// Accesses sort before calls at the same instant: in the original run
	// the use happened in application code, i.e. before the next call began.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at.Before(events[j].at)
		}
		return events[i].access && !events[j].access
	})

	for _, ev := range events {
		rec := &run.Records[ev.idx]
		if ev.access {
			st.replayAccess(rec)
			continue
		}
		if err := st.replayRecord(rec, st.ops[ev.idx]); err != nil {
			return err
		}
	}

	// Pace out the tail so the replayed compensated execution time matches
	// the original's.
	st.padTo(simtime.Time(0).Add(run.ExecTime).Add(p.Ctx.InstrumentationOverhead()))
	return nil
}

// newReplayState scans the trace, rejects anything unreplayable, and builds
// exactly the buffers and streams the records will need. Every decision
// here depends only on the trace and the configuration, so each collection
// stage sets up an identical environment.
func newReplayState(p *proc.Process, run *trace.Run) (*replayState, error) {
	st := &replayState{
		p:    p,
		run:  run,
		ops:  make([]replayOp, len(run.Records)),
		gcfg: p.Dev.Config(),
		ccfg: p.Ctx.Config(),
	}
	var (
		maxStaging, maxPageable, maxPinned, maxManaged, maxDev int
		freeCount, asyncCount                                  int
		needKernel, needCond, needGemm, needPeer               bool
	)
	for i := range run.Records {
		rec := &run.Records[i]
		op, err := classify(rec)
		if err != nil {
			return nil, err
		}
		st.ops[i] = op
		if rec.Bytes > MaxReplayBytes {
			return nil, &ReplayError{Seq: rec.Seq, Reason: fmt.Sprintf("transfer of %d bytes exceeds the %d-byte replay limit", rec.Bytes, MaxReplayBytes)}
		}
		grow := func(m *int) {
			if rec.Bytes > *m {
				*m = rec.Bytes
			}
		}
		switch op {
		case opMemcpyH2D, opAsyncH2D:
			grow(&maxStaging)
			grow(&maxDev)
		case opMemcpyD2H, opPrivateD2H, opAsyncD2HPageable:
			grow(&maxPageable)
			grow(&maxDev)
		case opAsyncD2HPinned:
			grow(&maxPinned)
			grow(&maxDev)
		case opMemcpyD2D, opMemsetDev, opMemcpyPeer:
			grow(&maxDev)
		case opMemsetManaged:
			grow(&maxManaged)
		}
		switch op {
		case opAsyncH2D, opAsyncD2HPinned:
			asyncCount++
		case opAsyncD2HPageable:
			needCond = true
		case opGemm:
			needGemm = true
		case opFree:
			freeCount++
		case opMemcpyPeer:
			needPeer = true
		case opStreamSync:
			needKernel = true
		}
		if rec.SyncWait > 0 && op != opGemm && op != opAsyncD2HPageable {
			needKernel = true
		}
	}

	// Host and device working memory is carved out without touching the
	// clock (only driver API calls cost simulated time), so an arbitrarily
	// allocation-heavy trace replays from a compact, constant-cost setup.
	nz := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	st.staging = p.Host.Alloc(nz(maxStaging), "replay staging")
	st.pageable = p.Host.Alloc(nz(maxPageable), "replay readback")
	var err error
	if st.devSrc, err = p.Dev.Malloc(nz(maxDev), "replay dev src"); err != nil {
		return nil, err
	}
	if st.devDst, err = p.Dev.Malloc(nz(maxDev), "replay dev dst"); err != nil {
		return nil, err
	}
	if needPeer && len(p.Devs) > 1 {
		if st.peer, err = p.Devs[1].Malloc(nz(maxDev), "replay peer dst"); err != nil {
			return nil, err
		}
	}
	st.freeBufs = make([]*gpu.DevBuf, freeCount)
	for i := range st.freeBufs {
		if st.freeBufs[i], err = p.Dev.Malloc(64, "replay free scratch"); err != nil {
			return nil, err
		}
	}

	// The few setup steps that do cost simulated time run through the
	// driver API, in a fixed order, only when the trace needs them; the pad
	// before the first record absorbs the cost.
	if needKernel {
		st.kernelStream = p.Ctx.StreamCreate()
	}
	if needCond {
		st.condStream = p.Ctx.StreamCreate()
	}
	if needGemm {
		st.gemmStream = p.Ctx.StreamCreate()
	}
	if n := asyncCount; n > 0 {
		if n > maxAsyncStreams {
			n = maxAsyncStreams
		}
		st.asyncStreams = make([]gpu.StreamID, n)
		for i := range st.asyncStreams {
			st.asyncStreams[i] = p.Ctx.StreamCreate()
		}
	}
	if maxPinned > 0 {
		st.pinned = p.Ctx.MallocHost(maxPinned, "replay pinned readback")
	}
	if maxManaged > 0 {
		if st.managed, err = p.Ctx.MallocManaged(maxManaged, "replay managed"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// padTo advances the CPU to an absolute instant, if it is still ahead.
func (st *replayState) padTo(t simtime.Time) {
	if pad := t.Sub(st.p.Clock.Now()); pad > 0 {
		st.p.CPUWork(pad)
	}
}

// inStack re-establishes a recorded call stack (innermost-first in the
// trace) around body, so the replayed record carries the original frames.
func (st *replayState) inStack(frames callstack.Trace, body func()) {
	var walk func(i int)
	walk = func(i int) {
		if i < 0 {
			body()
			return
		}
		f := frames[i]
		st.p.In(f.Function, f.File, f.Line, func() { walk(i - 1) })
	}
	walk(len(frames) - 1)
}

// replayRecord re-issues one recorded driver call: stage its payload, plant
// the pacing kernel that reproduces the recorded wait, pace the CPU to the
// recorded entry instant, then make the call under the recorded stack.
func (st *replayState) replayRecord(rec *trace.Record, op replayOp) error {
	switch op {
	case opMemcpyH2D, opAsyncH2D:
		if err := st.p.Host.Poke(st.staging.Base(), expandPayload(rec.Hash, rec.Seq, rec.Bytes)); err != nil {
			return err
		}
	case opMemcpyD2H, opAsyncD2HPinned, opAsyncD2HPageable, opPrivateD2H:
		if err := st.p.Dev.DevWrite(st.devSrc.Base(), expandPayload(rec.Hash, rec.Seq, rec.Bytes)); err != nil {
			return err
		}
	}
	if err := st.pacingKernel(rec, op); err != nil {
		return err
	}
	st.padTo(rec.Entry.Add(st.p.Ctx.InstrumentationOverhead()))
	var callErr error
	st.inStack(rec.Stack, func() { callErr = st.issue(rec, op) })
	return callErr
}

// pacingKernel reproduces the device-side occupancy behind a recorded
// synchronization wait. Each synchronizing call has a structural minimum
// wait — what its own enqueued work costs on an idle device. Any recorded
// wait beyond that minimum came from kernels the original application had
// in flight, which the trace does not record; a synthetic kernel is sized
// so the replayed call's wait ends exactly at syncStart + SyncWait.
//
// Whether a kernel is launched depends only on the recorded wait and the
// device/driver configuration — never on the instrumentation ledger — so
// every collection stage makes identical launch decisions and only the
// kernel duration adapts to that stage's overhead.
func (st *replayState) pacingKernel(rec *trace.Record, op replayOp) error {
	w := rec.SyncWait
	if w <= 0 {
		return nil
	}
	cd := st.p.Dev.CopyDuration
	var (
		stream gpu.StreamID = st.kernelStream
		wmin   simtime.Duration
		endOff simtime.Duration // device work between kernel end and sync end
		setup  simtime.Duration // CPU cost between call entry and sync start
	)
	switch op {
	case opDeviceSync, opThreadSync, opFree, opStreamSync:
		// Pure waits: the kernel end is the sync end.
	case opMemcpyH2D:
		d := cd(gpu.OpCopyH2D, rec.Bytes)
		wmin, endOff, setup = st.gcfg.CopyLatency/2+d, d, st.ccfg.MemcpySetupCost
	case opMemcpyD2H, opPrivateD2H:
		d := cd(gpu.OpCopyD2H, rec.Bytes)
		wmin, endOff, setup = st.gcfg.CopyLatency/2+d, d, st.ccfg.MemcpySetupCost
	case opMemcpyD2D:
		d := cd(gpu.OpCopyD2D, rec.Bytes)
		wmin, endOff, setup = st.gcfg.CopyLatency/2+d, d, st.ccfg.MemcpySetupCost
	case opAsyncD2HPageable:
		// The copy rides its own stream, which only its own stream's work
		// can delay — the pacing kernel must share it.
		d := cd(gpu.OpCopyD2H, rec.Bytes)
		stream = st.condStream
		wmin, endOff, setup = st.gcfg.CopyLatency/2+d, d, st.ccfg.MemcpySetupCost
	case opMemsetManaged:
		d := st.gcfg.CopyLatency + simtime.Duration(rec.Bytes)*simtime.Microsecond/simtime.Duration(st.gcfg.MemsetBytesPerUS)
		wmin, endOff, setup = st.gcfg.KernelQueueLatency+d, d, st.ccfg.MemsetSetupCost
	case opMemcpyPeer:
		// With two devices the two halves of the peer copy run in
		// parallel; on one device they share the legacy queue and
		// serialize.
		d := cd(gpu.OpCopyD2D, rec.Bytes)
		if len(st.p.Devs) > 1 {
			wmin, endOff = st.gcfg.CopyLatency/2+d, d
		} else {
			wmin, endOff = st.gcfg.CopyLatency/2+2*d, 2*d
		}
		setup = st.ccfg.MemcpySetupCost
	default:
		return nil // async transfers and gemm carry no pacing kernel
	}
	if w <= wmin {
		return nil // the call's own work reproduces the wait exactly
	}
	ledger := st.p.Ctx.InstrumentationOverhead()
	pEntry := st.p.Ctx.ProbeOverheadOf(cuda.Func(rec.Func))
	syncStart := rec.Entry.Add(ledger + pEntry + st.ccfg.CallOverhead + setup)
	target := syncStart.Add(w - endOff)
	// The kernel is enqueued directly on the device, not through
	// cuda.LaunchKernel: the original launch happened at some unrecorded
	// earlier instant, and charging driver CPU cost here would push past
	// entry times when the original left no CPU gap before the sync.
	// Predict where the kernel will start: the device applies its queue
	// latency and any outstanding work on the kernel's stream or the
	// legacy queue.
	start := st.p.Clock.Now().Add(st.gcfg.KernelQueueLatency)
	if r := st.p.Dev.StreamBusyUntil(stream); r.After(start) {
		start = r
	}
	if f := st.p.Dev.StreamBusyUntil(gpu.LegacyStream); f.After(start) {
		start = f
	}
	dur := target.Sub(start)
	if dur < 0 {
		dur = 0
	}
	st.p.Dev.EnqueueKernel(stream, "replay pacing", dur)
	return nil
}

// nextAsyncStream round-robins truly-async copies over the stream pool so
// copies the original overlapped still overlap.
func (st *replayState) nextAsyncStream() gpu.StreamID {
	s := st.asyncStreams[st.nextAsync%len(st.asyncStreams)]
	st.nextAsync++
	return s
}

// issue makes the recorded driver call against the replay buffers.
func (st *replayState) issue(rec *trace.Record, op replayOp) error {
	p := st.p
	n := rec.Bytes
	switch op {
	case opMemcpyH2D:
		return p.Ctx.MemcpyH2D(st.devDst.Base(), st.staging.Base(), n)
	case opMemcpyD2H:
		st.lastWatched = st.pageable
		return p.Ctx.MemcpyD2H(st.pageable.Base(), st.devSrc.Base(), n)
	case opMemcpyD2D:
		return p.Ctx.MemcpyD2D(st.devDst.Base(), st.devSrc.Base(), n)
	case opAsyncH2D:
		return p.Ctx.MemcpyAsyncH2D(st.devDst.Base(), st.staging.Base(), n, st.nextAsyncStream())
	case opAsyncD2HPinned:
		st.lastWatched = st.pinned
		return p.Ctx.MemcpyAsyncD2H(st.pinned.Base(), st.devSrc.Base(), n, st.nextAsyncStream())
	case opAsyncD2HPageable:
		st.lastWatched = st.pageable
		return p.Ctx.MemcpyAsyncD2H(st.pageable.Base(), st.devSrc.Base(), n, st.condStream)
	case opMemsetDev:
		return p.Ctx.MemsetDev(st.devDst.Base(), 0, n)
	case opMemsetManaged:
		st.lastWatched = st.managed
		return p.Ctx.MemsetManaged(st.managed.Base(), 0, n)
	case opMemcpyPeer:
		dstDev, dst := 0, st.devDst.Base()
		if len(p.Devs) > 1 {
			dstDev, dst = 1, st.peer.Base()
		}
		return p.Ctx.MemcpyPeer(dstDev, dst, 0, st.devSrc.Base(), n)
	case opFree:
		buf := st.freeBufs[st.nextFree]
		st.nextFree++
		return p.Ctx.Free(buf)
	case opDeviceSync:
		p.Ctx.DeviceSynchronize()
		return nil
	case opThreadSync:
		p.Ctx.ThreadSynchronize()
		return nil
	case opStreamSync:
		p.Ctx.StreamSynchronize(st.kernelStream)
		return nil
	case opGemm:
		// The gemm's own kernel is the recorded wait: it starts after the
		// device queue latency and the sync spans both.
		dur := rec.SyncWait - st.gcfg.KernelQueueLatency
		if dur < 0 {
			dur = 0
		}
		p.Ctx.PrivateGemm("replay gemm", dur, st.gemmStream, true)
		return nil
	case opPrivateD2H:
		st.lastWatched = st.pageable
		return p.Ctx.PrivateMemcpyD2H(st.pageable.Base(), st.devSrc.Base(), n)
	}
	return &ReplayError{Seq: rec.Seq, Reason: "unhandled operation"}
}

// replayAccess reproduces the first use of synchronized data: a read at the
// recorded source position, at exit+firstUse on the compensated timeline,
// into the most recently written GPU-visible host region. Stages 3 and 4
// watch those regions, so the read re-triggers the original
// protected-access discovery and first-use measurement.
func (st *replayState) replayAccess(rec *trace.Record) {
	st.padTo(rec.Exit.Add(rec.FirstUse).Add(st.p.Ctx.InstrumentationOverhead()))
	r := st.lastWatched
	if r == nil || r.Size() == 0 {
		return // trace claims a use before any readback; nothing to touch
	}
	site := rec.AccessSite
	if site.IsZero() {
		site = trace.Site{Function: "replayUse", File: "replay.go", Line: 1}
	}
	n := r.Size()
	if n > 16 {
		n = 16
	}
	st.p.In(site.Function, site.File, site.Line, func() {
		_, _ = st.p.Read(r.Base(), n, site.Line)
	})
}
