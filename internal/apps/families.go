// Generative workload families: seeded scenario generators that bias the
// driver-call vocabulary the way real GPU workload classes do, so the
// property harness (internal/experiments) can check FFM's invariants on
// thousands of programs nobody hand-modelled.
//
// Each family follows the proc.App determinism contract — the same seed
// always produces the identical call sequence — and builds over an explicit
// process factory so autofix validation and MPI worlds can re-instantiate
// it on patched processes.
package apps

import (
	"fmt"

	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// Family is one seeded generative workload class.
type Family struct {
	Name        string
	Description string
	// New builds the deterministic scenario for (seed, steps). The factory
	// configures any additional processes the scenario spawns (MPI ranks);
	// single-process families ignore it.
	New func(seed uint64, steps int, f proc.Factory) proc.App
}

var families = []Family{
	{
		Name:        "ml-train",
		Description: "training loop: repeated minibatch uploads, fwd/bwd kernels, per-step sync",
		New: func(seed uint64, steps int, f proc.Factory) proc.App {
			return &mlTrainApp{seed: seed, steps: steps}
		},
	},
	{
		Name:        "thrust-churn",
		Description: "Thrust-style allocator churn: temp alloc, memset, kernel, implicit-sync free",
		New: func(seed uint64, steps int, f proc.Factory) proc.App {
			return &thrustChurnApp{seed: seed, steps: steps}
		},
	},
	{
		Name:        "multi-stream",
		Description: "pipelined async copies and kernels over several streams",
		New: func(seed uint64, steps int, f proc.Factory) proc.App {
			return &multiStreamApp{seed: seed, steps: steps}
		},
	},
	{
		Name:        "mpi-imbalanced",
		Description: "two-rank MPI world with rank-skewed kernel times and per-step collectives",
		New: func(seed uint64, steps int, f proc.Factory) proc.App {
			prog := &imbalancedProgram{seed: seed, steps: steps}
			return mpi.App(prog, mpi.Config{
				Ranks:          2,
				BarrierLatency: 25 * simtime.Microsecond,
				Factory:        f,
			}, 0)
		},
	},
	{
		Name:        "sync-heavy",
		Description: "short kernels fenced by device- and thread-wide synchronizations",
		New: func(seed uint64, steps int, f proc.Factory) proc.App {
			return &syncHeavyApp{seed: seed, steps: steps}
		},
	},
	{
		Name:        "random",
		Description: "uniform draw over the full call vocabulary (the original generator)",
		New: func(seed uint64, steps int, f proc.Factory) proc.App {
			return NewRandomApp(seed, steps)
		},
	},
}

// Families returns every generative family, in stable order.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// FamilyByName looks up a generative family.
func FamilyByName(name string) (Family, error) {
	for _, f := range families {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("apps: unknown family %q (have %s)", name, familyNames())
}

func familyNames() string {
	s := ""
	for i, f := range families {
		if i > 0 {
			s += ", "
		}
		s += f.Name
	}
	return s
}

// mlTrainApp models the minibatch training loop the GPGPU-Sim ML-workload
// study found dominating real streams: the same batches are re-uploaded
// every epoch (duplicate transfers), two kernels run back to back, and the
// step ends on a device-wide synchronization; every few steps the loss is
// read back and immediately consumed.
type mlTrainApp struct {
	seed  uint64
	steps int
}

func (a *mlTrainApp) Name() string { return fmt.Sprintf("ml-train-%d", a.seed) }

func (a *mlTrainApp) Run(p *proc.Process) error {
	rng := simtime.NewRNG(a.seed)
	const batchBytes = 64 << 10
	const nBatches = 4
	batches := make([]*memory.Region, nBatches)
	for i := range batches {
		batches[i] = p.Host.Alloc(batchBytes, fmt.Sprintf("batch %d", i))
		payload := make([]byte, batchBytes)
		simtime.NewRNG(a.seed*101 + uint64(i)).Bytes(payload)
		if err := p.Host.Poke(batches[i].Base(), payload); err != nil {
			return err
		}
	}
	loss := p.Host.Alloc(4<<10, "loss")
	dev, err := p.Ctx.Malloc(batchBytes, "minibatch")
	if err != nil {
		return err
	}
	devLoss, err := p.Ctx.Malloc(4<<10, "dev loss")
	if err != nil {
		return err
	}

	var runErr error
	for s := 0; s < a.steps && runErr == nil; s++ {
		batch := s % nBatches // epochs revisit identical content
		p.In("train_step", "train.py", 40, func() {
			p.At(41)
			if runErr = p.Ctx.MemcpyH2D(dev.Base(), batches[batch].Base(), batchBytes); runErr != nil {
				return
			}
			if _, runErr = p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name:     "forward",
				Duration: simtime.Duration(300+rng.Intn(500)) * simtime.Microsecond,
				Stream:   gpu.LegacyStream,
			}); runErr != nil {
				return
			}
			if _, runErr = p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name:     "backward",
				Duration: simtime.Duration(400+rng.Intn(700)) * simtime.Microsecond,
				Stream:   gpu.LegacyStream,
			}); runErr != nil {
				return
			}
			p.At(44)
			p.Ctx.DeviceSynchronize()
			if s%5 == 4 {
				p.At(46)
				if runErr = p.Ctx.MemcpyD2H(loss.Base(), devLoss.Base(), 256); runErr != nil {
					return
				}
				_, runErr = p.Read(loss.Base(), 16, 47)
			}
		})
	}
	p.In("train_shutdown", "train.py", 90, func() {
		p.Ctx.DeviceSynchronize()
	})
	return runErr
}

// thrustChurnApp models Thrust-style temporary-storage churn: every
// algorithm invocation allocates scratch, memsets it, runs a kernel and
// frees the scratch — and cudaFree synchronizes the whole device
// implicitly, the pattern behind the paper's cuIBM finding.
type thrustChurnApp struct {
	seed  uint64
	steps int
}

func (a *thrustChurnApp) Name() string { return fmt.Sprintf("thrust-churn-%d", a.seed) }

func (a *thrustChurnApp) Run(p *proc.Process) error {
	rng := simtime.NewRNG(a.seed)
	out := p.Host.Alloc(8<<10, "reduction out")
	devOut, err := p.Ctx.Malloc(8<<10, "dev reduction")
	if err != nil {
		return err
	}

	var runErr error
	for s := 0; s < a.steps && runErr == nil; s++ {
		p.In("thrust_transform", "churn.cu", 60, func() {
			size := (16 + rng.Intn(48)) << 10
			var temp *gpu.DevBuf
			if temp, runErr = p.Ctx.Malloc(size, "thrust temp"); runErr != nil {
				return
			}
			p.At(62)
			if runErr = p.Ctx.MemsetDev(temp.Base(), 0, size); runErr != nil {
				return
			}
			if _, runErr = p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name:     "transform_reduce",
				Duration: simtime.Duration(100+rng.Intn(400)) * simtime.Microsecond,
				Stream:   gpu.LegacyStream,
			}); runErr != nil {
				return
			}
			p.CPUWork(simtime.Duration(20+rng.Intn(80)) * simtime.Microsecond)
			p.At(65)
			runErr = p.Ctx.Free(temp)
		})
		if runErr == nil && rng.Intn(6) == 0 {
			p.In("thrust_readback", "churn.cu", 70, func() {
				p.At(71)
				runErr = p.Ctx.MemcpyD2H(out.Base(), devOut.Base(), 1024)
			})
		}
	}
	p.In("churn_shutdown", "churn.cu", 95, func() {
		p.Ctx.DeviceSynchronize()
	})
	return runErr
}

// multiStreamApp models a well-pipelined solver: uploads and kernels ride
// several streams concurrently, readbacks land in pinned memory, and only
// occasional stream or device synchronizations fence the pipeline.
type multiStreamApp struct {
	seed  uint64
	steps int
}

func (a *multiStreamApp) Name() string { return fmt.Sprintf("multi-stream-%d", a.seed) }

func (a *multiStreamApp) Run(p *proc.Process) error {
	rng := simtime.NewRNG(a.seed)
	const chunkBytes = 32 << 10
	const nStreams = 3
	src := p.Host.Alloc(chunkBytes, "chunk src")
	payload := make([]byte, chunkBytes)
	simtime.NewRNG(a.seed * 977).Bytes(payload)
	if err := p.Host.Poke(src.Base(), payload); err != nil {
		return err
	}
	pinned := p.Ctx.MallocHost(8<<10, "pinned results")
	streams := make([]gpu.StreamID, nStreams)
	devs := make([]*gpu.DevBuf, nStreams)
	for i := range streams {
		streams[i] = p.Ctx.StreamCreate()
		var err error
		if devs[i], err = p.Ctx.Malloc(chunkBytes, fmt.Sprintf("chunk %d", i)); err != nil {
			return err
		}
	}

	var runErr error
	for s := 0; s < a.steps && runErr == nil; s++ {
		i := s % nStreams
		p.In("pipeline_stage", "streams.cu", 80, func() {
			p.At(81)
			if runErr = p.Ctx.MemcpyAsyncH2D(devs[i].Base(), src.Base(), chunkBytes, streams[i]); runErr != nil {
				return
			}
			if _, runErr = p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name:     "stage_kernel",
				Duration: simtime.Duration(200+rng.Intn(600)) * simtime.Microsecond,
				Stream:   streams[i],
			}); runErr != nil {
				return
			}
			if rng.Intn(4) == 0 {
				p.At(85)
				if runErr = p.Ctx.MemcpyAsyncD2H(pinned.Base(), devs[i].Base(), 4096, streams[i]); runErr != nil {
					return
				}
			}
			if rng.Intn(3) == 0 {
				p.At(87)
				p.Ctx.StreamSynchronize(streams[rng.Intn(nStreams)])
			}
			if rng.Intn(8) == 0 {
				p.At(89)
				p.Ctx.DeviceSynchronize()
			}
		})
	}
	p.In("pipeline_drain", "streams.cu", 95, func() {
		p.Ctx.DeviceSynchronize()
	})
	return runErr
}

// imbalancedProgram is a two-rank MPI rank program whose kernel times are
// skewed by rank: the fast rank arrives at every collective early and
// absorbs the skew as barrier wait, the imbalance pattern fleet analysis
// exists to expose.
type imbalancedProgram struct {
	seed  uint64
	steps int
}

func (a *imbalancedProgram) Name() string { return fmt.Sprintf("mpi-imbalanced-%d", a.seed) }

// Steps implements mpi.RankProgram.
func (a *imbalancedProgram) Steps() int { return a.steps }

type imbalancedState struct {
	src *memory.Region
	out *memory.Region
	dev *gpu.DevBuf
}

// Setup implements mpi.RankProgram.
func (a *imbalancedProgram) Setup(p *proc.Process, rank int) (mpi.RankState, error) {
	st := &imbalancedState{}
	const haloBytes = 16 << 10
	st.src = p.Host.Alloc(haloBytes, "halo src")
	payload := make([]byte, haloBytes)
	simtime.NewRNG(a.seed*313 + uint64(rank)).Bytes(payload)
	if err := p.Host.Poke(st.src.Base(), payload); err != nil {
		return nil, err
	}
	st.out = p.Host.Alloc(4<<10, "halo out")
	var err error
	if st.dev, err = p.Ctx.Malloc(haloBytes, "dev halo"); err != nil {
		return nil, err
	}
	return st, nil
}

// Step implements mpi.RankProgram: deterministic per (rank, step).
func (a *imbalancedProgram) Step(p *proc.Process, rank int, state mpi.RankState, step int) error {
	st := state.(*imbalancedState)
	rng := simtime.NewRNG(a.seed ^ uint64(rank)<<32 ^ uint64(step)*0x9e3779b9)
	var err error
	p.In("exchange_halo", "halo.c", 120, func() {
		p.At(121)
		if err = p.Ctx.MemcpyH2D(st.dev.Base(), st.src.Base(), st.src.Size()); err != nil {
			return
		}
		// The skew: rank 1's smoother runs ~2x longer than rank 0's.
		dur := simtime.Duration(500+900*rank+rng.Intn(300)) * simtime.Microsecond
		if _, err = p.Ctx.LaunchKernel(cuda.KernelSpec{
			Name:     "smooth",
			Duration: dur,
			Stream:   gpu.LegacyStream,
		}); err != nil {
			return
		}
		p.At(125)
		p.Ctx.DeviceSynchronize()
		if step%4 == 3 {
			p.At(127)
			if err = p.Ctx.MemcpyD2H(st.out.Base(), st.dev.Base(), 2048); err != nil {
				return
			}
			_, err = p.Read(st.out.Base(), 16, 128)
		}
	})
	return err
}

// syncHeavyApp models over-fenced code: every short kernel is bracketed by
// a device-wide (sometimes the deprecated thread-wide) synchronization, so
// nearly all wall time is synchronization wait.
type syncHeavyApp struct {
	seed  uint64
	steps int
}

func (a *syncHeavyApp) Name() string { return fmt.Sprintf("sync-heavy-%d", a.seed) }

func (a *syncHeavyApp) Run(p *proc.Process) error {
	rng := simtime.NewRNG(a.seed)
	out := p.Host.Alloc(4<<10, "residual")
	dev, err := p.Ctx.Malloc(16<<10, "dev state")
	if err != nil {
		return err
	}

	var runErr error
	for s := 0; s < a.steps && runErr == nil; s++ {
		p.In("solver_iteration", "sync.cu", 100, func() {
			if _, runErr = p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name:     "relax",
				Duration: simtime.Duration(50+rng.Intn(150)) * simtime.Microsecond,
				Stream:   gpu.LegacyStream,
			}); runErr != nil {
				return
			}
			p.At(102)
			p.Ctx.DeviceSynchronize()
			if rng.Intn(2) == 0 {
				if _, runErr = p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name:     "residual",
					Duration: simtime.Duration(40+rng.Intn(100)) * simtime.Microsecond,
					Stream:   gpu.LegacyStream,
				}); runErr != nil {
					return
				}
				p.At(105)
				p.Ctx.ThreadSynchronize()
			}
			if rng.Intn(5) == 0 {
				p.At(107)
				if runErr = p.Ctx.MemcpyD2H(out.Base(), dev.Base(), 512); runErr != nil {
					return
				}
				_, runErr = p.Read(out.Base(), 16, 108)
			}
			p.CPUWork(simtime.Duration(10+rng.Intn(40)) * simtime.Microsecond)
		})
	}
	p.In("solver_shutdown", "sync.cu", 130, func() {
		p.Ctx.DeviceSynchronize()
	})
	return runErr
}
