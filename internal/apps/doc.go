// Package apps models the four applications of the paper's evaluation (§5):
// cumf_als, cuIBM, AMG and Rodinia's gaussian benchmark. Each is a
// deterministic synthetic workload whose CUDA call pattern reproduces the
// problem inventory Diogenes found in the real code — duplicate transfers
// and alloc/free churn inside the ALS loop, Thrust-style temporary
// allocation in template functions, cudaMemset on unified memory, a stray
// cudaThreadSynchronize — and each supports a Fixed variant applying the
// paper's fix, so the actual runtime reduction of Table 1 can be measured.
//
// Calibration notes.
//
// Each modelled application reproduces the *problem inventory* and the
// *profile shape* of its real counterpart (§5 of the paper), not its
// absolute runtime: the workloads run scaled-down iteration counts against
// proportionally scaled interconnect bandwidths, and EXPERIMENTS.md records
// paper-vs-measured for every quantity. The calibration levers are:
//
//   - per-call driver costs (cuda.Config): these set the NVProf/HPCToolkit
//     per-function profile shares (e.g. cumf_als' cudaMalloc block ranking
//     third in NVProf);
//   - kernel durations and their placement relative to synchronizing calls:
//     these set the *wait* components (cudaDeviceSynchronize owning ~52% of
//     cumf_als under NVProf; cudaFree waits in cuIBM);
//   - the CPU work between problematic operations: this bounds Diogenes'
//     expected-benefit estimates (Figure 5's min(idle, duration)), which is
//     how the estimate ends up far below the profilers' consumption figures;
//   - the Fixed variants apply exactly the paper's remedies, so the gap
//     between estimate and measured reduction (Table 1's accuracy column)
//     emerges from the simulation rather than being dialled in: cuIBM's
//     actual exceeds its estimate because pooling also removes the paired
//     cudaMalloc calls; cumf_als' actual falls short because some of the
//     credited GPU-idle contraction is not realizable.
//
// Determinism contract: given equal scale and variant, Run issues an
// identical sequence of driver calls and memory accesses on every
// execution. All randomness derives from fixed-seed simtime.RNG instances;
// FFM's multi-run collection and the fix-validation digests both depend on
// this.
package apps
