package apps

import (
	"fmt"

	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/hashstore"
	"diogenes/internal/memory"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// CumfALS models cumf_als [Tan et al., ICPP'18]: an alternating-least-
// squares matrix factorization library run on the MovieLens 10M ratings for
// thousands of iterations (§5.1). Its problem inventory matches Figure 6:
//
//   - rating tiles are re-uploaded with identical content every iteration
//     (five duplicate cudaMemcpy points: lines 738/739/801/902/930);
//   - seventeen temporary device buffers are allocated and freed *inside*
//     the solver loop; every cudaFree synchronizes implicitly (lines
//     760–987), and the early ones wait on in-flight solver kernels;
//   - a cudaDeviceSynchronize at line 877 waits out the big solve kernels
//     even though the following operations synchronize anyway — removing it
//     alone changes nothing, which is why Diogenes scores it ≈0 while
//     NVProf ranks it first (Table 2).
//
// The Fixed variant applies the paper's subsequence-10..23 fix: the
// alloc/free pairs at lines 856–987 are hoisted out of the loop (allocated
// once, reused) and the duplicate uploads at 902/930 are transferred once.
// The line-877 synchronization stays — the paper verified its removal alone
// had no effect on execution time, exactly as Diogenes' ≈0 estimate says.
type CumfALS struct {
	Iters   int
	Variant Variant

	// Tunables, calibrated against the Table 1/2 shapes.
	TileBytes    int
	ResultBytes  int
	TempBytes    int
	Phase1Kernel simtime.Duration
	Phase2Kernel simtime.Duration
	GapWork      simtime.Duration
	ModelWork    simtime.Duration

	finalState checksum
}

// NewCumfALS builds the model at the given scale (scale 1.0 ≈ 600
// iterations standing in for the paper's 5000).
func NewCumfALS(scale float64, v Variant) *CumfALS {
	return &CumfALS{
		Iters:        scaled(600, scale),
		Variant:      v,
		TileBytes:    24 << 10,
		ResultBytes:  64 << 10,
		TempBytes:    32 << 10,
		Phase1Kernel: 2200 * simtime.Microsecond,
		Phase2Kernel: 7 * simtime.Millisecond,
		GapWork:      700 * simtime.Microsecond,
		ModelWork:    3 * simtime.Millisecond,
	}
}

// Name implements proc.App.
func (a *CumfALS) Name() string {
	if a.Variant == Fixed {
		return "cumf_als(fixed)"
	}
	return "cumf_als"
}

// cumfFactory returns the machine model cumf_als is measured on: a slow
// interconnect (the scaled-down tiles stand in for multi-megabyte ones) and
// driver costs as observed for this workload on the POWER8 testbed.
func cumfFactory() proc.Factory {
	g := gpu.DefaultConfig()
	g.H2DBytesPerUS = 32 // 24 KiB tile ≈ 0.8 ms
	g.D2HBytesPerUS = 40
	g.CopyLatency = 60 * simtime.Microsecond
	c := cuda.DefaultConfig()
	c.MallocCost = 380 * simtime.Microsecond
	c.FreeCost = 160 * simtime.Microsecond
	return proc.Factory{GPU: g, CUDA: c}
}

// alsEarlyFrees are the per-iteration alloc/free lines preceding the
// line-877 synchronization; alsLateFrees follow it (and belong to the
// hoisted subsequence together with line 856).
var (
	alsEarlyFrees = []int{760, 768, 775, 790, 812, 855, 856}
	alsLateFrees  = []int{878, 890, 915, 926, 941, 950, 965, 972, 986, 987}
)

func alsHoisted(line int) bool { return line >= 856 }

// Run implements proc.App.
func (a *CumfALS) Run(p *proc.Process) error {
	var err error
	fail := func(e error) bool {
		if e != nil && err == nil {
			err = e
		}
		return err != nil
	}

	// Host-side tiles; contents fixed across iterations (the ratings do
	// not change), which is what makes the re-uploads duplicates.
	tiles := make([]*memory.Region, 5)
	devTiles := make([]*gpu.DevBuf, 5)
	payload := make([]byte, a.TileBytes)
	for i := range tiles {
		tiles[i] = p.Host.Alloc(a.TileBytes, fmt.Sprintf("ratings tile %d", i))
		simtime.NewRNG(uint64(1000 + i)).Bytes(payload)
		if fail(p.Host.Poke(tiles[i].Base(), payload)) {
			return err
		}
		if devTiles[i], err = p.Ctx.Malloc(a.TileBytes, "dev tile"); err != nil {
			return err
		}
	}
	result := p.Host.Alloc(a.ResultBytes, "factor matrix X")
	devResult, err := p.Ctx.Malloc(a.ResultBytes, "dev X")
	if err != nil {
		return err
	}

	// The fixed build pre-allocates the reusable temporaries and uploads
	// the previously re-transferred tiles once.
	if a.Variant == Fixed {
		for _, line := range append(append([]int{}, alsEarlyFrees...), alsLateFrees...) {
			if alsHoisted(line) {
				if _, e := p.Ctx.Malloc(a.TempBytes, fmt.Sprintf("hoisted temp @%d", line)); fail(e) {
					return err
				}
			}
		}
		if fail(p.Ctx.MemcpyH2D(devTiles[3].Base(), tiles[3].Base(), a.TileBytes)) {
			return err
		}
		if fail(p.Ctx.MemcpyH2D(devTiles[4].Base(), tiles[4].Base(), a.TileBytes)) {
			return err
		}
	}

	// Per-iteration temporaries: the original build allocates all of them
	// at the top of the loop body (the cudaMalloc block NVProf ranks
	// highly) and frees them at the listed lines; the fixed build
	// allocates only the non-hoisted ones. The inter-entry application
	// work (GapWork) is real computation and remains in both builds.
	temps := make(map[int]*gpu.DevBuf, 17)
	allocTemps := func() {
		for _, line := range append(append([]int{}, alsEarlyFrees...), alsLateFrees...) {
			if a.Variant == Fixed && alsHoisted(line) {
				continue
			}
			buf, e := p.Ctx.Malloc(a.TempBytes, "loop temp")
			if fail(e) {
				return
			}
			temps[line] = buf
		}
	}
	// free releases one temporary; every call synchronizes implicitly with
	// whatever the device is still running. The trailing GapWork is the
	// application's own computation between entries and remains in the
	// fixed build.
	free := func(line int) {
		if !(a.Variant == Fixed && alsHoisted(line)) {
			p.At(line)
			if fail(p.Ctx.Free(temps[line])) {
				return
			}
		}
		p.CPUWork(a.GapWork)
	}
	upload := func(idx, line int, oncePreloaded bool) {
		if a.Variant == Fixed && oncePreloaded {
			return
		}
		p.At(line)
		if fail(p.Ctx.MemcpyH2D(devTiles[idx].Base(), tiles[idx].Base(), a.TileBytes)) {
			return
		}
	}

	for iter := 0; iter < a.Iters && err == nil; iter++ {
		iter := iter
		p.In("alsUpdateX", "als.cpp", 700, func() {
			// The loop body allocates all its temporaries up front — the
			// cudaMalloc block that NVProf ranks third.
			p.At(710)
			allocTemps()
			if err != nil {
				return
			}

			// Entries 1-2: duplicate tile uploads.
			upload(0, 738, false)
			upload(1, 739, false)
			if err != nil {
				return
			}

			// Phase-1 solve kernels; the early frees wait on them.
			for k := 0; k < 4; k++ {
				p.At(745 + k)
				if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name: "als_update_x", Duration: a.Phase1Kernel, Stream: gpu.LegacyStream,
				}); fail(e) {
					return
				}
			}
			free(760)
			free(768)
			free(775)
			free(790)
			upload(2, 801, false) // entry 7: duplicate
			if err != nil {
				return
			}
			free(812)
			free(855)
			free(856) // entry 10: first hoisted entry
			if err != nil {
				return
			}

			// Phase-2: the big factorization kernels (lines 860-876), then
			// the line-877 synchronization that waits them out.
			for k := 0; k < 6; k++ {
				p.At(860 + 2*k)
				if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name: "als_solve", Duration: a.Phase2Kernel, Stream: gpu.LegacyStream,
					Writes: []cuda.KernelWrite{{Ptr: devResult.Base(), Size: 1024, Seed: uint64(iter*7 + k)}},
				}); fail(e) {
					return
				}
			}
			// Entry 11. The fixed build keeps this call: the paper
			// verified that removing the cudaDeviceSynchronize calls alone
			// had no impact on execution time, so the fix left the
			// synchronization structure in place and targeted the
			// allocation churn and duplicate transfers.
			p.At(877)
			p.Ctx.DeviceSynchronize()
		})
		if err != nil {
			break
		}

		p.In("alsSolveTheta", "solve.cu", 878, func() {
			free(878)
			free(890)
			upload(3, 902, true) // entry 14: duplicate, hoisted by the fix
			if err != nil {
				return
			}
			free(915)
			free(926)
			upload(4, 930, true) // entry 17: duplicate, hoisted by the fix
			if err != nil {
				return
			}
			free(941)
			free(950)
			free(965)
			free(972)
			free(986)
			free(987)

			// Necessary synchronization: pull the factors down and use
			// them immediately, ending the iteration's problem sequence.
			p.At(1010)
			if fail(p.Ctx.MemcpyD2H(result.Base(), devResult.Base(), 1024)) {
				return
			}
			if _, e := p.Read(result.Base(), 64, 1011); fail(e) {
				return
			}
			p.CPUWork(a.ModelWork)
		})
	}
	if err == nil {
		data, e := p.Host.Peek(result.Base(), 1024)
		if e != nil {
			return e
		}
		a.finalState.set(hashstore.Hash(data).Hex())
	}
	return err
}

// FinalState implements Checksummer.
func (a *CumfALS) FinalState() string { return a.finalState.get() }

func init() {
	register(Spec{
		Name:        "cumf_als",
		Description: "ALS matrix factorization (IBM/UIUC), MovieLens-10M-shaped workload",
		New:         func(scale float64, v Variant) proc.App { return NewCumfALS(scale, v) },
		Factory:     cumfFactory,
	})
}
