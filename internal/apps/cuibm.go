package apps

import (
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/hashstore"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// CuIBM models cuIBM [Layton et al., ParCFD'11]: a 2D Navier-Stokes solver
// using the immersed boundary method, run on the lid-driven cavity Re=5000
// case (§5.1). Its signature problem — also found manually in the authors'
// earlier CCGRID'18 study — is that Thrust/Cusp template functions allocate
// and free temporary device storage on *every* call, millions of times over
// a run, and each cudaFree synchronizes with the GPU:
//
//   - thrust::detail::contiguous_storage<T,Alloc> allocates per solve
//     (three calls per timestep across float/double instantiations);
//   - a thrust::pair-returning reduction temporary (twice per timestep);
//   - cusp::...::multiply's SpMV workspace (once per timestep);
//   - per-substep cudaDeviceSynchronize calls with real CPU work after
//     them;
//   - a pageable-destination cudaMemcpyAsync for the residual that
//     conditionally synchronizes, read only every fourth step;
//   - cudaFuncGetAttributes on every kernel launch (visible to HPCToolkit,
//     irrelevant to Diogenes).
//
// At full scale the call count crashes NVProf-sim (§5.2), as it did the
// real NVProf beyond ~75M calls.
//
// The Fixed variant installs the paper's remedy: a simple memory manager
// that reuses temporary regions, eliminating the synchronizing frees *and*
// the paired allocations — which is why the measured benefit (17.6%)
// exceeds the estimate Diogenes gave for the contiguous_storage fold
// (10.8%).
type CuIBM struct {
	Steps   int
	Variant Variant

	KernelDur     simtime.Duration
	ProjectionDur simtime.Duration
	VelocityDur   simtime.Duration
	ChurnBytes    int
	ResidualWork  simtime.Duration
	ComputeWork   simtime.Duration

	finalState checksum
}

// NewCuIBM builds the model at the given scale (scale 1.0 ≈ 4000 timesteps
// standing in for the full lid-driven cavity run).
func NewCuIBM(scale float64, v Variant) *CuIBM {
	return &CuIBM{
		Steps:         scaled(4000, scale),
		Variant:       v,
		KernelDur:     500 * simtime.Microsecond,
		ProjectionDur: 3 * simtime.Millisecond,
		VelocityDur:   1200 * simtime.Microsecond,
		ChurnBytes:    64 << 10,
		ResidualWork:  1800 * simtime.Microsecond,
		ComputeWork:   800 * simtime.Microsecond,
	}
}

// Name implements proc.App.
func (a *CuIBM) Name() string {
	if a.Variant == Fixed {
		return "cuibm(fixed)"
	}
	return "cuibm"
}

func cuibmFactory() proc.Factory {
	g := gpu.DefaultConfig()
	g.D2HBytesPerUS = 70 // 96 KiB residual block ≈ 1.4 ms
	g.H2DBytesPerUS = 40
	g.CopyLatency = 100 * simtime.Microsecond
	c := cuda.DefaultConfig()
	c.MallocCost = 250 * simtime.Microsecond
	c.FreeCost = 200 * simtime.Microsecond
	c.LaunchCost = 400 * simtime.Microsecond
	c.AttrCost = 200 * simtime.Microsecond
	return proc.Factory{GPU: g, CUDA: c}
}

// templateChurn describes one Thrust/Cusp call site that allocates and
// frees device storage per invocation.
type templateChurn struct {
	function string
	file     string
	line     int
	calls    int // invocations per timestep
}

var cuibmChurns = []templateChurn{
	{
		function: "thrust::detail::contiguous_storage<float, thrust::device_malloc_allocator<float>>::allocate",
		file:     "contiguous_storage.inl", line: 235, calls: 2,
	},
	{
		function: "thrust::detail::contiguous_storage<double, thrust::device_malloc_allocator<double>>::allocate",
		file:     "contiguous_storage.inl", line: 235, calls: 1,
	},
	{
		function: "thrust::pair<thrust::pointer<void, thrust::cuda_cub::tag>, unsigned long>",
		file:     "temporary_buffer.h", line: 76, calls: 2,
	},
	{
		function: "cusp::system::detail::generic::multiply<cusp::csr_matrix<int, double, cusp::device_memory>>",
		file:     "multiply.inl", line: 117, calls: 1,
	},
}

// Run implements proc.App.
func (a *CuIBM) Run(p *proc.Process) error {
	var err error
	fail := func(e error) bool {
		if e != nil && err == nil {
			err = e
		}
		return err != nil
	}

	residual := p.Host.Alloc(96<<10, "residual (pageable)")
	devResidual, err := p.Ctx.Malloc(96<<10, "dev residual")
	if err != nil {
		return err
	}
	devState, err := p.Ctx.Malloc(1<<20, "flow field")
	if err != nil {
		return err
	}

	// The fixed build's memory manager: one reusable region per call site.
	reuse := make(map[string]*gpu.DevBuf)
	if a.Variant == Fixed {
		for _, ch := range cuibmChurns {
			buf, e := p.Ctx.Malloc(a.ChurnBytes, "memory manager pool: "+ch.function)
			if fail(e) {
				return err
			}
			reuse[ch.function] = buf
		}
	}

	launch := func(name string, dur simtime.Duration, seed uint64) {
		p.Ctx.FuncGetAttributes(name)
		if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
			Name: name, Duration: dur, Stream: gpu.LegacyStream,
			Writes: []cuda.KernelWrite{{Ptr: devState.Base(), Size: 512, Seed: seed}},
		}); fail(e) {
			return
		}
	}

	// churn models one Thrust temporary-storage call: allocate, launch the
	// algorithm's kernel, free (which synchronizes with the queue).
	churn := func(ch templateChurn, seed uint64) {
		p.In(ch.function, ch.file, ch.line, func() {
			launch("thrust_kernel", a.KernelDur, seed)
			if err != nil {
				return
			}
			if a.Variant == Fixed {
				// Memory manager: reuse the pooled region; the bookkeeping
				// and the algorithm's own CPU work remain.
				p.CPUWork(50 * simtime.Microsecond)
				p.CPUWork(200 * simtime.Microsecond)
				return
			}
			buf, e := p.Ctx.Malloc(a.ChurnBytes, "thrust temporary")
			if fail(e) {
				return
			}
			p.CPUWork(200 * simtime.Microsecond)
			p.At(ch.line + 8)
			if fail(p.Ctx.Free(buf)) {
				return
			}
		})
	}

	for step := 0; step < a.Steps && err == nil; step++ {
		step := step
		p.In("NavierStokesSolver::stepTime", "NavierStokesSolver.cu", 140, func() {
			// The pressure-projection solve runs long on the device while
			// the CPU assembles the next system; it is what the template
			// functions' cudaFree calls end up waiting for — and it still
			// runs in the fixed build, so those waits shift rather than
			// disappear.
			p.At(150)
			launch("pressure_projection", a.ProjectionDur, uint64(step))
			if err != nil {
				return
			}

			// Advection/diffusion assembly with Thrust temporaries.
			for _, ch := range cuibmChurns {
				for c := 0; c < ch.calls; c++ {
					churn(ch, uint64(step*31+ch.line+c))
					if err != nil {
						return
					}
					p.CPUWork(a.ComputeWork / 4)
				}
			}

			// Sub-step synchronizations with real assembly work between
			// them: worth moving, partially recoverable.
			for s := 0; s < 3; s++ {
				p.At(180 + s)
				launch("velocity_update", a.VelocityDur, uint64(step*3+s))
				if err != nil {
					return
				}
				p.CPUWork(a.ComputeWork / 2)
				p.At(190 + s)
				p.Ctx.DeviceSynchronize()
				p.CPUWork(a.ComputeWork)
			}

			// Residual check: pageable-destination async copy that
			// conditionally synchronizes; consumed every fourth step only.
			p.At(220)
			if fail(p.Ctx.MemcpyAsyncD2H(residual.Base(), devResidual.Base(), 96<<10, gpu.LegacyStream)) {
				return
			}
			p.CPUWork(a.ResidualWork)
			if step%4 == 3 {
				if _, e := p.Read(residual.Base(), 64, 223); fail(e) {
					return
				}
			}

			// Necessary end-of-step synchronization: the solver reads the
			// updated flow field immediately after.
			p.At(240)
			if fail(p.Ctx.MemcpyD2H(residual.Base(), devState.Base(), 40<<10)) {
				return
			}
			if _, e := p.Read(residual.Base(), 64, 241); fail(e) {
				return
			}
		})
	}
	if err == nil {
		data, e := p.Host.Peek(residual.Base(), 40<<10)
		if e != nil {
			return e
		}
		a.finalState.set(hashstore.Hash(data).Hex())
	}
	return err
}

// FinalState implements Checksummer.
func (a *CuIBM) FinalState() string { return a.finalState.get() }

func init() {
	register(Spec{
		Name:        "cuibm",
		Description: "2D Navier-Stokes immersed-boundary solver (Boston U.), lid-driven cavity Re=5000",
		New:         func(scale float64, v Variant) proc.App { return NewCuIBM(scale, v) },
		Factory:     cuibmFactory,
	})
}
