package apps

import (
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// Extreme models the headline claim of the paper's introduction: "even in
// applications developed by expert GPU programmers, problematic
// synchronizations and memory transfers can account for as much as 85% of
// execution time in real world applications [Welton & Miller, CCGRID'18]".
//
// The pattern, taken from that earlier study's worst cases, is a tight
// solver loop whose every iteration re-uploads unchanged coefficient tables
// and synchronizes on a device that is long since idle: nearly all wall
// time is recoverable. It is not part of the Table 1/2 registry (the paper
// evaluates four applications); it backs the §1 reproduction test and makes
// a good stress input.
type Extreme struct {
	Iters int
}

// NewExtreme builds the workload (scale 1.0 ≈ 400 iterations).
func NewExtreme(scale float64) *Extreme {
	return &Extreme{Iters: scaled(400, scale)}
}

// Name implements proc.App.
func (a *Extreme) Name() string { return "extreme" }

// ExtremeFactory returns the machine model for the workload: a slow
// interconnect magnifying the cost of the repeated uploads.
func ExtremeFactory() proc.Factory {
	g := gpu.DefaultConfig()
	g.H2DBytesPerUS = 24 // 48 KiB table ≈ 2 ms
	g.CopyLatency = 80 * simtime.Microsecond
	c := cuda.DefaultConfig()
	c.FreeCost = 400 * simtime.Microsecond
	return proc.Factory{GPU: g, CUDA: c}
}

// Run implements proc.App.
func (a *Extreme) Run(p *proc.Process) error {
	const tableBytes = 48 << 10
	table := p.Host.Alloc(tableBytes, "coefficient table")
	out := p.Host.Alloc(4096, "out")
	fill := make([]byte, tableBytes)
	simtime.NewRNG(17).Bytes(fill)
	if err := p.Host.Poke(table.Base(), fill); err != nil {
		return err
	}
	devTable, err := p.Ctx.Malloc(tableBytes, "dev table")
	if err != nil {
		return err
	}
	devOut, err := p.Ctx.Malloc(4096, "dev out")
	if err != nil {
		return err
	}

	var runErr error
	for i := 0; i < a.Iters && runErr == nil; i++ {
		i := i
		p.In("solveStep", "extreme.cpp", 80, func() {
			// The kernel is short; the upload is long and unchanged.
			p.At(82)
			if runErr = p.Ctx.MemcpyH2D(devTable.Base(), table.Base(), tableBytes); runErr != nil {
				return
			}
			scratch, err := p.Ctx.Malloc(8<<10, "scratch")
			if err != nil {
				runErr = err
				return
			}
			p.At(85)
			if _, err := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "tiny_step", Duration: 120 * simtime.Microsecond, Stream: gpu.LegacyStream,
				Writes: []cuda.KernelWrite{{Ptr: devOut.Base(), Size: 64, Seed: uint64(i)}},
			}); err != nil {
				runErr = err
				return
			}
			// Belt-and-braces synchronization on an (almost) idle device.
			p.At(88)
			p.Ctx.DeviceSynchronize()
			p.At(89)
			if runErr = p.Ctx.Free(scratch); runErr != nil {
				return
			}
			p.CPUWork(150 * simtime.Microsecond)
		})
	}
	// One real result consumption at the end.
	p.In("finish", "extreme.cpp", 120, func() {
		if runErr != nil {
			return
		}
		p.At(122)
		if runErr = p.Ctx.MemcpyD2H(out.Base(), devOut.Base(), 64); runErr != nil {
			return
		}
		_, runErr = p.Read(out.Base(), 16, 123)
	})
	return runErr
}
