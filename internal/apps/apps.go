package apps

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// Variant selects the original (problematic) or fixed build of an
// application.
type Variant int

// Variants.
const (
	Original Variant = iota
	Fixed
)

// String names the variant.
func (v Variant) String() string {
	if v == Fixed {
		return "fixed"
	}
	return "original"
}

// Spec describes one modelled application.
type Spec struct {
	Name        string
	Description string
	// New builds the application at the given scale (1.0 = default
	// iteration counts; tests use small fractions).
	New func(scale float64, v Variant) proc.App
	// NewWith builds the application over an explicit process factory.
	// Multi-process applications (the MPI ones) spawn their other ranks
	// from it, so a factory carrying a Prepare hook reaches every rank.
	// Nil means the app is single-process and New suffices.
	NewWith func(scale float64, v Variant, f proc.Factory) proc.App
	// Factory returns the process configuration the application is
	// measured on (device bandwidths and driver costs are per-machine).
	Factory func() proc.Factory
	// MPI describes the multi-rank launch for applications modelled as
	// MPI programs; nil means the application is single-process and fleet
	// analysis does not apply.
	MPI *MPISpec
}

// MPISpec is the multi-rank launch description of an MPI-modelled
// application: how large a world it runs in by default, what its
// collectives cost, and how to build one fresh rank program.
type MPISpec struct {
	// DefaultRanks is the world size used when the caller does not pick
	// one (the size the registry's observed-rank app also runs at).
	DefaultRanks int
	// BarrierLatency is the per-superstep collective cost.
	BarrierLatency simtime.Duration
	// Program builds a fresh instance of the rank program at the given
	// scale. Each call must return an independent value: fleet analysis
	// runs one per rank pipeline concurrently.
	Program func(scale float64, v Variant) mpi.RankProgram
}

// Build constructs the application over the given factory, using NewWith
// when the application is factory-aware and New otherwise.
func (s Spec) Build(scale float64, v Variant, f proc.Factory) proc.App {
	if s.NewWith != nil {
		return s.NewWith(scale, v, f)
	}
	return s.New(scale, v)
}

var registry []Spec

func register(s Spec) { registry = append(registry, s) }

// Registry returns all modelled applications in Table 1 order.
func Registry() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].Name) < order(out[j].Name) })
	return out
}

func order(name string) int {
	for i, n := range []string{"cumf_als", "cuibm", "amg", "rodinia_gaussian"} {
		if n == name {
			return i
		}
	}
	return 99
}

// Must returns the named application spec, panicking if it is unknown.
// Intended for benchmarks and examples with hard-coded names.
func Must(name string) Spec {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// FactoryFor returns the registered machine configuration for an
// application name as it appears in a captured trace. MPI rank suffixes
// ("amg@rank0/2") are stripped before the lookup. ok is false for names
// with no registered spec (generative families, external traces) — replay
// then runs on the default machine, which is what produced those traces.
func FactoryFor(name string) (proc.Factory, bool) {
	if i := strings.IndexByte(name, '@'); i >= 0 {
		name = name[:i]
	}
	for _, s := range registry {
		if s.Name == name {
			return s.Factory(), true
		}
	}
	return proc.Factory{}, false
}

// ByName looks up an application spec.
func ByName(name string) (Spec, error) {
	for _, s := range registry {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("apps: unknown application %q", name)
}

// Checksummer is implemented by applications that record a digest of their
// computed results; tests use it to verify that a Fixed variant computes
// exactly what the Original did (the paper's correctness requirement for
// every applied fix, §5.1).
type Checksummer interface {
	// FinalState returns a digest of the application's results after Run,
	// or "" if Run has not completed.
	FinalState() string
}

// checksum is the synchronized result-digest cell the modelled applications
// record their FinalState into. A parallel FFM run executes the same App
// value concurrently from several collection stages (each in its own
// process); the digest every run computes is identical, but under the Go
// memory model the concurrent writes still need synchronization.
type checksum struct {
	mu sync.Mutex
	v  string
}

func (c *checksum) set(v string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.v = v
}

func (c *checksum) get() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// scaled returns max(1, round(n*scale)).
func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		return 1
	}
	return v
}
