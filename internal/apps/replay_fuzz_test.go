package apps_test

import (
	"bytes"
	"strings"
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/proc"
	"diogenes/internal/trace"
)

// FuzzReplay is the replay robustness contract: any trace document the
// strict reader accepts must replay without panicking. Returning an error
// (unknown function, oversized transfer, inconsistent timing) is fine —
// crashing the tool on a hand-edited or corrupted capture is not.
func FuzzReplay(f *testing.F) {
	// Seed with real captures: a modelled app and two generative families
	// exercise every record kind the replayer classifies.
	addCapture := func(app proc.App, factory proc.Factory) {
		cfg := ffm.DefaultConfig()
		cfg.Factory = factory
		rep, err := ffm.Run(app, cfg)
		if err != nil {
			f.Fatalf("seed capture: %v", err)
		}
		var doc bytes.Buffer
		if err := rep.Trace.WriteJSON(&doc); err != nil {
			f.Fatalf("seed export: %v", err)
		}
		f.Add(doc.String())
	}
	gaussian := apps.Must("rodinia_gaussian")
	addCapture(gaussian.Build(0.02, apps.Original, gaussian.Factory()), gaussian.Factory())
	for _, name := range []string{"multi-stream", "thrust-churn"} {
		fam, err := apps.FamilyByName(name)
		if err != nil {
			f.Fatal(err)
		}
		addCapture(fam.New(1, 10, proc.DefaultFactory()), proc.DefaultFactory())
	}
	// Hand-written corner cases: empty run, unknown function, zero-byte
	// copy, wait shorter than its own transfer, access without a site.
	f.Add(`{"app":"x","execTime":1000}`)
	f.Add(`{"app":"x","execTime":1000,"records":[{"seq":1,"func":"cudaBogus","class":"sync","entry":10,"exit":20}]}`)
	f.Add(`{"app":"x","execTime":1000,"records":[{"seq":1,"func":"cudaMemcpy","class":"transfer","dir":"HtoD","entry":10,"exit":20}]}`)
	f.Add(`{"app":"x","execTime":9000,"records":[{"seq":1,"func":"cudaMemcpy","class":"transfer","dir":"DtoH","bytes":4096,"entry":10,"exit":5000,"syncWait":1,"protectedAccess":true,"firstUse":100}]}`)
	f.Add(`{"app":"x","execTime":500,"records":[{"seq":1,"func":"cudaDeviceSynchronize","class":"sync","entry":400,"exit":450,"syncWait":40,"stack":[{"function":"a","file":"f.c","line":1},{"function":"b","file":"f.c","line":2}]}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		run, err := trace.ReadJSON(strings.NewReader(input))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		p := proc.DefaultFactory().New()
		// SafeRun converts simulated deadlocks to errors; any other panic
		// propagates and fails the fuzz run.
		_ = proc.SafeRun(apps.NewReplayApp(run), p)
	})
}
