package apps

import (
	"testing"

	"diogenes/internal/cuda"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// tinyScale keeps unit-test workloads to a handful of iterations.
const tinyScale = 0.02

func runApp(t *testing.T, name string, v Variant) simtime.Duration {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Factory().New()
	if err := spec.New(tinyScale, v).Run(p); err != nil {
		t.Fatalf("%s(%v): %v", name, v, err)
	}
	return p.ExecTime()
}

func TestRegistryOrder(t *testing.T) {
	reg := Registry()
	if len(reg) != 4 {
		t.Fatalf("registry has %d apps, want 4", len(reg))
	}
	want := []string{"cumf_als", "cuibm", "amg", "rodinia_gaussian"}
	for i, name := range want {
		if reg[i].Name != name {
			t.Fatalf("registry[%d] = %q, want %q", i, reg[i].Name, name)
		}
		if reg[i].Description == "" {
			t.Fatalf("%s missing description", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("hpl"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestAllAppsRunBothVariants(t *testing.T) {
	for _, spec := range Registry() {
		for _, v := range []Variant{Original, Fixed} {
			if d := runApp(t, spec.Name, v); d <= 0 {
				t.Fatalf("%s(%v) took no time", spec.Name, v)
			}
		}
	}
}

func TestFixedVariantsAreFaster(t *testing.T) {
	for _, spec := range Registry() {
		orig := runApp(t, spec.Name, Original)
		fixed := runApp(t, spec.Name, Fixed)
		if fixed >= orig {
			t.Errorf("%s: fixed (%v) not faster than original (%v)", spec.Name, fixed, orig)
		}
	}
}

func TestAppsAreDeterministic(t *testing.T) {
	for _, spec := range Registry() {
		a := runApp(t, spec.Name, Original)
		b := runApp(t, spec.Name, Original)
		if a != b {
			t.Errorf("%s: runs differ: %v vs %v", spec.Name, a, b)
		}
	}
}

func TestVariantNames(t *testing.T) {
	if Original.String() != "original" || Fixed.String() != "fixed" {
		t.Fatal("variant strings wrong")
	}
	app := NewCumfALS(tinyScale, Fixed)
	if app.Name() != "cumf_als(fixed)" {
		t.Fatalf("Name = %q", app.Name())
	}
	if NewCuIBM(tinyScale, Fixed).Name() != "cuibm(fixed)" ||
		NewAMG(tinyScale, Fixed).Name() != "amg(fixed)" ||
		NewRodiniaGaussian(tinyScale, Fixed).Name() != "rodinia_gaussian(fixed)" {
		t.Fatal("fixed names wrong")
	}
}

func TestScaledBounds(t *testing.T) {
	if scaled(100, 0) != 1 {
		t.Fatal("zero scale should clamp to 1")
	}
	if scaled(100, 1) != 100 || scaled(100, 0.5) != 50 {
		t.Fatal("scaled wrong")
	}
}

func TestCumfALSCallMix(t *testing.T) {
	spec, _ := ByName("cumf_als")
	p := spec.Factory().New()
	app := NewCumfALS(0, Original) // one iteration
	if err := app.Run(p); err != nil {
		t.Fatal(err)
	}
	counts := p.Ctx.CallCounts()
	if counts["cudaFree"] != 17 {
		t.Errorf("cudaFree = %d, want 17 per iteration", counts["cudaFree"])
	}
	// 5 dev tiles + 1 result + 17 temps.
	if counts["cudaMalloc"] != 23 {
		t.Errorf("cudaMalloc = %d, want 23", counts["cudaMalloc"])
	}
	// 5 uploads + 1 readback.
	if counts["cudaMemcpy"] != 6 {
		t.Errorf("cudaMemcpy = %d, want 6", counts["cudaMemcpy"])
	}
	if counts["cudaDeviceSynchronize"] != 1 {
		t.Errorf("cudaDeviceSynchronize = %d, want 1", counts["cudaDeviceSynchronize"])
	}
}

func TestCumfALSFixedSkipsHoistedChurn(t *testing.T) {
	spec, _ := ByName("cumf_als")
	orig, fixed := spec.Factory().New(), spec.Factory().New()
	if err := NewCumfALS(0, Original).Run(orig); err != nil {
		t.Fatal(err)
	}
	if err := NewCumfALS(0, Fixed).Run(fixed); err != nil {
		t.Fatal(err)
	}
	co, cf := orig.Ctx.CallCounts(), fixed.Ctx.CallCounts()
	if cf["cudaFree"] >= co["cudaFree"] {
		t.Fatalf("fixed frees %d not fewer than original %d", cf["cudaFree"], co["cudaFree"])
	}
	// 11 of 17 free lines are hoisted (line 856 plus the ten late ones).
	if cf["cudaFree"] != 6 {
		t.Fatalf("fixed cudaFree = %d, want 6", cf["cudaFree"])
	}
	// The fixed build keeps the line-877 synchronization.
	if cf["cudaDeviceSynchronize"] != co["cudaDeviceSynchronize"] {
		t.Fatal("fixed build dropped the device synchronization")
	}
}

func TestCuIBMChurnSites(t *testing.T) {
	spec, _ := ByName("cuibm")
	p := spec.Factory().New()
	var leaves []string
	p.Ctx.SetStackCapture(true)
	attachFreeStackProbe(p, &leaves)
	if err := NewCuIBM(0, Original).Run(p); err != nil {
		t.Fatal(err)
	}
	foundTemplate := false
	for _, l := range leaves {
		if l == "thrust::detail::contiguous_storage<float, thrust::device_malloc_allocator<float>>::allocate" {
			foundTemplate = true
		}
	}
	if !foundTemplate {
		t.Fatalf("no contiguous_storage frame on cudaFree stacks: %v", leaves)
	}
}

func TestAMGManagedMemsetOnlyInOriginal(t *testing.T) {
	spec, _ := ByName("amg")
	orig, fixed := spec.Factory().New(), spec.Factory().New()
	if err := NewAMG(0, Original).Run(orig); err != nil {
		t.Fatal(err)
	}
	if err := NewAMG(0, Fixed).Run(fixed); err != nil {
		t.Fatal(err)
	}
	if orig.Ctx.CallCounts()["cudaMemset"] == 0 {
		t.Fatal("original AMG performs no cudaMemset")
	}
	if fixed.Ctx.CallCounts()["cudaMemset"] != 0 {
		t.Fatal("fixed AMG still calls cudaMemset")
	}
}

func TestRodiniaFixedDropsThreadSync(t *testing.T) {
	spec, _ := ByName("rodinia_gaussian")
	orig, fixed := spec.Factory().New(), spec.Factory().New()
	if err := NewRodiniaGaussian(0.01, Original).Run(orig); err != nil {
		t.Fatal(err)
	}
	if err := NewRodiniaGaussian(0.01, Fixed).Run(fixed); err != nil {
		t.Fatal(err)
	}
	if orig.Ctx.CallCounts()["cudaThreadSynchronize"] == 0 {
		t.Fatal("original gaussian never calls cudaThreadSynchronize")
	}
	if fixed.Ctx.CallCounts()["cudaThreadSynchronize"] != 0 {
		t.Fatal("fixed gaussian still synchronizes per row")
	}
	if fixed.Ctx.CallCounts()["cudaLaunchKernel"] != orig.Ctx.CallCounts()["cudaLaunchKernel"] {
		t.Fatal("fix changed the kernel work")
	}
}

func attachFreeStackProbe(p *proc.Process, leaves *[]string) {
	p.Ctx.AttachProbe(cuda.FuncFree, cuda.Probe{Exit: func(c *cuda.Call) {
		*leaves = append(*leaves, c.Stack.Leaf().Function)
	}})
}

// checkableApp is an application that also digests its results.
type checkableApp interface {
	proc.App
	Checksummer
}

// TestFixesPreserveResults is the §5.1 correctness requirement applied to
// the modelled fixes: each Fixed variant must compute byte-identical
// results to the Original.
func TestFixesPreserveResults(t *testing.T) {
	builders := map[string]func(Variant) checkableApp{
		"cumf_als":         func(v Variant) checkableApp { return NewCumfALS(tinyScale, v) },
		"cuibm":            func(v Variant) checkableApp { return NewCuIBM(tinyScale, v) },
		"amg":              func(v Variant) checkableApp { return NewAMG(tinyScale, v) },
		"rodinia_gaussian": func(v Variant) checkableApp { return NewRodiniaGaussian(tinyScale, v) },
	}
	for name, build := range builders {
		spec, _ := ByName(name)
		digests := map[Variant]string{}
		for _, v := range []Variant{Original, Fixed} {
			app := build(v)
			p := spec.Factory().New()
			if err := app.Run(p); err != nil {
				t.Fatalf("%s(%v): %v", name, v, err)
			}
			d := app.FinalState()
			if d == "" {
				t.Fatalf("%s(%v): no final-state digest", name, v)
			}
			digests[v] = d
		}
		if digests[Original] != digests[Fixed] {
			t.Errorf("%s: fix changed results: %s vs %s",
				name, digests[Original][:12], digests[Fixed][:12])
		}
	}
}

func TestExtremeWorkload(t *testing.T) {
	p := ExtremeFactory().New()
	app := NewExtreme(0.05)
	if err := app.Run(p); err != nil {
		t.Fatal(err)
	}
	counts := p.Ctx.CallCounts()
	if counts["cudaMemcpy"] < 20 || counts["cudaFree"] < 20 || counts["cudaDeviceSynchronize"] < 20 {
		t.Fatalf("call mix off: %v", counts)
	}
	// Determinism.
	p2 := ExtremeFactory().New()
	if err := NewExtreme(0.05).Run(p2); err != nil {
		t.Fatal(err)
	}
	if p.ExecTime() != p2.ExecTime() {
		t.Fatal("extreme workload nondeterministic")
	}
}

func TestRandomAppDeterministicAndSeedSensitive(t *testing.T) {
	run := func(seed uint64) simtime.Duration {
		p := proc.DefaultFactory().New()
		if err := NewRandomApp(seed, 60).Run(p); err != nil {
			t.Fatal(err)
		}
		return p.ExecTime()
	}
	if run(5) != run(5) {
		t.Fatal("same seed diverged")
	}
	if run(5) == run(6) {
		t.Fatal("different seeds produced identical timing (suspicious)")
	}
}

func TestRandomAppMultiDevice(t *testing.T) {
	f := proc.DefaultFactory()
	f.Devices = 3
	p := f.New()
	app := NewRandomApp(9, 80)
	app.MaxDevices = 3
	if err := app.Run(p); err != nil {
		t.Fatal(err)
	}
	if p.Ctx.CallCounts()["cudaSetDevice"] == 0 {
		t.Fatal("multi-device random app never switched devices")
	}
}
