package apps

import (
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/hashstore"
	"diogenes/internal/memory"
	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// AMG models LLNL's algebraic multigrid benchmark (§5.1) running the ij
// matrix problem. The headline finding: AMG zeroes its unified-memory
// accumulation buffers with cudaMemset every cycle, and cudaMemset
// *conditionally synchronizes* when applied to a managed address — a wait
// CUPTI never reports. Since the pages were CPU-resident anyway, the fix is
// replacing the call with a plain C memset.
//
// Secondary problems match Table 2: per-cycle cudaFree of coarse-level
// temporaries with smoother kernels still in flight, and partially
// unnecessary cudaStreamSynchronize calls.
//
// The Fixed variant replaces the managed cudaMemset with a host-side fill.
type AMG struct {
	Cycles  int
	Variant Variant

	SmootherDur  simtime.Duration
	ResidualDur  simtime.Duration
	BoundaryDur  simtime.Duration
	CPUAssembly  simtime.Duration
	ManagedBytes int

	finalState checksum
}

// NewAMG builds the model at the given scale (scale 1.0 ≈ 120 V-cycles of
// the ij benchmark).
func NewAMG(scale float64, v Variant) *AMG {
	return &AMG{
		Cycles:       scaled(120, scale),
		Variant:      v,
		SmootherDur:  1100 * simtime.Microsecond,
		ResidualDur:  600 * simtime.Microsecond,
		BoundaryDur:  2300 * simtime.Microsecond,
		CPUAssembly:  6000 * simtime.Microsecond,
		ManagedBytes: 256 << 10,
	}
}

// Name implements proc.App.
func (a *AMG) Name() string {
	if a.Variant == Fixed {
		return "amg(fixed)"
	}
	return "amg"
}

func amgFactory() proc.Factory {
	g := gpu.DefaultConfig()
	g.MemsetBytesPerUS = 1500 // 256 KiB managed fill ≈ 0.17 ms device-side
	g.D2HBytesPerUS = 50
	c := cuda.DefaultConfig()
	c.FreeCost = 500 * simtime.Microsecond
	c.MallocCost = 400 * simtime.Microsecond
	c.ManagedAllocCost = 700 * simtime.Microsecond
	return proc.Factory{GPU: g, CUDA: c}
}

// amgState is one rank's device-side state.
type amgState struct {
	accum        *memory.Region
	smoothStream gpu.StreamID
	residStream  gpu.StreamID
	residHost    *memory.Region
	devResid     *gpu.DevBuf
}

// Setup allocates one rank's buffers and streams (mpi.RankProgram).
func (a *AMG) Setup(p *proc.Process, rank int) (mpi.RankState, error) {
	st := &amgState{}
	var err error
	// Unified-memory accumulation buffers (hypre's managed pools).
	if st.accum, err = p.Ctx.MallocManaged(a.ManagedBytes, "managed accumulator"); err != nil {
		return nil, err
	}
	if _, err = p.Ctx.MallocManaged(a.ManagedBytes, "managed workspace"); err != nil {
		return nil, err
	}
	st.smoothStream = p.Ctx.StreamCreate()
	st.residStream = p.Ctx.StreamCreate()
	st.residHost = p.Ctx.MallocHost(8<<10, "residual (pinned)")
	if st.devResid, err = p.Ctx.Malloc(8<<10, "dev residual"); err != nil {
		return nil, err
	}
	if _, err = p.Ctx.Malloc(1<<20, "coarse grids"); err != nil {
		return nil, err
	}
	return st, nil
}

// Steps implements mpi.RankProgram: one superstep per V-cycle.
func (a *AMG) Steps() int { return a.Cycles }

// Step executes one V-cycle on one rank (mpi.RankProgram). Every rank does
// identical work — the ij benchmark is weakly scaled — so the per-cycle
// allreduce adds only its latency.
func (a *AMG) Step(p *proc.Process, rank int, state mpi.RankState, cycle int) error {
	st := state.(*amgState)
	accum, smoothStream, residStream := st.accum, st.smoothStream, st.residStream
	residHost, devResid := st.residHost, st.devResid
	var err error
	fail := func(e error) bool {
		if e != nil && err == nil {
			err = e
		}
		return err != nil
	}
	{
		p.In("hypre_BoomerAMGCycle", "par_cycle.c", 310, func() {
			// Zero the accumulators. On a unified address this performs an
			// unreported conditional synchronization, waiting out the
			// previous cycle's smoother kernels on smoothStream.
			p.At(331)
			if a.Variant == Fixed {
				// The paper's fix: plain memset on the CPU-resident pages.
				fill := make([]byte, a.ManagedBytes)
				if fail(p.Host.Poke(accum.Base(), fill)) {
					return
				}
				p.CPUWork(120 * simtime.Microsecond)
			} else {
				if fail(p.Ctx.MemsetManaged(accum.Base(), 0, a.ManagedBytes)) {
					return
				}
			}
			// Short setup stretch: the next synchronization (the first
			// cudaFree) follows soon, which is what bounds Diogenes'
			// estimate for the memset well below its call time.
			p.CPUWork(1000 * simtime.Microsecond)

			// Coarse-level temporary released early in the cycle, while
			// the previous cycle's inter-grid kernel may still be running.
			buf0, e0 := p.Ctx.Malloc(64<<10, "coarse temp A")
			if fail(e0) {
				return
			}
			p.At(366)
			if fail(p.Ctx.Free(buf0)) {
				return
			}
			p.CPUWork(450 * simtime.Microsecond)

			// Per-level relaxation sweeps on the smoother stream; they run
			// long past this cycle's CPU work.
			for lvl := 0; lvl < 3; lvl++ {
				p.At(350 + lvl)
				if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
					Name: "relax_sweep", Duration: a.SmootherDur, Stream: smoothStream,
				}); fail(e) {
					return
				}
				p.CPUWork(a.CPUAssembly / 6)
			}

			// Second temporary freed while the smoothers run: an implicit
			// synchronization with real work after it.
			buf1, e1 := p.Ctx.Malloc(64<<10, "coarse temp B")
			if fail(e1) {
				return
			}
			p.CPUWork(a.CPUAssembly / 8)
			p.At(403)
			if fail(p.Ctx.Free(buf1)) {
				return
			}
			p.CPUWork(450 * simtime.Microsecond)

			// Residual norm on its own stream: pinned async copy, stream
			// sync, immediate read — a necessary, well-placed wait.
			p.At(430)
			if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "residual_norm", Duration: a.ResidualDur, Stream: residStream,
				Writes: []cuda.KernelWrite{{Ptr: devResid.Base(), Size: 256, Seed: uint64(cycle)}},
			}); fail(e) {
				return
			}
			if fail(p.Ctx.MemcpyAsyncD2H(residHost.Base(), devResid.Base(), 8<<10, residStream)) {
				return
			}
			p.At(434)
			p.Ctx.StreamSynchronize(residStream)
			if _, e := p.Read(residHost.Base(), 32, 435); fail(e) {
				return
			}
			p.CPUWork(a.CPUAssembly / 2)

			// Inter-grid transfer kernel launched at the very end of the
			// cycle: it is still running when the next cycle's managed
			// cudaMemset arrives, which is what that memset silently waits
			// for.
			p.At(460)
			if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "interp_restrict", Duration: a.BoundaryDur, Stream: smoothStream,
			}); fail(e) {
				return
			}
			p.CPUWork(a.CPUAssembly / 8)
		})
	}
	return err
}

// Run implements proc.App for a single-process (1-rank) execution; the
// registry wraps the program in a 2-rank MPI world (see init).
func (a *AMG) Run(p *proc.Process) error {
	st, err := a.Setup(p, 0)
	if err != nil {
		return err
	}
	for cycle := 0; cycle < a.Cycles; cycle++ {
		if err := a.Step(p, 0, st, cycle); err != nil {
			return err
		}
	}
	data, err := p.Host.Peek(st.(*amgState).residHost.Base(), 8<<10)
	if err != nil {
		return err
	}
	a.finalState.set(hashstore.Hash(data).Hex())
	return nil
}

// FinalState implements Checksummer. It reflects the most recent
// single-process Run; the MPI wrapper records rank 0's digest through Step
// only, so registry users should compare via the direct Run path.
func (a *AMG) FinalState() string { return a.finalState.get() }

// amgRanks is the simulated MPI world size: AMG is "an MPI based parallel
// algebraic multigrid solver"; the tool instruments rank 0's process while
// the other rank runs alongside, its per-cycle allreduce showing up as
// small gaps on the observed rank.
const amgRanks = 2

// amgBarrierLatency is the modelled per-cycle allreduce cost.
const amgBarrierLatency = 25 * simtime.Microsecond

func amgMPIApp(scale float64, v Variant, f proc.Factory) proc.App {
	return mpi.App(NewAMG(scale, v), mpi.Config{
		Ranks:          amgRanks,
		BarrierLatency: amgBarrierLatency,
		Factory:        f,
	}, 0)
}

func init() {
	register(Spec{
		Name:        "amg",
		Description: "algebraic multigrid solver (LLNL, MPI), ij matrix benchmark",
		New: func(scale float64, v Variant) proc.App {
			return amgMPIApp(scale, v, amgFactory())
		},
		NewWith: amgMPIApp,
		Factory: amgFactory,
		MPI: &MPISpec{
			DefaultRanks:   amgRanks,
			BarrierLatency: amgBarrierLatency,
			Program: func(scale float64, v Variant) mpi.RankProgram {
				return NewAMG(scale, v)
			},
		},
	})
}
