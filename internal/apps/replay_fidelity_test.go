package apps_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/report"
	"diogenes/internal/trace"
)

// updateReplayGolden rewrites the committed replay golden files:
// go test ./internal/apps -run ReplayFidelity -update
var updateReplayGolden = flag.Bool("update", false, "rewrite replay fidelity golden files")

// fidelityScale keeps the captured traces small while exercising every
// modelled application's full call vocabulary.
const fidelityScale = 0.05

// renderAnalysis renders every analysis section the CLI prints for a run —
// the surface the replay fidelity claim is made over. (Raw stage times and
// call totals are run artifacts, not analysis results, and differ between
// an application and its replay.)
func renderAnalysis(t *testing.T, a *ffm.Analysis) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.Overview(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := report.Savings(&buf, a); err != nil {
		t.Fatal(err)
	}
	for _, s := range a.StaticSequences() {
		if err := report.Sequence(&buf, a, s); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range a.APIFolds() {
		if err := report.ExpandFold(&buf, a, f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// captureTrace runs the FFM pipeline on an application and round-trips the
// annotated trace through its JSON interchange form — replay consumes
// exactly what a `diogenes run -records` file would contain.
func captureTrace(t *testing.T, spec apps.Spec, scale float64) (*ffm.Report, *trace.Run, ffm.Config) {
	t.Helper()
	cfg := ffm.DefaultConfig()
	cfg.Factory = spec.Factory()
	rep, err := ffm.Run(spec.Build(scale, apps.Original, cfg.Factory), cfg)
	if err != nil {
		t.Fatalf("capture run: %v", err)
	}
	var doc bytes.Buffer
	if err := rep.Trace.WriteJSON(&doc); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	run, err := trace.ReadJSON(&doc)
	if err != nil {
		t.Fatalf("trace import: %v", err)
	}
	return rep, run, cfg
}

// diffLines reports the first divergence between two renderings, with
// context, so a fidelity break points at the guilty section immediately.
func diffLines(t *testing.T, want, got []byte) {
	t.Helper()
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(w[i], g[i]) {
			t.Fatalf("first divergence at line %d:\noriginal: %s\nreplay:   %s", i+1, w[i], g[i])
		}
	}
	t.Fatalf("renderings differ in length: original %d lines, replay %d lines", len(w), len(g))
}

// TestReplayFidelity is the headline replay claim: replaying a modelled
// application's captured trace under the application's own machine
// configuration reproduces the application's FFM analysis byte for byte.
// The rendering is also pinned by committed golden files so a behaviour
// drift in either the apps or the replayer shows up as a diff.
func TestReplayFidelity(t *testing.T) {
	for _, name := range []string{"cumf_als", "cuibm", "amg", "rodinia_gaussian"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			orig, run, cfg := captureTrace(t, apps.Must(name), fidelityScale)
			want := renderAnalysis(t, orig.Analysis)

			replayed, err := ffm.Run(apps.NewReplayApp(run), cfg)
			if err != nil {
				t.Fatalf("replay run: %v", err)
			}
			got := renderAnalysis(t, replayed.Analysis)
			if !bytes.Equal(want, got) {
				diffLines(t, want, got)
			}

			path := filepath.Join("testdata", fmt.Sprintf("replay_%s.golden", name))
			if *updateReplayGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden missing (run with -update to create): %v", err)
			}
			if !bytes.Equal(golden, got) {
				t.Fatalf("replay analysis drifted from committed golden %s;\nrun with -update if the change is intended", path)
			}
		})
	}
}
