package apps

import (
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/hashstore"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// RodiniaGaussian models the Gaussian-elimination GPU benchmark from the
// Rodinia suite (§5.1). The forward-elimination loop launches the Fan1 and
// Fan2 kernels for every row and calls the deprecated
// cudaThreadSynchronize after each — a synchronization whose protected data
// is only consumed after the loop. NVProf attributes ~95% of execution to
// cudaThreadSynchronize; Diogenes estimates only ~2% is recoverable,
// because almost no CPU work separates consecutive synchronizations: each
// removed wait simply reappears at the next one (the Figure 4 small-benefit
// case). The paper's fix — commenting the call out — recovered 2.1%.
//
// A small per-row re-upload of the unchanged multiplier block supplies the
// duplicate-transfer savings of Table 2's cudaMemcpy row.
type RodiniaGaussian struct {
	Rows    int
	Variant Variant

	Fan1Dur  simtime.Duration
	Fan2Dur  simtime.Duration
	RowWork  simtime.Duration
	MulBytes int

	finalState checksum
}

// NewRodiniaGaussian builds the model at the given scale (scale 1.0 ≈ a
// 400-row matrix).
func NewRodiniaGaussian(scale float64, v Variant) *RodiniaGaussian {
	return &RodiniaGaussian{
		Rows:     scaled(400, scale),
		Variant:  v,
		Fan1Dur:  2 * simtime.Millisecond,
		Fan2Dur:  12 * simtime.Millisecond,
		RowWork:  150 * simtime.Microsecond,
		MulBytes: 8 << 10,
	}
}

// Name implements proc.App.
func (a *RodiniaGaussian) Name() string {
	if a.Variant == Fixed {
		return "rodinia_gaussian(fixed)"
	}
	return "rodinia_gaussian"
}

func rodiniaFactory() proc.Factory {
	g := gpu.DefaultConfig()
	g.H2DBytesPerUS = 60 // 8 KiB block ≈ 0.13 ms
	g.CopyLatency = 15 * simtime.Microsecond
	return proc.Factory{GPU: g, CUDA: cuda.DefaultConfig()}
}

// Run implements proc.App.
func (a *RodiniaGaussian) Run(p *proc.Process) error {
	var err error
	fail := func(e error) bool {
		if e != nil && err == nil {
			err = e
		}
		return err != nil
	}

	matBytes := 256 << 10
	hostA := p.Host.Alloc(matBytes, "matrix a")
	hostB := p.Host.Alloc(matBytes/16, "vector b")
	hostM := p.Host.Alloc(a.MulBytes, "multiplier block m")
	fill := make([]byte, matBytes)
	simtime.NewRNG(42).Bytes(fill)
	if err := p.Host.Poke(hostA.Base(), fill[:matBytes]); err != nil {
		return err
	}
	if err := p.Host.Poke(hostM.Base(), fill[:a.MulBytes]); err != nil {
		return err
	}

	var devA, devB, devM *gpu.DevBuf
	p.In("main", "gaussian.cu", 250, func() {
		if devA, err = p.Ctx.Malloc(matBytes, "m_cuda a"); err != nil {
			return
		}
		if devB, err = p.Ctx.Malloc(matBytes/16, "m_cuda b"); err != nil {
			return
		}
		if devM, err = p.Ctx.Malloc(a.MulBytes, "m_cuda m"); err != nil {
			return
		}
		p.At(260)
		if fail(p.Ctx.MemcpyH2D(devA.Base(), hostA.Base(), matBytes)) {
			return
		}
		p.At(261)
		if fail(p.Ctx.MemcpyH2D(devB.Base(), hostB.Base(), matBytes/16)) {
			return
		}
	})
	if err != nil {
		return err
	}

	p.In("ForwardSub", "gaussian.cu", 300, func() {
		for t := 0; t < a.Rows && err == nil; t++ {
			// The multiplier block is re-uploaded unchanged every row:
			// a duplicate transfer after the first.
			p.At(308)
			if fail(p.Ctx.MemcpyH2D(devM.Base(), hostM.Base(), a.MulBytes)) {
				return
			}
			p.At(310)
			if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "Fan1", Duration: a.Fan1Dur, Stream: gpu.LegacyStream,
			}); fail(e) {
				return
			}
			if a.Variant != Fixed {
				p.At(311)
				p.Ctx.ThreadSynchronize()
			}
			p.CPUWork(a.RowWork)
			p.At(313)
			if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
				Name: "Fan2", Duration: a.Fan2Dur, Stream: gpu.LegacyStream,
				Writes: []cuda.KernelWrite{{Ptr: devA.Base(), Size: 256, Seed: uint64(t)}},
			}); fail(e) {
				return
			}
			if a.Variant != Fixed {
				p.At(315)
				p.Ctx.ThreadSynchronize()
			}
			p.CPUWork(a.RowWork)
		}
	})
	if err != nil {
		return err
	}

	p.In("BackSub", "gaussian.cu", 350, func() {
		// Final readback: necessary synchronization, result used at once.
		p.At(355)
		if fail(p.Ctx.MemcpyD2H(hostA.Base(), devA.Base(), 4096)) {
			return
		}
		if _, e := p.Read(hostA.Base(), 128, 356); fail(e) {
			return
		}
		p.CPUWork(2 * simtime.Millisecond)
		p.At(365)
		if fail(p.Ctx.Free(devA)) {
			return
		}
		if fail(p.Ctx.Free(devB)) {
			return
		}
		if fail(p.Ctx.Free(devM)) {
			return
		}
	})
	if err == nil {
		data, e := p.Host.Peek(hostA.Base(), 4096)
		if e != nil {
			return e
		}
		a.finalState.set(hashstore.Hash(data).Hex())
	}
	return err
}

// FinalState implements Checksummer.
func (a *RodiniaGaussian) FinalState() string { return a.finalState.get() }

func init() {
	register(Spec{
		Name:        "rodinia_gaussian",
		Description: "Rodinia Gaussian elimination GPU benchmark (UVA)",
		New:         func(scale float64, v Variant) proc.App { return NewRodiniaGaussian(scale, v) },
		Factory:     rodiniaFactory,
	})
}
