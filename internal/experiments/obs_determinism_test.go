package experiments

import (
	"bytes"
	"testing"

	"diogenes/internal/obs"
)

// chromeBytes runs one app through an engine carrying a fresh observer and
// returns the Chrome trace export.
func chromeBytes(t *testing.T, eng *Engine, name string) []byte {
	t.Helper()
	o := obs.New("diogenes")
	eng.SetObserver(o)
	if _, err := eng.RunApp(name, goldenScale); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.Trace().Chrome().Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObsTraceDeterministic extends the determinism claim to the
// self-measurement layer: the Chrome span trace recorded while running a
// pipeline is byte-identical between the serial engine and a four-worker
// engine with concurrent collection stages. Spans carry only virtual-time
// placement in the export, so scheduling cannot leak into it.
func TestObsTraceDeterministic(t *testing.T) {
	serial := chromeBytes(t, &Engine{Workers: 1}, "rodinia_gaussian")
	parallel := chromeBytes(t, NewEngine(4), "rodinia_gaussian")
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("span trace differs between serial and parallel engines (%d vs %d bytes)",
			len(serial), len(parallel))
	}

	f, err := obs.ReadChrome(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{
		"reference", "stage1-baseline", "stage2-detailed-tracing",
		"stage3-memory-tracing", "stage4-sync-use", "stage5-analysis",
	} {
		if len(f.EventsNamed(stage)) == 0 {
			t.Errorf("trace missing stage span %q", stage)
		}
	}
}

// TestObsZeroPerturbation proves observing a run never changes it: the full
// report JSON from an instrumented pipeline is byte-identical to the report
// from an unobserved one. The self-measurement layer reads the pipeline;
// it must not steer it.
func TestObsZeroPerturbation(t *testing.T) {
	plain := &Engine{Workers: 1}
	observed := &Engine{Workers: 1}
	observed.SetObserver(obs.New("diogenes"))
	for _, name := range []string{"rodinia_gaussian", "amg"} {
		pRep, err := plain.RunApp(name, goldenScale)
		if err != nil {
			t.Fatal(err)
		}
		oRep, err := observed.RunApp(name, goldenScale)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reportJSON(t, pRep), reportJSON(t, oRep)) {
			t.Fatalf("%s: attaching an observer changed the report", name)
		}
	}
}

// TestObsCacheHitRecordsNoSpans pins the honesty rule: a cached report is
// returned without running the pipeline, so no stage spans may appear for
// the second request.
func TestObsCacheHitRecordsNoSpans(t *testing.T) {
	eng := NewEngine(1)
	eng.StageWorkers = 0
	o1 := obs.New("diogenes")
	eng.SetObserver(o1)
	if _, err := eng.RunApp("rodinia_gaussian", goldenScale); err != nil {
		t.Fatal(err)
	}
	if len(o1.Root().Children()) == 0 {
		t.Fatal("first (miss) run recorded no spans")
	}

	o2 := obs.New("diogenes")
	eng.SetObserver(o2)
	if _, err := eng.RunApp("rodinia_gaussian", goldenScale); err != nil {
		t.Fatal(err)
	}
	if n := len(o2.Root().Children()); n != 0 {
		t.Fatalf("cache hit recorded %d spans; a hit means no pipeline ran", n)
	}
	if o2.Metrics().Counter("cache/hits").Value() != 1 {
		t.Fatal("cache hit not booked on cache/hits")
	}
}
