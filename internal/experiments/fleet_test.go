package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"diogenes/internal/apps"
	"diogenes/internal/cuda"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// fleetJSON serializes a fleet report.
func fleetJSON(t *testing.T, fr *ffm.FleetReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetDeterministicAcrossWorkers is the fleet determinism claim: the
// all-ranks analysis is byte-identical whether the rank pipelines run
// serially or fan out over 4 or 8 workers (with stage-level parallelism
// inside each pipeline), and matches the committed golden file.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		eng := NewEngine(workers)
		fr, err := eng.Fleet("amg", goldenScale, 4)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fr.Partial {
			t.Fatalf("workers=%d: healthy fleet reported partial", workers)
		}
		got := fleetJSON(t, fr)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: fleet report differs from serial (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}

	path := filepath.Join("testdata", "fleet_amg.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, golden) {
		t.Fatalf("fleet report diverged from golden %s (got %d bytes, want %d); rerun with -update if the change is intended",
			path, len(want), len(golden))
	}
}

// TestFleetMergesCrossRankDuplicates asserts the aggregation actually finds
// cross-rank duplicate transfers on AMG: every rank's residual-norm D2H
// copy carries a payload seeded only by the cycle, so each cycle's digest
// appears on all ranks.
func TestFleetMergesCrossRankDuplicates(t *testing.T) {
	fr, err := NewEngine(4).Fleet("amg", goldenScale, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Duplicates) == 0 {
		t.Fatal("no cross-rank duplicate-transfer findings")
	}
	for _, d := range fr.Duplicates {
		if len(d.Ranks) < 2 {
			t.Fatalf("finding %q spans %d ranks, want >= 2", d.Hash, len(d.Ranks))
		}
	}
	top := fr.Duplicates[0]
	if len(top.Ranks) != 4 {
		t.Fatalf("top finding %q spans ranks %v, want all 4", top.Hash, top.Ranks)
	}
	if top.Bytes <= 0 || fr.CrossRankDupBytes < top.Bytes {
		t.Fatalf("implausible duplicate volume: top %d, total %d", top.Bytes, fr.CrossRankDupBytes)
	}
	if len(fr.Problems) == 0 {
		t.Fatal("no aggregated problem groups")
	}
	for _, p := range fr.Problems {
		if p.Min > p.Max || p.Total < p.Max {
			t.Fatalf("inconsistent problem spread: %+v", p)
		}
	}
}

// TestFleetReusesCache proves per-rank pipelines are memoized: a second
// Fleet call on the same engine serves every rank from the cache and
// produces byte-identical output.
func TestFleetReusesCache(t *testing.T) {
	eng := NewEngine(2)
	first, err := eng.Fleet("amg", goldenScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore, misses, _ := eng.Cache.Stats()
	second, err := eng.Fleet("amg", goldenScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	hitsAfter, missesAfter, _ := eng.Cache.Stats()
	if missesAfter != misses {
		t.Fatalf("second fleet run re-ran %d pipelines", missesAfter-misses)
	}
	if hitsAfter < hitsBefore+2 {
		t.Fatalf("expected 2 cache hits, got %d", hitsAfter-hitsBefore)
	}
	for _, o := range second.PerRank {
		if !o.FromCache {
			t.Fatalf("rank %d not served from cache", o.Rank)
		}
	}
	// FromCache is the only field allowed to differ.
	for i := range first.PerRank {
		first.PerRank[i].FromCache = second.PerRank[i].FromCache
	}
	if !bytes.Equal(fleetJSON(t, first), fleetJSON(t, second)) {
		t.Fatal("cached fleet report differs from the computed one")
	}
}

// faultyProg wraps a rank program and fails one rank's Step, either by
// panicking or by returning an error.
type faultyProg struct {
	mpi.RankProgram
	failRank int
	panics   bool
}

func (f *faultyProg) Step(p *proc.Process, rank int, st mpi.RankState, step int) error {
	if rank == f.failRank {
		if f.panics {
			panic("injected rank fault")
		}
		return errInjected
	}
	return f.RankProgram.Step(p, rank, st, step)
}

var errInjected = errorString("injected rank error")

type errorString string

func (e errorString) Error() string { return string(e) }

// amgFleetConfig builds the explicit launch config FleetOver needs for the
// amg rank program.
func amgFleetConfig(ranks int) mpi.Config {
	spec := apps.Must("amg")
	return mpi.Config{
		Ranks:          ranks,
		BarrierLatency: spec.MPI.BarrierLatency,
		Factory:        spec.Factory(),
	}
}

// TestFleetContainsPanickingRank injects a panic into rank 2's Step — in
// the pipeline instance observing rank 2, modelling that rank's tool
// instance crashing — and asserts the launch degrades to a partial report
// naming exactly that rank, never an error. Run under -race this also
// proves containment is clean across the worker pool.
func TestFleetContainsPanickingRank(t *testing.T) {
	spec := apps.Must("amg")
	eng := NewEngine(4)
	eng.FleetBackoff = time.Nanosecond
	newProg := func(observed int) mpi.RankProgram {
		prog := spec.MPI.Program(goldenScale, apps.Original)
		if observed == 2 {
			return &faultyProg{RankProgram: prog, failRank: 2, panics: true}
		}
		return prog
	}
	fr, err := eng.FleetOver("amg", newProg, amgFleetConfig(4))
	if err != nil {
		t.Fatalf("injected panic failed the launch: %v", err)
	}
	if !fr.Partial {
		t.Fatal("report not marked partial")
	}
	if len(fr.FailedRanks) != 1 || fr.FailedRanks[0] != 2 {
		t.Fatalf("failed ranks = %v, want [2]", fr.FailedRanks)
	}
	if fr.Analyzed != 3 {
		t.Fatalf("analyzed = %d, want 3", fr.Analyzed)
	}
	bad := fr.PerRank[2]
	if !bad.Failed() || bad.Err == "" || bad.Attempts != 2 || !bad.Retried {
		t.Fatalf("failed rank outcome = %+v", bad)
	}
	for _, r := range []int{0, 1, 3} {
		if fr.PerRank[r].Failed() {
			t.Fatalf("healthy rank %d has no report: %+v", r, fr.PerRank[r])
		}
	}
	// The whole-world skew reference run does not go through the faulty
	// instance, so the skew account survives.
	if fr.Skew == nil {
		t.Fatal("skew account lost")
	}
	// Cross-rank aggregation still works over the surviving ranks.
	if len(fr.Duplicates) == 0 {
		t.Fatal("no cross-rank findings from surviving ranks")
	}
}

// TestFleetContainsErroringRank is the error-return variant of containment.
func TestFleetContainsErroringRank(t *testing.T) {
	spec := apps.Must("amg")
	eng := NewEngine(2)
	eng.FleetBackoff = time.Nanosecond
	newProg := func(observed int) mpi.RankProgram {
		prog := spec.MPI.Program(goldenScale, apps.Original)
		if observed == 0 {
			return &faultyProg{RankProgram: prog, failRank: 0}
		}
		return prog
	}
	fr, err := eng.FleetOver("amg", newProg, amgFleetConfig(2))
	if err != nil {
		t.Fatalf("injected error failed the launch: %v", err)
	}
	if !fr.Partial || len(fr.FailedRanks) != 1 || fr.FailedRanks[0] != 0 {
		t.Fatalf("partial=%v failed=%v, want partial naming rank 0", fr.Partial, fr.FailedRanks)
	}
	if fr.PerRank[1].Failed() {
		t.Fatal("healthy rank 1 lost its report")
	}
}

// TestFleetDegradesWhenAppBroken is the worst case: the application fault
// is deterministic and hits every pipeline and the skew reference run. The
// launch still exits cleanly with a fully degraded report.
func TestFleetDegradesWhenAppBroken(t *testing.T) {
	spec := apps.Must("amg")
	eng := NewEngine(2)
	eng.FleetBackoff = time.Nanosecond
	newProg := func(int) mpi.RankProgram {
		return &faultyProg{
			RankProgram: spec.MPI.Program(goldenScale, apps.Original),
			failRank:    0,
			panics:      true,
		}
	}
	fr, err := eng.FleetOver("amg", newProg, amgFleetConfig(2))
	if err != nil {
		t.Fatalf("broken app failed the launch: %v", err)
	}
	if !fr.Partial || fr.Analyzed != 0 || len(fr.FailedRanks) != 2 {
		t.Fatalf("partial=%v analyzed=%d failed=%v, want full degradation", fr.Partial, fr.Analyzed, fr.FailedRanks)
	}
	if fr.Skew != nil {
		t.Fatalf("skew survived a deterministic world fault: %+v", fr.Skew)
	}
}

// skewedRanks is a BSP program whose per-step cost grows with the rank, so
// the highest rank straggles at every barrier.
type skewedRanks struct{ steps int }

func (s *skewedRanks) Name() string { return "skewed-ranks" }
func (s *skewedRanks) Steps() int   { return s.steps }

func (s *skewedRanks) Setup(p *proc.Process, rank int) (mpi.RankState, error) {
	return nil, nil
}

func (s *skewedRanks) Step(p *proc.Process, rank int, st mpi.RankState, step int) error {
	var err error
	p.In("superstep", "skewed.c", 10, func() {
		if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
			Name:     "sweep",
			Duration: simtime.Duration(1+rank) * simtime.Millisecond,
			Stream:   gpu.LegacyStream,
		}); e != nil {
			err = e
			return
		}
		p.Ctx.DeviceSynchronize()
		p.CPUWork(100 * simtime.Microsecond)
	})
	return err
}

// TestFleetSkewAttribution checks the straggler accounting on a deliberately
// imbalanced world: the slowest rank is charged all the wait.
func TestFleetSkewAttribution(t *testing.T) {
	eng := NewEngine(2)
	newProg := func(int) mpi.RankProgram { return &skewedRanks{steps: 3} }
	fr, err := eng.FleetOver("skewed-ranks", newProg, mpi.Config{
		Ranks:          3,
		BarrierLatency: 25 * simtime.Microsecond,
		Factory:        proc.DefaultFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Skew == nil {
		t.Fatal("no skew account")
	}
	if fr.Skew.Straggler != 2 {
		t.Fatalf("straggler = %d, want rank 2", fr.Skew.Straggler)
	}
	if fr.Skew.TotalWait <= 0 {
		t.Fatalf("total wait = %v, want > 0", fr.Skew.TotalWait)
	}
	if got := fr.Skew.PerRank[2]; got.Charged != fr.Skew.TotalWait || got.Waited != 0 {
		t.Fatalf("straggler account = %+v, want all %v charged", got, fr.Skew.TotalWait)
	}
}

// TestFleetValidation pins the request-level error paths: these are the
// only ways Fleet may fail.
func TestFleetValidation(t *testing.T) {
	eng := NewEngine(1)
	if _, err := eng.Fleet("hpl", goldenScale, 2); err == nil {
		t.Fatal("unknown application accepted")
	}
	if _, err := eng.Fleet("cumf_als", goldenScale, 2); err == nil {
		t.Fatal("single-process application accepted")
	}
	if _, err := eng.Fleet("amg", goldenScale, -2); err == nil {
		t.Fatal("negative rank count accepted")
	}
	// ranks 0 selects the application default.
	fr, err := eng.Fleet("amg", goldenScale, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Ranks != apps.Must("amg").MPI.DefaultRanks {
		t.Fatalf("default ranks = %d, want %d", fr.Ranks, apps.Must("amg").MPI.DefaultRanks)
	}
}

// TestFleetSuiteKey pins the persistent-store key for fleet requests:
// stable, sensitive to app/scale/ranks, and refused for applications that
// cannot run a fleet.
func TestFleetSuiteKey(t *testing.T) {
	eng := NewEngine(1)
	base, ok := eng.FleetSuiteKey("amg", goldenScale, 4)
	if !ok || base == "" {
		t.Fatal("no key for a valid fleet request")
	}
	if again, _ := eng.FleetSuiteKey("amg", goldenScale, 4); again != base {
		t.Fatal("key not deterministic")
	}
	if k, _ := eng.FleetSuiteKey("amg", goldenScale, 2); k == base {
		t.Fatal("ranks did not change the key")
	}
	if k, _ := eng.FleetSuiteKey("amg", goldenScale*2, 4); k == base {
		t.Fatal("scale did not change the key")
	}
	if _, ok := eng.FleetSuiteKey("cumf_als", goldenScale, 4); ok {
		t.Fatal("single-process application fingerprinted")
	}
	if _, ok := eng.FleetSuiteKey("hpl", goldenScale, 4); ok {
		t.Fatal("unknown application fingerprinted")
	}
	if _, ok := eng.FleetSuiteKey("amg", goldenScale, -1); ok {
		t.Fatal("negative ranks fingerprinted")
	}
}
