package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash"

	"diogenes/internal/apps"
)

// ErrNotFound is returned by Store.Get for a key with no stored value.
var ErrNotFound = errors.New("experiments: key not found in store")

// Store is the persistence boundary behind the content-addressed cache
// keys: an opaque byte store whose keys are the digests CacheKey and
// SuiteKey produce. The in-memory ReportCache serves one engine lifetime;
// a Store lets results outlive the process (and be shared between
// processes) — the serving layer persists completed job documents here so
// an identical request never re-runs the pipeline.
//
// Implementations must be safe for concurrent use, including by multiple
// stores sharing one backing medium: Get on a key another instance just
// evicted must degrade to ErrNotFound, never a torn read.
type Store interface {
	// Get returns the stored bytes for key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Put stores val under key, replacing any previous value.
	Put(key string, val []byte) error
}

// ValidKey reports whether key has the shape this package's content
// addresses produce: non-empty lower-case hex of bounded length. Stores
// and provenance auditors use it to recognize (and refuse to fabricate)
// key-addressed artifacts — nothing that is not a content address may
// name one.
func ValidKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// RunKey returns the content-addressed key identifying one engine pipeline
// run of the named application's original variant at the given scale —
// CacheKey under this engine's configuration. The second result is false
// when the configuration cannot be fingerprinted (unknown application, or
// a Factory carrying a Prepare hook).
func (e *Engine) RunKey(name string, scale float64) (string, bool) {
	spec, err := apps.ByName(name)
	if err != nil {
		return "", false
	}
	return CacheKey(name, scale, apps.Original, e.config(spec))
}

// SuiteKey returns one content-addressed key covering an entire evaluation
// request: the kind ("run", "table1", "table2", "autofix", ...) plus the
// ordered per-application run keys of every application in scope. Empty
// names selects the full registry, mirroring the suites themselves. Two
// requests with equal suite keys produce byte-identical result documents,
// so a persistent Store may serve one request's stored output for the
// other. The second result is false when any application in scope cannot
// be fingerprinted.
func (e *Engine) SuiteKey(kind string, scale float64, names []string) (string, bool) {
	if len(names) == 0 {
		for _, spec := range apps.Registry() {
			names = append(names, spec.Name)
		}
	}
	h := sha256.New()
	writeLenPrefixed(h, []byte(kind))
	for _, name := range names {
		k, ok := e.RunKey(name, scale)
		if !ok {
			return "", false
		}
		writeLenPrefixed(h, []byte(name))
		writeLenPrefixed(h, []byte(k))
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// writeLenPrefixed writes one length-prefixed field so no two distinct
// field sequences share an encoding.
func writeLenPrefixed(h hash.Hash, b []byte) {
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
	h.Write(lenBuf[:])
	h.Write(b)
}
