package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/obs"
	"diogenes/internal/proc"
	"diogenes/internal/sched"
	"diogenes/internal/simtime"
)

// Engine executes the evaluation suites on the sched worker pool, with an
// optional content-addressed report cache shared across suites. Results
// are byte-identical to the serial package-level functions for any worker
// count: each pipeline and each pipeline stage runs the application in its
// own fresh process on its own virtual clock, and result slices keep
// registry order regardless of completion order.
type Engine struct {
	// Workers bounds how many independent experiment apps run at once.
	// 0 selects GOMAXPROCS; 1 is serial.
	Workers int
	// StageWorkers is passed through to ffm.Config.Workers: ≥2 runs the
	// post-baseline collection stages of each pipeline concurrently.
	StageWorkers int
	// Cache, when non-nil, memoizes pipeline reports and uninstrumented
	// runtimes across Table1/Table2/autofix calls.
	Cache *ReportCache
	// Obs, when non-nil, receives self-measurement from every layer the
	// engine drives: pipeline spans and overhead reports (via
	// ffm.Config.Obs), scheduler telemetry (via pool metrics), and cache
	// hit/miss counters. Cached pipeline results record no spans — a hit
	// means no run happened, and the trace says so honestly.
	Obs *obs.Observer
	// FleetBackoff is the pause before a failed fleet rank's single retry.
	// 0 selects a 50ms default; tests set it to a nanosecond. Backoff is
	// wall time, not virtual time — it paces the retry, never the model.
	FleetBackoff time.Duration
	// FleetBatch is how many contiguous ranks one fleet reduction task
	// folds before offering its partial to the accumulator. 0 picks a
	// width-aware default (at least four batches per worker). The fleet
	// document is byte-identical at every batch size.
	FleetBatch int
	// FleetSpillDir is where sealed fleet partials spill when
	// FleetSpillBudget is exceeded; empty selects a per-reduction temp
	// directory that is removed afterwards.
	FleetSpillDir string
	// FleetSpillBudget caps the estimated resident bytes of fleet
	// partials parked waiting for an adjacent neighbor; beyond it the
	// largest parked partial spills to disk. 0 (the default) never
	// spills.
	FleetSpillBudget int64

	// fleetAcc publishes the current fleet reduction's accumulator so
	// FleetProgress can stream its counters while ranks are running.
	fleetAcc atomic.Pointer[ffm.FleetAccumulator]
}

// SetObserver attaches an observer to the engine (nil detaches), wiring it
// through the pipeline configuration, the worker pools and the cache.
func (e *Engine) SetObserver(o *obs.Observer) {
	e.Obs = o
	e.Cache.SetMetrics(o.Metrics())
}

// NewEngine returns an engine of the given width with a fresh cache.
// Widths above one also enable stage-level parallelism inside each
// pipeline run.
func NewEngine(workers int) *Engine {
	e := &Engine{Workers: workers, Cache: NewReportCache()}
	if workers == 0 || workers > 1 {
		e.StageWorkers = 2
	}
	return e
}

// serialEngine backs the package-level entry points: one worker, no cache,
// preserving the historical behaviour exactly.
var serialEngine = &Engine{Workers: 1}

// pool builds the engine's worker pool.
func (e *Engine) pool() (*sched.Pool, error) {
	p, err := sched.New(e.Workers)
	if err != nil {
		return nil, err
	}
	p.SetMetrics(e.Obs.Metrics())
	return p, nil
}

// config assembles the ffm configuration for one spec.
func (e *Engine) config(spec apps.Spec) ffm.Config {
	cfg := ffm.DefaultConfig()
	cfg.Factory = spec.Factory()
	cfg.Workers = e.StageWorkers
	cfg.Obs = e.Obs
	return cfg
}

// RunApp executes the full FFM pipeline on one modelled application at the
// given scale, consulting the engine's cache first. The returned report is
// shared when cached — callers must not mutate it.
func (e *Engine) RunApp(name string, scale float64) (*ffm.Report, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	cfg := e.config(spec)
	run := func() (*ffm.Report, error) {
		return ffm.Run(spec.New(scale, apps.Original), cfg)
	}
	if e.Cache != nil {
		if key, ok := CacheKey(name, scale, apps.Original, cfg); ok {
			return e.Cache.Report(key, run)
		}
	}
	return run()
}

// ActualReduction measures the real benefit of the paper's fix, caching
// the per-variant uninstrumented runtimes. On a parallel engine the two
// variant runs execute concurrently — each in its own fresh process on its
// own virtual clock, so concurrency cannot change the measured durations.
func (e *Engine) ActualReduction(name string, scale float64) (orig, fixed simtime.Duration, err error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return 0, 0, err
	}
	cfg := e.config(spec)
	var times [2]simtime.Duration
	variants := []apps.Variant{apps.Original, apps.Fixed}
	measureInto := func(i int) func(context.Context) error {
		v := variants[i]
		return func(context.Context) error {
			measure := func() (simtime.Duration, error) {
				p := cfg.Factory.New()
				if e := proc.SafeRun(spec.New(scale, v), p); e != nil {
					return 0, fmt.Errorf("experiments: %s(%v): %w", name, v, e)
				}
				return p.ExecTime(), nil
			}
			var d simtime.Duration
			var err error
			if key, ok := CacheKey(name, scale, v, cfg); ok && e.Cache != nil {
				d, err = e.Cache.Runtime(key, measure)
			} else {
				d, err = measure()
			}
			times[i] = d
			return err
		}
	}
	if e.StageWorkers > 1 {
		err = sched.GoMetrics(context.Background(), 2, e.Obs.Metrics(), measureInto(0), measureInto(1))
	} else {
		for i := range variants {
			if err = measureInto(i)(nil); err != nil {
				break
			}
		}
	}
	if err != nil {
		return 0, 0, err
	}
	return times[0], times[1], nil
}

// Table1For computes one application's Table 1 row through the engine. On
// a parallel engine the FFM pipeline and the two uninstrumented benefit
// measurements proceed concurrently; the row is assembled from both once
// they finish.
func (e *Engine) Table1For(name string, scale float64) (*Table1Row, error) {
	var (
		rep         *ffm.Report
		orig, fixed simtime.Duration
	)
	pipeline := func(context.Context) error {
		var err error
		rep, err = e.RunApp(name, scale)
		return err
	}
	reduction := func(context.Context) error {
		var err error
		orig, fixed, err = e.ActualReduction(name, scale)
		return err
	}
	if e.StageWorkers > 1 {
		if err := sched.GoMetrics(context.Background(), 2, e.Obs.Metrics(), pipeline, reduction); err != nil {
			return nil, err
		}
	} else {
		if err := pipeline(nil); err != nil {
			return nil, err
		}
		if err := reduction(nil); err != nil {
			return nil, err
		}
	}
	est, err := AddressedEstimate(name, rep)
	if err != nil {
		return nil, err
	}
	return table1Assemble(name, rep, est, orig, fixed), nil
}

// Table1 regenerates Table 1, one worker per application.
func (e *Engine) Table1(scale float64) ([]Table1Row, error) {
	registry := apps.Registry()
	rows := make([]*Table1Row, len(registry))
	pool, err := e.pool()
	if err != nil {
		return nil, err
	}
	tasks := make([]sched.Task, len(registry))
	for i, spec := range registry {
		i, spec := i, spec
		tasks[i] = sched.Task{Name: "table1/" + spec.Name, Fn: func(context.Context) error {
			row, err := e.Table1For(spec.Name, scale)
			if err != nil {
				return err
			}
			rows[i] = row
			return nil
		}}
	}
	if _, err := pool.Run(context.Background(), tasks...); err != nil {
		return nil, err
	}
	out := make([]Table1Row, len(rows))
	for i, r := range rows {
		out[i] = *r
	}
	return out, nil
}

// Table2For regenerates one application's section of Table 2 through the
// engine: the pipeline report comes from the (possibly cached) engine path
// while the comparison profilers run inline.
func (e *Engine) Table2For(name string, scale float64) ([]Table2Row, error) {
	return table2For(name, scale, e)
}

// Table2 regenerates Table 2 sections for the named applications, one
// worker per application, preserving input order. Empty names selects
// every registered application.
func (e *Engine) Table2(scale float64, names []string) ([][]Table2Row, error) {
	if len(names) == 0 {
		for _, spec := range apps.Registry() {
			names = append(names, spec.Name)
		}
	}
	sections := make([][]Table2Row, len(names))
	pool, err := e.pool()
	if err != nil {
		return nil, err
	}
	tasks := make([]sched.Task, len(names))
	for i, name := range names {
		i, name := i, name
		tasks[i] = sched.Task{Name: "table2/" + name, Fn: func(context.Context) error {
			rows, err := e.Table2For(name, scale)
			if err != nil {
				return err
			}
			sections[i] = rows
			return nil
		}}
	}
	if _, err := pool.Run(context.Background(), tasks...); err != nil {
		return nil, err
	}
	return sections, nil
}

// AutofixTable measures, per application, how the automatic correction
// compares to the paper's manual fix — one worker per application.
func (e *Engine) AutofixTable(scale float64, apply func(name string, scale float64) (*AutofixRow, error)) ([]AutofixRow, error) {
	registry := apps.Registry()
	rows := make([]*AutofixRow, len(registry))
	pool, err := e.pool()
	if err != nil {
		return nil, err
	}
	tasks := make([]sched.Task, len(registry))
	for i, spec := range registry {
		i, spec := i, spec
		tasks[i] = sched.Task{Name: "autofix/" + spec.Name, Fn: func(context.Context) error {
			row, err := apply(spec.Name, scale)
			if err != nil {
				return err
			}
			orig, fixed, err := e.ActualReduction(spec.Name, scale)
			if err != nil {
				return err
			}
			row.ManualActual = orig - fixed
			if orig > 0 {
				row.ManualActualPct = 100 * float64(row.ManualActual) / float64(orig)
			}
			rows[i] = row
			return nil
		}}
	}
	if _, err := pool.Run(context.Background(), tasks...); err != nil {
		return nil, err
	}
	out := make([]AutofixRow, len(rows))
	for i, r := range rows {
		out[i] = *r
	}
	return out, nil
}
