package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"time"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/sched"
)

// defaultFleetBackoff is the pause before a failed rank's single retry when
// the engine does not set one.
const defaultFleetBackoff = 50 * time.Millisecond

// FleetRankID names one rank's pipeline for content addressing. It matches
// the mpi adapter's app name, so the key changes with both the observed
// rank and the world size.
func FleetRankID(app string, rank, ranks int) string {
	return fmt.Sprintf("%s@rank%d/%d", app, rank, ranks)
}

// Fleet runs the full FFM pipeline on every rank of the named application's
// MPI world and aggregates the per-rank findings into one fleet report:
// cross-rank duplicate transfers, per-problem benefit spread, and
// collective-skew attribution from a whole-world reference run.
//
// Aggregation streams: each rank's outcome folds into a running
// ffm.FleetAccumulator the moment the rank finishes, releasing the rank's
// full report immediately, and partials over adjacent rank ranges merge
// on the same worker pool — peak memory is O(aggregate state), not
// O(ranks × report), and the assembled document is byte-identical at
// every worker count and batch size.
//
// Fault containment: a rank whose pipeline fails (error or panic) is
// retried once after a short backoff; if the retry also fails the rank is
// recorded in the report's FailedRanks and the launch still succeeds with a
// partial report. Fleet only returns an error when the request itself is
// invalid (unknown or single-process application, bad rank count).
//
// ranks 0 selects the application's default world size. Per-rank pipelines
// are memoized through the engine's cache like every other engine run.
func (e *Engine) Fleet(name string, scale float64, ranks int) (*ffm.FleetReport, error) {
	return e.FleetCtx(context.Background(), name, scale, ranks)
}

// FleetCtx is Fleet under a caller-supplied context: cancellation stops
// scheduling new rank pipelines and interrupts retry backoffs, so a
// draining serve job releases its pool workers promptly. A canceled fleet
// returns an error rather than a silently truncated report.
func (e *Engine) FleetCtx(ctx context.Context, name string, scale float64, ranks int) (*ffm.FleetReport, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	if spec.MPI == nil {
		return nil, fmt.Errorf("experiments: %s is single-process; fleet analysis needs an MPI-modelled application", name)
	}
	if ranks == 0 {
		ranks = spec.MPI.DefaultRanks
	}
	mcfg := mpi.Config{
		Ranks:          ranks,
		BarrierLatency: spec.MPI.BarrierLatency,
		Factory:        spec.Factory(),
	}
	cfg := e.config(spec)
	keyFor := func(r int) (string, bool) {
		return CacheKey(FleetRankID(name, r, ranks), scale, apps.Original, cfg)
	}
	newProg := func(int) mpi.RankProgram { return spec.MPI.Program(scale, apps.Original) }
	return e.fleet(ctx, name, newProg, mcfg, keyFor)
}

// FleetOver runs fleet analysis over an explicit rank program and launch
// configuration, bypassing the registry and the report cache. newProg is
// called with the rank whose pipeline the program instance will serve
// (mpi.NoObserved for the whole-world skew reference run), so tests can
// inject faults into one rank's tool instance. It applies the same
// containment policy as Fleet.
func (e *Engine) FleetOver(app string, newProg func(observed int) mpi.RankProgram, mcfg mpi.Config) (*ffm.FleetReport, error) {
	return e.fleet(context.Background(), app, newProg, mcfg, nil)
}

// FleetReduce runs the streaming fleet reduction over caller-supplied
// rank outcomes instead of live pipelines: outcome is invoked once per
// rank (concurrently, in rank batches on the engine's pool) and its
// result folds into the accumulator immediately. It is the entry point
// for driving the reduction at widths where executing real pipelines is
// beside the point — the scale benchmarks prove flat allocated-bytes-
// per-rank with it — and for replaying recorded outcomes. No skew
// reference run is performed.
func (e *Engine) FleetReduce(app string, ranks int, outcome func(rank int) ffm.RankOutcome) (*ffm.FleetReport, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("experiments: fleet over %d ranks, need at least 1", ranks)
	}
	return e.fleetReduce(context.Background(), app, ranks,
		func(_ context.Context, r int) ffm.RankOutcome { return outcome(r) }, nil)
}

func (e *Engine) fleet(ctx context.Context, app string, newProg func(int) mpi.RankProgram, mcfg mpi.Config, keyFor func(int) (string, bool)) (*ffm.FleetReport, error) {
	if mcfg.Ranks < 1 {
		return nil, fmt.Errorf("experiments: fleet over %d ranks, need at least 1", mcfg.Ranks)
	}
	return e.fleetReduce(ctx, app, mcfg.Ranks,
		func(ctx context.Context, r int) ffm.RankOutcome {
			return e.fleetRank(ctx, app, r, newProg, mcfg, keyFor)
		},
		// Whole-world reference run for the skew attribution, after every
		// rank has folded. Its failure (the same fault the per-rank
		// pipelines contained) degrades the report to skew-less rather
		// than failing the launch.
		func() *ffm.FleetSkew { return e.fleetSkew(newProg(mpi.NoObserved), mcfg) })
}

// fleetReduce is the shared streaming reduction: contiguous rank batches
// run as pool tasks, each folding its ranks into one partial and offering
// it to the accumulator, whose adjacent-range merges execute on the same
// workers. skew, when non-nil, runs after the rank folds and rides along
// on the assembled report.
func (e *Engine) fleetReduce(ctx context.Context, app string, ranks int, outcome func(ctx context.Context, rank int) ffm.RankOutcome, skew func() *ffm.FleetSkew) (*ffm.FleetReport, error) {
	pool, err := e.pool()
	if err != nil {
		return nil, err
	}
	spill, cleanup, err := e.fleetSpill()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	acc := ffm.NewFleetAccumulator(ranks, spill, e.FleetSpillBudget)
	e.fleetAcc.Store(acc)
	batch := e.fleetBatchSize(ranks, pool.Workers())
	tasks := make([]sched.Task, 0, (ranks+batch-1)/batch)
	for lo := 0; lo < ranks; lo += batch {
		lo, hi := lo, lo+batch
		if hi > ranks {
			hi = ranks
		}
		tasks = append(tasks, sched.Task{
			Name: fmt.Sprintf("fleet/%s/ranks%d-%d", app, lo, hi),
			Fn: func(ctx context.Context) error {
				// Containment: a failed rank degrades the report; it must
				// never fail — or first-error-cancel — the launch. Only
				// accumulator faults (spill I/O, broken adjacency) error.
				var part *ffm.FleetPartial
				for r := lo; r < hi; r++ {
					leaf := ffm.FoldRankOutcome(outcome(ctx, r))
					acc.RankDone()
					merged, err := ffm.Merge(part, leaf)
					if err != nil {
						return err
					}
					part = merged
				}
				return acc.Offer(part)
			},
		})
	}
	if _, err := pool.Run(ctx, tasks...); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: fleet canceled: %w", err)
	}
	var sk *ffm.FleetSkew
	if skew != nil {
		sk = skew()
	}
	return acc.Finalize(app, sk)
}

// fleetBatchSize resolves how many contiguous ranks one reduction task
// folds. The default keeps at least four batches per worker in flight so
// small worlds still parallelize, while large worlds amortize task and
// merge overhead; FleetBatch overrides it.
func (e *Engine) fleetBatchSize(ranks, workers int) int {
	b := e.FleetBatch
	if b <= 0 {
		if workers < 1 {
			workers = 1
		}
		b = ranks / (workers * 4)
	}
	if b < 1 {
		b = 1
	}
	if b > ranks {
		b = ranks
	}
	return b
}

// fleetSpill builds the accumulator's spill store. Spilling only engages
// when a byte budget is set; the directory defaults to a per-reduction
// temp dir that cleanup removes.
func (e *Engine) fleetSpill() (ffm.SpillStore, func(), error) {
	nop := func() {}
	if e.FleetSpillBudget <= 0 {
		return nil, nop, nil
	}
	dir := e.FleetSpillDir
	cleanup := nop
	if dir == "" {
		d, err := os.MkdirTemp("", "diogenes-fleet-spill-")
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: fleet spill: %w", err)
		}
		dir = d
		cleanup = func() { os.RemoveAll(d) }
	}
	fs, err := ffm.NewFileSpill(dir)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return fs, cleanup, nil
}

// FleetProgress reports the live accumulator counters of the engine's
// current (or most recent) fleet reduction: ranks folded, partial merges,
// spill activity. ok is false before the first fleet run. The serving
// layer polls it to stream fleet job progress.
func (e *Engine) FleetProgress() (ffm.FleetProgress, bool) {
	acc := e.fleetAcc.Load()
	if acc == nil {
		return ffm.FleetProgress{}, false
	}
	return acc.Progress(), true
}

// fleetRank runs one rank's pipeline with containment: panics become
// errors, and a failed first attempt is retried once after FleetBackoff,
// bypassing the cache (which memoizes the failure). The backoff is
// context-aware: a canceled fleet skips the retry instead of holding a
// pool worker through the pause, and the outcome keeps the first
// attempt's error.
func (e *Engine) fleetRank(ctx context.Context, app string, rank int, newProg func(int) mpi.RankProgram, mcfg mpi.Config, keyFor func(int) (string, bool)) ffm.RankOutcome {
	out := ffm.RankOutcome{Rank: rank}
	span := e.Obs.Root().Child(rank, "rank", FleetRankID(app, rank, mcfg.Ranks))
	defer span.End()
	cfg := e.fleetConfig(mcfg)
	cfg.Parent = span
	run := func() (*ffm.Report, error) {
		return containedRun(mpi.App(newProg(rank), mcfg, rank), cfg)
	}
	attempt := run
	if e.Cache != nil && keyFor != nil {
		if key, ok := keyFor(rank); ok {
			attempt = func() (*ffm.Report, error) {
				// The cache reports the hit per call — concurrent ranks
				// cannot misattribute each other's hits the way a global
				// Stats() delta could.
				rep, hit, err := e.Cache.ReportHit(key, run)
				out.FromCache = err == nil && hit
				return rep, err
			}
		}
	}
	rep, err := attempt()
	out.Attempts = 1
	if err != nil {
		out.FromCache = false
		if !sleepCtx(ctx, e.fleetBackoff()) {
			out.Err = err.Error()
			span.SetArg("failed", out.Err)
			return out
		}
		out.Retried = true
		out.Attempts = 2
		rep, err = run()
	}
	if err != nil {
		out.Err = err.Error()
		span.SetArg("failed", out.Err)
		return out
	}
	out.Report = rep
	return out
}

// sleepCtx pauses for d, returning false if ctx is canceled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if ctx == nil {
		ctx = context.Background()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// containedRun executes one rank pipeline, converting panics into errors.
// proc.SafeRun only recovers simulated-deadlock panics; a fleet launch must
// survive any rank fault.
func containedRun(app proc.App, cfg ffm.Config) (rep *ffm.Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			rep, err = nil, fmt.Errorf("experiments: fleet rank pipeline %s panicked: %v", app.Name(), v)
		}
	}()
	return ffm.Run(app, cfg)
}

// fleetConfig assembles the per-rank ffm configuration for an explicit
// launch config (FleetOver has no registry spec to derive it from).
func (e *Engine) fleetConfig(mcfg mpi.Config) ffm.Config {
	cfg := ffm.DefaultConfig()
	cfg.Factory = mcfg.Factory
	cfg.Workers = e.StageWorkers
	cfg.Obs = e.Obs
	return cfg
}

// fleetBackoff resolves the retry pause.
func (e *Engine) fleetBackoff() time.Duration {
	if e.FleetBackoff > 0 {
		return e.FleetBackoff
	}
	return defaultFleetBackoff
}

// fleetSkew runs one uninstrumented whole-world pass and converts its
// barrier ledger. A nil return (setup error, rank fault) degrades the fleet
// report to skew-less.
func (e *Engine) fleetSkew(prog mpi.RankProgram, mcfg mpi.Config) (skew *ffm.FleetSkew) {
	sp := e.Obs.Root().Child(mcfg.Ranks, "fleet", "skew-reference")
	defer sp.End()
	defer func() {
		if v := recover(); v != nil {
			skew = nil
			sp.SetArg("failed", fmt.Sprint(v))
		}
	}()
	w, err := mpi.NewWorld(prog, mcfg, mpi.NoObserved, nil)
	if err != nil {
		sp.SetArg("failed", err.Error())
		return nil
	}
	if err := w.Run(); err != nil {
		sp.SetArg("failed", err.Error())
		return nil
	}
	return convertSkew(w.Skew(), w.Ledger())
}

// convertSkew maps the mpi barrier ledger onto the ffm report form and
// picks the dominant straggler (most charged wait; ties go to the lowest
// rank). The per-barrier records ride along so the attribution can be
// rendered collective by collective (the timeline's skew ribbons).
func convertSkew(perRank []mpi.RankSkew, barriers []mpi.BarrierRecord) *ffm.FleetSkew {
	out := &ffm.FleetSkew{Straggler: -1, PerRank: make([]ffm.FleetSkewRank, len(perRank))}
	for i, rs := range perRank {
		out.PerRank[i] = ffm.FleetSkewRank{
			Rank: rs.Rank, Waited: rs.Waited, Charged: rs.Charged, Straggles: rs.Straggles,
		}
		out.TotalWait += rs.Waited
		if rs.Charged > 0 && (out.Straggler < 0 || rs.Charged > out.PerRank[out.Straggler].Charged) {
			out.Straggler = rs.Rank
		}
	}
	for _, b := range barriers {
		out.Barriers = append(out.Barriers, ffm.FleetBarrier{
			Index:     b.Index,
			Arrive:    b.Arrive,
			Latency:   b.Latency,
			Straggler: b.Straggler,
			Wait:      b.TotalWait,
			RankWaits: b.RankWaits,
		})
	}
	return out
}

// FleetSuiteKey returns the content-addressed key covering one fleet
// request: the kind plus every rank's run key, so fleet documents live in
// the same persistent store as the suite kinds. ranks 0 selects the
// application default. The second result is false when the application is
// unknown, not MPI-modelled, or cannot be fingerprinted.
func (e *Engine) FleetSuiteKey(name string, scale float64, ranks int) (string, bool) {
	spec, err := apps.ByName(name)
	if err != nil || spec.MPI == nil {
		return "", false
	}
	if ranks == 0 {
		ranks = spec.MPI.DefaultRanks
	}
	if ranks < 1 {
		return "", false
	}
	cfg := e.config(spec)
	h := sha256.New()
	writeLenPrefixed(h, []byte("fleet"))
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], uint64(ranks))
	h.Write(rb[:])
	for r := 0; r < ranks; r++ {
		k, ok := CacheKey(FleetRankID(name, r, ranks), scale, apps.Original, cfg)
		if !ok {
			return "", false
		}
		writeLenPrefixed(h, []byte(k))
	}
	return hex.EncodeToString(h.Sum(nil)), true
}
