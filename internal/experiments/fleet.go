package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/sched"
)

// defaultFleetBackoff is the pause before a failed rank's single retry when
// the engine does not set one.
const defaultFleetBackoff = 50 * time.Millisecond

// FleetRankID names one rank's pipeline for content addressing. It matches
// the mpi adapter's app name, so the key changes with both the observed
// rank and the world size.
func FleetRankID(app string, rank, ranks int) string {
	return fmt.Sprintf("%s@rank%d/%d", app, rank, ranks)
}

// Fleet runs the full FFM pipeline on every rank of the named application's
// MPI world and aggregates the per-rank findings into one fleet report:
// cross-rank duplicate transfers, per-problem benefit spread, and
// collective-skew attribution from a whole-world reference run.
//
// Fault containment: a rank whose pipeline fails (error or panic) is
// retried once after a short backoff; if the retry also fails the rank is
// recorded in the report's FailedRanks and the launch still succeeds with a
// partial report. Fleet only returns an error when the request itself is
// invalid (unknown or single-process application, bad rank count).
//
// ranks 0 selects the application's default world size. Per-rank pipelines
// are memoized through the engine's cache like every other engine run.
func (e *Engine) Fleet(name string, scale float64, ranks int) (*ffm.FleetReport, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	if spec.MPI == nil {
		return nil, fmt.Errorf("experiments: %s is single-process; fleet analysis needs an MPI-modelled application", name)
	}
	if ranks == 0 {
		ranks = spec.MPI.DefaultRanks
	}
	mcfg := mpi.Config{
		Ranks:          ranks,
		BarrierLatency: spec.MPI.BarrierLatency,
		Factory:        spec.Factory(),
	}
	cfg := e.config(spec)
	keyFor := func(r int) (string, bool) {
		return CacheKey(FleetRankID(name, r, ranks), scale, apps.Original, cfg)
	}
	newProg := func(int) mpi.RankProgram { return spec.MPI.Program(scale, apps.Original) }
	return e.fleet(name, newProg, mcfg, keyFor)
}

// FleetOver runs fleet analysis over an explicit rank program and launch
// configuration, bypassing the registry and the report cache. newProg is
// called with the rank whose pipeline the program instance will serve
// (mpi.NoObserved for the whole-world skew reference run), so tests can
// inject faults into one rank's tool instance. It applies the same
// containment policy as Fleet.
func (e *Engine) FleetOver(app string, newProg func(observed int) mpi.RankProgram, mcfg mpi.Config) (*ffm.FleetReport, error) {
	return e.fleet(app, newProg, mcfg, nil)
}

func (e *Engine) fleet(app string, newProg func(int) mpi.RankProgram, mcfg mpi.Config, keyFor func(int) (string, bool)) (*ffm.FleetReport, error) {
	if mcfg.Ranks < 1 {
		return nil, fmt.Errorf("experiments: fleet over %d ranks, need at least 1", mcfg.Ranks)
	}
	pool, err := e.pool()
	if err != nil {
		return nil, err
	}
	outcomes := make([]ffm.RankOutcome, mcfg.Ranks)
	tasks := make([]sched.Task, mcfg.Ranks)
	for r := range tasks {
		r := r
		tasks[r] = sched.Task{
			Name: fmt.Sprintf("fleet/%s/rank%d", app, r),
			Fn: func(context.Context) error {
				outcomes[r] = e.fleetRank(app, r, newProg, mcfg, keyFor)
				// Containment: a failed rank degrades the report; it must
				// never fail — or first-error-cancel — the launch.
				return nil
			},
		}
	}
	if _, err := pool.Run(context.Background(), tasks...); err != nil {
		return nil, err
	}
	// Whole-world reference run for the skew attribution. Its failure
	// (the same fault the per-rank pipelines contained) degrades the
	// report to skew-less rather than failing the launch.
	skew := e.fleetSkew(newProg(mpi.NoObserved), mcfg)
	return ffm.AggregateFleet(app, mcfg.Ranks, outcomes, skew), nil
}

// fleetRank runs one rank's pipeline with containment: panics become
// errors, and a failed first attempt is retried once after FleetBackoff,
// bypassing the cache (which memoizes the failure).
func (e *Engine) fleetRank(app string, rank int, newProg func(int) mpi.RankProgram, mcfg mpi.Config, keyFor func(int) (string, bool)) ffm.RankOutcome {
	out := ffm.RankOutcome{Rank: rank}
	span := e.Obs.Root().Child(rank, "rank", FleetRankID(app, rank, mcfg.Ranks))
	defer span.End()
	cfg := e.fleetConfig(mcfg)
	cfg.Parent = span
	run := func() (*ffm.Report, error) {
		return containedRun(mpi.App(newProg(rank), mcfg, rank), cfg)
	}
	attempt := run
	if e.Cache != nil && keyFor != nil {
		if key, ok := keyFor(rank); ok {
			attempt = func() (*ffm.Report, error) {
				hits, _, _ := e.Cache.Stats()
				rep, err := e.Cache.Report(key, run)
				after, _, _ := e.Cache.Stats()
				out.FromCache = err == nil && after > hits
				return rep, err
			}
		}
	}
	rep, err := attempt()
	out.Attempts = 1
	if err != nil {
		out.Retried = true
		out.Attempts = 2
		out.FromCache = false
		time.Sleep(e.fleetBackoff())
		rep, err = run()
	}
	if err != nil {
		out.Err = err.Error()
		span.SetArg("failed", out.Err)
		return out
	}
	out.Report = rep
	return out
}

// containedRun executes one rank pipeline, converting panics into errors.
// proc.SafeRun only recovers simulated-deadlock panics; a fleet launch must
// survive any rank fault.
func containedRun(app proc.App, cfg ffm.Config) (rep *ffm.Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			rep, err = nil, fmt.Errorf("experiments: fleet rank pipeline %s panicked: %v", app.Name(), v)
		}
	}()
	return ffm.Run(app, cfg)
}

// fleetConfig assembles the per-rank ffm configuration for an explicit
// launch config (FleetOver has no registry spec to derive it from).
func (e *Engine) fleetConfig(mcfg mpi.Config) ffm.Config {
	cfg := ffm.DefaultConfig()
	cfg.Factory = mcfg.Factory
	cfg.Workers = e.StageWorkers
	cfg.Obs = e.Obs
	return cfg
}

// fleetBackoff resolves the retry pause.
func (e *Engine) fleetBackoff() time.Duration {
	if e.FleetBackoff > 0 {
		return e.FleetBackoff
	}
	return defaultFleetBackoff
}

// fleetSkew runs one uninstrumented whole-world pass and converts its
// barrier ledger. A nil return (setup error, rank fault) degrades the fleet
// report to skew-less.
func (e *Engine) fleetSkew(prog mpi.RankProgram, mcfg mpi.Config) (skew *ffm.FleetSkew) {
	sp := e.Obs.Root().Child(mcfg.Ranks, "fleet", "skew-reference")
	defer sp.End()
	defer func() {
		if v := recover(); v != nil {
			skew = nil
			sp.SetArg("failed", fmt.Sprint(v))
		}
	}()
	w, err := mpi.NewWorld(prog, mcfg, mpi.NoObserved, nil)
	if err != nil {
		sp.SetArg("failed", err.Error())
		return nil
	}
	if err := w.Run(); err != nil {
		sp.SetArg("failed", err.Error())
		return nil
	}
	return convertSkew(w.Skew(), w.Ledger())
}

// convertSkew maps the mpi barrier ledger onto the ffm report form and
// picks the dominant straggler (most charged wait; ties go to the lowest
// rank). The per-barrier records ride along so the attribution can be
// rendered collective by collective (the timeline's skew ribbons).
func convertSkew(perRank []mpi.RankSkew, barriers []mpi.BarrierRecord) *ffm.FleetSkew {
	out := &ffm.FleetSkew{Straggler: -1, PerRank: make([]ffm.FleetSkewRank, len(perRank))}
	for i, rs := range perRank {
		out.PerRank[i] = ffm.FleetSkewRank{
			Rank: rs.Rank, Waited: rs.Waited, Charged: rs.Charged, Straggles: rs.Straggles,
		}
		out.TotalWait += rs.Waited
		if rs.Charged > 0 && (out.Straggler < 0 || rs.Charged > out.PerRank[out.Straggler].Charged) {
			out.Straggler = rs.Rank
		}
	}
	for _, b := range barriers {
		out.Barriers = append(out.Barriers, ffm.FleetBarrier{
			Index:     b.Index,
			Arrive:    b.Arrive,
			Latency:   b.Latency,
			Straggler: b.Straggler,
			Wait:      b.TotalWait,
			RankWaits: b.RankWaits,
		})
	}
	return out
}

// FleetSuiteKey returns the content-addressed key covering one fleet
// request: the kind plus every rank's run key, so fleet documents live in
// the same persistent store as the suite kinds. ranks 0 selects the
// application default. The second result is false when the application is
// unknown, not MPI-modelled, or cannot be fingerprinted.
func (e *Engine) FleetSuiteKey(name string, scale float64, ranks int) (string, bool) {
	spec, err := apps.ByName(name)
	if err != nil || spec.MPI == nil {
		return "", false
	}
	if ranks == 0 {
		ranks = spec.MPI.DefaultRanks
	}
	if ranks < 1 {
		return "", false
	}
	cfg := e.config(spec)
	h := sha256.New()
	writeLenPrefixed(h, []byte("fleet"))
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], uint64(ranks))
	h.Write(rb[:])
	for r := 0; r < ranks; r++ {
		k, ok := CacheKey(FleetRankID(name, r, ranks), scale, apps.Original, cfg)
		if !ok {
			return "", false
		}
		writeLenPrefixed(h, []byte(k))
	}
	return hex.EncodeToString(h.Sum(nil)), true
}
