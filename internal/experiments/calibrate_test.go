package experiments

// Calibration harness: prints the reproduced tables so the workload
// constants can be compared against the paper's shapes. Run with
//   go test ./internal/experiments -run Calibrate -v -calibrate
// It is skipped unless the -calibrate flag is passed.

import (
	"flag"
	"fmt"
	"testing"
)

var calibrate = flag.Bool("calibrate", false, "print calibration tables")

func TestCalibrate(t *testing.T) {
	if !*calibrate {
		t.Skip("pass -calibrate to print the reproduction tables")
	}
	scale := 0.25
	for _, name := range []string{"cumf_als", "cuibm", "amg", "rodinia_gaussian"} {
		row, err := Table1For(name, scale)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("T1 %-18s est %8.2fs (%5.2f%% | paper %5.2f%%)  act %8.2fs (%5.2f%% | paper %5.2f%%)  acc %5.1f%%  ovh %4.1fx\n",
			row.App, row.Estimated.Seconds(), row.EstimatedPct, row.PaperEstPct,
			row.Actual.Seconds(), row.ActualPct, row.PaperActPct, row.Accuracy, row.Overhead)

		rows, err := Table2For(name, scale)
		if err != nil {
			t.Fatalf("%s table2: %v", name, err)
		}
		for _, r := range rows {
			nv := "crashed"
			if !r.NVProfCrashed {
				nv = fmt.Sprintf("%8.2fs (%5.1f%%, %d)", r.NVProfTime.Seconds(), r.NVProfPct, r.NVProfPos)
			}
			di := "      -"
			if r.DiogenesListed {
				di = fmt.Sprintf("%8.3fs (%5.2f%%, %d)", r.DiogenesSavings.Seconds(), r.DiogenesPct, r.DiogenesPos)
			}
			fmt.Printf("   %-26s nv %-24s hpc %8.2fs (%5.1f%%, %d)  dio %s\n",
				r.Func, nv, r.HPCTime.Seconds(), r.HPCPct, r.HPCPos, di)
		}
		fmt.Println()
	}
}
