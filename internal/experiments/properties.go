// Property-based invariant harness over the generative workload families.
//
// Instead of pinning a handful of hand-modelled applications to golden
// files, the harness draws hundreds of seeded scenarios from each family in
// internal/apps and checks invariants that must hold for *every* program
// the measurement pipeline can observe:
//
//  1. Determinism — running the full FFM pipeline twice on the same
//     scenario produces byte-identical report JSON.
//  2. Benefit bound — the analysis never promises more benefit than the
//     time it measured: 0 ≤ TotalBenefit ≤ Σ recorded call durations plus
//     first-use spans.
//  3. Replay fidelity — replaying the scenario's own captured trace
//     reproduces its analysis JSON byte for byte.
//
// A fourth invariant (an autofix-patched variant realizes non-negative
// benefit and never runs slower than its baseline) lives in the external
// test package, because autofix imports experiments.
package experiments

import (
	"bytes"
	"fmt"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// Scenario names one seeded draw from a generative family.
type Scenario struct {
	Family string
	Seed   uint64
	Steps  int
}

func (s Scenario) String() string {
	return fmt.Sprintf("%s/seed=%d/steps=%d", s.Family, s.Seed, s.Steps)
}

// PropertyError reports which invariant a scenario violated.
type PropertyError struct {
	Scenario  Scenario
	Invariant string
	Detail    string
}

func (e *PropertyError) Error() string {
	return fmt.Sprintf("property %q violated by %s: %s", e.Invariant, e.Scenario, e.Detail)
}

func (s Scenario) fail(invariant, format string, args ...any) error {
	return &PropertyError{Scenario: s, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
}

// runScenario executes the full FFM pipeline on one fresh instance of the
// scenario's application.
func runScenario(s Scenario, cfg ffm.Config) (*ffm.Report, error) {
	fam, err := apps.FamilyByName(s.Family)
	if err != nil {
		return nil, err
	}
	rep, err := ffm.Run(fam.New(s.Seed, s.Steps, cfg.Factory), cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: pipeline: %w", s, err)
	}
	return rep, nil
}

// CheckInvariants runs a scenario through the measurement pipeline and
// verifies the determinism, benefit-bound, and replay-fidelity invariants.
// It returns the first run's report so callers can stack further checks
// (the autofix invariant, distribution statistics) on top.
func CheckInvariants(s Scenario, cfg ffm.Config) (*ffm.Report, error) {
	rep, err := runScenario(s, cfg)
	if err != nil {
		return nil, err
	}

	// Invariant 1: the pipeline is a pure function of (scenario, config).
	again, err := runScenario(s, cfg)
	if err != nil {
		return nil, err
	}
	first, err := marshalReport(rep)
	if err != nil {
		return nil, err
	}
	second, err := marshalReport(again)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(first, second) {
		return nil, s.fail("determinism",
			"two identical runs serialized to %d vs %d bytes", len(first), len(second))
	}

	// Invariant 2: expected benefit is grounded in measured time. Figure
	// 5's evaluation claims at most the wait pool of an unnecessary
	// synchronization, the CPU launch time of an unnecessary transfer, and
	// the (unclamped, per the paper) time-to-first-use of a misplaced
	// synchronization — so the sum can never exceed the total recorded
	// call time plus the recorded first-use spans.
	benefit := rep.Analysis.TotalBenefit()
	if benefit < 0 {
		return nil, s.fail("benefit-bound", "negative total benefit %v", benefit)
	}
	if ceiling := benefitCeiling(rep.Trace); benefit > ceiling {
		return nil, s.fail("benefit-bound",
			"total benefit %v exceeds measured ceiling %v (sync wait %v)",
			benefit, ceiling, rep.Trace.TotalSyncWait())
	}

	// Invariant 3: the captured trace is a faithful stand-in for the app.
	var doc bytes.Buffer
	if err := rep.Trace.WriteJSON(&doc); err != nil {
		return nil, fmt.Errorf("%s: trace export: %w", s, err)
	}
	captured, err := trace.ReadJSON(&doc)
	if err != nil {
		return nil, fmt.Errorf("%s: trace import: %w", s, err)
	}
	replayed, err := ffm.Run(apps.NewReplayApp(captured), cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: replay pipeline: %w", s, err)
	}
	origAnalysis, err := marshalAnalysis(rep)
	if err != nil {
		return nil, err
	}
	replayAnalysis, err := marshalAnalysis(replayed)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(origAnalysis, replayAnalysis) {
		return nil, s.fail("replay-fidelity",
			"replayed analysis differs from original (%d vs %d bytes):\n%s",
			len(origAnalysis), len(replayAnalysis), firstDiff(origAnalysis, replayAnalysis))
	}

	return rep, nil
}

// benefitCeiling is the hard upper bound any honest benefit estimate must
// respect: every recorded call's full duration (which contains its sync
// wait) plus every recorded first-use span. No fix can recover time the
// measurement never attributed to a recorded operation.
func benefitCeiling(run *trace.Run) simtime.Duration {
	var total simtime.Duration
	for i := range run.Records {
		rec := &run.Records[i]
		total += rec.Duration() + rec.FirstUse
	}
	return total
}

func marshalReport(rep *ffm.Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func marshalAnalysis(rep *ffm.Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := rep.Analysis.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// firstDiff renders the first line on which two renderings diverge.
func firstDiff(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("line %d:\noriginal: %s\nreplay:   %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(w), len(g))
}
