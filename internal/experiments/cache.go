package experiments

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"diogenes/internal/apps"
	"diogenes/internal/cuda"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/obs"
	"diogenes/internal/simtime"
)

// cacheableConfig is the canonical encoding of everything in an ffm.Config
// that can change a pipeline's output. Config.Workers is deliberately
// absent: stage parallelism never changes results (the determinism tests
// prove it), so serial and parallel executions share cache entries.
// Factory.Prepare is a function and cannot be fingerprinted, so configs
// carrying one are rejected as uncachable instead of being silently
// conflated.
type cacheableConfig struct {
	GPU       gpu.Config          `json:"gpu"`
	CUDA      cuda.Config         `json:"cuda"`
	Devices   int                 `json:"devices"`
	Overheads ffm.Overheads       `json:"overheads"`
	Analysis  ffm.AnalysisOptions `json:"analysis"`
}

// CacheKey returns the content-addressed key identifying one pipeline
// execution: application name, workload scale, build variant, and a digest
// of the full run configuration (machine model, instrumentation overheads,
// analysis options). Two executions with equal keys produce byte-identical
// reports. The second result is false when the configuration cannot be
// fingerprinted (a Factory with a Prepare hook); such runs must not be
// cached.
func CacheKey(app string, scale float64, variant apps.Variant, cfg ffm.Config) (string, bool) {
	if cfg.Factory.Prepare != nil {
		return "", false
	}
	cc, err := json.Marshal(cacheableConfig{
		GPU:       cfg.Factory.GPU,
		CUDA:      cfg.Factory.CUDA,
		Devices:   cfg.Factory.Devices,
		Overheads: cfg.Overheads,
		Analysis:  cfg.Analysis,
	})
	if err != nil {
		return "", false
	}
	// Length-prefix every variable-width field so no two distinct
	// (app, scale, variant, config) tuples share an encoding.
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(app)))
	h.Write(lenBuf[:])
	h.Write([]byte(app))
	binary.BigEndian.PutUint64(lenBuf[:], math.Float64bits(scale))
	h.Write(lenBuf[:])
	binary.BigEndian.PutUint64(lenBuf[:], uint64(int64(variant)))
	h.Write(lenBuf[:])
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(cc)))
	h.Write(lenBuf[:])
	h.Write(cc)
	return hex.EncodeToString(h.Sum(nil)), true
}

// ReportCache memoizes pipeline outputs by content-addressed key so the
// evaluation suites (table1, table2, autofix verify) stop re-running
// identical pipelines: all three need the same per-app FFM report, and the
// benefit tables additionally re-measure the same uninstrumented runtimes.
// The cache is safe for concurrent use and deduplicates in-flight work —
// two workers asking for the same key run the pipeline once.
//
// Memory is bounded: SetByteBudget caps the resident serialized-report
// bytes, and crossing the cap evicts least-recently-used completed entries
// (counted on cache/evictions). The budget is soft by exactly one entry —
// the most recently computed result is never evicted by its own arrival,
// so a single oversized report is returned and retained rather than
// thrashed. The default budget of zero keeps the historical unbounded
// behaviour.
//
// Cached values are shared: callers must treat a returned *ffm.Report as
// immutable.
type ReportCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	order   *list.List // front = most recently used
	budget  int64
	bytes   int64

	hits      int64
	misses    int64
	evictions int64

	mHits  *obs.Counter
	mMiss  *obs.Counter
	mBytes *obs.Counter
	mEvict *obs.Counter
	mSize  *obs.Gauge
}

type cacheEntry struct {
	key  string
	elem *list.Element
	once sync.Once
	val  any
	err  error
	// cost and accounted are written inside once.Do and then published
	// under the cache mutex by charge; eviction only considers accounted
	// (i.e. completed) entries, so in-flight work keeps its dedup entry.
	cost      int64
	accounted bool
}

// NewReportCache returns an empty, unbounded cache.
func NewReportCache() *ReportCache {
	return &ReportCache{entries: make(map[string]*cacheEntry), order: list.New()}
}

// SetByteBudget caps the cache's resident cost at n bytes (serialized
// report size for reports, a small nominal cost for runtimes), evicting
// LRU entries immediately if the cache is already over. n <= 0 removes the
// bound.
func (c *ReportCache) SetByteBudget(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = n
	c.evictLocked(nil)
	c.mSize.Set(float64(c.bytes))
}

// SetMetrics mirrors the cache's accounting to a self-measurement
// registry: cache/hits, cache/misses, cache/evictions, the resident-cost
// gauge cache/bytes, and — for each report computed through the cache —
// the cumulative serialized report size (cache/report_bytes). Nil receiver
// and nil registry are both no-ops.
func (c *ReportCache) SetMetrics(m *obs.Registry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = m.Counter("cache/hits")
	c.mMiss = m.Counter("cache/misses")
	c.mBytes = m.Counter("cache/report_bytes")
	c.mEvict = m.Counter("cache/evictions")
	c.mSize = m.Gauge("cache/bytes")
}

// do returns the memoized value for key, computing it (and its retention
// cost) at most once. hit reports whether this call found an existing
// entry — the same event the hit counter records, decided atomically at
// lookup, so concurrent callers get accurate per-call attribution (a
// Stats() delta taken around the call could count a neighbor's hit).
func (c *ReportCache) do(key string, compute func() (any, int64, error)) (v any, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{key: key}
		e.elem = c.order.PushFront(e)
		c.entries[key] = e
		c.misses++
		c.mMiss.Inc()
	} else {
		c.order.MoveToFront(e.elem)
		c.hits++
		c.mHits.Inc()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.val, e.cost, e.err = compute()
		c.charge(e)
	})
	return e.val, ok, e.err
}

// charge publishes a freshly computed entry's cost and enforces the
// budget. The entry may already have been evicted while it was computing;
// then there is nothing to account.
func (c *ReportCache) charge(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, present := c.entries[e.key]; present && cur == e && !e.accounted {
		e.accounted = true
		c.bytes += e.cost
		c.evictLocked(e)
	}
	c.mSize.Set(float64(c.bytes))
}

// evictLocked removes least-recently-used completed entries until the
// cache fits its budget, never evicting keep (the entry that triggered the
// pass) or entries still computing. c.mu must be held.
func (c *ReportCache) evictLocked(keep *cacheEntry) {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		var victim *cacheEntry
		for el := c.order.Back(); el != nil; el = el.Prev() {
			cand := el.Value.(*cacheEntry)
			if cand.accounted && cand != keep {
				victim = cand
				break
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.order.Remove(victim.elem)
		c.bytes -= victim.cost
		c.evictions++
		c.mEvict.Inc()
	}
}

// Report memoizes a full pipeline report. Its retention cost is the
// serialized report size.
func (c *ReportCache) Report(key string, compute func() (*ffm.Report, error)) (*ffm.Report, error) {
	rep, _, err := c.ReportHit(key, compute)
	return rep, err
}

// ReportHit is Report with per-call hit attribution: hit is true when
// this call was served by an existing entry (including one another
// caller is still computing — the in-flight dedup means this call ran no
// pipeline).
func (c *ReportCache) ReportHit(key string, compute func() (*ffm.Report, error)) (*ffm.Report, bool, error) {
	v, hit, err := c.do("report/"+key, func() (any, int64, error) {
		rep, err := compute()
		if err != nil {
			return rep, 0, err
		}
		size := serializedSize(rep)
		c.mu.Lock()
		bytesCounter := c.mBytes
		c.mu.Unlock()
		bytesCounter.Add(size)
		return rep, size, nil
	})
	if err != nil {
		return nil, hit, err
	}
	rep, ok := v.(*ffm.Report)
	if !ok {
		return nil, hit, fmt.Errorf("experiments: cache key %q holds %T, not a report", key, v)
	}
	return rep, hit, nil
}

// runtimeEntryCost is the nominal budget charge for a memoized duration —
// the entry bookkeeping dwarfs the value itself.
const runtimeEntryCost = 64

// Runtime memoizes an uninstrumented execution time.
func (c *ReportCache) Runtime(key string, compute func() (simtime.Duration, error)) (simtime.Duration, error) {
	v, _, err := c.do("runtime/"+key, func() (any, int64, error) {
		d, err := compute()
		return d, runtimeEntryCost, err
	})
	if err != nil {
		return 0, err
	}
	d, ok := v.(simtime.Duration)
	if !ok {
		return 0, fmt.Errorf("experiments: cache key %q holds %T, not a duration", key, v)
	}
	return d, nil
}

// serializedSize measures a report's JSON encoding without retaining it.
func serializedSize(rep *ffm.Report) int64 {
	if rep == nil {
		return 0
	}
	var n countingWriter
	if err := rep.WriteJSON(&n); err != nil {
		return 0
	}
	return int64(n)
}

// countingWriter is an io.Writer that only counts.
type countingWriter int64

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}

// Stats returns the hit/miss counters and the number of distinct entries.
func (c *ReportCache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// Bytes returns the resident retention cost of all completed entries.
func (c *ReportCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Evictions returns how many entries the byte budget has evicted.
func (c *ReportCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
