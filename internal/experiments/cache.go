package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"diogenes/internal/apps"
	"diogenes/internal/cuda"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/obs"
	"diogenes/internal/simtime"
)

// cacheableConfig is the canonical encoding of everything in an ffm.Config
// that can change a pipeline's output. Config.Workers is deliberately
// absent: stage parallelism never changes results (the determinism tests
// prove it), so serial and parallel executions share cache entries.
// Factory.Prepare is a function and cannot be fingerprinted, so configs
// carrying one are rejected as uncachable instead of being silently
// conflated.
type cacheableConfig struct {
	GPU       gpu.Config          `json:"gpu"`
	CUDA      cuda.Config         `json:"cuda"`
	Devices   int                 `json:"devices"`
	Overheads ffm.Overheads       `json:"overheads"`
	Analysis  ffm.AnalysisOptions `json:"analysis"`
}

// CacheKey returns the content-addressed key identifying one pipeline
// execution: application name, workload scale, build variant, and a digest
// of the full run configuration (machine model, instrumentation overheads,
// analysis options). Two executions with equal keys produce byte-identical
// reports. The second result is false when the configuration cannot be
// fingerprinted (a Factory with a Prepare hook); such runs must not be
// cached.
func CacheKey(app string, scale float64, variant apps.Variant, cfg ffm.Config) (string, bool) {
	if cfg.Factory.Prepare != nil {
		return "", false
	}
	cc, err := json.Marshal(cacheableConfig{
		GPU:       cfg.Factory.GPU,
		CUDA:      cfg.Factory.CUDA,
		Devices:   cfg.Factory.Devices,
		Overheads: cfg.Overheads,
		Analysis:  cfg.Analysis,
	})
	if err != nil {
		return "", false
	}
	// Length-prefix every variable-width field so no two distinct
	// (app, scale, variant, config) tuples share an encoding.
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(app)))
	h.Write(lenBuf[:])
	h.Write([]byte(app))
	binary.BigEndian.PutUint64(lenBuf[:], math.Float64bits(scale))
	h.Write(lenBuf[:])
	binary.BigEndian.PutUint64(lenBuf[:], uint64(int64(variant)))
	h.Write(lenBuf[:])
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(cc)))
	h.Write(lenBuf[:])
	h.Write(cc)
	return hex.EncodeToString(h.Sum(nil)), true
}

// ReportCache memoizes pipeline outputs by content-addressed key so the
// evaluation suites (table1, table2, autofix verify) stop re-running
// identical pipelines: all three need the same per-app FFM report, and the
// benefit tables additionally re-measure the same uninstrumented runtimes.
// The cache is safe for concurrent use and deduplicates in-flight work —
// two workers asking for the same key run the pipeline once.
//
// Cached values are shared: callers must treat a returned *ffm.Report as
// immutable.
type ReportCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int64
	misses  int64

	mHits   *obs.Counter
	mMisses *obs.Counter
	mBytes  *obs.Counter
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewReportCache returns an empty cache.
func NewReportCache() *ReportCache {
	return &ReportCache{entries: make(map[string]*cacheEntry)}
}

// SetMetrics mirrors the cache's hit/miss accounting to a self-measurement
// registry (cache/hits, cache/misses) and, for each report computed through
// the cache, the serialized report size (cache/report_bytes). Nil receiver
// and nil registry are both no-ops.
func (c *ReportCache) SetMetrics(m *obs.Registry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = m.Counter("cache/hits")
	c.mMisses = m.Counter("cache/misses")
	c.mBytes = m.Counter("cache/report_bytes")
}

// do returns the memoized value for key, computing it at most once.
func (c *ReportCache) do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = new(cacheEntry)
		c.entries[key] = e
		c.misses++
		c.mMisses.Inc()
	} else {
		c.hits++
		c.mHits.Inc()
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Report memoizes a full pipeline report.
func (c *ReportCache) Report(key string, compute func() (*ffm.Report, error)) (*ffm.Report, error) {
	v, err := c.do("report/"+key, func() (any, error) {
		rep, err := compute()
		if err == nil {
			c.recordReportSize(rep)
		}
		return rep, err
	})
	if err != nil {
		return nil, err
	}
	rep, ok := v.(*ffm.Report)
	if !ok {
		return nil, fmt.Errorf("experiments: cache key %q holds %T, not a report", key, v)
	}
	return rep, nil
}

// Runtime memoizes an uninstrumented execution time.
func (c *ReportCache) Runtime(key string, compute func() (simtime.Duration, error)) (simtime.Duration, error) {
	v, err := c.do("runtime/"+key, func() (any, error) { return compute() })
	if err != nil {
		return 0, err
	}
	d, ok := v.(simtime.Duration)
	if !ok {
		return 0, fmt.Errorf("experiments: cache key %q holds %T, not a duration", key, v)
	}
	return d, nil
}

// recordReportSize books a freshly computed report's serialized size on the
// cache/report_bytes counter. The extra serialization runs only when a
// metrics registry is attached — the unobserved path pays nothing.
func (c *ReportCache) recordReportSize(rep *ffm.Report) {
	c.mu.Lock()
	bytesCounter := c.mBytes
	c.mu.Unlock()
	if bytesCounter == nil || rep == nil {
		return
	}
	var n countingWriter
	if err := rep.WriteJSON(&n); err == nil {
		bytesCounter.Add(int64(n))
	}
}

// countingWriter is an io.Writer that only counts.
type countingWriter int64

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}

// Stats returns the hit/miss counters and the number of distinct entries.
func (c *ReportCache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
