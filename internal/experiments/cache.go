package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"diogenes/internal/apps"
	"diogenes/internal/cuda"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// cacheableConfig is the canonical encoding of everything in an ffm.Config
// that can change a pipeline's output. Config.Workers is deliberately
// absent: stage parallelism never changes results (the determinism tests
// prove it), so serial and parallel executions share cache entries.
// Factory.Prepare is a function and cannot be fingerprinted, so configs
// carrying one are rejected as uncachable instead of being silently
// conflated.
type cacheableConfig struct {
	GPU       gpu.Config          `json:"gpu"`
	CUDA      cuda.Config         `json:"cuda"`
	Devices   int                 `json:"devices"`
	Overheads ffm.Overheads       `json:"overheads"`
	Analysis  ffm.AnalysisOptions `json:"analysis"`
}

// CacheKey returns the content-addressed key identifying one pipeline
// execution: application name, workload scale, build variant, and a digest
// of the full run configuration (machine model, instrumentation overheads,
// analysis options). Two executions with equal keys produce byte-identical
// reports. The second result is false when the configuration cannot be
// fingerprinted (a Factory with a Prepare hook); such runs must not be
// cached.
func CacheKey(app string, scale float64, variant apps.Variant, cfg ffm.Config) (string, bool) {
	if cfg.Factory.Prepare != nil {
		return "", false
	}
	cc, err := json.Marshal(cacheableConfig{
		GPU:       cfg.Factory.GPU,
		CUDA:      cfg.Factory.CUDA,
		Devices:   cfg.Factory.Devices,
		Overheads: cfg.Overheads,
		Analysis:  cfg.Analysis,
	})
	if err != nil {
		return "", false
	}
	// Length-prefix every variable-width field so no two distinct
	// (app, scale, variant, config) tuples share an encoding.
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(app)))
	h.Write(lenBuf[:])
	h.Write([]byte(app))
	binary.BigEndian.PutUint64(lenBuf[:], math.Float64bits(scale))
	h.Write(lenBuf[:])
	binary.BigEndian.PutUint64(lenBuf[:], uint64(int64(variant)))
	h.Write(lenBuf[:])
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(cc)))
	h.Write(lenBuf[:])
	h.Write(cc)
	return hex.EncodeToString(h.Sum(nil)), true
}

// ReportCache memoizes pipeline outputs by content-addressed key so the
// evaluation suites (table1, table2, autofix verify) stop re-running
// identical pipelines: all three need the same per-app FFM report, and the
// benefit tables additionally re-measure the same uninstrumented runtimes.
// The cache is safe for concurrent use and deduplicates in-flight work —
// two workers asking for the same key run the pipeline once.
//
// Cached values are shared: callers must treat a returned *ffm.Report as
// immutable.
type ReportCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewReportCache returns an empty cache.
func NewReportCache() *ReportCache {
	return &ReportCache{entries: make(map[string]*cacheEntry)}
}

// do returns the memoized value for key, computing it at most once.
func (c *ReportCache) do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = new(cacheEntry)
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Report memoizes a full pipeline report.
func (c *ReportCache) Report(key string, compute func() (*ffm.Report, error)) (*ffm.Report, error) {
	v, err := c.do("report/"+key, func() (any, error) { return compute() })
	if err != nil {
		return nil, err
	}
	rep, ok := v.(*ffm.Report)
	if !ok {
		return nil, fmt.Errorf("experiments: cache key %q holds %T, not a report", key, v)
	}
	return rep, nil
}

// Runtime memoizes an uninstrumented execution time.
func (c *ReportCache) Runtime(key string, compute func() (simtime.Duration, error)) (simtime.Duration, error) {
	v, err := c.do("runtime/"+key, func() (any, error) { return compute() })
	if err != nil {
		return 0, err
	}
	d, ok := v.(simtime.Duration)
	if !ok {
		return 0, fmt.Errorf("experiments: cache key %q holds %T, not a duration", key, v)
	}
	return d, nil
}

// Stats returns the hit/miss counters and the number of distinct entries.
func (c *ReportCache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
