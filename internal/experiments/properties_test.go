// The property suite: every generative family × many seeds, four
// invariants per scenario. Three (determinism, benefit bound, replay
// fidelity) live in CheckInvariants; the fourth — autofix soundness — is
// asserted here, in the external test package, because autofix imports
// experiments.
//
// Seed count is controlled by DIOGENES_PROPERTY_SEEDS (default 5 for local
// runs; CI sets 200+).
package experiments_test

import (
	"os"
	"strconv"
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/autofix"
	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/proc"
)

// propertySteps keeps one scenario cheap enough that hundreds of seeds per
// family stay within a CI budget while still covering multi-epoch loops.
const propertySteps = 20

func propertySeeds(t *testing.T) uint64 {
	t.Helper()
	env := os.Getenv("DIOGENES_PROPERTY_SEEDS")
	if env == "" {
		return 5
	}
	n, err := strconv.ParseUint(env, 10, 32)
	if err != nil || n == 0 {
		t.Fatalf("invalid DIOGENES_PROPERTY_SEEDS=%q: %v", env, err)
	}
	return n
}

// TestPropertyInvariants is the harness entry point: for every family and
// seed it checks that the pipeline is deterministic, that promised benefit
// never exceeds measured synchronization wait, that replaying the captured
// trace reproduces the analysis byte for byte, and that an autofix-patched
// variant realizes non-negative benefit (never runs slower than baseline).
func TestPropertyInvariants(t *testing.T) {
	seeds := propertySeeds(t)
	for _, fam := range apps.Families() {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			cfg := ffm.DefaultConfig()
			planned := 0
			for seed := uint64(1); seed <= seeds; seed++ {
				s := experiments.Scenario{Family: fam.Name, Seed: seed, Steps: propertySteps}
				rep, err := experiments.CheckInvariants(s, cfg)
				if err != nil {
					t.Fatal(err)
				}

				// Invariant 4: autofix soundness. A patched run must never
				// be slower than its own unpatched baseline, and a tripped
				// correctness guard must invalidate the fix, not panic.
				plan := autofix.BuildPlan(rep.Analysis, autofix.DefaultOptions())
				if len(plan.Actions) == 0 {
					continue
				}
				planned++
				build := func(f proc.Factory) proc.App {
					return fam.New(s.Seed, s.Steps, f)
				}
				v, err := autofix.ApplyWith(build, cfg.Factory, plan, autofix.DefaultOptions())
				if err != nil {
					t.Fatalf("%s: autofix apply: %v", s, err)
				}
				if !v.Valid {
					if v.GuardViolation == "" {
						t.Fatalf("%s: invalid autofix validation without a guard violation", s)
					}
					continue // guard rejected the fix: sound, just not profitable
				}
				if v.Realized < 0 {
					t.Errorf("%s: autofix made the app slower: original %v, patched %v",
						s, v.OriginalTime, v.PatchedTime)
				}
			}
			t.Logf("%s: %d/%d scenarios produced autofix plans", fam.Name, planned, seeds)
		})
	}
}

// TestCheckInvariantsRejectsUnknownFamily covers the harness error path.
func TestCheckInvariantsRejectsUnknownFamily(t *testing.T) {
	s := experiments.Scenario{Family: "no-such-family", Seed: 1, Steps: 5}
	if _, err := experiments.CheckInvariants(s, ffm.DefaultConfig()); err == nil {
		t.Fatal("unknown family accepted")
	}
}
