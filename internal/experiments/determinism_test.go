package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/proc"
)

// updateGolden rewrites the committed golden files from the current serial
// pipeline output: go test ./internal/experiments -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite determinism golden files")

// goldenScale keeps the golden files small while running every app shape.
const goldenScale = 0.02

// reportJSON serializes a full report.
func reportJSON(t *testing.T, rep *ffm.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// analysisJSON serializes just the stage-5 analysis (the committed golden
// payload — compact, and covering every benefit number the tool reports).
func analysisJSON(t *testing.T, rep *ffm.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.Analysis.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelReportByteIdentical is the headline determinism claim: for
// every modelled application, the parallel engine (stage-2 concurrent with
// stages 3→4, apps fanned out over four workers) produces a Report whose
// complete JSON serialization — baseline, annotated trace, device ops,
// stage times, analysis — is byte-identical to the serial pipeline's.
func TestParallelReportByteIdentical(t *testing.T) {
	serial := &Engine{Workers: 1}
	parallel := NewEngine(4)
	for _, spec := range apps.Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			sRep, err := serial.RunApp(spec.Name, goldenScale)
			if err != nil {
				t.Fatal(err)
			}
			pRep, err := parallel.RunApp(spec.Name, goldenScale)
			if err != nil {
				t.Fatal(err)
			}
			sBytes, pBytes := reportJSON(t, sRep), reportJSON(t, pRep)
			if !bytes.Equal(sBytes, pBytes) {
				t.Fatalf("parallel report differs from serial (serial %d bytes, parallel %d bytes)",
					len(sBytes), len(pBytes))
			}
		})
	}
}

// TestAnalysisGolden pins every application's serial analysis JSON to a
// committed golden file, so any future change to pipeline determinism —
// a reordered map walk, a nondeterministic group sort — fails loudly here
// rather than surfacing as flaky benefit numbers.
func TestAnalysisGolden(t *testing.T) {
	serial := &Engine{Workers: 1}
	for _, spec := range apps.Registry() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			rep, err := serial.RunApp(spec.Name, goldenScale)
			if err != nil {
				t.Fatal(err)
			}
			got := analysisJSON(t, rep)
			path := filepath.Join("testdata", spec.Name+".analysis.golden.json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("analysis diverged from golden %s (got %d bytes, want %d); rerun with -update if the change is intended",
					path, len(got), len(want))
			}
		})
	}
}

// TestParallelTable1MatchesSerial asserts the whole Table 1 — every row,
// every field — is identical between the serial package path and a
// four-worker engine.
func TestParallelTable1MatchesSerial(t *testing.T) {
	serialRows, err := Table1(goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := NewEngine(4).Table1(goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRows, parRows) {
		t.Fatalf("parallel Table 1 differs:\nserial:   %+v\nparallel: %+v", serialRows, parRows)
	}
}

// TestParallelTable2MatchesSerial does the same for a Table 2 section,
// which exercises the profiler comparators alongside the cached pipeline.
func TestParallelTable2MatchesSerial(t *testing.T) {
	names := []string{"rodinia_gaussian", "amg"}
	var serialSections [][]Table2Row
	for _, n := range names {
		rows, err := Table2For(n, goldenScale)
		if err != nil {
			t.Fatal(err)
		}
		serialSections = append(serialSections, rows)
	}
	parSections, err := NewEngine(4).Table2(goldenScale, names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialSections, parSections) {
		t.Fatal("parallel Table 2 differs from serial")
	}
}

// TestEngineCacheDeduplicates proves the content-addressed cache removes
// redundant pipeline executions across suites: table1 followed by table2
// and the autofix comparison re-uses every per-app report and runtime
// instead of re-running them.
func TestEngineCacheDeduplicates(t *testing.T) {
	eng := NewEngine(2)
	if _, err := eng.Table1(goldenScale); err != nil {
		t.Fatal(err)
	}
	_, missesAfterTable1, entries := eng.Cache.Stats()
	if entries == 0 {
		t.Fatal("table1 populated no cache entries")
	}
	if _, err := eng.Table2(goldenScale, []string{"rodinia_gaussian", "amg"}); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := eng.Cache.Stats()
	if misses != missesAfterTable1 {
		t.Fatalf("table2 re-ran %d pipelines the cache already held", misses-missesAfterTable1)
	}
	if hits == 0 {
		t.Fatal("table2 after table1 produced no cache hits")
	}
}

// TestRunAppErrors is the table-driven error-path contract for RunApp on
// both the serial and pooled engines.
func TestRunAppErrors(t *testing.T) {
	engines := map[string]*Engine{
		"serial":   {Workers: 1},
		"parallel": NewEngine(3),
	}
	tests := []struct {
		name string
		app  string
	}{
		{"unknown app", "hpl"},
		{"empty name", ""},
		{"case sensitivity", "CUMF_ALS"},
		{"whitespace", " cumf_als"},
	}
	for engName, eng := range engines {
		for _, tt := range tests {
			t.Run(engName+"/"+tt.name, func(t *testing.T) {
				if _, err := eng.RunApp(tt.app, goldenScale); err == nil {
					t.Fatalf("RunApp(%q) accepted", tt.app)
				}
				if _, _, err := eng.ActualReduction(tt.app, goldenScale); err == nil {
					t.Fatalf("ActualReduction(%q) accepted", tt.app)
				}
			})
		}
	}
}

// TestEngineRejectsNegativeWorkers proves pool construction errors
// propagate out of every suite entry point.
func TestEngineRejectsNegativeWorkers(t *testing.T) {
	bad := &Engine{Workers: -3}
	if _, err := bad.Table1(goldenScale); err == nil {
		t.Fatal("Table1 accepted a negative worker count")
	}
	if _, err := bad.Table2(goldenScale, []string{"amg"}); err == nil {
		t.Fatal("Table2 accepted a negative worker count")
	}
	if _, err := bad.AutofixTable(goldenScale, func(string, float64) (*AutofixRow, error) {
		return &AutofixRow{}, nil
	}); err == nil {
		t.Fatal("AutofixTable accepted a negative worker count")
	}
}

// TestCacheKeyProperties pins the key construction rules the cache relies
// on: stability, sensitivity to every tuple element, insensitivity to the
// Workers knob, and refusal to fingerprint Prepare hooks.
func TestCacheKeyProperties(t *testing.T) {
	cfg := ffm.DefaultConfig()
	base, ok := CacheKey("cumf_als", 0.1, apps.Original, cfg)
	if !ok || base == "" {
		t.Fatal("base key not produced")
	}
	if again, _ := CacheKey("cumf_als", 0.1, apps.Original, cfg); again != base {
		t.Fatal("key not deterministic")
	}

	workers := cfg
	workers.Workers = 8
	if k, _ := CacheKey("cumf_als", 0.1, apps.Original, workers); k != base {
		t.Fatal("Workers changed the key; serial and parallel runs must share entries")
	}

	variants := map[string]func() (string, bool){
		"app":     func() (string, bool) { return CacheKey("cuibm", 0.1, apps.Original, cfg) },
		"scale":   func() (string, bool) { return CacheKey("cumf_als", 0.2, apps.Original, cfg) },
		"variant": func() (string, bool) { return CacheKey("cumf_als", 0.1, apps.Fixed, cfg) },
		"config": func() (string, bool) {
			c := cfg
			c.Overheads.Stage3Probe++
			return CacheKey("cumf_als", 0.1, apps.Original, c)
		},
	}
	for name, fn := range variants {
		if k, ok := fn(); !ok || k == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}

	prepared := cfg
	prepared.Factory.Prepare = func(*proc.Process) {}
	if _, ok := CacheKey("cumf_als", 0.1, apps.Original, prepared); ok {
		t.Fatal("a config with a Prepare hook must be uncachable")
	}
}
