package experiments

import (
	"testing"
)

// testScale keeps the reproduction workloads small enough for unit tests
// while preserving every shape the assertions check.
const testScale = 0.1

func table1Row(t *testing.T, name string) *Table1Row {
	t.Helper()
	row, err := Table1For(name, testScale)
	if err != nil {
		t.Fatal(err)
	}
	return row
}

// TestTable1Shapes asserts the qualitative claims of Table 1: estimate and
// actual land in the paper's neighbourhoods, accuracy is in the 55-100%
// band, and the per-application orderings hold.
func TestTable1Shapes(t *testing.T) {
	rows := map[string]*Table1Row{}
	for _, name := range []string{"cumf_als", "cuibm", "amg", "rodinia_gaussian"} {
		rows[name] = table1Row(t, name)
	}

	type band struct{ lo, hi float64 }
	estBands := map[string]band{
		"cumf_als":         {8, 16}, // paper 10.0
		"cuibm":            {8, 17}, // paper 10.8
		"amg":              {4, 13}, // paper 6.8
		"rodinia_gaussian": {1, 4},  // paper 2.2
	}
	actBands := map[string]band{
		"cumf_als":         {6, 14},  // paper 8.3
		"cuibm":            {14, 28}, // paper 17.6
		"amg":              {4, 14},  // paper 5.8
		"rodinia_gaussian": {1, 4},   // paper 2.1
	}
	for name, row := range rows {
		if b := estBands[name]; row.EstimatedPct < b.lo || row.EstimatedPct > b.hi {
			t.Errorf("%s estimated %.2f%% outside [%v, %v]", name, row.EstimatedPct, b.lo, b.hi)
		}
		if b := actBands[name]; row.ActualPct < b.lo || row.ActualPct > b.hi {
			t.Errorf("%s actual %.2f%% outside [%v, %v]", name, row.ActualPct, b.lo, b.hi)
		}
		if row.Accuracy < 50 || row.Accuracy > 100 {
			t.Errorf("%s accuracy %.1f%% outside the paper's band", name, row.Accuracy)
		}
		if row.PaperEstPct == 0 {
			t.Errorf("%s missing paper reference values", name)
		}
	}

	// cuIBM's fix outperforms its estimate (the fix also removed the
	// malloc/free churn); cumf_als' and rodinia's estimates are close to
	// or above the realized benefit.
	if rows["cuibm"].ActualPct <= rows["cuibm"].EstimatedPct {
		t.Error("cuibm actual should exceed its estimate")
	}
	if rows["cumf_als"].ActualPct >= rows["cumf_als"].EstimatedPct {
		t.Error("cumf_als actual should fall short of its estimate")
	}
	// Rodinia has the highest accuracy of the four (paper: 92%).
	for _, name := range []string{"cumf_als", "cuibm"} {
		if rows[name].Accuracy >= rows["rodinia_gaussian"].Accuracy {
			t.Errorf("%s accuracy %.1f should be below rodinia's %.1f",
				name, rows[name].Accuracy, rows["rodinia_gaussian"].Accuracy)
		}
	}
}

// TestOverheadMultiples asserts §5.3: data collection costs multiples of
// the uninstrumented run, with cuIBM the most expensive and cumf_als around
// the band's lower end (paper: 8×–20×).
func TestOverheadMultiples(t *testing.T) {
	cumf := table1Row(t, "cumf_als")
	cuibm := table1Row(t, "cuibm")
	if cumf.Overhead < 4 || cumf.Overhead > 14 {
		t.Errorf("cumf_als overhead %.1fx outside [4, 14]", cumf.Overhead)
	}
	if cuibm.Overhead < 14 || cuibm.Overhead > 40 {
		t.Errorf("cuibm overhead %.1fx outside [14, 40]", cuibm.Overhead)
	}
	if cuibm.Overhead <= cumf.Overhead {
		t.Error("cuibm collection should cost more than cumf_als")
	}
}

// TestTable2CumfALS asserts the §5.2 headline: NVProf and HPCToolkit rank
// cudaDeviceSynchronize first with half the execution time, while Diogenes
// reports essentially nothing recoverable from it — the difference "can be
// as much as 99%".
func TestTable2CumfALS(t *testing.T) {
	rows, err := Table2For("cumf_als", testScale)
	if err != nil {
		t.Fatal(err)
	}
	byFunc := map[string]Table2Row{}
	for _, r := range rows {
		byFunc[r.Func] = r
	}

	ds := byFunc["cudaDeviceSynchronize"]
	if ds.NVProfPos != 1 {
		t.Errorf("NVProf ranks cudaDeviceSynchronize %d, want 1", ds.NVProfPos)
	}
	if ds.NVProfPct < 35 {
		t.Errorf("NVProf cudaDeviceSynchronize %.1f%%, want ~half of execution", ds.NVProfPct)
	}
	if !ds.DiogenesListed {
		t.Fatal("Diogenes lists no cudaDeviceSynchronize row")
	}
	if ds.DiogenesPct > 0.5 {
		t.Errorf("Diogenes cudaDeviceSynchronize savings %.2f%%, want ≈0", ds.DiogenesPct)
	}
	// The magnitude difference NVProf vs Diogenes is >99%.
	if ds.DiogenesSavings*50 > ds.NVProfTime {
		t.Errorf("difference < 98%%: nvprof %v vs diogenes %v", ds.NVProfTime, ds.DiogenesSavings)
	}

	free := byFunc["cudaFree"]
	if free.DiogenesPos != 1 {
		t.Errorf("Diogenes ranks cudaFree %d, want 1", free.DiogenesPos)
	}
	// Diogenes collects nothing on cudaMalloc and cudaLaunchKernel.
	if byFunc["cudaMalloc"].DiogenesListed {
		t.Error("Diogenes listed cudaMalloc")
	}
	if byFunc["cudaLaunchKernel"].DiogenesListed {
		t.Error("Diogenes listed cudaLaunchKernel")
	}
	// HPCToolkit reports lower shares than NVProf (§5.2's discrepancy).
	if byFunc["cudaDeviceSynchronize"].HPCPct >= ds.NVProfPct {
		t.Error("HPCToolkit share should be below NVProf's")
	}
}

// TestTable2CuIBMCrash asserts the NVProf crash and the fallback ordering.
func TestTable2CuIBMCrash(t *testing.T) {
	rows, err := Table2For("cuibm", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if !r.NVProfCrashed {
			t.Fatalf("NVProf did not crash on cuibm (row %s)", r.Func)
		}
		if r.NVProfTime != 0 {
			t.Fatal("crashed profiler produced times")
		}
	}
	byFunc := map[string]Table2Row{}
	for _, r := range rows {
		byFunc[r.Func] = r
	}
	if byFunc["cudaFree"].DiogenesPos != 1 {
		t.Errorf("Diogenes cuibm top row = cudaFree expected, got pos %d", byFunc["cudaFree"].DiogenesPos)
	}
	if !byFunc["cudaMemcpyAsync"].DiogenesListed {
		t.Error("conditional-sync cudaMemcpyAsync missing from Diogenes rows")
	}
	if byFunc["cudaFuncGetAttributes"].DiogenesListed {
		t.Error("Diogenes listed cudaFuncGetAttributes")
	}
	if byFunc["cudaFuncGetAttributes"].HPCTime == 0 {
		t.Error("HPCToolkit should see cudaFuncGetAttributes")
	}
}

// TestTable2AMG asserts the memset finding: cudaMemset tops Diogenes'
// savings even though profilers see it merely as one call among many.
func TestTable2AMG(t *testing.T) {
	rows, err := Table2For("amg", testScale)
	if err != nil {
		t.Fatal(err)
	}
	byFunc := map[string]Table2Row{}
	for _, r := range rows {
		byFunc[r.Func] = r
	}
	ms := byFunc["cudaMemset"]
	if !ms.DiogenesListed || ms.DiogenesPos > 2 {
		t.Errorf("cudaMemset Diogenes pos = %d, want 1-2", ms.DiogenesPos)
	}
	if !byFunc["cudaFree"].DiogenesListed {
		t.Error("cudaFree missing from AMG Diogenes rows")
	}
	if byFunc["cudaMallocManaged"].DiogenesListed {
		t.Error("Diogenes listed cudaMallocManaged")
	}
}

// TestTable2Rodinia asserts the Figure 4 small-benefit case: NVProf blames
// cudaThreadSynchronize for ~95% of execution; Diogenes knows only ~2% is
// recoverable.
func TestTable2Rodinia(t *testing.T) {
	rows, err := Table2For("rodinia_gaussian", testScale)
	if err != nil {
		t.Fatal(err)
	}
	byFunc := map[string]Table2Row{}
	for _, r := range rows {
		byFunc[r.Func] = r
	}
	ts := byFunc["cudaThreadSynchronize"]
	if ts.NVProfPos != 1 || ts.NVProfPct < 85 {
		t.Errorf("NVProf threadSync = %.1f%% pos %d, want ~95%% pos 1", ts.NVProfPct, ts.NVProfPos)
	}
	if ts.DiogenesPct > 5 {
		t.Errorf("Diogenes threadSync savings %.1f%%, want ~2%%", ts.DiogenesPct)
	}
}

func TestActualReductionRunsBothVariants(t *testing.T) {
	orig, fixed, err := ActualReduction("rodinia_gaussian", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if fixed >= orig {
		t.Fatalf("fixed %v not faster than original %v", fixed, orig)
	}
}

func TestAddressedEstimateUnknownApp(t *testing.T) {
	if _, err := AddressedEstimate("hpl", nil); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestNVProfConfigForScale(t *testing.T) {
	full := NVProfConfigForScale(1.0)
	small := NVProfConfigForScale(0.1)
	if small.MaxDriverRecords >= full.MaxDriverRecords {
		t.Fatal("limit not scaled")
	}
	tiny := NVProfConfigForScale(0.000001)
	if tiny.MaxDriverRecords < 1000 {
		t.Fatal("limit floor missing")
	}
}

func TestTable1AllApps(t *testing.T) {
	rows, err := Table1(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].App != "cumf_als" || rows[3].App != "rodinia_gaussian" {
		t.Fatalf("row order: %v, %v", rows[0].App, rows[3].App)
	}
}
