package experiments

import (
	"bytes"
	"sync"
	"testing"

	"diogenes/internal/trace"
)

// TestConcurrentRunAppsIsolatedRecordSlabs drives many concurrent,
// uncached Engine.RunApp calls and proves no live trace.Record slab is
// ever shared or recycled under a run that still holds it. Tracing now
// slab-allocates records from a process-wide pool (internal/trace.Arena),
// so the failure mode to rule out is one pipeline's records being
// scribbled over by another pipeline reusing its slab. Two detectors:
// the race detector (run this package with -race) flags any concurrent
// slab access, and the byte-comparison against a serial baseline flags
// recycled-slab corruption — a record overwritten after Finish would
// change the serialized trace.
func TestConcurrentRunAppsIsolatedRecordSlabs(t *testing.T) {
	const app = "rodinia_gaussian"
	baselineRep, err := (&Engine{Workers: 1}).RunApp(app, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	baseline := reportJSON(t, baselineRep)

	const racers = 8
	var wg sync.WaitGroup
	outputs := make([][]byte, racers)
	records := make([][]trace.Record, racers)
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Cache nil: every goroutine runs a full pipeline of its own,
			// allocating and releasing record slabs concurrently with the
			// other seven.
			eng := &Engine{Workers: 1, StageWorkers: 2}
			rep, err := eng.RunApp(app, goldenScale)
			if err != nil {
				errs[i] = err
				return
			}
			records[i] = rep.Trace.Records
			outputs[i] = reportJSON(t, rep)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	for i, out := range outputs {
		if !bytes.Equal(out, baseline) {
			t.Errorf("racer %d: report diverges from serial baseline (%d vs %d bytes)", i, len(out), len(baseline))
		}
	}
	// Distinct runs must not alias record storage: every run's backing
	// array is a private Finish copy, so overwriting one must not be
	// visible in another.
	for i := 0; i < racers; i++ {
		if len(records[i]) == 0 {
			t.Fatalf("racer %d: no records", i)
		}
		for j := i + 1; j < racers; j++ {
			if &records[i][0] == &records[j][0] {
				t.Errorf("racers %d and %d share a record backing array", i, j)
			}
		}
	}
	// Recycling detector: scribble over racer 0's records, then confirm
	// racer 1's serialization is untouched (they share nothing), and that
	// a fresh run — which will reuse pooled slabs racer 0's arena
	// released — still matches the baseline.
	for k := range records[0] {
		records[0][k].Func = "scribbled"
		records[0][k].Seq = -1
	}
	again, err := (&Engine{Workers: 1}).RunApp(app, goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, again), baseline) {
		t.Error("fresh run after scribbling a released arena's records diverges from baseline")
	}
	for k := range records[1] {
		if records[1][k].Func == "scribbled" || records[1][k].Seq < 0 {
			t.Fatalf("racer 1 record %d corrupted by writes to racer 0's records", k)
		}
	}
}
