package experiments

import (
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/simtime"
)

// FuzzCacheKey probes the content-addressed key construction: it must never
// panic, must be deterministic, and — because every variable-width field is
// length-prefixed — two tuples differing in any component must never
// collide, even when one component's bytes could be re-split to spell the
// other tuple (the classic "ab"+"c" vs "a"+"bc" ambiguity).
func FuzzCacheKey(f *testing.F) {
	f.Add("cumf_als", 0.1, int64(0), int64(50), "cuibm", 0.1)
	f.Add("", 0.0, int64(1), int64(0), "x", -1.5)
	f.Add("ab", 1.0, int64(2), int64(9), "a", 1.0)
	f.Fuzz(func(t *testing.T, app string, scale float64, variant, probe int64,
		app2 string, scale2 float64) {
		cfg := ffm.DefaultConfig()
		cfg.Overheads.Stage3Probe = simtime.Duration(probe)
		v := apps.Variant(variant)

		k1, ok := CacheKey(app, scale, v, cfg)
		if !ok {
			t.Fatal("plain config reported uncachable")
		}
		if k2, _ := CacheKey(app, scale, v, cfg); k2 != k1 {
			t.Fatalf("key not deterministic: %s vs %s", k1, k2)
		}
		if len(k1) != 64 {
			t.Fatalf("key is not a sha256 hex digest: %q", k1)
		}

		// A tuple differing in app or scale must produce a different key.
		if app2 != app || scale2 != scale {
			if k3, _ := CacheKey(app2, scale2, v, cfg); k3 == k1 {
				t.Fatalf("distinct tuples collided: (%q,%v) vs (%q,%v)",
					app, scale, app2, scale2)
			}
		}

		// Workers must never influence the key.
		withWorkers := cfg
		withWorkers.Workers = int(variant%16) + 2
		if k4, _ := CacheKey(app, scale, v, withWorkers); k4 != k1 {
			t.Fatal("Workers leaked into the cache key")
		}
	})
}
