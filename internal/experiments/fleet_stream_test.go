package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// skewedConfig is the explicit launch config for the skewedRanks program
// used by the at-scale determinism tests — cheap per rank, cross-rank
// duplicate-free, but exercising the full fold/merge/skew machinery.
func skewedConfig(ranks int) mpi.Config {
	return mpi.Config{
		Ranks:          ranks,
		BarrierLatency: 25 * simtime.Microsecond,
		Factory:        proc.DefaultFactory(),
	}
}

// streamGolden asserts every (workers, batch, spill budget) combination
// produces byte-identical fleet documents at the given width, and checks
// them against a committed golden file.
func streamGolden(t *testing.T, ranks int, goldenName string, configs []struct {
	workers int
	batch   int
	budget  int64
}) {
	t.Helper()
	var want []byte
	for _, c := range configs {
		eng := NewEngine(c.workers)
		eng.FleetBatch = c.batch
		eng.FleetSpillBudget = c.budget
		newProg := func(int) mpi.RankProgram { return &skewedRanks{steps: 1} }
		fr, err := eng.FleetOver("skewed-ranks", newProg, skewedConfig(ranks))
		if err != nil {
			t.Fatalf("workers=%d batch=%d budget=%d: %v", c.workers, c.batch, c.budget, err)
		}
		got := fleetJSON(t, fr)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d batch=%d budget=%d: fleet report differs (%d vs %d bytes)",
				c.workers, c.batch, c.budget, len(got), len(want))
		}
		p, ok := eng.FleetProgress()
		if !ok || p.RanksDone != ranks || p.RanksTotal != ranks {
			t.Fatalf("workers=%d: progress %+v ok=%v, want %d/%d", c.workers, p, ok, ranks, ranks)
		}
		if c.budget > 0 && c.budget < 1024 && p.Spills == 0 {
			t.Fatalf("workers=%d budget=%d: reduction never spilled", c.workers, c.budget)
		}
	}

	path := filepath.Join("testdata", goldenName)
	if *updateGolden {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, golden) {
		t.Fatalf("fleet report diverged from golden %s (got %d bytes, want %d); rerun with -update if the change is intended",
			path, len(want), len(golden))
	}
}

// TestFleetStreamDeterministic64 is the width-invariance claim at 64
// ranks: serial, 4-way and 8-way engines, unit and default batch sizes,
// and a spill-everything budget all produce the same bytes.
func TestFleetStreamDeterministic64(t *testing.T) {
	streamGolden(t, 64, "fleet_stream64.golden.json", []struct {
		workers int
		batch   int
		budget  int64
	}{
		{workers: 1},
		{workers: 4},
		{workers: 8},
		{workers: 4, batch: 1},
		{workers: 8, batch: 7},
		{workers: 8, budget: 1},
	})
}

// TestFleetStreamDeterministic256 repeats the claim at 256 ranks — wide
// enough that the default batching produces a real merge tree — with a
// spilling configuration in the mix.
func TestFleetStreamDeterministic256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-rank world simulation in -short mode")
	}
	streamGolden(t, 256, "fleet_stream256.golden.json", []struct {
		workers int
		batch   int
		budget  int64
	}{
		{workers: 1},
		{workers: 8},
		{workers: 8, batch: 5, budget: 1},
	})
}

// TestFleetStreamFaultMidTree injects a failure into a rank in the middle
// of the reduction tree and asserts the degraded report is byte-identical
// at every parallelism degree: a failed leaf must not perturb the merge
// order or the surviving aggregates.
func TestFleetStreamFaultMidTree(t *testing.T) {
	const ranks, bad = 64, 31
	var want []byte
	for _, workers := range []int{1, 4, 8} {
		eng := NewEngine(workers)
		eng.FleetBackoff = time.Nanosecond
		// Pin stage-serial pipelines: the failed rank's error *string*
		// depends on which goroutine recovers the panic (a stage worker
		// reports "sched: task ... panicked"), which is orthogonal to the
		// reduction determinism under test here.
		eng.StageWorkers = 0
		newProg := func(observed int) mpi.RankProgram {
			prog := mpi.RankProgram(&skewedRanks{steps: 1})
			if observed == bad {
				return &faultyProg{RankProgram: prog, failRank: bad, panics: true}
			}
			return prog
		}
		fr, err := eng.FleetOver("skewed-ranks", newProg, skewedConfig(ranks))
		if err != nil {
			t.Fatalf("workers=%d: injected fault failed the launch: %v", workers, err)
		}
		if !fr.Partial || len(fr.FailedRanks) != 1 || fr.FailedRanks[0] != bad {
			t.Fatalf("workers=%d: partial=%v failed=%v, want partial naming rank %d",
				workers, fr.Partial, fr.FailedRanks, bad)
		}
		if fr.Analyzed != ranks-1 {
			t.Fatalf("workers=%d: analyzed=%d, want %d", workers, fr.Analyzed, ranks-1)
		}
		got := fleetJSON(t, fr)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: degraded fleet report not deterministic", workers)
		}
	}
}

// TestFleetCancelSkipsBackoff is the draining-job guarantee: a canceled
// fleet does not hold a pool worker through the retry backoff. With a
// 30-second backoff and a context canceled mid-run, the launch must
// return promptly with a cancellation error.
func TestFleetCancelSkipsBackoff(t *testing.T) {
	spec := apps.Must("amg")
	eng := NewEngine(2)
	eng.FleetBackoff = 30 * time.Second
	newProg := func(observed int) mpi.RankProgram {
		prog := spec.MPI.Program(goldenScale, apps.Original)
		if observed == 0 {
			return &faultyProg{RankProgram: prog, failRank: 0}
		}
		return prog
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := eng.fleet(ctx, "amg", newProg, amgFleetConfig(2), nil)
	if err == nil {
		t.Fatal("canceled fleet returned a report")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled fleet held its worker %v — backoff not context-aware", elapsed)
	}
}

// TestFleetReduceSynthetic drives the public reduction entry point over
// fabricated outcomes — the benchmark path — and cross-checks it against
// AggregateFleet.
func TestFleetReduceSynthetic(t *testing.T) {
	const ranks = 128
	gen := func(rank int) ffm.RankOutcome {
		return ffm.RankOutcome{Rank: rank, Err: fmt.Sprintf("r%d", rank), Attempts: 2, Retried: true}
	}
	eng := NewEngine(8)
	fr, err := eng.FleetReduce("synthetic", ranks, gen)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]ffm.RankOutcome, ranks)
	for r := range outcomes {
		outcomes[r] = gen(r)
	}
	want := ffm.AggregateFleet("synthetic", ranks, outcomes, nil)
	if !bytes.Equal(fleetJSON(t, fr), fleetJSON(t, want)) {
		t.Fatal("FleetReduce differs from AggregateFleet")
	}
	if len(fr.FailedRanks) != ranks {
		t.Fatalf("failed ranks = %d, want %d", len(fr.FailedRanks), ranks)
	}
}

// TestReportHitPerCallAttribution pins the FromCache fix: the hit flag is
// decided per call at entry lookup, so under heavy concurrency exactly
// one caller per key observes a miss — a Stats()-delta heuristic could
// attribute a neighbor's hit to a missing caller.
func TestReportHitPerCallAttribution(t *testing.T) {
	c := NewReportCache()
	const keys, callers = 4, 8
	var wg sync.WaitGroup
	var misses atomic.Int64
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, hit, err := c.ReportHit(key, func() (*ffm.Report, error) {
					return &ffm.Report{App: key}, nil
				})
				if err != nil {
					t.Error(err)
				}
				if !hit {
					misses.Add(1)
				}
			}()
		}
	}
	wg.Wait()
	if misses.Load() != keys {
		t.Fatalf("got %d misses across %d keys, want exactly one per key", misses.Load(), keys)
	}
}
