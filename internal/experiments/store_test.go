package experiments

import "testing"

func TestRunKeyStableAcrossEngines(t *testing.T) {
	a := NewEngine(1)
	b := NewEngine(4) // worker counts must not influence keys
	ka, ok := a.RunKey("rodinia_gaussian", 0.1)
	if !ok {
		t.Fatal("RunKey not cacheable")
	}
	kb, ok := b.RunKey("rodinia_gaussian", 0.1)
	if !ok || ka != kb {
		t.Fatalf("run keys differ across engine widths: %q vs %q", ka, kb)
	}
	if k2, _ := a.RunKey("rodinia_gaussian", 0.2); k2 == ka {
		t.Fatal("scale not part of the run key")
	}
	if _, ok := a.RunKey("no_such_app", 0.1); ok {
		t.Fatal("unknown app produced a key")
	}
}

func TestSuiteKeyDistinguishesKindScopeScale(t *testing.T) {
	e := NewEngine(1)
	base, ok := e.SuiteKey("table1", 0.1, nil)
	if !ok {
		t.Fatal("suite key not cacheable")
	}
	if k, _ := e.SuiteKey("table2", 0.1, nil); k == base {
		t.Fatal("kind not part of the suite key")
	}
	if k, _ := e.SuiteKey("table1", 0.2, nil); k == base {
		t.Fatal("scale not part of the suite key")
	}
	if k, _ := e.SuiteKey("table1", 0.1, []string{"cuibm"}); k == base {
		t.Fatal("scope not part of the suite key")
	}
	again, _ := e.SuiteKey("table1", 0.1, nil)
	if again != base {
		t.Fatal("suite key not deterministic")
	}
	if _, ok := e.SuiteKey("run", 0.1, []string{"no_such_app"}); ok {
		t.Fatal("unknown app in scope produced a key")
	}
}
