package experiments

import (
	"fmt"
	"testing"

	"diogenes/internal/ffm"
	"diogenes/internal/obs"
)

// fakeReport builds a minimal report whose serialized size is stable, for
// exercising the byte budget without running pipelines.
func fakeReport(app string) *ffm.Report {
	return &ffm.Report{App: app}
}

func TestReportCacheByteBudgetEvictsLRU(t *testing.T) {
	c := NewReportCache()
	m := obs.NewRegistry()
	c.SetMetrics(m)

	one := serializedSize(fakeReport("app-0"))
	if one <= 0 {
		t.Fatalf("serializedSize = %d, want > 0", one)
	}
	c.SetByteBudget(3 * one)

	get := func(i int) {
		t.Helper()
		rep, err := c.Report(fmt.Sprintf("key-%d", i), func() (*ffm.Report, error) {
			return fakeReport(fmt.Sprintf("app-%d", i)), nil
		})
		if err != nil || rep == nil {
			t.Fatalf("Report(%d): %v", i, err)
		}
	}

	for i := 0; i < 3; i++ {
		get(i)
	}
	if ev := c.Evictions(); ev != 0 {
		t.Fatalf("evictions = %d before exceeding budget", ev)
	}
	get(3) // over budget: key-0 is LRU and must go
	if ev := c.Evictions(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if got := m.Counter("cache/evictions").Value(); got != 1 {
		t.Fatalf("cache/evictions counter = %d, want 1", got)
	}
	if got, want := c.Bytes(), 3*one; got != want {
		t.Fatalf("resident bytes = %d, want %d", got, want)
	}

	// key-0 was evicted: asking again recomputes (a miss), while key-3 is
	// still resident (a hit).
	_, missesBefore, _ := c.Stats()
	get(0)
	_, missesAfter, _ := c.Stats()
	if missesAfter != missesBefore+1 {
		t.Fatalf("re-fetch of evicted key: misses %d -> %d, want a new miss", missesBefore, missesAfter)
	}
	hitsBefore, _, _ := c.Stats()
	get(3)
	hitsAfter, _, _ := c.Stats()
	if hitsAfter != hitsBefore+1 {
		t.Fatalf("fetch of resident key: hits %d -> %d, want a hit", hitsBefore, hitsAfter)
	}
}

func TestReportCacheLRUOrderFollowsUse(t *testing.T) {
	c := NewReportCache()
	one := serializedSize(fakeReport("app-0"))
	c.SetByteBudget(2 * one)

	get := func(i int) {
		t.Helper()
		if _, err := c.Report(fmt.Sprintf("key-%d", i), func() (*ffm.Report, error) {
			return fakeReport(fmt.Sprintf("app-%d", i)), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get(0)
	get(1)
	get(0) // touch key-0: key-1 becomes LRU
	get(2) // evicts key-1
	hits, _, _ := c.Stats()
	get(0)
	hitsAfter, _, _ := c.Stats()
	if hitsAfter != hits+1 {
		t.Fatal("key-0 should have survived eviction (it was recently used)")
	}
}

func TestReportCacheOversizedEntryRetained(t *testing.T) {
	c := NewReportCache()
	c.SetByteBudget(1) // smaller than any report
	rep, err := c.Report("big", func() (*ffm.Report, error) { return fakeReport("big"), nil })
	if err != nil || rep == nil {
		t.Fatalf("oversized report: %v", err)
	}
	// Soft budget: the entry that triggered the pass survives ...
	hits, _, _ := c.Stats()
	if _, err := c.Report("big", func() (*ffm.Report, error) {
		t.Fatal("oversized entry was evicted by its own arrival")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if h, _, _ := c.Stats(); h != hits+1 {
		t.Fatal("expected a cache hit on the retained oversized entry")
	}
	// ... but the next arrival evicts it.
	if _, err := c.Report("next", func() (*ffm.Report, error) { return fakeReport("next"), nil }); err != nil {
		t.Fatal(err)
	}
	if ev := c.Evictions(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestSetByteBudgetSheddingExisting(t *testing.T) {
	c := NewReportCache()
	one := serializedSize(fakeReport("a"))
	for i := 0; i < 4; i++ {
		if _, err := c.Report(fmt.Sprintf("k%d", i), func() (*ffm.Report, error) {
			return fakeReport("a"), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.SetByteBudget(2 * one)
	if got, want := c.Bytes(), 2*one; got != want {
		t.Fatalf("bytes after shrink = %d, want %d", got, want)
	}
	if ev := c.Evictions(); ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
}
