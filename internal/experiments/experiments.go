// Package experiments regenerates the paper's evaluation artifacts: Table 1
// (per-application estimated vs. actual benefit), Table 2 (per-CUDA-function
// comparison between NVProf, HPCToolkit and Diogenes), the §5.3 overhead
// multiples, and the Figure 6/7/8 tool displays. DESIGN.md's per-experiment
// index maps each artifact to the modules exercised here.
package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/profiler"
	"diogenes/internal/simtime"
)

// Table1Row reproduces one application row of Table 1.
type Table1Row struct {
	App          string
	Issues       string // problem kinds addressed ("Sync", "Sync and Mem Trans")
	Estimated    simtime.Duration
	EstimatedPct float64
	Actual       simtime.Duration
	ActualPct    float64
	// Accuracy is the smaller of est/actual and actual/est, the §5.1
	// "percent accurate to the real benefit obtained".
	Accuracy float64
	// Overhead is the §5.3 data-collection multiple for this application.
	Overhead float64
	// Paper-reported values for EXPERIMENTS.md comparison.
	PaperEstPct, PaperActPct float64
}

// paperTable1 records the published numbers for side-by-side reporting.
var paperTable1 = map[string]struct {
	issues         string
	estPct, actPct float64
}{
	"cumf_als":         {"Sync and Mem Trans", 10.0, 8.3},
	"cuibm":            {"Sync", 10.8, 17.6},
	"amg":              {"Sync", 6.8, 5.8},
	"rodinia_gaussian": {"Sync", 2.2, 2.1},
}

// RunApp executes the full FFM pipeline on one modelled application at the
// given scale and returns the report. It is the uncached serial path; the
// Engine offers the pooled, cached equivalent.
func RunApp(name string, scale float64) (*ffm.Report, error) {
	return serialEngine.RunApp(name, scale)
}

// ActualReduction measures the real benefit of the paper's fix: it runs the
// original and fixed builds uninstrumented and returns the runtime delta.
func ActualReduction(name string, scale float64) (orig, fixed simtime.Duration, err error) {
	return serialEngine.ActualReduction(name, scale)
}

// AddressedEstimate extracts, from a report, the estimate for exactly the
// problems each paper fix addressed: the 10..23 subsequence for cumf_als
// (Figure 8), the contiguous_storage fold for cuIBM, the cudaMemset point
// for AMG, and the cudaThreadSynchronize fold for Rodinia.
func AddressedEstimate(name string, rep *ffm.Report) (simtime.Duration, error) {
	if _, err := apps.ByName(name); err != nil {
		return 0, err
	}
	a := rep.Analysis
	switch name {
	case "cumf_als":
		seqs := a.StaticSequences()
		if len(seqs) == 0 {
			return 0, errors.New("experiments: cumf_als produced no sequences")
		}
		top := seqs[0]
		from, to := 10, 23
		if len(top.Entries) < to {
			to = len(top.Entries)
			if from > to {
				from = 1
			}
		}
		sub, err := a.SubsequenceBenefit(top, from, to)
		if err != nil {
			return 0, err
		}
		return sub.Benefit, nil
	case "cuibm":
		for _, g := range a.Folds {
			if strings.Contains(g.Key, "cudaFree") && strings.Contains(g.Key, "contiguous_storage") {
				return g.Benefit, nil
			}
		}
		return 0, errors.New("experiments: cuibm contiguous_storage fold not found")
	case "amg":
		var total simtime.Duration
		for _, g := range a.SinglePoints {
			if strings.HasPrefix(g.Label, "cudaMemset") {
				total += g.Benefit
			}
		}
		if total == 0 {
			return 0, errors.New("experiments: amg cudaMemset point not found")
		}
		return total, nil
	case "rodinia_gaussian":
		for _, g := range a.Folds {
			if strings.HasPrefix(g.Label, "Fold on cudaThreadSynchronize") {
				return g.Benefit, nil
			}
		}
		return 0, errors.New("experiments: rodinia cudaThreadSynchronize fold not found")
	default:
		return 0, fmt.Errorf("experiments: no fix mapping for %q", name)
	}
}

// Table1 regenerates Table 1 at the given workload scale.
func Table1(scale float64) ([]Table1Row, error) {
	return serialEngine.Table1(scale)
}

// Table1For computes one application's Table 1 row.
func Table1For(name string, scale float64) (*Table1Row, error) {
	return serialEngine.Table1For(name, scale)
}

// table1Assemble builds the row from the measured quantities.
func table1Assemble(name string, rep *ffm.Report, est, orig, fixed simtime.Duration) *Table1Row {
	actual := orig - fixed
	row := &Table1Row{
		App:          name,
		Estimated:    est,
		EstimatedPct: 100 * float64(est) / float64(orig),
		Actual:       actual,
		ActualPct:    100 * float64(actual) / float64(orig),
		Overhead:     rep.OverheadMultiple(),
	}
	if est > 0 && actual > 0 {
		acc := float64(est) / float64(actual)
		if acc > 1 {
			acc = 1 / acc
		}
		row.Accuracy = 100 * acc
	}
	if p, ok := paperTable1[name]; ok {
		row.Issues = p.issues
		row.PaperEstPct = p.estPct
		row.PaperActPct = p.actPct
	}
	return row
}

// NVProfConfigForScale scales the profiler's activity-record limit with the
// workload so that the §5.2 crash on cuIBM (beyond ~75M calls at full scale)
// reproduces at reduced scales too.
func NVProfConfigForScale(scale float64) profiler.NVProfConfig {
	cfg := profiler.DefaultNVProfConfig()
	cfg.MaxDriverRecords = int64(float64(cfg.MaxDriverRecords) * scale)
	if cfg.MaxDriverRecords < 1000 {
		cfg.MaxDriverRecords = 1000
	}
	return cfg
}

// Table2Row is one operation line of Table 2 for one application.
type Table2Row struct {
	App  string
	Func string

	NVProfTime    simtime.Duration
	NVProfPct     float64
	NVProfPos     int
	NVProfCrashed bool

	HPCTime simtime.Duration
	HPCPct  float64
	HPCPos  int

	DiogenesSavings simtime.Duration
	DiogenesPct     float64
	DiogenesPos     int
	DiogenesListed  bool // false: Diogenes collects no data on this call
}

// Table2For regenerates one application's section of Table 2.
func Table2For(name string, scale float64) ([]Table2Row, error) {
	return table2For(name, scale, serialEngine)
}

// table2For runs the three tools for one application, sourcing the
// Diogenes report from the engine (pooled and cached when it is).
func table2For(name string, scale float64, e *Engine) ([]Table2Row, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	factory := spec.Factory()

	nv, nvErr := profiler.NVProf(spec.New(scale, apps.Original), factory, NVProfConfigForScale(scale))
	crashed := errors.Is(nvErr, profiler.ErrProfilerCrash)
	if nvErr != nil && !crashed {
		return nil, nvErr
	}
	hpc, err := profiler.HPCToolkit(spec.New(scale, apps.Original), factory, profiler.DefaultHPCToolkitConfig())
	if err != nil {
		return nil, err
	}
	rep, err := e.RunApp(name, scale)
	if err != nil {
		return nil, err
	}
	savings := rep.Analysis.SavingsByFunc()

	// Row ordering follows NVProf's summary (§5.2: "sorted by the order in
	// which they appear in the summary generated by NVProf"), falling back
	// to HPCToolkit's when NVProf crashed.
	funcs := make(map[string]bool)
	var order []string
	addAll := func(names []string) {
		for _, fn := range names {
			if !funcs[fn] {
				funcs[fn] = true
				order = append(order, fn)
			}
		}
	}
	if !crashed {
		for _, r := range nv.Rows {
			addAll([]string{r.Func})
		}
	} else {
		for _, r := range hpc.Rows {
			addAll([]string{r.Func})
		}
	}
	for _, s := range savings {
		addAll([]string{s.Func})
	}
	// Drop uninteresting rows the paper omits.
	filtered := order[:0]
	for _, fn := range order {
		if fn == "cudaStreamCreate" || fn == "cudaMallocHost" {
			continue
		}
		filtered = append(filtered, fn)
	}
	order = filtered

	var rows []Table2Row
	for _, fn := range order {
		row := Table2Row{App: name, Func: fn, NVProfCrashed: crashed}
		if !crashed {
			if r, ok := nv.Row(fn); ok {
				row.NVProfTime, row.NVProfPct, row.NVProfPos = r.Time, r.Percent, r.Pos
			}
		}
		if r, ok := hpc.Row(fn); ok {
			row.HPCTime, row.HPCPct, row.HPCPos = r.Time, r.Percent, r.Pos
		}
		for _, s := range savings {
			if s.Func == fn {
				row.DiogenesSavings = s.Savings
				row.DiogenesPct = rep.EstimatedBenefitPercent(s.Savings)
				row.DiogenesPos = s.Pos
				row.DiogenesListed = true
			}
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		pi, pj := rows[i].NVProfPos, rows[j].NVProfPos
		if crashed {
			pi, pj = rows[i].HPCPos, rows[j].HPCPos
		}
		if pi == 0 {
			pi = 1 << 20
		}
		if pj == 0 {
			pj = 1 << 20
		}
		return pi < pj
	})
	return rows, nil
}

// AutofixRow compares the paper's manual fix against the §6 automatic
// correction for one application.
type AutofixRow struct {
	App string
	// ManualActual is the runtime reduction of the paper's hand-written fix
	// (the Fixed build).
	ManualActual    simtime.Duration
	ManualActualPct float64
	// AutoRealized is the reduction the automatic plan achieves.
	AutoRealized    simtime.Duration
	AutoRealizedPct float64
	AutoEstimated   simtime.Duration
	CallsElided     int64
	GuardViolation  string
	Valid           bool
}

// AutofixTable measures, per application, how the automatic correction
// compares to the paper's manual fix.
func AutofixTable(scale float64, apply func(name string, scale float64) (*AutofixRow, error)) ([]AutofixRow, error) {
	return serialEngine.AutofixTable(scale, apply)
}
