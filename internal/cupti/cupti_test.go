package cupti

import (
	"testing"

	"diogenes/internal/callstack"
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/simtime"
)

type env struct {
	clock *simtime.Clock
	host  *memory.Space
	ctx   *cuda.Context
	col   *Collector
}

func newEnv() *env {
	clock := simtime.NewClock()
	dev := gpu.New(clock, gpu.DefaultConfig())
	host := memory.NewSpace()
	ctx := cuda.NewContext(clock, dev, host, callstack.New(), cuda.DefaultConfig())
	col := New()
	ctx.SetListener(col)
	return &env{clock: clock, host: host, ctx: ctx, col: col}
}

func TestDriverCallsRecordedForPublicAPI(t *testing.T) {
	e := newEnv()
	buf, _ := e.ctx.Malloc(1024, "x")
	_ = e.ctx.Free(buf)
	calls := e.col.DriverCallsByFunc()
	if calls["cudaMalloc"] != 1 || calls["cudaFree"] != 1 {
		t.Fatalf("calls = %v", calls)
	}
	times := e.col.DriverTimeByFunc()
	if times["cudaMalloc"] <= 0 {
		t.Fatal("no time for cudaMalloc")
	}
}

func TestPrivateAPIInvisible(t *testing.T) {
	e := newEnv()
	e.ctx.PrivateGemm("gemm", simtime.Millisecond, gpu.LegacyStream, true)
	for _, a := range e.col.Records() {
		if a.Kind == ActivityDriverCall {
			t.Fatalf("private API produced driver record %q", a.Name)
		}
		if a.Kind == ActivitySynchronization {
			t.Fatalf("private sync produced sync record %q", a.Name)
		}
	}
	// But the kernel itself is visible to the hardware queues.
	if len(e.col.OfKind(ActivityKernel)) != 1 {
		t.Fatal("kernel activity missing")
	}
}

// TestImplicitSyncInvisible reproduces the core §2.2 gap: cudaMemcpy and
// cudaFree wait on the device but produce no synchronization record.
func TestImplicitSyncInvisible(t *testing.T) {
	e := newEnv()
	src := e.host.Alloc(1<<20, "src")
	buf, _ := e.ctx.Malloc(1<<20, "dev")
	if err := e.ctx.MemcpyH2D(buf.Base(), src.Base(), 1<<20); err != nil {
		t.Fatal(err)
	}
	_, _ = e.ctx.LaunchKernel(cuda.KernelSpec{Name: "k", Duration: simtime.Millisecond, Stream: gpu.LegacyStream})
	_ = e.ctx.Free(buf) // waits a full millisecond for the kernel
	if got := len(e.col.OfKind(ActivitySynchronization)); got != 0 {
		t.Fatalf("implicit syncs produced %d records, want 0", got)
	}
}

func TestConditionalSyncInvisible(t *testing.T) {
	e := newEnv()
	pageable := e.host.Alloc(1<<20, "dst")
	buf, _ := e.ctx.Malloc(1<<20, "dev")
	s := e.ctx.StreamCreate()
	if err := e.ctx.MemcpyAsyncD2H(pageable.Base(), buf.Base(), 1<<20, s); err != nil {
		t.Fatal(err)
	}
	if got := len(e.col.OfKind(ActivitySynchronization)); got != 0 {
		t.Fatalf("conditional sync produced %d records, want 0", got)
	}
	// The memcpy driver call itself is recorded.
	if e.col.DriverCallsByFunc()["cudaMemcpyAsync"] != 1 {
		t.Fatal("cudaMemcpyAsync driver record missing")
	}
}

func TestExplicitSyncVisible(t *testing.T) {
	e := newEnv()
	_, _ = e.ctx.LaunchKernel(cuda.KernelSpec{Name: "k", Duration: simtime.Millisecond, Stream: gpu.LegacyStream})
	e.ctx.DeviceSynchronize()
	syncs := e.col.OfKind(ActivitySynchronization)
	if len(syncs) != 1 {
		t.Fatalf("got %d sync records, want 1", len(syncs))
	}
	if syncs[0].Name != "cudaDeviceSynchronize" || syncs[0].Duration() <= 0 {
		t.Fatalf("sync record = %+v", syncs[0])
	}
	if e.col.SyncTimeByFunc()["cudaDeviceSynchronize"] != syncs[0].Duration() {
		t.Fatal("SyncTimeByFunc mismatch")
	}
}

func TestDeviceOpsRecorded(t *testing.T) {
	e := newEnv()
	src := e.host.Alloc(4096, "src")
	buf, _ := e.ctx.Malloc(4096, "dev")
	_ = e.ctx.MemcpyH2D(buf.Base(), src.Base(), 4096)
	_, _ = e.ctx.LaunchKernel(cuda.KernelSpec{Name: "k", Duration: simtime.Microsecond, Stream: gpu.LegacyStream})
	_ = e.ctx.MemsetDev(buf.Base(), 0, 4096)
	if len(e.col.OfKind(ActivityMemcpy)) != 1 {
		t.Fatal("memcpy activity missing")
	}
	if len(e.col.OfKind(ActivityKernel)) != 1 {
		t.Fatal("kernel activity missing")
	}
	if len(e.col.OfKind(ActivityMemset)) != 1 {
		t.Fatal("memset activity missing")
	}
}

func TestNeverCompletingKernelHasZeroSpan(t *testing.T) {
	e := newEnv()
	_, _ = e.ctx.LaunchKernel(cuda.KernelSpec{Name: "spin", Duration: simtime.Duration(simtime.Infinity), Stream: gpu.LegacyStream})
	k := e.col.OfKind(ActivityKernel)
	if len(k) != 1 || k[0].Duration() != 0 {
		t.Fatalf("infinite kernel records = %+v", k)
	}
}

func TestBufferLimitDropsRecords(t *testing.T) {
	e := newEnv()
	e.col.Limit = 3
	for i := 0; i < 10; i++ {
		_, _ = e.ctx.Malloc(64, "x")
	}
	if len(e.col.Records()) != 3 {
		t.Fatalf("kept %d records, want 3", len(e.col.Records()))
	}
	if e.col.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", e.col.Dropped())
	}
}

func TestReset(t *testing.T) {
	e := newEnv()
	_, _ = e.ctx.Malloc(64, "x")
	e.col.Reset()
	if len(e.col.Records()) != 0 || e.col.Dropped() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestActivityKindStrings(t *testing.T) {
	kinds := map[ActivityKind]string{
		ActivityDriverCall:      "CUPTI_ACTIVITY_KIND_DRIVER",
		ActivityKernel:          "CUPTI_ACTIVITY_KIND_KERNEL",
		ActivityMemcpy:          "CUPTI_ACTIVITY_KIND_MEMCPY",
		ActivityMemset:          "CUPTI_ACTIVITY_KIND_MEMSET",
		ActivitySynchronization: "CUPTI_ACTIVITY_KIND_SYNCHRONIZATION",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if ActivityKind(99).String() != "CUPTI_ACTIVITY_KIND_UNKNOWN" {
		t.Error("unknown kind string wrong")
	}
}

// TestSyncTimeVastlyUnderreported quantifies the gap: an application doing
// all its synchronization through cudaFree shows zero CUPTI sync time even
// though most of its wall clock is sync wait.
func TestSyncTimeVastlyUnderreported(t *testing.T) {
	e := newEnv()
	var trueWait simtime.Duration
	e.ctx.AttachProbe(cuda.FuncInternalSync, cuda.Probe{Exit: func(c *cuda.Call) {
		trueWait += c.SyncWait()
	}})
	for i := 0; i < 5; i++ {
		buf, _ := e.ctx.Malloc(1024, "tmp")
		_, _ = e.ctx.LaunchKernel(cuda.KernelSpec{Name: "k", Duration: simtime.Millisecond, Stream: gpu.LegacyStream})
		_ = e.ctx.Free(buf)
	}
	var cuptiWait simtime.Duration
	for _, d := range e.col.SyncTimeByFunc() {
		cuptiWait += d
	}
	if trueWait < 4*simtime.Millisecond {
		t.Fatalf("true wait only %v", trueWait)
	}
	if cuptiWait != 0 {
		t.Fatalf("CUPTI reported %v of sync, want 0", cuptiWait)
	}
}
