// Package cupti is the analog of NVIDIA's CUDA Profiling Tools Interface:
// the closed-source activity-record framework every mainstream GPU profiler
// consumes (§2.2 of the paper).
//
// It faithfully reproduces the *gaps* the paper documents rather than the
// full truth the simulator knows:
//
//   - driver-call records exist only for public API entry points; calls made
//     through the proprietary private API are never reported;
//   - synchronization records are generated only for explicit
//     synchronizations (cudaDeviceSynchronize, cudaStreamSynchronize,
//     cudaThreadSynchronize). Implicit synchronizations (cudaMemcpy,
//     cudaFree) and conditional ones (pageable-destination cudaMemcpyAsync,
//     cudaMemset on unified memory) produce no record of their wait time;
//   - device activity records (kernels, memcpies, memsets) are reported,
//     since the hardware queues observe them regardless of which API issued
//     them.
//
// The profiler package builds its NVProf analog exclusively from this
// interface, which is how Table 2's misattributions arise.
package cupti

import (
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
)

// ActivityKind classifies an activity record.
type ActivityKind uint8

// Activity kinds.
const (
	ActivityDriverCall ActivityKind = iota
	ActivityKernel
	ActivityMemcpy
	ActivityMemset
	ActivitySynchronization
)

// String names the kind using CUPTI vocabulary.
func (k ActivityKind) String() string {
	switch k {
	case ActivityDriverCall:
		return "CUPTI_ACTIVITY_KIND_DRIVER"
	case ActivityKernel:
		return "CUPTI_ACTIVITY_KIND_KERNEL"
	case ActivityMemcpy:
		return "CUPTI_ACTIVITY_KIND_MEMCPY"
	case ActivityMemset:
		return "CUPTI_ACTIVITY_KIND_MEMSET"
	case ActivitySynchronization:
		return "CUPTI_ACTIVITY_KIND_SYNCHRONIZATION"
	default:
		return "CUPTI_ACTIVITY_KIND_UNKNOWN"
	}
}

// Activity is one record in the activity buffer.
type Activity struct {
	Kind   ActivityKind
	Name   string // API function or kernel name
	Start  simtime.Time
	End    simtime.Time
	Bytes  int
	Stream gpu.StreamID
}

// Duration returns the record's time span.
func (a Activity) Duration() simtime.Duration { return a.End.Sub(a.Start) }

// Collector buffers activity records. It implements cuda.ActivityListener.
type Collector struct {
	records []Activity
	dropped int64
	// Limit bounds the buffer; beyond it records are dropped silently
	// (CUPTI's flush-or-lose buffers). Zero means unlimited.
	Limit int
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

var _ cuda.ActivityListener = (*Collector)(nil)

func (c *Collector) add(a Activity) {
	if c.Limit > 0 && len(c.records) >= c.Limit {
		c.dropped++
		return
	}
	c.records = append(c.records, a)
}

// DriverCall records a public API call.
func (c *Collector) DriverCall(fn cuda.Func, entry, exit simtime.Time) {
	c.add(Activity{Kind: ActivityDriverCall, Name: string(fn), Start: entry, End: exit})
}

// DeviceOp records a device activity.
func (c *Collector) DeviceOp(op *gpu.Op) {
	kind := ActivityKernel
	switch op.Kind {
	case gpu.OpCopyH2D, gpu.OpCopyD2H, gpu.OpCopyD2D:
		kind = ActivityMemcpy
	case gpu.OpMemset:
		kind = ActivityMemset
	}
	end := op.End
	if end == simtime.Infinity {
		// A still-running kernel has no completion timestamp; CUPTI would
		// simply not flush the record. Record it with End == Start so
		// aggregations ignore it.
		end = op.Start
	}
	c.add(Activity{Kind: kind, Name: op.Name, Start: op.Start, End: end, Bytes: op.Bytes, Stream: op.Stream})
}

// SyncRecord records an explicit synchronization.
func (c *Collector) SyncRecord(fn cuda.Func, start, end simtime.Time) {
	c.add(Activity{Kind: ActivitySynchronization, Name: string(fn), Start: start, End: end})
}

// Records returns all buffered activities in arrival order.
func (c *Collector) Records() []Activity { return c.records }

// Dropped returns how many records were lost to the buffer limit.
func (c *Collector) Dropped() int64 { return c.dropped }

// Reset clears the buffer.
func (c *Collector) Reset() {
	c.records = nil
	c.dropped = 0
}

// OfKind returns the records of one kind, in order.
func (c *Collector) OfKind(k ActivityKind) []Activity {
	var out []Activity
	for _, a := range c.records {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// DriverTimeByFunc sums driver-call record durations per API function —
// the aggregation NVProf's "API calls" summary section performs.
func (c *Collector) DriverTimeByFunc() map[string]simtime.Duration {
	out := make(map[string]simtime.Duration)
	for _, a := range c.records {
		if a.Kind == ActivityDriverCall {
			out[a.Name] += a.Duration()
		}
	}
	return out
}

// DriverCallsByFunc counts driver-call records per API function.
func (c *Collector) DriverCallsByFunc() map[string]int64 {
	out := make(map[string]int64)
	for _, a := range c.records {
		if a.Kind == ActivityDriverCall {
			out[a.Name]++
		}
	}
	return out
}

// SyncTimeByFunc sums synchronization record durations per requesting API
// function. Only explicit synchronizations ever appear here.
func (c *Collector) SyncTimeByFunc() map[string]simtime.Duration {
	out := make(map[string]simtime.Duration)
	for _, a := range c.records {
		if a.Kind == ActivitySynchronization {
			out[a.Name] += a.Duration()
		}
	}
	return out
}
