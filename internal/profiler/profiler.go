// Package profiler implements the two comparator tools of §5.2: an NVProf
// analog built exclusively on the vendor activity interface (package cupti),
// and an HPCToolkit analog built on timer-based call-stack sampling. Both
// report resource consumption per CUDA API function; neither estimates
// benefit. Table 2 compares their outputs against Diogenes' expected
// savings.
package profiler

import (
	"errors"
	"fmt"
	"sort"

	"diogenes/internal/cuda"
	"diogenes/internal/cupti"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// Row is one line of a profile summary: time attributed to an API function,
// its share of execution, and its rank.
type Row struct {
	Func    string           `json:"func"`
	Time    simtime.Duration `json:"time"`
	Percent float64          `json:"percent"`
	Pos     int              `json:"pos"`
	Calls   int64            `json:"calls"`
}

// Profile is a comparator tool's output for one application run.
type Profile struct {
	Tool     string           `json:"tool"`
	App      string           `json:"app"`
	ExecTime simtime.Duration `json:"execTime"`
	Rows     []Row            `json:"rows"`
}

// Row returns the named function's row, if present.
func (p *Profile) Row(fn string) (Row, bool) {
	for _, r := range p.Rows {
		if r.Func == fn {
			return r, true
		}
	}
	return Row{}, false
}

func finishRows(rows []Row, exec simtime.Duration) []Row {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Time != rows[j].Time {
			return rows[i].Time > rows[j].Time
		}
		return rows[i].Func < rows[j].Func
	})
	for i := range rows {
		if exec > 0 {
			rows[i].Percent = 100 * float64(rows[i].Time) / float64(exec)
		}
		rows[i].Pos = i + 1
	}
	return rows
}

// ErrProfilerCrash is returned when NVProf aborts mid-run. §5.2: "we were
// unable to run NVProf on cuIBM due to a crash of NVProf during profiling
// ... likely caused by the large number of cuda calls".
var ErrProfilerCrash = errors.New("profiler: nvprof crashed during profiling")

// NVProfConfig tunes the NVProf analog.
type NVProfConfig struct {
	// MaxDriverRecords is the activity-record count beyond which the
	// profiler aborts, reproducing the cuIBM crash. The paper's run died
	// beyond ~75M calls; the simulated applications are scaled down, and
	// so is this limit. Zero disables the crash.
	MaxDriverRecords int64
	// PerCallOverhead is the profiling cost added to every public driver
	// call (CUPTI subscriber callbacks are not free).
	PerCallOverhead simtime.Duration
}

// DefaultNVProfConfig returns limits proportional to the scaled-down
// applications.
func DefaultNVProfConfig() NVProfConfig {
	return NVProfConfig{
		MaxDriverRecords: 120_000,
		PerCallOverhead:  400 * simtime.Nanosecond,
	}
}

// NVProf profiles the application using only vendor activity records. The
// returned rows aggregate driver-call time per API function — which, for
// synchronizing calls, silently includes wait time the tool cannot separate
// out, because CUPTI emits no synchronization records for implicit and
// conditional waits (§2.2).
func NVProf(app proc.App, factory proc.Factory, cfg NVProfConfig) (*Profile, error) {
	p := factory.New()
	col := cupti.New()
	p.Ctx.SetListener(col)
	if cfg.PerCallOverhead > 0 {
		for _, fn := range cuda.PublicFuncs {
			p.Ctx.AttachProbe(fn, cuda.Probe{Overhead: cfg.PerCallOverhead})
		}
	}

	crashed := false
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := v.(profilerAbort); ok {
					crashed = true
					return
				}
				panic(v)
			}
		}()
		if cfg.MaxDriverRecords > 0 {
			// Watchdog probe: abort once the record count passes the limit.
			count := int64(0)
			for _, fn := range cuda.PublicFuncs {
				p.Ctx.AttachProbe(fn, cuda.Probe{Entry: func(*cuda.Call) {
					count++
					if count > cfg.MaxDriverRecords {
						panic(profilerAbort{})
					}
				}})
			}
		}
		return proc.SafeRun(app, p)
	}()
	if crashed {
		return nil, fmt.Errorf("%w: exceeded %d driver records on %s",
			ErrProfilerCrash, cfg.MaxDriverRecords, app.Name())
	}
	if err != nil {
		return nil, fmt.Errorf("profiler: nvprof running %s: %w", app.Name(), err)
	}

	exec := p.ExecTime()
	times := col.DriverTimeByFunc()
	calls := col.DriverCallsByFunc()
	rows := make([]Row, 0, len(times))
	for fn, d := range times {
		rows = append(rows, Row{Func: fn, Time: d, Calls: calls[fn]})
	}
	return &Profile{
		Tool:     "nvprof",
		App:      app.Name(),
		ExecTime: exec,
		Rows:     finishRows(rows, exec),
	}, nil
}

type profilerAbort struct{}

// HPCToolkitConfig tunes the sampling profiler analog.
type HPCToolkitConfig struct {
	// SamplePeriod is the virtual time between samples.
	SamplePeriod simtime.Duration
	// AttributionLoss is the fraction of samples taken inside driver calls
	// that fail to attribute to the API function (unwinds that die inside
	// the closed-source driver land in <unknown>). §5.2 observes
	// HPCToolkit's reported percentages are "lower than expected" on
	// cumf_als and cuIBM; this models that loss.
	AttributionLoss float64
	// PerCallOverhead models the sampling signal handling cost amortized
	// per driver call.
	PerCallOverhead simtime.Duration
}

// DefaultHPCToolkitConfig returns the configuration used in the Table 2
// reproduction.
func DefaultHPCToolkitConfig() HPCToolkitConfig {
	return HPCToolkitConfig{
		SamplePeriod:    200 * simtime.Microsecond,
		AttributionLoss: 0.35,
		PerCallOverhead: 150 * simtime.Nanosecond,
	}
}

// HPCToolkit profiles the application by timer-based sampling: each driver
// call accumulates samples proportional to its duration, minus the
// attribution loss; everything else is application CPU time. Like the real
// tool, it sees *time in the call* — it cannot distinguish a synchronization
// wait from driver bookkeeping.
func HPCToolkit(app proc.App, factory proc.Factory, cfg HPCToolkitConfig) (*Profile, error) {
	p := factory.New()
	type acc struct {
		time  simtime.Duration
		calls int64
	}
	byFunc := make(map[string]*acc)
	for _, fn := range cuda.PublicFuncs {
		fn := fn
		p.Ctx.AttachProbe(fn, cuda.Probe{
			Overhead: cfg.PerCallOverhead,
			Exit: func(c *cuda.Call) {
				a := byFunc[string(fn)]
				if a == nil {
					a = &acc{}
					byFunc[string(fn)] = a
				}
				a.calls++
				// Quantize to the sample period, then apply unwind loss.
				samples := int64(c.Duration() / cfg.SamplePeriod)
				attributed := simtime.Duration(float64(samples) * float64(cfg.SamplePeriod) * (1 - cfg.AttributionLoss))
				a.time += attributed
			},
		})
	}
	if err := proc.SafeRun(app, p); err != nil {
		return nil, fmt.Errorf("profiler: hpctoolkit running %s: %w", app.Name(), err)
	}
	exec := p.ExecTime()
	rows := make([]Row, 0, len(byFunc))
	for fn, a := range byFunc {
		if a.time == 0 && a.calls == 0 {
			continue
		}
		rows = append(rows, Row{Func: fn, Time: a.time, Calls: a.calls})
	}
	return &Profile{
		Tool:     "hpctoolkit",
		App:      app.Name(),
		ExecTime: exec,
		Rows:     finishRows(rows, exec),
	}, nil
}
