package profiler

import (
	"errors"
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// syncHeavy is a minimal workload dominated by an implicit-sync cudaFree:
// 1ms of kernel per iteration, waited out inside cudaFree.
type syncHeavy struct{ iters int }

func (a *syncHeavy) Name() string { return "sync-heavy" }

func (a *syncHeavy) Run(p *proc.Process) error {
	for i := 0; i < a.iters; i++ {
		buf, err := p.Ctx.Malloc(1024, "tmp")
		if err != nil {
			return err
		}
		if _, err := p.Ctx.LaunchKernel(cuda.KernelSpec{
			Name: "k", Duration: simtime.Millisecond, Stream: gpu.LegacyStream,
		}); err != nil {
			return err
		}
		if err := p.Ctx.Free(buf); err != nil {
			return err
		}
		p.CPUWork(100 * simtime.Microsecond)
	}
	return nil
}

func TestNVProfAttributesWaitToCall(t *testing.T) {
	prof, err := NVProf(&syncHeavy{iters: 20}, proc.DefaultFactory(), NVProfConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Tool != "nvprof" || prof.App != "sync-heavy" {
		t.Fatalf("header = %+v", prof)
	}
	free, ok := prof.Row("cudaFree")
	if !ok {
		t.Fatal("no cudaFree row")
	}
	// The free waits ~1ms per iteration; NVProf reports it all as call
	// time and ranks cudaFree first.
	if free.Pos != 1 {
		t.Fatalf("cudaFree pos = %d, want 1", free.Pos)
	}
	if free.Percent < 50 {
		t.Fatalf("cudaFree percent = %.1f, want dominant", free.Percent)
	}
	if free.Calls != 20 {
		t.Fatalf("cudaFree calls = %d", free.Calls)
	}
	if _, ok := prof.Row("cudaLaunchKernel"); !ok {
		t.Fatal("launch row missing")
	}
}

func TestNVProfRowsSortedWithPositions(t *testing.T) {
	prof, err := NVProf(&syncHeavy{iters: 5}, proc.DefaultFactory(), NVProfConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range prof.Rows {
		if r.Pos != i+1 {
			t.Fatalf("row %d pos = %d", i, r.Pos)
		}
		if i > 0 && r.Time > prof.Rows[i-1].Time {
			t.Fatal("rows not sorted by time")
		}
	}
}

func TestNVProfCrashOnCallVolume(t *testing.T) {
	_, err := NVProf(&syncHeavy{iters: 100}, proc.DefaultFactory(), NVProfConfig{MaxDriverRecords: 50})
	if !errors.Is(err, ErrProfilerCrash) {
		t.Fatalf("err = %v, want crash", err)
	}
}

func TestNVProfNoCrashUnderLimit(t *testing.T) {
	if _, err := NVProf(&syncHeavy{iters: 5}, proc.DefaultFactory(), NVProfConfig{MaxDriverRecords: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNVProfOverheadSlowsRun(t *testing.T) {
	a, _ := NVProf(&syncHeavy{iters: 20}, proc.DefaultFactory(), NVProfConfig{})
	b, _ := NVProf(&syncHeavy{iters: 20}, proc.DefaultFactory(), NVProfConfig{PerCallOverhead: 50 * simtime.Microsecond})
	if b.ExecTime <= a.ExecTime {
		t.Fatalf("profiling overhead missing: %v vs %v", b.ExecTime, a.ExecTime)
	}
}

func TestHPCToolkitSamplesCalls(t *testing.T) {
	prof, err := HPCToolkit(&syncHeavy{iters: 20}, proc.DefaultFactory(), HPCToolkitConfig{
		SamplePeriod: 100 * simtime.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	free, ok := prof.Row("cudaFree")
	if !ok {
		t.Fatal("no cudaFree row")
	}
	if free.Pos != 1 {
		t.Fatalf("cudaFree pos = %d", free.Pos)
	}
	// ~1ms per call at 100µs sampling: roughly 10 samples' worth.
	perCall := free.Time / 20
	if perCall < 800*simtime.Microsecond || perCall > 1200*simtime.Microsecond {
		t.Fatalf("per-call attribution %v implausible", perCall)
	}
}

func TestHPCToolkitAttributionLoss(t *testing.T) {
	cfgFull := HPCToolkitConfig{SamplePeriod: 100 * simtime.Microsecond}
	cfgLossy := HPCToolkitConfig{SamplePeriod: 100 * simtime.Microsecond, AttributionLoss: 0.5}
	full, _ := HPCToolkit(&syncHeavy{iters: 20}, proc.DefaultFactory(), cfgFull)
	lossy, _ := HPCToolkit(&syncHeavy{iters: 20}, proc.DefaultFactory(), cfgLossy)
	f, _ := full.Row("cudaFree")
	l, _ := lossy.Row("cudaFree")
	ratio := float64(l.Time) / float64(f.Time)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("attribution loss ratio = %.2f, want ~0.5", ratio)
	}
}

func TestHPCToolkitMissesSubSampleCalls(t *testing.T) {
	// Calls shorter than the sample period attribute nothing.
	prof, err := HPCToolkit(&syncHeavy{iters: 5}, proc.DefaultFactory(), HPCToolkitConfig{
		SamplePeriod: 10 * simtime.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range prof.Rows {
		if r.Time != 0 {
			t.Fatalf("row %s attributed %v with huge sample period", r.Func, r.Time)
		}
	}
}

func TestProfilersOnRealApps(t *testing.T) {
	// Smoke coverage over the modelled applications.
	for _, spec := range apps.Registry() {
		app := spec.New(0.01, apps.Original)
		factory := spec.Factory()
		if _, err := NVProf(app, factory, NVProfConfig{}); err != nil {
			t.Errorf("nvprof %s: %v", spec.Name, err)
		}
		if _, err := HPCToolkit(app, factory, DefaultHPCToolkitConfig()); err != nil {
			t.Errorf("hpctoolkit %s: %v", spec.Name, err)
		}
	}
}

func TestRowLookupMissing(t *testing.T) {
	p := &Profile{}
	if _, ok := p.Row("cudaFree"); ok {
		t.Fatal("found row in empty profile")
	}
}
