// Package simtime provides the virtual clock that every component of the
// simulated CPU/GPU system runs on.
//
// Diogenes' feed-forward measurement model is defined entirely in terms of
// event timestamps and durations: when a driver call was entered, how long
// the CPU waited inside the internal synchronization function, how far apart
// a synchronization and the first use of protected data are. Reproducing the
// paper without GPU hardware therefore requires a time base that is (a)
// deterministic so multi-run instrumentation observes identical application
// behaviour, and (b) fully decoupled from the wall clock so a multi-hour
// "run" finishes in microseconds. A Clock is a monotonically advancing
// virtual nanosecond counter shared by the simulated CPU thread and the GPU
// device timeline.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant on the virtual timeline, in nanoseconds since the start
// of the simulated process. The zero Time is process start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It deliberately mirrors
// time.Duration so formatting helpers can be shared.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a sentinel used for operations that never complete, such as
// the never-completing kernel launched by the synchronization-function
// discovery test (§3.1 of the paper).
const Infinity Time = 1<<63 - 1

// Add returns the instant d after t, saturating at Infinity.
func (t Time) Add(d Duration) Time {
	if t == Infinity {
		return Infinity
	}
	s := Time(int64(t) + int64(d))
	if d > 0 && s < t {
		return Infinity
	}
	return s
}

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(int64(t) - int64(u)) }

// Before reports whether t is earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the instant as a duration offset from process start.
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return "+" + Duration(t).String()
}

// Std converts d to a time.Duration for formatting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDuration returns the larger of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Clock is the virtual CPU clock. It only moves forward. A single Clock is
// shared by the application thread, the driver, and the instrumentation
// layer; the GPU device keeps its own per-stream timelines expressed in the
// same time base.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at process start.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual instant.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative advances are a programming
// error in the simulator and panic loudly rather than corrupting timelines.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %v", d))
	}
	c.now = c.now.Add(d)
	return c.now
}

// AdvanceTo moves the clock forward to instant t. Moving backwards is a
// programming error; advancing to the current instant is a no-op.
func (c *Clock) AdvanceTo(t Time) Time {
	if t < c.now {
		panic(fmt.Sprintf("simtime: AdvanceTo moving backwards: now=%v target=%v", c.now, t))
	}
	c.now = t
	return c.now
}

// RNG is a splitmix64 generator. Applications use it for data-dependent
// choices (e.g. which matrix tile to stream next) so that runs are exactly
// repeatable across the multiple instrumented executions FFM performs.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next value in the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simtime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns d scaled by a factor in [1-frac, 1+frac]. Workload models
// use it to avoid perfectly uniform event trains while staying deterministic.
func (r *RNG) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	scale := 1 + frac*(2*r.Float64()-1)
	j := Duration(float64(d) * scale)
	if j < 0 {
		return 0
	}
	return j
}

// Bytes fills p with deterministic pseudo-random bytes. Applications use it
// to generate transfer payloads whose content hashes are stable across runs,
// which stage 3's content-based deduplication depends on.
func (r *RNG) Bytes(p []byte) {
	for i := 0; i < len(p); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
}
