package simtime

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Advance(0)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("zero advance moved clock to %v", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(Time(Second))
	if c.Now() != Time(Second) {
		t.Fatalf("Now() = %v, want 1s", c.Now())
	}
	c.AdvanceTo(Time(Second)) // same instant is fine
}

func TestClockAdvanceToBackwardsPanics(t *testing.T) {
	c := NewClock()
	c.Advance(Second)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards AdvanceTo did not panic")
		}
	}()
	c.AdvanceTo(Time(Millisecond))
}

func TestTimeAddSaturatesAtInfinity(t *testing.T) {
	if got := Infinity.Add(Second); got != Infinity {
		t.Fatalf("Infinity.Add = %v, want Infinity", got)
	}
	near := Time(int64(Infinity) - 1)
	if got := near.Add(Duration(10)); got != Infinity {
		t.Fatalf("overflow Add = %v, want Infinity", got)
	}
}

func TestTimeSub(t *testing.T) {
	a, b := Time(10*Second), Time(4*Second)
	if d := a.Sub(b); d != 6*Second {
		t.Fatalf("Sub = %v, want 6s", d)
	}
}

func TestTimeOrdering(t *testing.T) {
	if !Time(1).Before(Time(2)) || Time(2).Before(Time(1)) {
		t.Fatal("Before misordered")
	}
	if !Time(2).After(Time(1)) || Time(1).After(Time(2)) {
		t.Fatal("After misordered")
	}
}

func TestMaxMin(t *testing.T) {
	if Max(Time(1), Time(2)) != Time(2) || Max(Time(3), Time(2)) != Time(3) {
		t.Fatal("Max wrong")
	}
	if Min(Time(1), Time(2)) != Time(1) || Min(Time(3), Time(2)) != Time(2) {
		t.Fatal("Min wrong")
	}
	if MaxDuration(Second, Millisecond) != Second {
		t.Fatal("MaxDuration wrong")
	}
}

func TestDurationHelpers(t *testing.T) {
	d := 1500 * Millisecond
	if d.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", d.Seconds())
	}
	if d.String() != "1.5s" {
		t.Fatalf("String = %q, want 1.5s", d.String())
	}
	if Time(Infinity).String() != "+inf" {
		t.Fatalf("Infinity String = %q", Time(Infinity).String())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 collisions between different seeds", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(11)
	base := 100 * Microsecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.25)
		lo := Duration(float64(base) * 0.74)
		hi := Duration(float64(base) * 1.26)
		if j < lo || j > hi {
			t.Fatalf("Jitter %v outside [%v, %v]", j, lo, hi)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero-frac Jitter changed value")
	}
}

func TestRNGBytesDeterministic(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	NewRNG(5).Bytes(a)
	NewRNG(5).Bytes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
	// Not all zero.
	zero := true
	for _, v := range a {
		if v != 0 {
			zero = false
			break
		}
	}
	if zero {
		t.Fatal("Bytes produced all-zero output")
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(base int32, delta uint16) bool {
		start := Time(base)
		d := Duration(delta)
		return start.Add(d).Sub(start) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxMinAgree(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		return Max(x, y) >= Min(x, y) && (Max(x, y) == x || Max(x, y) == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
