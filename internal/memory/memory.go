// Package memory models the CPU-side address space of the simulated process.
//
// Two of Diogenes' collection stages depend on capabilities that Dyninst
// provides against a real process image: stage 3 records which CPU memory
// ranges may be written by the GPU (the targets of device-to-host transfers
// and shared allocations) and then uses load/store instrumentation to find
// the first instruction that touches those ranges after a synchronization;
// the cumf_als fix validation additionally write-protects pages with
// mprotect to prove a removed transfer's source is never modified.
//
// Space reproduces those capabilities: it allocates labelled regions in a
// flat virtual address space, stores their actual bytes (so stage 3 can hash
// transfer payloads), dispatches instrumented Load/Store accesses to range
// watchers, and supports an mprotect-style write protection flag.
package memory

import (
	"errors"
	"fmt"
	"sort"
)

// Addr is a virtual address in the simulated process.
type Addr uint64

// PageSize is the simulated page granularity used by Protect, mirroring the
// 64 KiB pages of the POWER8/9 systems the prototype ran on.
const PageSize = 64 * 1024

// AccessKind distinguishes instrumented loads from stores.
type AccessKind uint8

// Access kinds.
const (
	Load AccessKind = iota
	Store
)

// String returns "load" or "store".
func (k AccessKind) String() string {
	if k == Load {
		return "load"
	}
	return "store"
}

// Site identifies the instruction performing an access: the enclosing
// function plus source coordinates. Stage 3 stores the Site of the first
// instruction touching GPU-writable data, and stage 4 re-instruments exactly
// those Sites.
type Site struct {
	Function string
	File     string
	Line     int
}

// String renders the site as function (file:line).
func (s Site) String() string {
	if s == (Site{}) {
		return "<unknown>"
	}
	return fmt.Sprintf("%s (%s:%d)", s.Function, s.File, s.Line)
}

// Access describes one instrumented memory access.
type Access struct {
	Kind AccessKind
	Addr Addr
	Size int
	Site Site
}

// Region is an allocated range of the address space.
type Region struct {
	base      Addr
	size      int
	label     string
	data      []byte
	protected bool
	freed     bool
}

// Base returns the first address of the region.
func (r *Region) Base() Addr { return r.base }

// Size returns the region length in bytes.
func (r *Region) Size() int { return r.size }

// Label returns the allocation label supplied to Alloc.
func (r *Region) Label() string { return r.label }

// End returns one past the last address of the region.
func (r *Region) End() Addr { return r.base + Addr(r.size) }

// Freed reports whether the region has been released.
func (r *Region) Freed() bool { return r.freed }

// Protected reports whether stores to the region are currently rejected.
func (r *Region) Protected() bool { return r.protected }

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr Addr) bool {
	return addr >= r.base && addr < r.End()
}

// Errors returned by Space operations.
var (
	ErrOutOfRange   = errors.New("memory: access outside any live region")
	ErrProtected    = errors.New("memory: store to write-protected region")
	ErrUseAfterFree = errors.New("memory: access to freed region")
)

// WatchID identifies a registered range watcher.
type WatchID int

// WatchFunc receives each instrumented access that overlaps the watched
// range. It corresponds to the analysis snippet Diogenes attaches to load and
// store instructions.
type WatchFunc func(Access)

type watch struct {
	id WatchID
	lo Addr
	hi Addr // exclusive
	fn WatchFunc
}

// Space is a flat simulated address space. It is not safe for concurrent
// use; the simulated process has a single application thread, matching the
// CPU-side behaviour Diogenes instruments.
type Space struct {
	next    Addr
	regions []*Region // sorted by base
	watches []watch
	nextID  WatchID

	// counters for tests and overhead accounting
	loads  int64
	stores int64
}

// NewSpace returns an empty address space. Address zero is never allocated
// so that the zero Addr can act as a null pointer.
func NewSpace() *Space {
	return &Space{next: PageSize}
}

// Loads returns the number of instrumented load accesses performed.
func (s *Space) Loads() int64 { return s.loads }

// Stores returns the number of instrumented store accesses performed.
func (s *Space) Stores() int64 { return s.stores }

// Alloc reserves size bytes and returns the new region. Allocations are
// page-aligned, matching the paper's page-aligned allocation of variables
// that will later be mprotect-guarded.
func (s *Space) Alloc(size int, label string) *Region {
	if size <= 0 {
		panic(fmt.Sprintf("memory: Alloc size %d", size))
	}
	base := s.next
	r := &Region{base: base, size: size, label: label, data: make([]byte, size)}
	s.next = roundUp(base+Addr(size), PageSize)
	s.regions = append(s.regions, r)
	return r
}

func roundUp(a Addr, align Addr) Addr {
	return (a + align - 1) / align * align
}

// Free releases a region. Accesses to it afterwards fail with
// ErrUseAfterFree. The region list keeps the entry so diagnostics can name
// the stale label.
func (s *Space) Free(r *Region) {
	if r.freed {
		panic(fmt.Sprintf("memory: double free of %q", r.label))
	}
	r.freed = true
	r.data = nil
}

// Protect write-protects the region (mprotect(PROT_READ) analog). Subsequent
// Store calls fail with ErrProtected; Poke (DMA) writes also fail, because
// hardware writes to protected pages fault as well.
func (s *Space) Protect(r *Region) { r.protected = true }

// Unprotect removes write protection.
func (s *Space) Unprotect(r *Region) { r.protected = false }

// RegionAt returns the live region containing addr, or nil.
func (s *Space) RegionAt(addr Addr) *Region {
	i := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].End() > addr
	})
	if i < len(s.regions) && s.regions[i].Contains(addr) && !s.regions[i].freed {
		return s.regions[i]
	}
	return nil
}

// Watch registers fn for every instrumented access overlapping [lo, hi).
// It returns an id for Unwatch. Watches model the load/store instrumentation
// stage 3 inserts for GPU-writable ranges; they observe only instrumented
// application accesses (Load/Store), not driver DMA (Peek/Poke), exactly as
// binary instrumentation of CPU code would.
func (s *Space) Watch(lo, hi Addr, fn WatchFunc) WatchID {
	if hi <= lo {
		panic(fmt.Sprintf("memory: Watch empty range [%d,%d)", lo, hi))
	}
	s.nextID++
	s.watches = append(s.watches, watch{id: s.nextID, lo: lo, hi: hi, fn: fn})
	return s.nextID
}

// Unwatch removes a watcher registered with Watch. Removing an unknown id is
// a no-op, so teardown code can be unconditional.
func (s *Space) Unwatch(id WatchID) {
	for i := range s.watches {
		if s.watches[i].id == id {
			s.watches = append(s.watches[:i], s.watches[i+1:]...)
			return
		}
	}
}

// WatchCount returns the number of active watches (used by overhead models:
// each armed watch adds per-access cost).
func (s *Space) WatchCount() int { return len(s.watches) }

func (s *Space) dispatch(a Access) {
	end := a.Addr + Addr(a.Size)
	for _, w := range s.watches {
		if a.Addr < w.hi && end > w.lo {
			w.fn(a)
		}
	}
}

// Load performs an instrumented read of n bytes at addr from site. The
// returned slice is a copy.
func (s *Space) Load(site Site, addr Addr, n int) ([]byte, error) {
	r := s.RegionAt(addr)
	if r == nil {
		if stale := s.staleRegionAt(addr); stale != nil {
			return nil, fmt.Errorf("%w: %q at %#x", ErrUseAfterFree, stale.label, addr)
		}
		return nil, fmt.Errorf("%w: load %#x", ErrOutOfRange, addr)
	}
	if addr+Addr(n) > r.End() {
		return nil, fmt.Errorf("%w: load [%#x,%#x) past end of %q", ErrOutOfRange, addr, addr+Addr(n), r.label)
	}
	s.loads++
	s.dispatch(Access{Kind: Load, Addr: addr, Size: n, Site: site})
	off := int(addr - r.base)
	out := make([]byte, n)
	copy(out, r.data[off:off+n])
	return out, nil
}

// Store performs an instrumented write of p at addr from site.
func (s *Space) Store(site Site, addr Addr, p []byte) error {
	r := s.RegionAt(addr)
	if r == nil {
		if stale := s.staleRegionAt(addr); stale != nil {
			return fmt.Errorf("%w: %q at %#x", ErrUseAfterFree, stale.label, addr)
		}
		return fmt.Errorf("%w: store %#x", ErrOutOfRange, addr)
	}
	if addr+Addr(len(p)) > r.End() {
		return fmt.Errorf("%w: store [%#x,%#x) past end of %q", ErrOutOfRange, addr, addr+Addr(len(p)), r.label)
	}
	if r.protected {
		return fmt.Errorf("%w: %q at %#x", ErrProtected, r.label, addr)
	}
	s.stores++
	s.dispatch(Access{Kind: Store, Addr: addr, Size: len(p), Site: site})
	copy(r.data[int(addr-r.base):], p)
	return nil
}

// Peek reads n bytes at addr without generating an access event. The driver
// uses it as the DMA read path when hashing or copying transfer payloads.
func (s *Space) Peek(addr Addr, n int) ([]byte, error) {
	r := s.RegionAt(addr)
	if r == nil {
		return nil, fmt.Errorf("%w: peek %#x", ErrOutOfRange, addr)
	}
	if addr+Addr(n) > r.End() {
		return nil, fmt.Errorf("%w: peek past end of %q", ErrOutOfRange, r.label)
	}
	out := make([]byte, n)
	copy(out, r.data[int(addr-r.base):int(addr-r.base)+n])
	return out, nil
}

// PeekView is Peek without the copy: it returns a slice aliasing the
// region's live bytes. Callers must treat it as read-only and must not
// retain it past the operation that requested it — any later Store, Poke or
// Free changes or invalidates the contents. The driver's transfer paths use
// it so capturing a payload for hashing does not cost an allocation per
// transfer.
func (s *Space) PeekView(addr Addr, n int) ([]byte, error) {
	r := s.RegionAt(addr)
	if r == nil {
		return nil, fmt.Errorf("%w: peek %#x", ErrOutOfRange, addr)
	}
	if addr+Addr(n) > r.End() {
		return nil, fmt.Errorf("%w: peek past end of %q", ErrOutOfRange, r.label)
	}
	off := int(addr - r.base)
	return r.data[off : off+n : off+n], nil
}

// Poke writes p at addr without generating an access event (DMA write path,
// e.g. a device-to-host transfer landing). Protected pages still fault.
func (s *Space) Poke(addr Addr, p []byte) error {
	r := s.RegionAt(addr)
	if r == nil {
		return fmt.Errorf("%w: poke %#x", ErrOutOfRange, addr)
	}
	if addr+Addr(len(p)) > r.End() {
		return fmt.Errorf("%w: poke past end of %q", ErrOutOfRange, r.label)
	}
	if r.protected {
		return fmt.Errorf("%w: %q at %#x", ErrProtected, r.label, addr)
	}
	copy(r.data[int(addr-r.base):], p)
	return nil
}

func (s *Space) staleRegionAt(addr Addr) *Region {
	i := sort.Search(len(s.regions), func(i int) bool {
		return s.regions[i].End() > addr
	})
	if i < len(s.regions) && s.regions[i].Contains(addr) && s.regions[i].freed {
		return s.regions[i]
	}
	return nil
}
