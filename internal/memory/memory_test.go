package memory

import (
	"errors"
	"testing"
	"testing/quick"
)

var site = Site{Function: "solve", File: "als.cpp", Line: 738}

func TestAllocDistinctPageAligned(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(100, "a")
	b := s.Alloc(100, "b")
	if a.Base() == 0 {
		t.Fatal("allocation at null address")
	}
	if a.Base()%PageSize != 0 || b.Base()%PageSize != 0 {
		t.Fatalf("allocations not page aligned: %#x %#x", a.Base(), b.Base())
	}
	if a.End() > b.Base() {
		t.Fatalf("regions overlap: a=[%#x,%#x) b starts %#x", a.Base(), a.End(), b.Base())
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	NewSpace().Alloc(0, "zero")
}

func TestStoreLoadRoundTrip(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(64, "buf")
	want := []byte("hello, gpu")
	if err := s.Store(site, r.Base()+3, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(site, r.Base()+3, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("Load = %q, want %q", got, want)
	}
}

func TestLoadReturnsCopy(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(8, "buf")
	if err := s.Store(site, r.Base(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Load(site, r.Base(), 3)
	got[0] = 99
	again, _ := s.Load(site, r.Base(), 3)
	if again[0] != 1 {
		t.Fatal("Load aliased internal storage")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(16, "buf")
	if _, err := s.Load(site, r.End(), 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("load past end: %v", err)
	}
	if err := s.Store(site, r.Base()+10, make([]byte, 10)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("straddling store: %v", err)
	}
	if _, err := s.Load(site, 0, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("null load: %v", err)
	}
}

func TestUseAfterFree(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(16, "temp")
	s.Free(r)
	if !r.Freed() {
		t.Fatal("Freed() false after Free")
	}
	if _, err := s.Load(site, r.Base(), 1); !errors.Is(err, ErrUseAfterFree) {
		t.Fatalf("load after free: %v", err)
	}
	if err := s.Store(site, r.Base(), []byte{1}); !errors.Is(err, ErrUseAfterFree) {
		t.Fatalf("store after free: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(16, "temp")
	s.Free(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	s.Free(r)
}

func TestProtect(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(32, "const data")
	s.Protect(r)
	if err := s.Store(site, r.Base(), []byte{1}); !errors.Is(err, ErrProtected) {
		t.Fatalf("store to protected: %v", err)
	}
	if err := s.Poke(r.Base(), []byte{1}); !errors.Is(err, ErrProtected) {
		t.Fatalf("poke to protected: %v", err)
	}
	if _, err := s.Load(site, r.Base(), 1); err != nil {
		t.Fatalf("load from protected should succeed: %v", err)
	}
	s.Unprotect(r)
	if err := s.Store(site, r.Base(), []byte{1}); err != nil {
		t.Fatalf("store after Unprotect: %v", err)
	}
}

func TestPeekPokeBypassWatchers(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(16, "dma")
	fired := 0
	s.Watch(r.Base(), r.End(), func(Access) { fired++ })
	if err := s.Poke(r.Base(), []byte{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Peek(r.Base(), 1); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("DMA access fired %d watcher events", fired)
	}
	got, _ := s.Peek(r.Base(), 1)
	if got[0] != 7 {
		t.Fatalf("Peek = %d, want 7", got[0])
	}
}

func TestWatchFiresOnOverlap(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(100, "gpu writable")
	var seen []Access
	s.Watch(r.Base()+10, r.Base()+20, func(a Access) { seen = append(seen, a) })

	// Entirely before: no event.
	if err := s.Store(site, r.Base(), make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	// Straddling the low edge: event.
	if err := s.Store(site, r.Base()+5, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	// Inside: event.
	if _, err := s.Load(site, r.Base()+12, 2); err != nil {
		t.Fatal(err)
	}
	// Entirely after: no event.
	if _, err := s.Load(site, r.Base()+20, 5); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("got %d events, want 2", len(seen))
	}
	if seen[0].Kind != Store || seen[1].Kind != Load {
		t.Fatalf("event kinds = %v,%v", seen[0].Kind, seen[1].Kind)
	}
	if seen[1].Site != site {
		t.Fatalf("site = %v, want %v", seen[1].Site, site)
	}
}

func TestUnwatch(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(16, "w")
	fired := 0
	id := s.Watch(r.Base(), r.End(), func(Access) { fired++ })
	if s.WatchCount() != 1 {
		t.Fatalf("WatchCount = %d", s.WatchCount())
	}
	s.Unwatch(id)
	s.Unwatch(id) // idempotent
	if s.WatchCount() != 0 {
		t.Fatalf("WatchCount after Unwatch = %d", s.WatchCount())
	}
	if err := s.Store(site, r.Base(), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("watcher fired after Unwatch")
	}
}

func TestWatchEmptyRangePanics(t *testing.T) {
	s := NewSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("empty Watch range did not panic")
		}
	}()
	s.Watch(10, 10, func(Access) {})
}

func TestAccessCounters(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(16, "c")
	_ = s.Store(site, r.Base(), []byte{1})
	_, _ = s.Load(site, r.Base(), 1)
	_, _ = s.Load(site, r.Base(), 1)
	if s.Stores() != 1 || s.Loads() != 2 {
		t.Fatalf("counters = %d stores %d loads", s.Stores(), s.Loads())
	}
}

func TestRegionAt(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(10, "a")
	b := s.Alloc(10, "b")
	if got := s.RegionAt(a.Base() + 5); got != a {
		t.Fatal("RegionAt missed region a")
	}
	if got := s.RegionAt(b.Base()); got != b {
		t.Fatal("RegionAt missed region b")
	}
	if got := s.RegionAt(b.End() + 1000000); got != nil {
		t.Fatal("RegionAt found phantom region")
	}
	s.Free(a)
	if got := s.RegionAt(a.Base()); got != nil {
		t.Fatal("RegionAt returned freed region")
	}
}

func TestSiteString(t *testing.T) {
	if got := site.String(); got != "solve (als.cpp:738)" {
		t.Fatalf("Site.String = %q", got)
	}
	if got := (Site{}).String(); got != "<unknown>" {
		t.Fatalf("zero Site.String = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("AccessKind strings wrong")
	}
}

func TestQuickStoreLoadAnyOffset(t *testing.T) {
	s := NewSpace()
	r := s.Alloc(4096, "q")
	f := func(off uint16, val byte) bool {
		o := Addr(off) % 4095
		if err := s.Store(site, r.Base()+o, []byte{val}); err != nil {
			return false
		}
		got, err := s.Load(site, r.Base()+o, 1)
		return err == nil && got[0] == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllocationsNeverOverlap(t *testing.T) {
	s := NewSpace()
	var prevEnd Addr
	f := func(sz uint16) bool {
		n := int(sz%8192) + 1
		r := s.Alloc(n, "q")
		ok := r.Base() >= prevEnd
		prevEnd = r.End()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
