package sched

import (
	"context"
	"fmt"
	"sync"
	"time"

	"diogenes/internal/obs"
)

// Queue is the serving counterpart to Pool's batch Run: a long-lived
// bounded task queue draining into a fixed worker set. Pool answers "run
// these N tasks and give me their results"; Queue answers "keep accepting
// tasks until told to stop, refuse new ones the moment the backlog is
// full, and drain everything that was accepted before shutting down".
//
// The explicit rejection signal — TryEnqueue returning false — is the
// queue's whole point: it lets a caller translate a full backlog into
// visible backpressure (an HTTP 429, a retry hint) instead of buffering
// without bound. An accepted task is never dropped: it runs even if the
// queue is closed immediately afterwards, with the same panic containment
// as Pool, and Close blocks until the last accepted task has finished.
type Queue struct {
	tasks   chan Task
	workers int
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// Telemetry (all instruments nil-safe; an unmetered queue pays only
	// nil checks).
	depth    *obs.Gauge
	peak     *obs.Gauge
	accepted *obs.Counter
	rejected *obs.Counter
	finished *obs.Counter
	taskWall *obs.Histogram
}

// NewQueue returns a started queue running at most workers tasks
// concurrently and holding at most capacity not-yet-started tasks.
// workers follows New's convention (0 selects GOMAXPROCS); capacity must
// be at least 1. The optional registry receives the queue's telemetry:
// sched/jobqueue_depth, sched/jobqueue_depth_peak, sched/jobqueue_accepted,
// sched/jobqueue_rejected, sched/jobqueue_finished and the per-task
// sched/jobqueue_task_wall_ns histogram.
func NewQueue(workers, capacity int, m *obs.Registry) (*Queue, error) {
	if workers < 0 {
		return nil, fmt.Errorf("sched: negative worker count %d", workers)
	}
	if workers == 0 {
		p, _ := New(0)
		workers = p.Workers()
	}
	if capacity < 1 {
		return nil, fmt.Errorf("sched: queue capacity %d, need at least 1", capacity)
	}
	q := &Queue{
		tasks:    make(chan Task, capacity),
		workers:  workers,
		depth:    m.Gauge("sched/jobqueue_depth"),
		peak:     m.Gauge("sched/jobqueue_depth_peak"),
		accepted: m.Counter("sched/jobqueue_accepted"),
		rejected: m.Counter("sched/jobqueue_rejected"),
		finished: m.Counter("sched/jobqueue_finished"),
		taskWall: m.Histogram("sched/jobqueue_task_wall_ns"),
	}
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// worker drains the task channel until it is closed.
func (q *Queue) worker() {
	defer q.wg.Done()
	for t := range q.tasks {
		q.depth.Set(float64(len(q.tasks)))
		start := time.Now()
		// Errors and panics are the task's own business — a serving
		// queue has no batch result slice to report them in, so tasks
		// that care must capture their outcome themselves. The panic
		// containment still matters: one broken job must not take the
		// daemon down.
		_ = runOne(context.Background(), t)
		q.taskWall.Observe(int64(time.Since(start)))
		q.finished.Inc()
	}
}

// TryEnqueue offers a task to the queue. It returns false — the
// backpressure signal — when the backlog is full or the queue is closed;
// true means the task was accepted and will run.
func (q *Queue) TryEnqueue(t Task) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.rejected.Inc()
		return false
	}
	select {
	case q.tasks <- t:
		q.accepted.Inc()
		d := float64(len(q.tasks))
		q.depth.Set(d)
		q.peak.SetMax(d)
		return true
	default:
		q.rejected.Inc()
		return false
	}
}

// Depth returns the number of accepted tasks not yet picked up by a
// worker.
func (q *Queue) Depth() int { return len(q.tasks) }

// Capacity returns the backlog bound.
func (q *Queue) Capacity() int { return cap(q.tasks) }

// Workers returns the resolved worker count (after the 0 → GOMAXPROCS
// default).
func (q *Queue) Workers() int { return q.workers }

// Close stops accepting new tasks and blocks until every accepted task
// has finished. It is idempotent and safe to call concurrently with
// TryEnqueue.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.tasks)
	}
	q.mu.Unlock()
	q.wg.Wait()
}
