package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"diogenes/internal/obs"
)

// Class is a task's admission class. The queue holds one bounded budget
// shared by both classes — admission and backpressure are identical —
// but workers always drain interactive tasks before batch tasks, so a
// short interactive job submitted behind a deep batch backlog starts as
// soon as a worker frees instead of waiting out the bulk work.
type Class int

const (
	// ClassInteractive is the low-latency class: dequeued ahead of any
	// queued batch work. The zero value, so callers that never think
	// about classes get the responsive behavior.
	ClassInteractive Class = iota
	// ClassBatch is the bulk class: dequeued only when no interactive
	// task is waiting.
	ClassBatch
)

// String names the class for task labels and metrics.
func (c Class) String() string {
	if c == ClassBatch {
		return "batch"
	}
	return "interactive"
}

// Queue is the serving counterpart to Pool's batch Run: a long-lived
// bounded task queue draining into a fixed worker set. Pool answers "run
// these N tasks and give me their results"; Queue answers "keep accepting
// tasks until told to stop, refuse new ones the moment the backlog is
// full, and drain everything that was accepted before shutting down".
//
// The explicit rejection signal — TryEnqueue returning false — is the
// queue's whole point: it lets a caller translate a full backlog into
// visible backpressure (an HTTP 429, a retry hint) instead of buffering
// without bound. An accepted task is never dropped: it runs even if the
// queue is closed immediately afterwards, with the same panic containment
// as Pool, and Close blocks until the last accepted task has finished.
//
// Tasks carry a Class; the two classes share the single capacity budget
// (total accepted-but-not-started tasks never exceeds it) but interactive
// tasks preempt queued batch tasks at dequeue time.
type Queue struct {
	interactive chan Task
	batch       chan Task
	capacity    int
	workers     int
	wg          sync.WaitGroup

	// pending counts accepted tasks not yet picked up by a worker —
	// the queue depth. An atomic add on enqueue and sub on dequeue keeps
	// the count (and the gauge fed from it) transactional: the former
	// len(chan)-snapshot scheme let a worker's post-dequeue snapshot
	// overwrite a newer value published by a concurrent TryEnqueue,
	// leaving the gauge stale until the next event.
	pending atomic.Int64

	mu     sync.Mutex
	closed bool

	// Telemetry (all instruments nil-safe; an unmetered queue pays only
	// nil checks).
	depth    *obs.Gauge
	peak     *obs.Gauge
	accepted *obs.Counter
	rejected *obs.Counter
	finished *obs.Counter
	taskWall *obs.Histogram

	// hookDequeued, when non-nil, is called by a worker after the dequeue
	// accounting and before the task runs — a test seam for freezing the
	// queue at a known depth.
	hookDequeued func(Task)
}

// NewQueue returns a started queue running at most workers tasks
// concurrently and holding at most capacity not-yet-started tasks across
// both admission classes. workers follows New's convention (0 selects
// GOMAXPROCS); capacity must be at least 1. The optional registry
// receives the queue's telemetry: sched/jobqueue_depth,
// sched/jobqueue_depth_peak, sched/jobqueue_accepted,
// sched/jobqueue_rejected, sched/jobqueue_finished and the per-task
// sched/jobqueue_task_wall_ns histogram.
func NewQueue(workers, capacity int, m *obs.Registry) (*Queue, error) {
	if workers < 0 {
		return nil, fmt.Errorf("sched: negative worker count %d", workers)
	}
	if workers == 0 {
		p, _ := New(0)
		workers = p.Workers()
	}
	if capacity < 1 {
		return nil, fmt.Errorf("sched: queue capacity %d, need at least 1", capacity)
	}
	q := &Queue{
		// Each class channel is sized to the full budget so that a send
		// under the admission check can never block, even when every
		// pending task belongs to one class.
		interactive: make(chan Task, capacity),
		batch:       make(chan Task, capacity),
		capacity:    capacity,
		workers:     workers,
		depth:       m.Gauge("sched/jobqueue_depth"),
		peak:        m.Gauge("sched/jobqueue_depth_peak"),
		accepted:    m.Counter("sched/jobqueue_accepted"),
		rejected:    m.Counter("sched/jobqueue_rejected"),
		finished:    m.Counter("sched/jobqueue_finished"),
		taskWall:    m.Histogram("sched/jobqueue_task_wall_ns"),
	}
	for w := 0; w < workers; w++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q, nil
}

// worker drains both class channels until they are closed, always
// preferring a waiting interactive task over a waiting batch task.
func (q *Queue) worker() {
	defer q.wg.Done()
	interactive, batch := q.interactive, q.batch
	for interactive != nil || batch != nil {
		var t Task
		got := false
		// Interactive tasks win whenever one is already waiting; the
		// blocking select below is reached only with no interactive
		// backlog.
		if interactive != nil {
			select {
			case it, ok := <-interactive:
				if !ok {
					interactive = nil
					continue
				}
				t, got = it, true
			default:
			}
		}
		if !got {
			select {
			case it, ok := <-interactive:
				if !ok {
					interactive = nil
					continue
				}
				t = it
			case bt, ok := <-batch:
				if !ok {
					batch = nil
					continue
				}
				t = bt
			}
		}
		q.depth.Set(float64(q.pending.Add(-1)))
		if h := q.hookDequeued; h != nil {
			h(t)
		}
		start := time.Now()
		// Errors and panics are the task's own business — a serving
		// queue has no batch result slice to report them in, so tasks
		// that care must capture their outcome themselves. The panic
		// containment still matters: one broken job must not take the
		// daemon down.
		_ = runOne(context.Background(), t)
		q.taskWall.Observe(int64(time.Since(start)))
		q.finished.Inc()
	}
}

// TryEnqueue offers a task to the queue under its Class. It returns
// false — the backpressure signal — when the shared backlog budget is
// full or the queue is closed; true means the task was accepted and will
// run.
func (q *Queue) TryEnqueue(t Task) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.rejected.Inc()
		return false
	}
	// Admission is on the combined pending count: workers only ever
	// decrease it, and enqueuers serialize on q.mu, so the check-then-add
	// can never admit past capacity (at worst it rejects a request whose
	// slot freed a moment later — the conservative direction).
	if int(q.pending.Load()) >= q.capacity {
		q.rejected.Inc()
		return false
	}
	ch := q.interactive
	if t.Class == ClassBatch {
		ch = q.batch
	}
	ch <- t // never blocks: each class channel holds the full budget
	d := float64(q.pending.Add(1))
	q.depth.Set(d)
	q.peak.SetMax(d)
	q.accepted.Inc()
	return true
}

// Depth returns the number of accepted tasks not yet picked up by a
// worker, across both classes.
func (q *Queue) Depth() int { return int(q.pending.Load()) }

// Capacity returns the backlog bound shared by both classes.
func (q *Queue) Capacity() int { return q.capacity }

// Workers returns the resolved worker count (after the 0 → GOMAXPROCS
// default).
func (q *Queue) Workers() int { return q.workers }

// Close stops accepting new tasks and blocks until every accepted task
// has finished. It is idempotent and safe to call concurrently with
// TryEnqueue.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.interactive)
		close(q.batch)
	}
	q.mu.Unlock()
	q.wg.Wait()
}
