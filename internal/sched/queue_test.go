package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"diogenes/internal/obs"
)

func TestQueueRunsAcceptedTasks(t *testing.T) {
	q, err := NewQueue(2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	for i := 0; i < 4; i++ {
		ok := q.TryEnqueue(Task{Name: "t", Fn: func(context.Context) error {
			ran.Add(1)
			return nil
		}})
		if !ok {
			t.Fatalf("task %d rejected with free capacity", i)
		}
	}
	q.Close()
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d tasks, want 4", got)
	}
}

func TestQueueBackpressure(t *testing.T) {
	m := obs.NewRegistry()
	q, err := NewQueue(1, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	started := make(chan struct{})
	block := Task{Name: "block", Fn: func(context.Context) error {
		close(started)
		<-gate
		return nil
	}}
	if !q.TryEnqueue(block) {
		t.Fatal("first task rejected")
	}
	<-started // worker busy; backlog empty
	if !q.TryEnqueue(Task{Name: "fill", Fn: func(context.Context) error { return nil }}) {
		t.Fatal("backlog slot rejected")
	}
	// Worker busy + backlog full: the next offers must be refused.
	for i := 0; i < 3; i++ {
		if q.TryEnqueue(Task{Name: "over", Fn: func(context.Context) error { return nil }}) {
			t.Fatal("over-capacity task accepted")
		}
	}
	close(gate)
	q.Close()
	if got := m.Counter("sched/jobqueue_rejected").Value(); got != 3 {
		t.Fatalf("rejected counter = %d, want 3", got)
	}
	if got := m.Counter("sched/jobqueue_accepted").Value(); got != 2 {
		t.Fatalf("accepted counter = %d, want 2", got)
	}
	if got := m.Counter("sched/jobqueue_finished").Value(); got != 2 {
		t.Fatalf("finished counter = %d, want 2", got)
	}
}

func TestQueueCloseDrainsAndRefuses(t *testing.T) {
	q, err := NewQueue(1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		if !q.TryEnqueue(Task{Name: "t", Fn: func(context.Context) error {
			ran.Add(1)
			return nil
		}}) {
			t.Fatalf("task %d rejected", i)
		}
	}
	q.Close()
	if got := ran.Load(); got != 8 {
		t.Fatalf("drained %d tasks, want all 8", got)
	}
	if q.TryEnqueue(Task{Name: "late", Fn: func(context.Context) error { return nil }}) {
		t.Fatal("closed queue accepted a task")
	}
	q.Close() // idempotent
}

func TestQueueContainsPanics(t *testing.T) {
	q, err := NewQueue(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var after atomic.Bool
	if !q.TryEnqueue(Task{Name: "boom", Fn: func(context.Context) error { panic("boom") }}) {
		t.Fatal("panic task rejected")
	}
	if !q.TryEnqueue(Task{Name: "after", Fn: func(context.Context) error {
		after.Store(true)
		return nil
	}}) {
		t.Fatal("follow-up task rejected")
	}
	q.Close()
	if !after.Load() {
		t.Fatal("worker died with the panicking task")
	}
}

func TestQueueConcurrentEnqueueClose(t *testing.T) {
	q, err := NewQueue(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				q.TryEnqueue(Task{Name: "t", Fn: func(context.Context) error { return nil }})
			}
		}()
	}
	q.Close()
	wg.Wait()
}

func TestQueueRejectsBadConfig(t *testing.T) {
	if _, err := NewQueue(-1, 1, nil); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewQueue(1, 0, nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

// TestQueueInteractivePreemptsQueuedBatch pins the admission-class
// contract: an interactive task submitted behind a full batch backlog is
// dequeued before any queued batch task.
func TestQueueInteractivePreemptsQueuedBatch(t *testing.T) {
	q, err := NewQueue(1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	started := make(chan struct{})
	if !q.TryEnqueue(Task{Name: "block", Class: ClassBatch, Fn: func(context.Context) error {
		close(started)
		<-gate
		return nil
	}}) {
		t.Fatal("blocker rejected")
	}
	<-started // the single worker is now pinned; everything below queues

	var mu sync.Mutex
	var order []string
	record := func(name string) Task {
		class := ClassBatch
		if name[0] == 'i' {
			class = ClassInteractive
		}
		return Task{Name: name, Class: class, Fn: func(context.Context) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}}
	}
	for _, name := range []string{"b1", "b2", "b3"} {
		if !q.TryEnqueue(record(name)) {
			t.Fatalf("batch task %s rejected", name)
		}
	}
	// The interactive task arrives last, behind three queued batch tasks.
	if !q.TryEnqueue(record("i1")) {
		t.Fatal("interactive task rejected")
	}
	close(gate)
	q.Close()

	if len(order) != 4 {
		t.Fatalf("ran %d tasks, want 4 (%v)", len(order), order)
	}
	if order[0] != "i1" {
		t.Fatalf("dequeue order %v: interactive task must run before queued batch tasks", order)
	}
}

// TestQueueClassesShareOneBudget pins the backpressure contract across
// classes: the capacity bound is on total accepted tasks, not per class,
// so neither class can buffer past it.
func TestQueueClassesShareOneBudget(t *testing.T) {
	m := obs.NewRegistry()
	q, err := NewQueue(1, 3, m)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	started := make(chan struct{})
	if !q.TryEnqueue(Task{Name: "block", Class: ClassBatch, Fn: func(context.Context) error {
		close(started)
		<-gate
		return nil
	}}) {
		t.Fatal("blocker rejected")
	}
	<-started
	// 2 batch + 1 interactive fill the shared budget of 3...
	for i, cl := range []Class{ClassBatch, ClassBatch, ClassInteractive} {
		if !q.TryEnqueue(Task{Name: "fill", Class: cl, Fn: func(context.Context) error { return nil }}) {
			t.Fatalf("task %d rejected with free budget", i)
		}
	}
	if got := q.Depth(); got != 3 {
		t.Fatalf("depth = %d, want 3", got)
	}
	// ...and now BOTH classes must be refused: the budget is shared.
	if q.TryEnqueue(Task{Name: "over-i", Class: ClassInteractive, Fn: func(context.Context) error { return nil }}) {
		t.Fatal("interactive task accepted past the shared budget")
	}
	if q.TryEnqueue(Task{Name: "over-b", Class: ClassBatch, Fn: func(context.Context) error { return nil }}) {
		t.Fatal("batch task accepted past the shared budget")
	}
	close(gate)
	q.Close()
	if got := m.Counter("sched/jobqueue_accepted").Value(); got != 4 {
		t.Fatalf("accepted = %d, want 4", got)
	}
	if got := m.Counter("sched/jobqueue_rejected").Value(); got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
}

// TestQueueDepthGaugeTransactional is the regression test for the depth
// gauge race: the gauge used to be recomputed from len(chan) snapshots on
// both sides, so a worker's post-dequeue snapshot could overwrite a newer
// value published by a concurrent TryEnqueue and leave the gauge stale.
// With atomic add/sub accounting the gauge is exact at every quiescent
// point. The hook freezes the worker after its dequeue accounting so the
// test can interleave an enqueue at precisely the historical race window.
func TestQueueDepthGaugeTransactional(t *testing.T) {
	m := obs.NewRegistry()
	q, err := NewQueue(1, 4, m)
	if err != nil {
		t.Fatal(err)
	}
	depth := m.Gauge("sched/jobqueue_depth")
	dequeued := make(chan struct{})
	release := make(chan struct{})
	q.hookDequeued = func(Task) {
		dequeued <- struct{}{}
		<-release
	}
	noop := func(context.Context) error { return nil }

	if !q.TryEnqueue(Task{Name: "t1", Fn: noop}) {
		t.Fatal("t1 rejected")
	}
	<-dequeued // worker took t1 and has already accounted the dequeue
	if got := depth.Value(); got != 0 {
		t.Fatalf("gauge after dequeue accounting = %v, want 0", got)
	}
	// The race window: an enqueue lands while the worker sits between its
	// dequeue accounting and the task body. The gauge must show the new
	// task immediately and must NOT be clobbered back when the worker
	// resumes (the snapshot scheme's failure mode).
	if !q.TryEnqueue(Task{Name: "t2", Fn: noop}) {
		t.Fatal("t2 rejected")
	}
	if got := depth.Value(); got != 1 {
		t.Fatalf("gauge with one queued task = %v, want 1", got)
	}
	release <- struct{}{} // t1 runs
	<-dequeued            // worker took t2
	if got := depth.Value(); got != 0 {
		t.Fatalf("gauge after draining = %v, want 0", got)
	}
	close(release) // t2 runs; the hook has no more tasks to freeze
	q.Close()
	if got := depth.Value(); got != 0 {
		t.Fatalf("gauge after Close = %v, want 0", got)
	}
	if got := m.Gauge("sched/jobqueue_depth_peak").Value(); got != 1 {
		t.Fatalf("peak gauge = %v, want 1", got)
	}
}

// TestQueueDepthGaugeUnderConcurrency hammers both sides and checks the
// transactional invariant at the end: after Close has drained everything,
// the pending counter and the gauge are exactly zero and the peak never
// exceeded capacity.
func TestQueueDepthGaugeUnderConcurrency(t *testing.T) {
	m := obs.NewRegistry()
	q, err := NewQueue(4, 16, m)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				class := ClassInteractive
				if (g+i)%2 == 0 {
					class = ClassBatch
				}
				if q.TryEnqueue(Task{Name: "t", Class: class, Fn: func(context.Context) error { return nil }}) {
					accepted.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	q.Close()
	if got := q.Depth(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
	if got := m.Gauge("sched/jobqueue_depth").Value(); got != 0 {
		t.Fatalf("depth gauge after drain = %v, want 0", got)
	}
	if peak := m.Gauge("sched/jobqueue_depth_peak").Value(); peak > 16 {
		t.Fatalf("peak gauge %v exceeded capacity 16", peak)
	}
	if got := m.Counter("sched/jobqueue_finished").Value(); got != accepted.Load() {
		t.Fatalf("finished %d tasks, accepted %d", got, accepted.Load())
	}
}
