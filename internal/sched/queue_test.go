package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"diogenes/internal/obs"
)

func TestQueueRunsAcceptedTasks(t *testing.T) {
	q, err := NewQueue(2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	for i := 0; i < 4; i++ {
		ok := q.TryEnqueue(Task{Name: "t", Fn: func(context.Context) error {
			ran.Add(1)
			return nil
		}})
		if !ok {
			t.Fatalf("task %d rejected with free capacity", i)
		}
	}
	q.Close()
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d tasks, want 4", got)
	}
}

func TestQueueBackpressure(t *testing.T) {
	m := obs.NewRegistry()
	q, err := NewQueue(1, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	started := make(chan struct{})
	block := Task{Name: "block", Fn: func(context.Context) error {
		close(started)
		<-gate
		return nil
	}}
	if !q.TryEnqueue(block) {
		t.Fatal("first task rejected")
	}
	<-started // worker busy; backlog empty
	if !q.TryEnqueue(Task{Name: "fill", Fn: func(context.Context) error { return nil }}) {
		t.Fatal("backlog slot rejected")
	}
	// Worker busy + backlog full: the next offers must be refused.
	for i := 0; i < 3; i++ {
		if q.TryEnqueue(Task{Name: "over", Fn: func(context.Context) error { return nil }}) {
			t.Fatal("over-capacity task accepted")
		}
	}
	close(gate)
	q.Close()
	if got := m.Counter("sched/jobqueue_rejected").Value(); got != 3 {
		t.Fatalf("rejected counter = %d, want 3", got)
	}
	if got := m.Counter("sched/jobqueue_accepted").Value(); got != 2 {
		t.Fatalf("accepted counter = %d, want 2", got)
	}
	if got := m.Counter("sched/jobqueue_finished").Value(); got != 2 {
		t.Fatalf("finished counter = %d, want 2", got)
	}
}

func TestQueueCloseDrainsAndRefuses(t *testing.T) {
	q, err := NewQueue(1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		if !q.TryEnqueue(Task{Name: "t", Fn: func(context.Context) error {
			ran.Add(1)
			return nil
		}}) {
			t.Fatalf("task %d rejected", i)
		}
	}
	q.Close()
	if got := ran.Load(); got != 8 {
		t.Fatalf("drained %d tasks, want all 8", got)
	}
	if q.TryEnqueue(Task{Name: "late", Fn: func(context.Context) error { return nil }}) {
		t.Fatal("closed queue accepted a task")
	}
	q.Close() // idempotent
}

func TestQueueContainsPanics(t *testing.T) {
	q, err := NewQueue(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var after atomic.Bool
	if !q.TryEnqueue(Task{Name: "boom", Fn: func(context.Context) error { panic("boom") }}) {
		t.Fatal("panic task rejected")
	}
	if !q.TryEnqueue(Task{Name: "after", Fn: func(context.Context) error {
		after.Store(true)
		return nil
	}}) {
		t.Fatal("follow-up task rejected")
	}
	q.Close()
	if !after.Load() {
		t.Fatal("worker died with the panicking task")
	}
}

func TestQueueConcurrentEnqueueClose(t *testing.T) {
	q, err := NewQueue(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				q.TryEnqueue(Task{Name: "t", Fn: func(context.Context) error { return nil }})
			}
		}()
	}
	q.Close()
	wg.Wait()
}

func TestQueueRejectsBadConfig(t *testing.T) {
	if _, err := NewQueue(-1, 1, nil); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewQueue(1, 0, nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
}
