package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diogenes/internal/obs"
)

// TestNewWorkerCounts is the table-driven contract for pool construction:
// negative widths are rejected, zero selects GOMAXPROCS, and positive
// widths are taken literally.
func TestNewWorkerCounts(t *testing.T) {
	tests := []struct {
		name    string
		workers int
		wantErr bool
		want    func(got int) bool
	}{
		{"negative", -1, true, nil},
		{"very negative", -1 << 20, true, nil},
		{"zero defaults to GOMAXPROCS", 0, false, func(got int) bool { return got >= 1 }},
		{"one", 1, false, func(got int) bool { return got == 1 }},
		{"many", 64, false, func(got int) bool { return got == 64 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := New(tt.workers)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("New(%d) accepted", tt.workers)
				}
				return
			}
			if err != nil {
				t.Fatalf("New(%d): %v", tt.workers, err)
			}
			if !tt.want(p.Workers()) {
				t.Fatalf("New(%d).Workers() = %d", tt.workers, p.Workers())
			}
		})
	}
}

// TestRunErrorPaths is the table-driven contract for failure handling:
// worker panics become errors, a nil function is an error, and the first
// failure's error is what Run returns.
func TestRunErrorPaths(t *testing.T) {
	boom := errors.New("boom")
	tests := []struct {
		name     string
		tasks    []Task
		checkErr func(t *testing.T, err error)
		checkRes func(t *testing.T, res []Result)
	}{
		{
			name:  "no tasks",
			tasks: nil,
			checkErr: func(t *testing.T, err error) {
				if err != nil {
					t.Fatalf("empty run failed: %v", err)
				}
			},
		},
		{
			name: "plain error propagates",
			tasks: []Task{
				{Name: "ok", Fn: func(context.Context) error { return nil }},
				{Name: "bad", Fn: func(context.Context) error { return boom }},
			},
			checkErr: func(t *testing.T, err error) {
				if !errors.Is(err, boom) {
					t.Fatalf("err = %v, want %v", err, boom)
				}
			},
			checkRes: func(t *testing.T, res []Result) {
				if res[0].Err != nil {
					t.Errorf("ok task failed: %v", res[0].Err)
				}
				if !errors.Is(res[1].Err, boom) {
					t.Errorf("bad task err = %v", res[1].Err)
				}
			},
		},
		{
			name: "panic is contained",
			tasks: []Task{
				{Name: "explodes", Fn: func(context.Context) error { panic("kaboom") }},
			},
			checkErr: func(t *testing.T, err error) {
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("err = %T %v, want *PanicError", err, err)
				}
				if pe.Task != "explodes" || pe.Value != "kaboom" {
					t.Fatalf("panic error = %+v", pe)
				}
				if len(pe.Stack) == 0 {
					t.Fatal("panic stack not captured")
				}
			},
		},
		{
			name: "nil function rejected",
			tasks: []Task{
				{Name: "empty"},
			},
			checkErr: func(t *testing.T, err error) {
				if err == nil {
					t.Fatal("nil Fn accepted")
				}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := New(2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Run(context.Background(), tt.tasks...)
			if len(res) != len(tt.tasks) {
				t.Fatalf("results = %d, want %d", len(res), len(tt.tasks))
			}
			tt.checkErr(t, err)
			if tt.checkRes != nil {
				tt.checkRes(t, res)
			}
		})
	}
}

// TestFirstErrorCancelsRemaining proves first-error cancellation: with one
// worker, a failure in the first task must skip every queued task, and the
// skipped results must carry ErrSkipped.
func TestFirstErrorCancelsRemaining(t *testing.T) {
	p, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	ran := 0
	tasks := []Task{
		{Name: "fails", Fn: func(context.Context) error { ran++; return boom }},
		{Name: "skipped-1", Fn: func(context.Context) error { ran++; return nil }},
		{Name: "skipped-2", Fn: func(context.Context) error { ran++; return nil }},
	}
	res, runErr := p.Run(context.Background(), tasks...)
	if !errors.Is(runErr, boom) {
		t.Fatalf("run err = %v", runErr)
	}
	if ran != 1 {
		t.Fatalf("tasks executed = %d, want 1", ran)
	}
	for _, r := range res[1:] {
		if !errors.Is(r.Err, ErrSkipped) {
			t.Errorf("task %s err = %v, want ErrSkipped", r.Name, r.Err)
		}
	}
}

// TestParentCancellationSkips proves an already-cancelled parent context
// prevents any task from starting.
func TestParentCancellationSkips(t *testing.T) {
	p, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	res, _ := p.Run(ctx, Task{Name: "x", Fn: func(context.Context) error {
		ran.Add(1)
		return nil
	}})
	if ran.Load() != 0 {
		t.Fatal("task ran under a cancelled parent")
	}
	if !errors.Is(res[0].Err, ErrSkipped) {
		t.Fatalf("err = %v, want ErrSkipped", res[0].Err)
	}
}

// TestResultsKeepSubmissionOrder proves results are ordered by submission,
// not completion: later tasks finishing first must not reorder the slice.
// It also covers the metrics surface that replaced per-result timing: every
// executed task lands in the sched/task_wall_ns histogram.
func TestResultsKeepSubmissionOrder(t *testing.T) {
	p, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewRegistry()
	p.SetMetrics(m)
	var tasks []Task
	for i := 0; i < 16; i++ {
		i := i
		tasks = append(tasks, Task{
			Name: fmt.Sprintf("t%d", i),
			Fn: func(context.Context) error {
				if i%3 == 0 {
					time.Sleep(time.Millisecond)
				}
				return nil
			},
		})
	}
	res, runErr := p.Run(context.Background(), tasks...)
	if runErr != nil {
		t.Fatal(runErr)
	}
	for i, r := range res {
		if r.Name != fmt.Sprintf("t%d", i) {
			t.Fatalf("result %d = %s", i, r.Name)
		}
	}
	if got := m.Histogram("sched/task_wall_ns").Count(); got != 16 {
		t.Fatalf("task_wall_ns count = %d, want 16", got)
	}
	if got := m.Counter("sched/tasks_run").Value(); got != 16 {
		t.Fatalf("tasks_run = %d, want 16", got)
	}
	if util := m.Gauge("sched/utilization_pct").Value(); util <= 0 || util > 100 {
		t.Fatalf("utilization_pct = %g, want within (0, 100]", util)
	}
}

// TestConcurrencyBound proves the pool never runs more tasks at once than
// its width allows, and that a width above the task count still works.
func TestConcurrencyBound(t *testing.T) {
	const width = 3
	p, err := New(width)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	inFlight, peak := 0, 0
	var tasks []Task
	for i := 0; i < 24; i++ {
		tasks = append(tasks, Task{Name: fmt.Sprintf("t%d", i), Fn: func(context.Context) error {
			mu.Lock()
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return nil
		}})
	}
	if _, err := p.Run(context.Background(), tasks...); err != nil {
		t.Fatal(err)
	}
	if peak > width {
		t.Fatalf("peak concurrency %d exceeds pool width %d", peak, width)
	}
}

// TestGo exercises the convenience wrapper, including its worker-count
// validation path.
func TestGo(t *testing.T) {
	var n atomic.Int32
	err := Go(context.Background(), 2,
		func(context.Context) error { n.Add(1); return nil },
		func(context.Context) error { n.Add(1); return nil },
	)
	if err != nil || n.Load() != 2 {
		t.Fatalf("Go: err=%v ran=%d", err, n.Load())
	}
	if err := Go(context.Background(), -2, func(context.Context) error { return nil }); err == nil {
		t.Fatal("negative width accepted")
	}
}
