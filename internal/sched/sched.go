// Package sched is the execution engine behind the tool's parallel paths: a
// bounded worker pool with first-error cancellation, panic containment and
// per-task timing.
//
// The FFM pipeline and the evaluation suites are embarrassingly parallel at
// two levels — collection stages that depend only on the stage-1 baseline,
// and experiment applications that share nothing at all — but correctness
// demands more than `go` statements: a failing task must stop work that is
// no longer needed, a panicking task must not take the process down, and
// results must come back in a deterministic order regardless of which
// worker finished first. Pool provides exactly that contract; every
// simulated run stays deterministic because each task executes the target
// application in its own fresh process on its own virtual clock.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"diogenes/internal/obs"
)

// Task is one unit of work submitted to a Pool.
type Task struct {
	// Name labels the task in errors and results.
	Name string
	// Class is the admission class a Queue dequeues the task under; the
	// zero value is ClassInteractive. Pool ignores it (a batch Run is all
	// one class by construction).
	Class Class
	// Fn does the work. It should honour ctx cancellation promptly if it
	// is long-running, but the pool does not require it: cancellation only
	// prevents *unstarted* tasks from running.
	Fn func(ctx context.Context) error
}

// Result reports one task's outcome. Results are returned in submission
// order, independent of the order workers finished in. Per-task wall-clock
// timing is not part of the result: it is published to the pool's metrics
// registry (SetMetrics) as the sched/task_wall_ns histogram, where the
// utilization accounting actually consumes it.
type Result struct {
	Name string
	// Err is nil on success, the task's own error, a *PanicError if the
	// task panicked, or an error wrapping ErrSkipped if an earlier failure
	// cancelled the run before the task started.
	Err error
}

// ErrSkipped marks tasks that never started because the run was cancelled
// by an earlier failure.
var ErrSkipped = errors.New("sched: task skipped after cancellation")

// PanicError is the error reported for a task whose Fn panicked. The pool
// contains the panic instead of crashing the process: the experiment
// suites run many independent pipelines, and one broken workload must not
// destroy the results of the others.
type PanicError struct {
	Task  string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %q panicked: %v", e.Task, e.Value)
}

// Pool is a bounded worker pool. The zero value is not usable; call New.
// A Pool is stateless between Run calls and safe for concurrent use.
type Pool struct {
	workers int
	metrics *obs.Registry
}

// New returns a pool running at most workers tasks concurrently.
// workers == 0 selects GOMAXPROCS; negative counts are rejected.
func New(workers int) (*Pool, error) {
	if workers < 0 {
		return nil, fmt.Errorf("sched: negative worker count %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}, nil
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// SetMetrics attaches a metrics registry to the pool. Every subsequent Run
// publishes scheduler telemetry there: per-task wall timing
// (sched/task_wall_ns), task outcome counters (sched/tasks_run,
// sched/tasks_failed, sched/tasks_skipped), queue depth
// (sched/queue_depth, sched/queue_depth_peak) and worker utilization
// (sched/utilization_pct, busy time over workers × run wall time). All of
// it is wall-clock diagnostic data — simulation results never depend on
// it. A nil registry disables publication.
func (p *Pool) SetMetrics(m *obs.Registry) { p.metrics = m }

// Run executes the tasks on the pool's workers and blocks until every
// started task has finished. The first failure (error or panic) cancels the
// run: tasks not yet started are skipped and reported with ErrSkipped.
// Results come back in submission order; the returned error is the first
// failure observed (by completion time), or nil if every task succeeded.
//
// A nil ctx is treated as context.Background.
func (p *Pool) Run(ctx context.Context, tasks ...Task) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(tasks))
	for i, t := range tasks {
		results[i].Name = t.Name
	}

	var (
		firstErr  error
		firstOnce sync.Once
	)
	fail := func(err error) {
		firstOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	indexes := make(chan int, len(tasks))
	for i := range tasks {
		indexes <- i
	}
	close(indexes)

	workers := p.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}

	// Scheduler telemetry. All instruments are nil-safe, so an unmetered
	// pool pays only nil checks.
	m := p.metrics
	var (
		taskWall    = m.Histogram("sched/task_wall_ns")
		tasksRun    = m.Counter("sched/tasks_run")
		tasksFailed = m.Counter("sched/tasks_failed")
		tasksSkip   = m.Counter("sched/tasks_skipped")
		queueDepth  = m.Gauge("sched/queue_depth")
		queuePeak   = m.Gauge("sched/queue_depth_peak")
		utilization = m.Gauge("sched/utilization_pct")
		busyNS      atomic.Int64
		runStart    = time.Now()
		pending     atomic.Int64
	)
	pending.Store(int64(len(tasks)))
	queuePeak.SetMax(float64(len(tasks)))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				queueDepth.Set(float64(pending.Add(-1)))
				if err := runCtx.Err(); err != nil {
					results[i].Err = fmt.Errorf("%w (task %q): %w", ErrSkipped, tasks[i].Name, context.Cause(runCtx))
					tasksSkip.Inc()
					continue
				}
				start := time.Now()
				results[i].Err = runOne(runCtx, tasks[i])
				elapsed := time.Since(start)
				busyNS.Add(int64(elapsed))
				taskWall.Observe(int64(elapsed))
				tasksRun.Inc()
				if results[i].Err != nil {
					tasksFailed.Inc()
					fail(results[i].Err)
				}
			}
		}()
	}
	wg.Wait()
	if wall := time.Since(runStart); wall > 0 && workers > 0 {
		utilization.Set(100 * float64(busyNS.Load()) / (float64(wall) * float64(workers)))
	}
	return results, firstErr
}

// runOne executes a single task, converting a panic into a *PanicError.
// It is shared by the batch Pool and the serving Queue.
func runOne(ctx context.Context, t Task) (err error) {
	if t.Fn == nil {
		return fmt.Errorf("sched: task %q has no function", t.Name)
	}
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Task: t.Name, Value: v, Stack: buf}
		}
	}()
	return t.Fn(ctx)
}

// Go runs fns as anonymous tasks on a pool of the given width and returns
// the first error — the fire-and-join convenience used by callers that need
// structured results no finer than "did everything succeed".
func Go(ctx context.Context, workers int, fns ...func(ctx context.Context) error) error {
	return GoMetrics(ctx, workers, nil, fns...)
}

// GoMetrics is Go with a metrics registry attached to the throwaway pool,
// so ad-hoc parallel sections (the FFM stage overlap, the benefit
// measurement pair) contribute to the same scheduler telemetry as the
// experiment suites. A nil registry is Go.
func GoMetrics(ctx context.Context, workers int, m *obs.Registry, fns ...func(ctx context.Context) error) error {
	pool, err := New(workers)
	if err != nil {
		return err
	}
	pool.SetMetrics(m)
	tasks := make([]Task, len(fns))
	for i, fn := range fns {
		tasks[i] = Task{Name: fmt.Sprintf("task-%d", i), Fn: fn}
	}
	_, err = pool.Run(ctx, tasks...)
	return err
}
