// Package sched is the execution engine behind the tool's parallel paths: a
// bounded worker pool with first-error cancellation, panic containment and
// per-task timing.
//
// The FFM pipeline and the evaluation suites are embarrassingly parallel at
// two levels — collection stages that depend only on the stage-1 baseline,
// and experiment applications that share nothing at all — but correctness
// demands more than `go` statements: a failing task must stop work that is
// no longer needed, a panicking task must not take the process down, and
// results must come back in a deterministic order regardless of which
// worker finished first. Pool provides exactly that contract; every
// simulated run stays deterministic because each task executes the target
// application in its own fresh process on its own virtual clock.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task is one unit of work submitted to a Pool.
type Task struct {
	// Name labels the task in errors and results.
	Name string
	// Fn does the work. It should honour ctx cancellation promptly if it
	// is long-running, but the pool does not require it: cancellation only
	// prevents *unstarted* tasks from running.
	Fn func(ctx context.Context) error
}

// Result reports one task's outcome. Results are returned in submission
// order, independent of the order workers finished in.
type Result struct {
	Name string
	// Err is nil on success, the task's own error, a *PanicError if the
	// task panicked, or an error wrapping ErrSkipped if an earlier failure
	// cancelled the run before the task started.
	Err error
	// Elapsed is the wall-clock time the task's Fn ran for (zero for
	// skipped tasks). It is diagnostic only — all simulation timing is
	// virtual — so no determinism guarantee attaches to it.
	Elapsed time.Duration
}

// ErrSkipped marks tasks that never started because the run was cancelled
// by an earlier failure.
var ErrSkipped = errors.New("sched: task skipped after cancellation")

// PanicError is the error reported for a task whose Fn panicked. The pool
// contains the panic instead of crashing the process: the experiment
// suites run many independent pipelines, and one broken workload must not
// destroy the results of the others.
type PanicError struct {
	Task  string
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %q panicked: %v", e.Task, e.Value)
}

// Pool is a bounded worker pool. The zero value is not usable; call New.
// A Pool is stateless between Run calls and safe for concurrent use.
type Pool struct {
	workers int
}

// New returns a pool running at most workers tasks concurrently.
// workers == 0 selects GOMAXPROCS; negative counts are rejected.
func New(workers int) (*Pool, error) {
	if workers < 0 {
		return nil, fmt.Errorf("sched: negative worker count %d", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}, nil
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Run executes the tasks on the pool's workers and blocks until every
// started task has finished. The first failure (error or panic) cancels the
// run: tasks not yet started are skipped and reported with ErrSkipped.
// Results come back in submission order; the returned error is the first
// failure observed (by completion time), or nil if every task succeeded.
//
// A nil ctx is treated as context.Background.
func (p *Pool) Run(ctx context.Context, tasks ...Task) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(tasks))
	for i, t := range tasks {
		results[i].Name = t.Name
	}

	var (
		firstErr  error
		firstOnce sync.Once
	)
	fail := func(err error) {
		firstOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	indexes := make(chan int, len(tasks))
	for i := range tasks {
		indexes <- i
	}
	close(indexes)

	workers := p.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				if err := runCtx.Err(); err != nil {
					results[i].Err = fmt.Errorf("%w (task %q): %w", ErrSkipped, tasks[i].Name, context.Cause(runCtx))
					continue
				}
				results[i].Err = p.runOne(runCtx, tasks[i], &results[i].Elapsed)
				if results[i].Err != nil {
					fail(results[i].Err)
				}
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}

// runOne executes a single task, converting a panic into a *PanicError.
func (p *Pool) runOne(ctx context.Context, t Task, elapsed *time.Duration) (err error) {
	if t.Fn == nil {
		return fmt.Errorf("sched: task %q has no function", t.Name)
	}
	start := time.Now()
	defer func() {
		*elapsed = time.Since(start)
		if v := recover(); v != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Task: t.Name, Value: v, Stack: buf}
		}
	}()
	return t.Fn(ctx)
}

// Go runs fns as anonymous tasks on a pool of the given width and returns
// the first error — the fire-and-join convenience used by callers that need
// structured results no finer than "did everything succeed".
func Go(ctx context.Context, workers int, fns ...func(ctx context.Context) error) error {
	pool, err := New(workers)
	if err != nil {
		return err
	}
	tasks := make([]Task, len(fns))
	for i, fn := range fns {
		tasks[i] = Task{Name: fmt.Sprintf("task-%d", i), Fn: fn}
	}
	_, err = pool.Run(ctx, tasks...)
	return err
}
