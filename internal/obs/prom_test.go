package obs

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func TestWritePromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache/hits").Add(7)
	r.Counter("cache/misses").Add(3)
	r.Gauge("sched/jobqueue_depth").Set(2)
	h := r.Histogram("serve/job_nanos")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5) // bucket 3: [4,8)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE diogenes_cache_hits counter",
		"diogenes_cache_hits 7",
		"diogenes_cache_misses 3",
		"# TYPE diogenes_sched_jobqueue_depth gauge",
		"diogenes_sched_jobqueue_depth 2",
		"# TYPE diogenes_serve_job_nanos histogram",
		"diogenes_serve_job_nanos_bucket{le=\"0\"} 1",
		"diogenes_serve_job_nanos_bucket{le=\"1\"} 2",
		"diogenes_serve_job_nanos_bucket{le=\"7\"} 3",
		"diogenes_serve_job_nanos_bucket{le=\"+Inf\"} 3",
		"diogenes_serve_job_nanos_sum 6",
		"diogenes_serve_job_nanos_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every sample line must parse as name{labels} value with a mangled name.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("sample line %q has no value", line)
		}
		name, _, _ = strings.Cut(name, "{")
		if !strings.HasPrefix(name, "diogenes_") || strings.ContainsAny(name, "/- ") {
			t.Errorf("bad metric name %q in line %q", name, line)
		}
	}
}

func TestWritePromCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	// Cumulative counts must be non-decreasing down the le series.
	var prev int64 = -1
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.Contains(line, "_bucket{") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative: %d after %d in %q", n, prev, line)
		}
		prev = n
	}
	if prev != 100 {
		t.Fatalf("final cumulative count = %d, want 100", prev)
	}
}

func TestHandlerNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve/jobs_completed").Inc()
	h := r.Handler()

	// Default (curl, browsers): native dump.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "*/*")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if body := rec.Body.String(); !strings.Contains(body, "serve/jobs_completed") || strings.Contains(body, "diogenes_") {
		t.Fatalf("default /metrics should stay the native dump, got:\n%s", body)
	}

	// ?format=prom opts in.
	req = httptest.NewRequest("GET", "/metrics?format=prom", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if body := rec.Body.String(); !strings.Contains(body, "diogenes_serve_jobs_completed 1") {
		t.Fatalf("?format=prom should serve exposition, got:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("prom Content-Type = %q", ct)
	}

	// The Prometheus scraper's Accept names text/plain.
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if body := rec.Body.String(); !strings.Contains(body, "# TYPE diogenes_serve_jobs_completed counter") {
		t.Fatalf("Accept: text/plain should serve exposition, got:\n%s", body)
	}

	// Nil registry stays nil-safe in both modes.
	var nilReg *Registry
	req = httptest.NewRequest("GET", "/metrics?format=prom", nil)
	rec = httptest.NewRecorder()
	nilReg.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("nil registry prom = %d", rec.Code)
	}
}
