// Package obs is the tool's self-measurement layer: hierarchical pipeline
// spans, a metrics registry, and a self-overhead report, built with no
// dependencies beyond the standard library and the virtual clock.
//
// Diogenes' core claim is honesty — a measurement tool must account for its
// own perturbation (§5.3) — yet a tool that cannot see inside itself cannot
// make that accounting. This package gives every layer of the pipeline a
// place to record what it did and what it cost:
//
//   - Spans form a tree (run → stage → app-process → driver-call batches)
//     with two time attributions per node: virtual time, taken from the
//     simulated clocks and therefore byte-identical between serial and
//     parallel executions, and wall time, which is diagnostic only. Spans
//     export as Chrome trace_event JSON (loadable in Perfetto or
//     chrome://tracing) and as an indented plain-text summary.
//   - The Registry holds counters, gauges and fixed log-scale-bucket
//     histograms, safe for concurrent update, capturing probe overhead from
//     interpose, sync waits from the driver, scheduler utilization, and
//     report-cache traffic.
//   - SelfOverhead compares each instrumented stage against the
//     uninstrumented reference run, quantifying the tool's own perturbation
//     the way §5.3 reports the 8×–20× collection cost.
//
// Everything is nil-safe: a nil *Observer, *Span or *Registry accepts every
// call as a no-op, so instrumentation sites need no conditionals and an
// un-observed pipeline pays only a nil check.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"diogenes/internal/simtime"
)

// Observer bundles the three self-measurement products — the span trace,
// the metrics registry, and the per-application self-overhead reports —
// into the single handle the pipeline threads through.
type Observer struct {
	trace   *Trace
	metrics *Registry

	mu        sync.Mutex
	overheads []*SelfOverhead
}

// New returns an observer with an empty trace rooted at name and a fresh
// metrics registry.
func New(name string) *Observer {
	return &Observer{trace: NewTrace(name), metrics: NewRegistry()}
}

// Trace returns the span trace (nil for a nil observer).
func (o *Observer) Trace() *Trace {
	if o == nil {
		return nil
	}
	return o.trace
}

// Metrics returns the metrics registry (nil for a nil observer).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Root returns the root span (nil for a nil observer).
func (o *Observer) Root() *Span { return o.Trace().Root() }

// AddSelfOverhead records one application's self-overhead report.
func (o *Observer) AddSelfOverhead(so *SelfOverhead) {
	if o == nil || so == nil {
		return
	}
	o.mu.Lock()
	o.overheads = append(o.overheads, so)
	o.mu.Unlock()
}

// SelfOverheads returns the recorded reports sorted by application name —
// a deterministic order regardless of which pipeline finished first.
func (o *Observer) SelfOverheads() []*SelfOverhead {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	out := append([]*SelfOverhead(nil), o.overheads...)
	o.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// Empty reports whether the observer recorded nothing: no spans, no
// metrics, no overhead reports.
func (o *Observer) Empty() bool {
	if o == nil {
		return true
	}
	o.mu.Lock()
	n := len(o.overheads)
	o.mu.Unlock()
	return n == 0 && len(o.Root().Children()) == 0 && o.metrics.Empty()
}

// Trace is a tree of spans guarded by one mutex, so spans may be created
// and annotated from concurrently executing pipeline stages.
type Trace struct {
	mu       sync.Mutex
	root     *Span
	watchers []chan struct{}
}

// Watch subscribes to trace changes: the returned channel receives a
// signal whenever a span is created or ended. Signals are coalesced — the
// channel holds at most one pending signal, so a receiver that falls
// behind sees "something changed since my last look", not every
// individual event. This is what a live progress streamer needs: wake up,
// snapshot Progress(), go back to sleep. cancel unsubscribes; it is
// idempotent. Watch on a nil trace returns a nil channel (which blocks
// forever) and a no-op cancel, so un-observed pipelines cost nothing.
func (t *Trace) Watch() (ch <-chan struct{}, cancel func()) {
	if t == nil {
		return nil, func() {}
	}
	c := make(chan struct{}, 1)
	t.mu.Lock()
	t.watchers = append(t.watchers, c)
	t.mu.Unlock()
	return c, func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		for i, w := range t.watchers {
			if w == c {
				t.watchers = append(t.watchers[:i], t.watchers[i+1:]...)
				return
			}
		}
	}
}

// notifyLocked signals every watcher without blocking; t.mu must be held.
func (t *Trace) notifyLocked() {
	for _, w := range t.watchers {
		select {
		case w <- struct{}{}:
		default: // a signal is already pending; coalesce
		}
	}
}

// NewTrace returns a trace whose root span carries the given name.
func NewTrace(name string) *Trace {
	t := &Trace{}
	t.root = &Span{t: t, name: name, cat: "trace", wallStart: time.Now()}
	return t
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Span is one node of the trace: a named piece of pipeline work with a
// virtual-time extent and a diagnostic wall-time extent.
//
// Virtual placement is decided at export time, not at creation time: the
// children of a span are laid out in (order, name) sequence, each starting
// where the previous one ended, unless a child carries an explicit virtual
// offset (SetOffset), in which case it is pinned relative to its parent's
// start and does not advance the sequential cursor. Creation order —
// which *does* vary between serial and parallel executions — never
// influences the export, which is what makes the trace byte-identical
// across worker counts. Wiring code must give siblings distinct
// (order, name) pairs.
type Span struct {
	t *Trace

	name  string
	cat   string
	order int
	row   int // 0 = inherit the parent's trace row (tid)

	vdur   simtime.Duration
	voff   simtime.Duration
	hasOff bool

	wallStart time.Time
	wall      time.Duration

	args     map[string]string
	children []*Span
}

// Child creates a child span. Order is the deterministic sort key among
// siblings; cat is the Chrome trace category. Child on a nil span returns
// nil, so an un-observed pipeline can build its whole "tree" for free.
func (s *Span) Child(order int, cat, name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, name: name, cat: cat, order: order, wallStart: time.Now()}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.notifyLocked()
	s.t.mu.Unlock()
	return c
}

// End stamps the span's wall-time duration (time since creation). Calling
// End twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.wall == 0 {
		s.wall = time.Since(s.wallStart)
		s.t.notifyLocked()
	}
	s.t.mu.Unlock()
}

// SetVirtual sets the span's virtual-time duration.
func (s *Span) SetVirtual(d simtime.Duration) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.vdur = d
	s.t.mu.Unlock()
}

// SetOffset pins the span at a virtual offset from its parent's start
// instead of the sequential layout position.
func (s *Span) SetOffset(off simtime.Duration) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.voff = off
	s.hasOff = true
	s.t.mu.Unlock()
}

// SetRow places the span (and, by inheritance, its children) on a separate
// trace row — Chrome renders each row as one tid lane. Row 0 inherits the
// parent's lane; GPU streams use rows so device work can overlap the CPU
// pipeline lane.
func (s *Span) SetRow(row int) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.row = row
	s.t.mu.Unlock()
}

// SetWall overrides the wall-time duration (used when reconstructing a
// trace from its serialized form).
func (s *Span) SetWall(d time.Duration) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.wall = d
	s.t.mu.Unlock()
}

// SetArg attaches a key/value annotation. Values are canonicalized to
// strings immediately so the export is deterministic.
func (s *Span) SetArg(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]string)
	}
	s.args[key] = formatArg(value)
	s.t.mu.Unlock()
}

func formatArg(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		return strconv.FormatBool(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case simtime.Duration:
		return x.String()
	case simtime.Time:
		return x.String()
	case time.Duration:
		return x.String()
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Wall returns the stamped wall-time duration.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.wall
}

// Children returns a copy of the child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Virtual returns the span's effective virtual duration: the explicit
// SetVirtual value if any, otherwise the extent of its laid-out children.
func (s *Span) Virtual() simtime.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.virtualLocked()
}

// virtualLocked computes the effective virtual duration with t.mu held.
func (s *Span) virtualLocked() simtime.Duration {
	var seq, pinned simtime.Duration
	for _, c := range s.children {
		cd := c.virtualLocked()
		if c.hasOff {
			if end := c.voff + cd; end > pinned {
				pinned = end
			}
		} else {
			seq += cd
		}
	}
	d := s.vdur
	if seq > d {
		d = seq
	}
	if pinned > d {
		d = pinned
	}
	return d
}

// sortedChildrenLocked returns the children in deterministic (order, name)
// sequence; t.mu must be held.
func (s *Span) sortedChildrenLocked() []*Span {
	out := append([]*Span(nil), s.children...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].order != out[j].order {
			return out[i].order < out[j].order
		}
		return out[i].name < out[j].name
	})
	return out
}
