package obs

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"diogenes/internal/simtime"
)

// buildTree constructs one logical span tree; permuted controls the creation
// order of siblings, which must never influence the export.
func buildTree(permuted bool) *Observer {
	o := New("diogenes")
	app := o.Root().Child(0, "app", "demo")
	mk := func(order int, name string, d simtime.Duration) {
		s := app.Child(order, "stage", name)
		s.SetVirtual(d)
		s.SetArg("records", order*10)
	}
	if permuted {
		mk(3, "stage3", 300)
		mk(1, "stage1", 100)
		mk(2, "stage2", 200)
	} else {
		mk(1, "stage1", 100)
		mk(2, "stage2", 200)
		mk(3, "stage3", 300)
	}
	gpu := app.Child(0, "gpu", "stream 0")
	gpu.SetRow(100)
	gpu.SetOffset(50)
	gpu.SetVirtual(400)
	app.End()
	o.AddSelfOverhead(&SelfOverhead{
		App:       "demo",
		Reference: 100,
		Stages:    []StageCost{{Name: "stage1", Raw: 100, Probe: 10}},
	})
	return o
}

// TestChromeLayoutIgnoresCreationOrder is the core determinism contract:
// the Chrome export is a pure function of (order, name) keys, virtual
// durations and offsets — never of the order spans were created in (which
// differs between serial and parallel pipeline executions) and never of
// wall time.
func TestChromeLayoutIgnoresCreationOrder(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTree(false).Trace().Chrome().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTree(true).Trace().Chrome().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("creation order changed the export:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestChromeLayoutSequentialAndPinned checks the two placement rules:
// un-pinned children are laid end to end in (order, name) sequence, and a
// pinned child sits at parent start + offset without advancing the cursor.
func TestChromeLayoutSequentialAndPinned(t *testing.T) {
	o := buildTree(false)
	f := o.Trace().Chrome()

	at := func(name string) ChromeEvent {
		evs := f.EventsNamed(name)
		if len(evs) != 1 {
			t.Fatalf("%d events named %q", len(evs), name)
		}
		return evs[0]
	}
	us := func(ns int64) float64 { return float64(ns) / 1000 }

	if ev := at("stage1"); ev.TS != 0 || ev.Dur != us(100) {
		t.Errorf("stage1 at ts=%g dur=%g", ev.TS, ev.Dur)
	}
	if ev := at("stage2"); ev.TS != us(100) || ev.Dur != us(200) {
		t.Errorf("stage2 at ts=%g dur=%g, want ts=%g", ev.TS, ev.Dur, us(100))
	}
	if ev := at("stage3"); ev.TS != us(300) {
		t.Errorf("stage3 at ts=%g, want %g", ev.TS, us(300))
	}
	gpu := at("stream 0")
	if gpu.TS != us(50) || gpu.TID != 100 {
		t.Errorf("pinned gpu span at ts=%g tid=%d, want ts=%g tid=100", gpu.TS, gpu.TID, us(50))
	}
	// The pinned child is excluded from the sequential cursor but included
	// in the parent extent: children sum 600, pinned end 450.
	if ev := at("demo"); ev.Dur != us(600) {
		t.Errorf("parent dur=%g, want %g", ev.Dur, us(600))
	}
	if ev := at("demo"); ev.Args["records"] != "" {
		t.Errorf("unexpected args on parent: %v", ev.Args)
	}
}

// TestVirtualRollup checks Virtual(): explicit duration wins over smaller
// child extents, child extents win over smaller explicit durations, and a
// pinned child's end can set the extent.
func TestVirtualRollup(t *testing.T) {
	o := New("t")
	s := o.Root().Child(0, "x", "parent")
	a := s.Child(0, "x", "a")
	a.SetVirtual(100)
	b := s.Child(1, "x", "b")
	b.SetVirtual(50)
	if got := s.Virtual(); got != 150 {
		t.Fatalf("sequential rollup = %d, want 150", got)
	}
	s.SetVirtual(1000)
	if got := s.Virtual(); got != 1000 {
		t.Fatalf("explicit duration = %d, want 1000", got)
	}
	p := s.Child(2, "x", "pinned")
	p.SetOffset(2000)
	p.SetVirtual(500)
	if got := s.Virtual(); got != 2500 {
		t.Fatalf("pinned extent = %d, want 2500", got)
	}
}

// TestNilSafety drives the whole API through nil receivers: wiring sites
// must never need conditionals.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.Trace() != nil || o.Metrics() != nil || o.Root() != nil {
		t.Fatal("nil observer handed out non-nil components")
	}
	if !o.Empty() {
		t.Fatal("nil observer not empty")
	}
	o.AddSelfOverhead(&SelfOverhead{App: "x"})
	sp := o.Root().Child(1, "c", "n")
	if sp != nil {
		t.Fatal("nil span produced a child")
	}
	sp.SetVirtual(1)
	sp.SetOffset(1)
	sp.SetRow(1)
	sp.SetArg("k", "v")
	sp.End()
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Gauge("g").SetMax(2)
	r.Histogram("h").Observe(3)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	if tr.Chrome() == nil {
		t.Fatal("nil trace Chrome() returned nil file")
	}
}

// TestHistogramBucketEdges pins the base-2 bucket geometry: v ≤ 0 lands in
// bucket 0 and bucket i holds [2^(i-1), 2^i).
func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{math.MaxInt64, HistBuckets - 1},
	}
	for _, c := range cases {
		h := &Histogram{}
		h.Observe(c.v)
		got := -1
		for i, n := range h.BucketCounts() {
			if n != 0 {
				got = i
			}
		}
		if got != c.bucket {
			t.Errorf("Observe(%d) landed in bucket %d, want %d", c.v, got, c.bucket)
		}
		if c.bucket > 0 {
			if lo, hi := BucketLow(c.bucket), BucketHigh(c.bucket); c.v < lo || c.v >= hi {
				if !(c.bucket == HistBuckets-1 && c.v >= lo) {
					t.Errorf("value %d outside its bucket bounds [%d,%d)", c.v, lo, hi)
				}
			}
		}
	}
	// Quantile upper bound: 100 observations of 3 → p50 within bucket 2.
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3 (bucket [2,4) upper edge)", q)
	}
	if h.Count() != 100 || h.Sum() != 300 || h.Mean() != 3 {
		t.Errorf("count/sum/mean = %d/%d/%g", h.Count(), h.Sum(), h.Mean())
	}
}

// TestConcurrentMetricUpdates hammers one registry from many goroutines; run
// under -race this proves the lock-free instruments and the get-or-create
// path are race-clean, and the totals prove no update was lost.
func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared/counter").Inc()
				r.Histogram("shared/hist").Observe(int64(i))
				r.Gauge("shared/peak").SetMax(float64(i))
				r.Counter(fmt.Sprintf("worker/%d", w)).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared/counter").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared/hist").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared/peak").Value(); got != perWorker-1 {
		t.Fatalf("peak gauge = %g, want %d", got, perWorker-1)
	}
	for w := 0; w < workers; w++ {
		if got := r.Counter(fmt.Sprintf("worker/%d", w)).Value(); got != perWorker {
			t.Fatalf("worker %d counter = %d", w, got)
		}
	}
}

// TestConcurrentSpanCreation creates spans from concurrent goroutines (the
// parallel pipeline does exactly this) and checks the export still lays
// them out deterministically.
func TestConcurrentSpanCreation(t *testing.T) {
	build := func() *Trace {
		o := New("t")
		parent := o.Root().Child(0, "app", "app")
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s := parent.Child(i, "stage", fmt.Sprintf("s%02d", i))
				s.SetVirtual(simtime.Duration(10 * (i + 1)))
				s.SetArg("i", i)
				s.End()
			}(i)
		}
		wg.Wait()
		return o.Trace()
	}
	var a, b bytes.Buffer
	if err := build().Chrome().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Chrome().Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("concurrent span creation changed the export")
	}
}

// TestPersistRoundTrip proves WriteJSON → ReadJSON preserves the full
// display surface: the Chrome export, the metrics dump and the overhead
// reports all survive byte-for-byte.
func TestPersistRoundTrip(t *testing.T) {
	o := buildTree(false)
	o.Metrics().Counter("cuda/syncs").Add(42)
	o.Metrics().Gauge("sched/utilization_pct").Set(87.5)
	o.Metrics().Histogram("cuda/sync_wait_ns").Observe(1500)

	var state bytes.Buffer
	if err := o.WriteJSON(&state); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(state.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var wantChrome, gotChrome bytes.Buffer
	if err := o.Trace().Chrome().Write(&wantChrome); err != nil {
		t.Fatal(err)
	}
	if err := back.Trace().Chrome().Write(&gotChrome); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantChrome.Bytes(), gotChrome.Bytes()) {
		t.Fatalf("chrome export changed across persistence:\n%s\nvs\n%s", wantChrome.String(), gotChrome.String())
	}

	var wantMet, gotMet bytes.Buffer
	if err := o.Metrics().Write(&wantMet); err != nil {
		t.Fatal(err)
	}
	if err := back.Metrics().Write(&gotMet); err != nil {
		t.Fatal(err)
	}
	if wantMet.String() != gotMet.String() {
		t.Fatalf("metrics changed across persistence:\n%s\nvs\n%s", wantMet.String(), gotMet.String())
	}

	so := back.SelfOverheads()
	if len(so) != 1 || so[0].App != "demo" || so[0].Reference != 100 {
		t.Fatalf("overheads lost: %+v", so)
	}
	if m := so[0].Multiple(); m != 1.0 {
		t.Fatalf("overhead multiple = %g, want 1.0", m)
	}

	// A second write of the reconstructed observer is byte-identical: the
	// persisted form itself is canonical.
	var state2 bytes.Buffer
	if err := back.WriteJSON(&state2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state.Bytes(), state2.Bytes()) {
		t.Fatal("persisted state is not canonical across a round trip")
	}
}

// TestReadJSONRejectsNewerFormat guards the state-file version gate.
func TestReadJSONRejectsNewerFormat(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"format": 999}`))); err == nil {
		t.Fatal("newer format accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestWriteSummaryEmpty checks the empty-observer display path.
func TestWriteSummaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New("t").WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "no self-measurement data recorded\n" {
		t.Fatalf("empty summary = %q", got)
	}
}

// TestStageNames checks the category filter used by the CI smoke assertions.
func TestStageNames(t *testing.T) {
	o := buildTree(false)
	names := o.Trace().StageNames("stage")
	want := []string{"stage1", "stage2", "stage3"}
	if len(names) != len(want) {
		t.Fatalf("StageNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("StageNames = %v, want %v", names, want)
		}
	}
}

func TestTraceWatch(t *testing.T) {
	var nilTrace *Trace
	ch, cancel := nilTrace.Watch()
	if ch != nil {
		t.Fatal("nil trace returned a live watch channel")
	}
	cancel() // must be a no-op

	tr := NewTrace("root")
	ch, cancel = tr.Watch()
	defer cancel()
	select {
	case <-ch:
		t.Fatal("signal before any change")
	default:
	}
	s := tr.Root().Child(0, "t", "work")
	select {
	case <-ch:
	default:
		t.Fatal("span creation did not signal the watcher")
	}
	// Signals coalesce: many changes while the receiver sleeps leave at
	// most one pending signal.
	for i := 0; i < 5; i++ {
		s.Child(i, "t", "sub").End()
	}
	<-ch
	select {
	case <-ch:
		t.Fatal("signals did not coalesce")
	default:
	}
	s.End()
	select {
	case <-ch:
	default:
		t.Fatal("span end did not signal the watcher")
	}
	cancel()
	cancel() // idempotent
	tr.Root().Child(1, "t", "after")
	select {
	case <-ch:
		t.Fatal("canceled watcher still signaled")
	default:
	}
}
