package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a name-addressed collection of counters, gauges and
// histograms. Get-or-create lookups take the registry mutex; updates on the
// returned instruments are lock-free atomics, so hot paths should cache the
// instrument pointer rather than re-resolving the name per event.
//
// All methods are nil-safe: a nil registry hands out nil instruments, and
// nil instruments absorb every update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Empty reports whether nothing has been registered.
func (r *Registry) Empty() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counters) == 0 && len(r.gauges) == 0 && len(r.hists) == 0
}

// Counter is a monotonically increasing atomic count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax stores v only if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (zero for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistBuckets is the fixed bucket count of every histogram.
const HistBuckets = 64

// Histogram counts int64 observations into fixed base-2 log-scale buckets:
// bucket 0 holds observations ≤ 0 and bucket i (1 ≤ i ≤ 63) holds the
// half-open range [2^(i-1), 2^i), with the top bucket absorbing everything
// from 2^62 up. Observations are typically virtual nanoseconds; the fixed
// geometry means two histograms are mergeable and comparable without any
// bucket negotiation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) int64 {
	if i <= 0 {
		return math.MinInt64
	}
	return 1 << (i - 1)
}

// BucketHigh returns the exclusive upper bound of bucket i.
func BucketHigh(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= HistBuckets-1 {
		return math.MaxInt64
	}
	return 1 << i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation, or zero with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1):
// the inclusive upper edge of the bucket where the cumulative count crosses
// q. With log-scale buckets the estimate is within 2× of the true value.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if h == nil || n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			return BucketHigh(i) - 1
		}
	}
	return BucketHigh(HistBuckets - 1)
}

// BucketCounts returns a copy of the per-bucket counts.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, HistBuckets)
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Write dumps the registry as deterministic plain text: one line per
// counter and gauge, a header plus non-empty bucket lines per histogram,
// all sorted by name.
func (r *Registry) Write(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# no metrics recorded")
		return err
	}
	snap := r.Snapshot()
	if _, err := fmt.Fprintln(w, "# diogenes metrics"); err != nil {
		return err
	}
	for _, name := range sortedKeys(snap.Counters) {
		fmt.Fprintf(w, "counter   %-34s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fmt.Fprintf(w, "gauge     %-34s %g\n", name, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		hs := snap.Histograms[name]
		fmt.Fprintf(w, "histogram %-34s count=%d sum=%d mean=%.1f p50<=%d p95<=%d p99<=%d\n",
			name, hs.Count, hs.Sum, hs.Mean(), hs.quantile(0.50), hs.quantile(0.95), hs.quantile(0.99))
		for i, n := range hs.Buckets {
			if n == 0 {
				continue
			}
			if i == 0 {
				fmt.Fprintf(w, "  bucket (-inf,1) %d\n", n)
				continue
			}
			fmt.Fprintf(w, "  bucket [%d,%d) %d\n", BucketLow(i), BucketHigh(i), n)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RegistrySnapshot is a point-in-time copy of a registry, used for
// persistence and cross-run comparison.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets"`
}

// Mean returns the snapshot's average observation.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// quantile mirrors Histogram.Quantile on the snapshot.
func (s HistogramSnapshot) quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			return BucketHigh(i) - 1
		}
	}
	return BucketHigh(HistBuckets - 1)
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *RegistrySnapshot {
	snap := &RegistrySnapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = HistogramSnapshot{Count: v.Count(), Sum: v.Sum(), Buckets: v.BucketCounts()}
	}
	return snap
}

// RegistryFromSnapshot reconstructs a registry from a snapshot (loading a
// persisted run for display).
func RegistryFromSnapshot(snap *RegistrySnapshot) *Registry {
	r := NewRegistry()
	if snap == nil {
		return r
	}
	for k, v := range snap.Counters {
		r.Counter(k).Add(v)
	}
	for k, v := range snap.Gauges {
		r.Gauge(k).Set(v)
	}
	for k, hs := range snap.Histograms {
		h := r.Histogram(k)
		h.count.Store(hs.Count)
		h.sum.Store(hs.Sum)
		for i, n := range hs.Buckets {
			if i < HistBuckets {
				h.buckets[i].Store(n)
			}
		}
	}
	return r
}
