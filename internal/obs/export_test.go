package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve/jobs_submitted").Add(3)
	r.Gauge("sched/jobqueue_depth").Set(2)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	for _, want := range []string{"serve/jobs_submitted", "3", "sched/jobqueue_depth"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("body missing %q:\n%s", want, body)
		}
	}
}

func TestRegistryHandlerNil(t *testing.T) {
	var r *Registry
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "no metrics recorded") {
		t.Fatalf("nil registry: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestTraceProgress(t *testing.T) {
	var nilTrace *Trace
	if total, ended, cur := nilTrace.Progress(); total != 0 || ended != 0 || cur != "" {
		t.Fatal("nil trace progress not zero")
	}

	tr := NewTrace("job")
	if total, _, _ := tr.Progress(); total != 0 {
		t.Fatal("fresh trace has spans")
	}
	run := tr.Root().Child(0, "pipeline", "run")
	s1 := run.Child(1, "stage", "stage1-baseline")
	s1.End()
	s2 := run.Child(2, "stage", "stage2-detailed-tracing")

	total, ended, cur := tr.Progress()
	if total != 3 || ended != 1 {
		t.Fatalf("progress = (%d, %d), want (3, 1)", total, ended)
	}
	if cur != "stage2-detailed-tracing" {
		t.Fatalf("current span = %q", cur)
	}
	s2.End()
	run.End()
	total, ended, cur = tr.Progress()
	if total != 3 || ended != 3 || cur != "" {
		t.Fatalf("after ending all: (%d, %d, %q)", total, ended, cur)
	}
}
