package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"diogenes/internal/simtime"
)

// persistVersion is the on-disk schema version of a persisted observer.
const persistVersion = 1

// observerJSON is the serialized form of an Observer — what `diogenes obs`
// reads back to pretty-print the last run.
type observerJSON struct {
	Format    int               `json:"format"`
	Spans     *spanJSON         `json:"spans,omitempty"`
	Metrics   *RegistrySnapshot `json:"metrics,omitempty"`
	Overheads []*SelfOverhead   `json:"overheads,omitempty"`
}

type spanJSON struct {
	Name     string            `json:"name"`
	Cat      string            `json:"cat,omitempty"`
	Order    int               `json:"order,omitempty"`
	Row      int               `json:"row,omitempty"`
	VDur     int64             `json:"vdur,omitempty"`
	VOff     *int64            `json:"voff,omitempty"`
	Wall     int64             `json:"wall,omitempty"`
	Args     map[string]string `json:"args,omitempty"`
	Children []*spanJSON       `json:"children,omitempty"`
}

// WriteJSON persists the observer's full state (spans, metrics snapshot,
// self-overhead reports).
func (o *Observer) WriteJSON(w io.Writer) error {
	doc := observerJSON{Format: persistVersion}
	if o != nil {
		doc.Spans = spanToJSON(o.Trace(), o.Root())
		doc.Metrics = o.Metrics().Snapshot()
		doc.Overheads = o.SelfOverheads()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

func spanToJSON(t *Trace, s *Span) *spanJSON {
	if t == nil || s == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var conv func(s *Span) *spanJSON
	conv = func(s *Span) *spanJSON {
		j := &spanJSON{
			Name:  s.name,
			Cat:   s.cat,
			Order: s.order,
			Row:   s.row,
			VDur:  int64(s.vdur),
			Wall:  int64(s.wall),
		}
		if s.hasOff {
			off := int64(s.voff)
			j.VOff = &off
		}
		if len(s.args) > 0 {
			j.Args = make(map[string]string, len(s.args))
			for k, v := range s.args {
				j.Args[k] = v
			}
		}
		// Persist children in deterministic order so the file itself is a
		// determinism artifact.
		for _, c := range s.sortedChildrenLocked() {
			j.Children = append(j.Children, conv(c))
		}
		return j
	}
	return conv(s)
}

// ReadJSON reconstructs an observer persisted by WriteJSON. The result
// supports the full display surface (WriteSummary, Chrome, Metrics) but is
// not meant to receive further live updates.
func ReadJSON(r io.Reader) (*Observer, error) {
	var doc observerJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: decoding observer state: %w", err)
	}
	if doc.Format > persistVersion {
		return nil, fmt.Errorf("obs: state format %d is newer than this tool understands (%d)", doc.Format, persistVersion)
	}
	name := "diogenes"
	if doc.Spans != nil {
		name = doc.Spans.Name
	}
	o := &Observer{trace: NewTrace(name), metrics: RegistryFromSnapshot(doc.Metrics), overheads: doc.Overheads}
	if doc.Spans != nil {
		o.trace.root.cat = doc.Spans.Cat
		applySpanJSON(o.trace.root, doc.Spans)
	}
	return o, nil
}

func applySpanJSON(s *Span, j *spanJSON) {
	s.SetVirtual(simtime.Duration(j.VDur))
	s.SetWall(time.Duration(j.Wall))
	if j.Row != 0 {
		s.SetRow(j.Row)
	}
	if j.VOff != nil {
		s.SetOffset(simtime.Duration(*j.VOff))
	}
	for _, k := range sortedKeys(j.Args) {
		s.SetArg(k, j.Args[k])
	}
	for _, cj := range j.Children {
		applySpanJSON(s.Child(cj.Order, cj.Cat, cj.Name), cj)
	}
}
