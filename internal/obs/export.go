package obs

import "net/http"

// Handler returns an http.Handler serving the registry's deterministic
// plain-text rendering — the export hook a long-lived daemon mounts at
// /metrics. A nil registry serves the "no metrics recorded" placeholder,
// so wiring is unconditional.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.Write(w)
	})
}

// Progress summarizes the trace's span activity for a live status display:
// how many spans exist, how many have ended, and the name of the most
// recently created span still open — "where the pipeline is right now".
// The root span is excluded (it only ends when the trace does). Nil-safe.
func (t *Trace) Progress() (total, ended int, current string) {
	if t == nil {
		return 0, 0, ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.children {
			total++
			if c.wall != 0 {
				ended++
			} else {
				current = c.name
			}
			walk(c)
		}
	}
	walk(t.root)
	return total, ended, current
}
