package obs

import (
	"net/http"
	"strings"
)

// Handler returns an http.Handler serving the registry — the export hook a
// long-lived daemon mounts at /metrics. The default rendering is the
// registry's deterministic plain-text dump; a request that asks for
// Prometheus exposition (?format=prom, or an Accept header naming
// text/plain the way the Prometheus scraper does) gets WriteProm instead.
// Browsers and bare curl send Accept: */* and keep the native dump. A nil
// registry serves the "no metrics recorded" placeholder, so wiring is
// unconditional.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantsProm(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.Write(w)
	})
}

// wantsProm reports whether the request opted into Prometheus exposition.
func wantsProm(req *http.Request) bool {
	if req.URL.Query().Get("format") == "prom" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "text/plain")
}

// Progress summarizes the trace's span activity for a live status display:
// how many spans exist, how many have ended, and the name of the most
// recently created span still open — "where the pipeline is right now".
// The root span is excluded (it only ends when the trace does). Nil-safe.
func (t *Trace) Progress() (total, ended int, current string) {
	if t == nil {
		return 0, 0, ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.children {
			total++
			if c.wall != 0 {
				ended++
			} else {
				current = c.name
			}
			walk(c)
		}
	}
	walk(t.root)
	return total, ended, current
}
