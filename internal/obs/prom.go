package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteProm dumps the registry in the Prometheus text exposition format
// (version 0.0.4): every counter, gauge and histogram, sorted by name, with
// names mangled to the Prometheus alphabet under a "diogenes_" prefix
// ("sched/jobqueue_depth" → "diogenes_sched_jobqueue_depth").
//
// Histograms expose the fixed base-2 log buckets as cumulative le series.
// Observations are integers, so the half-open bucket [2^(i-1), 2^i) is
// exactly the inclusive le bound 2^i−1, and bucket 0 (v ≤ 0) is le="0" —
// the translation loses nothing. Empty buckets are elided (cumulative
// counts make them redundant); the mandatory le="+Inf" series always
// closes the set.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "# no metrics recorded")
		return err
	}
	snap := r.Snapshot()
	for _, name := range sortedKeys(snap.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := promName(name)
		v := strconv.FormatFloat(snap.Gauges[name], 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, v); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		hs := snap.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, n := range hs.Buckets {
			if n == 0 {
				continue
			}
			cum += n
			le := "0"
			if i > 0 {
				le = strconv.FormatInt(BucketHigh(i)-1, 10)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, hs.Count)
		fmt.Fprintf(w, "%s_sum %d\n", pn, hs.Sum)
		if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, hs.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName mangles a registry name into the Prometheus metric alphabet
// [a-zA-Z0-9_] under the tool prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("diogenes_") + len(name))
	b.WriteString("diogenes_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
