package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"diogenes/internal/simtime"
)

// StageCost is one instrumented pipeline stage's contribution to the
// tool's self-overhead: the stage's raw (instrumented) virtual execution
// time and the share of it charged by the instrumentation itself.
type StageCost struct {
	Name string `json:"name"`
	// Raw is the stage's full instrumented virtual execution time.
	Raw simtime.Duration `json:"raw"`
	// Probe is the virtual time the stage's instrumentation charged (probe
	// trampolines, hashing, load/store snippets) — the tool-inflicted part
	// of Raw.
	Probe simtime.Duration `json:"probe"`
}

// SelfOverhead quantifies the tool's own perturbation of one application:
// each collection stage's cost against the uninstrumented reference run,
// echoing the §5.3 overhead accounting (8×–20× across the paper's
// workloads).
type SelfOverhead struct {
	App string `json:"app"`
	// Reference is the uninstrumented execution time — the honest
	// denominator.
	Reference simtime.Duration `json:"reference"`
	Stages    []StageCost      `json:"stages"`
}

// Collection returns the total virtual time of all instrumented stages.
func (o *SelfOverhead) Collection() simtime.Duration {
	var sum simtime.Duration
	for _, st := range o.Stages {
		sum += st.Raw
	}
	return sum
}

// ProbeTotal returns the total instrumentation charge across stages.
func (o *SelfOverhead) ProbeTotal() simtime.Duration {
	var sum simtime.Duration
	for _, st := range o.Stages {
		sum += st.Probe
	}
	return sum
}

// Multiple returns Collection divided by the reference time — the §5.3
// overhead multiple.
func (o *SelfOverhead) Multiple() float64 {
	if o.Reference <= 0 {
		return 0
	}
	return float64(o.Collection()) / float64(o.Reference)
}

// Write renders the report as a plain-text table.
func (o *SelfOverhead) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Self-overhead — %s (instrumented vs reference)\n", o.App); err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-28s %10.3fs\n", "reference (uninstrumented)", o.Reference.Seconds())
	for _, st := range o.Stages {
		mult := 0.0
		if o.Reference > 0 {
			mult = float64(st.Raw) / float64(o.Reference)
		}
		share := 0.0
		if st.Raw > 0 {
			share = 100 * float64(st.Probe) / float64(st.Raw)
		}
		fmt.Fprintf(w, "  %-28s %10.3fs  %5.2fx ref  probes %8.3fs (%4.1f%% of stage)\n",
			st.Name, st.Raw.Seconds(), mult, st.Probe.Seconds(), share)
	}
	probeShare := 0.0
	if c := o.Collection(); c > 0 {
		probeShare = 100 * float64(o.ProbeTotal()) / float64(c)
	}
	fmt.Fprintf(w, "  %-28s %10.3fs  %5.2fx ref  probes %8.3fs (%4.1f%% of collection)\n",
		"total collection", o.Collection().Seconds(), o.Multiple(),
		o.ProbeTotal().Seconds(), probeShare)
	return nil
}

// WriteSummary renders everything the observer captured as plain text:
// the span tree with virtual and wall attribution, the per-application
// self-overhead reports, and the metrics registry.
func (o *Observer) WriteSummary(w io.Writer) error {
	if o == nil || o.Empty() {
		_, err := fmt.Fprintln(w, "no self-measurement data recorded")
		return err
	}
	if _, err := fmt.Fprintln(w, "== pipeline spans =="); err != nil {
		return err
	}
	if err := o.Trace().WriteTree(w); err != nil {
		return err
	}
	for _, so := range o.SelfOverheads() {
		fmt.Fprintln(w)
		if err := so.Write(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	if _, err := fmt.Fprintln(w, "== metrics =="); err != nil {
		return err
	}
	return o.Metrics().Write(w)
}

// WriteTree renders the span tree as indented text, children in the same
// deterministic (order, name) sequence the Chrome export uses. Wall times
// are included — the tree is a human display, not a determinism artifact.
func (t *Trace) WriteTree(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "(no spans)")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		indent := strings.Repeat("  ", depth)
		line := fmt.Sprintf("%s%s [%s] virtual=%s", indent, s.name, s.cat, s.virtualLocked())
		if s.wall > 0 {
			line += fmt.Sprintf(" wall=%s", s.wall)
		}
		if len(s.args) > 0 {
			keys := sortedKeys(s.args)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = k + "=" + s.args[k]
			}
			line += " {" + strings.Join(parts, " ") + "}"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range s.sortedChildrenLocked() {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0)
}

// StageNames returns the distinct span names in the given category, in
// deterministic tree order — convenience for asserting a trace covers all
// pipeline stages.
func (t *Trace) StageNames(cat string) []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[string]bool)
	var names []string
	var walk func(s *Span)
	walk = func(s *Span) {
		if s.cat == cat && !seen[s.name] {
			seen[s.name] = true
			names = append(names, s.name)
		}
		for _, c := range s.sortedChildrenLocked() {
			walk(c)
		}
	}
	walk(t.root)
	sort.Strings(names)
	return names
}
