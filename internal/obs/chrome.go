package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"diogenes/internal/simtime"
)

// ChromeEvent is one Chrome trace_event record (the "X" complete-event
// form), loadable in Perfetto or chrome://tracing.
type ChromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`  // microseconds
	Dur   float64           `json:"dur"` // microseconds
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// ChromeFile is the top-level trace_event container.
type ChromeFile struct {
	TraceEvents []ChromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"otherData,omitempty"`
}

const chromePID = 1

func chromeUS(d simtime.Duration) float64 {
	return float64(d) / float64(simtime.Microsecond)
}

// Chrome lays the span tree out on the virtual timeline and renders it as
// a trace_event file. The layout is purely a function of the tree's
// deterministic content — (order, name) sort keys, virtual durations and
// explicit offsets — never of span creation order or wall time, so serial
// and parallel executions of the same pipeline serialize to identical
// bytes.
func (t *Trace) Chrome() *ChromeFile {
	f := &ChromeFile{Metadata: map[string]string{
		"tool":   "diogenes",
		"format": "chrome-trace-events",
		"layer":  "obs",
	}}
	if t == nil {
		return f
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f.Metadata["trace"] = t.root.name

	var walk func(s *Span, start simtime.Duration, row int)
	walk = func(s *Span, start simtime.Duration, row int) {
		if s.row != 0 {
			row = s.row
		}
		ev := ChromeEvent{
			Name: s.name, Cat: s.cat, Phase: "X",
			TS: chromeUS(start), Dur: chromeUS(s.virtualLocked()),
			PID: chromePID, TID: row,
		}
		if len(s.args) > 0 {
			ev.Args = make(map[string]string, len(s.args))
			for k, v := range s.args {
				ev.Args[k] = v // encoding/json sorts map keys
			}
		}
		f.TraceEvents = append(f.TraceEvents, ev)
		cursor := start
		for _, c := range s.sortedChildrenLocked() {
			cs := cursor
			if c.hasOff {
				cs = start + c.voff
			} else {
				cursor = cs + c.virtualLocked()
			}
			walk(c, cs, row)
		}
	}
	walk(t.root, 0, 0)
	return f
}

// Write serializes the file as JSON.
func (f *ChromeFile) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(f)
}

// ReadChrome parses a trace_event file written by Write.
func ReadChrome(r io.Reader) (*ChromeFile, error) {
	var f ChromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: decoding chrome trace: %w", err)
	}
	return &f, nil
}

// EventsNamed returns the events whose name matches exactly.
func (f *ChromeFile) EventsNamed(name string) []ChromeEvent {
	var out []ChromeEvent
	for _, e := range f.TraceEvents {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}
