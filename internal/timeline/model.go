package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// Model is the stable intermediate timeline: lanes, events, links and
// overlays as plain deterministic structs, constructed once from a
// pipeline's artifacts and rendered by every consumer — the Chrome
// exporter, the text report's timing sections, and the served web view all
// read this one shape. All times are virtual nanoseconds (simtime), so the
// encoding carries no floats except where a renderer chooses them.
//
// Determinism contract: a Model built from identical pipeline inputs
// serializes to identical bytes regardless of worker count — no maps, no
// pointers, no wall-clock values. Builders never stamp the tool version;
// exporters that want a self-describing file set Meta.Version themselves,
// keeping committed model goldens toolchain-independent.
type Model struct {
	// Kind is the producing job kind: "run", "replay" or "fleet".
	Kind string `json:"kind"`
	Meta Meta   `json:"meta"`
	// Reference is the uninstrumented execution time — the §5.3
	// denominator under the probe-overhead overlays. Zero for fleet
	// models (per-rank references live on the rank lanes).
	Reference simtime.Duration `json:"reference,omitempty"`
	Lanes     []Lane           `json:"lanes"`
	Events    []Event          `json:"events"`
	// Overlays carry the §5.3 per-stage collection-cost ledger.
	Overlays []Overlay `json:"overlays,omitempty"`
	// Links connect duplicate transfers to their first occurrence.
	Links []DupLink `json:"links,omitempty"`
	// Ribbons connect straggler ranks to the barriers that charged them.
	Ribbons []SkewRibbon `json:"ribbons,omitempty"`
}

// Meta identifies what was measured. Version is set only by exporters
// (CLI, daemon), never by builders — see the Model determinism contract.
type Meta struct {
	App string `json:"app,omitempty"`
	// Family and Seed are filled when the app name matches a registered
	// generative workload family ("ml-train-7" → "ml-train", 7).
	Family string `json:"family,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Rank and Ranks are filled for per-rank captures ("amg@rank1/4")
	// and fleet models. Rank is meaningful only when Ranks > 0.
	Rank    int    `json:"rank,omitempty"`
	Ranks   int    `json:"ranks,omitempty"`
	Version string `json:"version,omitempty"`
}

// Lane kinds.
const (
	LaneCPU     = "cpu"     // the CPU thread's driver calls
	LaneGPU     = "gpu"     // one GPU stream
	LaneRank    = "rank"    // one rank of a fleet launch
	LaneBarrier = "barrier" // the fleet's collective lane
)

// Lane is one horizontal row of the timeline. Row is the stable display
// ordinal (and the Chrome tid). Fleet rank lanes carry the rank's summary
// so the web view can annotate rows without a second document.
type Lane struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Label  string `json:"label"`
	Row    int    `json:"row"`
	Stream int    `json:"stream,omitempty"`
	Rank   int    `json:"rank,omitempty"`

	// Fleet rank summary (zero elsewhere).
	Failed    bool             `json:"failed,omitempty"`
	Exec      simtime.Duration `json:"exec,omitempty"`
	Benefit   simtime.Duration `json:"benefit,omitempty"`
	Problems  int              `json:"problems,omitempty"`
	Waited    simtime.Duration `json:"waited,omitempty"`
	Charged   simtime.Duration `json:"charged,omitempty"`
	Straggles int              `json:"straggles,omitempty"`
}

// Event is one timeline slice, attributed to a lane by ID. CPU driver
// calls fold their trailing blocked portion into Wait; renderers expand it
// (the Chrome exporter emits a nested "wait" slice, the web view shades the
// tail). GPU events on a never-completing kernel carry Open with Dur 0.
type Event struct {
	Lane  string           `json:"lane"`
	Name  string           `json:"name"`
	Cat   string           `json:"cat"`
	Start simtime.Time     `json:"start"`
	Dur   simtime.Duration `json:"dur"`

	// CPU driver-call detail.
	Seq       int64            `json:"seq,omitempty"`
	Class     string           `json:"class,omitempty"`
	Scope     string           `json:"scope,omitempty"`
	Wait      simtime.Duration `json:"wait,omitempty"`
	Duplicate bool             `json:"duplicate,omitempty"`
	Protected bool             `json:"protected,omitempty"`
	FirstUse  simtime.Duration `json:"firstUse,omitempty"`

	// GPU operation detail.
	Bytes  int  `json:"bytes,omitempty"`
	Stream int  `json:"stream,omitempty"`
	Open   bool `json:"open,omitempty"`
}

// Overlay is one stage of the §5.3 collection-cost ledger: the stage's run
// time and the share its probes consumed. Label is the terminal report's
// short name, Detail the Markdown table's long one.
type Overlay struct {
	ID     string           `json:"id"`
	Label  string           `json:"label"`
	Detail string           `json:"detail"`
	Time   simtime.Duration `json:"time"`
	Probe  simtime.Duration `json:"probe"`
}

// Collection is the total collection cost across the overlays — the same
// figure as ffm.Report.CollectionCost, recomputed from the model so
// renderers need only the model.
func (m *Model) Collection() simtime.Duration {
	var total simtime.Duration
	for _, o := range m.Overlays {
		total += o.Time
	}
	return total
}

// OverheadMultiple is Collection divided by Reference — §5.3's 8×–20×
// figure, recomputed from the model.
func (m *Model) OverheadMultiple() float64 {
	if m.Reference <= 0 {
		return 0
	}
	return float64(m.Collection()) / float64(m.Reference)
}

// DupLink connects a duplicate transfer record to the first occurrence of
// its payload (both by trace sequence number).
type DupLink struct {
	FromSeq int64  `json:"fromSeq"`
	ToSeq   int64  `json:"toSeq"`
	Func    string `json:"func"`
	Bytes   int    `json:"bytes"`
}

// SkewRibbon links a straggler finding to one barrier that charged it: the
// rank arrived last at barrier Index, and the other ranks together waited
// Wait. Barrier names the barrier-lane event; Rank names the rank lane.
type SkewRibbon struct {
	Rank    int              `json:"rank"`
	Barrier int              `json:"barrier"`
	Arrive  simtime.Time     `json:"arrive"`
	Latency simtime.Duration `json:"latency"`
	Wait    simtime.Duration `json:"wait"`
	// RankWaits is each rank's wait at this barrier, indexed by rank.
	RankWaits []simtime.Duration `json:"rankWaits"`
}

// FromTrace builds the core model from an annotated run and the device
// operation log; either may be nil. Lanes are the CPU driver row plus one
// row per GPU stream; events preserve record order then device-log order,
// which is what every renderer (and the Chrome exporter's byte-identity)
// relies on.
func FromTrace(run *trace.Run, ops []*gpu.Op) *Model {
	m := &Model{Kind: "run"}
	if run != nil {
		m.Meta = metaForApp(run.App)
		m.Lanes = append(m.Lanes, Lane{ID: "cpu", Kind: LaneCPU, Label: "CPU driver calls", Row: tidCPU})
		for i := range run.Records {
			rec := &run.Records[i]
			m.Events = append(m.Events, Event{
				Lane:      "cpu",
				Name:      rec.Func,
				Cat:       "driver",
				Start:     rec.Entry,
				Dur:       rec.Duration(),
				Seq:       rec.Seq,
				Class:     string(rec.Class),
				Scope:     rec.Scope,
				Wait:      rec.SyncWait,
				Duplicate: rec.Duplicate,
				Protected: rec.ProtectedAccess,
				FirstUse:  rec.FirstUse,
			})
			if rec.Duplicate {
				m.Links = append(m.Links, DupLink{
					FromSeq: rec.Seq, ToSeq: rec.FirstSeq, Func: rec.Func, Bytes: rec.Bytes,
				})
			}
		}
	}
	streams := map[gpu.StreamID]bool{}
	for _, op := range ops {
		streams[op.Stream] = true
	}
	ids := make([]int, 0, len(streams))
	for s := range streams {
		ids = append(ids, int(s))
	}
	sort.Ints(ids)
	for _, s := range ids {
		m.Lanes = append(m.Lanes, Lane{
			ID:     laneForStream(s),
			Kind:   LaneGPU,
			Label:  fmt.Sprintf("GPU stream %d", s),
			Row:    streamBase + s,
			Stream: s,
		})
	}
	for _, op := range ops {
		e := Event{
			Lane:   laneForStream(int(op.Stream)),
			Name:   op.Name,
			Cat:    op.Kind.String(),
			Start:  op.Start,
			Bytes:  op.Bytes,
			Stream: int(op.Stream),
		}
		if op.End == simtime.Infinity {
			e.Open = true // renders as a zero-length marker
		} else {
			e.Dur = op.End.Sub(op.Start)
		}
		m.Events = append(m.Events, e)
	}
	return m
}

// FromReport builds the model for one pipeline report: the trace-derived
// lanes and events plus the §5.3 stage-cost overlays and the reference
// time. kind distinguishes a first-hand run from a replay.
func FromReport(kind string, rep *ffm.Report) *Model {
	m := FromTrace(rep.Trace, rep.DeviceOps)
	m.Kind = kind
	if m.Meta.App == "" {
		m.Meta = metaForApp(rep.App)
	}
	m.Reference = rep.UninstrumentedTime
	m.Overlays = []Overlay{
		{ID: "stage1", Label: "baseline", Detail: "baseline", Time: rep.Stage1Time, Probe: rep.Stage1Overhead},
		{ID: "stage2", Label: "tracing", Detail: "detailed tracing", Time: rep.Stage2Time, Probe: rep.Stage2Overhead},
		{ID: "stage3", Label: "memory/hash", Detail: "memory tracing + hashing", Time: rep.Stage3Time, Probe: rep.Stage3Overhead},
		{ID: "stage4", Label: "sync-use", Detail: "sync-use analysis", Time: rep.Stage4Time, Probe: rep.Stage4Overhead},
	}
	return m
}

// FromFleet builds the cross-rank model for a fleet report: one lane per
// rank carrying its summary, a barrier lane with one event per skewed
// collective, and a skew ribbon linking each straggler finding to the
// barrier that charged it.
func FromFleet(fr *ffm.FleetReport) *Model {
	m := &Model{Kind: "fleet", Meta: metaForApp(fr.App)}
	m.Meta.Ranks = fr.Ranks
	skewFor := func(rank int) (ffm.FleetSkewRank, bool) {
		if fr.Skew == nil || rank >= len(fr.Skew.PerRank) {
			return ffm.FleetSkewRank{}, false
		}
		return fr.Skew.PerRank[rank], true
	}
	for _, o := range fr.PerRank {
		lane := Lane{
			ID:       laneForRank(o.Rank),
			Kind:     LaneRank,
			Label:    fmt.Sprintf("rank %d", o.Rank),
			Row:      o.Rank,
			Rank:     o.Rank,
			Failed:   o.Failed(),
			Exec:     o.ExecTime,
			Benefit:  o.TotalBenefit,
			Problems: o.Problems,
		}
		if sk, ok := skewFor(o.Rank); ok {
			lane.Waited, lane.Charged, lane.Straggles = sk.Waited, sk.Charged, sk.Straggles
		}
		m.Lanes = append(m.Lanes, lane)
		if !o.Failed() {
			m.Events = append(m.Events, Event{
				Lane:  laneForRank(o.Rank),
				Name:  fmt.Sprintf("rank %d", o.Rank),
				Cat:   "exec",
				Start: 0,
				Dur:   o.ExecTime,
			})
		}
	}
	if fr.Skew != nil && len(fr.Skew.Barriers) > 0 {
		m.Lanes = append(m.Lanes, Lane{
			ID: "barriers", Kind: LaneBarrier, Label: "collectives", Row: fr.Ranks,
		})
		for _, b := range fr.Skew.Barriers {
			m.Events = append(m.Events, Event{
				Lane:  "barriers",
				Name:  fmt.Sprintf("barrier %d", b.Index),
				Cat:   "barrier",
				Start: b.Arrive,
				Dur:   b.Latency,
			})
			m.Ribbons = append(m.Ribbons, SkewRibbon{
				Rank:      b.Straggler,
				Barrier:   b.Index,
				Arrive:    b.Arrive,
				Latency:   b.Latency,
				Wait:      b.Wait,
				RankWaits: b.RankWaits,
			})
		}
	}
	return m
}

func laneForStream(s int) string { return "stream-" + strconv.Itoa(s) }
func laneForRank(r int) string   { return "rank-" + strconv.Itoa(r) }

// metaForApp derives identity metadata from an application name: the
// "@rankR/N" suffix of a per-rank capture, and the "-<seed>" suffix of a
// registered generative family.
func metaForApp(app string) Meta {
	m := Meta{App: app}
	base := app
	if at := strings.LastIndex(base, "@rank"); at >= 0 {
		spec := base[at+len("@rank"):]
		if slash := strings.IndexByte(spec, '/'); slash > 0 {
			rank, err1 := strconv.Atoi(spec[:slash])
			ranks, err2 := strconv.Atoi(spec[slash+1:])
			if err1 == nil && err2 == nil && ranks > 0 {
				m.Rank, m.Ranks = rank, ranks
				base = base[:at]
			}
		}
	}
	for _, fam := range apps.Families() {
		prefix := fam.Name + "-"
		if !strings.HasPrefix(base, prefix) {
			continue
		}
		if seed, err := strconv.ParseInt(base[len(prefix):], 10, 64); err == nil {
			m.Family, m.Seed = fam.Name, seed
			break
		}
	}
	return m
}

// WriteJSON serializes the model deterministically (indented, sorted-free:
// the document contains no maps).
func (m *Model) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadModel parses a model written by WriteJSON.
func ReadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("timeline: decoding model: %w", err)
	}
	return &m, nil
}
