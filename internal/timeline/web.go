package timeline

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"strings"
)

// viewHTML is the self-contained explorer page: vanilla HTML/CSS/JS with
// zero external requests, so a saved copy works as well as a served one.
//
//go:embed assets/view.html
var viewHTML string

// WriteHTML renders the model as the timeline explorer page with the
// model document inlined. The JSON encoder's HTML escaping (the default)
// guarantees no literal "</script>" can appear inside the embedded
// document, so the page needs no runtime fetch and no sanitizer.
func (m *Model) WriteHTML(w io.Writer) error {
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(m); err != nil {
		return err
	}
	title := m.Meta.App
	if title == "" {
		title = m.Kind
	}
	page := strings.NewReplacer(
		"__TITLE__", html.EscapeString(title),
		"__MODEL_JSON__", strings.TrimSpace(buf.String()),
	).Replace(viewHTML)
	if strings.Contains(page, "__MODEL_JSON__") {
		return fmt.Errorf("timeline: view template lost its model placeholder")
	}
	_, err := io.WriteString(w, page)
	return err
}
