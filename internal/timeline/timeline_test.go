package timeline

import (
	"bytes"
	"strings"
	"testing"

	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

func sample() (*trace.Run, []*gpu.Op) {
	run := &trace.Run{
		App: "x",
		Records: []trace.Record{
			{
				Seq: 1, Func: "cudaFree", Class: trace.ClassSync,
				Entry: simtime.Time(100 * simtime.Microsecond), Exit: simtime.Time(400 * simtime.Microsecond),
				SyncWait: 200 * simtime.Microsecond, Scope: "implicit",
			},
			{
				Seq: 2, Func: "cudaMemcpy", Class: trace.ClassTransfer,
				Entry: simtime.Time(500 * simtime.Microsecond), Exit: simtime.Time(700 * simtime.Microsecond),
				Duplicate: true,
			},
		},
	}
	ops := []*gpu.Op{
		{Kind: gpu.OpKernel, Name: "k", Stream: 0,
			Start: simtime.Time(50 * simtime.Microsecond), End: simtime.Time(350 * simtime.Microsecond)},
		{Kind: gpu.OpCopyH2D, Name: "memcpy HtoD", Stream: 2, Bytes: 4096,
			Start: simtime.Time(550 * simtime.Microsecond), End: simtime.Time(650 * simtime.Microsecond)},
	}
	return run, ops
}

func TestBuildRows(t *testing.T) {
	run, ops := sample()
	f := Build(run, ops)
	// CPU call events (2) + wait slice (1) + GPU ops (2).
	if len(f.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(f.TraceEvents))
	}
	if f.RowCount() != 3 { // CPU + stream 0 + stream 2
		t.Fatalf("rows = %d, want 3", f.RowCount())
	}
	start, end := f.Span()
	if start != 50 || end != 700 {
		t.Fatalf("span = [%v, %v], want [50, 700]", start, end)
	}
}

func TestWaitSlicePlacement(t *testing.T) {
	run, _ := sample()
	f := Build(run, nil)
	var wait *ChromeEvent
	for i := range f.TraceEvents {
		if f.TraceEvents[i].Name == "wait" {
			wait = &f.TraceEvents[i]
		}
	}
	if wait == nil {
		t.Fatal("no wait slice")
	}
	// Wait ends exactly at the call's exit (400us), lasting 200us.
	if wait.TS != 200 || wait.Dur != 200 {
		t.Fatalf("wait = ts %v dur %v, want ts 200 dur 200", wait.TS, wait.Dur)
	}
	if wait.Args["for"] != "cudaFree" {
		t.Fatalf("wait attribution = %v", wait.Args["for"])
	}
}

func TestAnnotationsCarried(t *testing.T) {
	run, _ := sample()
	f := Build(run, nil)
	found := false
	for _, e := range f.TraceEvents {
		if e.Name == "cudaMemcpy" {
			if e.Args["duplicate"] != true {
				t.Fatalf("duplicate flag lost: %v", e.Args)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("memcpy event missing")
	}
}

func TestInfiniteKernelRendersAsMarker(t *testing.T) {
	ops := []*gpu.Op{{
		Kind: gpu.OpKernel, Name: "spin", Stream: 0,
		Start: simtime.Time(10 * simtime.Microsecond), End: simtime.Infinity,
	}}
	f := Build(nil, ops)
	if len(f.TraceEvents) != 1 || f.TraceEvents[0].Dur != 0 {
		t.Fatalf("infinite kernel = %+v", f.TraceEvents)
	}
}

func TestRoundTrip(t *testing.T) {
	run, ops := sample()
	f := Build(run, ops)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatal("missing traceEvents key")
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.TraceEvents) != len(f.TraceEvents) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.TraceEvents), len(f.TraceEvents))
	}
	if got.Metadata["app"] != "x" {
		t.Fatal("metadata lost")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEmptyFile(t *testing.T) {
	f := Build(nil, nil)
	if f.RowCount() != 0 {
		t.Fatal("empty build has rows")
	}
	s, e := f.Span()
	if s != 0 || e != 0 {
		t.Fatal("empty span nonzero")
	}
}
