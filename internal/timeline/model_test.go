package timeline_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"diogenes/internal/apps"
	"diogenes/internal/cuda"
	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/mpi"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
	"diogenes/internal/timeline"
	"diogenes/internal/trace"
)

// updateModelGolden rewrites the committed model goldens from the current
// serial pipeline output: go test ./internal/timeline -run Golden -update
var updateModelGolden = flag.Bool("update", false, "rewrite timeline model golden files")

const modelScale = 0.05

// modelJSON serializes a model the way every renderer receives it.
func modelJSON(t *testing.T, m *timeline.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateModelGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from the golden (%d bytes, want %d) — the model is consumed by three renderers; if the change is intended rerun with -update", name, len(got), len(want))
	}
}

// TestModelDeterministicAcrossWorkers pins the tentpole invariant: the
// timeline model is a pure function of the run, so any engine worker count
// serializes it to identical bytes, and those bytes match the committed
// golden.
func TestModelDeterministicAcrossWorkers(t *testing.T) {
	var base []byte
	for _, workers := range []int{1, 4, 8} {
		eng := experiments.NewEngine(workers)
		rep, err := eng.RunApp("rodinia_gaussian", modelScale)
		if err != nil {
			t.Fatal(err)
		}
		got := modelJSON(t, timeline.FromReport("run", rep))
		if base == nil {
			base = got
			continue
		}
		if !bytes.Equal(base, got) {
			t.Fatalf("-parallel %d model differs from serial (%d bytes vs %d)", workers, len(got), len(base))
		}
	}
	checkGolden(t, "model_run.golden.json", base)
}

// dupLinks collects a model's duplicate-transfer links in a comparable
// order.
func dupLinks(m *timeline.Model) []timeline.DupLink {
	links := append([]timeline.DupLink(nil), m.Links...)
	sort.Slice(links, func(i, j int) bool { return links[i].ToSeq < links[j].ToSeq })
	return links
}

// TestModelReplayDeterminism covers the replay path: replaying a captured
// trace is itself deterministic (same model bytes every time, at any
// worker count), and the replayed model preserves the structure the
// explorer links — the CPU record stream and the duplicate-transfer graph
// — even though collection-stage timings legitimately differ between a
// live run and its replay.
func TestModelReplayDeterminism(t *testing.T) {
	eng := experiments.NewEngine(1)
	orig, err := eng.RunApp("rodinia_gaussian", modelScale)
	if err != nil {
		t.Fatal(err)
	}

	var capture bytes.Buffer
	if err := orig.Trace.WriteJSON(&capture); err != nil {
		t.Fatal(err)
	}
	replay := func(workers int) *timeline.Model {
		run, err := trace.ReadJSON(bytes.NewReader(capture.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		cfg := ffm.DefaultConfig()
		cfg.Workers = workers
		if f, ok := apps.FactoryFor(run.App); ok {
			cfg.Factory = f
		}
		rep, err := ffm.Run(apps.NewReplayApp(run), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return timeline.FromReport("replay", rep)
	}

	first := modelJSON(t, replay(1))
	for _, workers := range []int{1, 4} {
		if got := modelJSON(t, replay(workers)); !bytes.Equal(first, got) {
			t.Fatalf("replay model not deterministic at %d workers", workers)
		}
	}

	om, rm := timeline.FromReport("run", orig), replay(1)
	var origCPU, replCPU int
	for _, e := range om.Events {
		if e.Lane == "cpu" {
			origCPU++
		}
	}
	for _, e := range rm.Events {
		if e.Lane == "cpu" {
			replCPU++
		}
	}
	if origCPU == 0 || origCPU != replCPU {
		t.Fatalf("replay lost CPU records: %d vs original %d", replCPU, origCPU)
	}
	ol, rl := dupLinks(om), dupLinks(rm)
	if len(ol) == 0 {
		t.Fatal("original model has no duplicate links to check")
	}
	if len(ol) != len(rl) {
		t.Fatalf("replay duplicate links: %d, want %d", len(rl), len(ol))
	}
	for i := range ol {
		if ol[i] != rl[i] {
			t.Fatalf("duplicate link %d differs: %+v vs %+v", i, rl[i], ol[i])
		}
	}
}

// rampRanks is a bulk-synchronous program whose per-step kernel grows with
// the rank, so the highest rank straggles at every barrier — the fleet
// golden needs real skew ribbons.
type rampRanks struct{ steps int }

func (s *rampRanks) Name() string { return "ramp-ranks" }
func (s *rampRanks) Steps() int   { return s.steps }

func (s *rampRanks) Setup(p *proc.Process, rank int) (mpi.RankState, error) { return nil, nil }

func (s *rampRanks) Step(p *proc.Process, rank int, st mpi.RankState, step int) error {
	var err error
	p.In("superstep", "ramp.c", 10, func() {
		if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
			Name:     "sweep",
			Duration: simtime.Duration(1+rank) * simtime.Millisecond,
			Stream:   gpu.LegacyStream,
		}); e != nil {
			err = e
			return
		}
		p.Ctx.DeviceSynchronize()
		p.CPUWork(100 * simtime.Microsecond)
	})
	return err
}

// TestModelFleetGolden pins the fleet model — rank lanes, the barrier
// lane, and the skew ribbons that tie each straggler to the barriers that
// charged it — to a committed golden, byte-identical at any worker count.
func TestModelFleetGolden(t *testing.T) {
	build := func(workers int) *timeline.Model {
		eng := experiments.NewEngine(workers)
		fr, err := eng.FleetOver("ramp-ranks", func(int) mpi.RankProgram { return &rampRanks{steps: 3} }, mpi.Config{
			Ranks:          3,
			BarrierLatency: 25 * simtime.Microsecond,
			Factory:        proc.DefaultFactory(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return timeline.FromFleet(fr)
	}
	m := build(1)
	if got := modelJSON(t, build(4)); !bytes.Equal(modelJSON(t, m), got) {
		t.Fatal("fleet model differs across worker counts")
	}

	if len(m.Ribbons) == 0 {
		t.Fatal("imbalanced fleet produced no skew ribbons")
	}
	for _, r := range m.Ribbons {
		if r.Rank != 2 {
			t.Fatalf("ribbon charged to rank %d, want straggler rank 2: %+v", r.Rank, r)
		}
		if r.Wait <= 0 || len(r.RankWaits) != 3 {
			t.Fatalf("degenerate ribbon: %+v", r)
		}
	}
	var rankLanes, barrierLanes int
	for _, l := range m.Lanes {
		switch l.Kind {
		case timeline.LaneRank:
			rankLanes++
			if l.Rank == 2 && l.Straggles == 0 {
				t.Fatal("straggler lane carries no straggle count")
			}
		case timeline.LaneBarrier:
			barrierLanes++
		}
	}
	if rankLanes != 3 || barrierLanes != 1 {
		t.Fatalf("fleet lanes: %d rank, %d barrier", rankLanes, barrierLanes)
	}
	checkGolden(t, "model_fleet.golden.json", modelJSON(t, m))
}

// TestChromeFromModelMatchesBuild pins the refactor seam: the legacy
// Build() entry point and the model's Chrome renderer are the same bytes,
// and the report-derived model (which adds overlays) renders the identical
// trace — overlays must never leak into the Chrome export.
func TestChromeFromModelMatchesBuild(t *testing.T) {
	eng := experiments.NewEngine(1)
	rep, err := eng.RunApp("cuibm", modelScale)
	if err != nil {
		t.Fatal(err)
	}
	var legacy, viaModel, viaReport bytes.Buffer
	if err := timeline.Build(rep.Trace, rep.DeviceOps).Write(&legacy); err != nil {
		t.Fatal(err)
	}
	if err := timeline.FromTrace(rep.Trace, rep.DeviceOps).Chrome().Write(&viaModel); err != nil {
		t.Fatal(err)
	}
	if err := timeline.FromReport("run", rep).Chrome().Write(&viaReport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), viaModel.Bytes()) {
		t.Fatal("FromTrace().Chrome() diverged from Build()")
	}
	if !bytes.Equal(legacy.Bytes(), viaReport.Bytes()) {
		t.Fatal("FromReport().Chrome() diverged from Build() — overlays leaked into the Chrome export")
	}
}
