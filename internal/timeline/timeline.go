// Package timeline exports the simulated execution as a Chrome trace-event
// file (the chrome://tracing / Perfetto JSON format), with one row for the
// CPU thread's driver calls — wait portions marked — and one row per GPU
// stream. The paper stores Diogenes data in JSON "allowing other tools the
// ability to access data collected by Diogenes" (§4); a standard timeline
// format is the natural visualization companion.
package timeline

import (
	"encoding/json"
	"fmt"
	"io"

	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// Event is one Chrome trace event (the "X" complete-event form).
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// File is the top-level trace-event container.
type File struct {
	TraceEvents []Event           `json:"traceEvents"`
	Metadata    map[string]string `json:"otherData,omitempty"`
}

const (
	pidProcess = 1
	tidCPU     = 0
	// GPU stream rows start here; stream N renders as tid streamBase+N.
	streamBase = 100
)

func us(t simtime.Time) float64        { return float64(t) / float64(simtime.Microsecond) }
func usDur(d simtime.Duration) float64 { return float64(d) / float64(simtime.Microsecond) }

// Build assembles a trace file from an annotated run (CPU rows) and the
// device operation log (GPU rows). Either may be nil.
func Build(run *trace.Run, ops []*gpu.Op) *File {
	f := &File{Metadata: map[string]string{
		"tool":   "diogenes",
		"format": "chrome-trace-events",
	}}
	if run != nil {
		f.Metadata["app"] = run.App
		for i := range run.Records {
			rec := &run.Records[i]
			args := map[string]any{
				"class": string(rec.Class),
				"scope": rec.Scope,
			}
			if rec.Duplicate {
				args["duplicate"] = true
			}
			if rec.ProtectedAccess {
				args["firstUse_us"] = usDur(rec.FirstUse)
			}
			f.TraceEvents = append(f.TraceEvents, Event{
				Name: rec.Func, Cat: "driver", Phase: "X",
				TS: us(rec.Entry), Dur: usDur(rec.Duration()),
				PID: pidProcess, TID: tidCPU, Args: args,
			})
			if rec.SyncWait > 0 {
				// Render the wait portion as a nested slice at the end of
				// the call, where the block happens.
				waitStart := rec.Exit.Add(-rec.SyncWait)
				f.TraceEvents = append(f.TraceEvents, Event{
					Name: "wait", Cat: "sync", Phase: "X",
					TS: us(waitStart), Dur: usDur(rec.SyncWait),
					PID: pidProcess, TID: tidCPU,
					Args: map[string]any{"for": rec.Func},
				})
			}
		}
	}
	for _, op := range ops {
		end := op.End
		if end == simtime.Infinity {
			end = op.Start // open-ended kernels render as zero-length markers
		}
		f.TraceEvents = append(f.TraceEvents, Event{
			Name: op.Name, Cat: op.Kind.String(), Phase: "X",
			TS: us(op.Start), Dur: us(end) - us(op.Start),
			PID: pidProcess, TID: streamBase + int(op.Stream),
			Args: map[string]any{"bytes": op.Bytes, "stream": int(op.Stream)},
		})
	}
	return f
}

// Write serializes the file as JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Read parses a trace file written by Write.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("timeline: decoding: %w", err)
	}
	return &f, nil
}

// Span returns the time range covered by the events, in microseconds.
func (f *File) Span() (start, end float64) {
	first := true
	for _, e := range f.TraceEvents {
		if first || e.TS < start {
			start = e.TS
		}
		if first || e.TS+e.Dur > end {
			end = e.TS + e.Dur
		}
		first = false
	}
	return start, end
}

// RowCount returns the number of distinct rows (tids) in the file.
func (f *File) RowCount() int {
	rows := map[int]bool{}
	for _, e := range f.TraceEvents {
		rows[e.TID] = true
	}
	return len(rows)
}
