// Package timeline holds the stable intermediate timeline model (Model)
// built once from a pipeline's artifacts — annotated trace, device
// operation log, §5.3 stage ledgers, and for fleet launches the per-rank
// outcomes and barrier-skew ledger — plus its renderers: a Chrome
// trace-event exporter (the chrome://tracing / Perfetto JSON format), the
// text report's timing sections, and the served web view all consume the
// same Model. The paper stores Diogenes data in JSON "allowing other tools
// the ability to access data collected by Diogenes" (§4); one shared
// in-memory shape is what keeps the renderers telling the same story.
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"diogenes/internal/gpu"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// ChromeEvent is one Chrome trace event (the "X" complete-event form).
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// File is the top-level trace-event container.
type File struct {
	TraceEvents []ChromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"otherData,omitempty"`
}

const (
	pidProcess = 1
	tidCPU     = 0
	// GPU stream rows start here; stream N renders as tid streamBase+N.
	streamBase = 100
)

func us(t simtime.Time) float64        { return float64(t) / float64(simtime.Microsecond) }
func usDur(d simtime.Duration) float64 { return float64(d) / float64(simtime.Microsecond) }

// Build assembles a Chrome trace file from an annotated run (CPU rows) and
// the device operation log (GPU rows). Either may be nil. It is the
// model-then-render composition kept for existing callers.
func Build(run *trace.Run, ops []*gpu.Op) *File {
	return FromTrace(run, ops).Chrome()
}

// Chrome renders the model as a Chrome trace-event file: one row for the
// CPU thread's driver calls — wait portions emitted as nested "wait"
// slices — one row per GPU stream, and for fleet models one row per rank.
// The event layout is a pure function of the model, so byte-determinism of
// the model carries over to the export. The file's otherData identifies
// the capture: app, family/seed, ranks, and tool version when stamped.
func (m *Model) Chrome() *File {
	f := &File{Metadata: map[string]string{
		"tool":   "diogenes",
		"format": "chrome-trace-events",
	}}
	if m.Meta.App != "" {
		f.Metadata["app"] = m.Meta.App
	}
	if m.Meta.Family != "" {
		f.Metadata["family"] = m.Meta.Family
		f.Metadata["seed"] = strconv.FormatInt(m.Meta.Seed, 10)
	}
	if m.Meta.Ranks > 0 {
		f.Metadata["ranks"] = strconv.Itoa(m.Meta.Ranks)
		if m.Kind != "fleet" {
			f.Metadata["rank"] = strconv.Itoa(m.Meta.Rank)
		}
	}
	if m.Meta.Version != "" {
		f.Metadata["version"] = m.Meta.Version
	}
	rows := make(map[string]Lane, len(m.Lanes))
	for _, l := range m.Lanes {
		rows[l.ID] = l
	}
	for i := range m.Events {
		e := &m.Events[i]
		lane := rows[e.Lane]
		switch lane.Kind {
		case LaneCPU:
			args := map[string]any{
				"class": e.Class,
				"scope": e.Scope,
			}
			if e.Duplicate {
				args["duplicate"] = true
			}
			if e.Protected {
				args["firstUse_us"] = usDur(e.FirstUse)
			}
			f.TraceEvents = append(f.TraceEvents, ChromeEvent{
				Name: e.Name, Cat: e.Cat, Phase: "X",
				TS: us(e.Start), Dur: usDur(e.Dur),
				PID: pidProcess, TID: lane.Row, Args: args,
			})
			if e.Wait > 0 {
				// Render the wait portion as a nested slice at the end of
				// the call, where the block happens.
				waitStart := e.Start.Add(e.Dur - e.Wait)
				f.TraceEvents = append(f.TraceEvents, ChromeEvent{
					Name: "wait", Cat: "sync", Phase: "X",
					TS: us(waitStart), Dur: usDur(e.Wait),
					PID: pidProcess, TID: lane.Row,
					Args: map[string]any{"for": e.Name},
				})
			}
		case LaneGPU:
			// Open-ended kernels carry Dur 0 and render as zero-length
			// markers; the subtraction reproduces the historical float
			// rounding exactly.
			end := e.Start.Add(e.Dur)
			f.TraceEvents = append(f.TraceEvents, ChromeEvent{
				Name: e.Name, Cat: e.Cat, Phase: "X",
				TS: us(e.Start), Dur: us(end) - us(e.Start),
				PID: pidProcess, TID: lane.Row,
				Args: map[string]any{"bytes": e.Bytes, "stream": e.Stream},
			})
		default: // rank and barrier lanes: plain slices, no args
			f.TraceEvents = append(f.TraceEvents, ChromeEvent{
				Name: e.Name, Cat: e.Cat, Phase: "X",
				TS: us(e.Start), Dur: usDur(e.Dur),
				PID: pidProcess, TID: lane.Row,
			})
		}
	}
	return f
}

// Write serializes the file as JSON.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// Read parses a trace file written by Write.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("timeline: decoding: %w", err)
	}
	return &f, nil
}

// Span returns the time range covered by the events, in microseconds.
func (f *File) Span() (start, end float64) {
	first := true
	for _, e := range f.TraceEvents {
		if first || e.TS < start {
			start = e.TS
		}
		if first || e.TS+e.Dur > end {
			end = e.TS + e.Dur
		}
		first = false
	}
	return start, end
}

// RowCount returns the number of distinct rows (tids) in the file.
func (f *File) RowCount() int {
	rows := map[int]bool{}
	for _, e := range f.TraceEvents {
		rows[e.TID] = true
	}
	return len(rows)
}
