package mpi

import (
	"strings"
	"testing"

	"diogenes/internal/cuda"
	"diogenes/internal/ffm"
	"diogenes/internal/gpu"
	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// skewedSolver is a BSP program where rank 0 does the least work per
// superstep and higher ranks progressively more; every rank frees a scratch
// buffer mid-step while its kernel runs (the problematic pattern).
type skewedSolver struct{ steps int }

type solverState struct {
	out *gpu.DevBuf
}

func (s *skewedSolver) Name() string { return "skewed-solver" }
func (s *skewedSolver) Steps() int   { return s.steps }

func (s *skewedSolver) Setup(p *proc.Process, rank int) (RankState, error) {
	buf, err := p.Ctx.Malloc(4096, "rank out")
	if err != nil {
		return nil, err
	}
	return &solverState{out: buf}, nil
}

func (s *skewedSolver) Step(p *proc.Process, rank int, st RankState, step int) error {
	state := st.(*solverState)
	var err error
	p.In("superstep", "solver.c", 200, func() {
		scratch, e := p.Ctx.Malloc(4096, "scratch")
		if e != nil {
			err = e
			return
		}
		kernel := simtime.Duration(1+rank) * simtime.Millisecond
		if _, e := p.Ctx.LaunchKernel(cuda.KernelSpec{
			Name: "sweep", Duration: kernel, Stream: gpu.LegacyStream,
			Writes: []cuda.KernelWrite{{Ptr: state.out.Base(), Size: 64, Seed: uint64(rank*1000 + step)}},
		}); e != nil {
			err = e
			return
		}
		p.CPUWork(200 * simtime.Microsecond)
		p.At(205)
		if e := p.Ctx.Free(scratch); e != nil {
			err = e
			return
		}
		p.CPUWork(simtime.Duration(1+rank) * 100 * simtime.Microsecond)
	})
	return err
}

func TestWorldBarrierSynchronizesClocks(t *testing.T) {
	w, err := NewWorld(&skewedSolver{steps: 3}, Config{
		Ranks: 3, BarrierLatency: 50 * simtime.Microsecond, Factory: proc.DefaultFactory(),
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Barriers() != 3 {
		t.Fatalf("barriers = %d, want 3", w.Barriers())
	}
	// After the final barrier all ranks share one time.
	t0 := w.Rank(0).Clock.Now()
	for r := 1; r < 3; r++ {
		if w.Rank(r).Clock.Now() != t0 {
			t.Fatalf("rank %d at %v, rank 0 at %v", r, w.Rank(r).Clock.Now(), t0)
		}
	}
}

func TestSlowestRankSetsThePace(t *testing.T) {
	// Rank 0 alone finishes much faster than rank 0 inside a world with a
	// slow rank 2: the collective drags it to the laggard's pace.
	solo := proc.DefaultFactory().New()
	app1 := App(&skewedSolver{steps: 4}, Config{Ranks: 1, BarrierLatency: 50 * simtime.Microsecond, Factory: proc.DefaultFactory()}, 0)
	if err := app1.Run(solo); err != nil {
		t.Fatal(err)
	}
	inWorld := proc.DefaultFactory().New()
	app3 := App(&skewedSolver{steps: 4}, Config{Ranks: 3, BarrierLatency: 50 * simtime.Microsecond, Factory: proc.DefaultFactory()}, 0)
	if err := app3.Run(inWorld); err != nil {
		t.Fatal(err)
	}
	if inWorld.ExecTime() <= solo.ExecTime() {
		t.Fatalf("world run %v not slower than solo %v", inWorld.ExecTime(), solo.ExecTime())
	}
}

func TestFFMInstrumentsObservedRank(t *testing.T) {
	cfg := Config{Ranks: 3, BarrierLatency: 50 * simtime.Microsecond, Factory: proc.DefaultFactory()}
	app := App(&skewedSolver{steps: 5}, cfg, 0)
	rep, err := ffm.Run(app, ffm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	savings := rep.Analysis.SavingsByFunc()
	if len(savings) == 0 || savings[0].Func != "cudaFree" {
		t.Fatalf("top finding = %+v", savings)
	}
	// Only the observed rank's calls are recorded: 1 free per step.
	frees := 0
	for _, rec := range rep.Trace.Records {
		if rec.Func == "cudaFree" {
			frees++
		}
	}
	if frees != 5 {
		t.Fatalf("observed-rank frees = %d, want 5 (not %d across the world)", frees, 5*3)
	}
}

func TestFFMDeterministicAcrossRanks(t *testing.T) {
	cfg := Config{Ranks: 2, BarrierLatency: 50 * simtime.Microsecond, Factory: proc.DefaultFactory()}
	for rank := 0; rank < 2; rank++ {
		a, err := ffm.Run(App(&skewedSolver{steps: 3}, cfg, rank), ffm.DefaultConfig())
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		b, err := ffm.Run(App(&skewedSolver{steps: 3}, cfg, rank), ffm.DefaultConfig())
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if a.Analysis.TotalBenefit() != b.Analysis.TotalBenefit() {
			t.Fatalf("rank %d: nondeterministic analysis", rank)
		}
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(&skewedSolver{steps: 1}, Config{Ranks: 0, Factory: proc.DefaultFactory()}, 0, nil); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := NewWorld(&skewedSolver{steps: 1}, Config{Ranks: -3, Factory: proc.DefaultFactory()}, 0, nil); err == nil {
		t.Fatal("negative ranks accepted")
	}
	if _, err := NewWorld(&skewedSolver{steps: 1}, Config{Ranks: 2, Factory: proc.DefaultFactory()}, 5, nil); err == nil {
		t.Fatal("out-of-range observed rank accepted")
	}
	// With a supplied process the observed rank must be in range.
	p := proc.DefaultFactory().New()
	if _, err := NewWorld(&skewedSolver{steps: 1}, Config{Ranks: 2, Factory: proc.DefaultFactory()}, 2, p); err == nil {
		t.Fatal("out-of-range observed rank with process accepted")
	}
	if _, err := NewWorld(&skewedSolver{steps: 1}, Config{Ranks: 2, Factory: proc.DefaultFactory()}, NoObserved, p); err == nil {
		t.Fatal("NoObserved with a supplied process accepted")
	}
	// NoObserved with a nil process is the whole-world reference form.
	if _, err := NewWorld(&skewedSolver{steps: 1}, Config{Ranks: 2, Factory: proc.DefaultFactory()}, NoObserved, nil); err != nil {
		t.Fatalf("NoObserved rejected: %v", err)
	}
}

func TestWorldNormalizesNilObservedProc(t *testing.T) {
	// Historical callers pass (0, nil) meaning "no observed process"; the
	// pair is normalized to NoObserved — every rank is factory-built and
	// the run proceeds. An observed value that is neither NoObserved nor a
	// valid rank is rejected instead of silently normalized.
	w, err := NewWorld(&skewedSolver{steps: 1}, Config{
		Ranks: 2, BarrierLatency: 10 * simtime.Microsecond, Factory: proc.DefaultFactory(),
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if w.Rank(r) == nil {
			t.Fatalf("rank %d has no process", r)
		}
	}
}

func TestWorldSkewChargesStraggler(t *testing.T) {
	// skewedSolver's per-step cost grows with the rank, so rank 2 arrives
	// last at every barrier.
	w, err := NewWorld(&skewedSolver{steps: 3}, Config{
		Ranks: 3, BarrierLatency: 50 * simtime.Microsecond, Factory: proc.DefaultFactory(),
	}, NoObserved, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	skew := w.Skew()
	if len(skew) != 3 {
		t.Fatalf("skew accounts = %d, want 3", len(skew))
	}
	if skew[2].Straggles != 3 {
		t.Fatalf("rank 2 straggles = %d, want 3", skew[2].Straggles)
	}
	if skew[2].Waited != 0 {
		t.Fatalf("straggler waited %v, want 0", skew[2].Waited)
	}
	if skew[0].Waited <= skew[1].Waited || skew[1].Waited <= 0 {
		t.Fatalf("waits not ordered by slack: rank0 %v, rank1 %v", skew[0].Waited, skew[1].Waited)
	}
	if got, want := skew[2].Charged, skew[0].Waited+skew[1].Waited; got != want {
		t.Fatalf("charged %v, want the others' total wait %v", got, want)
	}
	if skew[0].Charged != 0 || skew[1].Charged != 0 {
		t.Fatalf("non-stragglers charged: %v, %v", skew[0].Charged, skew[1].Charged)
	}
}

func TestWorldSkewBalancedWorldHasNoStraggler(t *testing.T) {
	// identicalSolver: every rank does the same work, so no barrier has a
	// straggler and no wait is charged.
	w, err := NewWorld(&identicalSolver{steps: 2}, Config{
		Ranks: 2, BarrierLatency: 25 * simtime.Microsecond, Factory: proc.DefaultFactory(),
	}, NoObserved, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rs := range w.Skew() {
		if rs.Waited != 0 || rs.Charged != 0 || rs.Straggles != 0 {
			t.Fatalf("balanced world produced skew: %+v", rs)
		}
	}
}

// identicalSolver is a BSP program whose ranks do identical work.
type identicalSolver struct{ steps int }

func (s *identicalSolver) Name() string { return "identical-solver" }
func (s *identicalSolver) Steps() int   { return s.steps }

func (s *identicalSolver) Setup(p *proc.Process, rank int) (RankState, error) {
	return nil, nil
}

func (s *identicalSolver) Step(p *proc.Process, rank int, st RankState, step int) error {
	p.CPUWork(100 * simtime.Microsecond)
	return nil
}

func TestWorldAppName(t *testing.T) {
	app := App(&skewedSolver{steps: 1}, DefaultConfig(), 2)
	if !strings.Contains(app.Name(), "rank2/4") {
		t.Fatalf("name = %q", app.Name())
	}
}
