// Package mpi simulates a deterministic multi-rank (MPI-style) launch.
//
// AMG, one of the paper's four applications, is "an MPI based parallel
// algebraic multigrid solver", and the Ray testbed is a cluster; tools like
// Diogenes instrument each rank's process independently (the prototype is
// launched like hpcprof/nvprof, per process). This package models the
// bulk-synchronous structure such solvers have: every rank executes the
// same supersteps against its own simulated process, and a collective
// (barrier/allreduce) at each superstep boundary advances all ranks to the
// latest rank's time plus the collective's latency.
//
// The adapter returned by App lets FFM instrument one observed rank while
// the other ranks run alongside in background processes: collective skew
// shows up on the observed rank as gaps before its next driver call,
// exactly as MPI wait time would.
package mpi

import (
	"fmt"

	"diogenes/internal/proc"
	"diogenes/internal/simtime"
)

// RankState is per-rank application state created by Setup.
type RankState any

// RankProgram is a bulk-synchronous multi-rank application.
type RankProgram interface {
	Name() string
	// Steps is the number of supersteps (collective-delimited phases).
	Steps() int
	// Setup allocates the rank's state against its process.
	Setup(p *proc.Process, rank int) (RankState, error)
	// Step executes one superstep on one rank. Calls must be deterministic
	// per (rank, step).
	Step(p *proc.Process, rank int, st RankState, step int) error
}

// NoObserved selects no observed rank: every rank's process is built from
// the factory. Whole-world reference runs (fleet skew measurement, tests)
// use this; FFM instrumentation always names a concrete observed rank.
const NoObserved = -1

// Config describes the launch.
type Config struct {
	// Ranks is the world size.
	Ranks int
	// BarrierLatency is the collective's cost once all ranks arrive.
	BarrierLatency simtime.Duration
	// Factory builds each rank's process.
	Factory proc.Factory
}

// DefaultConfig returns a 4-rank world (one rank per GPU of a Ray node).
func DefaultConfig() Config {
	return Config{
		Ranks:          4,
		BarrierLatency: 25 * simtime.Microsecond,
		Factory:        proc.DefaultFactory(),
	}
}

// RankSkew is one rank's collective-skew account over a world run.
type RankSkew struct {
	Rank int `json:"rank"`
	// Waited is the time this rank spent blocked at barriers waiting for
	// slower ranks (excluding BarrierLatency, the unavoidable collective
	// cost every rank pays).
	Waited simtime.Duration `json:"waited"`
	// Charged is the wait time this rank inflicted on the others while it
	// was the straggler — the sum, over barriers where it arrived last, of
	// every other rank's wait.
	Charged simtime.Duration `json:"charged"`
	// Straggles counts barriers where this rank arrived last and at least
	// one other rank actually waited.
	Straggles int `json:"straggles"`
}

// BarrierRecord is the per-barrier entry of the skew ledger: one skewed
// collective, its straggler, and every rank's wait. Balanced barriers
// (total wait zero) are not recorded — in a perfectly balanced world the
// ledger stays empty no matter how many collectives execute.
type BarrierRecord struct {
	// Index is the barrier's ordinal among all executed collectives
	// (including unrecorded balanced ones).
	Index int
	// Arrive is the straggler's arrival time — the moment the last rank
	// reached the barrier and everyone's wait ended.
	Arrive simtime.Time
	// Latency is the collective's own cost, paid after Arrive.
	Latency simtime.Duration
	// Straggler is the last-arriving rank (ties toward the lowest rank).
	Straggler int
	// TotalWait is the sum of every rank's wait at this barrier.
	TotalWait simtime.Duration
	// RankWaits is each rank's wait, indexed by rank.
	RankWaits []simtime.Duration
}

// World is one running multi-rank launch.
type World struct {
	cfg    Config
	procs  []*proc.Process
	states []RankState
	prog   RankProgram
	skew   []RankSkew
	ledger []BarrierRecord
	// barriers counts executed collectives.
	barriers int
}

// NewWorld sets up all ranks. The caller may supply a pre-built process for
// one observed rank (used by the FFM adapter — "the observed rank lives in
// the app's process").
//
// The nil-observedProc case: without a caller-supplied process no rank can
// live in the app's process, so the observed-rank contract cannot hold.
// NoObserved (or, for historical callers, any in-range rank — normalized to
// NoObserved) is accepted and every rank is built from the factory;
// anything else is an error rather than a silently factory-built "observed"
// rank.
func NewWorld(prog RankProgram, cfg Config, observed int, observedProc *proc.Process) (*World, error) {
	// Validate the world size before the procs/states slices are
	// allocated: a negative Ranks must fail here, not panic in make.
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("mpi: world size %d, need at least 1 rank", cfg.Ranks)
	}
	if observedProc == nil {
		if observed != NoObserved && (observed < 0 || observed >= cfg.Ranks) {
			return nil, fmt.Errorf("mpi: observed rank %d of %d without its process (pass mpi.NoObserved to observe none)", observed, cfg.Ranks)
		}
		observed = NoObserved
	} else if observed < 0 || observed >= cfg.Ranks {
		return nil, fmt.Errorf("mpi: observed rank %d of %d", observed, cfg.Ranks)
	}
	w := &World{cfg: cfg, prog: prog}
	w.procs = make([]*proc.Process, cfg.Ranks)
	w.states = make([]RankState, cfg.Ranks)
	w.skew = make([]RankSkew, cfg.Ranks)
	for r := range w.skew {
		w.skew[r].Rank = r
	}
	for r := 0; r < cfg.Ranks; r++ {
		if r == observed {
			w.procs[r] = observedProc
		} else {
			w.procs[r] = cfg.Factory.New()
		}
		st, err := prog.Setup(w.procs[r], r)
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d setup: %w", r, err)
		}
		w.states[r] = st
	}
	return w, nil
}

// Rank returns rank r's process.
func (w *World) Rank(r int) *proc.Process { return w.procs[r] }

// Barriers returns the number of collectives executed.
func (w *World) Barriers() int { return w.barriers }

// Skew returns a copy of the per-rank collective-skew accounts accumulated
// so far: how long each rank waited at barriers, and how much wait each
// rank inflicted on the others while it was the straggler.
func (w *World) Skew() []RankSkew {
	out := make([]RankSkew, len(w.skew))
	copy(out, w.skew)
	return out
}

// Barrier advances every rank to the latest rank's time plus the collective
// latency — the lockstep synchronization of a bulk-synchronous solver.
//
// The skew ledger charges this barrier's total wait to the straggler — the
// last-arriving rank (ties broken toward the lowest rank, keeping the
// ledger deterministic). BarrierLatency is excluded: every rank pays it
// even in a perfectly balanced world. Skewed barriers additionally append
// a BarrierRecord so the attribution can be replayed collective by
// collective (Ledger).
func (w *World) Barrier() {
	var latest simtime.Time
	straggler := 0
	for r, p := range w.procs {
		if now := p.Clock.Now(); now > latest {
			latest = now
			straggler = r
		}
	}
	target := latest.Add(w.cfg.BarrierLatency)
	var total simtime.Duration
	waits := make([]simtime.Duration, len(w.procs))
	for r, p := range w.procs {
		wait := latest.Sub(p.Clock.Now())
		w.skew[r].Waited += wait
		waits[r] = wait
		total += wait
		p.Clock.AdvanceTo(target)
	}
	if total > 0 {
		w.skew[straggler].Charged += total
		w.skew[straggler].Straggles++
		w.ledger = append(w.ledger, BarrierRecord{
			Index:     w.barriers,
			Arrive:    latest,
			Latency:   w.cfg.BarrierLatency,
			Straggler: straggler,
			TotalWait: total,
			RankWaits: waits,
		})
	}
	w.barriers++
}

// Ledger returns the per-barrier skew records accumulated so far: one entry
// per skewed collective, in execution order. Balanced barriers leave no
// record.
func (w *World) Ledger() []BarrierRecord {
	out := make([]BarrierRecord, len(w.ledger))
	copy(out, w.ledger)
	return out
}

// Run executes all supersteps with a collective after each.
func (w *World) Run() error {
	for step := 0; step < w.prog.Steps(); step++ {
		for r := 0; r < w.cfg.Ranks; r++ {
			if err := proc.SafeRun(rankStepApp{w, r, step}, w.procs[r]); err != nil {
				return fmt.Errorf("mpi: rank %d step %d: %w", r, step, err)
			}
		}
		w.Barrier()
	}
	return nil
}

// rankStepApp adapts one (rank, step) execution to proc.App so SafeRun's
// deadlock recovery applies per step.
type rankStepApp struct {
	w    *World
	rank int
	step int
}

func (a rankStepApp) Name() string {
	return fmt.Sprintf("%s[rank %d, step %d]", a.w.prog.Name(), a.rank, a.step)
}

func (a rankStepApp) Run(p *proc.Process) error {
	return a.w.prog.Step(p, a.rank, a.w.states[a.rank], a.step)
}

// App adapts a multi-rank program to a single-process proc.App from the
// point of view of rank `observed`: running the returned app simulates the
// whole world, with the observed rank living in the app's process. This is
// what FFM instruments — one process of the MPI job, like the real tool.
func App(prog RankProgram, cfg Config, observed int) proc.App {
	return &worldApp{prog: prog, cfg: cfg, observed: observed}
}

type worldApp struct {
	prog     RankProgram
	cfg      Config
	observed int
}

func (a *worldApp) Name() string {
	return fmt.Sprintf("%s@rank%d/%d", a.prog.Name(), a.observed, a.cfg.Ranks)
}

func (a *worldApp) Run(p *proc.Process) error {
	w, err := NewWorld(a.prog, a.cfg, a.observed, p)
	if err != nil {
		return err
	}
	return w.Run()
}
