package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"diogenes/internal/ffm"
)

// rankList renders a rank slice compactly ("0 1 3").
func rankList(ranks []int) string {
	parts := make([]string, len(ranks))
	for i, r := range ranks {
		parts[i] = strconv.Itoa(r)
	}
	return strings.Join(parts, " ")
}

// FleetTable writes the cluster-wide fleet analysis: per-rank pipeline
// outcomes, the cross-rank duplicate-transfer findings, the per-problem
// benefit spread, and the collective-skew attribution. The CLI and the
// analysis service both render through this function, so a served fleet
// report is byte-identical to the terminal output for the same request.
func FleetTable(w io.Writer, fr *ffm.FleetReport) error {
	if _, err := fmt.Fprintf(w, "Diogenes Fleet Analysis — %s (%d ranks)\n", fr.App, fr.Ranks); err != nil {
		return err
	}

	if fr.Partial {
		fmt.Fprintf(w, "\nDEGRADED: %d/%d rank pipelines failed; aggregates cover the %d surviving ranks\n",
			len(fr.FailedRanks), fr.Ranks, fr.Analyzed)
		for _, r := range fr.FailedRanks {
			o := fr.PerRank[r]
			fmt.Fprintf(w, "  rank %d (%d attempts): %s\n", o.Rank, o.Attempts, o.Err)
		}
	}

	fmt.Fprintf(w, "\nPer-rank pipelines\n")
	fmt.Fprintf(w, "  %-5s %12s %12s %9s\n", "rank", "exec", "benefit", "problems")
	for _, o := range fr.PerRank {
		if o.Failed() {
			fmt.Fprintf(w, "  %-5d %12s %12s %9s  FAILED\n", o.Rank, "-", "-", "-")
			continue
		}
		note := ""
		if o.Retried {
			note = "  retried"
		} else if o.FromCache {
			note = "  cached"
		}
		fmt.Fprintf(w, "  %-5d %12s %12s %9d%s\n",
			o.Rank, seconds(o.ExecTime), seconds(o.TotalBenefit), o.Problems, note)
	}

	fmt.Fprintf(w, "\nCross-rank duplicate transfers\n")
	if len(fr.Duplicates) == 0 {
		fmt.Fprintf(w, "  none\n")
	} else {
		fmt.Fprintf(w, "  %-18s %-26s %9s %10s  %s\n", "hash", "func", "records", "bytes", "ranks")
		for _, d := range fr.Duplicates {
			fmt.Fprintf(w, "  %-18s %-26s %9d %10d  [%s]\n",
				d.Hash, d.Func, d.Records, d.Bytes, rankList(d.Ranks))
		}
		fmt.Fprintf(w, "  total duplicate volume across ranks: %d bytes\n", fr.CrossRankDupBytes)
	}

	fmt.Fprintf(w, "\nProblems across ranks (summed benefit)\n")
	if len(fr.Problems) == 0 {
		fmt.Fprintf(w, "  none\n")
	} else {
		fmt.Fprintf(w, "  %-44s %12s %22s %22s\n", "problem", "total", "min (rank)", "max (rank)")
		for _, p := range fr.Problems {
			label := fmt.Sprintf("%s: %s", p.Kind, p.Label)
			fmt.Fprintf(w, "  %-44s %12s %14s (%5d) %14s (%5d)\n",
				label, seconds(p.Total), seconds(p.Min), p.MinRank, seconds(p.Max), p.MaxRank)
		}
	}

	fmt.Fprintf(w, "\nCollective skew attribution\n")
	switch {
	case fr.Skew == nil:
		fmt.Fprintf(w, "  unavailable (whole-world reference run failed)\n")
	case fr.Skew.TotalWait == 0:
		fmt.Fprintf(w, "  balanced world: no rank waited at any barrier\n")
	default:
		fmt.Fprintf(w, "  total wait behind stragglers: %s (dominant straggler: rank %d)\n",
			seconds(fr.Skew.TotalWait), fr.Skew.Straggler)
		fmt.Fprintf(w, "  %-5s %12s %12s %10s\n", "rank", "waited", "charged", "straggles")
		for _, rs := range fr.Skew.PerRank {
			fmt.Fprintf(w, "  %-5d %12s %12s %10d\n", rs.Rank, seconds(rs.Waited), seconds(rs.Charged), rs.Straggles)
		}
	}
	return nil
}
