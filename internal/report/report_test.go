package report

import (
	"bytes"
	"strings"
	"testing"

	"diogenes/internal/callstack"
	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// sampleAnalysis builds an analysis with one problem sequence repeating
// three times and a mix of API functions.
func sampleAnalysis() *ffm.Analysis {
	run := &trace.Run{App: "sample", Stage: 4}
	var at simtime.Time
	seq := int64(0)
	add := func(fn string, class trace.OpClass, line int, dup, accessed bool) {
		seq++
		run.Records = append(run.Records, trace.Record{
			Seq: seq, Func: fn, Class: class,
			Entry: at, Exit: at.Add(simtime.Millisecond), SyncWait: simtime.Millisecond / 2,
			Scope: "implicit", Duplicate: dup, ProtectedAccess: accessed,
			Stack: callstack.Trace{{Function: "step<float>", File: "app.cpp", Line: line}},
		})
		at = at.Add(simtime.Millisecond)
	}
	for i := 0; i < 3; i++ {
		add("cudaFree", trace.ClassSync, 10, false, false)
		at = at.Add(simtime.Millisecond)
		add("cudaMemcpy", trace.ClassTransfer, 12, i > 0, false)
		at = at.Add(simtime.Millisecond)
		add("cudaMemcpy", trace.ClassSync, 20, false, true) // necessary
		at = at.Add(2 * simtime.Millisecond)
	}
	run.ExecTime = simtime.Duration(at)
	return ffm.Analyze(run, ffm.DefaultAnalysisOptions())
}

func TestOverviewDisplay(t *testing.T) {
	a := sampleAnalysis()
	var buf bytes.Buffer
	if err := Overview(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Diogenes Overview Display — sample",
		"Fold on cudaFree",
		"Sequence starting at call",
		"Back/Previous",
		"Exit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("overview missing %q:\n%s", want, out)
		}
	}
	// Sorted: first listed benefit >= later ones.
	first := strings.Index(out, "Fold on")
	seqIdx := strings.Index(out, "Sequence starting")
	if first < 0 || seqIdx < 0 {
		t.Fatal("entries missing")
	}
}

func TestExpandFoldDisplay(t *testing.T) {
	a := sampleAnalysis()
	folds := a.APIFolds()
	if len(folds) == 0 {
		t.Fatal("no folds")
	}
	var fold ffm.APIFold
	for _, f := range folds {
		if f.Func == "cudaFree" {
			fold = f
		}
	}
	var buf bytes.Buffer
	if err := ExpandFold(&buf, a, fold); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Expansion of Problem — Fold on cudaFree") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "step<float>") {
		t.Fatalf("caller expansion missing:\n%s", out)
	}
	if !strings.Contains(out, "Conditionally unnecessary") {
		t.Fatal("condition annotation missing")
	}
}

func TestSequenceDisplay(t *testing.T) {
	a := sampleAnalysis()
	seqs := a.StaticSequences()
	if len(seqs) == 0 {
		t.Fatal("no sequences")
	}
	var buf bytes.Buffer
	if err := Sequence(&buf, a, seqs[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Time Recoverable:",
		"of execution time",
		"Number of Sync Issues:",
		"Number of Transfer Issues:",
		"Select start/ending subsequence",
		"1. cudaFree in app.cpp at line 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sequence display missing %q:\n%s", want, out)
		}
	}
}

func TestSubsequenceDisplay(t *testing.T) {
	a := sampleAnalysis()
	seqs := a.StaticSequences()
	sub, err := a.SubsequenceBenefit(seqs[0], 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Subsequence(&buf, a, sub); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Time Recoverable In Subsequence:") {
		t.Fatalf("subsequence header missing:\n%s", buf.String())
	}
}

func TestSavingsDisplay(t *testing.T) {
	a := sampleAnalysis()
	var buf bytes.Buffer
	if err := Savings(&buf, a); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, " 1. cudaFree") && !strings.Contains(out, " 1. cudaMemcpy") {
		t.Fatalf("no ranked rows:\n%s", out)
	}
}

func TestTable1Rendering(t *testing.T) {
	rows := []experiments.Table1Row{{
		App: "cumf_als", Issues: "Sync and Mem Trans",
		Estimated: 137 * simtime.Second, EstimatedPct: 10.0,
		Actual: 106 * simtime.Second, ActualPct: 8.3,
		Accuracy: 77, Overhead: 8,
		PaperEstPct: 10.0, PaperActPct: 8.3,
	}}
	var buf bytes.Buffer
	if err := Table1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cumf_als", "Sync and Mem Trans", "137.000s", "106.000s", "77.0%", "8.0x", "(paper)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	rows := []experiments.Table2Row{
		{
			App: "cumf_als", Func: "cudaDeviceSynchronize",
			NVProfTime: 745 * simtime.Second, NVProfPct: 52.0, NVProfPos: 1,
			HPCTime: 628 * simtime.Second, HPCPct: 24.5, HPCPos: 1,
			DiogenesSavings: simtime.Second, DiogenesPct: 0.07, DiogenesPos: 3, DiogenesListed: true,
		},
		{App: "cumf_als", Func: "cudaMalloc", NVProfTime: 218 * simtime.Second, NVProfPct: 17.3, NVProfPos: 3},
		{App: "cuibm", Func: "cudaFree", NVProfCrashed: true, HPCTime: 447 * simtime.Second, HPCPct: 12.3, HPCPos: 1},
	}
	var buf bytes.Buffer
	if err := Table2(&buf, "cumf_als", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"745.000s (52.0%, 1)",
		"628.000s (24.5%, 1)",
		"1.000s (0.07%, 3)",
		"Profiler Crashed",
		"cudaMalloc",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 missing %q:\n%s", want, out)
		}
	}
	// cudaMalloc has no Diogenes entry: rendered as '-'.
	if !strings.Contains(out, "-") {
		t.Error("missing '-' for uncollected function")
	}
}

func TestOverheadSummaryRendering(t *testing.T) {
	rep := &ffm.Report{
		App:                "x",
		UninstrumentedTime: simtime.Second,
		Stage1Time:         simtime.Second,
		Stage2Time:         2 * simtime.Second,
		Stage3Time:         4 * simtime.Second,
		Stage4Time:         simtime.Second,
	}
	var buf bytes.Buffer
	if err := OverheadSummary(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "8.000s (8.0x)") {
		t.Fatalf("total line wrong:\n%s", out)
	}
	for _, stage := range []string{"stage 1", "stage 2", "stage 3", "stage 4"} {
		if !strings.Contains(out, stage) {
			t.Errorf("missing %s line", stage)
		}
	}
}

func TestOverlapSummaryRendering(t *testing.T) {
	st := ffm.OverlapStats{
		ExecTime:       10 * simtime.Second,
		GPUBusy:        6 * simtime.Second,
		GPUIdle:        4 * simtime.Second,
		CPUBlocked:     3 * simtime.Second,
		GPUUtilization: 0.6,
		BlockedShare:   0.3,
	}
	var buf bytes.Buffer
	if err := OverlapSummary(&buf, st); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"60.0% utilization", "CPU blocked", "30.0% of execution"} {
		if !strings.Contains(out, want) {
			t.Errorf("overlap summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	// Build a minimal but complete report around the sample analysis.
	a := sampleAnalysis()
	rep := &ffm.Report{
		App:                a.App,
		UninstrumentedTime: a.ExecTime,
		Stage1Time:         a.ExecTime,
		Stage2Time:         2 * a.ExecTime,
		Stage3Time:         4 * a.ExecTime,
		Stage4Time:         a.ExecTime,
		Analysis:           a,
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, rep); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{
		"# Diogenes findings — sample",
		"## Findings by API function",
		"| # | Function | Expected savings |",
		"`cudaFree`",
		"## Fold expansion:",
		"## Top problem sequence",
		"## CPU/GPU overlap",
		"## Data collection cost",
		"(8.0x)**",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
