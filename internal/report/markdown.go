package report

import (
	"fmt"
	"io"

	"diogenes/internal/ffm"
	"diogenes/internal/timeline"
)

// WriteMarkdown renders a complete findings document for one report —
// overview, per-function savings, the top problem sequence, fold
// expansions, overlap and collection-cost summaries — as shareable
// Markdown. This is the report an engineer would attach to a performance
// ticket.
func WriteMarkdown(w io.Writer, rep *ffm.Report) error {
	a := rep.Analysis
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	if _, err := fmt.Fprintf(w, "# Diogenes findings — %s\n\n", a.App); err != nil {
		return err
	}
	p("Total expected benefit: **%s (%.2f%% of execution)** across %d problematic operations.\n\n",
		seconds(a.TotalBenefit()), a.Percent(a.TotalBenefit()), len(a.Graph.ProblematicNodes()))

	p("## Findings by API function\n\n")
	p("| # | Function | Expected savings | %% of execution | Occurrences |\n")
	p("|---|---|---|---|---|\n")
	for _, s := range a.SavingsByFunc() {
		p("| %d | `%s` | %s | %.2f%% | %d |\n", s.Pos, s.Func, seconds(s.Savings), s.Percent, s.Count)
	}
	p("\n")

	if folds := a.APIFolds(); len(folds) > 0 {
		p("## Fold expansion: `%s`\n\n", folds[0].Func)
		p("| Calling function | Savings | %% | Sites |\n|---|---|---|---|\n")
		for _, c := range folds[0].Children {
			p("| `%s` | %s | %.2f%% | %d |\n", c.Caller, seconds(c.Benefit), c.Percent, c.Count)
		}
		p("\n")
	}

	if seqs := a.StaticSequences(); len(seqs) > 0 {
		top := seqs[0]
		p("## Top problem sequence\n\n")
		p("Recoverable: **%s (%.2f%%)** over %d instances — %d sync issues, %d transfer issues.\n\n",
			seconds(top.Benefit), a.Percent(top.Benefit), top.Instances, top.Syncs, top.Transfers)
		for _, e := range top.Entries {
			p("%d. %s\n", e.Index, e.Label)
		}
		p("\n")
	}

	st := rep.Overlap()
	p("## CPU/GPU overlap\n\n")
	p("- execution: %s\n- GPU busy: %s (%.1f%% utilization)\n- CPU blocked in synchronization: %s (%.1f%%)\n\n",
		seconds(st.ExecTime), seconds(st.GPUBusy), 100*st.GPUUtilization,
		seconds(st.CPUBlocked), 100*st.BlockedShare)

	// The timing table renders from the shared timeline model, the same
	// stage ledger behind the terminal summary and the served web view.
	m := timeline.FromReport("run", rep)
	p("## Data collection cost\n\n")
	p("| Stage | Run time |\n|---|---|\n")
	p("| uninstrumented | %s |\n", seconds(m.Reference))
	for i, o := range m.Overlays {
		p("| %d — %s | %s |\n", i+1, o.Detail, seconds(o.Time))
	}
	p("| **total** | **%s (%.1fx)** |\n", seconds(m.Collection()), m.OverheadMultiple())
	return nil
}
