// Package report renders Diogenes' terminal displays: the overview list and
// fold expansion of Figure 7, the sequence listing of Figure 6, the
// subsequence estimate of Figure 8, and the evaluation tables of the paper
// (§4: "Diogenes has a simple terminal-based command line interface to
// explore data analyzed by FFM").
package report

import (
	"fmt"
	"io"

	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/simtime"
	"diogenes/internal/timeline"
)

func seconds(d simtime.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// Overview writes the Figure 7 left-hand display: API-function folds and
// problem sequences sorted by recoverable time.
func Overview(w io.Writer, a *ffm.Analysis) error {
	if _, err := fmt.Fprintf(w, "Diogenes Overview Display — %s\n", a.App); err != nil {
		return err
	}
	fmt.Fprintf(w, "Time(s) (%% of execution time)\n\n")

	type entry struct {
		benefit simtime.Duration
		label   string
	}
	var entries []entry
	for _, f := range a.APIFolds() {
		entries = append(entries, entry{f.Benefit, "Fold on " + f.Func})
	}
	for _, s := range a.StaticSequences() {
		label := "Sequence starting at call ..."
		if len(s.Entries) > 0 {
			label = "Sequence starting at call " + s.Entries[0].Label
		}
		entries = append(entries, entry{s.Benefit, label})
	}
	// Insertion-sort by benefit, stable and tiny.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].benefit > entries[j-1].benefit; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	for _, e := range entries {
		fmt.Fprintf(w, "%12s (%5.2f%%) %s\n", seconds(e.benefit), a.Percent(e.benefit), e.label)
	}
	fmt.Fprintf(w, "\nBack/Previous\nExit\n")
	return nil
}

// ExpandFold writes the Figure 7 right-hand display: one API-function fold
// broken down by calling template function.
func ExpandFold(w io.Writer, a *ffm.Analysis, fold ffm.APIFold) error {
	if _, err := fmt.Fprintf(w, "Expansion of Problem — Fold on %s\n", fold.Func); err != nil {
		return err
	}
	fmt.Fprintf(w, "%12s(%5.2f%%) Fold on %s\n", seconds(fold.Benefit), fold.Percent, fold.Func)
	for _, c := range fold.Children {
		fmt.Fprintf(w, "  %12s(%5.2f%%) %s\n", seconds(c.Benefit), c.Percent, c.Caller)
		fmt.Fprintf(w, "      Conditionally unnecessary (see: conditions)\n")
	}
	return nil
}

// Sequence writes the Figure 6 display: the numbered listing of one problem
// sequence with its recoverable-time header.
func Sequence(w io.Writer, a *ffm.Analysis, s ffm.StaticSequence) error {
	if _, err := fmt.Fprintf(w, "Time Recoverable: %s (%.2f%% of execution time)\n",
		seconds(s.Benefit), a.Percent(s.Benefit)); err != nil {
		return err
	}
	fmt.Fprintf(w, "Number of Sync Issues: %d Number of Transfer Issues: %d\n\n", s.Syncs, s.Transfers)
	fmt.Fprintf(w, "Select start/ending subsequence to get refined estimate\n")
	for _, e := range s.Entries {
		fmt.Fprintf(w, "%d. %s\n", e.Index, e.Label)
	}
	return nil
}

// Subsequence writes the Figure 8 display: the refined estimate for a
// subsequence of an existing sequence.
func Subsequence(w io.Writer, a *ffm.Analysis, sub ffm.StaticSequence) error {
	if _, err := fmt.Fprintf(w, "Time Recoverable In Subsequence: %s\n", seconds(sub.Benefit)); err != nil {
		return err
	}
	fmt.Fprintf(w, "(%.2f%% of execution time)\n\n", a.Percent(sub.Benefit))
	for _, e := range sub.Entries {
		fmt.Fprintf(w, "%d. %s\n", e.Index, e.Label)
	}
	return nil
}

// Savings writes the per-API-function expected-savings summary (Diogenes'
// column of Table 2).
func Savings(w io.Writer, a *ffm.Analysis) error {
	if _, err := fmt.Fprintf(w, "Diogenes Estimated Savings — %s\n", a.App); err != nil {
		return err
	}
	for _, s := range a.SavingsByFunc() {
		fmt.Fprintf(w, "%2d. %-28s %12s (%5.2f%%)\n", s.Pos, s.Func, seconds(s.Savings), s.Percent)
	}
	return nil
}

// Table1 writes the reproduction of Table 1.
func Table1(w io.Writer, rows []experiments.Table1Row) error {
	if _, err := fmt.Fprintf(w, "%-18s %-20s %22s %22s %9s %9s\n",
		"Application", "Discovered Issues", "Estimated Benefit", "Actual Reduction", "Accuracy", "Overhead"); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %-20s %11s (%5.2f%%) %11s (%5.2f%%) %8.1f%% %8.1fx\n",
			r.App, r.Issues,
			seconds(r.Estimated), r.EstimatedPct,
			seconds(r.Actual), r.ActualPct,
			r.Accuracy, r.Overhead)
		fmt.Fprintf(w, "%-18s %-20s %11s (%5.2f%%) %11s (%5.2f%%)\n",
			"", "(paper)", "", r.PaperEstPct, "", r.PaperActPct)
	}
	return nil
}

// Table2 writes one application's section of Table 2.
func Table2(w io.Writer, app string, rows []experiments.Table2Row) error {
	if _, err := fmt.Fprintf(w, "%s\n%-26s %-24s %-24s %-24s\n",
		app, "Operation", "NVProf Profiled", "HPCToolkit Profiled", "Diogenes Estimated"); err != nil {
		return err
	}
	for _, r := range rows {
		nv := "Profiler Crashed"
		if !r.NVProfCrashed {
			if r.NVProfPos > 0 {
				nv = fmt.Sprintf("%s (%.1f%%, %d)", seconds(r.NVProfTime), r.NVProfPct, r.NVProfPos)
			} else {
				nv = "-"
			}
		}
		hpc := "-"
		if r.HPCPos > 0 {
			hpc = fmt.Sprintf("%s (%.1f%%, %d)", seconds(r.HPCTime), r.HPCPct, r.HPCPos)
		}
		dio := "-"
		if r.DiogenesListed {
			dio = fmt.Sprintf("%s (%.2f%%, %d)", seconds(r.DiogenesSavings), r.DiogenesPct, r.DiogenesPos)
		}
		fmt.Fprintf(w, "%-26s %-24s %-24s %-24s\n", r.Func, nv, hpc, dio)
	}
	return nil
}

// Table2Sections writes Table 2 for several applications: one section per
// name, blank-line separated. The CLI and the analysis service both render
// through this function, so a served table2 report is byte-identical to
// the terminal output for the same request.
func Table2Sections(w io.Writer, names []string, sections [][]experiments.Table2Row) error {
	for i, rows := range sections {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := Table2(w, names[i], rows); err != nil {
			return err
		}
	}
	return nil
}

// AutofixTable writes the §6 verification table: every application's
// manual fix next to the automatic correction. Shared by the CLI verify
// command and the analysis service.
func AutofixTable(w io.Writer, rows []experiments.AutofixRow) error {
	if _, err := fmt.Fprintf(w, "%-18s %-22s %-26s %-14s %s\n",
		"Application", "Manual fix (paper's)", "Automatic fix (elision)", "Calls elided", "Guard"); err != nil {
		return err
	}
	for _, r := range rows {
		guard := "ok"
		if !r.Valid {
			guard = "REJECTED: " + r.GuardViolation
		}
		fmt.Fprintf(w, "%-18s %8.3fs (%5.2f%%)    %8.3fs (%5.2f%%; est %.3fs) %10d    %s\n",
			r.App,
			r.ManualActual.Seconds(), r.ManualActualPct,
			r.AutoRealized.Seconds(), r.AutoRealizedPct, r.AutoEstimated.Seconds(),
			r.CallsElided, guard)
	}
	return nil
}

// AutofixPlan writes a patch plan: the corrections, their estimates, and
// the problems the planner declined.
func AutofixPlan(w io.Writer, plan PlanView) error {
	if _, err := fmt.Fprintf(w, "Automatic correction plan — %s\n", plan.App); err != nil {
		return err
	}
	for i, a := range plan.Actions {
		fmt.Fprintf(w, "%2d. [%-32s] %-44s %10s (%d sites)\n",
			i+1, a.Kind, a.Label, seconds(a.Estimated), a.Count)
	}
	fmt.Fprintf(w, "    total estimated benefit: %s\n", seconds(plan.Estimated))
	for _, s := range plan.Skipped {
		fmt.Fprintf(w, "    skipped: %s\n", s)
	}
	return nil
}

// PlanView is the renderer-facing shape of an autofix plan (kept local so
// report does not import autofix; the CLI adapts).
type PlanView struct {
	App       string
	Estimated simtime.Duration
	Actions   []PlanAction
	Skipped   []string
}

// PlanAction is one rendered correction.
type PlanAction struct {
	Kind      string
	Label     string
	Estimated simtime.Duration
	Count     int
}

// OverheadSummary writes the §5.3 data-collection cost summary for a
// report. It renders through the shared timeline model, so the terminal
// text, the Markdown document and the served timeline view all read the
// same stage ledger.
func OverheadSummary(w io.Writer, rep *ffm.Report) error {
	return OverheadFromModel(w, timeline.FromReport("run", rep))
}

// OverheadFromModel writes the §5.3 summary from a timeline model's
// overlays — the text renderer of the shared timeline source of truth.
func OverheadFromModel(w io.Writer, m *timeline.Model) error {
	if _, err := fmt.Fprintf(w, "Data collection cost — %s\n", m.Meta.App); err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-26s%s\n", "uninstrumented execution:", seconds(m.Reference))
	for i, o := range m.Overlays {
		fmt.Fprintf(w, "  %-26s%s\n", fmt.Sprintf("stage %d (%s):", i+1, o.Label), seconds(o.Time))
	}
	fmt.Fprintf(w, "  %-26s%s (%.1fx)\n", "total collection:",
		seconds(m.Collection()), m.OverheadMultiple())
	return nil
}

// OverlapSummary writes the CPU/GPU overlap statistics of the reference run.
func OverlapSummary(w io.Writer, st ffm.OverlapStats) error {
	if _, err := fmt.Fprintf(w, "CPU/GPU overlap (uninstrumented run)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "  execution:      %s\n", seconds(st.ExecTime))
	fmt.Fprintf(w, "  GPU busy:       %s (%.1f%% utilization)\n", seconds(st.GPUBusy), 100*st.GPUUtilization)
	fmt.Fprintf(w, "  GPU idle:       %s\n", seconds(st.GPUIdle))
	fmt.Fprintf(w, "  CPU blocked:    %s (%.1f%% of execution)\n", seconds(st.CPUBlocked), 100*st.BlockedShare)
	return nil
}
