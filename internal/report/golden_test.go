package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"diogenes/internal/experiments"
)

// The pipeline is deterministic (virtual time, fixed seeds), so its
// rendered markdown is a stable artifact. Golden files pin it: any
// rendering or analysis drift shows up as a readable diff instead of a
// silent change. Regenerate with:
//
//	go test ./internal/report/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenScale keeps the goldens fast to regenerate while exercising every
// section of the document.
const goldenScale = 0.05

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (regenerate with -update)", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenMarkdown(t *testing.T) {
	eng := experiments.NewEngine(1)
	for _, app := range []string{"rodinia_gaussian", "cuibm", "amg"} {
		rep, err := eng.RunApp(app, goldenScale)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteMarkdown(&buf, rep); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, app+".md.golden", buf.Bytes())
	}
}

func TestGoldenFleetTable(t *testing.T) {
	fr, err := experiments.NewEngine(1).Fleet("amg", goldenScale, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FleetTable(&buf, fr); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fleet_amg.txt.golden", buf.Bytes())
}

func TestGoldenTable1(t *testing.T) {
	rows, err := experiments.NewEngine(1).Table1(goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Table1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.txt.golden", buf.Bytes())
}

func TestGoldenTable2Sections(t *testing.T) {
	names := []string{"rodinia_gaussian", "cuibm"}
	sections, err := experiments.NewEngine(1).Table2(goldenScale, names)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Table2Sections(&buf, names, sections); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2.txt.golden", buf.Bytes())
}
