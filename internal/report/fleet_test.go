package report

import (
	"bytes"
	"strings"
	"testing"

	"diogenes/internal/ffm"
	"diogenes/internal/simtime"
)

// TestFleetTablePartial pins the degraded rendering: a partial fleet
// report names its failed ranks prominently, marks their rows, and still
// renders every aggregate section for the survivors.
func TestFleetTablePartial(t *testing.T) {
	fr := &ffm.FleetReport{
		App:         "amg",
		Ranks:       3,
		Analyzed:    2,
		Partial:     true,
		FailedRanks: []int{1},
		PerRank: []ffm.RankOutcome{
			{Rank: 0, Attempts: 1, ExecTime: 80 * simtime.Millisecond,
				TotalBenefit: 10 * simtime.Millisecond, Problems: 4},
			{Rank: 1, Attempts: 2, Retried: true, Err: "pipeline panicked: injected"},
			{Rank: 2, Attempts: 2, Retried: true, ExecTime: 80 * simtime.Millisecond,
				TotalBenefit: 10 * simtime.Millisecond, Problems: 4},
		},
		Duplicates: []ffm.FleetDuplicate{
			{Hash: "00aa11bb22cc33dd", Func: "cudaMemcpyAsync", Ranks: []int{0, 2}, Records: 2, Bytes: 8192},
		},
		CrossRankDupBytes: 8192,
		Problems: []ffm.FleetProblem{
			{Kind: "folded function", Label: "Fold on cudaFree", Ranks: []int{0, 2},
				Total: 20 * simtime.Millisecond, Min: 10 * simtime.Millisecond,
				Max: 10 * simtime.Millisecond, MinRank: 0, MaxRank: 2},
		},
	}
	var buf bytes.Buffer
	if err := FleetTable(&buf, fr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"DEGRADED: 1/3 rank pipelines failed; aggregates cover the 2 surviving ranks",
		"rank 1 (2 attempts): pipeline panicked: injected",
		"FAILED",
		"retried",
		"cudaMemcpyAsync",
		"unavailable (whole-world reference run failed)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("partial fleet table missing %q\n%s", want, out)
		}
	}
}
