package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"diogenes/internal/ffm"
)

// TestServedFleetJob is the fleet acceptance scenario at the serving
// layer: a fleet job runs every rank's pipeline, its document carries the
// cross-rank aggregation, and an identical resubmission is answered from
// the persistent store without re-running anything.
func TestServedFleetJob(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"kind":"fleet","app":"amg","ranks":2,"scale":0.02}`
	code, v1, _, _ := postJob(t, ts, body)
	if code != 202 {
		t.Fatalf("fleet submit: status %d", code)
	}
	if v1.Ranks != 2 {
		t.Fatalf("view ranks = %d, want 2", v1.Ranks)
	}
	done := waitState(t, ts, v1.ID)
	if done.Status != StateDone || done.FromStore {
		t.Fatalf("fleet job: %+v", done)
	}

	var fr ffm.FleetReport
	payload := getReport(t, ts, v1.ID, "json")
	if err := json.Unmarshal(payload, &fr); err != nil {
		t.Fatalf("decode fleet payload: %v", err)
	}
	if fr.App != "amg" || fr.Ranks != 2 || fr.Partial {
		t.Fatalf("fleet report header: %+v", fr)
	}
	if len(fr.Duplicates) == 0 {
		t.Fatal("served fleet report found no cross-rank duplicate transfers")
	}
	text := getReport(t, ts, v1.ID, "text")
	if !bytes.Contains(text, []byte("Diogenes Fleet Analysis")) ||
		!bytes.Contains(text, []byte("Cross-rank duplicate transfers")) {
		t.Fatalf("text rendering missing fleet sections:\n%s", text)
	}

	// The complete (non-partial) document persisted: the identical
	// request is a store hit and runs nothing.
	code, v2, _, _ := postJob(t, ts, body)
	if code != 200 {
		t.Fatalf("repeat fleet submit: status %d, want 200 (served from store)", code)
	}
	if !v2.FromStore || v2.Status != StateDone {
		t.Fatalf("repeat fleet job not served from store: %+v", v2)
	}
	if v2.SpansTotal != 0 {
		t.Fatalf("store-served fleet job recorded %d spans", v2.SpansTotal)
	}
	if !bytes.Equal(payload, getReport(t, ts, v2.ID, "json")) {
		t.Fatal("stored fleet document differs from the computed one")
	}

	// A different world size is a different content address — it must
	// miss the store and run.
	code, v3, _, _ := postJob(t, ts, `{"kind":"fleet","app":"amg","ranks":3,"scale":0.02}`)
	if code != 202 {
		t.Fatalf("3-rank fleet submit: status %d, want 202 (store miss)", code)
	}
	if v := waitState(t, ts, v3.ID); v.Status != StateDone || v.FromStore {
		t.Fatalf("3-rank fleet job: %+v", v)
	}
}
