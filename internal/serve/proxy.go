package serve

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"time"

	"diogenes/internal/serve/cluster"
)

// Cluster-mode HTTP headers.
const (
	// forwardedHeader marks a request that already crossed one node — the
	// hop guard. A node receiving it executes locally no matter what the
	// ring says, so a stale or disagreeing peer list can produce at most
	// one extra hop, never a forwarding loop.
	forwardedHeader = "X-Diogenes-Forwarded"
	// nodeHeader names the node that actually answered a request.
	nodeHeader = "X-Diogenes-Node"
	// ownerHeader names the ring owner of a submission's key, when known.
	ownerHeader = "X-Diogenes-Owner"
	// degradedHeader marks a response produced locally because the key's
	// owner was unreachable.
	degradedHeader = "X-Diogenes-Degraded"
)

// proxyConnectTimeout bounds dialing a peer; a peer that cannot be
// reached this fast is treated as down and the request degrades.
const proxyConnectTimeout = 2 * time.Second

// proxyHeaderTimeout bounds how long a peer may sit on a proxied request
// before sending response headers. Generous: the peer may be answering
// from a cold store, but a submission response never takes minutes.
const proxyHeaderTimeout = 2 * time.Minute

// newProxyClient builds the inter-node HTTP client. No overall timeout:
// a proxied SSE stream lives as long as the job it watches. Liveness
// comes from the connect and header bounds plus the stream's own
// heartbeats.
func newProxyClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: proxyConnectTimeout}).DialContext,
			ResponseHeaderTimeout: proxyHeaderTimeout,
			MaxIdleConnsPerHost:   16,
		},
	}
}

// Cluster returns the shard-group view, nil in single-node mode.
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// ownerKey computes the content-addressed store key a request would
// persist under, for placement. ok is false for invalid requests and for
// kinds with no key (replay) — both always execute wherever they arrive.
func (s *Server) ownerKey(req Request) (string, bool) {
	if err := req.normalize(); err != nil {
		return "", false
	}
	key, ok := s.keyFor(s.engineFor(&req, nil), req)
	return key, ok && key != ""
}

// forwarded reports whether the request already crossed a node — the hop
// guard.
func forwarded(r *http.Request) bool { return r.Header.Get(forwardedHeader) != "" }

// routeSubmit decides where a submission runs. It returns true when the
// request was fully answered by forwarding to the key's owner; false
// means the caller must execute locally (this node owns the key, the
// request is unroutable, the hop guard fired, or the owner is down — in
// the last case the response is stamped with degradedHeader).
func (s *Server) routeSubmit(w http.ResponseWriter, r *http.Request, req Request, body []byte) bool {
	if s.cluster == nil || forwarded(r) {
		return false
	}
	key, ok := s.ownerKey(req)
	if !ok {
		return false
	}
	owner := s.cluster.Owner(key)
	w.Header().Set(ownerHeader, owner)
	if owner == s.cluster.Self() {
		return false
	}
	if s.proxyTo(w, r, owner, body) {
		s.mForwarded.Inc()
		return true
	}
	// The owner is unreachable: degrade to local execution rather than
	// failing the submission. The local store keeps the result; the
	// response says so, honestly.
	s.mDegraded.Inc()
	w.Header().Set(degradedHeader, "owner-unreachable")
	return false
}

// routeJobID decides where a /jobs/{id}... request is answered. It
// returns true when the request was proxied to the node that created the
// job. false means the caller serves locally — the ID is local,
// unqualified, the hop guard fired, or the cluster is off. A remote node
// that cannot be reached answers 502 here (handled == true): unlike a
// submission, a lookup cannot degrade to local execution, because the
// job's state lives only on its node.
func (s *Server) routeJobID(w http.ResponseWriter, r *http.Request, id string) (handled bool) {
	if s.cluster == nil || forwarded(r) {
		return false
	}
	node, _, ok := cluster.SplitJobID(id)
	if !ok || node == s.cluster.SelfName() {
		return false
	}
	addr, ok := s.cluster.AddrOf(node)
	if !ok {
		return false // unknown node name: local lookup will 404 honestly
	}
	if s.proxyTo(w, r, addr, nil) {
		s.mProxied.Inc()
		return true
	}
	writeJSON(w, http.StatusBadGateway, errorBody{
		Error: "job " + id + " lives on node " + node + " (" + addr + "), which is unreachable",
	})
	return true
}

// proxyTo replays the request against addr with the hop guard set and
// streams the response through verbatim — status, headers, and body
// bytes, flushed as they arrive so proxied SSE frames reach the client
// live. It reports false (with nothing written) when the peer cannot be
// reached or refuses the connection; once the response status has been
// copied the proxying is committed.
func (s *Server) proxyTo(w http.ResponseWriter, r *http.Request, addr string, body []byte) bool {
	url := "http://" + addr + r.URL.RequestURI()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		return false
	}
	req.Header.Set(forwardedHeader, s.cluster.Self())
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := s.proxyClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	// The origin's node stamp wins over the one this node's wrapper set.
	w.Header().Del(nodeHeader)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	return true
}

// flushCopy copies src to w, flushing after every read so streamed
// responses (SSE) are delivered frame-by-frame instead of buffered.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
