package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"diogenes/internal/experiments"
	"diogenes/internal/obs"
)

// hexKey builds a distinct valid (lower-case hex) store key.
func hexKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func TestDiskStoreRoundTrip(t *testing.T) {
	d, err := OpenDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := hexKey(0)
	if _, err := d.Get(key); !errors.Is(err, experiments.ErrNotFound) {
		t.Fatalf("Get before Put: %v, want ErrNotFound", err)
	}
	val := []byte(`{"report":"payload"}`)
	if err := d.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, want %q", got, val)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	// Overwrite under the same key is fine (content-addressed, so the
	// value is the same in practice; atomicity is what matters).
	if err := d.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len after re-put = %d, want 1", d.Len())
	}
}

func TestDiskStoreRejectsHostileKeys(t *testing.T) {
	d, err := OpenDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"",
		"../escape",
		"ABCDEF",                 // upper-case
		"zzzz",                   // not hex
		"a/b",                    // separator
		strings.Repeat("a", 129), // too long
	} {
		if err := d.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a hostile key", key)
		}
		if _, err := d.Get(key); err == nil || errors.Is(err, experiments.ErrNotFound) {
			t.Errorf("Get(%q) did not reject the key", key)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("hostile keys created %d entries", d.Len())
	}
}

func TestDiskStoreEvictsLRU(t *testing.T) {
	// Budget fits two 100-byte entries; a third evicts the least recently
	// used one.
	d, err := OpenDiskStore(t.TempDir(), 220)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewRegistry()
	d.SetMetrics(m)
	val := bytes.Repeat([]byte("x"), 100)

	if err := d.Put(hexKey(0), val); err != nil {
		t.Fatal(err)
	}
	// Filesystem mtime granularity can be coarse; space the writes out.
	time.Sleep(20 * time.Millisecond)
	if err := d.Put(hexKey(1), val); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// Touch key 0 so key 1 becomes the LRU entry.
	if _, err := d.Get(hexKey(0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := d.Put(hexKey(2), val); err != nil {
		t.Fatal(err)
	}

	if _, err := d.Get(hexKey(1)); !errors.Is(err, experiments.ErrNotFound) {
		t.Fatalf("LRU entry survived: %v", err)
	}
	for _, i := range []int{0, 2} {
		if _, err := d.Get(hexKey(i)); err != nil {
			t.Fatalf("recently used key %d evicted: %v", i, err)
		}
	}
	if got := m.Counter("store/evictions").Value(); got != 1 {
		t.Fatalf("store/evictions = %d, want 1", got)
	}
}

func TestDiskStoreEvictionDeterministicOnSharedMtime(t *testing.T) {
	// Filesystem mtime resolution is bounded: two entries touched within
	// one timestamp tick compare equal, and an mtime-only sort would pick
	// an arbitrary victim. Force that tie with Chtimes and assert the
	// in-memory access stamps break it in true use order.
	dir := t.TempDir()
	d, err := OpenDiskStore(dir, 220)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 100)
	if err := d.Put(hexKey(0), val); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(hexKey(1), val); err != nil {
		t.Fatal(err)
	}
	// Key 0 is now the more recently used entry — but collapse both
	// mtimes onto one tick so the filesystem cannot tell.
	if _, err := d.Get(hexKey(0)); err != nil {
		t.Fatal(err)
	}
	tick := time.Now().Add(-time.Minute)
	for _, i := range []int{0, 1} {
		if err := os.Chtimes(filepath.Join(dir, hexKey(i)+storeExt), tick, tick); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Put(hexKey(2), val); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(hexKey(1)); !errors.Is(err, experiments.ErrNotFound) {
		t.Fatalf("least recently used tied entry survived: %v", err)
	}
	if _, err := d.Get(hexKey(0)); err != nil {
		t.Fatalf("recently used tied entry evicted: %v", err)
	}
}

func TestDiskStoreEvictionDeterministicForUntouchedEntries(t *testing.T) {
	// A fresh instance has no access history for entries written by a
	// previous process. With their mtimes tied, the victim must still be
	// deterministic: lowest path.
	dir := t.TempDir()
	writer, err := OpenDiskStore(dir, 220)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("x"), 100)
	if err := writer.Put(hexKey(0), val); err != nil {
		t.Fatal(err)
	}
	if err := writer.Put(hexKey(1), val); err != nil {
		t.Fatal(err)
	}
	tick := time.Now().Add(-time.Minute)
	for _, i := range []int{0, 1} {
		if err := os.Chtimes(filepath.Join(dir, hexKey(i)+storeExt), tick, tick); err != nil {
			t.Fatal(err)
		}
	}
	d, err := OpenDiskStore(dir, 220)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(hexKey(2), val); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(hexKey(0)); !errors.Is(err, experiments.ErrNotFound) {
		t.Fatalf("lowest-path tied entry survived: %v", err)
	}
	if _, err := d.Get(hexKey(1)); err != nil {
		t.Fatalf("wrong tied entry evicted: %v", err)
	}
}

func TestDiskStoreNeverEvictsJustWritten(t *testing.T) {
	// A single oversized entry stays — the budget is soft by one document.
	d, err := OpenDiskStore(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(hexKey(0), bytes.Repeat([]byte("x"), 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(hexKey(0)); err != nil {
		t.Fatalf("oversized just-written entry evicted: %v", err)
	}
}

func TestDiskStoreToleratesForeignRemoval(t *testing.T) {
	// Another process (or instance) removing a file behind our back is a
	// miss, not an error.
	dir := t.TempDir()
	d, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(hexKey(0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, hexKey(0)+storeExt)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(hexKey(0)); !errors.Is(err, experiments.ErrNotFound) {
		t.Fatalf("foreign removal: %v, want ErrNotFound", err)
	}
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	// Stray files without the store extension are neither counted nor
	// evicted.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hands off"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(hexKey(0), bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file touched: %v", err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}
