package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTwoServersSharedStoreRace is the shared-store race scenario: two
// independent servers (two engines) point at one on-disk store directory
// while clients concurrently submit, cancel, and poll status. Run under
// `go test -race` this exercises the queue, job manager, in-memory
// cache, and cross-instance store eviction tolerance at once.
func TestTwoServersSharedStoreRace(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Server {
		s, err := New(Options{
			Workers:       2,
			QueueCapacity: 8,
			StoreDir:      dir,
			// A tight budget forces evictions under each other's feet.
			StoreBudget: 4 << 10,
			CacheBudget: 16 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	servers := []*Server{mk(), mk()}

	// A small scale set so servers repeatedly collide on the same store
	// keys — hits, overwrites, and evictions all race.
	scales := []float64{0.02, 0.03, 0.04}
	apps := []string{"rodinia_gaussian", "cuibm"}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []*Job
	for si, s := range servers {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(s *Server, seed int) {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					req := Request{
						Kind:  KindRun,
						App:   apps[(seed+i)%len(apps)],
						Scale: scales[(seed+i)%len(scales)],
					}
					j, err := s.Submit(req)
					if err != nil {
						// Backpressure is a legitimate outcome; retry later.
						time.Sleep(time.Millisecond)
						continue
					}
					mu.Lock()
					accepted = append(accepted, j)
					mu.Unlock()
					// Poll status concurrently with execution, and cancel a
					// fraction of the jobs mid-flight.
					_ = j.View()
					if (seed+i)%5 == 0 {
						s.Cancel(j.ID)
					}
					_ = j.View()
				}
			}(s, si*3+g)
		}
	}
	wg.Wait()

	// Drain both servers; every accepted job must reach a terminal state.
	for _, s := range servers {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("shutdown: %v", err)
		}
		cancel()
	}
	for _, j := range accepted {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s (%s) not terminal after drain: %s", j.ID, j.Req.App, j.State())
		}
		if !j.terminal() {
			t.Fatalf("job %s state %s not terminal", j.ID, j.State())
		}
	}

	// The shared directory respected the byte budget (softly: each
	// instance tolerates at most one oversized resident entry).
	store := servers[0].Store()
	if store.Len() == 0 {
		t.Fatal("shared store empty after the run")
	}
}

// TestConcurrentSubmitStatusCancelHTTPFree hammers a single server's
// public API from many goroutines without HTTP in the way — the pure
// in-process race surface.
func TestConcurrentSubmitStatusCancelHTTPFree(t *testing.T) {
	s, err := New(Options{Workers: 4, QueueCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				j, err := s.Submit(Request{Kind: KindRun, App: "rodinia_gaussian", Scale: 0.02 + float64(seed%3)*0.01})
				if err != nil {
					continue
				}
				switch i % 3 {
				case 0:
					s.Cancel(j.ID)
				case 1:
					_ = s.Job(j.ID).View()
				default:
					_ = s.Jobs()
				}
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Post-drain invariant: no live jobs remain.
	for _, j := range s.Jobs() {
		if !j.terminal() {
			t.Fatalf("job %s still %s after drain", j.ID, j.State())
		}
	}
}
