// Package serve runs the Diogenes analysis pipeline as a long-lived
// daemon behind an HTTP/JSON API — the serving layer the one-shot CLI
// lacks. Three pieces, each honest about its limits:
//
//   - A job manager: POST an analysis request (application, scale,
//     experiment kind, worker count), get a job ID back. Jobs flow
//     through a bounded sched.Queue into a worker set with per-job
//     context cancellation and a configurable timeout. A full backlog is
//     *visible* backpressure — HTTP 429 with Retry-After — never
//     unbounded buffering, and a job the server accepted is never
//     dropped, even across graceful shutdown.
//   - A report store: completed job documents persist to a
//     content-addressed on-disk store keyed by the experiments suite key,
//     so an identical request is served from disk without re-running the
//     pipeline. The store carries an LRU byte budget; eviction is
//     explicit and counted.
//   - An operational surface: /healthz, job status with progress derived
//     from the job's own obs span state, report retrieval as JSON or the
//     CLI-identical text rendering, and /metrics exporting the server's
//     obs registry.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"path/filepath"

	"diogenes/internal/experiments"
	"diogenes/internal/ledger"
	"diogenes/internal/obs"
	"diogenes/internal/sched"
	"diogenes/internal/serve/cluster"
)

// ledgerName is the provenance ledger's file inside the store directory.
// Store keys are hex, so the name can never collide with an entry.
const ledgerName = "ledger.log"

// Options configures a Server. The zero value is serviceable: an
// in-memory-only server (no persistent store) with a 16-job backlog and
// one job running per core.
type Options struct {
	// Workers bounds how many jobs execute concurrently; 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueCapacity bounds how many accepted jobs may wait for a worker;
	// beyond it submissions are rejected with ErrQueueFull. 0 selects 16.
	QueueCapacity int
	// EngineWorkers is the default per-job experiment engine width when a
	// request does not name one; 0 selects 1 (serial, byte-identical to
	// the parallel widths anyway).
	EngineWorkers int
	// DefaultTimeout caps each job's execution when the request carries no
	// timeout of its own; 0 means no cap.
	DefaultTimeout time.Duration
	// RetryAfter is the fallback backoff hint sent with 429/503 responses
	// before any job has completed; once the server has observed job
	// durations the hint is derived from the live queue depth and the
	// mean job time instead. 0 selects one second.
	RetryAfter time.Duration
	// StoreDir, when non-empty, enables the persistent report store in
	// that directory (created if absent).
	StoreDir string
	// StoreBudget is the on-disk store's LRU byte budget; 0 is unbounded.
	StoreBudget int64
	// LedgerBatch is the provenance ledger's Merkle batch size — how many
	// persisted reports seal into one root. 1 seals (and syncs) every
	// append, the direct mode; 0 selects ledger.DefaultBatchSize. Only
	// meaningful with StoreDir.
	LedgerBatch int
	// LedgerFlush bounds how long an appended digest may wait in the open
	// batch before a timer seals it; 0 selects
	// ledger.DefaultFlushInterval, negative disables the timer.
	LedgerFlush time.Duration
	// CacheBudget bounds the in-memory report cache shared by all jobs;
	// 0 is unbounded.
	CacheBudget int64
	// RetainJobs bounds how many finished job records the manager keeps
	// for status queries; 0 selects 1024. Live jobs are never dropped.
	RetainJobs int
	// FleetSpillBudget caps the estimated resident bytes of each fleet
	// job's parked reduction partials; beyond it sealed partials spill to
	// a per-job temp directory. 0 never spills.
	FleetSpillBudget int64
	// Cluster, when non-nil, makes this instance one node of a shard
	// group: content-addressed submissions route to their consistent-hash
	// owner (executed locally when this node owns the key or the owner is
	// unreachable, forwarded otherwise), job IDs carry this node's name,
	// and job lookups for other nodes' IDs proxy to the node that created
	// them. Nil is single-node mode, byte-identical to a server that has
	// never heard of clustering.
	Cluster *cluster.Cluster
	// EventSnapshot is the cadence at which GET /jobs/{id}/events emits
	// progress frames while a job runs (on top of change-driven frames
	// from the span trace); 0 selects 250ms.
	EventSnapshot time.Duration
	// EventHeartbeat is the SSE keep-alive comment interval — what lets a
	// proxy or client distinguish a quiet stream from a dead one; 0
	// selects 15s.
	EventHeartbeat time.Duration
}

// Sentinel errors Submit maps to HTTP statuses.
var (
	// ErrQueueFull reports that the bounded backlog rejected the job —
	// the server's backpressure signal (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrShuttingDown reports that the server no longer accepts jobs
	// (HTTP 503).
	ErrShuttingDown = errors.New("serve: shutting down")
)

// BadRequestError wraps a request validation failure (HTTP 400).
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// Server is the analysis service. Create with New, mount Handler, and
// call Shutdown to drain.
type Server struct {
	opts   Options
	obs    *obs.Observer
	cache  *experiments.ReportCache
	store  *DiskStore
	ledger *ledger.Ledger
	queue  *sched.Queue
	jobs   *manager
	mux    *http.ServeMux

	// cluster is the shard-group view (nil single-node); proxyClient
	// carries forwarded submissions and proxied lookups between nodes.
	// It deliberately has no overall timeout — SSE proxying streams for a
	// job's whole lifetime — only connect and response-header bounds.
	cluster     *cluster.Cluster
	proxyClient *http.Client

	accepting atomic.Bool

	// Completed-execution wall time, feeding the Retry-After hint: the
	// mean job duration scales the backoff with how long the backlog
	// actually takes to drain.
	jobNanos atomic.Int64
	jobCount atomic.Int64

	mSubmitted   *obs.Counter
	mRejected    *obs.Counter
	mCompleted   *obs.Counter
	mFailed      *obs.Counter
	mCanceled    *obs.Counter
	mStorePutErr *obs.Counter
	mForwarded   *obs.Counter
	mProxied     *obs.Counter
	mDegraded    *obs.Counter

	// hookRunning, when non-nil, is called as each job enters the running
	// state — a test seam for holding jobs in flight deterministically.
	hookRunning func(j *Job)
	// hookCanceled, when non-nil, is called by handleCancel between
	// canceling the job and rendering its view — the window where
	// retention shedding once raced the handler's re-lookup.
	hookCanceled func(id string)
	// retryAfterFn renders the 429/503 backoff hint; defaults to
	// retryAfterSeconds, replaceable in tests to pin that one handler
	// response derives header and body from a single computation.
	retryAfterFn func() int
}

// New builds a started server (its workers idle until jobs arrive).
func New(opts Options) (*Server, error) {
	if opts.QueueCapacity == 0 {
		opts.QueueCapacity = 16
	}
	if opts.QueueCapacity < 1 {
		return nil, fmt.Errorf("serve: queue capacity %d, need at least 1", opts.QueueCapacity)
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.RetainJobs == 0 {
		opts.RetainJobs = 1024
	}
	if opts.EventSnapshot <= 0 {
		opts.EventSnapshot = 250 * time.Millisecond
	}
	if opts.EventHeartbeat <= 0 {
		opts.EventHeartbeat = 15 * time.Second
	}
	idPrefix := ""
	if opts.Cluster != nil {
		idPrefix = opts.Cluster.SelfName() + "-"
	}
	o := obs.New("diogenes-serve")
	s := &Server{
		opts:    opts,
		obs:     o,
		cache:   experiments.NewReportCache(),
		jobs:    newManager(opts.RetainJobs, idPrefix),
		cluster: opts.Cluster,

		mSubmitted:   o.Metrics().Counter("serve/jobs_submitted"),
		mRejected:    o.Metrics().Counter("serve/jobs_rejected"),
		mCompleted:   o.Metrics().Counter("serve/jobs_completed"),
		mFailed:      o.Metrics().Counter("serve/jobs_failed"),
		mCanceled:    o.Metrics().Counter("serve/jobs_canceled"),
		mStorePutErr: o.Metrics().Counter("serve/store_put_errors"),
		mForwarded:   o.Metrics().Counter("serve/cluster_forwarded"),
		mProxied:     o.Metrics().Counter("serve/cluster_proxied"),
		mDegraded:    o.Metrics().Counter("serve/cluster_degraded"),
	}
	s.retryAfterFn = s.retryAfterSeconds
	if s.cluster != nil {
		s.proxyClient = newProxyClient()
	}
	s.cache.SetMetrics(o.Metrics())
	if opts.CacheBudget > 0 {
		s.cache.SetByteBudget(opts.CacheBudget)
	}
	if opts.StoreDir != "" {
		store, err := OpenDiskStore(opts.StoreDir, opts.StoreBudget)
		if err != nil {
			return nil, err
		}
		store.SetMetrics(o.Metrics())
		s.store = store
		led, err := ledger.Open(ledger.Config{
			Path:          filepath.Join(opts.StoreDir, ledgerName),
			BatchSize:     opts.LedgerBatch,
			FlushInterval: opts.LedgerFlush,
			Metrics:       o.Metrics(),
		})
		switch {
		case errors.Is(err, ledger.ErrLocked):
			// Another live instance shares this store directory and holds
			// the ledger; this one serves without appending — the single
			// writer keeps the chain linear. Its reports still persist;
			// they are simply vouched for by the lock holder's appends
			// when it writes the same content-addressed keys.
		case err != nil:
			// A ledger that does not replay (ErrCorrupt) or cannot be
			// opened must stop the daemon: silently serving from a store
			// whose provenance is broken is exactly the dishonesty the
			// ledger exists to prevent.
			return nil, err
		default:
			s.ledger = led
			store.AttachLedger(led)
		}
	}
	q, err := sched.NewQueue(opts.Workers, opts.QueueCapacity, o.Metrics())
	if err != nil {
		return nil, err
	}
	s.queue = q
	s.accepting.Store(true)
	s.buildMux()
	return s, nil
}

// Observer exposes the server-level self-measurement (queue, store,
// cache, job counters) — what /metrics renders.
func (s *Server) Observer() *obs.Observer { return s.obs }

// Store returns the persistent report store, or nil when disabled.
func (s *Server) Store() *DiskStore { return s.store }

// Ledger returns the provenance ledger, or nil when the store is
// disabled or another instance holds the single-writer lock.
func (s *Server) Ledger() *ledger.Ledger { return s.ledger }

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Submit validates a request and either answers it from the persistent
// store (the returned job is already done, FromStore set) or enqueues it.
// Errors: *BadRequestError, ErrQueueFull, ErrShuttingDown.
func (s *Server) Submit(req Request) (*Job, error) {
	if !s.accepting.Load() {
		return nil, ErrShuttingDown
	}
	if err := req.normalize(); err != nil {
		return nil, &BadRequestError{err}
	}
	s.mSubmitted.Inc()

	jobObs := obs.New("job")
	eng := s.engineFor(&req, jobObs)
	key, _ := s.keyFor(eng, req)
	timeout := time.Duration(req.TimeoutSeconds * float64(time.Second))
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	j := newJob(req, jobObs, key, timeout)
	if req.Kind == KindFleet {
		// Fleet jobs stream reduction progress straight from the
		// engine's accumulator counters.
		j.fleetProgress = eng.FleetProgress
	}

	if key != "" && s.store != nil && !req.Fresh {
		if data, err := s.store.Get(key); err == nil {
			j.markFromStore(data)
			s.jobs.add(j)
			s.mCompleted.Inc()
			return j, nil
		}
	}

	s.jobs.add(j)
	ok := s.queue.TryEnqueue(sched.Task{Name: "job/" + req.Kind, Class: classFor(req.Kind), Fn: s.taskFn(j, eng)})
	if !ok {
		s.jobs.remove(j.ID)
		s.mRejected.Inc()
		if !s.accepting.Load() {
			return nil, ErrShuttingDown
		}
		return nil, ErrQueueFull
	}
	return j, nil
}

// noteJobDuration records one completed job execution for the
// Retry-After hint.
func (s *Server) noteJobDuration(d time.Duration) {
	if d < 0 {
		return
	}
	s.jobNanos.Add(int64(d))
	s.jobCount.Add(1)
}

// meanJobNanos returns the observed mean job execution time, 0 before any
// job has completed.
func (s *Server) meanJobNanos() int64 {
	n := s.jobCount.Load()
	if n == 0 {
		return 0
	}
	return s.jobNanos.Load() / n
}

// Job returns a job by ID, or nil.
func (s *Server) Job(id string) *Job { return s.jobs.get(id) }

// Jobs returns all retained jobs in submission order.
func (s *Server) Jobs() []*Job { return s.jobs.list() }

// classFor maps an experiment kind to its queue admission class:
// single-application interactive kinds ahead of the bulk suites.
func classFor(kind string) sched.Class {
	switch kind {
	case KindRun, KindReplay:
		return sched.ClassInteractive
	}
	return sched.ClassBatch
}

// Cancel cancels a job: a queued job finishes immediately as canceled, a
// running job's context is canceled and its eventual result discarded.
// Canceling a finished job is a no-op. It returns the job, nil for an
// unknown ID — callers render the returned handle rather than looking
// the ID up again, because retention shedding may remove a finished job
// from the registry at any moment and a re-lookup can come back nil.
func (s *Server) Cancel(id string) *Job {
	j := s.jobs.get(id)
	if j == nil {
		return nil
	}
	j.cancel()
	if j.finishIfQueued(StateCanceled, "job canceled before start") {
		s.mCanceled.Inc()
	}
	return j
}

// Shutdown gracefully stops the server: new submissions are refused with
// ErrShuttingDown, every accepted job is drained (queued jobs run, the
// in-flight ones finish and persist their reports), and the store is
// flushed. The context bounds the drain; on expiry the drain continues in
// the background but Shutdown returns the context error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.accepting.Store(false)
	done := make(chan struct{})
	go func() {
		s.queue.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown drain: %w", ctx.Err())
	}
	// Every drained job's Put has appended by now; sealing the final
	// batch makes the last reports provable before the process exits.
	if s.ledger != nil {
		if err := s.ledger.Close(); err != nil {
			return fmt.Errorf("serve: shutdown ledger: %w", err)
		}
	}
	if s.store != nil {
		s.store.Flush()
	}
	return nil
}

// engineFor builds the per-job experiment engine: its own observer (so
// job progress and spans are attributable to exactly one job), the
// server-shared report cache, and the requested width. A fresh request
// runs uncached — "fresh" means the pipeline actually executes, not just
// that the disk store is skipped.
func (s *Server) engineFor(req *Request, o *obs.Observer) *experiments.Engine {
	w := req.Workers
	if w == 0 {
		w = s.opts.EngineWorkers
	}
	if w < 1 {
		w = 1
	}
	cache := s.cache
	if req.Fresh {
		cache = nil
	}
	e := &experiments.Engine{Workers: w, Cache: cache, Obs: o,
		FleetSpillBudget: s.opts.FleetSpillBudget}
	if w > 1 {
		e.StageWorkers = 2
	}
	return e
}

// keyFor computes the job's content-addressed store key ("" when the
// request is not cacheable).
func (s *Server) keyFor(eng *experiments.Engine, req Request) (string, bool) {
	switch req.Kind {
	case KindRun:
		return eng.SuiteKey(KindRun, req.Scale, []string{req.App})
	case KindFleet:
		return eng.FleetSuiteKey(req.App, req.Scale, req.Ranks)
	case KindTable1:
		return eng.SuiteKey(KindTable1, req.Scale, nil)
	case KindTable2:
		return eng.SuiteKey(KindTable2, req.Scale, req.Apps)
	case KindAutofix:
		return eng.SuiteKey(KindAutofix, req.Scale, nil)
	}
	return "", false
}
