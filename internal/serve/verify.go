package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"diogenes/internal/ledger"
)

// StoreAudit is the result of verifying a store directory against its
// provenance ledger: the ledger's own structural audit plus a
// re-hashing of every resident report file.
type StoreAudit struct {
	// Outcome classifies the store as a whole, folding the ledger audit
	// and the report re-hashing together.
	Outcome ledger.Outcome
	// Detail describes the first problem found ("" when clean).
	Detail string
	// Ledger is the underlying ledger file audit.
	Ledger *ledger.Audit
	// ReportsChecked counts resident report files whose bytes were
	// re-hashed and matched their ledger digest.
	ReportsChecked int
	// ReportsMissing counts ledgered keys with no resident file — evicted
	// by the LRU budget, which the ledger deliberately does not track.
	// Missing is absence of evidence, not evidence of tampering.
	ReportsMissing int
}

// VerifyStore audits the store directory at dir against its provenance
// ledger: it replays and re-verifies the ledger file (sequence
// continuity, every Merkle root recomputed, the hash chain), then
// re-hashes every resident report and compares it to the digest the
// ledger committed for its key.
//
// Classification:
//
//   - A resident report whose bytes do not hash to its ledgered digest
//     is Tampered — the store's contents changed after production.
//   - A resident report with no ledger entry at all is Tampered when the
//     ledger replays clean: either the file was planted, or complete
//     trailing ledger lines were removed. (In a multi-instance
//     deployment a lock-degraded sibling can persist unledgered reports
//     legitimately; verify-ledger assumes the single-writer layout.)
//   - When the ledger itself ends mid-entry, an unledgered resident
//     report is folded into the Truncated verdict instead: unsealed
//     leaf lines are not synced until their batch seals, so an OS crash
//     can durably keep a renamed report while losing the tail of the
//     ledger line that vouched for it.
//   - A ledgered key with no resident file is counted, not flagged —
//     indistinguishable from LRU eviction.
//
// The returned error is reserved for operational failures (unreadable
// directory, missing ledger file); integrity problems are reported
// through the StoreAudit.
func VerifyStore(dir string) (*StoreAudit, error) {
	la, err := ledger.VerifyFile(filepath.Join(dir, ledgerName))
	if err != nil {
		return nil, err
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: verify store: %w", err)
	}
	a := &StoreAudit{Ledger: la}
	resident := make(map[string]bool)
	var mismatch, unledgered []string
	var names []string
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), storeExt) {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names) // deterministic first-problem reporting
	for _, name := range names {
		key := strings.TrimSuffix(name, storeExt)
		resident[key] = true
		want, ok := la.Latest[key]
		if !ok {
			unledgered = append(unledgered, name)
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("serve: verify store: %w", err)
		}
		got := sha256.Sum256(data)
		if hex.EncodeToString(got[:]) != want {
			mismatch = append(mismatch, name)
			continue
		}
		a.ReportsChecked++
	}
	for key := range la.Latest {
		if !resident[key] {
			a.ReportsMissing++
		}
	}
	switch {
	case la.Outcome == ledger.Tampered:
		a.Outcome = ledger.Tampered
		a.Detail = "ledger: " + la.Detail
	case len(mismatch) > 0:
		a.Outcome = ledger.Tampered
		a.Detail = fmt.Sprintf("report %s does not hash to its ledgered digest", mismatch[0])
	case len(unledgered) > 0 && la.Outcome == ledger.Clean:
		a.Outcome = ledger.Tampered
		a.Detail = fmt.Sprintf("report %s is resident but has no ledger entry", unledgered[0])
	case la.Outcome == ledger.Truncated:
		a.Outcome = ledger.Truncated
		a.Detail = la.Detail
		if len(unledgered) > 0 {
			a.Detail = fmt.Sprintf("%s; report %s may be vouched for by the lost tail", la.Detail, unledgered[0])
		}
	default:
		a.Outcome = ledger.Clean
	}
	return a, nil
}
