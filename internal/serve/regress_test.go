package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestCancelSurvivesRetentionEviction is the regression test for the
// handleCancel nil-deref: the handler used to look the job up a second
// time after canceling it, and retention shedding (manager.add evicting
// terminal jobs past the RetainJobs bound) could remove the record in
// that window. The fix renders the handle Cancel itself returned. The
// hookCanceled seam forces the eviction deterministically inside the
// old race window.
func TestCancelSurvivesRetentionEviction(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4, RetainJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitState(t, ts, v.ID)

	// Between Cancel and the render, a new submission sheds the finished
	// job from the registry — exactly what the old second lookup raced.
	s.hookCanceled = func(id string) {
		if _, err := s.Submit(Request{Kind: KindRun, App: "amg", Scale: 0.05}); err != nil {
			t.Errorf("eviction-triggering submit: %v", err)
		}
		if s.Job(id) != nil {
			t.Errorf("job %s still registered; the test did not force the eviction", id)
		}
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d (the pre-fix server 404ed or crashed here): %s", resp.StatusCode, raw)
	}
	var got View
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != v.ID {
		t.Fatalf("cancel rendered job %q, want %q", got.ID, v.ID)
	}
}

// TestRetryAfterHeaderMatchesBody is the regression test for the double
// computation in handleSubmit: header and body each used to call
// retryAfterSeconds(), and the live queue depth could change between the
// two calls, shipping a response that disagreed with itself. The seam
// returns a different value on every call, so any second computation
// fails the test deterministically.
func TestRetryAfterHeaderMatchesBody(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var calls int
	var mu sync.Mutex
	s.retryAfterFn = func() int {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return 40 + calls // 41, 42, ... — never the same twice
	}

	// Pin the worker on the first job and fill the one queue slot, so the
	// third submission is turned away.
	entered := make(chan struct{})
	release := make(chan struct{})
	s.hookRunning = func(*Job) {
		close(entered)
		<-release
	}
	defer close(release)
	if code, _, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`); code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	<-entered
	if code, _, _, _ := postJob(t, ts, `{"kind":"run","app":"amg","scale":0.05}`); code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}

	code, _, resp, raw := postJob(t, ts, `{"kind":"run","app":"cuibm","scale":0.05}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429: %s", code, raw)
	}
	header, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After header %q: %v", resp.Header.Get("Retry-After"), err)
	}
	var body errorBody
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if header != body.RetryAfterSeconds {
		t.Fatalf("Retry-After header %d != body retryAfterSeconds %d (hint computed twice)",
			header, body.RetryAfterSeconds)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("retry hint computed %d times for one response, want once", calls)
	}
}

// TestServeInteractivePreemptsBatchBacklog pins the admission-class
// mapping end to end: with batch suites queued ahead of it, an
// interactive run submission is the next job the single worker starts.
func TestServeInteractivePreemptsBatchBacklog(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))

	var mu sync.Mutex
	var order []string
	entered := make(chan struct{})
	release := make(chan struct{})
	first := true
	s.hookRunning = func(j *Job) {
		mu.Lock()
		if first {
			first = false
			mu.Unlock()
			close(entered)
			<-release
			return
		}
		order = append(order, j.ID)
		mu.Unlock()
	}

	// Block the worker, then queue two batch suites and one interactive
	// run behind it.
	blocker, err := s.Submit(Request{Kind: KindRun, App: "rodinia_gaussian", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	b1, err := s.Submit(Request{Kind: KindFleet, App: "amg", Ranks: 2, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Submit(Request{Kind: KindTable1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := s.Submit(Request{Kind: KindRun, App: "cuibm", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	for _, j := range []*Job{blocker, b1, b2, inter} {
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s never finished", j.ID)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 {
		t.Fatalf("recorded %d starts after the blocker, want 3: %v", len(order), order)
	}
	if order[0] != inter.ID {
		t.Fatalf("worker started %v first; the interactive job %s must preempt the queued batch suites (order %v)",
			order[0], inter.ID, order)
	}
	if order[1] != b1.ID || order[2] != b2.ID {
		t.Fatalf("batch suites ran out of FIFO order: %v, want [%s %s]", order[1:], b1.ID, b2.ID)
	}
}
