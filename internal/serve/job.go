package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"diogenes/internal/apps"
	"diogenes/internal/ffm"
	"diogenes/internal/obs"
)

// Experiment kinds a job may request — the same entry points the CLI
// exposes as subcommands.
const (
	KindRun     = "run"     // full FFM pipeline on one application
	KindReplay  = "replay"  // full FFM pipeline re-driven from a captured trace
	KindFleet   = "fleet"   // all-ranks FFM with cross-rank aggregation
	KindTable1  = "table1"  // estimated vs actual benefit, all applications
	KindTable2  = "table2"  // profiler comparison for selected applications
	KindAutofix = "autofix" // automatic-correction verification table
)

// maxFleetRanks bounds a fleet request's world size. Aggregation streams
// in O(aggregate) memory, so the bound only caps a single submission's
// compute cost (one full pipeline per rank), which the job timeout
// already polices per deployment.
const maxFleetRanks = 1024

// Request is one analysis submission.
type Request struct {
	// Kind selects the experiment: run, replay, fleet, table1, table2 or
	// autofix.
	Kind string `json:"kind"`
	// App names the application for kinds "run" and "fleet" (see
	// `diogenes list`).
	App string `json:"app,omitempty"`
	// Apps selects applications for kind "table2"; empty means all.
	Apps []string `json:"apps,omitempty"`
	// Trace is an inline captured trace document (a `diogenes run
	// -records` export) for kind "replay".
	Trace json.RawMessage `json:"trace,omitempty"`
	// TraceKey addresses the trace of a previously stored "run" result
	// document for kind "replay" (alternative to inlining it).
	TraceKey string `json:"traceKey,omitempty"`
	// Ranks is the world size for kind "fleet"; 0 selects the
	// application's default.
	Ranks int `json:"ranks,omitempty"`
	// Scale is the workload scale; 0 selects 0.25, the CLI default.
	Scale float64 `json:"scale,omitempty"`
	// Workers is the per-job experiment engine width; 0 selects the
	// server default. Results are byte-identical for any width.
	Workers int `json:"workers,omitempty"`
	// TimeoutSeconds caps the job's execution; 0 selects the server
	// default.
	TimeoutSeconds float64 `json:"timeoutSeconds,omitempty"`
	// Fresh bypasses the persistent report store, forcing a re-run (the
	// result still overwrites the stored document).
	Fresh bool `json:"fresh,omitempty"`
}

// normalize validates the request and fills defaults in place.
func (r *Request) normalize() error {
	switch r.Kind {
	case KindRun:
		if r.App == "" {
			return fmt.Errorf("kind %q requires \"app\"", r.Kind)
		}
		if _, err := apps.ByName(r.App); err != nil {
			return err
		}
		if len(r.Apps) > 0 {
			return fmt.Errorf("kind %q takes \"app\", not \"apps\"", r.Kind)
		}
	case KindFleet:
		if r.App == "" {
			return fmt.Errorf("kind %q requires \"app\"", r.Kind)
		}
		spec, err := apps.ByName(r.App)
		if err != nil {
			return err
		}
		if spec.MPI == nil {
			return fmt.Errorf("kind %q needs an MPI-modelled application; %s is single-process", r.Kind, r.App)
		}
		if len(r.Apps) > 0 {
			return fmt.Errorf("kind %q takes \"app\", not \"apps\"", r.Kind)
		}
		if r.Ranks < 0 {
			return fmt.Errorf("ranks %d cannot be negative", r.Ranks)
		}
		if r.Ranks > maxFleetRanks {
			return fmt.Errorf("ranks %d exceeds the per-job limit %d", r.Ranks, maxFleetRanks)
		}
	case KindTable2:
		if r.App != "" {
			return fmt.Errorf("kind %q takes \"apps\", not \"app\"", r.Kind)
		}
		if len(r.Apps) == 0 {
			for _, spec := range apps.Registry() {
				r.Apps = append(r.Apps, spec.Name)
			}
		}
		for _, name := range r.Apps {
			if _, err := apps.ByName(name); err != nil {
				return err
			}
		}
	case KindReplay:
		if len(r.Trace) == 0 && r.TraceKey == "" {
			return fmt.Errorf("kind %q requires \"trace\" or \"traceKey\"", r.Kind)
		}
		if len(r.Trace) > 0 && r.TraceKey != "" {
			return fmt.Errorf("kind %q takes \"trace\" or \"traceKey\", not both", r.Kind)
		}
		if r.App != "" || len(r.Apps) > 0 {
			return fmt.Errorf("kind %q replays a captured trace; it takes no \"app\"/\"apps\"", r.Kind)
		}
		if r.Scale != 0 {
			return fmt.Errorf("kind %q takes no \"scale\"; the trace fixes the workload", r.Kind)
		}
	case KindTable1, KindAutofix:
		if r.App != "" || len(r.Apps) > 0 {
			return fmt.Errorf("kind %q runs every application; it takes no \"app\"/\"apps\"", r.Kind)
		}
	case "":
		return fmt.Errorf("\"kind\" is required (run, replay, fleet, table1, table2 or autofix)")
	default:
		return fmt.Errorf("unknown kind %q (want run, replay, fleet, table1, table2 or autofix)", r.Kind)
	}
	if r.Kind != KindReplay && (len(r.Trace) > 0 || r.TraceKey != "") {
		return fmt.Errorf("kind %q takes no \"trace\"/\"traceKey\"", r.Kind)
	}
	if r.Kind != KindFleet && r.Ranks != 0 {
		return fmt.Errorf("kind %q takes no \"ranks\"", r.Kind)
	}
	if r.Scale == 0 && r.Kind != KindReplay {
		r.Scale = 0.25
	}
	if r.Scale < 0 {
		return fmt.Errorf("scale %v must be positive", r.Scale)
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers %d cannot be negative", r.Workers)
	}
	if r.TimeoutSeconds < 0 {
		return fmt.Errorf("timeoutSeconds %v cannot be negative", r.TimeoutSeconds)
	}
	return nil
}

// State is a job's lifecycle position.
type State string

// Job states. Queued and Running are live; the rest are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Job is one accepted analysis request. All fields are guarded: read
// through View or the accessors.
type Job struct {
	// ID is assigned at registration and immutable afterwards.
	ID  string
	Req Request

	obs      *obs.Observer
	ctx      context.Context
	cancelFn context.CancelFunc
	timeout  time.Duration
	storeKey string
	// fleetProgress, set for fleet jobs, reads the engine's live
	// accumulator counters so views stream per-rank reduction progress.
	fleetProgress func() (ffm.FleetProgress, bool)

	mu        sync.Mutex
	state     State
	errMsg    string
	fromStore bool
	result    []byte
	created   time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
}

// newJob builds a queued job with its own observer and cancellation
// context.
func newJob(req Request, o *obs.Observer, storeKey string, timeout time.Duration) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{
		Req:      req,
		obs:      o,
		ctx:      ctx,
		cancelFn: cancel,
		timeout:  timeout,
		storeKey: storeKey,
		state:    StateQueued,
		created:  time.Now(),
		done:     make(chan struct{}),
	}
}

// cancel signals the job's context; state transitions happen at the
// execution sites that observe it.
func (j *Job) cancel() { j.cancelFn() }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the serialized result document of a done job (nil
// otherwise). Callers must not mutate it.
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.result
}

// setRunning moves queued → running; false means the job already left the
// queued state (e.g. canceled before a worker picked it up).
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state exactly once; later calls are
// ignored (false).
func (j *Job) finish(st State, errMsg string, result []byte) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone, StateFailed, StateCanceled:
		return false
	}
	j.state = st
	j.errMsg = errMsg
	j.result = result
	j.finished = time.Now()
	close(j.done)
	return true
}

// finishIfQueued finishes the job only if it never started.
func (j *Job) finishIfQueued(st State, errMsg string) bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.mu.Unlock()
	// Worst case a worker dequeues the job between the check and finish;
	// finish is once-only, so either this call or the worker's wins and
	// the other is a no-op.
	return j.finish(st, errMsg, nil)
}

// markFromStore completes a job from the persistent store without it ever
// entering the queue.
func (j *Job) markFromStore(doc []byte) {
	j.mu.Lock()
	j.fromStore = true
	j.mu.Unlock()
	j.finish(StateDone, "", doc)
}

// View is the externally visible job state: identity, lifecycle, and
// progress derived from the job's own span trace (spans recorded by the
// pipeline run; a store- or cache-served job honestly reports zero).
type View struct {
	ID      string   `json:"id"`
	Kind    string   `json:"kind"`
	App     string   `json:"app,omitempty"`
	Apps    []string `json:"apps,omitempty"`
	Ranks   int      `json:"ranks,omitempty"`
	Scale   float64  `json:"scale"`
	Workers int      `json:"workers,omitempty"`

	Status    State  `json:"status"`
	Error     string `json:"error,omitempty"`
	FromStore bool   `json:"fromStore"`
	StoreKey  string `json:"key,omitempty"`

	SpansTotal  int    `json:"spansTotal"`
	SpansEnded  int    `json:"spansEnded"`
	CurrentSpan string `json:"currentSpan,omitempty"`

	// Fleet is the streaming-reduction progress of a fleet job: ranks
	// folded so far, partial merges, and spill activity, straight from
	// the accumulator counters — live while the job runs, final
	// afterwards. Absent for other kinds and for store-served fleet jobs
	// (no reduction ran).
	Fleet *ffm.FleetProgress `json:"fleet,omitempty"`

	CreatedAt  string `json:"createdAt,omitempty"`
	StartedAt  string `json:"startedAt,omitempty"`
	FinishedAt string `json:"finishedAt,omitempty"`
}

// View snapshots the job.
func (j *Job) View() View {
	total, ended, current := j.obs.Trace().Progress()
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:      j.ID,
		Kind:    j.Req.Kind,
		App:     j.Req.App,
		Apps:    j.Req.Apps,
		Ranks:   j.Req.Ranks,
		Scale:   j.Req.Scale,
		Workers: j.Req.Workers,

		Status:    j.state,
		Error:     j.errMsg,
		FromStore: j.fromStore,
		StoreKey:  j.storeKey,

		SpansTotal:  total,
		SpansEnded:  ended,
		CurrentSpan: current,

		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.fleetProgress != nil {
		if p, ok := j.fleetProgress(); ok {
			v.Fleet = &p
		}
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// manager is the job registry: ID assignment, lookup, and bounded
// retention of finished records.
type manager struct {
	mu     sync.Mutex
	seq    int
	prefix string // node qualifier in cluster mode ("n2-"), "" single-node
	jobs   map[string]*Job
	order  []string // registration order
	retain int
}

func newManager(retain int, prefix string) *manager {
	return &manager{jobs: make(map[string]*Job), retain: retain, prefix: prefix}
}

// add registers the job, assigns its ID, and sheds the oldest finished
// records beyond the retention bound (live jobs are never shed).
func (m *manager) add(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	j.ID = fmt.Sprintf("%sj%d", m.prefix, m.seq)
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	if len(m.jobs) <= m.retain {
		return
	}
	kept := m.order[:0]
	excess := len(m.jobs) - m.retain
	for _, id := range m.order {
		if excess > 0 {
			if old, ok := m.jobs[id]; ok && old.terminal() {
				delete(m.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// remove unregisters a job (enqueue-rejection rollback).
func (m *manager) remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, id)
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

func (m *manager) get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

func (m *manager) list() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	// m.order is registration order already.
	out := make([]*Job, 0, len(m.jobs))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// terminal reports whether the job has finished (any terminal state).
func (j *Job) terminal() bool {
	switch j.State() {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}
