package serve_test

// External test package: internal/cli imports internal/serve (the serve
// subcommand), so comparing against the CLI from inside package serve
// would be an import cycle.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diogenes/internal/cli"
	"diogenes/internal/experiments"
	"diogenes/internal/serve"
)

// submitAndFetchText submits one job, waits for it, and returns the text
// rendering of its report.
func submitAndFetchText(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 && resp.StatusCode != 200 {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for v.Status != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never done (status %s)", v.ID, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
		r2, err := http.Get(ts.URL + "/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r2.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if v.Status == "failed" || v.Status == "canceled" {
			t.Fatalf("job %s ended %s", v.ID, v.Status)
		}
	}
	r3, err := http.Get(ts.URL + "/jobs/" + v.ID + "/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	text, _ := io.ReadAll(r3.Body)
	if r3.StatusCode != 200 {
		t.Fatalf("report: status %d: %s", r3.StatusCode, text)
	}
	return string(text)
}

// TestServedTable1MatchesCLI is the acceptance criterion: the served
// table1 report is byte-identical to what the CLI prints for the same
// configuration — one rendering path, one deterministic pipeline.
func TestServedTable1MatchesCLI(t *testing.T) {
	var cliOut bytes.Buffer
	if err := cli.Table1(&cliOut, experiments.NewEngine(1), []string{"-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}

	s, err := serve.New(serve.Options{Workers: 2, QueueCapacity: 4, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	served := submitAndFetchText(t, ts, `{"kind":"table1","scale":0.05}`)
	if served != cliOut.String() {
		t.Fatalf("served table1 differs from CLI output\n--- CLI ---\n%s\n--- served ---\n%s", cliOut.String(), served)
	}

	// And the parallel-width server agrees too (determinism invariant).
	served4 := submitAndFetchText(t, ts, `{"kind":"table1","scale":0.05,"workers":4,"fresh":true}`)
	if served4 != cliOut.String() {
		t.Fatalf("workers=4 served table1 differs from CLI output")
	}
}

// TestServedTable2MatchesCLI extends the identity check to the table2
// rendering, which the CLI and server now share via report.Table2Sections.
func TestServedTable2MatchesCLI(t *testing.T) {
	var cliOut bytes.Buffer
	if err := cli.Table2(&cliOut, experiments.NewEngine(1), []string{"-scale", "0.05", "rodinia_gaussian", "cuibm"}); err != nil {
		t.Fatal(err)
	}

	s, err := serve.New(serve.Options{Workers: 1, QueueCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	served := submitAndFetchText(t, ts, `{"kind":"table2","scale":0.05,"apps":["rodinia_gaussian","cuibm"]}`)
	if served != cliOut.String() {
		t.Fatalf("served table2 differs from CLI output\n--- CLI ---\n%s\n--- served ---\n%s", cliOut.String(), served)
	}
}
