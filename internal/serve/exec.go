package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"diogenes/internal/apps"
	"diogenes/internal/autofix"
	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/report"
	"diogenes/internal/trace"
)

// ResultDoc is a completed job's persisted document: the machine-readable
// payload plus the text rendering byte-identical to the CLI's output for
// the same request. Both are produced at completion time so a stored
// document can be served in either format without re-materializing any
// pipeline state.
type ResultDoc struct {
	Kind  string   `json:"kind"`
	App   string   `json:"app,omitempty"`
	Apps  []string `json:"apps,omitempty"`
	Ranks int      `json:"ranks,omitempty"`
	Scale float64  `json:"scale"`
	// JSON is the kind-specific payload: the full ffm report document for
	// "run", the row sets for the table kinds.
	JSON json.RawMessage `json:"json,omitempty"`
	// Text is the human rendering: Markdown for "run" (the CLI's -md
	// export), the terminal table text for the suite kinds.
	Text string `json:"text"`
}

// taskFn wraps one job for the queue: state transitions, per-job context
// cancellation and timeout, persistence, and terminal accounting. The
// returned function never reports an error to the queue — a job's outcome
// lives on the job itself.
func (s *Server) taskFn(j *Job, eng *experiments.Engine) func(context.Context) error {
	return func(context.Context) error {
		if !j.setRunning() {
			return nil // canceled while queued; already terminal
		}
		if h := s.hookRunning; h != nil {
			h(j)
		}
		ctx := j.ctx
		if j.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, j.timeout)
			defer cancel()
		}
		type outcome struct {
			doc     []byte
			persist bool
			err     error
		}
		started := time.Now()
		ch := make(chan outcome, 1)
		go func() {
			doc, persist, err := s.runJob(ctx, eng, j.Req)
			ch <- outcome{doc, persist, err}
		}()
		select {
		case <-ctx.Done():
			// Canceled or timed out. The pipeline goroutine finishes on
			// its own (the simulated runs are short) and its result is
			// discarded — never persisted, never visible.
			msg := "job canceled"
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				msg = fmt.Sprintf("job timed out after %s", j.timeout)
			}
			if j.finish(StateCanceled, msg, nil) {
				s.mCanceled.Inc()
			}
		case o := <-ch:
			s.noteJobDuration(time.Since(started))
			if o.err != nil {
				if j.finish(StateFailed, o.err.Error(), nil) {
					s.mFailed.Inc()
				}
				return nil
			}
			// Persist before announcing completion so a graceful
			// shutdown that drains this job also flushes its report.
			// Degraded documents (a partial fleet report) are served but
			// never stored — a later identical request must re-run and
			// get another chance at a complete answer.
			if o.persist && j.storeKey != "" && s.store != nil {
				if err := s.store.Put(j.storeKey, o.doc); err != nil {
					s.mStorePutErr.Inc()
				}
			}
			if j.finish(StateDone, "", o.doc) {
				s.mCompleted.Inc()
			}
		}
		return nil
	}
}

// runJob executes the request on the job's engine and renders its result
// document. persist reports whether the document may enter the persistent
// store; a degraded result (partial fleet report) is served but not
// stored, so a later identical request re-runs instead of replaying the
// degradation. ctx is the job's cancellation context; the fleet kind
// honors it mid-run (canceled retries release their pool workers
// immediately), the short-lived kinds finish and have their result
// discarded by the caller.
func (s *Server) runJob(ctx context.Context, eng *experiments.Engine, req Request) (data []byte, persist bool, err error) {
	doc := ResultDoc{Kind: req.Kind, App: req.App, Apps: req.Apps, Ranks: req.Ranks, Scale: req.Scale}
	persist = true
	var text bytes.Buffer
	switch req.Kind {
	case KindRun:
		rep, err := eng.RunApp(req.App, req.Scale)
		if err != nil {
			return nil, false, err
		}
		var payload bytes.Buffer
		if err := rep.WriteJSON(&payload); err != nil {
			return nil, false, err
		}
		doc.JSON = payload.Bytes()
		if err := report.WriteMarkdown(&text, rep); err != nil {
			return nil, false, err
		}
	case KindReplay:
		raw := []byte(req.Trace)
		if req.TraceKey != "" {
			stored, err := s.traceFromStore(req.TraceKey)
			if err != nil {
				return nil, false, err
			}
			raw = stored
		}
		run, err := trace.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			return nil, false, fmt.Errorf("serve: replay trace: %w", err)
		}
		cfg := ffm.DefaultConfig()
		cfg.Workers = eng.StageWorkers
		cfg.Obs = eng.Obs
		// Byte-identical reproduction needs the machine configuration the
		// trace was captured on; registered applications carry theirs.
		if f, ok := apps.FactoryFor(run.App); ok {
			cfg.Factory = f
		}
		rep, err := ffm.Run(apps.NewReplayApp(run), cfg)
		if err != nil {
			return nil, false, err
		}
		doc.App = rep.App
		persist = false // replay results are request-shaped, not cacheable
		var payload bytes.Buffer
		if err := rep.WriteJSON(&payload); err != nil {
			return nil, false, err
		}
		doc.JSON = payload.Bytes()
		if err := report.WriteMarkdown(&text, rep); err != nil {
			return nil, false, err
		}
	case KindFleet:
		fr, err := eng.FleetCtx(ctx, req.App, req.Scale, req.Ranks)
		if err != nil {
			return nil, false, err
		}
		persist = !fr.Partial
		var payload bytes.Buffer
		if err := fr.WriteJSON(&payload); err != nil {
			return nil, false, err
		}
		doc.JSON = payload.Bytes()
		if err := report.FleetTable(&text, fr); err != nil {
			return nil, false, err
		}
	case KindTable1:
		rows, err := eng.Table1(req.Scale)
		if err != nil {
			return nil, false, err
		}
		if doc.JSON, err = json.Marshal(rows); err != nil {
			return nil, false, err
		}
		if err := report.Table1(&text, rows); err != nil {
			return nil, false, err
		}
	case KindTable2:
		sections, err := eng.Table2(req.Scale, req.Apps)
		if err != nil {
			return nil, false, err
		}
		if doc.JSON, err = json.Marshal(sections); err != nil {
			return nil, false, err
		}
		if err := report.Table2Sections(&text, req.Apps, sections); err != nil {
			return nil, false, err
		}
	case KindAutofix:
		rows, err := autofix.TableWith(eng, req.Scale)
		if err != nil {
			return nil, false, err
		}
		if doc.JSON, err = json.Marshal(rows); err != nil {
			return nil, false, err
		}
		if err := report.AutofixTable(&text, rows); err != nil {
			return nil, false, err
		}
	default:
		return nil, false, fmt.Errorf("serve: unknown kind %q", req.Kind)
	}
	doc.Text = text.String()
	data, err = json.MarshalIndent(&doc, "", "  ")
	return data, persist, err
}

// traceFromStore extracts the annotated trace from a previously stored
// "run" result document, so a replay request can address a capture by its
// store key instead of inlining megabytes of records.
func (s *Server) traceFromStore(key string) ([]byte, error) {
	if s.store == nil {
		return nil, fmt.Errorf("serve: \"traceKey\" needs a persistent store (-store)")
	}
	data, err := s.store.Get(key)
	if err != nil {
		return nil, fmt.Errorf("serve: traceKey %q: %w", key, err)
	}
	doc, err := decodeResult(data)
	if err != nil {
		return nil, err
	}
	var payload struct {
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(doc.JSON, &payload); err != nil || len(payload.Trace) == 0 {
		return nil, fmt.Errorf("serve: stored document %q carries no trace (only \"run\" results do)", key)
	}
	return payload.Trace, nil
}

// decodeResult parses a job's stored result document.
func decodeResult(data []byte) (*ResultDoc, error) {
	var doc ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("serve: corrupt result document: %w", err)
	}
	return &doc, nil
}
