package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"diogenes/internal/buildinfo"
	"diogenes/internal/ffm"
	"diogenes/internal/timeline"
)

// modelForDoc reconstructs the timeline model from a completed job's
// result document. Run and replay documents carry the full report (trace,
// device ops, stage ledger); fleet documents carry the per-rank outcomes
// and the barrier-skew ledger. The suite kinds tabulate across apps and
// have no single timeline.
func modelForDoc(doc *ResultDoc) (*timeline.Model, error) {
	switch doc.Kind {
	case KindRun, KindReplay:
		rep, err := ffm.ReadReportJSON(bytes.NewReader(doc.JSON))
		if err != nil {
			return nil, err
		}
		return timeline.FromReport(doc.Kind, rep), nil
	case KindFleet:
		var fr ffm.FleetReport
		if err := json.Unmarshal(doc.JSON, &fr); err != nil {
			return nil, fmt.Errorf("serve: corrupt fleet document: %w", err)
		}
		return timeline.FromFleet(&fr), nil
	default:
		return nil, fmt.Errorf("kind %q has no timeline (run, replay and fleet jobs do)", doc.Kind)
	}
}

// timelineModel resolves a request's job to its timeline model, writing
// the error response itself when there is none. The served model is
// stamped with the daemon's build identity so downloads are
// self-describing.
func (s *Server) timelineModel(w http.ResponseWriter, r *http.Request) *timeline.Model {
	id := r.PathValue("id")
	if s.routeJobID(w, r, id) {
		return nil // answered by the node that created the job
	}
	j := s.Job(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %q", id)})
		return nil
	}
	data := j.Result()
	if data == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s is %s, not done", j.ID, j.State())})
		return nil
	}
	doc, err := decodeResult(data)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return nil
	}
	m, err := modelForDoc(doc)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return nil
	}
	m.Meta.Version = buildinfo.Version()
	return m
}

// handleTimeline serves the self-contained timeline explorer page: the
// embedded HTML renderer with the job's model inlined. Zero external
// requests — the page works from a saved file as well as from the daemon.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	m := s.timelineModel(w, r)
	if m == nil {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := m.WriteHTML(w); err != nil {
		// Headers are gone; all we can do is abort the stream.
		return
	}
}

// handleTimelineJSON serves the raw model — the machine-readable form of
// the same document the HTML view renders, for other tools (§4).
func (s *Server) handleTimelineJSON(w http.ResponseWriter, r *http.Request) {
	m := s.timelineModel(w, r)
	if m == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = m.WriteJSON(w)
}
