package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

// runDocParts pulls the trace and analysis out of a stored/served "run"
// result document's report JSON.
func runDocParts(t *testing.T, reportJSON []byte) (trace, analysis json.RawMessage) {
	t.Helper()
	var payload struct {
		Trace    json.RawMessage `json:"trace"`
		Analysis json.RawMessage `json:"analysis"`
	}
	if err := json.Unmarshal(reportJSON, &payload); err != nil {
		t.Fatalf("decode run report: %v", err)
	}
	if len(payload.Trace) == 0 || len(payload.Analysis) == 0 {
		t.Fatal("run report carries no trace/analysis")
	}
	return payload.Trace, payload.Analysis
}

// TestReplayJobReproducesRunAnalysis is the service-level fidelity claim:
// a replay job — trace inlined or addressed by the run's store key —
// produces an analysis byte-identical to the original run's.
func TestReplayJobReproducesRunAnalysis(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, run, _, _ := postJob(t, ts, `{"kind":"run","app":"cuibm","scale":0.05}`)
	if code != 202 {
		t.Fatalf("run submit: status %d", code)
	}
	runView := waitState(t, ts, run.ID)
	if runView.Status != StateDone {
		t.Fatalf("run job: %+v", runView)
	}
	traceRaw, wantAnalysis := runDocParts(t, getReport(t, ts, run.ID, "json"))

	// Inline trace.
	body, err := json.Marshal(map[string]any{"kind": "replay", "trace": json.RawMessage(traceRaw)})
	if err != nil {
		t.Fatal(err)
	}
	code, inline, _, raw := postJob(t, ts, string(body))
	if code != 202 {
		t.Fatalf("inline replay submit: status %d: %s", code, raw)
	}
	if v := waitState(t, ts, inline.ID); v.Status != StateDone {
		t.Fatalf("inline replay job: %+v", v)
	}
	_, gotInline := runDocParts(t, getReport(t, ts, inline.ID, "json"))
	if !bytes.Equal(wantAnalysis, gotInline) {
		t.Fatalf("inline replay analysis differs from the run's (%d vs %d bytes)",
			len(wantAnalysis), len(gotInline))
	}

	// Store-addressed trace, via the run job's own store key.
	if runView.StoreKey == "" {
		t.Fatal("run job has no store key")
	}
	code, keyed, _, raw := postJob(t, ts,
		fmt.Sprintf(`{"kind":"replay","traceKey":%q}`, runView.StoreKey))
	if code != 202 {
		t.Fatalf("keyed replay submit: status %d: %s", code, raw)
	}
	if v := waitState(t, ts, keyed.ID); v.Status != StateDone {
		t.Fatalf("keyed replay job: %+v", v)
	}
	_, gotKeyed := runDocParts(t, getReport(t, ts, keyed.ID, "json"))
	if !bytes.Equal(wantAnalysis, gotKeyed) {
		t.Fatal("store-addressed replay analysis differs from the run's")
	}
}

// TestReplayJobValidation covers the replay request error paths.
func TestReplayJobValidation(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"kind":"replay"}`,
		`{"kind":"replay","trace":{"app":"x"},"traceKey":"k"}`,
		`{"kind":"replay","trace":{"app":"x"},"app":"cuibm"}`,
		`{"kind":"replay","trace":{"app":"x"},"scale":0.5}`,
		`{"kind":"run","app":"cuibm","traceKey":"k"}`,
	} {
		if code, _, _, raw := postJob(t, ts, body); code != 400 {
			t.Errorf("body %s: status %d (%s), want 400", body, code, raw)
		}
	}

	// A structurally invalid trace passes normalization but fails the job.
	code, v, _, _ := postJob(t, ts, `{"kind":"replay","trace":{"app":"x","format":99}}`)
	if code != 202 {
		t.Fatalf("bad-trace submit: status %d", code)
	}
	if done := waitState(t, ts, v.ID); done.Status != StateFailed {
		t.Fatalf("bad trace job = %+v, want failed", done)
	}

	// traceKey without a store fails the job, not the server.
	code, v, _, _ = postJob(t, ts, `{"kind":"replay","traceKey":"nope"}`)
	if code != 202 {
		t.Fatalf("no-store submit: status %d", code)
	}
	if done := waitState(t, ts, v.ID); done.Status != StateFailed {
		t.Fatalf("no-store job = %+v, want failed", done)
	}
}
