package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// handleEvents streams a job's progress as Server-Sent Events:
//
//	GET /jobs/{id}/events
//
// Frames:
//
//	event: progress   data: the job View — sent immediately on connect,
//	                  then whenever the job's span trace changes and on a
//	                  periodic snapshot tick (fleet reduction counters
//	                  advance without creating spans), deduplicated so a
//	                  quiet job does not re-send identical views
//	: heartbeat       comment frames on the heartbeat interval, so
//	                  proxies and clients can tell a quiet stream from a
//	                  dead one
//	event: done       the terminal frame: the job's final View, counters
//	                  final (a fleet job's ranksDone equals ranksTotal).
//	                  The stream closes after it.
//
// A job already finished (including store-served) yields the terminal
// frame immediately. Progress derives from the same obs span trace and
// fleet accumulator counters the poll endpoint reads — streaming adds a
// push path, not a second source of truth.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.routeJobID(w, r, id) {
		return
	}
	j := s.Job(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %q", id)})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Change-driven wakeups from the job's own span trace; the snapshot
	// ticker covers progress the trace cannot signal (fleet counters).
	changed, cancel := j.obs.Trace().Watch()
	defer cancel()
	snapshots := time.NewTicker(s.opts.EventSnapshot)
	defer snapshots.Stop()
	heartbeats := time.NewTicker(s.opts.EventHeartbeat)
	defer heartbeats.Stop()

	var last []byte
	emit := func(event string) bool {
		data, err := json.Marshal(j.View())
		if err != nil {
			return false
		}
		if event == "progress" && bytes.Equal(data, last) {
			return true // nothing new; keep the connection quiet
		}
		last = data
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	if !emit("progress") {
		return
	}
	for {
		select {
		case <-j.Done():
			// Drain pending signals implicitly: the terminal View is the
			// final word on every counter.
			emit("done")
			return
		case <-changed:
			if !emit("progress") {
				return
			}
		case <-snapshots.C:
			if !emit("progress") {
				return
			}
		case <-heartbeats.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
