// Package cluster places content-addressed work across a static shard
// group with a consistent-hash ring.
//
// A Diogenes serve fleet shares nothing at runtime: each instance has its
// own queue, store, and ledger. What makes the group one service is pure
// arithmetic — every node, given the same peer list, maps a suite key to
// the same owner. The owner executes and persists; every other node
// proxies. Consistent hashing (each peer projected to many points on a
// 64-bit ring, a key owned by the first point at or after its hash) keeps
// that map stable under membership change: when the peer list gains or
// loses a node, only keys whose arc touched that node move, instead of
// nearly all keys as with modular hashing.
//
// The package is deliberately static: no gossip, no failure detector, no
// rebalancing daemon. The peer list is configuration, the ring is derived
// from it deterministically, and a node that cannot reach a key's owner
// degrades to executing locally — availability over placement purity.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// replicasPerPeer is how many virtual points each peer projects onto the
// ring. More points smooth the key distribution between peers; 128 keeps
// the worst-case imbalance in the low single-digit percents for the
// group sizes (≤ dozens) this serves.
const replicasPerPeer = 128

// Cluster is one node's view of the shard group: the sorted peer list,
// this node's identity within it, and the derived hash ring. It is
// immutable after New and safe for concurrent use.
type Cluster struct {
	self  string
	peers []string // sorted, deduplicated; includes self
	ring  []point
}

// point is one virtual ring position owned by a peer.
type point struct {
	hash uint64
	peer string
}

// New builds a cluster view from this node's advertised address and the
// full peer list. self must appear in peers (addresses are compared
// verbatim — "127.0.0.1:8377" and "localhost:8377" are different nodes).
// The peer list is deduplicated and sorted, so every node given the same
// set builds the identical ring regardless of list order.
func New(self string, peers []string) (*Cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: empty self address")
	}
	seen := make(map[string]bool, len(peers))
	var uniq []string
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", self, uniq)
	}
	if len(uniq) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 peers, have %v (run without -peers for single-node)", uniq)
	}
	sort.Strings(uniq)
	c := &Cluster{self: self, peers: uniq}
	c.ring = make([]point, 0, len(uniq)*replicasPerPeer)
	for _, peer := range uniq {
		for i := 0; i < replicasPerPeer; i++ {
			c.ring = append(c.ring, point{hash: ringHash(peer + "#" + strconv.Itoa(i)), peer: peer})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool {
		if c.ring[i].hash != c.ring[j].hash {
			return c.ring[i].hash < c.ring[j].hash
		}
		// A 64-bit collision between different peers' points is
		// vanishingly unlikely; break it by address so every node still
		// agrees on the ring.
		return c.ring[i].peer < c.ring[j].peer
	})
	return c, nil
}

// ringHash maps a string to its ring position.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Self returns this node's advertised address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the sorted peer list (including self). Callers must not
// mutate it.
func (c *Cluster) Peers() []string { return c.peers }

// Owner returns the peer that owns key: the peer whose virtual point is
// first at or after the key's ring position, wrapping at the top. Every
// node with the same peer list returns the same owner for the same key.
func (c *Cluster) Owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	if i == len(c.ring) {
		i = 0
	}
	return c.ring[i].peer
}

// OwnsLocally reports whether this node owns key.
func (c *Cluster) OwnsLocally(key string) bool { return c.Owner(key) == c.self }

// NodeName returns the short name of a peer — "n<index>" in the sorted
// peer list — used to qualify job IDs so any node can route a job lookup
// back to the node that created it. ok is false for an unknown address.
func (c *Cluster) NodeName(addr string) (name string, ok bool) {
	for i, p := range c.peers {
		if p == addr {
			return "n" + strconv.Itoa(i), true
		}
	}
	return "", false
}

// SelfName returns this node's short name.
func (c *Cluster) SelfName() string {
	name, _ := c.NodeName(c.self)
	return name
}

// AddrOf resolves a short node name back to the peer address; ok is
// false for a name outside the group.
func (c *Cluster) AddrOf(name string) (addr string, ok bool) {
	if len(name) < 2 || name[0] != 'n' {
		return "", false
	}
	i, err := strconv.Atoi(name[1:])
	if err != nil || i < 0 || i >= len(c.peers) {
		return "", false
	}
	return c.peers[i], true
}

// SplitJobID splits a node-qualified job ID ("n2-j17") into the node
// name and the node-local ID. ok is false when the ID carries no node
// qualifier (a single-node ID like "j17").
func SplitJobID(id string) (node, local string, ok bool) {
	if len(id) < 2 || id[0] != 'n' {
		return "", "", false
	}
	dash := strings.IndexByte(id, '-')
	if dash < 2 {
		return "", "", false
	}
	if _, err := strconv.Atoi(id[1:dash]); err != nil {
		return "", "", false
	}
	return id[:dash], id[dash+1:], true
}
