package cluster

import (
	"fmt"
	"testing"
)

func peers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8377", i+1)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("suitekey-%04d", i)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", peers(3)); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := New("10.0.0.9:1", peers(3)); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
	if _, err := New("10.0.0.1:8377", peers(1)); err == nil {
		t.Fatal("single-peer group accepted")
	}
	c, err := New("10.0.0.2:8377", []string{"10.0.0.2:8377", " 10.0.0.1:8377 ", "10.0.0.1:8377", ""})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Peers()); got != 2 {
		t.Fatalf("peer list %v not deduplicated/trimmed", c.Peers())
	}
}

// TestPlacementDeterministic pins the core shard-group property: every
// node, given the same peer set in any order, maps every key to the same
// owner.
func TestPlacementDeterministic(t *testing.T) {
	ps := peers(5)
	// Node views built from differently-ordered (and duplicated) lists.
	views := make([]*Cluster, 0, len(ps))
	for i, self := range ps {
		shuffled := append([]string{}, ps[i:]...)
		shuffled = append(shuffled, ps[:i]...)
		shuffled = append(shuffled, self) // duplicate
		c, err := New(self, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, c)
	}
	owned := make(map[string]int)
	for _, key := range keys(2000) {
		owner := views[0].Owner(key)
		for i, v := range views[1:] {
			if got := v.Owner(key); got != owner {
				t.Fatalf("key %q: node %s says owner %s, node %s says %s",
					key, ps[0], owner, ps[i+1], got)
			}
		}
		owned[owner]++
	}
	// The ring must actually spread load: every peer owns a share, and
	// no peer owns a wildly disproportionate one.
	for _, p := range ps {
		n := owned[p]
		if n == 0 {
			t.Fatalf("peer %s owns no keys: %v", p, owned)
		}
		if n > 2*2000/len(ps) {
			t.Fatalf("peer %s owns %d of 2000 keys (> 2x fair share): %v", p, n, owned)
		}
	}
	// Exactly one node claims local ownership of each key.
	for _, key := range keys(100) {
		locals := 0
		for _, v := range views {
			if v.OwnsLocally(key) {
				locals++
			}
		}
		if locals != 1 {
			t.Fatalf("key %q locally owned by %d nodes, want exactly 1", key, locals)
		}
	}
}

// TestRebalanceMinimal pins the consistent-hash contract: when the peer
// list changes, the only keys that move are the ones whose owner joined
// or left — a key whose owner survives the change keeps it.
func TestRebalanceMinimal(t *testing.T) {
	ps := peers(5)
	before, err := New(ps[0], ps)
	if err != nil {
		t.Fatal(err)
	}

	// Remove one peer: only its keys may move.
	removed := ps[2]
	after, err := New(ps[0], append(append([]string{}, ps[:2]...), ps[3:]...))
	if err != nil {
		t.Fatal(err)
	}
	moved, fromRemoved := 0, 0
	for _, key := range keys(2000) {
		was, is := before.Owner(key), after.Owner(key)
		if was != is {
			moved++
			if was != removed {
				t.Fatalf("key %q moved %s → %s although its owner %s survived", key, was, is, was)
			}
			fromRemoved++
		}
	}
	if fromRemoved == 0 {
		t.Fatal("removing a peer moved no keys at all")
	}

	// Add a peer: keys may move only TO the newcomer.
	added := "10.0.0.99:8377"
	grown, err := New(ps[0], append(append([]string{}, ps...), added))
	if err != nil {
		t.Fatal(err)
	}
	toAdded := 0
	for _, key := range keys(2000) {
		was, is := before.Owner(key), grown.Owner(key)
		if was != is {
			if is != added {
				t.Fatalf("key %q moved %s → %s although the only change was adding %s", key, was, is, added)
			}
			toAdded++
		}
	}
	if toAdded == 0 {
		t.Fatal("adding a peer attracted no keys")
	}
}

func TestNodeNamesAndJobIDs(t *testing.T) {
	ps := peers(3)
	c, err := New(ps[1], ps)
	if err != nil {
		t.Fatal(err)
	}
	name, ok := c.NodeName(ps[1])
	if !ok || name != "n1" {
		t.Fatalf("NodeName(%s) = %q, %v", ps[1], name, ok)
	}
	if c.SelfName() != "n1" {
		t.Fatalf("SelfName() = %q, want n1", c.SelfName())
	}
	if _, ok := c.NodeName("not-a-peer"); ok {
		t.Fatal("unknown address resolved to a node name")
	}
	for i, p := range ps {
		addr, ok := c.AddrOf(fmt.Sprintf("n%d", i))
		if !ok || addr != p {
			t.Fatalf("AddrOf(n%d) = %q, %v, want %q", i, addr, ok, p)
		}
	}
	for _, bad := range []string{"", "n", "n9", "x0", "nX"} {
		if _, ok := c.AddrOf(bad); ok {
			t.Fatalf("AddrOf(%q) resolved", bad)
		}
	}

	node, local, ok := SplitJobID("n2-j17")
	if !ok || node != "n2" || local != "j17" {
		t.Fatalf("SplitJobID(n2-j17) = %q, %q, %v", node, local, ok)
	}
	for _, id := range []string{"j17", "", "n-j1", "nx-j1", "n2", "north-j1"} {
		if _, _, ok := SplitJobID(id); ok {
			t.Fatalf("SplitJobID(%q) parsed as node-qualified", id)
		}
	}
}
