package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postJob submits a request document and returns the HTTP status, the
// decoded view (on 2xx) and the raw response.
func postJob(t *testing.T, ts *httptest.Server, body string) (int, View, *http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v View
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("decode job view: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, v, resp, raw
}

// getStatus fetches one job view.
func getStatus(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitState polls until the job reaches a terminal state and returns it.
func waitState(t *testing.T, ts *httptest.Server, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getStatus(t, ts, id)
		switch v.Status {
		case StateDone, StateFailed, StateCanceled:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return View{}
}

// getReport fetches a completed job's report in the given format.
func getReport(t *testing.T, ts *httptest.Server, id, format string) []byte {
	t.Helper()
	url := ts.URL + "/jobs/" + id + "/report"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET report %s: status %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// TestBackpressureAndNoDroppedJobs is the acceptance scenario: N
// concurrent submissions against a queue with capacity < N yield some
// 429s carrying Retry-After, and every accepted job completes.
func TestBackpressureAndNoDroppedJobs(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan string, 16)
	s.hookRunning = func(j *Job) {
		entered <- j.ID
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single worker so the backlog (capacity 1) is the only
	// open slot.
	code, first, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)
	if code != 202 {
		t.Fatalf("first submit: status %d", code)
	}
	<-entered

	// 8 concurrent submissions into 1 backlog slot: exactly 1 accepted,
	// 7 rejected with 429 + Retry-After.
	const n = 8
	type outcome struct {
		code       int
		id         string
		retryAfter string
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"run","app":"rodinia_gaussian","scale":%g}`, 0.02+0.001*float64(i+1))
			code, v, resp, _ := postJob(t, ts, body)
			results[i] = outcome{code: code, id: v.ID, retryAfter: resp.Header.Get("Retry-After")}
		}(i)
	}
	wg.Wait()

	var accepted []string
	rejected := 0
	for _, r := range results {
		switch r.code {
		case 202:
			accepted = append(accepted, r.id)
		case 429:
			rejected++
			if r.retryAfter == "" {
				t.Error("429 without Retry-After header")
			}
		default:
			t.Errorf("unexpected status %d", r.code)
		}
	}
	if len(accepted) != 1 || rejected != 7 {
		t.Fatalf("accepted %d, rejected %d; want 1 and 7", len(accepted), rejected)
	}
	if got := s.obs.Metrics().Counter("serve/jobs_rejected").Value(); got != 7 {
		t.Fatalf("serve/jobs_rejected = %d, want 7", got)
	}

	// Release the workers: every accepted job must reach done — zero
	// dropped accepted jobs.
	close(release)
	for _, id := range append([]string{first.ID}, accepted...) {
		if v := waitState(t, ts, id); v.Status != StateDone {
			t.Fatalf("accepted job %s finished as %s (%s)", id, v.Status, v.Error)
		}
	}
	// Rejected jobs left no trace in the registry.
	if got := s.obs.Metrics().Counter("sched/jobqueue_rejected").Value(); got != 7 {
		t.Fatalf("sched/jobqueue_rejected = %d, want 7", got)
	}
}

// TestStoreHitSkipsPipeline is the acceptance scenario: a repeated
// identical request is served from the disk store — the hit counter
// increments and the job records no pipeline spans.
func TestStoreHitSkipsPipeline(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`
	code, v1, _, _ := postJob(t, ts, body)
	if code != 202 {
		t.Fatalf("first submit: status %d", code)
	}
	done1 := waitState(t, ts, v1.ID)
	if done1.Status != StateDone || done1.FromStore {
		t.Fatalf("first job: %+v", done1)
	}
	if done1.SpansTotal == 0 {
		t.Fatal("first (computed) job recorded no spans")
	}
	if hits := s.obs.Metrics().Counter("store/hits").Value(); hits != 0 {
		t.Fatalf("store/hits = %d before repeat", hits)
	}

	code, v2, _, _ := postJob(t, ts, body)
	if code != 200 {
		t.Fatalf("repeat submit: status %d, want 200 (served from store)", code)
	}
	if !v2.FromStore || v2.Status != StateDone {
		t.Fatalf("repeat job not served from store: %+v", v2)
	}
	if v2.SpansTotal != 0 {
		t.Fatalf("store-served job recorded %d pipeline spans; a hit means no run happened", v2.SpansTotal)
	}
	if hits := s.obs.Metrics().Counter("store/hits").Value(); hits != 1 {
		t.Fatalf("store/hits = %d, want 1", hits)
	}

	// Same document either way, in both formats.
	if !bytes.Equal(getReport(t, ts, v1.ID, "json"), getReport(t, ts, v2.ID, "json")) {
		t.Fatal("stored JSON report differs from computed one")
	}
	if !bytes.Equal(getReport(t, ts, v1.ID, "text"), getReport(t, ts, v2.ID, "text")) {
		t.Fatal("stored text report differs from computed one")
	}
	// fresh=true forces a re-run despite the stored document.
	code, v3, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.05,"fresh":true}`)
	if code != 202 {
		t.Fatalf("fresh submit: status %d", code)
	}
	if v := waitState(t, ts, v3.ID); v.FromStore || v.SpansTotal == 0 {
		t.Fatalf("fresh run was served from store: %+v", v)
	}
}

// TestShutdownDrainsInFlightJob is the acceptance scenario: shutdown
// during an in-flight job drains it and persists its report, while new
// submissions are refused.
func TestShutdownDrainsInFlightJob(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.hookRunning = func(*Job) {
		entered <- struct{}{}
		<-release
	}

	j, err := s.Submit(Request{Kind: KindRun, App: "rodinia_gaussian", Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // in flight

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// The server must refuse new work as soon as shutdown begins.
	refused := false
	for i := 0; i < 1000; i++ {
		if _, err := s.Submit(Request{Kind: KindRun, App: "cuibm", Scale: 0.02}); err == ErrShuttingDown {
			refused = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !refused {
		t.Fatal("submissions still accepted during shutdown")
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := j.State(); st != StateDone {
		t.Fatalf("in-flight job drained as %s, want done", st)
	}
	if j.Result() == nil {
		t.Fatal("drained job has no result")
	}
	if _, err := s.store.Get(j.storeKey); err != nil {
		t.Fatalf("drained job's report not persisted: %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.hookRunning = func(*Job) {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, blocker, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)
	<-entered
	code, queued, _, _ := postJob(t, ts, `{"kind":"run","app":"cuibm","scale":0.02}`)
	if code != 202 {
		t.Fatalf("queued submit: %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if v := getStatus(t, ts, queued.ID); v.Status != StateCanceled {
		t.Fatalf("canceled queued job is %s", v.Status)
	}

	close(release)
	if v := waitState(t, ts, blocker.ID); v.Status != StateDone {
		t.Fatalf("blocker finished as %s", v.Status)
	}
	// The canceled job stays canceled even after the worker dequeues it.
	if v := waitState(t, ts, queued.ID); v.Status != StateCanceled {
		t.Fatalf("canceled job re-ran as %s", v.Status)
	}
	if got := s.obs.Metrics().Counter("serve/jobs_canceled").Value(); got != 1 {
		t.Fatalf("serve/jobs_canceled = %d, want 1", got)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.hookRunning = func(*Job) {
		entered <- struct{}{}
		<-release
	}
	j, err := s.Submit(Request{Kind: KindRun, App: "rodinia_gaussian", Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if s.Cancel(j.ID) == nil {
		t.Fatal("cancel reported unknown job")
	}
	close(release)
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("canceled job never terminal")
	}
	if st := j.State(); st != StateCanceled {
		t.Fatalf("canceled running job is %s", st)
	}
	if j.Result() != nil {
		t.Fatal("canceled job has a result")
	}
}

func TestJobTimeout(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A nanosecond budget expires before any pipeline completes.
	j, err := s.Submit(Request{Kind: KindTable1, Scale: 0.05, TimeoutSeconds: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("timed-out job never terminal")
	}
	v := j.View()
	if v.Status != StateCanceled || !strings.Contains(v.Error, "timed out") {
		t.Fatalf("timeout job: %+v", v)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []string{
		`{"kind":"frobnicate"}`,
		`{"kind":"run"}`,
		`{"kind":"run","app":"no_such_app"}`,
		`{"kind":"run","app":"cuibm","scale":-1}`,
		`{"kind":"table1","app":"cuibm"}`,
		`{"kind":"run","app":"cuibm","workers":-2}`,
		`{not json`,
		`{"kind":"run","app":"cuibm","bogusField":1}`,
	}
	for _, body := range cases {
		if code, _, _, raw := postJob(t, ts, body); code != 400 {
			t.Errorf("body %s: status %d (%s), want 400", body, code, raw)
		}
	}

	// Unknown job IDs and premature report fetches.
	resp, _ := http.Get(ts.URL + "/jobs/j999")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown job status: %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/jobs/j999/report")
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown job report: %d", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, err := New(Options{Workers: 2, QueueCapacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" || health["accepting"] != true {
		t.Fatalf("healthz: %v", health)
	}
	if health["queueCapacity"].(float64) != 3 {
		t.Fatalf("healthz capacity: %v", health)
	}

	code, v, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, v.ID)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve/jobs_submitted", "serve/jobs_completed", "sched/jobqueue_accepted", "cache/"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestProgressVisibleWhileRunning checks the span-derived progress
// surface: a running job exposes its current pipeline position.
func TestProgressVisibleWhileRunning(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v, _, _ := postJob(t, ts, `{"kind":"table1","scale":0.05}`)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	final := waitState(t, ts, v.ID)
	if final.Status != StateDone {
		t.Fatalf("job: %+v", final)
	}
	if final.SpansTotal == 0 || final.SpansEnded == 0 {
		t.Fatalf("no span progress recorded: %+v", final)
	}
}
