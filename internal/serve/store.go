package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"diogenes/internal/experiments"
	"diogenes/internal/ledger"
	"diogenes/internal/obs"
)

// storeExt suffixes every stored entry, separating them from temp files.
const storeExt = ".bin"

// tmpPrefix names in-flight atomic-write temp files.
const tmpPrefix = ".put-"

// tmpSweepAge is how old a temp file must be before OpenDiskStore
// reclaims it as a crash leftover. A live sibling instance's in-flight
// write is seconds old at most; anything past this is an interrupted
// write whose rename never happened, sitting on disk outside the byte
// budget forever.
const tmpSweepAge = 5 * time.Minute

// DiskStore is a content-addressed persistent report store: one file per
// key under one directory, with an LRU byte budget enforced on write.
// Reads bump the entry's mtime, so eviction order follows use, not just
// insertion.
//
// The store is safe for concurrent use within a process and degrades
// gracefully across processes sharing the directory: writes are
// temp-file-plus-rename atomic, and a read racing another instance's
// eviction reports a miss, never a torn value. It implements
// experiments.Store.
type DiskStore struct {
	dir    string
	budget int64

	// mu serializes this instance's eviction scans; Get/Put themselves
	// rely on filesystem atomicity. It also guards the access ledger.
	mu sync.Mutex
	// accessSeq and access order this instance's uses monotonically.
	// Filesystem mtimes carry recency across processes but have bounded
	// resolution: two entries touched within one timestamp tick compare
	// equal, and sorting on mtime alone would evict an arbitrary one of
	// them. The in-memory stamp breaks those ties deterministically in
	// true use order (entries this instance never touched rank oldest).
	accessSeq uint64
	access    map[string]uint64

	// ledger, when attached, receives one append per persisted report —
	// the provenance trail behind every byte this store serves.
	ledger *ledger.Ledger

	hits      *obs.Counter
	misses    *obs.Counter
	puts      *obs.Counter
	evictions *obs.Counter
	bytes     *obs.Gauge
}

var _ experiments.Store = (*DiskStore)(nil)

// OpenDiskStore opens (creating if needed) a store in dir with the given
// LRU byte budget; budget <= 0 is unbounded. Stale temp files left by
// interrupted atomic writes — a crash between CreateTemp and Rename —
// are swept at open, so crash leftovers stop occupying disk outside the
// byte budget.
func OpenDiskStore(dir string, budget int64) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: store directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: open store: %w", err)
	}
	sweepStaleTemps(dir)
	return &DiskStore{dir: dir, budget: budget, access: make(map[string]uint64)}, nil
}

// sweepStaleTemps removes crash-leftover temp files. The age guard keeps
// a concurrently opening instance from yanking a live sibling's
// in-flight write out from under its rename; a genuine leftover only
// ages, so it is reclaimed on the next open after the guard elapses.
func sweepStaleTemps(dir string) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-tmpSweepAge)
	for _, de := range dirents {
		if de.IsDir() || !strings.HasPrefix(de.Name(), tmpPrefix) {
			continue
		}
		info, err := de.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		_ = os.Remove(filepath.Join(dir, de.Name()))
	}
}

// AttachLedger routes every subsequent Put through the provenance
// ledger: the report's digest is appended — durably on disk — before the
// report file itself appears under its final name, so a report the store
// serves is always one the ledger vouches for.
func (d *DiskStore) AttachLedger(l *ledger.Ledger) {
	d.mu.Lock()
	d.ledger = l
	d.mu.Unlock()
}

// SetMetrics mirrors store traffic to a registry: store/hits,
// store/misses, store/puts, store/evictions and the resident store/bytes
// gauge.
func (d *DiskStore) SetMetrics(m *obs.Registry) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hits = m.Counter("store/hits")
	d.misses = m.Counter("store/misses")
	d.puts = m.Counter("store/puts")
	d.evictions = m.Counter("store/evictions")
	d.bytes = m.Gauge("store/bytes")
}

// Dir returns the store's directory.
func (d *DiskStore) Dir() string { return d.dir }

// path maps a key to its file, refusing anything that is not a plain
// lower-case hex digest — keys are content addresses, and nothing else
// may name a file here.
func (d *DiskStore) path(key string) (string, error) {
	if !experiments.ValidKey(key) {
		return "", fmt.Errorf("serve: invalid store key %q", key)
	}
	return filepath.Join(d.dir, key+storeExt), nil
}

// Get returns the stored bytes for key, bumping its recency, or
// experiments.ErrNotFound.
func (d *DiskStore) Get(key string) ([]byte, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		d.misses.Inc()
		return nil, experiments.ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	now := time.Now()
	_ = os.Chtimes(p, now, now) // best-effort recency bump
	d.noteAccess(p)
	d.hits.Inc()
	return b, nil
}

// noteAccess stamps one use of the entry at path.
func (d *DiskStore) noteAccess(path string) {
	d.mu.Lock()
	d.accessSeq++
	d.access[path] = d.accessSeq
	d.mu.Unlock()
}

// Put stores val under key atomically (temp file + rename), then enforces
// the byte budget by evicting the least recently used entries. The entry
// just written is never its own eviction victim, so the budget is soft by
// at most one oversized document.
func (d *DiskStore) Put(key string, val []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store put: %w", errors.Join(werr, cerr))
	}
	// Ledger before rename: the digest entry is on disk before the
	// report file exists under its final name. A crash between the two
	// leaves a ledgered-but-absent report (indistinguishable from an
	// evicted one — harmless); the reverse order could leave a resident
	// report no ledger vouches for.
	d.mu.Lock()
	led := d.ledger
	d.mu.Unlock()
	if led != nil {
		if _, err := led.Append(key, val); err != nil {
			os.Remove(tmp.Name())
			return fmt.Errorf("serve: store put: ledger: %w", err)
		}
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: store put: %w", err)
	}
	d.puts.Inc()
	d.noteAccess(p)
	d.enforceBudget(p)
	return nil
}

// storeEntry is one scanned file during budget enforcement.
type storeEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// enforceBudget scans the directory and removes oldest-use entries until
// the total fits the budget, keeping the just-written file. It also
// refreshes the resident-bytes gauge.
func (d *DiskStore) enforceBudget(keep string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dirents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	var entries []storeEntry
	var total int64
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), storeExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with another instance's eviction
		}
		entries = append(entries, storeEntry{
			path:  filepath.Join(d.dir, de.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		})
		total += info.Size()
	}
	if d.budget > 0 {
		// Oldest mtime first; entries sharing an mtime tick (the
		// filesystem's timestamp resolution is bounded) order by this
		// instance's monotonic access stamp, then by path so the victim
		// is deterministic even for entries never accessed here.
		sort.Slice(entries, func(i, j int) bool {
			ei, ej := entries[i], entries[j]
			if !ei.mtime.Equal(ej.mtime) {
				return ei.mtime.Before(ej.mtime)
			}
			if d.access[ei.path] != d.access[ej.path] {
				return d.access[ei.path] < d.access[ej.path]
			}
			return ei.path < ej.path
		})
		for _, e := range entries {
			if total <= d.budget {
				break
			}
			if e.path == keep {
				continue
			}
			// Count the bytes as gone even if another instance removed
			// the file first — either way it no longer occupies space.
			if err := os.Remove(e.path); err == nil || errors.Is(err, fs.ErrNotExist) {
				total -= e.size
				d.evictions.Inc()
				delete(d.access, e.path)
			}
		}
	}
	d.bytes.Set(float64(total))
}

// Flush pushes the directory's metadata to stable storage, best-effort —
// entry contents were written and renamed already, so this is the final
// durability nudge at graceful shutdown.
func (d *DiskStore) Flush() {
	if d == nil {
		return
	}
	if f, err := os.Open(d.dir); err == nil {
		_ = f.Sync() // some filesystems refuse dir fsync; that's fine
		f.Close()
	}
}

// Len returns the number of stored entries (diagnostic).
func (d *DiskStore) Len() int {
	dirents, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range dirents {
		if !de.IsDir() && strings.HasSuffix(de.Name(), storeExt) {
			n++
		}
	}
	return n
}
