package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"diogenes/internal/serve/cluster"
)

// node is one member of an in-process shard group.
type node struct {
	addr string
	srv  *Server
	http *http.Server
	ln   net.Listener
}

func (n *node) url() string { return "http://" + n.addr }

// startGroup boots size serve nodes on loopback ports sharing one peer
// list, each with its own store directory.
func startGroup(t *testing.T, size int, opt func(i int, o *Options)) []*node {
	t.Helper()
	nodes := make([]*node, size)
	peers := make([]string, size)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{addr: ln.Addr().String(), ln: ln}
		peers[i] = nodes[i].addr
	}
	for i, n := range nodes {
		cl, err := cluster.New(n.addr, peers)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Workers: 1, QueueCapacity: 8, StoreDir: t.TempDir(),
			Cluster: cl, EventSnapshot: 20 * time.Millisecond}
		if opt != nil {
			opt(i, &opts)
		}
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		n.srv = s
		n.http = &http.Server{Handler: s.Handler()}
		go n.http.Serve(n.ln)
		t.Cleanup(func() {
			n.http.Close()
			s.Shutdown(testCtx(t))
		})
	}
	return nodes
}

// submitTo posts one request body to a node and decodes the response.
func submitTo(t *testing.T, n *node, body string) (int, View, http.Header) {
	t.Helper()
	resp, err := http.Post(n.url()+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/jobs: %v", n.url(), err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v View
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("decode view: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, v, resp.Header
}

// nodeIdxOfJob resolves a node-qualified job ID back to the group index.
func nodeIdxOfJob(t *testing.T, nodes []*node, id string) int {
	t.Helper()
	name, _, ok := cluster.SplitJobID(id)
	if !ok {
		t.Fatalf("job ID %q carries no node qualifier", id)
	}
	for i, n := range nodes {
		if n.srv.Cluster().SelfName() == name {
			return i
		}
	}
	t.Fatalf("job ID %q names no group member", id)
	return -1
}

// waitDoneVia polls a job to a terminal state through the given node.
func waitDoneVia(t *testing.T, n *node, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.url() + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case StateDone, StateFailed, StateCanceled:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished via %s", id, n.addr)
	return View{}
}

// TestClusterNonOwnerForwardsToOwner pins the tentpole routing contract:
// a submission arriving at a non-owner is forwarded to the key's ring
// owner, which executes, persists, and answers under its own node stamp.
func TestClusterNonOwnerForwardsToOwner(t *testing.T) {
	nodes := startGroup(t, 3, nil)
	body := `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`

	// First submission teaches us the owner: whichever node's name the
	// returned job ID carries.
	code, v, hdr := submitTo(t, nodes[0], body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	if hdr.Get(ownerHeader) == "" {
		t.Fatal("submission response carries no owner header")
	}
	owner := nodeIdxOfJob(t, nodes, v.ID)
	waitDoneVia(t, nodes[owner], v.ID)

	// Now submit the identical request through a guaranteed non-owner.
	nonOwner := (owner + 1) % len(nodes)
	code, v2, hdr2 := submitTo(t, nodes[nonOwner], body)
	if code != http.StatusOK {
		t.Fatalf("forwarded resubmission status %d, want 200 (store hit on the owner)", code)
	}
	if !v2.FromStore {
		t.Fatal("owner did not serve the forwarded resubmission from its store")
	}
	if got := nodeIdxOfJob(t, nodes, v2.ID); got != owner {
		t.Fatalf("forwarded job landed on node %d, want owner %d", got, owner)
	}
	if gotNode := hdr2.Get(nodeHeader); gotNode != nodes[owner].srv.Cluster().SelfName() {
		t.Fatalf("response node stamp %q, want owner %q", gotNode, nodes[owner].srv.Cluster().SelfName())
	}
	if hdr2.Get(degradedHeader) != "" {
		t.Fatal("healthy-owner forwarding must not be marked degraded")
	}
	// The owner holds the persisted key; the non-owner's store stays empty.
	if v2.StoreKey == "" {
		t.Fatal("forwarded submission has no store key")
	}
	if _, err := nodes[owner].srv.Store().Get(v2.StoreKey); err != nil {
		t.Fatalf("owner's store is missing the key: %v", err)
	}
	if _, err := nodes[nonOwner].srv.Store().Get(v2.StoreKey); err == nil {
		t.Fatal("non-owner's store has the key; forwarding should leave it empty")
	}
}

// TestClusterReportBytesIdenticalFromEveryNode: the ?format=doc bytes —
// the ones provenance digests are computed over — must be identical no
// matter which node serves them.
func TestClusterReportBytesIdenticalFromEveryNode(t *testing.T) {
	nodes := startGroup(t, 3, nil)
	code, v, _ := submitTo(t, nodes[1], `{"kind":"run","app":"cuibm","scale":0.05}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	waitDoneVia(t, nodes[1], v.ID)

	var ref []byte
	for i, n := range nodes {
		resp, err := http.Get(n.url() + "/jobs/" + v.ID + "/report?format=doc")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("node %d: report status %d: %s", i, resp.StatusCode, raw)
		}
		if ref == nil {
			ref = raw
			continue
		}
		if !bytes.Equal(ref, raw) {
			t.Fatalf("node %d served different doc bytes than node 0 (%d vs %d bytes)", i, len(raw), len(ref))
		}
	}
}

// TestClusterSSEThroughProxy: an event stream opened on a node that does
// not hold the job is proxied to the creating node frame-by-frame and
// still ends with the terminal frame.
func TestClusterSSEThroughProxy(t *testing.T) {
	nodes := startGroup(t, 3, nil)
	code, v, _ := submitTo(t, nodes[0], `{"kind":"fleet","app":"amg","ranks":4,"scale":0.05}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	holder := nodeIdxOfJob(t, nodes, v.ID)
	other := (holder + 1) % len(nodes)
	frames, _ := readSSE(t, nodes[other].url()+"/jobs/"+v.ID+"/events")
	if len(frames) == 0 {
		t.Fatal("no frames through the proxy")
	}
	last := frames[len(frames)-1]
	if last.Event != "done" || last.View.Status != StateDone {
		t.Fatalf("proxied stream ended with %+v, want terminal done frame", last)
	}
	if last.View.Fleet == nil || last.View.Fleet.RanksDone != 4 {
		t.Fatalf("proxied terminal frame counters %+v, want 4 ranks done", last.View.Fleet)
	}
}

// TestClusterDegradesWhenOwnerDown: with the key's owner unreachable, a
// submission to any surviving node executes locally, honestly stamped as
// degraded, instead of failing.
func TestClusterDegradesWhenOwnerDown(t *testing.T) {
	nodes := startGroup(t, 3, nil)
	body := `{"kind":"run","app":"cumf_als","scale":0.05}`
	code, v, _ := submitTo(t, nodes[0], body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	owner := nodeIdxOfJob(t, nodes, v.ID)
	waitDoneVia(t, nodes[owner], v.ID)
	nodes[owner].http.Close()

	survivor := (owner + 1) % len(nodes)
	code, v2, hdr := submitTo(t, nodes[survivor], body)
	if code != http.StatusAccepted {
		t.Fatalf("degraded submission status %d, want 202 (local re-execution)", code)
	}
	if hdr.Get(degradedHeader) == "" {
		t.Fatal("degraded execution not stamped with the degraded header")
	}
	if got := nodeIdxOfJob(t, nodes, v2.ID); got != survivor {
		t.Fatalf("degraded job ran on node %d, want the receiving survivor %d", got, survivor)
	}
	waitDoneVia(t, nodes[survivor], v2.ID)
	// The survivor's own store now holds the result — availability first.
	if _, err := nodes[survivor].srv.Store().Get(v2.StoreKey); err != nil {
		t.Fatalf("survivor's store is missing the degraded result: %v", err)
	}
}

// TestClusterHopGuard: a request already marked forwarded executes where
// it lands, whatever the ring says — at most one hop, never a loop.
func TestClusterHopGuard(t *testing.T) {
	nodes := startGroup(t, 3, nil)
	body := `{"kind":"run","app":"rodinia_gaussian","scale":0.07}`
	for i, n := range nodes {
		req, err := http.NewRequest("POST", n.url()+"/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(forwardedHeader, "test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: status %d: %s", i, resp.StatusCode, raw)
		}
		var v View
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatal(err)
		}
		if got := nodeIdxOfJob(t, nodes, v.ID); got != i {
			t.Fatalf("hop-guarded submission to node %d executed on node %d", i, got)
		}
	}
}

// TestClusterLookupUnreachableNode: a job lookup whose node is down is a
// 502, not a silent 404 — the state genuinely lives only on that node.
func TestClusterLookupUnreachableNode(t *testing.T) {
	nodes := startGroup(t, 3, nil)
	code, v, _ := submitTo(t, nodes[2], `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	holder := nodeIdxOfJob(t, nodes, v.ID)
	waitDoneVia(t, nodes[holder], v.ID)
	nodes[holder].http.Close()
	other := (holder + 1) % len(nodes)
	resp, err := http.Get(nodes[other].url() + "/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("lookup through survivor: status %d, want 502", resp.StatusCode)
	}
}

// TestSingleNodeJobIDsUnqualified pins the compatibility floor: without
// a cluster, job IDs keep the historical unqualified form and no cluster
// headers appear.
func TestSingleNodeJobIDsUnqualified(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))
	j, err := s.Submit(Request{Kind: KindRun, App: "rodinia_gaussian", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j1" {
		t.Fatalf("single-node job ID %q, want j1", j.ID)
	}
	if _, _, ok := cluster.SplitJobID(j.ID); ok {
		t.Fatalf("single-node ID %q parsed as node-qualified", j.ID)
	}
}

// readSSELine-level proxy check: frames proxied via a non-holder arrive
// with the origin node's stamp, not the proxy's.
func TestClusterProxiedResponseKeepsOriginNodeStamp(t *testing.T) {
	nodes := startGroup(t, 3, nil)
	code, v, _ := submitTo(t, nodes[0], `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	holder := nodeIdxOfJob(t, nodes, v.ID)
	waitDoneVia(t, nodes[holder], v.ID)
	other := (holder + 1) % len(nodes)
	resp, err := http.Get(nodes[other].url() + "/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	stamps := resp.Header.Values(nodeHeader)
	want := nodes[holder].srv.Cluster().SelfName()
	if len(stamps) != 1 || stamps[0] != want {
		t.Fatalf("proxied response node stamps %v, want exactly [%s]", stamps, want)
	}
}
