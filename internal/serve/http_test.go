package serve

import (
	"net/http/httptest"
	"testing"
	"time"
)

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		name      string
		depth     int
		workers   int
		meanNanos int64
		fallback  time.Duration
		want      int
	}{
		// The regression: a short mean job time on an empty queue must
		// not round down to Retry-After: 0 (an immediate-retry
		// invitation, not a backoff).
		{"sub-second estimate clamps to 1", 0, 4, int64(time.Microsecond), time.Second, 1},
		{"zero fallback clamps to 1", 0, 1, 0, 0, 1},
		// depth+1 slots at 2s each through one worker.
		{"derives from depth and mean", 10, 1, int64(2 * time.Second), time.Second, 22},
		// The same backlog drains 4× faster across 4 workers.
		{"divides across workers", 10, 4, int64(2 * time.Second), time.Second, 6},
		{"caps at maxRetryAfterSeconds", 1000, 1, int64(time.Minute), time.Second, maxRetryAfterSeconds},
		// No history yet: the configured constant wins.
		{"falls back before first job", 5, 2, 0, 3 * time.Second, 3},
		{"zero workers treated as one", 1, 0, int64(time.Second), time.Second, 2},
	}
	for _, c := range cases {
		if got := retryAfterHint(c.depth, c.workers, c.meanNanos, c.fallback); got != c.want {
			t.Errorf("%s: retryAfterHint(%d, %d, %d, %v) = %d, want %d",
				c.name, c.depth, c.workers, c.meanNanos, c.fallback, got, c.want)
		}
	}
}

func TestRetryAfterAdaptsToObservedJobTime(t *testing.T) {
	s, err := New(Options{Workers: 2, QueueCapacity: 4, RetryAfter: 7 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Before any job completes the configured fallback is the hint.
	if got := s.retryAfterSeconds(); got != 7 {
		t.Fatalf("fallback hint = %d, want 7", got)
	}
	// One observed 4s job on an empty queue: one slot through two
	// workers ≈ 2s.
	s.noteJobDuration(4 * time.Second)
	if got := s.retryAfterSeconds(); got != 2 {
		t.Fatalf("derived hint = %d, want 2", got)
	}
	// An instantaneous job must still never yield 0.
	s2, err := New(Options{Workers: 2, QueueCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2.noteJobDuration(time.Microsecond)
	if got := s2.retryAfterSeconds(); got < 1 {
		t.Fatalf("hint = %d, must be at least 1", got)
	}
}

func TestFleetJobValidation(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, c := range []struct {
		name, body string
	}{
		{"missing app", `{"kind":"fleet"}`},
		{"unknown app", `{"kind":"fleet","app":"nope"}`},
		{"single-process app", `{"kind":"fleet","app":"cumf_als"}`},
		{"negative ranks", `{"kind":"fleet","app":"amg","ranks":-1}`},
		{"oversized world", `{"kind":"fleet","app":"amg","ranks":1025}`},
		{"apps list", `{"kind":"fleet","app":"amg","apps":["amg"]}`},
		{"ranks on run kind", `{"kind":"run","app":"amg","ranks":4}`},
	} {
		if code, _, _, raw := postJob(t, ts, c.body); code != 400 {
			t.Errorf("%s: status %d, want 400\n%s", c.name, code, raw)
		}
	}
}
