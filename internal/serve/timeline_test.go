package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"diogenes/internal/timeline"
)

// getRaw fetches a path and returns status, Content-Type and body.
func getRaw(t *testing.T, ts *httptest.Server, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// TestServedTimeline drives both timeline endpoints for a run job and a
// fleet job: the HTML page must be self-contained with the model inlined,
// and timeline.json must be the raw model both renderers consume.
func TestServedTimeline(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, run, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`)
	if code != 202 {
		t.Fatalf("run submit: status %d", code)
	}
	waitState(t, ts, run.ID)

	code, ct, body := getRaw(t, ts, "/jobs/"+run.ID+"/timeline")
	if code != 200 || !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("timeline: status %d, Content-Type %q", code, ct)
	}
	for _, want := range []string{`<script id="model" type="application/json">`, `id="chartbox"`, "rodinia_gaussian"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("timeline page missing %q", want)
		}
	}
	// The embedded model must parse and match the model endpoint's
	// structure: all three renderers read the same document.
	_, open, _ := bytes.Cut(body, []byte(`<script id="model" type="application/json">`))
	embedded, _, ok := bytes.Cut(open, []byte("</script>"))
	if !ok {
		t.Fatal("model script never closes")
	}
	em, err := timeline.ReadModel(bytes.NewReader(embedded))
	if err != nil {
		t.Fatalf("embedded model: %v", err)
	}

	code, ct, body = getRaw(t, ts, "/jobs/"+run.ID+"/timeline.json")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("timeline.json: status %d, Content-Type %q", code, ct)
	}
	m, err := timeline.ReadModel(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("timeline.json: %v", err)
	}
	if m.Kind != "run" || m.Meta.App != "rodinia_gaussian" || m.Meta.Version == "" {
		t.Fatalf("model header: kind=%q meta=%+v", m.Kind, m.Meta)
	}
	if len(m.Lanes) < 2 || len(m.Events) == 0 || len(m.Overlays) != 4 {
		t.Fatalf("model shape: %d lanes, %d events, %d overlays", len(m.Lanes), len(m.Events), len(m.Overlays))
	}
	var cpu, gpuLanes int
	for _, l := range m.Lanes {
		switch l.Kind {
		case timeline.LaneCPU:
			cpu++
		case timeline.LaneGPU:
			gpuLanes++
		}
	}
	if cpu != 1 || gpuLanes == 0 {
		t.Fatalf("run model lanes: %d cpu, %d gpu", cpu, gpuLanes)
	}
	if em.Kind != m.Kind || len(em.Lanes) != len(m.Lanes) || len(em.Events) != len(m.Events) {
		t.Fatalf("embedded model diverges from timeline.json: %d/%d lanes, %d/%d events",
			len(em.Lanes), len(m.Lanes), len(em.Events), len(m.Events))
	}

	// Fleet job: rank lanes plus the barrier lane.
	code, fleet, _, _ := postJob(t, ts, `{"kind":"fleet","app":"amg","ranks":2,"scale":0.02}`)
	if code != 202 {
		t.Fatalf("fleet submit: status %d", code)
	}
	waitState(t, ts, fleet.ID)
	code, _, body = getRaw(t, ts, "/jobs/"+fleet.ID+"/timeline.json")
	if code != 200 {
		t.Fatalf("fleet timeline.json: status %d\n%s", code, body)
	}
	fm, err := timeline.ReadModel(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("fleet model: %v", err)
	}
	if fm.Kind != "fleet" || fm.Meta.Ranks != 2 {
		t.Fatalf("fleet model header: kind=%q meta=%+v", fm.Kind, fm.Meta)
	}
	var ranks int
	for _, l := range fm.Lanes {
		if l.Kind == timeline.LaneRank {
			ranks++
		}
	}
	if ranks != 2 {
		t.Fatalf("fleet model rank lanes = %d, want 2", ranks)
	}
	if code, _, _ := getRaw(t, ts, "/jobs/"+fleet.ID+"/timeline"); code != 200 {
		t.Fatalf("fleet timeline page: status %d", code)
	}

	// Replay job: the timeline renders the replay's own measurement — the
	// same lane kinds and stage overlays, though stream placement may
	// legitimately differ from the live run's.
	traceRaw, _ := runDocParts(t, getReport(t, ts, run.ID, "json"))
	replayBody, err := json.Marshal(map[string]any{"kind": "replay", "trace": json.RawMessage(traceRaw)})
	if err != nil {
		t.Fatal(err)
	}
	code, replay, _, raw := postJob(t, ts, string(replayBody))
	if code != 202 {
		t.Fatalf("replay submit: status %d: %s", code, raw)
	}
	waitState(t, ts, replay.ID)
	code, _, body = getRaw(t, ts, "/jobs/"+replay.ID+"/timeline.json")
	if code != 200 {
		t.Fatalf("replay timeline.json: status %d\n%s", code, body)
	}
	pm, err := timeline.ReadModel(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("replay model: %v", err)
	}
	var replCPU, replGPU int
	for _, l := range pm.Lanes {
		switch l.Kind {
		case timeline.LaneCPU:
			replCPU++
		case timeline.LaneGPU:
			replGPU++
		}
	}
	if pm.Kind != "replay" || replCPU != 1 || replGPU == 0 || len(pm.Overlays) != 4 {
		t.Fatalf("replay model: kind=%q, %d cpu + %d gpu lanes, %d overlays",
			pm.Kind, replCPU, replGPU, len(pm.Overlays))
	}
	if code, _, _ := getRaw(t, ts, "/jobs/"+replay.ID+"/timeline"); code != 200 {
		t.Fatalf("replay timeline page: status %d", code)
	}
}

// TestServedTimelineErrors covers the non-happy paths: unknown job,
// not-done job, and a job kind with no timeline.
func TestServedTimelineErrors(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, _ := getRaw(t, ts, "/jobs/nope/timeline"); code != 404 {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
	if code, _, _ := getRaw(t, ts, "/jobs/nope/timeline.json"); code != 404 {
		t.Fatalf("unknown job json: status %d, want 404", code)
	}

	// A suite kind completes but has no single timeline.
	code, v, _, _ := postJob(t, ts, `{"kind":"table1","scale":0.02}`)
	if code != 202 {
		t.Fatalf("table1 submit: status %d", code)
	}
	waitState(t, ts, v.ID)
	code, _, body := getRaw(t, ts, "/jobs/"+v.ID+"/timeline")
	if code != 400 || !bytes.Contains(body, []byte("has no timeline")) {
		t.Fatalf("table1 timeline: status %d body %s", code, body)
	}
}
