package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"diogenes/internal/ledger"
)

// maxRequestBody bounds a submission document; analysis requests are a
// few hundred bytes, so anything near this is garbage.
const maxRequestBody = 1 << 20

// buildMux wires the API:
//
//	POST   /jobs                    submit an analysis job
//	GET    /jobs                    list retained jobs
//	GET    /jobs/{id}               job status + span-derived progress
//	DELETE /jobs/{id}               cancel a job
//	GET    /jobs/{id}/events        SSE stream of job progress, ending in
//	                                a terminal frame
//	GET    /jobs/{id}/report        completed report (?format=json|text|doc;
//	                                ?proof=1 wraps the stored document in a
//	                                ledger inclusion-proof envelope)
//	GET    /jobs/{id}/timeline      served timeline explorer (self-contained HTML)
//	GET    /jobs/{id}/timeline.json the raw timeline model
//	GET    /ledger/root             the provenance ledger's head commitment
//	GET    /healthz                 liveness + queue occupancy + ledger head
//	GET    /metrics                 the server's obs registry (?format=prom
//	                                or a text/plain Accept selects Prometheus
//	                                text exposition)
//
// In cluster mode every route answers on every node: submissions forward
// to the key's ring owner, job lookups (status, events, report,
// timeline, cancel) proxy to the node named in the job ID, and a
// one-hop guard plus local-execution degradation keep the group serving
// through peer failures.
func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /jobs/{id}/timeline.json", s.handleTimelineJSON)
	mux.HandleFunc("GET /ledger/root", s.handleLedgerRoot)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.obs.Metrics().Handler())
	if s.cluster != nil {
		// Stamp every response with the answering node so clients and
		// tests can see routing; proxied responses keep the origin
		// node's stamp (Set before the inner handler may overwrite it).
		name := s.cluster.SelfName()
		inner := mux
		wrapped := http.NewServeMux()
		wrapped.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(nodeHeader, name)
			inner.ServeHTTP(w, r)
		})
		s.mux = wrapped
		return
	}
	s.mux = mux
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
}

// maxRetryAfterSeconds caps the backoff hint — past a few minutes a
// bigger number only makes clients give up, not back off better.
const maxRetryAfterSeconds = 300

// retryAfterSeconds renders the backoff hint for 429/503 responses,
// derived from how long the current backlog will actually take to drain:
// queue depth times the observed mean job duration, divided across the
// worker set. Before any job has completed it falls back to the
// configured constant. The result is clamped to [1, maxRetryAfterSeconds]
// — in particular it is never 0, which RFC 9110 permits but which turns a
// backoff hint into an immediate-retry invitation.
func (s *Server) retryAfterSeconds() int {
	return retryAfterHint(s.queue.Depth(), s.queue.Workers(), s.meanJobNanos(), s.opts.RetryAfter)
}

// retryAfterHint is the pure computation behind retryAfterSeconds.
// meanNanos 0 (no history yet) selects the fallback duration.
func retryAfterHint(depth, workers int, meanNanos int64, fallback time.Duration) int {
	if workers < 1 {
		workers = 1
	}
	est := fallback
	if meanNanos > 0 {
		// depth+1 accounts for the request being turned away: the queue
		// must drain one slot before a retry can be accepted.
		est = time.Duration(depth+1) * time.Duration(meanNanos) / time.Duration(workers)
	}
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	var req Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if s.routeSubmit(w, r, req, body) {
		return // answered by the key's ring owner
	}
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrShuttingDown):
		// Compute the hint exactly once: the queue depth it reads is
		// live, so computing it again for the body could disagree with
		// the Retry-After header already sent.
		ra := s.retryAfterFn()
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error(), RetryAfterSeconds: ra})
	case errors.Is(err, ErrQueueFull):
		// The backpressure contract: a full backlog is a visible 429
		// with a retry hint, never silent unbounded buffering. Header
		// and body carry the same single computation (see above).
		ra := s.retryAfterFn()
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), RetryAfterSeconds: ra})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		code := http.StatusAccepted
		if j.State() == StateDone {
			code = http.StatusOK // answered from the persistent store
		}
		writeJSON(w, code, j.View())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.routeJobID(w, r, id) {
		return
	}
	j := s.Job(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.routeJobID(w, r, id) {
		return
	}
	// Cancel returns the job handle; rendering that handle (instead of
	// looking the ID up again) is what makes this safe against
	// concurrent retention shedding — the regression was a nil deref
	// when manager.add evicted the finished job between Cancel and a
	// second s.Job(id) lookup.
	j := s.Cancel(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %q", id)})
		return
	}
	if h := s.hookCanceled; h != nil {
		h(id)
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.routeJobID(w, r, id) {
		return
	}
	j := s.Job(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %q", id)})
		return
	}
	data := j.Result()
	if data == nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s is %s, not done", j.ID, j.State())})
		return
	}
	doc, err := decodeResult(data)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	s.setLedgerHeaders(w, j)
	if r.URL.Query().Get("proof") != "" {
		s.writeProofEnvelope(w, j)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc.JSON)
	case "doc":
		// The exact stored document bytes, unformatted: what the store
		// persisted, what the ledger digested, what a proof's digest field
		// must equal the sha256 of. Any re-encoding (indentation, field
		// ordering) would break digest comparison, so these bytes pass
		// through verbatim.
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "text", "txt", "md", "markdown":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(doc.Text))
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown format %q (want json, text or doc)", format)})
	}
}

// setLedgerHeaders stamps a report response with its provenance
// coordinates when the report is ledgered: the entry's sequence number
// and the ledger's current head commitment. Informational — the real
// verification path is the ?proof=1 envelope.
func (s *Server) setLedgerHeaders(w http.ResponseWriter, j *Job) {
	if s.ledger == nil || j.storeKey == "" {
		return
	}
	seq, ok := s.ledger.SeqFor(j.storeKey)
	if !ok {
		return
	}
	w.Header().Set("X-Diogenes-Ledger-Seq", strconv.FormatUint(seq, 10))
	w.Header().Set("X-Diogenes-Ledger-Chain", s.ledger.Head().Chain)
}

// proofEnvelope is the ?proof=1 response: everything a client needs to
// verify a served report statelessly. The client fetches the raw
// document bytes (?format=doc), checks sha256(bytes) == proof.digest,
// and runs ledger.Verify(proof, head.chain) — or against a head pinned
// earlier from GET /ledger/root.
type proofEnvelope struct {
	Key   string        `json:"key"`
	Proof *ledger.Proof `json:"proof"`
	Head  ledger.Head   `json:"head"`
}

func (s *Server) writeProofEnvelope(w http.ResponseWriter, j *Job) {
	if s.ledger == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no provenance ledger (store disabled, or another instance holds the writer lock)"})
		return
	}
	if j.storeKey == "" {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("job %s is not content-addressed; its report is not ledgered", j.ID)})
		return
	}
	seq, ok := s.ledger.SeqFor(j.storeKey)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("report for job %s is not in the provenance ledger", j.ID)})
		return
	}
	p, head, err := s.ledger.Prove(seq)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, proofEnvelope{Key: j.storeKey, Proof: p, Head: head})
}

// handleLedgerRoot publishes the ledger's head commitment. Pinning this
// value externally is what upgrades the chain's tamper evidence from
// "interior edits" to "any edit including tail removal".
func (s *Server) handleLedgerRoot(w http.ResponseWriter, _ *http.Request) {
	if s.ledger == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no provenance ledger (store disabled, or another instance holds the writer lock)"})
		return
	}
	writeJSON(w, http.StatusOK, s.ledger.Head())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{
		"status":        "ok",
		"accepting":     s.accepting.Load(),
		"queueDepth":    s.queue.Depth(),
		"queueCapacity": s.queue.Capacity(),
		"jobs":          len(s.Jobs()),
	}
	if s.ledger != nil {
		// The ledger head rides along so an operator's liveness probe also
		// watches provenance: a growing "unsealed" depth means appends are
		// outrunning seals (or the flush timer is misconfigured).
		resp["ledger"] = s.ledger.Head()
	}
	if s.cluster != nil {
		resp["cluster"] = map[string]any{
			"self":  s.cluster.Self(),
			"node":  s.cluster.SelfName(),
			"peers": s.cluster.Peers(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
