package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	Event string
	View  View
}

// readSSE consumes an event stream until the terminal frame (or EOF) and
// returns the parsed frames plus how many heartbeat comments arrived.
func readSSE(t *testing.T, url string) (frames []sseFrame, heartbeats int) {
	t.Helper()
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ": heartbeat"):
			heartbeats++
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			var v View
			if err := json.Unmarshal([]byte(data), &v); err != nil {
				t.Fatalf("frame %q carries unparseable data %q: %v", event, data, err)
			}
			frames = append(frames, sseFrame{Event: event, View: v})
			if event == "done" {
				return frames, heartbeats
			}
			event, data = "", ""
		}
	}
	return frames, heartbeats
}

// TestEventsStreamEndsWithTerminalFrame pins the SSE contract for a run
// job: at least one progress frame, then exactly one terminal frame
// whose view matches the finished job.
func TestEventsStreamEndsWithTerminalFrame(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4, EventSnapshot: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	frames, _ := readSSE(t, ts.URL+"/jobs/"+v.ID+"/events")
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want at least a progress and a done frame: %+v", len(frames), frames)
	}
	for _, f := range frames[:len(frames)-1] {
		if f.Event != "progress" {
			t.Fatalf("non-terminal frame has event %q", f.Event)
		}
	}
	last := frames[len(frames)-1]
	if last.Event != "done" {
		t.Fatalf("stream ended with %q, want done", last.Event)
	}
	if last.View.Status != StateDone {
		t.Fatalf("terminal frame status %q, want done", last.View.Status)
	}
	if last.View.SpansTotal == 0 || last.View.SpansEnded == 0 {
		t.Fatalf("terminal frame spans %d/%d, want pipeline progress recorded",
			last.View.SpansEnded, last.View.SpansTotal)
	}
	// The stream and the poll endpoint must agree on the final state.
	got := waitState(t, ts, v.ID)
	if got.SpansTotal != last.View.SpansTotal || got.SpansEnded != last.View.SpansEnded {
		t.Fatalf("poll sees spans %d/%d, terminal frame said %d/%d",
			got.SpansEnded, got.SpansTotal, last.View.SpansEnded, last.View.SpansTotal)
	}
}

// TestEventsFleetTerminalCountersMatchFinalView pins the satellite
// requirement: a fleet job's event stream ends with a terminal frame
// whose reduction counters equal the final View.Fleet.
func TestEventsFleetTerminalCountersMatchFinalView(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4, EventSnapshot: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v, _, _ := postJob(t, ts, `{"kind":"fleet","app":"amg","ranks":4,"scale":0.05}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	frames, _ := readSSE(t, ts.URL+"/jobs/"+v.ID+"/events")
	last := frames[len(frames)-1]
	if last.Event != "done" {
		t.Fatalf("stream ended with %q, want done", last.Event)
	}
	if last.View.Fleet == nil {
		t.Fatal("terminal fleet frame carries no reduction counters")
	}
	if last.View.Fleet.RanksDone != 4 || last.View.Fleet.RanksTotal != 4 {
		t.Fatalf("terminal counters %d/%d ranks, want 4/4",
			last.View.Fleet.RanksDone, last.View.Fleet.RanksTotal)
	}
	final := waitState(t, ts, v.ID)
	if final.Fleet == nil {
		t.Fatal("final view lost its fleet counters")
	}
	if *last.View.Fleet != *final.Fleet {
		t.Fatalf("terminal frame counters %+v != final view counters %+v",
			*last.View.Fleet, *final.Fleet)
	}
}

// TestEventsFinishedJobYieldsImmediateTerminalFrame: a job that is
// already done (here: served from the persistent store) streams its
// terminal frame without waiting for any tick.
func TestEventsFinishedJobYieldsImmediateTerminalFrame(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4, StoreDir: t.TempDir(),
		EventSnapshot: time.Hour, EventHeartbeat: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, v, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitState(t, ts, v.ID)
	code, v2, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.05}`)
	if code != http.StatusOK || !v2.FromStore {
		t.Fatalf("resubmission not store-served: status %d, fromStore %v", code, v2.FromStore)
	}
	start := time.Now()
	frames, _ := readSSE(t, ts.URL+"/jobs/"+v2.ID+"/events")
	if since := time.Since(start); since > 10*time.Second {
		t.Fatalf("terminal frame for a finished job took %s", since)
	}
	last := frames[len(frames)-1]
	if last.Event != "done" || last.View.Status != StateDone || !last.View.FromStore {
		t.Fatalf("unexpected terminal frame %+v", last)
	}
}

// TestEventsHeartbeatsKeepQuietStreamsAlive: with an artificially slow
// job and a fast heartbeat, comment frames appear between progress
// frames.
func TestEventsHeartbeatsKeepQuietStreamsAlive(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4,
		EventSnapshot: time.Hour, EventHeartbeat: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	entered := make(chan struct{})
	s.hookRunning = func(*Job) {
		close(entered)
		<-release
	}
	code, v, _, _ := postJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	<-entered
	go func() {
		time.Sleep(200 * time.Millisecond)
		close(release)
	}()
	frames, heartbeats := readSSE(t, ts.URL+"/jobs/"+v.ID+"/events")
	if heartbeats == 0 {
		t.Fatal("no heartbeat comments on a quiet stream")
	}
	if frames[len(frames)-1].Event != "done" {
		t.Fatal("stream did not end with the terminal frame")
	}
}

func TestEventsUnknownJob(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(testCtx(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs/j999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// testCtx returns a context bounded by the test's own lifetime.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}
