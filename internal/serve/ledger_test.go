package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"diogenes/internal/ledger"
)

// newLedgeredServer builds a store-backed server with a timer-free
// ledger so tests control sealing deterministically.
func newLedgeredServer(t *testing.T, dir string, batch int) *Server {
	t.Helper()
	s, err := New(Options{
		Workers: 1, QueueCapacity: 4,
		StoreDir: dir, LedgerBatch: batch, LedgerFlush: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runOneJob submits a cheap cacheable job and waits for completion,
// returning its ID.
func runOneJob(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	code, v, _, raw := postJob(t, ts, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: status %d: %s", code, raw)
	}
	if got := waitState(t, ts, v.ID); got.Status != "done" {
		t.Fatalf("job finished %s: %s", got.Status, got.Error)
	}
	return v.ID
}

func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw
}

// TestServedProofVerifiesStatelessly is the acceptance path: fetch the
// raw document bytes, fetch the proof envelope, and verify the proof
// against the independently fetched /ledger/root head — using nothing
// but the three HTTP responses.
func TestServedProofVerifiesStatelessly(t *testing.T) {
	s := newLedgeredServer(t, t.TempDir(), 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	id := runOneJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)

	// The exact stored bytes.
	code, hdr, doc := getBody(t, ts.URL+"/jobs/"+id+"/report?format=doc")
	if code != 200 {
		t.Fatalf("format=doc: status %d: %s", code, doc)
	}
	if hdr.Get("X-Diogenes-Ledger-Seq") == "" {
		t.Error("report response missing X-Diogenes-Ledger-Seq")
	}

	// The proof envelope.
	code, _, rawEnv := getBody(t, ts.URL+"/jobs/"+id+"/report?proof=1")
	if code != 200 {
		t.Fatalf("proof=1: status %d: %s", code, rawEnv)
	}
	var env struct {
		Key   string        `json:"key"`
		Proof *ledger.Proof `json:"proof"`
		Head  ledger.Head   `json:"head"`
	}
	if err := json.Unmarshal(rawEnv, &env); err != nil {
		t.Fatalf("decode envelope: %v\n%s", err, rawEnv)
	}

	// The published head. Proving sealed the batch, so the root endpoint
	// must agree with the envelope's head.
	code, _, rawHead := getBody(t, ts.URL+"/ledger/root")
	if code != 200 {
		t.Fatalf("/ledger/root: status %d: %s", code, rawHead)
	}
	var head ledger.Head
	if err := json.Unmarshal(rawHead, &head); err != nil {
		t.Fatal(err)
	}
	if head.Chain != env.Head.Chain {
		t.Fatalf("envelope head %s != published head %s", env.Head.Chain, head.Chain)
	}

	// Client-side verification: hash the bytes, check the proof.
	sum := sha256.Sum256(doc)
	if hex.EncodeToString(sum[:]) != env.Proof.Digest {
		t.Fatalf("served document does not hash to the proven digest")
	}
	if err := ledger.Verify(env.Proof, head.Chain); err != nil {
		t.Fatalf("proof does not verify against the published head: %v", err)
	}
	// And a mutated digest must not.
	bad := *env.Proof
	bad.Digest = strings.Repeat("0", 64)
	if err := ledger.Verify(&bad, head.Chain); err == nil {
		t.Fatal("mutated proof verified")
	}
}

func TestHealthzReportsLedgerHead(t *testing.T) {
	s := newLedgeredServer(t, t.TempDir(), 64)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	runOneJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)

	code, _, raw := getBody(t, ts.URL+"/healthz")
	if code != 200 || !strings.Contains(string(raw), `"status": "ok"`) {
		t.Fatalf("healthz: status %d: %s", code, raw)
	}
	var resp struct {
		Ledger *ledger.Head `json:"ledger"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ledger == nil {
		t.Fatalf("healthz missing ledger head:\n%s", raw)
	}
	if resp.Ledger.Seq != 1 || resp.Ledger.Unsealed != 1 {
		t.Errorf("ledger head = %+v, want seq 1 with 1 unsealed (batch 64, timer off)", resp.Ledger)
	}
	if resp.Ledger.Chain == "" {
		t.Error("ledger head missing chain commitment")
	}
}

// TestLedgerEndpointsWithoutStore: an in-memory server has no ledger;
// the provenance surface must say so, not pretend.
func TestLedgerEndpointsWithoutStore(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	if code, _, _ := getBody(t, ts.URL+"/ledger/root"); code != 404 {
		t.Fatalf("/ledger/root without a store: status %d, want 404", code)
	}
	id := runOneJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)
	if code, _, _ := getBody(t, ts.URL+"/jobs/"+id+"/report?proof=1"); code != 404 {
		t.Fatalf("proof without a ledger: status %d, want 404", code)
	}
}

// TestCrashTruncatedLedgerRepairsOnReopen is the crash-consistency
// satellite: a ledger chopped mid-entry audits as truncation (not
// corruption), the daemon reopens it cleanly, and after a graceful
// shutdown the store audits clean again.
func TestCrashTruncatedLedgerRepairsOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := newLedgeredServer(t, dir, 2)
	ts := httptest.NewServer(s.Handler())
	runOneJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: cut into the final (seal) line.
	lp := filepath.Join(dir, ledgerName)
	fi, err := os.Stat(lp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(lp, fi.Size()-25); err != nil {
		t.Fatal(err)
	}

	a, err := VerifyStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != ledger.Truncated {
		t.Fatalf("chopped tail audits as %s (%s), want truncated", a.Outcome, a.Detail)
	}

	// The daemon reopens and repairs — this must not be ErrCorrupt.
	s2 := newLedgeredServer(t, dir, 2)
	if s2.Ledger() == nil {
		t.Fatal("reopened server has no ledger")
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Close sealed the surviving entries; the store audits clean, with
	// every resident report still vouched for.
	a, err = VerifyStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != ledger.Clean {
		t.Fatalf("after repair the store audits %s (%s), want clean", a.Outcome, a.Detail)
	}
	if a.ReportsChecked == 0 {
		t.Fatal("repair lost the resident report's ledger entry")
	}
}

// TestTamperedLedgerStopsDaemon: a ledger whose interior was altered
// must refuse to open — the daemon fails startup rather than serve from
// a store with broken provenance.
func TestTamperedLedgerStopsDaemon(t *testing.T) {
	dir := t.TempDir()
	s := newLedgeredServer(t, dir, 2)
	ts := httptest.NewServer(s.Handler())
	runOneJob(t, ts, `{"kind":"run","app":"rodinia_gaussian","scale":0.02}`)
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	lp := filepath.Join(dir, ledgerName)
	b, err := os.ReadFile(lp)
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(string(b), `"digest":"`) + len(`"digest":"`)
	if b[i] == 'f' {
		b[i] = '0'
	} else {
		b[i] = 'f'
	}
	if err := os.WriteFile(lp, b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = New(Options{Workers: 1, QueueCapacity: 4, StoreDir: dir, LedgerFlush: -1})
	if !errors.Is(err, ledger.ErrCorrupt) {
		t.Fatalf("New on a tampered ledger: %v, want ErrCorrupt", err)
	}
}

// TestVerifyStoreFlagsPlantedReport: a resident report the ledger never
// vouched for is tampering when the chain itself replays clean.
func TestVerifyStoreFlagsPlantedReport(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ledger.Open(ledger.Config{Path: filepath.Join(dir, ledgerName), BatchSize: 1, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	st.AttachLedger(l)
	key := strings.Repeat("ab", 32)
	if err := st.Put(key, []byte("vouched")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	planted := strings.Repeat("cd", 32)
	if err := os.WriteFile(filepath.Join(dir, planted+storeExt), []byte("planted"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := VerifyStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != ledger.Tampered || !strings.Contains(a.Detail, planted) {
		t.Fatalf("planted report audits %s (%s), want tampered naming it", a.Outcome, a.Detail)
	}
}

// TestVerifyStoreToleratesEviction: a ledgered key whose file the LRU
// budget evicted is counted missing, never flagged.
func TestVerifyStoreToleratesEviction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ledger.Open(ledger.Config{Path: filepath.Join(dir, ledgerName), BatchSize: 1, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	st.AttachLedger(l)
	key := strings.Repeat("ab", 32)
	if err := st.Put(key, []byte("evict-me")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, key+storeExt)); err != nil {
		t.Fatal(err)
	}
	a, err := VerifyStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != ledger.Clean || a.ReportsMissing != 1 {
		t.Fatalf("evicted report audits %s with %d missing, want clean with 1", a.Outcome, a.ReportsMissing)
	}
}

// TestOpenDiskStoreSweepsStaleTemps: crash-leftover temp files older
// than the sweep age are reclaimed at open; a fresh one (a live
// sibling's in-flight write) survives.
func TestOpenDiskStoreSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, tmpPrefix+"stale123")
	fresh := filepath.Join(dir, tmpPrefix+"fresh456")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpSweepAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskStore(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale temp file survived the open sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file was swept: %v", err)
	}
}
