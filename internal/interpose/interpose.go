// Package interpose is the binary-instrumentation layer of the tool: the
// analog of what Diogenes does with Dyninst against libcuda.so.
//
// It provides the three capabilities the FFM stages are built on:
//
//   - Discover: the §3.1 identification test that finds the internal driver
//     function where the CPU actually waits, by launching a never-completing
//     kernel, calling known synchronous API functions, and seeing which
//     wrapped internal function is entered but never exited;
//   - CallTracer: entry/exit tracing of a chosen set of driver functions,
//     producing trace.Records with durations, synchronization waits and call
//     stacks;
//   - RangeTracker: load/store instrumentation over the CPU memory ranges
//     that GPU computation may modify, used by stages 3 and 4 to find the
//     first instruction accessing protected data after a synchronization.
//
// Every capability charges virtual-time overhead per event, so instrumented
// runs are measurably slower than the baseline — the effect §5.3 quantifies
// at 8×–20× across all stages.
package interpose

import (
	"errors"
	"fmt"

	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/obs"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

// ErrNoSyncFunction is returned when the discovery test cannot isolate a
// unique blocking internal function.
var ErrNoSyncFunction = errors.New("interpose: discovery found no unique sync function")

// Discover runs the synchronization-function identification test (§3.1):
// "We identify the underlying function that performs the wait by a set of
// simple tests that launches a never completing GPU kernel, calling known
// synchronous functions (such as cuCtxSynchronize) to identify the function
// where the CPU waits."
//
// factory must create a fresh simulated process each call; the test runs
// once per known synchronous API function and intersects the candidates.
// The returned Func is the internal funnel every blocking operation shares.
func Discover(factory func() *cuda.Context) (cuda.Func, error) {
	knownSync := []func(*cuda.Context){
		func(c *cuda.Context) { c.DeviceSynchronize() },
		func(c *cuda.Context) { c.ThreadSynchronize() },
		func(c *cuda.Context) { c.StreamSynchronize(gpu.LegacyStream) },
	}
	survivors := make(map[cuda.Func]int)
	for trial, syncCall := range knownSync {
		stuck, err := runDiscoveryTrial(factory(), syncCall)
		if err != nil {
			return "", err
		}
		for fn := range stuck {
			survivors[fn]++
		}
		// Keep only candidates stuck in every trial so far.
		for fn, n := range survivors {
			if n != trial+1 {
				delete(survivors, fn)
			}
		}
	}
	if len(survivors) != 1 {
		return "", fmt.Errorf("%w: %d candidates survived", ErrNoSyncFunction, len(survivors))
	}
	for fn := range survivors {
		return fn, nil
	}
	panic("unreachable")
}

// runDiscoveryTrial wraps every internal driver function with depth
// counters, launches a kernel that never completes, performs the known
// synchronous call, and reports which internal functions were entered but
// never exited when the watchdog (the recovered HangError) fired.
func runDiscoveryTrial(ctx *cuda.Context, syncCall func(*cuda.Context)) (stuck map[cuda.Func]bool, err error) {
	depth := make(map[cuda.Func]int)
	for _, fn := range cuda.InternalFuncs {
		fn := fn
		ctx.AttachProbe(fn, cuda.Probe{
			Entry: func(*cuda.Call) { depth[fn]++ },
			Exit:  func(*cuda.Call) { depth[fn]-- },
		})
	}
	if _, err := ctx.LaunchKernel(cuda.KernelSpec{
		Name:     "__diogenes_spin_kernel",
		Duration: simtime.Duration(simtime.Infinity),
		Stream:   gpu.LegacyStream,
	}); err != nil {
		return nil, fmt.Errorf("interpose: launching spin kernel: %w", err)
	}
	hung := false
	func() {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := v.(cuda.HangError); ok {
					hung = true
					return
				}
				panic(v)
			}
		}()
		syncCall(ctx)
	}()
	if !hung {
		return nil, fmt.Errorf("interpose: known synchronous call did not block on the spin kernel")
	}
	stuck = make(map[cuda.Func]bool)
	for fn, d := range depth {
		if d > 0 {
			stuck[fn] = true
		}
	}
	return stuck, nil
}

// TracerOptions configures a CallTracer.
type TracerOptions struct {
	// Overhead is the virtual-time cost charged at each probe firing
	// (entry and exit separately), modelling trampoline + snippet cost.
	Overhead simtime.Duration
	// CaptureStacks records a call-stack snapshot per traced operation.
	CaptureStacks bool
	// CapturePayloads copies transfer payloads into the records' Payload
	// hook (delivered via the OnTransferPayload callback).
	CapturePayloads bool
	// OnRecord, if set, is invoked as each record is appended; the pointer
	// addresses the stored record and stays valid until Records() is
	// called (records live in a per-run arena, so later allocations never
	// relocate them), so annotations written through it persist — even
	// ones written after further calls have been traced, as stage 3's
	// protected-access annotation is.
	OnRecord func(*trace.Record, *cuda.Call)
	// Metrics, if set, receives self-measurement telemetry: probe firings
	// and charged overhead (interpose/probe_firings,
	// interpose/probe_overhead_ns), record counts (interpose/records), and
	// per-call virtual durations (interpose/call_ns, interpose/sync_wait_ns
	// histograms). Purely observational — recording never touches the
	// virtual clock.
	Metrics *obs.Registry
}

// CallTracer performs entry/exit tracing of a set of driver functions
// (stage 2's mechanism). It records one trace.Record per call that either
// synchronized or transferred data; calls that did neither (e.g. a
// cudaMalloc) produce no record, matching §5.2: "Diogenes does not collect
// performance data on calls that do not contain a problematic
// synchronization or memory transfer operation."
type CallTracer struct {
	ctx    *cuda.Context
	opts   TracerOptions
	probes []cuda.ProbeID
	// arena slab-allocates records during the run; Records() flattens it
	// into final exactly once. Slabs are pooled process-wide, so tracing
	// allocates no record memory in steady state.
	arena   *trace.Arena
	final   []trace.Record
	done    bool
	nextSeq int64
	// entryLedger is the instrumentation-overhead ledger at the current
	// call's entry, captured so recorded timestamps can be reported on the
	// application's own (overhead-compensated) timeline. Driver calls do
	// not nest, so a single slot suffices.
	entryLedger simtime.Duration

	// Instrument pointers resolved once at construction (nil-safe no-ops
	// when TracerOptions.Metrics is unset).
	mFirings    *obs.Counter
	mProbeNS    *obs.Counter
	mRecords    *obs.Counter
	mArenaBytes *obs.Gauge
	mCallNS     *obs.Histogram
	mSyncWait   *obs.Histogram
}

// NewCallTracer attaches entry/exit probes to each function in funcs.
func NewCallTracer(ctx *cuda.Context, funcs []cuda.Func, opts TracerOptions) *CallTracer {
	t := &CallTracer{ctx: ctx, opts: opts, arena: trace.NewArena()}
	m := opts.Metrics
	t.mFirings = m.Counter("interpose/probe_firings")
	t.mProbeNS = m.Counter("interpose/probe_overhead_ns")
	t.mRecords = m.Counter("interpose/records")
	t.mArenaBytes = m.Gauge("interpose/arena_bytes")
	t.mCallNS = m.Histogram("interpose/call_ns")
	t.mSyncWait = m.Histogram("interpose/sync_wait_ns")
	if opts.CaptureStacks {
		ctx.SetStackCapture(true)
	}
	if opts.CapturePayloads {
		ctx.SetPayloadCapture(true)
	}
	for _, fn := range funcs {
		id := ctx.AttachProbe(fn, cuda.Probe{
			Overhead: opts.Overhead,
			Entry:    t.onEntry,
			Exit:     t.onExit,
		})
		t.probes = append(t.probes, id)
	}
	return t
}

func (t *CallTracer) onEntry(call *cuda.Call) {
	// The probe's own entry overhead was charged after Call.Entry was
	// stamped; exclude it from the snapshot.
	t.entryLedger = t.ctx.InstrumentationOverhead() - t.opts.Overhead
	t.mFirings.Inc()
	t.mProbeNS.Add(int64(t.opts.Overhead))
}

func (t *CallTracer) onExit(call *cuda.Call) {
	t.mFirings.Inc()
	t.mProbeNS.Add(int64(t.opts.Overhead))
	isTransfer := call.Kind == cuda.KindTransfer
	if !isTransfer && call.Scope == cuda.SyncNone {
		return // neither a synchronization nor a transfer: no data collected
	}
	exitLedger := t.ctx.InstrumentationOverhead() - t.opts.Overhead
	t.nextSeq++
	class := trace.ClassSync
	if isTransfer {
		class = trace.ClassTransfer
	}
	rec := t.arena.Alloc()
	rec.Seq = t.nextSeq
	rec.Func = string(call.Func)
	rec.Class = class
	rec.Entry = call.Entry.Add(-t.entryLedger)
	rec.Exit = call.Exit.Add(-exitLedger)
	rec.SyncWait = call.SyncWait()
	rec.Scope = call.Scope.String()
	rec.Bytes = call.Bytes
	rec.HostAddr = uint64(call.HostAddr)
	rec.HostSize = call.HostSize
	if call.Dir != cuda.DirNone {
		rec.Dir = call.Dir.String()
	}
	if t.opts.CaptureStacks {
		rec.Stack = call.Stack
	}
	t.mRecords.Inc()
	t.mArenaBytes.SetMax(float64(t.arena.Bytes()))
	t.mCallNS.Observe(int64(rec.Exit - rec.Entry))
	t.mSyncWait.Observe(int64(rec.SyncWait))
	if t.opts.OnRecord != nil {
		t.opts.OnRecord(rec, call)
	}
}

// Records returns the collected records in call order. The first call
// flattens the arena into an exact-size slice and recycles the slabs, so
// record pointers handed to OnRecord are invalid afterwards; the returned
// slice is freshly allocated and shares nothing with the pool.
func (t *CallTracer) Records() []trace.Record {
	if !t.done {
		t.final = t.arena.Finish()
		t.done = true
	}
	return t.final
}

// Count returns the number of records collected so far.
func (t *CallTracer) Count() int { return t.arena.Len() + len(t.final) }

// Detach removes the tracer's probes.
func (t *CallTracer) Detach() {
	for _, id := range t.probes {
		t.ctx.DetachProbe(id)
	}
	t.probes = nil
}

// FirstAccess is the observation RangeTracker delivers: the first
// instrumented CPU access to GPU-writable data after the tracker was armed.
type FirstAccess struct {
	Site memory.Site
	At   simtime.Time
	Kind memory.AccessKind
	Addr memory.Addr
}

// RangeTracker maintains the set of CPU memory ranges that GPU computation
// may modify (§3.3.1: the destinations of device-to-host transfers and
// shared/managed allocations) and, when armed, reports the first
// instrumented access to any of them.
type RangeTracker struct {
	host     *memory.Space
	clock    *simtime.Clock
	overhead simtime.Duration
	charge   func(simtime.Duration)
	watches  []memory.WatchID
	covered  []coveredRange
	armed    bool
	onFirst  func(FirstAccess)
	accesses int64
	sites    map[memory.Site]bool

	mAccesses *obs.Counter
	mAccessNS *obs.Counter
}

type coveredRange struct{ lo, hi memory.Addr }

// NewRangeTracker creates a tracker. onFirst is called once per Arm, at the
// first matching access; accessOverhead is charged on *every* watched
// access, armed or not — load/store instrumentation pays its cost
// unconditionally, which is why stage 3 is the most expensive run. When
// charge is non-nil it is used to book the overhead (so it lands on the
// instrumentation ledger); otherwise the clock is advanced directly.
func NewRangeTracker(host *memory.Space, clock *simtime.Clock, accessOverhead simtime.Duration, onFirst func(FirstAccess)) *RangeTracker {
	return &RangeTracker{host: host, clock: clock, overhead: accessOverhead, onFirst: onFirst}
}

// SetCharger routes overhead charges through fn (normally
// cuda.Context.ChargeOverhead) instead of plain clock advances.
func (rt *RangeTracker) SetCharger(fn func(simtime.Duration)) { rt.charge = fn }

// SetMetrics attaches self-measurement counters for watched accesses
// (interpose/accesses) and the virtual time their instrumentation charged
// (interpose/access_overhead_ns). A nil registry detaches.
func (rt *RangeTracker) SetMetrics(m *obs.Registry) {
	rt.mAccesses = m.Counter("interpose/accesses")
	rt.mAccessNS = m.Counter("interpose/access_overhead_ns")
}

// AddRange registers [lo, hi) as GPU-writable and instruments accesses to
// it. Ranges already covered are ignored — applications re-transfer into
// the same buffers millions of times, and instrumenting a page once is
// enough (re-instrumenting it per transfer would also multiply the
// per-access cost, which binary instrumentation does not do).
func (rt *RangeTracker) AddRange(lo, hi memory.Addr) {
	for _, c := range rt.covered {
		if lo >= c.lo && hi <= c.hi {
			return
		}
	}
	rt.covered = append(rt.covered, coveredRange{lo: lo, hi: hi})
	id := rt.host.Watch(lo, hi, rt.onAccess)
	rt.watches = append(rt.watches, id)
}

// FilterSites restricts the tracker to accesses from the given instruction
// sites. Stage 4 instruments only the instructions stage 3 identified as
// accessing protected data (§3.4), so its per-access cost applies to those
// sites alone.
func (rt *RangeTracker) FilterSites(sites map[memory.Site]bool) { rt.sites = sites }

func (rt *RangeTracker) onAccess(a memory.Access) {
	if rt.sites != nil && !rt.sites[a.Site] {
		return
	}
	rt.accesses++
	rt.mAccesses.Inc()
	rt.mAccessNS.Add(int64(rt.overhead))
	if rt.overhead > 0 {
		if rt.charge != nil {
			rt.charge(rt.overhead)
		} else {
			rt.clock.Advance(rt.overhead)
		}
	}
	if !rt.armed {
		return
	}
	rt.armed = false
	if rt.onFirst != nil {
		rt.onFirst(FirstAccess{Site: a.Site, At: rt.clock.Now(), Kind: a.Kind, Addr: a.Addr})
	}
}

// Arm makes the next access to any tracked range fire the onFirst callback.
// Arming while already armed re-arms (the previous synchronization saw no
// access, i.e. its protected data was never used).
func (rt *RangeTracker) Arm() { rt.armed = true }

// Disarm cancels a pending Arm.
func (rt *RangeTracker) Disarm() { rt.armed = false }

// Armed reports whether the tracker is waiting for an access.
func (rt *RangeTracker) Armed() bool { return rt.armed }

// Accesses returns how many watched accesses were observed in total.
func (rt *RangeTracker) Accesses() int64 { return rt.accesses }

// RangeCount returns the number of instrumented ranges.
func (rt *RangeTracker) RangeCount() int { return len(rt.watches) }

// Detach removes all watchers.
func (rt *RangeTracker) Detach() {
	for _, id := range rt.watches {
		rt.host.Unwatch(id)
	}
	rt.watches = nil
	rt.armed = false
}
