package interpose

import (
	"errors"
	"testing"

	"diogenes/internal/callstack"
	"diogenes/internal/cuda"
	"diogenes/internal/gpu"
	"diogenes/internal/memory"
	"diogenes/internal/simtime"
	"diogenes/internal/trace"
)

type env struct {
	clock *simtime.Clock
	dev   *gpu.Device
	host  *memory.Space
	stack *callstack.Stack
	ctx   *cuda.Context
}

func newEnv() *env {
	clock := simtime.NewClock()
	dev := gpu.New(clock, gpu.DefaultConfig())
	host := memory.NewSpace()
	stack := callstack.New()
	stack.Push("main", "main.cpp", 1)
	return &env{clock: clock, dev: dev, host: host, stack: stack,
		ctx: cuda.NewContext(clock, dev, host, stack, cuda.DefaultConfig())}
}

func freshCtx() *cuda.Context {
	return newEnv().ctx
}

func TestDiscoverFindsSyncFunnel(t *testing.T) {
	fn, err := Discover(freshCtx)
	if err != nil {
		t.Fatal(err)
	}
	if fn != cuda.FuncInternalSync {
		t.Fatalf("Discover = %q, want %q", fn, cuda.FuncInternalSync)
	}
}

func TestDiscoverLeavesNoResidue(t *testing.T) {
	// Each trial uses its own context; the factory's contexts are
	// discarded, so discovery must not require any cleanup of the real one.
	calls := 0
	fn, err := Discover(func() *cuda.Context {
		calls++
		return freshCtx()
	})
	if err != nil || fn != cuda.FuncInternalSync {
		t.Fatalf("fn=%q err=%v", fn, err)
	}
	if calls != 3 {
		t.Fatalf("factory called %d times, want 3 (one per known sync API)", calls)
	}
}

func TestCallTracerRecordsSyncAndTransfer(t *testing.T) {
	e := newEnv()
	tr := NewCallTracer(e.ctx, []cuda.Func{cuda.FuncFree, cuda.FuncMemcpy, cuda.FuncDeviceSync}, TracerOptions{CaptureStacks: true})
	src := e.host.Alloc(1<<16, "src")
	buf, _ := e.ctx.Malloc(1<<16, "dev")
	_ = e.ctx.MemcpyH2D(buf.Base(), src.Base(), 1<<16)
	_, _ = e.ctx.LaunchKernel(cuda.KernelSpec{Name: "k", Duration: simtime.Millisecond, Stream: gpu.LegacyStream})
	e.ctx.DeviceSynchronize()
	_ = e.ctx.Free(buf)

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(recs), recs)
	}
	if recs[0].Class != trace.ClassTransfer || recs[0].Func != "cudaMemcpy" {
		t.Fatalf("rec0 = %+v", recs[0])
	}
	if recs[0].Dir != "HtoD" || recs[0].Bytes != 1<<16 {
		t.Fatalf("transfer metadata: %+v", recs[0])
	}
	if recs[1].Func != "cudaDeviceSynchronize" || recs[1].Class != trace.ClassSync || recs[1].SyncWait <= 0 {
		t.Fatalf("rec1 = %+v", recs[1])
	}
	if recs[2].Func != "cudaFree" || recs[2].Scope != "implicit" {
		t.Fatalf("rec2 = %+v", recs[2])
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Fatalf("seq %d = %d", i, r.Seq)
		}
		if len(r.Stack) == 0 {
			t.Fatalf("record %d missing stack", i)
		}
	}
}

func TestCallTracerSkipsNonSyncNonTransfer(t *testing.T) {
	e := newEnv()
	tr := NewCallTracer(e.ctx, []cuda.Func{cuda.FuncMalloc, cuda.FuncLaunchKernel, cuda.FuncDeviceSync}, TracerOptions{})
	_, _ = e.ctx.Malloc(64, "x")
	_, _ = e.ctx.LaunchKernel(cuda.KernelSpec{Name: "k", Duration: simtime.Microsecond, Stream: gpu.LegacyStream})
	e.ctx.DeviceSynchronize()
	if tr.Count() != 1 {
		t.Fatalf("got %d records, want only the sync", tr.Count())
	}
	if tr.Records()[0].Func != "cudaDeviceSynchronize" {
		t.Fatalf("record = %+v", tr.Records()[0])
	}
}

func TestCallTracerDetach(t *testing.T) {
	e := newEnv()
	tr := NewCallTracer(e.ctx, []cuda.Func{cuda.FuncDeviceSync}, TracerOptions{})
	e.ctx.DeviceSynchronize()
	tr.Detach()
	e.ctx.DeviceSynchronize()
	if tr.Count() != 1 {
		t.Fatalf("records after detach: %d", tr.Count())
	}
	if e.ctx.ProbeCount() != 0 {
		t.Fatal("probes left attached")
	}
}

func TestCallTracerOnRecordAnnotation(t *testing.T) {
	e := newEnv()
	tr := NewCallTracer(e.ctx, []cuda.Func{cuda.FuncDeviceSync}, TracerOptions{
		OnRecord: func(r *trace.Record, c *cuda.Call) { r.Hash = "annotated" },
	})
	e.ctx.DeviceSynchronize()
	if tr.Records()[0].Hash != "annotated" {
		t.Fatal("OnRecord annotation lost")
	}
}

func TestCallTracerOverheadSlowsRun(t *testing.T) {
	run := func(overhead simtime.Duration) simtime.Duration {
		e := newEnv()
		NewCallTracer(e.ctx, []cuda.Func{cuda.FuncDeviceSync}, TracerOptions{Overhead: overhead})
		start := e.clock.Now()
		for i := 0; i < 100; i++ {
			e.ctx.DeviceSynchronize()
		}
		return e.clock.Now().Sub(start)
	}
	plain, instrumented := run(0), run(20*simtime.Microsecond)
	if instrumented <= plain {
		t.Fatalf("instrumented %v not slower than plain %v", instrumented, plain)
	}
}

func TestPrivateFuncsTraceable(t *testing.T) {
	e := newEnv()
	tr := NewCallTracer(e.ctx, []cuda.Func{cuda.FuncPrivateGemm}, TracerOptions{})
	e.ctx.PrivateGemm("gemm", simtime.Millisecond, gpu.LegacyStream, true)
	if tr.Count() != 1 {
		t.Fatalf("private call not traced")
	}
	if tr.Records()[0].Scope != "private" {
		t.Fatalf("scope = %q", tr.Records()[0].Scope)
	}
}

func TestRangeTrackerFirstAccess(t *testing.T) {
	e := newEnv()
	var got []FirstAccess
	rt := NewRangeTracker(e.host, e.clock, 0, func(fa FirstAccess) { got = append(got, fa) })
	r := e.host.Alloc(4096, "gpu result")
	rt.AddRange(r.Base(), r.End())

	site1 := memory.Site{Function: "useResult", File: "als.cpp", Line: 877}
	site2 := memory.Site{Function: "useAgain", File: "als.cpp", Line: 900}

	rt.Arm()
	if !rt.Armed() {
		t.Fatal("not armed")
	}
	_, _ = e.host.Load(site1, r.Base(), 8)
	_, _ = e.host.Load(site2, r.Base(), 8) // second access: no report
	if len(got) != 1 {
		t.Fatalf("got %d reports, want 1", len(got))
	}
	if got[0].Site != site1 || got[0].Kind != memory.Load {
		t.Fatalf("report = %+v", got[0])
	}
	if rt.Armed() {
		t.Fatal("still armed after first access")
	}
	// Re-arm catches the next access.
	rt.Arm()
	_, _ = e.host.Load(site2, r.Base()+16, 8)
	if len(got) != 2 || got[1].Site != site2 {
		t.Fatalf("re-arm reports = %+v", got)
	}
	if rt.Accesses() != 3 {
		t.Fatalf("Accesses = %d, want 3", rt.Accesses())
	}
}

func TestRangeTrackerIgnoresOtherMemory(t *testing.T) {
	e := newEnv()
	fired := 0
	rt := NewRangeTracker(e.host, e.clock, 0, func(FirstAccess) { fired++ })
	tracked := e.host.Alloc(64, "tracked")
	other := e.host.Alloc(64, "other")
	rt.AddRange(tracked.Base(), tracked.End())
	rt.Arm()
	_ = e.host.Store(memory.Site{Function: "f"}, other.Base(), []byte{1})
	if fired != 0 {
		t.Fatal("access outside tracked range fired")
	}
	if !rt.Armed() {
		t.Fatal("tracker disarmed by unrelated access")
	}
}

func TestRangeTrackerOverheadCharged(t *testing.T) {
	e := newEnv()
	rt := NewRangeTracker(e.host, e.clock, 5*simtime.Microsecond, nil)
	r := e.host.Alloc(64, "t")
	rt.AddRange(r.Base(), r.End())
	before := e.clock.Now()
	for i := 0; i < 10; i++ {
		_, _ = e.host.Load(memory.Site{Function: "f"}, r.Base(), 1)
	}
	if got := e.clock.Now().Sub(before); got != 50*simtime.Microsecond {
		t.Fatalf("overhead = %v, want 50µs", got)
	}
}

func TestRangeTrackerDisarmAndDetach(t *testing.T) {
	e := newEnv()
	fired := 0
	rt := NewRangeTracker(e.host, e.clock, 0, func(FirstAccess) { fired++ })
	r := e.host.Alloc(64, "t")
	rt.AddRange(r.Base(), r.End())
	if rt.RangeCount() != 1 {
		t.Fatalf("RangeCount = %d", rt.RangeCount())
	}
	rt.Arm()
	rt.Disarm()
	_, _ = e.host.Load(memory.Site{}, r.Base(), 1)
	if fired != 0 {
		t.Fatal("fired while disarmed")
	}
	rt.Detach()
	if rt.RangeCount() != 0 || e.host.WatchCount() != 0 {
		t.Fatal("Detach left watches")
	}
	rt.Arm()
	_, _ = e.host.Load(memory.Site{}, r.Base(), 1)
	if fired != 0 {
		t.Fatal("fired after Detach")
	}
}

func TestDiscoverErrorWhenNothingBlocks(t *testing.T) {
	// A "broken driver" whose sync functions do not block: feed discovery a
	// context with no queued infinite kernel by wrapping the factory so the
	// launch goes to a side stream the sync call does not cover. Simplest
	// failure injection: a factory whose context panics differently is hard
	// to fake, so instead verify the error path by exhausting candidates —
	// run a single trial directly with a sync call that touches nothing.
	ctx := freshCtx()
	_, err := runDiscoveryTrial(ctx, func(c *cuda.Context) {
		// Known-sync call that doesn't reach the funnel (device untouched):
		// FuncGetAttributes never synchronizes.
		c.FuncGetAttributes("k")
	})
	if err == nil {
		t.Fatal("trial with non-blocking call should fail")
	}
	if errors.Is(err, ErrNoSyncFunction) {
		t.Fatal("wrong error class: candidate filtering happens in Discover")
	}
}

func TestRangeTrackerSiteFilter(t *testing.T) {
	e := newEnv()
	var got []FirstAccess
	rt := NewRangeTracker(e.host, e.clock, 10*simtime.Microsecond, func(fa FirstAccess) { got = append(got, fa) })
	r := e.host.Alloc(64, "tracked")
	rt.AddRange(r.Base(), r.End())

	wanted := memory.Site{Function: "useResult", File: "a.cpp", Line: 7}
	other := memory.Site{Function: "noise", File: "b.cpp", Line: 9}
	rt.FilterSites(map[memory.Site]bool{wanted: true})

	rt.Arm()
	before := e.clock.Now()
	// Non-matching site: no report, no overhead charge, stays armed.
	_, _ = e.host.Load(other, r.Base(), 4)
	if len(got) != 0 || !rt.Armed() {
		t.Fatal("filtered site fired")
	}
	if e.clock.Now() != before {
		t.Fatal("filtered access charged overhead")
	}
	// Matching site fires and is charged.
	_, _ = e.host.Load(wanted, r.Base(), 4)
	if len(got) != 1 || got[0].Site != wanted {
		t.Fatalf("reports = %+v", got)
	}
	if e.clock.Now() != before.Add(10*simtime.Microsecond) {
		t.Fatal("matching access not charged")
	}
	if rt.Accesses() != 1 {
		t.Fatalf("Accesses = %d, want only matching ones", rt.Accesses())
	}
}

func TestRangeTrackerDedupsCoveredRanges(t *testing.T) {
	e := newEnv()
	rt := NewRangeTracker(e.host, e.clock, 0, nil)
	r := e.host.Alloc(4096, "buf")
	for i := 0; i < 100; i++ {
		rt.AddRange(r.Base(), r.End())
	}
	if rt.RangeCount() != 1 {
		t.Fatalf("RangeCount = %d, want 1 (dedup)", rt.RangeCount())
	}
	// A partially-overlapping wider range is still added.
	r2 := e.host.Alloc(4096, "buf2")
	rt.AddRange(r2.Base(), r2.End())
	if rt.RangeCount() != 2 {
		t.Fatalf("RangeCount = %d, want 2", rt.RangeCount())
	}
}
