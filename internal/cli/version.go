package cli

import (
	"fmt"
	"io"
	"runtime/debug"
	"strings"
)

// Version prints the build's identity: module version, Go toolchain, and
// the VCS stamp when the binary was built from a checkout.
func Version(w io.Writer) error {
	_, err := fmt.Fprintln(w, versionString(debug.ReadBuildInfo()))
	return err
}

// versionString renders one identity line from build info; factored out so
// tests can feed synthetic info.
func versionString(info *debug.BuildInfo, ok bool) string {
	if !ok || info == nil {
		return "diogenes (no build info)"
	}
	ver := info.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var parts []string
	parts = append(parts, "diogenes "+ver)
	if info.GoVersion != "" {
		parts = append(parts, info.GoVersion)
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if modified == "true" {
			rev += "+dirty"
		}
		parts = append(parts, rev)
	}
	return strings.Join(parts, " ")
}
