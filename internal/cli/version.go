package cli

import (
	"fmt"
	"io"

	"diogenes/internal/buildinfo"
)

// Version prints the build's identity: module version, Go toolchain, and
// the VCS stamp when the binary was built from a checkout.
func Version(w io.Writer) error {
	_, err := fmt.Fprintln(w, buildinfo.Version())
	return err
}
