package cli

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"diogenes/internal/buildinfo"
)

// startServe runs the serve subcommand in the background with a
// cancellable lifetime and returns the bound base URL plus a stopper that
// triggers the graceful drain and waits for exit.
func startServe(t *testing.T, extraArgs ...string) (string, func() error) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, extraArgs...)
	var out strings.Builder
	errCh := make(chan error, 1)
	go func() { errCh <- serveWithContext(ctx, &out, args) }()

	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("serve never wrote %s; output so far: %s", addrFile, out.String())
		}
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	stop := func() error {
		cancel()
		select {
		case err := <-errCh:
			return err
		case <-time.After(60 * time.Second):
			t.Fatal("serve did not exit after cancel")
			return nil
		}
	}
	return "http://" + addr, stop
}

// TestServeEndToEnd drives the daemon exactly like the CI smoke step:
// start, submit, poll to completion, fetch the report and /metrics, then
// shut down gracefully.
func TestServeEndToEnd(t *testing.T) {
	store := t.TempDir()
	base, stop := startServe(t, "-store", store, "-queue", "4", "-workers", "2")

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"kind":"run","app":"rodinia_gaussian","scale":0.05}`))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for job.Status != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %s", job.ID, job.Status)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&job)
		r.Body.Close()
	}

	r, err := http.Get(base + "/jobs/" + job.ID + "/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("report: status %d", r.StatusCode)
	}
	r, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("metrics: status %d", r.StatusCode)
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// The report persisted across the daemon's lifetime.
	entries, err := os.ReadDir(store)
	if err != nil || len(entries) == 0 {
		t.Fatalf("store %s empty after shutdown (err %v)", store, err)
	}
}

func TestServeRejectsBadFlags(t *testing.T) {
	if err := serveWithContext(context.Background(), &strings.Builder{}, []string{"-queue", "-1"}); err == nil {
		t.Fatal("negative queue capacity accepted")
	}
	if err := serveWithContext(context.Background(), &strings.Builder{}, []string{"stray"}); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := serveWithContext(context.Background(), &strings.Builder{}, []string{"-addr", "not-an-address"}); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

func TestVersionCommandAndFlag(t *testing.T) {
	code, out, _ := runMain(t, "version")
	if code != 0 {
		t.Fatalf("version: exit %d", code)
	}
	if !strings.HasPrefix(out, "diogenes ") {
		t.Fatalf("version output %q", out)
	}
	code, flagOut, _ := runMain(t, "-version")
	if code != 0 {
		t.Fatalf("-version: exit %d", code)
	}
	if flagOut != out {
		t.Fatalf("-version %q != version %q", flagOut, out)
	}
}

func TestVersionString(t *testing.T) {
	if got := buildinfo.String(nil, false); got != "diogenes (no build info)" {
		t.Fatalf("no build info: %q", got)
	}
	info := &debug.BuildInfo{GoVersion: "go1.24.0"}
	info.Main.Version = "(devel)"
	info.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef0123"},
		{Key: "vcs.modified", Value: "true"},
	}
	want := "diogenes devel go1.24.0 0123456789ab+dirty"
	if got := buildinfo.String(info, true); got != want {
		t.Fatalf("buildinfo.String = %q, want %q", got, want)
	}
}

func TestUsageMentionsServeAndVersion(t *testing.T) {
	_, _, errOut := runMain(t, "help")
	for _, want := range []string{"serve [flags]", "version", "-queue n"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("usage missing %q", want)
		}
	}
}
