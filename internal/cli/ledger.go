package cli

import (
	"fmt"
	"io"

	"diogenes/internal/ledger"
	"diogenes/internal/serve"
)

// Distinct verify-ledger exit codes. 0 is a clean audit and 1 remains
// the generic operational failure (unreadable directory, no ledger
// file), so scripts can tell "the audit ran and found something" apart
// from "the audit could not run".
const (
	// ExitTruncated: the ledger ends mid-entry — an interrupted append,
	// repaired automatically the next time the daemon opens the ledger.
	ExitTruncated = 3
	// ExitTampered: the chain does not replay, or a resident report does
	// not hash to its ledgered digest. Never repaired automatically.
	ExitTampered = 4
)

// ExitCodeError carries a specific process exit code through the
// command error path; Main unwraps it with errors.As.
type ExitCodeError struct {
	Code int
	Err  error
}

func (e *ExitCodeError) Error() string { return e.Err.Error() }
func (e *ExitCodeError) Unwrap() error { return e.Err }

// VerifyLedger audits a store directory against its provenance ledger:
// the full chain is replayed with every Merkle root recomputed, and
// every resident report is re-hashed against the digest the ledger
// committed for it. The verdict maps to the exit code — clean 0,
// truncated ExitTruncated, tampered ExitTampered.
func VerifyLedger(w io.Writer, args []string) error {
	dir, args := takeName(args)
	fs := newFlagSet("verify-ledger")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if dir == "" {
		return fmt.Errorf("verify-ledger: store directory expected (the daemon's -store dir)")
	}
	a, err := serve.VerifyStore(dir)
	if err != nil {
		return err
	}
	la := a.Ledger
	fmt.Fprintf(w, "ledger:  %d entries in %d sealed batches (%d unsealed)\n",
		la.Entries, la.Batches, la.Unsealed)
	fmt.Fprintf(w, "head:    %s\n", la.Head.Chain)
	fmt.Fprintf(w, "reports: %d re-hashed and matched, %d ledgered but evicted\n",
		a.ReportsChecked, a.ReportsMissing)
	switch a.Outcome {
	case ledger.Clean:
		fmt.Fprintln(w, "verdict: clean")
		return nil
	case ledger.Truncated:
		fmt.Fprintf(w, "verdict: truncated — %s\n", a.Detail)
		return &ExitCodeError{
			Code: ExitTruncated,
			Err:  fmt.Errorf("verify-ledger: %s: truncated: %s", dir, a.Detail),
		}
	default:
		fmt.Fprintf(w, "verdict: TAMPERED — %s\n", a.Detail)
		return &ExitCodeError{
			Code: ExitTampered,
			Err:  fmt.Errorf("verify-ledger: %s: tampered: %s", dir, a.Detail),
		}
	}
}
