package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"diogenes/internal/serve"
	"diogenes/internal/serve/cluster"
)

// Serve runs the analysis pipeline as a long-lived HTTP daemon (see
// internal/serve). It blocks until SIGINT/SIGTERM, then drains: accepted
// jobs finish and persist their reports before the process exits.
func Serve(w io.Writer, args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveWithContext(ctx, w, args)
}

// serveWithContext is Serve with an injectable lifetime, the test seam.
func serveWithContext(ctx context.Context, w io.Writer, args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (host:port; port 0 picks one)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	queueCap := fs.Int("queue", 16, "bounded job backlog; beyond it submissions get HTTP 429")
	workers := fs.Int("workers", 0, "concurrent jobs (0 = all cores)")
	engineWorkers := fs.Int("engine-workers", 1, "default per-job experiment engine width")
	storeDir := fs.String("store", "", "persistent report store directory (empty = in-memory only)")
	storeBudget := fs.Int64("store-budget", 0, "store LRU byte budget (0 = unbounded)")
	ledgerBatch := fs.Int("ledger-batch", 0, "provenance ledger Merkle batch size (1 = seal every append; 0 = default 64)")
	ledgerFlush := fs.Duration("ledger-flush", 0, "provenance ledger flush interval (0 = default 2s; negative disables the timer)")
	cacheBudget := fs.Int64("cache-budget", 0, "in-memory report cache byte budget (0 = unbounded)")
	fleetSpill := fs.Int64("fleet-spill", 0, "fleet-job resident-partial byte budget before spilling (0 = never spill)")
	timeout := fs.Duration("timeout", 0, "default per-job execution cap (0 = none)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	peers := fs.String("peers", "", "comma-separated shard-group peer list (host:port,...); empty = single-node")
	self := fs.String("self", "", "this node's advertised address within -peers (defaults to -addr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	var group *cluster.Cluster
	if *peers != "" {
		selfAddr := *self
		if selfAddr == "" {
			selfAddr = *addr
		}
		var err error
		group, err = cluster.New(selfAddr, strings.Split(*peers, ","))
		if err != nil {
			return err
		}
	} else if *self != "" {
		return fmt.Errorf("serve: -self needs -peers (single-node mode has no shard group)")
	}

	srv, err := serve.New(serve.Options{
		Cluster: group,
		Workers:          *workers,
		QueueCapacity:    *queueCap,
		EngineWorkers:    *engineWorkers,
		DefaultTimeout:   *timeout,
		StoreDir:         *storeDir,
		StoreBudget:      *storeBudget,
		LedgerBatch:      *ledgerBatch,
		LedgerFlush:      *ledgerFlush,
		CacheBudget:      *cacheBudget,
		FleetSpillBudget: *fleetSpill,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("serve: -addr-file: %w", err)
		}
	}
	fmt.Fprintf(w, "diogenes serve listening on http://%s (queue %d", bound, *queueCap)
	if *storeDir != "" {
		fmt.Fprintf(w, ", store %s", *storeDir)
	}
	if group != nil {
		fmt.Fprintf(w, ", node %s of %d", group.SelfName(), len(group.Peers()))
	}
	fmt.Fprintln(w, ")")

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener failed before any shutdown signal
	case <-ctx.Done():
	}

	fmt.Fprintf(w, "diogenes serve: shutting down, draining accepted jobs (budget %s) ...\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job queue first — in-flight reports persist — then close
	// the HTTP side.
	drainErr := srv.Shutdown(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(w, "diogenes serve: http shutdown: %v\n", err)
	}
	<-serveErr // Serve has returned ErrServerClosed by now
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(w, "diogenes serve: drained, bye")
	return nil
}
