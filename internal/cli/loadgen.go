package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Loadgen drives a serve node or shard group with a mixed
// interactive/batch workload and reports a per-cohort latency and
// throughput matrix. The methodology follows the repo's benchmarking
// policy: runs execute in fixed-duration cohorts, each cohort passes a
// validity gate before it may be aggregated, and final (gated) claims
// require at least minValidCohorts valid cohorts. Backpressure (HTTP
// 429) is a counted outcome, not an error — a bounded queue turning
// work away is the serve layer working as designed; transport failures
// and 5xx responses are what invalidate a cohort.
func Loadgen(w io.Writer, args []string) error {
	fs := newFlagSet("loadgen")
	targets := fs.String("targets", "http://127.0.0.1:8377", "comma-separated serve base URLs (or host:port)")
	clients := fs.Int("clients", 4, "concurrent client loops")
	cohorts := fs.Int("cohorts", minValidCohorts, "fixed-duration measurement cohorts")
	duration := fs.Duration("duration", 2*time.Second, "per-cohort wall time")
	mix := fs.Float64("mix", 0.8, "interactive fraction of submissions (rest are batch fleet jobs)")
	scale := fs.Float64("scale", 0.05, "workload scale submitted with each job")
	seed := fs.Int64("seed", 1, "workload-mix random seed")
	jsonPath := fs.String("json", "", "export the full matrix as JSON to file")
	gate := fs.Bool("gate", false, "enforce the validity gates: nonzero exit unless >= 5 cohorts are valid")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("loadgen: unexpected argument %q", fs.Arg(0))
	}
	if *clients < 1 {
		return fmt.Errorf("loadgen: need at least 1 client, have %d", *clients)
	}
	if *cohorts < 1 {
		return fmt.Errorf("loadgen: need at least 1 cohort, have %d", *cohorts)
	}
	if *mix < 0 || *mix > 1 {
		return fmt.Errorf("loadgen: -mix %v must be in [0,1]", *mix)
	}
	var urls []string
	for _, tgt := range strings.Split(*targets, ",") {
		tgt = strings.TrimSpace(tgt)
		if tgt == "" {
			continue
		}
		if !strings.HasPrefix(tgt, "http://") && !strings.HasPrefix(tgt, "https://") {
			tgt = "http://" + tgt
		}
		urls = append(urls, strings.TrimRight(tgt, "/"))
	}
	if len(urls) == 0 {
		return fmt.Errorf("loadgen: -targets is empty")
	}

	report := runLoad(urls, *clients, *cohorts, *duration, *mix, *scale, *seed)
	writeLoadReport(w, report)
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, func(f io.Writer) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(report)
		}); err != nil {
			return fmt.Errorf("loadgen: -json: %w", err)
		}
		fmt.Fprintf(w, "\nload matrix exported to %s\n", *jsonPath)
	}
	if *gate {
		if err := report.gateErr(); err != nil {
			return &ExitCodeError{Err: err, Code: 3}
		}
		fmt.Fprintf(w, "\nvalidity gates passed: %d/%d cohorts valid (need >= %d)\n",
			report.ValidCohorts, len(report.Cohorts), minValidCohorts)
	}
	return nil
}

// minValidCohorts is the minimum sample size behind any aggregated
// claim the gated loadgen makes (the N>=5 rule).
const minValidCohorts = 5

// loadApps are the interactive submission targets, cycled per request
// so the group's consistent-hash placement spreads keys across nodes.
var loadApps = []string{"rodinia_gaussian", "amg", "cuibm", "cumf_als"}

// loadOutcome classifies one submission.
type loadOutcome int

const (
	outcomeAccepted    loadOutcome = iota // 2xx: queued or store-served
	outcomeBackpressed                    // 429: the bounded queue said later
	outcomeInvalid                        // transport error, 5xx, or anything else
)

// classStats aggregates one admission class within one cohort.
type classStats struct {
	Accepted    int       `json:"accepted"`
	Backpressed int       `json:"backpressed"`
	Invalid     int       `json:"invalid"`
	P50Micros   int64     `json:"p50Micros"`
	P90Micros   int64     `json:"p90Micros"`
	P99Micros   int64     `json:"p99Micros"`
	latencies   []int64 // accepted-submission latencies, µs
}

// CohortReport is one fixed-duration measurement window.
type CohortReport struct {
	Index       int        `json:"index"`
	Seconds     float64    `json:"seconds"`
	Interactive classStats `json:"interactive"`
	Batch       classStats `json:"batch"`
	// Throughput is accepted submissions per second across both classes.
	Throughput float64 `json:"throughput"`
	// Valid reports the cohort's validity gate: no invalid outcomes and
	// at least one accepted submission. Invalid cohorts are excluded
	// from every aggregate.
	Valid  bool   `json:"valid"`
	Reason string `json:"reason,omitempty"`
}

// LoadReport is the full matrix.
type LoadReport struct {
	Targets      []string       `json:"targets"`
	Clients      int            `json:"clients"`
	Mix          float64        `json:"interactiveMix"`
	Cohorts      []CohortReport `json:"cohorts"`
	ValidCohorts int            `json:"validCohorts"`
	// Aggregates over valid cohorts only; zero-valued when none are.
	AggThroughput float64 `json:"aggThroughput"`
	AggP50Micros  int64   `json:"aggP50Micros"`
	AggP99Micros  int64   `json:"aggP99Micros"`
}

// gateErr renders the validity-gate verdict as an error, nil when the
// report is publishable.
func (r *LoadReport) gateErr() error {
	if r.ValidCohorts < minValidCohorts {
		return fmt.Errorf("loadgen: validity gate failed: %d/%d cohorts valid, need >= %d (invalid cohorts must be rerun, not aggregated)",
			r.ValidCohorts, len(r.Cohorts), minValidCohorts)
	}
	return nil
}

// runLoad executes the cohort matrix against the target group.
func runLoad(urls []string, clients, cohorts int, dur time.Duration, mix, scale float64, seed int64) *LoadReport {
	client := &http.Client{Timeout: 30 * time.Second}
	report := &LoadReport{Targets: urls, Clients: clients, Mix: mix}
	for c := 0; c < cohorts; c++ {
		report.Cohorts = append(report.Cohorts, runCohort(client, urls, clients, c, dur, mix, scale, seed))
	}
	var lat []int64
	var thr float64
	for i := range report.Cohorts {
		co := &report.Cohorts[i]
		if !co.Valid {
			continue
		}
		report.ValidCohorts++
		thr += co.Throughput
		lat = append(lat, co.Interactive.latencies...)
		lat = append(lat, co.Batch.latencies...)
	}
	if report.ValidCohorts > 0 {
		report.AggThroughput = thr / float64(report.ValidCohorts)
		report.AggP50Micros = percentile(lat, 50)
		report.AggP99Micros = percentile(lat, 99)
	}
	return report
}

// runCohort runs one fixed-duration window with the full client set.
func runCohort(client *http.Client, urls []string, clients, index int, dur time.Duration, mix, scale float64, seed int64) CohortReport {
	co := CohortReport{Index: index, Seconds: dur.Seconds()}
	var mu sync.Mutex
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			// Per-client deterministic stream: same seed, same mix.
			rng := rand.New(rand.NewSource(seed + int64(index)*1000 + int64(cl)))
			for i := 0; time.Now().Before(deadline); i++ {
				target := urls[(cl+i)%len(urls)]
				interactive := rng.Float64() < mix
				var body string
				if interactive {
					app := loadApps[rng.Intn(len(loadApps))]
					body = fmt.Sprintf(`{"kind":"run","app":%q,"scale":%g}`, app, scale)
				} else {
					body = fmt.Sprintf(`{"kind":"fleet","app":"amg","ranks":2,"scale":%g}`, scale)
				}
				outcome, micros := submitOnce(client, target, body)
				stats := &co.Batch
				if interactive {
					stats = &co.Interactive
				}
				mu.Lock()
				switch outcome {
				case outcomeAccepted:
					stats.Accepted++
					stats.latencies = append(stats.latencies, micros)
				case outcomeBackpressed:
					stats.Backpressed++
				default:
					stats.Invalid++
				}
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()

	for _, st := range []*classStats{&co.Interactive, &co.Batch} {
		st.P50Micros = percentile(st.latencies, 50)
		st.P90Micros = percentile(st.latencies, 90)
		st.P99Micros = percentile(st.latencies, 99)
	}
	accepted := co.Interactive.Accepted + co.Batch.Accepted
	co.Throughput = float64(accepted) / dur.Seconds()
	invalid := co.Interactive.Invalid + co.Batch.Invalid
	switch {
	case invalid > 0:
		co.Reason = fmt.Sprintf("%d transport/5xx failures", invalid)
	case accepted == 0:
		co.Reason = "no accepted submissions"
	default:
		co.Valid = true
	}
	return co
}

// submitOnce posts one job and classifies the outcome. Latency is the
// submission round trip — what a client waits before it holds a job ID
// (or a store-served result).
func submitOnce(client *http.Client, target, body string) (loadOutcome, int64) {
	start := time.Now()
	resp, err := client.Post(target+"/jobs", "application/json", strings.NewReader(body))
	micros := time.Since(start).Microseconds()
	if err != nil {
		return outcomeInvalid, micros
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		return outcomeBackpressed, micros
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return outcomeAccepted, micros
	default:
		return outcomeInvalid, micros
	}
}

// percentile returns the p-th percentile of micros (nearest-rank), 0
// for an empty sample.
func percentile(micros []int64, p int) int64 {
	if len(micros) == 0 {
		return 0
	}
	s := append([]int64(nil), micros...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := (len(s)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// writeLoadReport renders the matrix as text.
func writeLoadReport(w io.Writer, r *LoadReport) {
	fmt.Fprintf(w, "loadgen: %d clients, %.0f%% interactive, targets %s\n\n",
		r.Clients, r.Mix*100, strings.Join(r.Targets, " "))
	fmt.Fprintf(w, "%-7s %-8s %-10s %10s %10s %10s %10s %8s\n",
		"cohort", "class", "accepted", "429", "p50(µs)", "p90(µs)", "p99(µs)", "valid")
	for i := range r.Cohorts {
		co := &r.Cohorts[i]
		valid := "yes"
		if !co.Valid {
			valid = "NO: " + co.Reason
		}
		for _, row := range []struct {
			name string
			st   *classStats
		}{{"inter", &co.Interactive}, {"batch", &co.Batch}} {
			fmt.Fprintf(w, "%-7d %-8s %-10d %10d %10d %10d %10d %8s\n",
				co.Index, row.name, row.st.Accepted, row.st.Backpressed,
				row.st.P50Micros, row.st.P90Micros, row.st.P99Micros, valid)
			valid = "" // print the verdict once per cohort
		}
	}
	fmt.Fprintf(w, "\nvalid cohorts: %d/%d", r.ValidCohorts, len(r.Cohorts))
	if r.ValidCohorts > 0 {
		fmt.Fprintf(w, "; aggregate throughput %.1f accepted/s, p50 %dµs, p99 %dµs (valid cohorts only)",
			r.AggThroughput, r.AggP50Micros, r.AggP99Micros)
	}
	fmt.Fprintln(w)
}
