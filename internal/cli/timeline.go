package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"diogenes/internal/buildinfo"
	"diogenes/internal/ffm"
	"diogenes/internal/timeline"
	"diogenes/internal/trace"
)

// Timeline renders the timeline explorer offline: the exact page `diogenes
// serve` serves at /jobs/{id}/timeline, built from a document on disk. The
// input kind is sniffed from the document itself — a full report (`run
// -report`), a fleet report (`fleet -json`), or a bare annotated trace
// (`run -records`) all work; the bare trace just has no GPU rows or stage
// ledger to show.
func Timeline(w io.Writer, args []string) error {
	path, args := takeName(args)
	fs := newFlagSet("timeline")
	inFlag := fs.String("in", "", "input document (alternative to the positional argument)")
	outPath := fs.String("o", "", "write the explorer HTML here (default: stdout)")
	modelPath := fs.String("model", "", "also export the raw timeline model JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" {
		path = *inFlag
	}
	if path == "" {
		return fmt.Errorf("timeline: input document expected (a 'run -report', 'fleet -json' or 'run -records' export)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	m, err := modelFromDocument(data)
	if err != nil {
		return fmt.Errorf("timeline: %s: %w", path, err)
	}
	m.Meta.Version = buildinfo.Version()
	if *modelPath != "" {
		if err := writeFile(*modelPath, m.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "timeline model exported to %s\n", *modelPath)
	}
	if *outPath == "" {
		return m.WriteHTML(w)
	}
	if err := writeFile(*outPath, m.WriteHTML); err != nil {
		return err
	}
	fmt.Fprintf(w, "timeline explorer exported to %s\n", *outPath)
	return nil
}

// modelFromDocument builds the timeline model from any of the tool's
// on-disk documents, distinguished by their top-level keys: a fleet report
// always has "crossRankDuplicates", a full report "uninstrumentedTime",
// and a bare trace its "records" and "stage".
func modelFromDocument(data []byte) (*timeline.Model, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("not a JSON document: %w", err)
	}
	switch {
	case probe["crossRankDuplicates"] != nil:
		var fr ffm.FleetReport
		if err := json.Unmarshal(data, &fr); err != nil {
			return nil, fmt.Errorf("corrupt fleet report: %w", err)
		}
		return timeline.FromFleet(&fr), nil
	case probe["uninstrumentedTime"] != nil:
		rep, err := ffm.ReadReportJSON(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return timeline.FromReport("run", rep), nil
	case probe["records"] != nil || probe["stage"] != nil:
		run, err := trace.ReadJSON(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return timeline.FromTrace(run, nil), nil
	default:
		return nil, fmt.Errorf("unrecognized document (want a 'run -report', 'fleet -json' or 'run -records' export)")
	}
}
