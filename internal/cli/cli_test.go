package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diogenes/internal/obs"
)

func runMain(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := Main(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestMainNoArgs(t *testing.T) {
	code, _, errOut := runMain(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "commands:") {
		t.Fatal("usage not printed")
	}
}

func TestMainUnknownCommand(t *testing.T) {
	code, _, errOut := runMain(t, "frobnicate")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown command "frobnicate"`) {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestMainHelp(t *testing.T) {
	code, _, errOut := runMain(t, "help")
	if code != 0 || !strings.Contains(errOut, "autofix") {
		t.Fatalf("help failed: code=%d", code)
	}
}

func TestList(t *testing.T) {
	code, out, _ := runMain(t, "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"cumf_als", "cuibm", "amg", "rodinia_gaussian"} {
		if !strings.Contains(out, name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestDiscover(t *testing.T) {
	code, out, _ := runMain(t, "discover")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "__nv_sync_wait_internal") {
		t.Fatalf("funnel not identified:\n%s", out)
	}
}

func TestRunCommandFullOutput(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "a.json")
	tracePath := filepath.Join(dir, "t.json")
	recordsPath := filepath.Join(dir, "r.json")
	tlPath := filepath.Join(dir, "tl.json")
	code, out, errOut := runMain(t, "run", "rodinia_gaussian",
		"-scale", "0.02", "-sub", "1:1",
		"-json", jsonPath, "-trace", tracePath, "-records", recordsPath, "-timeline", tlPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	for _, want := range []string{
		"Diogenes Overview Display",
		"Diogenes Estimated Savings",
		"Time Recoverable:",
		"Time Recoverable In Subsequence:",
		"Expansion of Problem",
		"Data collection cost",
		"analysis exported to",
		"pipeline span trace exported to",
		"annotated trace exported to",
		"chrome://tracing timeline exported to",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q", want)
		}
	}
	for _, p := range []string{jsonPath, tracePath, recordsPath, tlPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("export %s missing or empty", p)
		}
	}
	// The -trace export is a Chrome trace_event file with one span per
	// pipeline stage.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cf, err := obs.ReadChrome(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{
		"reference", "stage1-baseline", "stage2-detailed-tracing",
		"stage3-memory-tracing", "stage4-sync-use", "stage5-analysis",
	} {
		if len(cf.EventsNamed(stage)) == 0 {
			t.Errorf("span trace missing stage %q", stage)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if code, _, _ := runMain(t, "run"); code != 1 {
		t.Fatal("missing app name accepted")
	}
	if code, _, _ := runMain(t, "run", "nope", "-scale", "0.02"); code != 1 {
		t.Fatal("unknown app accepted")
	}
	if code, _, _ := runMain(t, "run", "rodinia_gaussian", "-scale", "0.02", "-sub", "xx"); code != 1 {
		t.Fatal("malformed -sub accepted")
	}
}

func TestAnalyzeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recordsPath := filepath.Join(dir, "r.json")
	if code, _, errOut := runMain(t, "run", "rodinia_gaussian", "-scale", "0.02", "-records", recordsPath); code != 0 {
		t.Fatalf("run failed: %s", errOut)
	}
	code, out, errOut := runMain(t, "analyze", recordsPath)
	if code != 0 {
		t.Fatalf("analyze failed: %s", errOut)
	}
	if !strings.Contains(out, "Fold on cudaThreadSynchronize") {
		t.Fatalf("analyze output missing findings:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if code, _, _ := runMain(t, "analyze"); code != 1 {
		t.Fatal("missing path accepted")
	}
	if code, _, _ := runMain(t, "analyze", "/nonexistent/file.json"); code != 1 {
		t.Fatal("missing file accepted")
	}
}

func TestFleetCommand(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "fleet.json")
	code, out, errOut := runMain(t, "fleet", "amg", "-ranks", "2", "-scale", "0.02", "-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	for _, want := range []string{
		"Diogenes Fleet Analysis — amg (2 ranks)",
		"Per-rank pipelines",
		"Cross-rank duplicate transfers",
		"Problems across ranks",
		"Collective skew attribution",
		"fleet report exported to",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet output missing %q", want)
		}
	}
	if strings.Contains(out, "DEGRADED") {
		t.Error("healthy fleet run rendered a DEGRADED section")
	}
	if fi, err := os.Stat(jsonPath); err != nil || fi.Size() == 0 {
		t.Errorf("fleet JSON export missing or empty")
	}
}

func TestFleetErrors(t *testing.T) {
	if code, _, _ := runMain(t, "fleet"); code != 1 {
		t.Fatal("missing app name accepted")
	}
	if code, _, _ := runMain(t, "fleet", "nope", "-scale", "0.02"); code != 1 {
		t.Fatal("unknown app accepted")
	}
	// Single-process applications have no world to fan over.
	if code, _, errOut := runMain(t, "fleet", "cumf_als", "-scale", "0.02"); code != 1 ||
		!strings.Contains(errOut, "single-process") {
		t.Fatalf("single-process app accepted (stderr %q)", errOut)
	}
}

func TestTable1Command(t *testing.T) {
	code, out, errOut := runMain(t, "table1", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	for _, want := range []string{"Application", "cumf_als", "rodinia_gaussian", "(paper)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable2Command(t *testing.T) {
	code, out, errOut := runMain(t, "table2", "-scale", "0.02", "rodinia_gaussian")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "cudaThreadSynchronize") || !strings.Contains(out, "NVProf Profiled") {
		t.Fatalf("table2 output:\n%s", out)
	}
}

func TestOverheadCommand(t *testing.T) {
	code, out, errOut := runMain(t, "overhead", "rodinia_gaussian", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "total collection:") {
		t.Fatalf("overhead output:\n%s", out)
	}
	if code, _, _ := runMain(t, "overhead"); code != 1 {
		t.Fatal("missing app accepted")
	}
}

func TestAutofixCommand(t *testing.T) {
	code, out, errOut := runMain(t, "autofix", "rodinia_gaussian", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	for _, want := range []string{"Automatic correction plan", "realized:", "calls elided:"} {
		if !strings.Contains(out, want) {
			t.Errorf("autofix output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runMain(t, "autofix"); code != 1 {
		t.Fatal("missing app accepted")
	}
}

func TestRandomCommand(t *testing.T) {
	code, out, errOut := runMain(t, "random", "-seed", "7", "-steps", "40")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "Diogenes Estimated Savings — random-7") {
		t.Fatalf("random output:\n%s", out)
	}
	if !strings.Contains(out, "CPU/GPU overlap") {
		t.Fatal("overlap summary missing")
	}
}

func TestMarkdownExport(t *testing.T) {
	dir := t.TempDir()
	mdPath := filepath.Join(dir, "report.md")
	code, out, errOut := runMain(t, "run", "rodinia_gaussian", "-scale", "0.02", "-md", mdPath)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "Markdown report exported to") {
		t.Fatal("export confirmation missing")
	}
	data, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{
		"# Diogenes findings — rodinia_gaussian",
		"## Findings by API function",
		"`cudaThreadSynchronize`",
		"## Top problem sequence",
		"## Data collection cost",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestVerifyCommand(t *testing.T) {
	code, out, errOut := runMain(t, "verify", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	for _, want := range []string{"Manual fix", "Automatic fix", "cumf_als", "amg", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("verify output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "REJECTED") {
		t.Error("a fix was rejected on the clean workloads")
	}
}

func TestParallelFlagOutputMatchesSerial(t *testing.T) {
	serialCode, serialOut, _ := runMain(t, "table1", "-scale", "0.02")
	if serialCode != 0 {
		t.Fatalf("serial table1 exit = %d", serialCode)
	}
	parCode, parOut, _ := runMain(t, "-parallel", "4", "table1", "-scale", "0.02")
	if parCode != 0 {
		t.Fatalf("parallel table1 exit = %d", parCode)
	}
	if serialOut != parOut {
		t.Fatalf("-parallel 4 changed table1 output:\nserial:\n%s\nparallel:\n%s", serialOut, parOut)
	}
}

func TestParallelFlagTable2MatchesSerial(t *testing.T) {
	_, serialOut, _ := runMain(t, "table2", "-scale", "0.02", "amg")
	code, parOut, _ := runMain(t, "-parallel", "2", "table2", "-scale", "0.02", "amg")
	if code != 0 {
		t.Fatalf("parallel table2 exit = %d", code)
	}
	if serialOut != parOut {
		t.Fatal("-parallel 2 changed table2 output")
	}
}

func TestParallelFlagRejectsNegative(t *testing.T) {
	code, _, errOut := runMain(t, "-parallel", "-3", "table1", "-scale", "0.02")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "parallel") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestParallelFlagUnparseable(t *testing.T) {
	code, _, _ := runMain(t, "-parallel", "lots", "table1")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUsageMentionsParallel(t *testing.T) {
	_, _, errOut := runMain(t, "help")
	for _, flag := range []string{"-parallel", "-trace", "-metrics", "-cpuprofile", "-memprofile", "obs"} {
		if !strings.Contains(errOut, flag) {
			t.Errorf("usage does not document %s", flag)
		}
	}
}

func TestGlobalTraceAndMetricsFlags(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("DIOGENES_OBS_STATE", filepath.Join(dir, "state.json"))
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")
	code, out, errOut := runMain(t,
		"-trace", tracePath, "-metrics", metricsPath,
		"table1", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "pipeline span trace exported to") ||
		!strings.Contains(out, "self-measurement metrics exported to") {
		t.Fatalf("export confirmations missing:\n%s", out)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cf, err := obs.ReadChrome(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.TraceEvents) == 0 {
		t.Fatal("global -trace produced an empty trace")
	}
	// table1 runs every app; each pipeline contributes a stage-1 span.
	if len(cf.EventsNamed("stage1-baseline")) < 4 {
		t.Fatalf("expected one stage1 span per app, got %d", len(cf.EventsNamed("stage1-baseline")))
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"== pipeline spans ==", "== metrics ==",
		"interpose/probe_firings", "cuda/syncs", "cache/misses", "sched/task_wall_ns",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("-metrics output missing %q", want)
		}
	}
}

func TestObsCommandReadsLastRun(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")
	t.Setenv("DIOGENES_OBS_STATE", statePath)

	// No state yet: friendly error pointing at a pipeline command.
	code, _, errOut := runMain(t, "obs")
	if code != 1 || !strings.Contains(errOut, "no recorded run") {
		t.Fatalf("missing-state error wrong: code=%d stderr=%q", code, errOut)
	}

	if code, _, errOut := runMain(t, "run", "rodinia_gaussian", "-scale", "0.02"); code != 0 {
		t.Fatalf("run failed: %s", errOut)
	}
	if fi, err := os.Stat(statePath); err != nil || fi.Size() == 0 {
		t.Fatalf("run did not persist observer state: %v", err)
	}

	reTrace := filepath.Join(dir, "re.json")
	code, out, errOut := runMain(t, "obs", "-trace", reTrace)
	if code != 0 {
		t.Fatalf("obs failed: %s", errOut)
	}
	for _, want := range []string{
		"self-measurement of the last run",
		"== pipeline spans ==",
		"rodinia_gaussian",
		"Self-overhead",
		"== metrics ==",
		"pipeline span trace exported to",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("obs output missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(reTrace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cf, err := obs.ReadChrome(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cf.EventsNamed("stage4-sync-use")) == 0 {
		t.Fatal("re-exported trace lost the pipeline spans")
	}

	// An explicit -state path overrides the default.
	if code, out, _ := runMain(t, "obs", "-state", statePath); code != 0 || !strings.Contains(out, statePath) {
		t.Fatalf("obs -state failed: code=%d", code)
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("DIOGENES_OBS_STATE", filepath.Join(dir, "state.json"))
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	code, _, errOut := runMain(t,
		"-cpuprofile", cpuPath, "-memprofile", memPath,
		"run", "rodinia_gaussian", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	for _, p := range []string{cpuPath, memPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty", p)
		}
	}
	if code, _, _ := runMain(t, "-cpuprofile", filepath.Join(dir, "no", "such", "dir", "p"), "list"); code != 1 {
		t.Fatal("uncreatable cpuprofile path accepted")
	}
}
