package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runMain(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := Main(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestMainNoArgs(t *testing.T) {
	code, _, errOut := runMain(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "commands:") {
		t.Fatal("usage not printed")
	}
}

func TestMainUnknownCommand(t *testing.T) {
	code, _, errOut := runMain(t, "frobnicate")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown command "frobnicate"`) {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestMainHelp(t *testing.T) {
	code, _, errOut := runMain(t, "help")
	if code != 0 || !strings.Contains(errOut, "autofix") {
		t.Fatalf("help failed: code=%d", code)
	}
}

func TestList(t *testing.T) {
	code, out, _ := runMain(t, "list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"cumf_als", "cuibm", "amg", "rodinia_gaussian"} {
		if !strings.Contains(out, name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestDiscover(t *testing.T) {
	code, out, _ := runMain(t, "discover")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "__nv_sync_wait_internal") {
		t.Fatalf("funnel not identified:\n%s", out)
	}
}

func TestRunCommandFullOutput(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "a.json")
	tracePath := filepath.Join(dir, "t.json")
	tlPath := filepath.Join(dir, "tl.json")
	code, out, errOut := runMain(t, "run", "rodinia_gaussian",
		"-scale", "0.02", "-sub", "1:1",
		"-json", jsonPath, "-trace", tracePath, "-timeline", tlPath)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errOut)
	}
	for _, want := range []string{
		"Diogenes Overview Display",
		"Diogenes Estimated Savings",
		"Time Recoverable:",
		"Time Recoverable In Subsequence:",
		"Expansion of Problem",
		"Data collection cost",
		"analysis exported to",
		"annotated trace exported to",
		"chrome://tracing timeline exported to",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q", want)
		}
	}
	for _, p := range []string{jsonPath, tracePath, tlPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("export %s missing or empty", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if code, _, _ := runMain(t, "run"); code != 1 {
		t.Fatal("missing app name accepted")
	}
	if code, _, _ := runMain(t, "run", "nope", "-scale", "0.02"); code != 1 {
		t.Fatal("unknown app accepted")
	}
	if code, _, _ := runMain(t, "run", "rodinia_gaussian", "-scale", "0.02", "-sub", "xx"); code != 1 {
		t.Fatal("malformed -sub accepted")
	}
}

func TestAnalyzeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.json")
	if code, _, errOut := runMain(t, "run", "rodinia_gaussian", "-scale", "0.02", "-trace", tracePath); code != 0 {
		t.Fatalf("run failed: %s", errOut)
	}
	code, out, errOut := runMain(t, "analyze", tracePath)
	if code != 0 {
		t.Fatalf("analyze failed: %s", errOut)
	}
	if !strings.Contains(out, "Fold on cudaThreadSynchronize") {
		t.Fatalf("analyze output missing findings:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if code, _, _ := runMain(t, "analyze"); code != 1 {
		t.Fatal("missing path accepted")
	}
	if code, _, _ := runMain(t, "analyze", "/nonexistent/file.json"); code != 1 {
		t.Fatal("missing file accepted")
	}
}

func TestTable1Command(t *testing.T) {
	code, out, errOut := runMain(t, "table1", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	for _, want := range []string{"Application", "cumf_als", "rodinia_gaussian", "(paper)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestTable2Command(t *testing.T) {
	code, out, errOut := runMain(t, "table2", "-scale", "0.02", "rodinia_gaussian")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "cudaThreadSynchronize") || !strings.Contains(out, "NVProf Profiled") {
		t.Fatalf("table2 output:\n%s", out)
	}
}

func TestOverheadCommand(t *testing.T) {
	code, out, errOut := runMain(t, "overhead", "rodinia_gaussian", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "total collection:") {
		t.Fatalf("overhead output:\n%s", out)
	}
	if code, _, _ := runMain(t, "overhead"); code != 1 {
		t.Fatal("missing app accepted")
	}
}

func TestAutofixCommand(t *testing.T) {
	code, out, errOut := runMain(t, "autofix", "rodinia_gaussian", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	for _, want := range []string{"Automatic correction plan", "realized:", "calls elided:"} {
		if !strings.Contains(out, want) {
			t.Errorf("autofix output missing %q:\n%s", want, out)
		}
	}
	if code, _, _ := runMain(t, "autofix"); code != 1 {
		t.Fatal("missing app accepted")
	}
}

func TestRandomCommand(t *testing.T) {
	code, out, errOut := runMain(t, "random", "-seed", "7", "-steps", "40")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "Diogenes Estimated Savings — random-7") {
		t.Fatalf("random output:\n%s", out)
	}
	if !strings.Contains(out, "CPU/GPU overlap") {
		t.Fatal("overlap summary missing")
	}
}

func TestMarkdownExport(t *testing.T) {
	dir := t.TempDir()
	mdPath := filepath.Join(dir, "report.md")
	code, out, errOut := runMain(t, "run", "rodinia_gaussian", "-scale", "0.02", "-md", mdPath)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	if !strings.Contains(out, "Markdown report exported to") {
		t.Fatal("export confirmation missing")
	}
	data, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	for _, want := range []string{
		"# Diogenes findings — rodinia_gaussian",
		"## Findings by API function",
		"`cudaThreadSynchronize`",
		"## Top problem sequence",
		"## Data collection cost",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}

func TestVerifyCommand(t *testing.T) {
	code, out, errOut := runMain(t, "verify", "-scale", "0.02")
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errOut)
	}
	for _, want := range []string{"Manual fix", "Automatic fix", "cumf_als", "amg", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("verify output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "REJECTED") {
		t.Error("a fix was rejected on the clean workloads")
	}
}

func TestParallelFlagOutputMatchesSerial(t *testing.T) {
	serialCode, serialOut, _ := runMain(t, "table1", "-scale", "0.02")
	if serialCode != 0 {
		t.Fatalf("serial table1 exit = %d", serialCode)
	}
	parCode, parOut, _ := runMain(t, "-parallel", "4", "table1", "-scale", "0.02")
	if parCode != 0 {
		t.Fatalf("parallel table1 exit = %d", parCode)
	}
	if serialOut != parOut {
		t.Fatalf("-parallel 4 changed table1 output:\nserial:\n%s\nparallel:\n%s", serialOut, parOut)
	}
}

func TestParallelFlagTable2MatchesSerial(t *testing.T) {
	_, serialOut, _ := runMain(t, "table2", "-scale", "0.02", "amg")
	code, parOut, _ := runMain(t, "-parallel", "2", "table2", "-scale", "0.02", "amg")
	if code != 0 {
		t.Fatalf("parallel table2 exit = %d", code)
	}
	if serialOut != parOut {
		t.Fatal("-parallel 2 changed table2 output")
	}
}

func TestParallelFlagRejectsNegative(t *testing.T) {
	code, _, errOut := runMain(t, "-parallel", "-3", "table1", "-scale", "0.02")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "parallel") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestParallelFlagUnparseable(t *testing.T) {
	code, _, _ := runMain(t, "-parallel", "lots", "table1")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUsageMentionsParallel(t *testing.T) {
	_, _, errOut := runMain(t, "help")
	if !strings.Contains(errOut, "-parallel") {
		t.Fatal("usage does not document -parallel")
	}
}
