package cli

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diogenes/internal/serve"
)

func TestLoadgenMatrixAndGates(t *testing.T) {
	s, err := serve.New(serve.Options{Workers: 2, QueueCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	jsonPath := filepath.Join(t.TempDir(), "load.json")
	var out bytes.Buffer
	err = Loadgen(&out, []string{
		"-targets", ts.URL,
		"-clients", "2",
		"-cohorts", "5",
		"-duration", "150ms",
		"-scale", "0.05",
		"-json", jsonPath,
		"-gate",
	})
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "valid cohorts: 5/5") {
		t.Fatalf("gated run did not report 5/5 valid cohorts:\n%s", text)
	}
	if !strings.Contains(text, "validity gates passed") {
		t.Fatalf("gated run did not announce the gate verdict:\n%s", text)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep LoadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("exported matrix is not JSON: %v", err)
	}
	if rep.ValidCohorts != 5 || len(rep.Cohorts) != 5 {
		t.Fatalf("exported matrix has %d/%d valid cohorts, want 5/5", rep.ValidCohorts, len(rep.Cohorts))
	}
	if rep.AggThroughput <= 0 {
		t.Fatalf("aggregate throughput %v, want > 0", rep.AggThroughput)
	}
	for _, co := range rep.Cohorts {
		if co.Interactive.Invalid != 0 || co.Batch.Invalid != 0 {
			t.Fatalf("cohort %d recorded invalid outcomes against a healthy server: %+v", co.Index, co)
		}
	}
}

// TestLoadgenGateFailsOnDeadTarget: transport failures invalidate every
// cohort, and the gate turns that into a distinct nonzero exit.
func TestLoadgenGateFailsOnDeadTarget(t *testing.T) {
	var out bytes.Buffer
	err := Loadgen(&out, []string{
		"-targets", "127.0.0.1:1", // nothing listens on port 1
		"-clients", "1",
		"-cohorts", "5",
		"-duration", "20ms",
		"-gate",
	})
	if err == nil {
		t.Fatal("gate passed against a dead target")
	}
	var ec *ExitCodeError
	if !errors.As(err, &ec) || ec.Code != 3 {
		t.Fatalf("gate failure error %v, want ExitCodeError code 3", err)
	}
}

func TestLoadgenRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-clients", "0"},
		{"-cohorts", "0"},
		{"-mix", "1.5"},
		{"-targets", " , "},
		{"positional"},
	} {
		if err := Loadgen(&bytes.Buffer{}, args); err == nil {
			t.Fatalf("args %v accepted, want an error", args)
		}
	}
}

func TestPercentile(t *testing.T) {
	micros := []int64{50, 10, 40, 30, 20}
	cases := []struct {
		p    int
		want int64
	}{{50, 30}, {90, 50}, {99, 50}, {100, 50}}
	for _, c := range cases {
		if got := percentile(micros, c.p); got != c.want {
			t.Fatalf("percentile(%d) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("percentile of empty sample = %d, want 0", got)
	}
	// The input must not be reordered in place.
	if micros[0] != 50 {
		t.Fatalf("percentile mutated its input: %v", micros)
	}
}
