// Package cli implements the diogenes command line. It lives outside
// cmd/diogenes so every command is testable with injected writers; the main
// package is a two-line shim.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"diogenes/internal/apps"
	"diogenes/internal/autofix"
	"diogenes/internal/cuda"
	"diogenes/internal/experiments"
	"diogenes/internal/ffm"
	"diogenes/internal/interpose"
	"diogenes/internal/obs"
	"diogenes/internal/report"
	"diogenes/internal/timeline"
	"diogenes/internal/trace"
)

// Main dispatches a command line (without the program name) and returns the
// process exit code. All output goes to stdout/stderr. Global flags precede
// the command: `diogenes -parallel 4 table1` runs the experiment suite on a
// four-worker execution engine.
func Main(args []string, stdout, stderr io.Writer) int {
	globals := newFlagSet("diogenes")
	parallel := globals.Int("parallel", 1, "worker count for experiment suites (0 = all cores)")
	tracePath := globals.String("trace", "", "export a Chrome trace of the invocation's pipeline spans")
	metricsPath := globals.String("metrics", "", "export the invocation's self-measurement metrics as text")
	cpuProfile := globals.String("cpuprofile", "", "write a pprof CPU profile of the tool itself")
	memProfile := globals.String("memprofile", "", "write a pprof heap profile of the tool itself")
	showVersion := globals.Bool("version", false, "print the build's version and exit")
	if err := globals.Parse(args); err != nil {
		if err == flag.ErrHelp {
			usage(stderr)
			return 0
		}
		fmt.Fprintf(stderr, "diogenes: %v\n", err)
		usage(stderr)
		return 2
	}
	args = globals.Args()
	if *showVersion {
		if err := Version(stdout); err != nil {
			fmt.Fprintf(stderr, "diogenes: %v\n", err)
			return 1
		}
		return 0
	}
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	if *parallel < 0 {
		fmt.Fprintf(stderr, "diogenes: -parallel %d: worker count cannot be negative\n", *parallel)
		return 2
	}

	// Self-profiling of the tool process (wall-clock, via runtime/pprof) —
	// distinct from the virtual-time self-measurement below. No-ops unless
	// the flags are set.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "diogenes: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "diogenes: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "diogenes: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "diogenes: -memprofile: %v\n", err)
			}
		}()
	}

	// One engine for the whole invocation: every sub-result a command
	// needs twice (table2 and autofix both re-run the table1 pipelines)
	// comes from the content-addressed report cache instead. The observer
	// rides along through every layer; recording is virtual-time-neutral,
	// so attaching it unconditionally cannot change any command's output.
	eng := experiments.NewEngine(*parallel)
	o := obs.New("diogenes")
	eng.SetObserver(o)
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "list":
		err = List(stdout)
	case "run":
		err = RunCmd(stdout, eng, rest)
	case "analyze":
		err = Analyze(stdout, rest)
	case "replay":
		err = Replay(stdout, eng, rest)
	case "table1":
		err = Table1(stdout, eng, rest)
	case "table2":
		err = Table2(stdout, eng, rest)
	case "fleet":
		err = Fleet(stdout, eng, rest)
	case "overhead":
		err = Overhead(stdout, eng, rest)
	case "autofix":
		err = Autofix(stdout, eng, rest)
	case "random":
		err = Random(stdout, eng, rest)
	case "verify":
		err = Verify(stdout, eng, rest)
	case "discover":
		err = Discover(stdout)
	case "timeline":
		err = Timeline(stdout, rest)
	case "obs":
		err = Obs(stdout, rest)
	case "serve":
		err = Serve(stdout, rest)
	case "loadgen":
		err = Loadgen(stdout, rest)
	case "verify-ledger":
		err = VerifyLedger(stdout, rest)
	case "version":
		err = Version(stdout)
	case "help", "-h", "--help":
		usage(stderr)
	default:
		fmt.Fprintf(stderr, "diogenes: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "diogenes: %v\n", err)
		var ec *ExitCodeError
		if errors.As(err, &ec) {
			return ec.Code
		}
		return 1
	}
	if code := exportObservations(stdout, stderr, o, *tracePath, *metricsPath); code != 0 {
		return code
	}
	return 0
}

// exportObservations writes the invocation-level self-measurement outputs:
// the optional global -trace/-metrics exports, plus the best-effort state
// file `diogenes obs` reads back. Only commands that actually ran a
// pipeline leave a non-empty observer; an empty one is never persisted.
func exportObservations(stdout, stderr io.Writer, o *obs.Observer, tracePath, metricsPath string) int {
	if tracePath != "" {
		if err := writeFile(tracePath, o.Trace().Chrome().Write); err != nil {
			fmt.Fprintf(stderr, "diogenes: -trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\npipeline span trace exported to %s\n", tracePath)
	}
	if metricsPath != "" {
		if err := writeFile(metricsPath, o.WriteSummary); err != nil {
			fmt.Fprintf(stderr, "diogenes: -metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "self-measurement metrics exported to %s\n", metricsPath)
	}
	if !o.Empty() {
		// Best-effort: a read-only filesystem must not fail the command.
		_ = writeFile(obsStatePath(), o.WriteJSON)
	}
	return 0
}

// obsStatePath returns where the last run's observer state is persisted for
// `diogenes obs`: $DIOGENES_OBS_STATE, or a fixed name under the system
// temporary directory.
func obsStatePath() string {
	if p := os.Getenv("DIOGENES_OBS_STATE"); p != "" {
		return p
	}
	return filepath.Join(os.TempDir(), "diogenes-last-obs.json")
}

func usage(w io.Writer) {
	fmt.Fprint(w, `Diogenes — feed-forward CPU/GPU performance measurement (SC '19 reproduction)

global flags (before the command):
  -parallel n               run experiment suites on n workers (0 = all
                            cores; default 1). Parallel runs produce output
                            byte-identical to serial runs: every pipeline
                            stage executes in its own simulated process on
                            its own virtual clock.
  -trace file               export a Chrome trace_event file of the
                            invocation's pipeline spans (Perfetto-loadable;
                            virtual-time, byte-identical for any -parallel)
  -metrics file             export the invocation's self-measurement
                            (span tree, overhead report, metrics) as text
  -cpuprofile file          write a pprof CPU profile of the tool itself
  -memprofile file          write a pprof heap profile of the tool itself
  -version                  print the build's version and exit

commands:
  list                      list the modelled applications and families
  run <app> [flags]         run the 5-stage FFM pipeline and show findings
      -scale f              workload scale (default 0.25)
      -family name          run a generative workload family instead of a
                            modelled app (see 'diogenes list')
      -seed n               family seed (default 1, with -family)
      -steps n              family length (default 80, with -family)
      -json file            export the analysis as JSON
      -report file          export the complete report as JSON — the input
                            the timeline explorer renders
      -trace file           export the pipeline span trace (Chrome JSON)
      -records file         export the annotated trace (stage-4 records)
      -timeline file        export a chrome://tracing timeline
      -md file              export a Markdown findings report
      -sub from:to          refine the top sequence to entries [from,to]
  analyze <trace.json>      run stage 5 on a previously exported records file
  replay <trace.json>       re-drive the full pipeline from a captured trace;
                            the replayed analysis reproduces the original's
                            byte for byte
      -trace file           trace file (alternative to the positional)
      -json file            export the replayed analysis as JSON
  fleet [app] [flags]       run the pipeline on every rank of an MPI app's
                            world and aggregate the findings across ranks
      -app name             application name (alternative to the positional)
      -ranks n              world size (0 = the application's default)
      -scale f              workload scale (default 0.25)
      -json file            export the fleet report as JSON
      -batch n              ranks folded per reduction task (0 = ~4 batches
                            per worker); any value yields identical bytes
      -spill-budget n       resident-partial byte budget before the reduction
                            spills sealed partials to disk (0 = never spill)
      -spill-dir dir        where spilled partials go (default: a temp dir)
  table1 [-scale f]         reproduce Table 1 (estimated vs actual benefit)
  table2 [app] [-scale f]   reproduce Table 2 (NVProf vs HPCToolkit vs Diogenes)
  overhead <app> [-scale f] show the §5.3 data-collection cost breakdown
  autofix <app> [-scale f]  plan, apply, and validate automatic corrections (§6)
  random [-seed n]          run the pipeline on a seeded random workload
  verify [-scale f]         apply automatic corrections to every app and
                            compare against the paper's manual fixes
  discover                  run the §3.1 sync-function identification test
  timeline <doc.json>       render the served timeline explorer offline from
                            a 'run -report', 'fleet -json' or 'run -records'
                            export (kind sniffed from the document)
      -o file               write the self-contained HTML here (default:
                            stdout)
      -model file           also export the raw timeline model JSON
  obs [flags]               pretty-print the last run's self-measurement
      -trace file           re-export its Chrome span trace
      -metrics file         re-export its metrics text
      -state file           read this state file instead of the default
  serve [flags]             run the pipeline as an HTTP analysis service
      -addr host:port       listen address (default 127.0.0.1:8377)
      -addr-file file       write the bound address here once listening
      -queue n              bounded job backlog; full means HTTP 429 (default 16)
      -workers n            concurrent jobs (0 = all cores)
      -store dir            persistent report store directory
      -store-budget n       store LRU byte budget (0 = unbounded)
      -ledger-batch n       provenance ledger Merkle batch size (1 = seal
                            every append; default 64)
      -ledger-flush d       provenance ledger flush interval (default 2s;
                            negative disables the timer)
      -fleet-spill n        fleet-job resident-partial byte budget before
                            spilling to a per-job temp dir (0 = never spill)
      -timeout d            default per-job execution cap
      -drain d              graceful-shutdown drain budget (default 30s)
      -peers a,b,c          shard-group peer list; this instance becomes one
                            node of a consistent-hash group (submissions
                            forward to their key's owner, job lookups proxy
                            to the node that created them)
      -self host:port       this node's advertised address within -peers
                            (defaults to -addr)
  loadgen [flags]           drive a serve node or shard group with a mixed
                            workload; emits a per-cohort latency/throughput
                            matrix with validity gates (429s count as
                            backpressure, transport failures invalidate)
      -targets a,b,c        serve base URLs (default http://127.0.0.1:8377)
      -clients n            concurrent client loops (default 4)
      -cohorts n            measurement cohorts (default 5; gated claims
                            need >= 5 valid)
      -duration d           per-cohort wall time (default 2s)
      -mix f                interactive fraction (default 0.8)
      -json file            export the matrix as JSON
      -gate                 nonzero exit unless >= 5 cohorts are valid
  verify-ledger <dir>       audit a store directory against its provenance
                            ledger: replay the chain, recompute every Merkle
                            root, re-hash every resident report. Exit 0 clean,
                            3 truncated (interrupted append, self-repairing),
                            4 tampered.
  version                   print the build's version and exit
`)
}

// List prints the modelled applications and the generative families.
func List(w io.Writer) error {
	fmt.Fprintln(w, "modelled applications:")
	for _, spec := range apps.Registry() {
		fmt.Fprintf(w, "  %-18s %s\n", spec.Name, spec.Description)
	}
	fmt.Fprintln(w, "\ngenerative families (run -family <name> -seed n):")
	for _, fam := range apps.Families() {
		fmt.Fprintf(w, "  %-18s %s\n", fam.Name, fam.Description)
	}
	return nil
}

// takeName splits a leading positional argument off args so flags may
// follow it (the flag package stops at the first non-flag argument).
func takeName(args []string) (string, []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// RunCmd executes the full pipeline on one application and renders the
// findings and optional exports.
func RunCmd(w io.Writer, eng *experiments.Engine, args []string) error {
	name, args := takeName(args)
	fs := newFlagSet("run")
	scale := fs.Float64("scale", 0.25, "workload scale")
	family := fs.String("family", "", "run a generative family instead of a modelled app")
	seed := fs.Uint64("seed", 1, "generative family seed (with -family)")
	steps := fs.Int("steps", 80, "generative family length (with -family)")
	jsonPath := fs.String("json", "", "export analysis JSON to file")
	reportPath := fs.String("report", "", "export the complete report JSON (timeline-explorer input) to file")
	tracePath := fs.String("trace", "", "export the pipeline span trace (Chrome JSON) to file")
	recordsPath := fs.String("records", "", "export annotated trace records JSON to file")
	timelinePath := fs.String("timeline", "", "export a chrome://tracing timeline to file")
	mdPath := fs.String("md", "", "export a Markdown findings report to file")
	sub := fs.String("sub", "", "subsequence from:to of the top sequence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if name != "" && *family != "" {
		return fmt.Errorf("run: give an application name or -family, not both")
	}
	if name == "" && *family == "" {
		return fmt.Errorf("run: application name or -family expected (see 'diogenes list')")
	}
	if eng.Obs == nil {
		// Direct callers (tests) may pass a bare engine; -trace and the
		// state file still need an observer on the pipeline.
		eng.SetObserver(obs.New("diogenes"))
	}

	var rep *ffm.Report
	var err error
	if *family != "" {
		fam, ferr := apps.FamilyByName(*family)
		if ferr != nil {
			return ferr
		}
		cfg := ffm.DefaultConfig()
		cfg.Workers = eng.StageWorkers
		cfg.Obs = eng.Obs
		rep, err = ffm.Run(fam.New(*seed, *steps, cfg.Factory), cfg)
	} else {
		rep, err = eng.RunApp(name, *scale)
	}
	if err != nil {
		return err
	}
	a := rep.Analysis

	if err := report.Overview(w, a); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Savings(w, a); err != nil {
		return err
	}
	fmt.Fprintln(w)

	seqs := a.StaticSequences()
	if len(seqs) > 0 {
		if err := report.Sequence(w, a, seqs[0]); err != nil {
			return err
		}
		fmt.Fprintln(w)
		if *sub != "" {
			var from, to int
			if _, err := fmt.Sscanf(*sub, "%d:%d", &from, &to); err != nil {
				return fmt.Errorf("run: -sub wants from:to, got %q", *sub)
			}
			s, err := a.SubsequenceBenefit(seqs[0], from, to)
			if err != nil {
				return err
			}
			if err := report.Subsequence(w, a, s); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}

	folds := a.APIFolds()
	if len(folds) > 0 {
		if err := report.ExpandFold(w, a, folds[0]); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if err := report.OverheadSummary(w, rep); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.OverlapSummary(w, rep.Overlap()); err != nil {
		return err
	}

	if *jsonPath != "" {
		if err := writeFile(*jsonPath, a.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nanalysis exported to %s\n", *jsonPath)
	}
	if *reportPath != "" {
		if err := writeFile(*reportPath, rep.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nreport exported to %s\n", *reportPath)
	}
	if *tracePath != "" {
		if err := writeFile(*tracePath, eng.Obs.Trace().Chrome().Write); err != nil {
			return err
		}
		fmt.Fprintf(w, "\npipeline span trace exported to %s\n", *tracePath)
	}
	if *recordsPath != "" {
		if err := writeFile(*recordsPath, rep.Trace.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nannotated trace exported to %s\n", *recordsPath)
	}
	if *timelinePath != "" {
		tl := timeline.Build(rep.Trace, rep.DeviceOps)
		if err := writeFile(*timelinePath, tl.Write); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nchrome://tracing timeline exported to %s\n", *timelinePath)
	}
	if *mdPath != "" {
		if err := writeFile(*mdPath, func(f io.Writer) error {
			return report.WriteMarkdown(f, rep)
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nMarkdown report exported to %s\n", *mdPath)
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

// Analyze re-runs stage 5 on a previously exported trace (§4's JSON
// interchange).
func Analyze(w io.Writer, args []string) error {
	path, args := takeName(args)
	fs := newFlagSet("analyze")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("analyze: trace file expected")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	run, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}
	a := ffm.Analyze(run, ffm.DefaultAnalysisOptions())
	if err := report.Overview(w, a); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.Savings(w, a)
}

// Replay re-runs the full measurement pipeline on a previously captured
// trace (a `diogenes run -records` export): the trace is turned back into
// an executable application whose analysis reproduces the original's byte
// for byte. Unlike `analyze`, which re-runs only stage 5 on the recorded
// annotations, replay re-drives every collection stage.
func Replay(w io.Writer, eng *experiments.Engine, args []string) error {
	path, args := takeName(args)
	fs := newFlagSet("replay")
	traceFlag := fs.String("trace", "", "captured trace file (alternative to the positional argument)")
	jsonPath := fs.String("json", "", "export the replayed analysis as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" {
		path = *traceFlag
	}
	if path == "" {
		return fmt.Errorf("replay: trace file expected (capture one with 'diogenes run <app> -records file.json')")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	run, err := trace.ReadJSON(f)
	if err != nil {
		return err
	}
	if eng.Obs == nil {
		eng.SetObserver(obs.New("diogenes"))
	}
	cfg := ffm.DefaultConfig()
	cfg.Workers = eng.StageWorkers
	cfg.Obs = eng.Obs
	// Byte-identical reproduction needs the machine configuration the
	// trace was captured on; registered applications carry theirs.
	if f, ok := apps.FactoryFor(run.App); ok {
		cfg.Factory = f
	}
	rep, err := ffm.Run(apps.NewReplayApp(run), cfg)
	if err != nil {
		return err
	}
	a := rep.Analysis
	if err := report.Overview(w, a); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := report.Savings(w, a); err != nil {
		return err
	}
	if seqs := a.StaticSequences(); len(seqs) > 0 {
		fmt.Fprintln(w)
		if err := report.Sequence(w, a, seqs[0]); err != nil {
			return err
		}
	}
	if folds := a.APIFolds(); len(folds) > 0 {
		fmt.Fprintln(w)
		if err := report.ExpandFold(w, a, folds[0]); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, a.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nanalysis exported to %s\n", *jsonPath)
	}
	return nil
}

// Table1 regenerates Table 1.
func Table1(w io.Writer, eng *experiments.Engine, args []string) error {
	fs := newFlagSet("table1")
	scale := fs.Float64("scale", 0.25, "workload scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := eng.Table1(*scale)
	if err != nil {
		return err
	}
	return report.Table1(w, rows)
}

// Table2 regenerates Table 2 for the named applications (all by default).
func Table2(w io.Writer, eng *experiments.Engine, args []string) error {
	fs := newFlagSet("table2")
	scale := fs.Float64("scale", 0.25, "workload scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		for _, spec := range apps.Registry() {
			names = append(names, spec.Name)
		}
	}
	sections, err := eng.Table2(*scale, names)
	if err != nil {
		return err
	}
	// One rendering path shared with the serve API keeps the outputs
	// byte-identical.
	return report.Table2Sections(w, names, sections)
}

// Fleet runs the all-ranks FFM pipeline on one MPI-modelled application
// and renders the aggregated fleet report. A partial report (contained rank
// failures) renders its DEGRADED section and still exits successfully —
// per-rank fault containment must never fail the launch.
func Fleet(w io.Writer, eng *experiments.Engine, args []string) error {
	name, args := takeName(args)
	fs := newFlagSet("fleet")
	appFlag := fs.String("app", "", "application name (alternative to the positional argument)")
	ranks := fs.Int("ranks", 0, "world size (0 = the application's default)")
	scale := fs.Float64("scale", 0.25, "workload scale")
	jsonPath := fs.String("json", "", "export the fleet report as JSON")
	batch := fs.Int("batch", 0, "ranks folded per reduction task (0 = ~4 batches per worker)")
	spillBudget := fs.Int64("spill-budget", 0, "resident-partial byte budget before spilling to disk (0 = never spill)")
	spillDir := fs.String("spill-dir", "", "directory for spilled partials (default: a temp dir, removed afterwards)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if name == "" {
		name = *appFlag
	}
	if name == "" {
		return fmt.Errorf("fleet: application name expected (see 'diogenes list')")
	}
	eng.FleetBatch = *batch
	eng.FleetSpillBudget = *spillBudget
	eng.FleetSpillDir = *spillDir
	fr, err := eng.Fleet(name, *scale, *ranks)
	if err != nil {
		return err
	}
	if err := report.FleetTable(w, fr); err != nil {
		return err
	}
	if *jsonPath != "" {
		if err := writeFile(*jsonPath, fr.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nfleet report exported to %s\n", *jsonPath)
	}
	return nil
}

// Overhead prints the §5.3 cost breakdown for one application.
func Overhead(w io.Writer, eng *experiments.Engine, args []string) error {
	name, args := takeName(args)
	fs := newFlagSet("overhead")
	scale := fs.Float64("scale", 0.25, "workload scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("overhead: application name expected (see 'diogenes list')")
	}
	rep, err := eng.RunApp(name, *scale)
	if err != nil {
		return err
	}
	return report.OverheadSummary(w, rep)
}

// Autofix plans, applies and validates automatic corrections on one
// application.
func Autofix(w io.Writer, eng *experiments.Engine, args []string) error {
	name, args := takeName(args)
	fs := newFlagSet("autofix")
	scale := fs.Float64("scale", 0.25, "workload scale")
	noGuard := fs.Bool("no-guard", false, "skip the mprotect correctness guard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("autofix: application name expected (see 'diogenes list')")
	}
	spec, err := apps.ByName(name)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Running the FFM pipeline on %s ...\n", name)
	rep, err := eng.RunApp(name, *scale)
	if err != nil {
		return err
	}
	opts := autofix.DefaultOptions()
	opts.Guard = !*noGuard
	plan := autofix.BuildPlan(rep.Analysis, opts)

	view := report.PlanView{App: plan.App, Estimated: plan.Estimated, Skipped: plan.Skipped}
	for _, a := range plan.Actions {
		view.Actions = append(view.Actions, report.PlanAction{
			Kind: a.Kind.String(), Label: a.Label, Estimated: a.Estimated, Count: a.Count,
		})
	}
	if err := report.AutofixPlan(w, view); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nApplying the plan (call-site elision) and re-running ...")
	v, err := autofix.Apply(spec.New(*scale, apps.Original), spec.Factory(), plan, opts)
	if err != nil {
		return err
	}
	if !v.Valid {
		fmt.Fprintf(w, "FIX REJECTED by the correctness guard:\n  %s\n", v.GuardViolation)
		return nil
	}
	fmt.Fprintf(w, "  original run:   %8.3fs\n", v.OriginalTime.Seconds())
	fmt.Fprintf(w, "  patched run:    %8.3fs\n", v.PatchedTime.Seconds())
	fmt.Fprintf(w, "  realized:       %8.3fs (%.2f%%; estimated %.2f%%)\n",
		v.Realized.Seconds(), v.RealizedPct, v.EstimatedPct)
	fmt.Fprintf(w, "  calls elided:   %d   transfer sources guarded: %d\n",
		v.SuppressedCalls, v.GuardedRanges)
	return nil
}

// Random runs the pipeline on a seeded random workload — a quick way to
// exercise the whole stack on call patterns no modelled application has.
func Random(w io.Writer, eng *experiments.Engine, args []string) error {
	fs := newFlagSet("random")
	seed := fs.Uint64("seed", 1, "workload seed")
	steps := fs.Int("steps", 80, "workload length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := ffm.DefaultConfig()
	cfg.Workers = eng.StageWorkers
	cfg.Obs = eng.Obs
	rep, err := ffm.Run(apps.NewRandomApp(*seed, *steps), cfg)
	if err != nil {
		return err
	}
	if err := report.Savings(w, rep.Analysis); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.OverlapSummary(w, rep.Overlap())
}

// Verify applies the automatic correction to every modelled application and
// prints the realized benefit next to the paper's manual fix.
func Verify(w io.Writer, eng *experiments.Engine, args []string) error {
	fs := newFlagSet("verify")
	scale := fs.Float64("scale", 0.1, "workload scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := autofix.TableWith(eng, *scale)
	if err != nil {
		return err
	}
	// One rendering path shared with the serve API keeps the outputs
	// byte-identical.
	return report.AutofixTable(w, rows)
}

// Obs pretty-prints the persisted self-measurement of the most recent
// pipeline-running invocation, and optionally re-exports its Chrome trace
// or metrics text.
func Obs(w io.Writer, args []string) error {
	fs := newFlagSet("obs")
	tracePath := fs.String("trace", "", "re-export the Chrome span trace to file")
	metricsPath := fs.String("metrics", "", "re-export the metrics text to file")
	statePath := fs.String("state", "", "observer state file to read (default: last run's)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *statePath
	if path == "" {
		path = obsStatePath()
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("obs: no recorded run at %s — run a pipeline command first (e.g. 'diogenes run rodinia_gaussian')", path)
		}
		return err
	}
	defer f.Close()
	o, err := obs.ReadJSON(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "self-measurement of the last run (%s)\n\n", path)
	if err := o.WriteSummary(w); err != nil {
		return err
	}
	if *tracePath != "" {
		if err := writeFile(*tracePath, o.Trace().Chrome().Write); err != nil {
			return err
		}
		fmt.Fprintf(w, "\npipeline span trace exported to %s\n", *tracePath)
	}
	if *metricsPath != "" {
		if err := writeFile(*metricsPath, o.WriteSummary); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nself-measurement metrics exported to %s\n", *metricsPath)
	}
	return nil
}

// Discover runs the §3.1 identification test and reports the funnel.
func Discover(w io.Writer) error {
	factory := apps.Must("rodinia_gaussian").Factory()
	fn, err := interpose.Discover(func() *cuda.Context { return factory.New().Ctx })
	if err != nil {
		return err
	}
	var names []string
	for _, f := range cuda.InternalFuncs {
		names = append(names, string(f))
	}
	fmt.Fprintf(w, "candidate internal functions: %s\n", strings.Join(names, ", "))
	fmt.Fprintf(w, "identified synchronization funnel: %s\n", fn)
	fmt.Fprintln(w, "(found by launching a never-completing kernel and observing where known synchronous calls park the CPU)")
	return nil
}
