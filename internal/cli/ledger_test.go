package cli

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diogenes/internal/ledger"
	"diogenes/internal/serve"
)

// buildLedgeredStore assembles a store directory with n ledgered reports
// the way the daemon would: each Put appends to the attached ledger
// before the report file lands. It returns the directory and the stored
// keys in Put order.
func buildLedgeredStore(t *testing.T, n int) (string, []string) {
	t.Helper()
	dir := t.TempDir()
	st, err := serve.OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ledger.Open(ledger.Config{
		Path: filepath.Join(dir, "ledger.log"), BatchSize: 2, FlushInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.AttachLedger(l)
	var keys []string
	for i := 0; i < n; i++ {
		sum := sha256.Sum256([]byte{byte(i)})
		key := hex.EncodeToString(sum[:])
		if err := st.Put(key, []byte(fmt.Sprintf(`{"report":%d}`, i))); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, keys
}

func TestVerifyLedgerClean(t *testing.T) {
	dir, _ := buildLedgeredStore(t, 5)
	code, out, _ := runMain(t, "verify-ledger", dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	for _, want := range []string{"verdict: clean", "5 entries", "5 re-hashed and matched"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyLedgerTamperedReportExit4(t *testing.T) {
	dir, keys := buildLedgeredStore(t, 3)
	p := filepath.Join(dir, keys[1]+".bin")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runMain(t, "verify-ledger", dir)
	if code != ExitTampered {
		t.Fatalf("exit = %d, want %d; output:\n%s%s", code, ExitTampered, out, errOut)
	}
	if !strings.Contains(out, "TAMPERED") || !strings.Contains(out, keys[1]) {
		t.Errorf("verdict should name the tampered report:\n%s", out)
	}
}

func TestVerifyLedgerTamperedChainExit4(t *testing.T) {
	dir, _ := buildLedgeredStore(t, 4)
	p := filepath.Join(dir, "ledger.log")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one hex digit inside the first entry's digest field.
	i := strings.Index(string(b), `"digest":"`) + len(`"digest":"`)
	if b[i] == 'f' {
		b[i] = '0'
	} else {
		b[i] = 'f'
	}
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runMain(t, "verify-ledger", dir)
	if code != ExitTampered {
		t.Fatalf("exit = %d, want %d; output:\n%s", code, ExitTampered, out)
	}
}

func TestVerifyLedgerTruncatedExit3(t *testing.T) {
	dir, _ := buildLedgeredStore(t, 5)
	p := filepath.Join(dir, "ledger.log")
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the final line: an interrupted append, not tampering.
	if err := os.Truncate(p, fi.Size()-20); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runMain(t, "verify-ledger", dir)
	if code != ExitTruncated {
		t.Fatalf("exit = %d, want %d; output:\n%s", code, ExitTruncated, out)
	}
	if !strings.Contains(out, "verdict: truncated") {
		t.Errorf("verdict should say truncated:\n%s", out)
	}
}

func TestVerifyLedgerOperationalErrors(t *testing.T) {
	if code, _, errOut := runMain(t, "verify-ledger"); code != 1 || !strings.Contains(errOut, "store directory expected") {
		t.Fatalf("missing argument: exit = %d, stderr %q", code, errOut)
	}
	if code, _, _ := runMain(t, "verify-ledger", filepath.Join(t.TempDir(), "nope")); code != 1 {
		t.Fatal("nonexistent directory should be an operational failure (exit 1), not a verdict")
	}
}

func TestUsageMentionsVerifyLedger(t *testing.T) {
	_, _, errOut := runMain(t, "help")
	for _, want := range []string{"verify-ledger", "-ledger-batch", "-ledger-flush"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("usage missing %q", want)
		}
	}
}
